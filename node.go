package oscar

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/p2p"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/transport"
	"github.com/oscar-overlay/oscar/internal/wal"
)

// NodeConfig configures one live peer (StartNode).
type NodeConfig struct {
	// Listen is the TCP listen address, e.g. "127.0.0.1:0" (":0" picks a
	// free port; read the bound address back with Addr).
	Listen string
	// Key is the node's position on the identifier circle. Place it where
	// the node's data lives — the overlay is order-preserving.
	Key Key
	// MaxIn and MaxOut are the link budgets ρmax (defaults 27/27): a
	// weak peer states small budgets, a strong one large — the paper's
	// heterogeneity knob.
	MaxIn, MaxOut int
	// Seed drives the node's local randomness.
	Seed int64
	// Samples and WalkSteps tune median estimation (0 = defaults).
	Samples, WalkSteps int
	// DisablePowerOfTwo turns off the two-choices in-degree balancing.
	DisablePowerOfTwo bool
	// Replicas is the replication factor r (default 1 = no replication):
	// items this node owns are pushed to its r-1 immediate ring successors,
	// writes served by this node honour the owner's factor, and reads fall
	// back through the owner's chain when it is unreachable.
	Replicas int
	// WriteConcern is the default number of owner+chain acknowledgements
	// a Put or Delete issued through this node must collect to succeed
	// (default 1: the owner's ack alone). A shortfall returns
	// ErrWriteConcern with the achieved/required counts while the write
	// holds wherever it was acked. Clamped to Replicas;
	// ContextWithWriteConcern overrides it per call, unclamped.
	WriteConcern int
	// AutoMaintenance, when positive, starts the background maintenance
	// loop as soon as the node boots: ring stabilisation every interval
	// (jittered per node so cluster rounds do not synchronise) and a
	// long-range rewiring pass every autoRewireEvery stabilisations, so
	// stale links to crashed peers are eventually rebuilt too. Zero leaves
	// maintenance manual (Stabilize / Rewire / StartMaintenance).
	AutoMaintenance time.Duration
	// AntiEntropy, when positive (and Replicas > 1), adds a periodic
	// digest sync to the maintenance loop: every interval the node, as the
	// owner of its arc, compares Merkle-style arc digests with its replica
	// chain and ships only the diverged keys — repairing missed writes,
	// missed deletes and stray copies that no membership change surfaced.
	// It requires a running maintenance loop (AutoMaintenance or
	// StartMaintenance). Zero leaves periodic sync off; membership changes
	// still trigger the same incremental repair from stabilisation.
	AntiEntropy time.Duration
	// TombstoneTTL bounds how long deletes are remembered for anti-entropy
	// (default 10 minutes). Keep it comfortably above the AntiEntropy
	// interval: a tombstone must survive until every replica has applied
	// it, or a stale copy could resurrect the key.
	TombstoneTTL time.Duration
	// Alpha is the routing parallelism: each lookup hop probes up to Alpha
	// candidates concurrently and takes the first useful answer, trading
	// extra messages for lower tail latency on lossy or overloaded rings.
	// 0 or 1 keeps the classic single-probe walk.
	Alpha int
	// RouteCacheSize bounds the node's key→owner route cache (0 = default
	// 128 entries, negative = disabled). Cached routes are always validated
	// against the ring before use — the cache can only save hops, never
	// serve a stale owner.
	RouteCacheSize int
	// RouteCacheTTL ages route-cache entries (0 = default 2s, negative =
	// no aging). The hot-key value cache shares this TTL.
	RouteCacheTTL time.Duration
	// HotKeyCache bounds the requester-side hot-key value cache (0 =
	// default 128 entries, negative = disabled). A cached value is served
	// only after a one-message digest check against the owner (or its
	// replica chain when the owner is unreachable), so reads stay as fresh
	// as an uncached read while skipping the routing walk and the value
	// transfer.
	HotKeyCache int
	// PoolSize is the number of persistent connections per peer (0 =
	// transport default).
	PoolSize int
	// CallTimeout bounds each RPC when the caller's context carries no
	// deadline (0 = transport default).
	CallTimeout time.Duration
	// IdleTimeout reaps pooled connections idle this long (0 = transport
	// default).
	IdleTimeout time.Duration
	// MaxInflight is the backpressure cap (0 = transport default): at most
	// this many calls in flight per pooled connection, and at most this
	// many handlers running concurrently on the listener. Excess inbound
	// requests are shed with a typed transport overload error instead of
	// queueing without bound.
	MaxInflight int
	// TLS, when set, wraps every connection — the listener and all
	// outbound dials — in TLS with this configuration. All members of a
	// ring must agree (a TLS node cannot talk to a plaintext one). For a
	// fleet sharing one self-signed certificate, put the certificate in
	// both Certificates and RootCAs.
	TLS *tls.Config
	// Codec pins the wire codec: "" or "binary" (the default — the compact
	// binary codec, negotiated per connection with JSON fallback for older
	// peers) or "json" (speak only the legacy JSON codec; use during a
	// rolling upgrade from pre-binary builds).
	Codec string
	// DataDir, when non-empty, makes the node durable: every storage
	// mutation is appended to a write-ahead log in this directory and
	// periodically compacted into snapshots; the next StartNode with the
	// same directory recovers the state and the node rejoins with its
	// arc intact (anti-entropy then re-ships only the downtime delta).
	// Empty keeps the node memory-only. The directory must be private
	// to one node.
	DataDir string
	// Fsync selects the WAL durability policy when DataDir is set:
	// "always" (fsync before every acked write), "interval" (background
	// fsync every ~100ms — the default), or "never" (flush to the OS,
	// never fsync: a machine crash can lose everything since the last
	// snapshot, a process crash nothing).
	Fsync string
	// WrapTransport, when set, wraps the node's transport endpoint before
	// the overlay runtime attaches to it — the interposition hook fault
	// harnesses (internal/faultnet) use to inject deterministic drop,
	// latency, duplication and partitions between this node and the
	// fabric. The wrapper sees every outbound call; it must preserve the
	// transport.Transport contract. Nil leaves the endpoint bare.
	WrapTransport func(transport.Transport) transport.Transport
}

// Node is a live overlay peer: the message-passing implementation of
// Client, one peer per process (or many in one process — see
// StartCluster). A fresh node is a one-peer overlay; Join splices it into
// an existing one through any member. All methods are safe for concurrent
// use.
type Node struct {
	inner *p2p.Node
	tr    transport.Transport

	mu     sync.Mutex
	maint  *p2p.Maintenance
	closed bool
}

var _ Client = (*Node)(nil)

// StartNode boots a live peer on a TCP listener and starts serving the
// overlay protocol. Close releases the listener.
func StartNode(cfg NodeConfig) (*Node, error) {
	var topts []transport.TCPOption
	if cfg.PoolSize > 0 {
		topts = append(topts, transport.WithPoolSize(cfg.PoolSize))
	}
	if cfg.CallTimeout > 0 {
		topts = append(topts, transport.WithCallTimeout(cfg.CallTimeout))
	}
	if cfg.IdleTimeout > 0 {
		topts = append(topts, transport.WithIdleTimeout(cfg.IdleTimeout))
	}
	if cfg.MaxInflight > 0 {
		topts = append(topts, transport.WithMaxInflight(cfg.MaxInflight))
	}
	if cfg.TLS != nil {
		topts = append(topts, transport.WithTLS(cfg.TLS))
	}
	switch cfg.Codec {
	case "", "binary":
	case "json":
		topts = append(topts, transport.WithJSONCodec())
	default:
		return nil, fmt.Errorf("oscar: start node: unknown codec %q (want binary or json)", cfg.Codec)
	}
	ep, err := transport.ListenTCP(cfg.Listen, topts...)
	if err != nil {
		return nil, fmt.Errorf("oscar: start node: %w", err)
	}
	n, err := startNodeOn(ep, cfg)
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	return n, nil
}

// startNodeOn wraps a live p2p node on an arbitrary transport endpoint —
// the shared path under StartNode (TCP) and StartCluster (in-memory).
// With a DataDir it first runs recovery (snapshot load + WAL replay),
// the only way it can fail besides a bad fsync spelling.
func startNodeOn(tr transport.Transport, cfg NodeConfig) (*Node, error) {
	policy, err := wal.ParsePolicy(cfg.Fsync)
	if err != nil {
		return nil, fmt.Errorf("oscar: start node: %w", err)
	}
	if cfg.WrapTransport != nil {
		tr = cfg.WrapTransport(tr)
	}
	inner, err := p2p.NewNode(tr, p2p.Config{
		Key:               cfg.Key,
		MaxIn:             cfg.MaxIn,
		MaxOut:            cfg.MaxOut,
		Samples:           cfg.Samples,
		WalkSteps:         cfg.WalkSteps,
		DisablePowerOfTwo: cfg.DisablePowerOfTwo,
		Replicas:          cfg.Replicas,
		WriteConcern:      cfg.WriteConcern,
		AntiEntropy:       cfg.AntiEntropy,
		TombstoneTTL:      cfg.TombstoneTTL,
		Alpha:             cfg.Alpha,
		RouteCacheSize:    cfg.RouteCacheSize,
		RouteCacheTTL:     cfg.RouteCacheTTL,
		HotKeyCache:       cfg.HotKeyCache,
		Seed:              cfg.Seed,
		DataDir:           cfg.DataDir,
		Fsync:             policy,
	})
	if err != nil {
		return nil, fmt.Errorf("oscar: start node: %w", err)
	}
	n := &Node{inner: inner, tr: tr}
	if cfg.AutoMaintenance > 0 {
		n.StartMaintenance(jitterInterval(cfg.AutoMaintenance, cfg.Seed), autoRewireEvery)
	}
	return n, nil
}

// RecoveryInfo describes what a durable node reconstructed from its data
// directory at startup. The zero value means the node runs memory-only.
type RecoveryInfo struct {
	// Enabled reports the node runs with a data directory.
	Enabled bool
	// Clean reports the previous run shut down cleanly (Close wrote a
	// final snapshot and marker); false after a crash.
	Clean bool
	// SnapshotAt is when the loaded snapshot was written (zero if the
	// node started from an empty directory).
	SnapshotAt time.Time
	// ReplayedFrames is how many WAL frames recovery replayed over the
	// snapshot — the crash window's worth of mutations.
	ReplayedFrames int
	// TornTail reports a torn final WAL frame was found and discarded
	// (the signature of a crash mid-append).
	TornTail bool
	// Items, ReplicaItems and Tombstones count the recovered state.
	Items, ReplicaItems, Tombstones int
}

// Recovery returns what this node reconstructed from its data directory
// at startup; the zero value when running without one.
func (n *Node) Recovery() RecoveryInfo {
	r := n.inner.Recovery()
	info := RecoveryInfo{
		Enabled:        r.Enabled,
		Clean:          r.Clean,
		ReplayedFrames: r.Replayed,
		TornTail:       r.TornTail,
		Items:          r.Items,
		ReplicaItems:   r.ReplicaItems,
		Tombstones:     r.Tombstones,
	}
	if r.SnapshotAt != 0 {
		info.SnapshotAt = time.Unix(0, r.SnapshotAt)
	}
	return info
}

// Snapshot forces a compacted snapshot of the node's durable state,
// truncating the write-ahead log. It is a no-op without a DataDir;
// durable nodes also snapshot automatically when the WAL grows and on
// Close, so most callers never need this.
func (n *Node) Snapshot() error {
	if n.isClosed() {
		return ErrClosed
	}
	return n.inner.Snapshot()
}

// autoRewireEvery is the rewiring cadence of auto-maintenance: one
// long-range rebuild per this many stabilisation ticks. Rewiring is the
// expensive half (remote walks), so it runs an order of magnitude less
// often than ring repair.
const autoRewireEvery = 16

// jitterInterval spreads per-node maintenance ticks over ±25% of the
// requested interval, deterministically from the node's seed, so a
// cluster's rounds de-synchronise instead of thundering together.
func jitterInterval(d time.Duration, seed int64) time.Duration {
	r := rng.Derive(seed, "maintenance-jitter")
	return time.Duration(float64(d) * (0.75 + 0.5*r.Float64()))
}

// Addr returns the node's transport address — hand it to other nodes'
// Join calls.
func (n *Node) Addr() string { return string(n.inner.Self().Addr) }

// PeerCodecs reports, per peer this node currently holds pooled
// connections to, the wire codec those connections negotiated ("binary"
// or "json"). Empty for non-TCP nodes (StartCluster) and for peers with
// no live connection. Use it to watch a rolling upgrade converge: once
// every peer reads "binary", the JSON fallback is no longer exercised.
func (n *Node) PeerCodecs() map[string]string {
	ep, ok := n.tr.(*transport.TCPEndpoint)
	if !ok {
		return nil
	}
	out := make(map[string]string)
	for addr, codec := range ep.PeerCodecs() {
		out[string(addr)] = transport.CodecName(codec)
	}
	return out
}

// Key returns the node's position on the identifier circle.
func (n *Node) Key() Key { return n.inner.Self().Key }

// Join enters the overlay through any existing member: route to the owner
// of this node's key, splice into the ring there, migrate the arc's items,
// and wire long-range links. The context bounds the whole sequence.
func (n *Node) Join(ctx context.Context, introducer string) error {
	if err := n.begin(ctx); err != nil {
		return err
	}
	return n.mapErr(n.inner.Join(ctx, transport.Addr(introducer)))
}

// Stabilize runs one ring-maintenance round (verify successor, re-notify,
// drop dead predecessor). StartMaintenance runs it periodically.
func (n *Node) Stabilize(ctx context.Context) {
	n.inner.Stabilize(ctx)
}

// Rewire rebuilds the node's long-range links from fresh partition
// estimates. StartMaintenance runs it periodically.
func (n *Node) Rewire(ctx context.Context) error {
	if err := n.begin(ctx); err != nil {
		return err
	}
	return n.mapErr(n.inner.Rewire(ctx))
}

// AntiEntropy runs one digest sync of this node's arc against its replica
// chain and returns what it repaired: one digest exchange per chain member,
// a key-level pull for mismatched digest buckets, and targeted pushes of
// only the diverged keys. The NodeConfig.AntiEntropy interval runs the
// same pass periodically in the background.
func (n *Node) AntiEntropy(ctx context.Context) (SyncStats, error) {
	if err := n.begin(ctx); err != nil {
		return SyncStats{}, err
	}
	st := n.inner.AntiEntropy(ctx)
	if err := ctx.Err(); err != nil {
		return SyncStats{}, err
	}
	return SyncStats{
		Rounds:           st.Rounds,
		KeysPushed:       st.KeysPushed,
		TombstonesPushed: st.TombsPushed,
		Dropped:          st.Dropped,
	}, nil
}

// StartMaintenance launches the background maintenance loop: stabilisation
// every interval and a rewiring pass every rewireEvery intervals (0
// disables rewiring). Starting twice replaces the previous loop. Close
// stops it.
func (n *Node) StartMaintenance(interval time.Duration, rewireEvery int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if n.maint != nil {
		n.maint.Stop()
	}
	n.maint = n.inner.StartMaintenance(interval, rewireEvery)
}

// StopMaintenance halts the background loop, if running.
func (n *Node) StopMaintenance() {
	n.mu.Lock()
	m := n.maint
	n.maint = nil
	n.mu.Unlock()
	if m != nil {
		m.Stop()
	}
}

// Close stops maintenance and takes the node off the network. To the rest
// of the overlay this is a crash: stabilisation at the survivors heals the
// ring around it. Without a DataDir, unreplicated items on this node's
// shard are gone; with one, Close is graceful — it writes a final
// compacted snapshot and a clean-shutdown marker, so a restart from the
// same directory recovers instantly with nothing to replay.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	m := n.maint
	n.maint = nil
	n.mu.Unlock()
	if m != nil {
		m.Stop()
	}
	return n.inner.CloseClean()
}

// begin gates an operation on the context and the closed flag.
func (n *Node) begin(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n.isClosed() {
		return ErrClosed
	}
	return nil
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// mapErr translates runtime errors into the Client's typed errors.
// Context errors pass through untranslated.
func (n *Node) mapErr(err error) error {
	var wc *p2p.WriteConcernError
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return err
	case errors.As(err, &wc):
		return &WriteConcernError{Acks: wc.Acks, Want: wc.Want}
	case errors.Is(err, p2p.ErrNoRoute):
		return fmt.Errorf("%w: %v", ErrRoutingFailed, err)
	default:
		// Double-wrap so the runtime error's own identity survives the
		// translation: errors.Is(err, transport.ErrOverloaded) must keep
		// working through the public error, or callers cannot tell
		// backpressure from death.
		return fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
}

func ownerRef(ref transport.PeerRef) OwnerRef {
	return OwnerRef{Key: ref.Key, Addr: string(ref.Addr)}
}

// Put implements Client.
func (n *Node) Put(ctx context.Context, key Key, value []byte) (PutResponse, error) {
	if err := n.begin(ctx); err != nil {
		return PutResponse{}, err
	}
	res, err := n.inner.PutW(ctx, key, value, writeConcernFrom(ctx))
	out := PutResponse{Owner: ownerRef(res.Owner), Cost: res.Cost, Replaced: res.Replaced, Acks: res.Acks}
	if err != nil {
		return out, n.mapErr(err)
	}
	return out, nil
}

// Get implements Client.
func (n *Node) Get(ctx context.Context, key Key) (GetResponse, error) {
	if err := n.begin(ctx); err != nil {
		return GetResponse{}, err
	}
	res, err := n.inner.Get(ctx, key)
	out := GetResponse{Owner: ownerRef(res.Owner), Cost: res.Cost, Value: res.Value}
	if err != nil {
		return out, n.mapErr(err)
	}
	if !res.Found {
		return out, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	return out, nil
}

// Delete implements Client.
func (n *Node) Delete(ctx context.Context, key Key) (DeleteResponse, error) {
	if err := n.begin(ctx); err != nil {
		return DeleteResponse{}, err
	}
	res, err := n.inner.DeleteW(ctx, key, writeConcernFrom(ctx))
	out := DeleteResponse{Owner: ownerRef(res.Owner), Cost: res.Cost, Acks: res.Acks}
	if err != nil {
		return out, n.mapErr(err)
	}
	if !res.Found {
		return out, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	return out, nil
}

// Scan implements Client: a paged streaming read over [start, end). Each
// page is one cursor-carrying scan RPC against the shard owner (or, when
// the owner dies mid-scan, a member of its replica chain — the cursor
// resumes through the chain's replica copies without loss).
func (n *Node) Scan(ctx context.Context, start, end Key, opts ...ScanOption) *Scanner {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.begin(ctx); err != nil {
		return failedScanner(err)
	}
	sess := n.inner.NewScanSession(start, end)
	return newScanner(ctx, start, end, opts, func(ctx context.Context, cursor Key, want int) (scanChunk, error) {
		if n.isClosed() {
			return scanChunk{}, ErrClosed
		}
		chunk, err := sess.NextPage(ctx, cursor, want)
		out := scanChunk{items: chunk.Items, done: chunk.Done, cost: chunk.Cost, peers: chunk.Peers}
		if err != nil {
			return out, n.mapErr(err)
		}
		return out, nil
	})
}

// RangeQuery implements Client.
//
// Deprecated: use Scan — RangeQuery buffers the whole result in memory
// and is now a thin wrapper over the same paged scan.
func (n *Node) RangeQuery(ctx context.Context, start, end Key, limit int) (RangeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return drainScanner(n.Scan(ctx, start, end, WithLimit(limit)))
}

// PutBlob implements Client.
func (n *Node) PutBlob(ctx context.Context, base Key, r io.Reader, opts ...BlobOption) (BlobManifest, error) {
	return putBlob(ctx, n, base, r, opts)
}

// GetBlob implements Client.
func (n *Node) GetBlob(ctx context.Context, base Key) (*BlobReader, error) {
	return getBlob(ctx, n, base)
}

// DeleteBlob implements Client.
func (n *Node) DeleteBlob(ctx context.Context, base Key) error {
	return deleteBlob(ctx, n, base)
}

// Lookup implements Client.
func (n *Node) Lookup(ctx context.Context, key Key) (LookupResponse, error) {
	if err := n.begin(ctx); err != nil {
		return LookupResponse{}, err
	}
	owner, cost, err := n.inner.Lookup(ctx, key)
	if err != nil {
		return LookupResponse{Cost: cost}, n.mapErr(err)
	}
	return LookupResponse{Owner: ownerRef(owner), Cost: cost}, nil
}

// peerCountMaxHops bounds Info's exact membership walk: while the gossip
// estimate says the ring is at most this big, Info walks the ring for an
// exact count; beyond it (where a walk would cost O(N) RPCs) the gossip
// estimate itself is reported.
const peerCountMaxHops = 128

// Info implements Client. A live node has no global membership table, so
// Peers blends two local sources: the gossip-maintained ring-size estimate
// (successor-list density averaged over neighbour exchanges, refreshed
// every stabilisation) decides whether an exact successor-pointer walk is
// affordable; small rings get the exact count, large rings the estimate —
// never a -1 and never an O(N) walk at scale. Treat it as an estimate:
// concurrent joins and crashes skew both sources.
func (n *Node) Info(ctx context.Context) (InfoResponse, error) {
	if err := n.begin(ctx); err != nil {
		return InfoResponse{}, err
	}
	est := n.inner.SizeEstimate()
	peers := -1
	if est <= peerCountMaxHops {
		peers = n.inner.CountPeers(ctx, peerCountMaxHops)
	}
	if peers < 0 && est > 0 {
		peers = int(est + 0.5)
	}
	sync := n.inner.SyncTotals()
	caches := n.inner.CacheStats()
	resp := InfoResponse{
		Backend:      "p2p",
		Peers:        peers,
		SizeEstimate: est,
		Replicas:     n.inner.Replicas(),
		WriteConcern: n.inner.WriteConcern(),
		Self:         ownerRef(n.inner.Self()),
		Successor:    ownerRef(n.inner.Succ()),
		Predecessor:  ownerRef(n.inner.Pred()),
		OutLinks:     len(n.inner.OutLinks()),
		InLinks:      n.inner.InDegree(),
		StoredItems:  n.inner.StoredItems(),
		ReplicaItems: n.inner.ReplicaItems(),
		Tombstones:   n.inner.Tombstones(),
		AntiEntropy: SyncStats{
			Rounds:           sync.Rounds,
			KeysPushed:       sync.KeysPushed,
			TombstonesPushed: sync.TombsPushed,
			Dropped:          sync.Dropped,
		},
		RouteCacheHits:    caches.RouteHits,
		RouteCacheMisses:  caches.RouteMisses,
		HotKeyCacheHits:   caches.HotHits,
		HotKeyCacheMisses: caches.HotMisses,
	}
	if st, ok := n.inner.PersistStats(); ok {
		resp.Durable = true
		resp.WALBytes = st.WALBytes
		resp.WALFrames = int(st.Frames)
		if st.LastSnapshot != 0 {
			resp.LastSnapshot = time.Unix(0, st.LastSnapshot)
		}
	}
	return resp, nil
}
