package sim

import (
	"math"
	"testing"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
)

// smallConfig keeps integration tests fast while exercising the full path.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetSize = 600
	cfg.Checkpoints = []int{300, 600}
	cfg.QueriesPerMeasure = 400
	cfg.Paranoid = true
	return cfg
}

func TestNewValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetSize = 1
	if _, err := New(cfg); err == nil {
		t.Error("tiny TargetSize must be rejected")
	}
	cfg = smallConfig()
	cfg.Keys = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil key distribution must be rejected")
	}
	cfg = smallConfig()
	cfg.Degrees = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil degree distribution must be rejected")
	}
	cfg = smallConfig()
	cfg.Checkpoints = []int{999999}
	if _, err := New(cfg); err == nil {
		t.Error("checkpoint beyond target must be rejected")
	}
}

func TestRunOscarEndToEnd(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 2 {
		t.Fatalf("got %d checkpoints", len(res.Checkpoints))
	}
	for _, m := range res.Checkpoints {
		if m.Failed != 0 {
			t.Errorf("size %d: %d failed lookups in a fault-free network", m.Size, m.Failed)
		}
		if m.AvgSearchCost <= 0 || m.AvgSearchCost > 20 {
			t.Errorf("size %d: implausible search cost %.2f", m.Size, m.AvgSearchCost)
		}
		if m.DegreeVolume < 0.5 || m.DegreeVolume > 1 {
			t.Errorf("size %d: degree volume %.2f out of range", m.Size, m.DegreeVolume)
		}
		if len(m.RelativeLoads) != m.Size {
			t.Errorf("size %d: %d relative loads", m.Size, len(m.RelativeLoads))
		}
	}
	// Cost grows (roughly) with size.
	if res.Checkpoints[1].AvgSearchCost < res.Checkpoints[0].AvgSearchCost-0.5 {
		t.Errorf("cost shrank with size: %.2f -> %.2f",
			res.Checkpoints[0].AvgSearchCost, res.Checkpoints[1].AvgSearchCost)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Measurement {
		cfg := smallConfig()
		cfg.TargetSize = 300
		cfg.Checkpoints = []int{300}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Checkpoints[0]
	}
	a, b := run(), run()
	if a.AvgSearchCost != b.AvgSearchCost || a.DegreeVolume != b.DegreeVolume {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestSeedChangesResults(t *testing.T) {
	run := func(seed int64) float64 {
		cfg := smallConfig()
		cfg.Seed = seed
		cfg.TargetSize = 300
		cfg.Checkpoints = []int{300}
		s, _ := New(cfg)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Checkpoints[0].AvgSearchCost
	}
	if run(1) == run(2) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestMercurySystem(t *testing.T) {
	cfg := smallConfig()
	cfg.System = SystemMercury
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := res.Checkpoints[len(res.Checkpoints)-1]
	if final.Failed != 0 {
		t.Errorf("mercury: %d failed lookups", final.Failed)
	}
	if final.DegreeVolume <= 0.3 || final.DegreeVolume >= 0.9 {
		t.Errorf("mercury degree volume %.2f outside its regime", final.DegreeVolume)
	}
}

func TestKleinbergSystem(t *testing.T) {
	cfg := smallConfig()
	cfg.System = SystemKleinberg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := res.Checkpoints[len(res.Checkpoints)-1]
	if final.Failed != 0 {
		t.Errorf("kleinberg: %d failed lookups", final.Failed)
	}
	if final.AvgSearchCost <= 0 {
		t.Error("kleinberg: no cost measured")
	}
}

func TestOscarBeatsOrMatchesMercuryOnSkewedKeys(t *testing.T) {
	avgCost := func(system System) (float64, float64) {
		cfg := smallConfig()
		cfg.TargetSize = 500
		cfg.Checkpoints = []int{500}
		cfg.System = system
		cfg.Keys = keydist.GnutellaLike()
		s, _ := New(cfg)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Checkpoints[0].AvgSearchCost, res.Checkpoints[0].DegreeVolume
	}
	oCost, oVol := avgCost(SystemOscar)
	mCost, mVol := avgCost(SystemMercury)
	if oCost > mCost {
		t.Errorf("Oscar cost %.2f worse than Mercury %.2f on skewed keys", oCost, mCost)
	}
	if oVol <= mVol {
		t.Errorf("Oscar volume %.2f not above Mercury %.2f", oVol, mVol)
	}
}

func TestChurnMeasurement(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetSize = 500
	cfg.Checkpoints = []int{500}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	healthy := s.Measure(false)
	victims := s.Churn(0.33)
	if len(victims) != 165 {
		t.Fatalf("killed %d, want 165", len(victims))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	faulty := s.Measure(true)
	if faulty.Failed != 0 {
		t.Errorf("%d failed lookups under churn", faulty.Failed)
	}
	if faulty.AvgSearchCost <= healthy.AvgSearchCost {
		t.Errorf("churn did not raise cost: %.2f vs %.2f", faulty.AvgSearchCost, healthy.AvgSearchCost)
	}
	if faulty.AvgProbes <= 0 {
		t.Error("no dead-link probes recorded under churn")
	}
}

func TestHeterogeneousDegrees(t *testing.T) {
	for _, dist := range []degreedist.Distribution{
		degreedist.Constant(27),
		degreedist.PaperStepped(),
		degreedist.PaperRealistic(),
	} {
		cfg := smallConfig()
		cfg.TargetSize = 400
		cfg.Checkpoints = []int{400}
		cfg.Degrees = dist
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		m := res.Checkpoints[0]
		if m.Failed != 0 {
			t.Errorf("%s: %d failures", dist.Name(), m.Failed)
		}
		if m.AvgSearchCost > 15 {
			t.Errorf("%s: cost %.2f implausible", dist.Name(), m.AvgSearchCost)
		}
		// Caps respected even under heterogeneity.
		for _, id := range s.Net().AliveIDs() {
			n := s.Net().Node(id)
			if n.InDeg() > n.MaxIn || len(n.Out) > n.MaxOut {
				t.Errorf("%s: node %d violates its caps", dist.Name(), id)
			}
		}
	}
}

func TestSeparateInOutCaps(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetSize = 300
	cfg.Checkpoints = []int{300}
	cfg.Degrees = degreedist.PaperStepped()
	cfg.SeparateInOut = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// With separate draws, some peer should have MaxIn != MaxOut.
	diff := false
	for _, id := range s.Net().AliveIDs() {
		n := s.Net().Node(id)
		if n.MaxIn != n.MaxOut {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("SeparateInOut produced identical caps everywhere")
	}
}

func TestRelativeLoadsSorted(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetSize = 300
	cfg.Checkpoints = []int{300}
	s, _ := New(cfg)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	loads := res.Checkpoints[0].RelativeLoads
	for i := 1; i < len(loads); i++ {
		if loads[i] < loads[i-1] {
			t.Fatal("relative loads must be sorted ascending")
		}
	}
	if loads[len(loads)-1] > 1+1e-9 {
		t.Error("relative load above 1 — in-cap violated")
	}
	if math.IsNaN(loads[0]) {
		t.Error("NaN load")
	}
}
