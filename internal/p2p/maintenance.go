package p2p

import (
	"context"
	"sync"
	"time"
)

// Maintenance runs a node's periodic background work: ring stabilisation
// every interval, a full rewiring pass every rewireEvery intervals (0
// disables rewiring), and — when the node is configured with an
// AntiEntropy interval — a digest sync of the replica chain on its own
// cadence. Stop it with Stop; stopping is idempotent.
type Maintenance struct {
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartMaintenance launches the background loop for the node. It returns a
// handle whose Stop must be called before the node is closed (a ticking
// maintenance loop on a closed node would probe dead endpoints forever).
// Each round runs under a context cancelled by Stop, so a round in flight
// aborts promptly instead of finishing against a closing node.
func (n *Node) StartMaintenance(interval time.Duration, rewireEvery int) *Maintenance {
	m := &Maintenance{stop: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		go func() {
			<-m.stop
			cancel()
		}()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		ticks := 0
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				if n.isDown() {
					return
				}
				n.Stabilize(ctx)
				ticks++
				if rewireEvery > 0 && ticks%rewireEvery == 0 {
					_ = n.Rewire(ctx)
				}
			}
		}
	}()
	if ae := n.cfg.AntiEntropy; ae > 0 && n.cfg.Replicas > 1 {
		// Anti-entropy runs on its own ticker: its cadence is a durability
		// knob (how long silent divergence can live), independent of how
		// aggressively the ring is repaired.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			ticker := time.NewTicker(ae)
			defer ticker.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-ticker.C:
					if n.isDown() {
						return
					}
					n.AntiEntropy(ctx)
				}
			}
		}()
	}
	return m
}

// Stop terminates the loop, cancels any round in flight, and waits for the
// loop to exit.
func (m *Maintenance) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}
