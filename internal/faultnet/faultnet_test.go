package faultnet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// pair wires two endpoints on a fresh fabric, the second serving a
// trivial OK handler, and returns the first wrapped in net's faults.
func pair(t *testing.T, net *Network, served *atomic.Int64) (transport.Transport, transport.Addr) {
	t.Helper()
	fabric := transport.NewFabric()
	a := fabric.Endpoint()
	b := fabric.Endpoint()
	a.Serve(func(*transport.Request) *transport.Response { return &transport.Response{OK: true} })
	b.Serve(func(*transport.Request) *transport.Response {
		if served != nil {
			served.Add(1)
		}
		return &transport.Response{OK: true}
	})
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return net.Wrap(a), b.Addr()
}

// schedule records which of n calls fail, and how — the observable fault
// schedule of one link.
func schedule(t *testing.T, tr transport.Transport, dst transport.Addr, n int) []byte {
	t.Helper()
	out := make([]byte, n)
	for i := range out {
		_, err := tr.CallCtx(context.Background(), dst, &transport.Request{Op: transport.OpPing})
		switch {
		case err == nil:
			out[i] = '.'
		case errors.Is(err, transport.ErrOverloaded):
			out[i] = 'o'
		case errors.Is(err, transport.ErrUnreachable):
			out[i] = 'x'
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	return out
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	faults := Faults{Drop: 0.2, Overload: 0.1}
	run := func(seed int64) string {
		net := New(seed)
		net.SetDefault(faults)
		tr, dst := pair(t, net, nil)
		return string(schedule(t, tr, dst, 400))
	}
	first, second := run(42), run(42)
	if first != second {
		t.Fatalf("same seed produced different fault schedules:\n%s\n%s", first, second)
	}
	if run(43) == first {
		t.Fatal("different seeds produced the same 400-call fault schedule")
	}
	// The schedule must actually contain faults of both kinds — and
	// successes — or determinism is vacuous.
	for _, want := range []byte{'.', 'x', 'o'} {
		found := false
		for _, c := range []byte(first) {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("schedule %s contains no %q", first, want)
		}
	}
}

func TestDropAndOverloadAreTyped(t *testing.T) {
	net := New(1)
	tr, dst := pair(t, net, nil)

	net.SetDefault(Faults{Drop: 1})
	if _, err := tr.CallCtx(context.Background(), dst, &transport.Request{Op: transport.OpPing}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("full drop = %v, want ErrUnreachable", err)
	}
	net.SetDefault(Faults{Overload: 1})
	if _, err := tr.CallCtx(context.Background(), dst, &transport.Request{Op: transport.OpPing}); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("full overload = %v, want ErrOverloaded", err)
	}
	net.SetDefault(Faults{})
	if _, err := tr.CallCtx(context.Background(), dst, &transport.Request{Op: transport.OpPing}); err != nil {
		t.Fatalf("clean link = %v", err)
	}
}

func TestAsymmetricPartitionAndHeal(t *testing.T) {
	net := New(1)
	fabric := transport.NewFabric()
	a, b := fabric.Endpoint(), fabric.Endpoint()
	ok := func(*transport.Request) *transport.Response { return &transport.Response{OK: true} }
	a.Serve(ok)
	b.Serve(ok)
	wa, wb := net.Wrap(a), net.Wrap(b)
	ctx := context.Background()
	ping := &transport.Request{Op: transport.OpPing}

	net.PartitionOneWay([]transport.Addr{a.Addr()}, []transport.Addr{b.Addr()})
	if _, err := wa.CallCtx(ctx, b.Addr(), ping); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("blocked direction = %v, want ErrUnreachable", err)
	}
	if _, err := wb.CallCtx(ctx, a.Addr(), ping); err != nil {
		t.Fatalf("open direction = %v, want success (partition must be asymmetric)", err)
	}

	net.Partition([]transport.Addr{a.Addr()}, []transport.Addr{b.Addr()})
	if _, err := wb.CallCtx(ctx, a.Addr(), ping); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("bidirectional partition, reverse = %v, want ErrUnreachable", err)
	}

	net.Heal()
	if _, err := wa.CallCtx(ctx, b.Addr(), ping); err != nil {
		t.Fatalf("healed = %v", err)
	}
	if got := net.Stats().Blocked; got != 2 {
		t.Fatalf("Stats.Blocked = %d, want 2", got)
	}
}

func TestDuplicationRedelivers(t *testing.T) {
	var served atomic.Int64
	net := New(9)
	net.SetDefault(Faults{Duplicate: 1})
	tr, dst := pair(t, net, &served)
	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := tr.CallCtx(context.Background(), dst, &transport.Request{Op: transport.OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for served.Load() < 2*calls && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := served.Load(); got != 2*calls {
		t.Fatalf("handler ran %d times for %d duplicated calls, want %d", got, calls, 2*calls)
	}
	if got := net.Stats().Duplicated; got != calls {
		t.Fatalf("Stats.Duplicated = %d, want %d", got, calls)
	}
}

func TestLatencyAndSlowNode(t *testing.T) {
	net := New(5)
	net.SetDefault(Faults{Latency: 2 * time.Millisecond, Jitter: time.Millisecond})
	tr, dst := pair(t, net, nil)
	ctx := context.Background()

	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := tr.CallCtx(ctx, dst, &transport.Request{Op: transport.OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 calls at >=2ms injected latency took %v", elapsed)
	}
	base := net.Stats().Delayed

	net.SlowNode(dst, 8)
	if _, err := tr.CallCtx(ctx, dst, &transport.Request{Op: transport.OpPing}); err != nil {
		t.Fatal(err)
	}
	slowed := net.Stats().Delayed - base
	if slowed < 16*time.Millisecond {
		t.Fatalf("slow-node call injected only %v, want >= 8x base latency", slowed)
	}

	// A cancelled context aborts the injected delay without waiting it out.
	net.SlowNode(dst, 1)
	net.SetDefault(Faults{Latency: time.Hour})
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := tr.CallCtx(cctx, dst, &transport.Request{Op: transport.OpPing}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed call under expired ctx = %v, want DeadlineExceeded", err)
	}
}

func TestPlanRunsPhasesInOrder(t *testing.T) {
	net := New(1)
	tr, dst := pair(t, net, nil)
	ctx := context.Background()
	var names []string
	plan := Plan{
		OnPhase: func(ph Phase) { names = append(names, ph.Name) },
		Phases: []Phase{
			{Name: "degrade", Apply: func(n *Network) { n.SetDefault(Faults{Drop: 1}) }},
			{Name: "heal", Apply: func(n *Network) { n.SetDefault(Faults{}) }},
		},
	}
	if err := plan.Run(ctx, net); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "degrade" || names[1] != "heal" {
		t.Fatalf("phases ran as %v", names)
	}
	if _, err := tr.CallCtx(ctx, dst, &transport.Request{Op: transport.OpPing}); err != nil {
		t.Fatalf("after healing plan: %v", err)
	}

	// Cancellation stops mid-plan and surfaces the context error.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	err := Plan{Phases: []Phase{{Name: "wait", Duration: time.Hour}}}.Run(cctx, net)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled plan = %v, want Canceled", err)
	}
}
