// Tcpcluster: a live Oscar cluster on loopback TCP sockets through the
// public oscar.Client API — real listeners, pooled persistent connections
// multiplexing concurrent RPCs, Chord-style stabilisation, walk-based
// partition discovery and link acquisition, puts/gets/deletes/range
// queries, a concurrent workload burst, a deadline-bounded call, and a
// crash that the ring heals around. This is the deployment path; the
// sequential simulator is only for 10000-peer experiments.
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	oscar "github.com/oscar-overlay/oscar"
)

func main() {
	ctx := context.Background()
	const size = 12
	var nodes []*oscar.Node

	fmt.Println("spawning", size, "nodes on 127.0.0.1…")
	for i := 0; i < size; i++ {
		n, err := oscar.StartNode(oscar.NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    oscar.KeyFromFloat(float64(i)/size + 0.001),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				log.Fatalf("node %d join: %v", i, err)
			}
		}
		nodes = append(nodes, n)
		fmt.Printf("  node %2d @ %s key=%s\n", i, n.Addr(), n.Key())
	}

	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	links := 0
	for _, n := range nodes {
		if err := n.Rewire(ctx); err != nil {
			log.Fatal(err)
		}
		info, err := n.Info(ctx)
		if err != nil {
			log.Fatal(err)
		}
		links += info.OutLinks
	}
	fmt.Printf("overlay wired: %d long-range links\n", links)

	key := oscar.KeyFromFloat(0.77)
	put, err := nodes[2].Put(ctx, key, []byte("stored over TCP"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put through node 2: owner %s, %d messages\n", put.Owner.Addr, put.Cost)
	got, err := nodes[9].Get(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get through node 9: %q (%d messages)\n", got.Value, got.Cost)

	// Every operation takes a context: a deadline bounds the whole
	// multi-hop call, not just one RPC.
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	if _, err := nodes[4].Lookup(dctx, oscar.KeyFromFloat(0.25)); err != nil {
		log.Fatal(err)
	}
	cancel()
	fmt.Println("deadline-bounded lookup ok")

	// A concurrent burst: every worker multiplexes its RPCs over the same
	// pooled connections instead of dialing per call.
	const workers, opsPer = 16, 25
	fmt.Printf("\nconcurrent workload: %d workers x %d put+get…\n", workers, opsPer)
	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := nodes[w%len(nodes)]
			for j := 0; j < opsPer; j++ {
				k := oscar.KeyFromFloat(float64(w*opsPer+j) / (workers * opsPer))
				v := []byte(fmt.Sprintf("w%d-%d", w, j))
				if _, err := node.Put(ctx, k, v); err != nil {
					failed.Add(1)
					continue
				}
				res, err := nodes[(w+3)%len(nodes)].Get(ctx, k)
				if err != nil || !bytes.Equal(res.Value, v) {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * opsPer * 2
	fmt.Printf("%d ops in %v (%.0f ops/s), %d failures\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), failed.Load())

	fmt.Println("\ncrashing node 5…")
	_ = nodes[5].Close()
	for round := 0; round < 4; round++ {
		for i, n := range nodes {
			if i != 5 {
				n.Stabilize(ctx)
			}
		}
	}
	res, err := nodes[1].Lookup(ctx, oscar.KeyFromFloat(0.99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup after crash: owner key=%s in %d messages — ring healed\n", res.Owner.Key, res.Cost)

	for i, n := range nodes {
		if i != 5 {
			_ = n.Close()
		}
	}
	fmt.Println("cluster shut down")
}
