package partition

import (
	"math"
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

// buildNet creates n peers with keys from dist, ring-stitched, each with a
// few random long-range links for walk mixing.
func buildNet(t *testing.T, n int, dist keydist.Distribution, seed int64) (*graph.Network, *ring.Ring) {
	t.Helper()
	g := graph.New()
	r := ring.New(g)
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		node := g.Add(dist.Sample(rnd), 64, 64)
		r.Insert(node.ID)
	}
	for i := 0; i < n; i++ {
		for l := 0; l < 8; l++ {
			_ = g.AddLink(graph.NodeID(i), graph.NodeID(rnd.Intn(n)))
		}
	}
	return g, r
}

func TestBuildExactHalving(t *testing.T) {
	g, r := buildNet(t, 1024, keydist.Uniform{}, 1)
	u := graph.NodeID(0)
	p := BuildExact(g, r, u)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Expected levels: ~log2(1023) ≈ 10.
	if p.Count() < 9 || p.Count() > 12 {
		t.Errorf("levels = %d, want ≈10", p.Count())
	}
	// Population halving: partition i holds ≈ n/2^(i+1) peers.
	for i := 0; i < p.Count() && i < 5; i++ {
		got := r.CountAliveInRange(p.Range(i))
		want := 1024 >> uint(i+1)
		if got < want/2 || got > want*2 {
			t.Errorf("partition %d holds %d peers, want ≈%d", i, got, want)
		}
	}
}

func TestBuildExactCoversPopulation(t *testing.T) {
	g, r := buildNet(t, 257, keydist.GnutellaLike(), 2)
	u := graph.NodeID(13)
	p := BuildExact(g, r, u)
	total := 0
	for i := 0; i < p.Count(); i++ {
		total += r.CountAliveInRange(p.Range(i))
	}
	// Partitions tile the circle minus u. If another peer shares u's key it
	// may be counted once more; with random 64-bit keys that has vanishing
	// probability.
	if total != g.AliveCount()-1 {
		t.Errorf("partitions cover %d peers, want %d", total, g.AliveCount()-1)
	}
}

func TestBuildExactDisjoint(t *testing.T) {
	g, r := buildNet(t, 200, keydist.GnutellaLike(), 3)
	p := BuildExact(g, r, graph.NodeID(7))
	seen := map[graph.NodeID]int{}
	for i := 0; i < p.Count(); i++ {
		for _, id := range r.AliveInRange(p.Range(i)) {
			seen[id]++
			if seen[id] > 1 {
				t.Fatalf("peer %d appears in multiple partitions", id)
			}
		}
	}
	if seen[7] != 0 {
		t.Error("the node itself must not belong to any partition")
	}
}

func TestBuildExactTinyNetworks(t *testing.T) {
	// n=2: exactly one partition containing the other peer.
	g := graph.New()
	r := ring.New(g)
	a := g.Add(100, 4, 4)
	b := g.Add(200, 4, 4)
	r.Insert(a.ID)
	r.Insert(b.ID)
	p := BuildExact(g, r, a.ID)
	if p.Count() != 1 {
		t.Fatalf("n=2: levels = %d, want 1", p.Count())
	}
	if !p.Range(0).Contains(b.Key) {
		t.Error("n=2: partition must contain the peer")
	}
	// n=1: no partitions.
	g1 := graph.New()
	r1 := ring.New(g1)
	solo := g1.Add(1, 4, 4)
	r1.Insert(solo.ID)
	if p := BuildExact(g1, r1, solo.ID); p.Count() != 0 {
		t.Errorf("n=1: levels = %d, want 0", p.Count())
	}
}

func TestBuildSampledMatchesExactOnUniform(t *testing.T) {
	g, r := buildNet(t, 512, keydist.Uniform{}, 4)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(5)))
	u := graph.NodeID(3)
	exact := BuildExact(g, r, u)
	sampled := BuildSampled(g, w, u, SampleParams{Samples: 24, Steps: 12, MaxLevels: 48})
	if err := sampled.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := sampled.Count() - exact.Count(); d < -3 || d > 3 {
		t.Errorf("sampled levels %d vs exact %d", sampled.Count(), exact.Count())
	}
	// First border (global median from u) should be in the same ballpark:
	// within a quarter circle of the exact one.
	de := float64(exact.NodeKey.Distance(exact.Borders[0])) / math.Exp2(64)
	ds := float64(sampled.NodeKey.Distance(sampled.Borders[0])) / math.Exp2(64)
	if math.Abs(de-ds) > 0.25 {
		t.Errorf("first border at clockwise fraction %.3f (sampled) vs %.3f (exact)", ds, de)
	}
}

func TestBuildSampledPartitionPopulations(t *testing.T) {
	// The core quality claim: even on a spiky distribution, sampled
	// partitions hold roughly geometrically decreasing populations.
	g, r := buildNet(t, 1000, keydist.GnutellaLike(), 6)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(7)))
	u := graph.NodeID(11)
	p := BuildSampled(g, w, u, SampleParams{Samples: 24, Steps: 12, MaxLevels: 48})
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Count() < 6 {
		t.Fatalf("only %d levels on n=1000", p.Count())
	}
	// The far half should hold between 25%% and 75%% of the population —
	// crude, but a uniform-resolution approach fails this on spiky keys.
	far := r.CountAliveInRange(p.Range(0))
	if far < 250 || far > 750 {
		t.Errorf("far half holds %d of 1000 peers", far)
	}
}

func TestBuildSampledSingleton(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	solo := g.Add(42, 4, 4)
	r.Insert(solo.ID)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(1)))
	p := BuildSampled(g, w, solo.ID, DefaultSampleParams())
	if p.Count() != 0 {
		t.Errorf("singleton: levels = %d", p.Count())
	}
}

func TestBuildSampledPair(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	a := g.Add(100, 4, 4)
	b := g.Add(1<<60, 4, 4)
	r.Insert(a.ID)
	r.Insert(b.ID)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(1)))
	p := BuildSampled(g, w, a.ID, DefaultSampleParams())
	if p.Count() != 1 {
		t.Fatalf("pair: levels = %d, want 1", p.Count())
	}
	if !p.Range(0).Contains(b.Key) {
		t.Error("pair: partition must contain the peer")
	}
}

func TestRangesTileCircle(t *testing.T) {
	g, r := buildNet(t, 300, keydist.GnutellaLike(), 8)
	p := BuildExact(g, r, graph.NodeID(0))
	rs := p.Ranges()
	if len(rs) != p.Count() {
		t.Fatalf("Ranges length %d vs Count %d", len(rs), p.Count())
	}
	// Consecutive ranges must be adjacent: Range(i).Start == Range(i+1).End.
	for i := 1; i < len(rs); i++ {
		if rs[i].End != rs[i-1].Start {
			t.Errorf("range %d not adjacent to %d: %v vs %v", i, i-1, rs[i], rs[i-1])
		}
	}
	// The first range ends at the node key; the whole tiling is anchored there.
	if rs[0].End != p.NodeKey {
		t.Error("far half must end at the node key")
	}
}

func TestCheckInvariantsCatchesBadBorders(t *testing.T) {
	p := &Partitions{Node: 0, NodeKey: 100, Borders: []keyspace.Key{100}}
	if err := p.CheckInvariants(); err == nil {
		t.Error("border equal to node key must be rejected")
	}
	p = &Partitions{Node: 0, NodeKey: 100, Borders: []keyspace.Key{500, 900}}
	if err := p.CheckInvariants(); err == nil {
		t.Error("borders moving away from the node must be rejected")
	}
	p = &Partitions{Node: 0, NodeKey: 100, Borders: []keyspace.Key{900, 500, 200}}
	if err := p.CheckInvariants(); err != nil {
		t.Errorf("valid borders rejected: %v", err)
	}
}
