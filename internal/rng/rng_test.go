package rng

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, "keys")
	b := Derive(42, "keys")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,label) must yield identical streams")
		}
	}
}

func TestDeriveLabelsIndependent(t *testing.T) {
	a := Derive(42, "keys")
	b := Derive(42, "degrees")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different labels look correlated: %d/64 equal draws", same)
	}
}

func TestDeriveSeedsIndependent(t *testing.T) {
	a := Derive(1, "keys")
	b := Derive(2, "keys")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds look correlated: %d/64 equal draws", same)
	}
}

func TestDeriveNDistinctPerIndex(t *testing.T) {
	seen := make(map[uint64]bool)
	for n := 0; n < 200; n++ {
		v := DeriveN(7, "node", n).Uint64()
		if seen[v] {
			t.Fatalf("collision in first draw across indices at n=%d", n)
		}
		seen[v] = true
	}
}

func TestDeriveNDeterministic(t *testing.T) {
	if DeriveN(7, "node", 13).Uint64() != DeriveN(7, "node", 13).Uint64() {
		t.Fatal("DeriveN must be deterministic")
	}
}
