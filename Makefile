# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

# Packages with concurrency-sensitive code; the race job scopes to these
# to keep CI fast (the full suite still runs race-free in `test`).
RACE_PKGS = ./internal/transport/... ./internal/p2p/...

.PHONY: all build test race bench bench-replication bench-antientropy bench-stream bench-wal bench-transport bench-routing fmt fmt-check vet examples conformance soak soak-smoke soak-docker ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Examples and commands must stay vet-clean and buildable: they are the
# documentation of the public Client API.
examples:
	$(GO) vet ./examples/... ./cmd/...
	$(GO) build ./examples/... ./cmd/...

# Cross-backend conformance: the identical scenario table against the
# simulator Client and the live Client (in-memory fabric and TCP), the
# crash-durability contract (write with r=3, kill the owner, lose
# nothing), the divergence-heal contract (corrupt a replica, anti-entropy
# repairs exactly the divergence, deletes stay deleted), the write-concern
# contract (w=2 succeeds past a dead replica, w=3 fails with honest ack
# counts), the read-repair contract (a fallback read heals a stale owner
# by exactly the divergence), the ring-size estimate on a ring past
# the old 128-peer walk cap, the mid-scan churn contract (a paged
# scan rides out its serving peer's crash with no loss or duplication),
# and the restart-durability contract (crash a durable owner mid-WAL,
# restart it on the same data dir, lose no acked write, resurrect no
# delete, re-ship only the downtime delta), and the cache stale-safety
# contract (route + hot-key caches stay correct across an arc-moving
# join and an owner crash on all three backends) — race detector on. The
# faulted variant (TestFaultedRing) re-runs the scenario table on both
# live fabrics under a seeded 5%-drop/20ms-jitter fault plan plus a
# partition-heal case, and the overload suite pins the p2p contract that
# a shedding peer is retried once and never evicted. The transport
# package contributes the wire-level contracts: codec negotiation (incl.
# a mixed binary/JSON ring and legacy no-handshake peers), TLS round
# trips, and overload shedding (saturate past the in-flight cap: typed
# ErrOverloaded, bounded goroutines, recovery).
conformance:
	$(GO) test -race -run 'TestConformance|TestFaultedRing|TestCrashDurability|TestDivergenceHeal|TestWriteConcern|TestReadRepair|TestRingSizeEstimate|TestLookupCancelled|TestRangeQueryCancelled|TestScanChurn|TestRestartDurability|TestDeleteSurvivesRestart|TestCacheStaleSafety' .
	$(GO) test -race -run 'TestConformance|TestCrashDurability|TestDivergenceHeal|TestWriteConcern|TestReadRepair|TestRingSizeEstimate|TestLookupCancelled|TestRangeQueryCancelled|TestScanChurn|TestRestartDurability|TestDeleteSurvivesRestart|TestOverloadedPeerStaysLinked|TestOverloadRetryOnce|TestOverloadSurfacesTypedError|TestRouteCache|TestHotKeyCache|TestAlpha' ./internal/p2p/
	$(GO) test -race -run 'TestCodecNegotiation|TestLegacyFramesAccepted|TestTLS|TestOverloadShedding|TestClientInflightCapOverload' ./internal/transport/

# Replication bench smoke: the replicated write path compiles and runs on
# both backends, including the ack-awaited write-concern ladder (w=1 vs
# quorum vs all) whose overhead CI tracks in bench.txt.
bench-replication:
	$(GO) test -run=NONE -bench='PutReplicated|PutWriteConcern' -benchtime=1x .

# Anti-entropy bench smoke: the arc-digest maintenance cost (incremental vs
# rebuild) and one digest-sync repair pass over a live chain.
bench-antientropy:
	$(GO) test -run=NONE -bench='ArcDigest' -benchtime=1x ./internal/storage/
	$(GO) test -run=NONE -bench='AntiEntropySync' -benchtime=1x ./internal/p2p/

# Streaming bench smoke: the paged Scan iterator end to end (1k and 100k
# item arcs) and a 16 MiB blob round trip through a live cluster.
bench-stream:
	$(GO) test -run=NONE -bench='BenchmarkScan$$|BenchmarkBlobRoundTrip' -benchtime=1x . | tee bench-stream.txt

# Durability bench smoke: WAL append cost under each fsync policy plus
# cold recovery (snapshot load + replay) at 10k and 100k keys; the JSON
# rendering lands in the CI artifact (the raw bench-wal.txt log is
# retired — BENCH_*.json is the interchange format).
bench-wal:
	$(GO) test -run=NONE -bench='BenchmarkWALAppend|BenchmarkRecovery' -benchtime=1x ./internal/wal/ | $(GO) run ./cmd/oscar-benchjson -o BENCH_durability.json

# Transport bench: dial-per-call vs pooled mux, binary vs JSON codec at
# 1/8/64 in-flight, TLS on/off, the frame-encode micro-bench, and the
# live-cluster put+get headline per codec. The JSON rendering is the
# committed BENCH_transport.json (the raw txt log is retired); re-run
# with -benchtime=1s for real measurements (this target is a 1x shape
# check).
bench-transport:
	( $(GO) test -run=NONE -bench='BenchmarkFrameEncode|BenchmarkDialPerCall|BenchmarkPooledMux' -benchtime=1x ./internal/transport/ && \
	  $(GO) test -run=NONE -bench='BenchmarkLiveClusterPutGetTCP' -benchtime=1x . ) | $(GO) run ./cmd/oscar-benchjson -o BENCH_transport.json

# Routing bench: a Zipf hot-key workload against a live in-memory cluster
# after a crash, comparing α=1 with caches off against α=2/α=3 with the
# route and hot-key caches on — lookup hops per op, p50/p95 latency, and
# the owner-vs-cache serve ratio. The JSON rendering is the committed
# BENCH_routing.json; this 1x run is a shape check (regenerate the
# artifact with BENCHTIME=2s for real numbers).
BENCHTIME ?= 1x
bench-routing:
	$(GO) test -run=NONE -bench='BenchmarkRoutingZipf' -benchtime=$(BENCHTIME) -timeout 20m . | $(GO) run ./cmd/oscar-benchjson -o BENCH_routing.json

# Bench smoke: compile and run every benchmark once (shape check, not a
# measurement). Full measurements: `go test -bench=. -benchtime=2s ./...`.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... | tee bench.txt

SOAK_SEED ?= 1
SOAK_NODES ?= 49

# Full-length in-process soak: a 12-node cluster under a seeded fault
# schedule (drops, jitter, slow nodes, an asymmetric partition) and churn
# (flash-crowd join, correlated crash of adjacent arc owners, rolling
# WAL restarts), loaded with a mixed Zipf put/get/delete/scan workload.
# Teardown asserts no w-acked write is lost and the ring reconverges;
# the committed BENCH_soak.json is this target's output.
soak:
	$(GO) run ./cmd/oscar-soak -seed $(SOAK_SEED) -o BENCH_soak.json

# Short race-enabled soak for PR CI: the same schedule compressed — the
# race detector rides the full fault/churn/verify path on every PR.
soak-smoke:
	$(GO) run -race ./cmd/oscar-soak -seed $(SOAK_SEED) -duration 6s -rate 150 -keys 240 -o BENCH_soak_smoke.json

# Containerized soak: a ~50-process fleet (1 seed + N nodes, each with
# seeded per-node fault injection) loaded over real TCP by the soak
# client. Exits with the soak's verdict; the report lands in ./soak-out.
soak-docker:
	docker compose --profile soak up --build --scale node=$(SOAK_NODES) --exit-code-from soak
	docker compose --profile soak down -v

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test examples race conformance bench-replication bench-antientropy bench-stream bench-wal bench-transport bench-routing bench
