package p2p

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// shedTransport wraps an endpoint and sheds outbound calls to selected
// peers with transport.ErrOverloaded — a precise, countable stand-in for
// a saturated receiver. A budget of n sheds the next n calls to the
// target; shedForever sheds every call.
const shedForever = -1

type shedTransport struct {
	transport.Transport
	mu    sync.Mutex
	sheds map[transport.Addr]int
	count map[transport.Addr]int
}

func newShedTransport(inner transport.Transport) *shedTransport {
	return &shedTransport{
		Transport: inner,
		sheds:     make(map[transport.Addr]int),
		count:     make(map[transport.Addr]int),
	}
}

func (s *shedTransport) shed(addr transport.Addr, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sheds[addr] = n
}

func (s *shedTransport) shedCount(addr transport.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count[addr]
}

func (s *shedTransport) CallCtx(ctx context.Context, addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	s.mu.Lock()
	rem := s.sheds[addr]
	if rem != 0 {
		if rem > 0 {
			s.sheds[addr] = rem - 1
		}
		s.count[addr]++
		s.mu.Unlock()
		return nil, fmt.Errorf("shed by test: %w", transport.ErrOverloaded)
	}
	s.mu.Unlock()
	return s.Transport.CallCtx(ctx, addr, req)
}

func (s *shedTransport) Call(addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	return s.CallCtx(context.Background(), addr, req)
}

// shedRing builds a 4-node ring whose node 0 speaks through a
// shedTransport, so tests can saturate any peer from node 0's viewpoint.
func shedRing(t *testing.T) ([]*Node, *shedTransport) {
	t.Helper()
	fabric := transport.NewFabric()
	shed := newShedTransport(fabric.Endpoint())
	var nodes []*Node
	for i := 0; i < 4; i++ {
		var tr transport.Transport = fabric.Endpoint()
		if i == 0 {
			tr = shed
		}
		n := mustNode(t, tr, Config{
			Key: keyspace.FromFloat(float64(i) / 4), MaxIn: 8, MaxOut: 8, Seed: int64(i),
		})
		if i > 0 {
			if err := n.Join(context.Background(), nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	return nodes, shed
}

// TestOverloadedPeerStaysLinked is the regression test for the
// overloaded-means-dead bug: a successor that sheds a whole stabilisation
// round must keep its place in the ring, where it used to be adopted away
// from and its predecessor slot cleared.
func TestOverloadedPeerStaysLinked(t *testing.T) {
	nodes, shed := shedRing(t)
	ctx := context.Background()
	succ := nodes[0].Succ()
	pred := nodes[0].Pred()
	if succ.Addr != nodes[1].Self().Addr {
		t.Fatalf("ring did not form: succ(0) = %v", succ)
	}

	// Saturate both ring neighbours for the entire round (retries
	// included) and stabilise through it.
	shed.shed(succ.Addr, shedForever)
	shed.shed(pred.Addr, shedForever)
	for i := 0; i < 3; i++ {
		nodes[0].Stabilize(ctx)
	}

	if got := nodes[0].Succ().Addr; got != succ.Addr {
		t.Errorf("overloaded successor was evicted: succ = %s, want %s", got, succ.Addr)
	}
	if got := nodes[0].Pred().Addr; got != pred.Addr {
		t.Errorf("overloaded predecessor was dropped: pred = %s, want %s", got, pred.Addr)
	}

	// Heal the overload: the same pointers keep working with zero repair
	// traffic, proving nothing was torn down meanwhile.
	shed.shed(succ.Addr, 0)
	shed.shed(pred.Addr, 0)
	if _, _, err := nodes[0].Lookup(ctx, keyspace.FromFloat(0.6)); err != nil {
		t.Fatalf("lookup after overload cleared: %v", err)
	}
}

// TestOverloadRetryOnce: a single shed is absorbed by the one-retry
// contract — the op succeeds and the peer saw exactly one shed call.
func TestOverloadRetryOnce(t *testing.T) {
	nodes, shed := shedRing(t)
	ctx := context.Background()
	key := keyspace.FromFloat(0.6) // owned by node 3 (keys at 0, .25, .5, .75)

	owner, _, err := nodes[0].Lookup(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	shed.shed(owner.Addr, 1)
	if _, err := nodes[0].Put(ctx, key, []byte("v")); err != nil {
		t.Fatalf("put through a once-shedding owner = %v, want success via retry", err)
	}
	if got := shed.shedCount(owner.Addr); got != 1 {
		t.Fatalf("owner shed %d calls, want exactly 1", got)
	}
	res, err := nodes[0].Get(ctx, key)
	if err != nil || !res.Found || string(res.Value) != "v" {
		t.Fatalf("get after retried put = (%+v, %v)", res, err)
	}
}

// TestOverloadSurfacesTypedError: when the shed persists past the retry,
// the typed error must reach the caller — not be converted into a
// dead-peer no-route — and with no deadline budget the retry is skipped.
func TestOverloadSurfacesTypedError(t *testing.T) {
	nodes, shed := shedRing(t)
	ctx := context.Background()
	key := keyspace.FromFloat(0.6)

	owner, _, err := nodes[0].Lookup(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	shed.shed(owner.Addr, shedForever)
	_, err = nodes[0].Put(ctx, key, []byte("v"))
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("put against a saturated owner = %v, want ErrOverloaded to surface", err)
	}
	if errors.Is(err, ErrNoRoute) {
		t.Fatalf("overload was misread as no-route: %v", err)
	}

	// A context with no room for the backoff skips the retry: exactly one
	// shed per attempt, and the typed error still surfaces.
	before := shed.shedCount(owner.Addr)
	dctx, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
	defer cancel()
	_, err = nodes[0].Put(dctx, key, []byte("v"))
	if err == nil {
		t.Fatal("put with 2ms deadline against a saturated owner succeeded")
	}
	if got := shed.shedCount(owner.Addr) - before; got > 1 {
		t.Errorf("deadline-starved call shed %d times, want at most 1 (no retry budget)", got)
	}
}
