package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

// buildPopulation creates n ring-stitched peers with the given caps and keys
// drawn from dist; no long links yet.
func buildPopulation(t *testing.T, n, maxIn, maxOut int, dist keydist.Distribution, seed int64) (*graph.Network, *ring.Ring) {
	t.Helper()
	g := graph.New()
	r := ring.New(g)
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		node := g.Add(dist.Sample(rnd), maxIn, maxOut)
		r.Insert(node.ID)
	}
	return g, r
}

// wireAll wires every node once in random order.
func wireAll(g *graph.Network, r *ring.Ring, cfg Config, seed int64) WireStats {
	rnd := rand.New(rand.NewSource(seed))
	w := sampling.NewWalker(g, rand.New(rand.NewSource(seed+1)))
	ids := g.AliveIDs()
	rnd.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var total WireStats
	for _, id := range ids {
		st := Wire(g, r, w, id, cfg, rnd)
		total.Add(st)
	}
	return total
}

func TestWireRespectsCaps(t *testing.T) {
	g, r := buildPopulation(t, 300, 8, 8, keydist.Uniform{}, 1)
	wireAll(g, r, DefaultConfig(), 2)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g.ForEachAlive(func(n *graph.Node) {
		if n.InDeg() > n.MaxIn {
			t.Errorf("node %d exceeded in cap: %d > %d", n.ID, n.InDeg(), n.MaxIn)
		}
		if len(n.Out) > n.MaxOut {
			t.Errorf("node %d exceeded out cap: %d > %d", n.ID, len(n.Out), n.MaxOut)
		}
	})
}

func TestWireOracleMode(t *testing.T) {
	g, r := buildPopulation(t, 300, 12, 12, keydist.GnutellaLike(), 3)
	cfg := DefaultConfig()
	cfg.Oracle = true
	stats := wireAll(g, r, cfg, 4)
	if stats.SampleCost != 0 || stats.PickCost != 0 {
		t.Error("oracle mode must not spend walk messages")
	}
	if float64(stats.LinksMade) < 0.7*float64(stats.LinksWanted) {
		t.Errorf("oracle wiring filled only %d/%d slots", stats.LinksMade, stats.LinksWanted)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWireSampledFillsSlots(t *testing.T) {
	g, r := buildPopulation(t, 400, 16, 16, keydist.GnutellaLike(), 5)
	stats := wireAll(g, r, DefaultConfig(), 6)
	if float64(stats.LinksMade) < 0.7*float64(stats.LinksWanted) {
		t.Errorf("sampled wiring filled only %d/%d slots", stats.LinksMade, stats.LinksWanted)
	}
	if stats.SampleCost == 0 || stats.PickCost == 0 {
		t.Error("sampled mode must account walk messages")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWireLevelsGrowLogarithmically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Oracle = true
	var levels [2]float64
	for i, n := range []int{128, 1024} {
		g, r := buildPopulation(t, n, 16, 16, keydist.Uniform{}, 7)
		stats := wireAll(g, r, cfg, 8)
		levels[i] = float64(stats.Levels) / float64(n)
	}
	// log2(1024)/log2(128) = 10/7: the ratio must be clearly sub-linear.
	if levels[1] < levels[0] || levels[1] > levels[0]*2 {
		t.Errorf("levels at n=128: %.1f, at n=1024: %.1f — not logarithmic growth", levels[0], levels[1])
	}
}

// TestHarmonicRankDistribution verifies the core theoretical property: with
// oracle partitions, out-link targets follow the rank-harmonic distribution
// P(rank r) ∝ 1/r regardless of the key distribution — the paper's central
// claim (links chosen partition-uniform × peer-uniform are rank-harmonic).
func TestHarmonicRankDistribution(t *testing.T) {
	for _, dist := range []keydist.Distribution{keydist.Uniform{}, keydist.GnutellaLike()} {
		const n = 1024
		g, r := buildPopulation(t, n, 64, 16, dist, 9)
		cfg := DefaultConfig()
		cfg.Oracle = true
		cfg.PowerOfTwo = false // measure the raw draw, not the balancer
		wireAll(g, r, cfg, 10)

		// Collect clockwise rank of every link target.
		alive := r.AliveOrdered()
		pos := make(map[graph.NodeID]int, n)
		for i, id := range alive {
			pos[id] = i
		}
		var logRanks []float64
		g.ForEachAlive(func(nd *graph.Node) {
			for _, tgt := range nd.Out {
				rank := pos[tgt] - pos[nd.ID]
				if rank < 0 {
					rank += n
				}
				logRanks = append(logRanks, math.Log(float64(rank)))
			}
		})
		// For P(r) ∝ 1/r over [1,n], log(rank) is ≈ uniform over [0, ln n]:
		// mean ≈ ln(n)/2. A uniform-rank draw would give mean ≈ ln(n)-1.
		var sum float64
		for _, lr := range logRanks {
			sum += lr
		}
		mean := sum / float64(len(logRanks))
		want := math.Log(n) / 2
		if math.Abs(mean-want) > 0.8 {
			t.Errorf("%s: mean log-rank %.2f, want ≈%.2f (harmonic)", dist.Name(), mean, want)
		}
	}
}

// TestPowerOfTwoBalancesLoad compares in-degree spread with and without the
// two-choices rule: the paper employs it to balance relative degree load.
func TestPowerOfTwoBalancesLoad(t *testing.T) {
	spread := func(p2c bool) float64 {
		g, r := buildPopulation(t, 500, 27, 27, keydist.GnutellaLike(), 11)
		cfg := DefaultConfig()
		cfg.Oracle = true
		cfg.PowerOfTwo = p2c
		wireAll(g, r, cfg, 12)
		var loads []float64
		g.ForEachAlive(func(n *graph.Node) { loads = append(loads, n.InLoad()) })
		// Spread: std deviation of relative loads.
		var mean, ss float64
		for _, l := range loads {
			mean += l
		}
		mean /= float64(len(loads))
		for _, l := range loads {
			ss += (l - mean) * (l - mean)
		}
		return math.Sqrt(ss / float64(len(loads)))
	}
	with, without := spread(true), spread(false)
	if with >= without {
		t.Errorf("power-of-two should reduce load spread: with=%.4f without=%.4f", with, without)
	}
}

func TestWireDropsOldLinks(t *testing.T) {
	g, r := buildPopulation(t, 100, 16, 16, keydist.Uniform{}, 13)
	cfg := DefaultConfig()
	rnd := rand.New(rand.NewSource(14))
	w := sampling.NewWalker(g, rand.New(rand.NewSource(15)))
	id := g.AliveIDs()[0]
	Wire(g, r, w, id, cfg, rnd)
	first := append([]graph.NodeID(nil), g.Node(id).Out...)
	Wire(g, r, w, id, cfg, rnd)
	if len(g.Node(id).Out) > g.Node(id).MaxOut {
		t.Error("rewiring must not accumulate links")
	}
	_ = first // old links were dropped; accounting verified below
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWireSingleton(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	n := g.Add(1, 4, 4)
	r.Insert(n.ID)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(1)))
	stats := Wire(g, r, w, n.ID, DefaultConfig(), rand.New(rand.NewSource(2)))
	if stats.LinksMade != 0 || stats.Levels != 0 {
		t.Errorf("singleton wired: %+v", stats)
	}
}

func TestWirePair(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	a := g.Add(100, 4, 4)
	b := g.Add(keyspace.Key(1)<<60, 4, 4)
	r.Insert(a.ID)
	r.Insert(b.ID)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(1)))
	stats := Wire(g, r, w, a.ID, DefaultConfig(), rand.New(rand.NewSource(2)))
	if stats.LinksMade == 0 {
		t.Error("a pair must be able to link")
	}
	if !g.Node(a.ID).HasOut(b.ID) {
		t.Error("the only possible target is the other peer")
	}
}

func TestZeroOutCapWiresNothing(t *testing.T) {
	g, r := buildPopulation(t, 50, 8, 8, keydist.Uniform{}, 16)
	n := g.Add(12345, 8, 0) // freeloader: accepts links, opens none
	r.Insert(n.ID)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(17)))
	stats := Wire(g, r, w, n.ID, DefaultConfig(), rand.New(rand.NewSource(18)))
	if stats.LinksMade != 0 || len(g.Node(n.ID).Out) != 0 {
		t.Error("zero out-cap peer must open no links")
	}
}
