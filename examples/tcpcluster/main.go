// Tcpcluster: a live Oscar cluster on loopback TCP sockets — real listeners,
// length-prefixed JSON frames, Chord-style stabilisation, walk-based
// partition discovery and link acquisition, puts/gets/range queries, and a
// crash that the ring heals around. This is the deployment path; the
// sequential simulator is only for 10000-peer experiments.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/p2p"
	"github.com/oscar-overlay/oscar/internal/transport"
)

func main() {
	const size = 12
	var nodes []*p2p.Node

	fmt.Println("spawning", size, "nodes on 127.0.0.1…")
	for i := 0; i < size; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		n := p2p.NewNode(ep, p2p.Config{
			Key:    keyspace.FromFloat(float64(i)/size + 0.001),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if i > 0 {
			if err := n.Join(nodes[0].Self().Addr); err != nil {
				log.Fatalf("node %d join: %v", i, err)
			}
		}
		nodes = append(nodes, n)
		fmt.Printf("  node %2d @ %s key=%s\n", i, n.Self().Addr, n.Self().Key)
	}

	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(); err != nil {
			log.Fatal(err)
		}
	}
	links := 0
	for _, n := range nodes {
		links += len(n.OutLinks())
	}
	fmt.Printf("overlay wired: %d long-range links\n", links)

	key := keyspace.FromFloat(0.77)
	if cost, err := nodes[2].Put(key, []byte("stored over TCP")); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("put through node 2: %d messages\n", cost)
	}
	val, found, cost, err := nodes[9].Get(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get through node 9: %q (found=%v, %d messages)\n", val, found, cost)

	fmt.Println("\ncrashing node 5…")
	_ = nodes[5].Close()
	for round := 0; round < 4; round++ {
		for i, n := range nodes {
			if i != 5 {
				n.Stabilize()
			}
		}
	}
	owner, cost, err := nodes[1].Lookup(keyspace.FromFloat(0.99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup after crash: owner key=%s in %d messages — ring healed\n", owner.Key, cost)

	for i, n := range nodes {
		if i != 5 {
			_ = n.Close()
		}
	}
	fmt.Println("cluster shut down")
}
