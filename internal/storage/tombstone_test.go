package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func TestDeleteRecordsTombstone(t *testing.T) {
	var s Store
	k := keyspace.FromFloat(0.4)
	s.Put(k, []byte("v"))
	if !s.Delete(k) {
		t.Fatal("delete missed the item")
	}
	if _, ok := s.Get(k); ok {
		t.Error("item still readable after delete")
	}
	if _, ok := s.Tombstone(k); !ok {
		t.Error("delete left no tombstone")
	}
	if s.TombstoneCount() != 1 || s.Len() != 0 {
		t.Errorf("len=%d tombs=%d", s.Len(), s.TombstoneCount())
	}

	// A delete of an absent key still records the tombstone: the caller may
	// be clearing copies it cannot see.
	k2 := keyspace.FromFloat(0.5)
	if s.Delete(k2) {
		t.Error("delete of absent key reported existence")
	}
	if _, ok := s.Tombstone(k2); !ok {
		t.Error("absent-key delete left no tombstone")
	}
}

func TestPutClearsTombstone(t *testing.T) {
	var s Store
	k := keyspace.FromFloat(0.4)
	s.Put(k, []byte("v1"))
	s.Delete(k)
	if replaced := s.Put(k, []byte("v2")); replaced {
		t.Error("put after delete reported replacement")
	}
	if _, ok := s.Tombstone(k); ok {
		t.Error("put left the tombstone in place")
	}
	if v, ok := s.Get(k); !ok || string(v) != "v2" {
		t.Errorf("get after re-put = %q, %v", v, ok)
	}
}

func TestSetTombstoneNewestWins(t *testing.T) {
	var s Store
	k := keyspace.FromFloat(0.7)
	s.Put(k, []byte("copy"))
	if !s.SetTombstone(k, 100) {
		t.Error("set tombstone did not remove the live copy")
	}
	s.SetTombstone(k, 50) // older: must not rewind
	if at, _ := s.Tombstone(k); at != 100 {
		t.Errorf("tombstone at = %d, want 100", at)
	}
	s.SetTombstone(k, 200)
	if at, _ := s.Tombstone(k); at != 200 {
		t.Errorf("tombstone at = %d, want 200", at)
	}
}

func TestDropRemovesEveryTrace(t *testing.T) {
	var s Store
	k := keyspace.FromFloat(0.2)
	s.Put(k, []byte("stray"))
	s.Drop(k)
	if _, ok := s.Get(k); ok {
		t.Error("drop left the item")
	}
	if _, ok := s.Tombstone(k); ok {
		t.Error("drop recorded a tombstone")
	}
	s.DeleteAt(k, 5)
	s.Drop(k)
	if s.TombstoneCount() != 0 {
		t.Error("drop left the tombstone")
	}
}

func TestGCTombstones(t *testing.T) {
	var s Store
	s.EnableDigest(4)
	k1, k2 := keyspace.FromFloat(0.1), keyspace.FromFloat(0.6)
	s.DeleteAt(k1, 100)
	s.DeleteAt(k2, 300)
	if got := s.GCTombstones(200); got != 1 {
		t.Fatalf("gc collected %d, want 1", got)
	}
	if _, ok := s.Tombstone(k1); ok {
		t.Error("expired tombstone survived")
	}
	if _, ok := s.Tombstone(k2); !ok {
		t.Error("fresh tombstone collected")
	}
	// The maintained digest must track the collection.
	want := (&Store{}).digestWithTomb(4, k2)
	if !reflect.DeepEqual(s.DigestLeaves(), want) {
		t.Error("digest out of sync after GC")
	}
}

// digestWithTomb builds the expected leaf vector for a single tombstone.
func (s *Store) digestWithTomb(depth int, k keyspace.Key) []uint64 {
	tr := antientropy.NewTree(depth)
	tr.Apply(k, antientropy.TombHash(k))
	return tr.Leaves()
}

func TestExtractTombstones(t *testing.T) {
	var s Store
	lo, mid, hi := keyspace.FromFloat(0.1), keyspace.FromFloat(0.5), keyspace.FromFloat(0.9)
	s.DeleteAt(lo, 1)
	s.DeleteAt(mid, 2)
	s.DeleteAt(hi, 3)
	out := s.ExtractTombstones(keyspace.Range{Start: keyspace.FromFloat(0.4), End: keyspace.FromFloat(0.6)})
	if len(out) != 1 || out[0].Key != mid || out[0].At != 2 {
		t.Fatalf("extracted %v", out)
	}
	if s.TombstoneCount() != 2 {
		t.Errorf("%d tombstones left, want 2", s.TombstoneCount())
	}
	var dst Store
	dst.InsertTombstones(out)
	if at, ok := dst.Tombstone(mid); !ok || at != 2 {
		t.Errorf("insert lost the tombstone: %d, %v", at, ok)
	}
}

// TestMaintainedDigestMatchesOnDemand drives a store through a random
// mutation sequence and checks the incrementally-maintained tree equals a
// from-scratch digest after every step — the invariant the sync protocol
// leans on.
func TestMaintainedDigestMatchesOnDemand(t *testing.T) {
	const depth = 6
	var s Store
	s.EnableDigest(depth)
	rnd := rand.New(rand.NewSource(7))
	keys := make([]keyspace.Key, 40)
	for i := range keys {
		keys[i] = keyspace.Key(rnd.Uint64())
	}
	full := keyspace.FullRange()
	for step := 0; step < 400; step++ {
		k := keys[rnd.Intn(len(keys))]
		switch rnd.Intn(5) {
		case 0, 1:
			s.Put(k, []byte(fmt.Sprintf("v%d", step)))
		case 2:
			s.DeleteAt(k, int64(step))
		case 3:
			s.Drop(k)
		case 4:
			rg := keyspace.Range{Start: k, End: k + 1<<58}
			ext := s.ExtractRange(rg)
			tbs := s.ExtractTombstones(rg)
			// Reinsert half the time, so extraction both shrinks and grows.
			if rnd.Intn(2) == 0 {
				s.InsertBulk(ext)
				s.InsertTombstones(tbs)
			}
		}
		if !reflect.DeepEqual(s.DigestLeaves(), s.Digest(full, depth)) {
			t.Fatalf("step %d: maintained digest diverged from on-demand rebuild", step)
		}
	}
}

func TestSyncStatesMergesItemsAndTombstones(t *testing.T) {
	var s Store
	k1, k2, k3 := keyspace.FromFloat(0.2), keyspace.FromFloat(0.4), keyspace.FromFloat(0.6)
	s.Put(k1, []byte("a"))
	s.DeleteAt(k2, 9)
	s.Put(k3, []byte("c"))
	states := s.SyncStates(keyspace.FullRange())
	if len(states) != 3 {
		t.Fatalf("%d states", len(states))
	}
	want := []antientropy.State{
		{Key: k1, Hash: antientropy.ItemHash(k1, []byte("a"))},
		{Key: k2, Hash: antientropy.TombHash(k2), Deleted: true},
		{Key: k3, Hash: antientropy.ItemHash(k3, []byte("c"))},
	}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("states = %v, want %v", states, want)
	}
	// Range restriction excludes out-of-arc state.
	arc := keyspace.Range{Start: keyspace.FromFloat(0.3), End: keyspace.FromFloat(0.5)}
	if got := s.SyncStates(arc); len(got) != 1 || got[0].Key != k2 {
		t.Errorf("restricted states = %v", got)
	}
}

// BenchmarkArcDigest compares the two digest paths: the O(1) incremental
// update a digest-enabled store pays per write, and the O(arc) from-scratch
// rebuild a replica pays when asked to digest an arc on demand.
func BenchmarkArcDigest(b *testing.B) {
	const items = 8192
	mkStore := func(digest bool) *Store {
		var s Store
		if digest {
			s.EnableDigest(antientropy.DefaultDepth)
		}
		rnd := rand.New(rand.NewSource(3))
		val := make([]byte, 64)
		rnd.Read(val)
		for i := 0; i < items; i++ {
			s.Put(keyspace.Key(rnd.Uint64()), val)
		}
		return &s
	}

	b.Run("incremental-put", func(b *testing.B) {
		s := mkStore(true)
		val := make([]byte, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Overwrite in place: isolates hash+toggle from slice growth.
			s.Put(s.items[i%items].Key, val)
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		s := mkStore(false)
		full := keyspace.FullRange()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := s.Digest(full, antientropy.DefaultDepth); len(got) == 0 {
				b.Fatal("empty digest")
			}
		}
	})
}
