package p2p

import (
	"context"
	"fmt"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// Churn recovery pacing for a scan resume: when a shard's owner and its
// whole replica chain stop answering, the ring is mid-heal — maintenance
// runs on a timer, so routing stays stale for a beat. The session re-routes
// at scanRetryStep intervals for up to scanRetryGrace before giving up.
const (
	scanRetryGrace = 10 * time.Second
	scanRetryStep  = 20 * time.Millisecond
)

// ScanChunk is one page of a streaming arc scan: the items, whether the
// whole arc is now exhausted, and the message/peer accounting the page
// cost. Items never exceed the replicate frame bounds (512 items / 4 MiB),
// so a scan holds at most one bounded page in memory per hop.
type ScanChunk struct {
	// Items are this page's records, clockwise from the requested cursor.
	Items []storage.Item
	// Done reports that the arc is exhausted: no further page exists.
	Done bool
	// Cost is the number of messages this page spent (routing, scan RPCs,
	// fallback probes).
	Cost int
	// Peers is how many peers' shards started contributing within this
	// page — a peer serving several consecutive pages is counted once, on
	// its first.
	Peers int
}

// ScanSession drives one paged scan over the clockwise arc [start, end):
// it routes to the owner of the cursor, pulls frame-bounded pages with
// OpScan, follows successor pointers shard by shard, and — when the
// serving peer dies between pages — resumes through the owner's replica
// chain (piggybacked on routing), whose replica stores cover the dead
// arc, before falling back to one fresh route. A session is not safe for
// concurrent use; the cursor passed to NextPage carries all resume state,
// so a fresh session can continue an old session's scan.
type ScanSession struct {
	n  *Node
	rg keyspace.Range

	cur     transport.PeerRef   // the peer serving the current shard
	chain   []transport.PeerRef // fallback replicas behind cur, best first
	have    bool                // cur is valid
	counted bool                // cur already counted in a chunk's Peers
}

// NewScanSession opens a scan session over [start, end). No messages are
// sent until the first NextPage.
func (n *Node) NewScanSession(start, end keyspace.Key) *ScanSession {
	return &ScanSession{n: n, rg: keyspace.Range{Start: start, End: end}}
}

// NextPage fetches the next page of the scan, clockwise from cursor (which
// must lie within the session's arc). want caps the page's item count on
// top of the frame bounds; <= 0 means the frame bounds alone. A returned
// chunk with Done=false always makes progress: either it carries items
// (resume from the last key plus one) or the session advanced to a
// further shard internally.
func (s *ScanSession) NextPage(ctx context.Context, cursor keyspace.Key, want int) (ScanChunk, error) {
	var out ScanChunk
	rem := keyspace.Range{Start: cursor, End: s.rg.End}
	req := &transport.Request{Op: transport.OpScan, Range: rem, Limit: want, From: s.n.self}
	// retryUntil is zero until the first full resume failure (owner and
	// chain both unreachable); from then on it bounds the churn-recovery
	// retries for this page.
	var retryUntil time.Time
	for hop := 0; hop < maxRouteHops; hop++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if !s.have {
			owner, chain, cost, err := s.n.resolveRead(ctx, cursor)
			out.Cost += cost
			if err != nil {
				// Routing itself fails transiently while the ring digests a
				// crash or a lossy link eats a hop; the first failure opens
				// the churn-recovery window, and inside it the session waits
				// out one maintenance beat and re-routes.
				if retryUntil.IsZero() {
					retryUntil = time.Now().Add(scanRetryGrace)
				} else if time.Now().After(retryUntil) {
					return out, err
				}
				if serr := sleepCtx(ctx, scanRetryStep); serr != nil {
					return out, serr
				}
				continue
			}
			s.cur, s.chain, s.have, s.counted = owner, chain, true, false
		}
		served := s.cur
		out.Cost++
		resp, err := s.n.readRetry(ctx, s.cur.Addr, req)
		if err != nil || !resp.OK {
			if cerr := ctx.Err(); cerr != nil {
				return out, cerr
			}
			// The serving peer died between pages: resume through its
			// replica chain — each member's replica store covers the dead
			// peer's arc, so the cursor loses nothing.
			resp = nil
			for len(s.chain) > 0 {
				fb := s.chain[0]
				s.chain = s.chain[1:]
				out.Cost++
				r, ferr := s.n.callRetry(ctx, fb.Addr, req)
				if ferr == nil && r.OK {
					resp, served = r, fb
					s.cur, s.counted = fb, false
					break
				}
				if cerr := ctx.Err(); cerr != nil {
					return out, cerr
				}
			}
			if resp == nil {
				// Owner and chain all gone (or the chain was never
				// learned): re-route against the healing ring, paced by the
				// churn-recovery window.
				if retryUntil.IsZero() {
					retryUntil = time.Now().Add(scanRetryGrace)
				} else if time.Now().After(retryUntil) {
					return out, fmt.Errorf("p2p: scan: shard %s and its chain unreachable: %v", served.Addr, err)
				}
				s.have = false
				if serr := sleepCtx(ctx, scanRetryStep); serr != nil {
					return out, serr
				}
				continue
			}
		}
		retryUntil = time.Time{}
		if !s.counted {
			out.Peers++
			s.counted = true
		}
		out.Items = resp.Items
		if resp.More {
			// The shard has more in range than one frame: the next call
			// resumes at the same peer from the cursor.
			return out, nil
		}
		// This peer's view of the range is exhausted. The scan is done
		// once the serving peer's arc extends past the range end (its key
		// is beyond it) or the ring is a single peer; otherwise hop to
		// the successor it reported.
		if !rem.Contains(served.Key) || resp.Peer.Addr == served.Addr || resp.Peer.Addr == "" {
			out.Done = true
			return out, nil
		}
		s.advanceTo(resp.Peer)
		if len(out.Items) > 0 {
			return out, nil
		}
		// An empty shard: keep walking within this call so the caller
		// always observes progress.
	}
	return out, fmt.Errorf("p2p: scan: did not terminate")
}

// sleepCtx blocks for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// advanceTo moves the session to the next shard's peer. When the reported
// successor heads the current fallback chain, the chain's tail stays
// usable — the peers behind a node replicate its arc too — otherwise the
// chain is unknown until the next routing step learns a fresh one.
func (s *ScanSession) advanceTo(next transport.PeerRef) {
	if len(s.chain) > 0 && s.chain[0].Addr == next.Addr {
		s.chain = s.chain[1:]
	} else {
		s.chain = nil
	}
	s.cur, s.counted = next, false
}
