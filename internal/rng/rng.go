// Package rng centralises pseudo-random number generation so that every
// simulation is bit-reproducible from a single root seed.
//
// Components never share a *rand.Rand: sharing would make results depend on
// the interleaving of draws across components. Instead each component derives
// its own child generator from the root seed and a stable string label via
// Derive, so adding draws in one component does not perturb another.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Derive returns a fresh generator keyed by the root seed and a stable label.
// The same (seed, label) pair always yields the same stream.
func Derive(seed int64, label string) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// DeriveN returns a generator keyed by the root seed, a label and an index,
// for per-node or per-round streams.
func DeriveN(seed int64, label string, n int) *rand.Rand {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(uint64(n) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
