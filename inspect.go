package oscar

// KeyDump reports where a key lives on one node's stores, bypassing the
// protocol — an inspection hook for harnesses triaging durability or
// convergence failures (cmd/oscar-soak prints one per live node for every
// key that fails its teardown verification).
type KeyDump struct {
	// Primary is the value in the node's primary (owned-arc) store.
	Primary    []byte
	HasPrimary bool
	// Replica is the value in the node's replica store.
	Replica    []byte
	HasReplica bool
	// ReplicaTomb reports a tombstone in the replica store.
	ReplicaTomb bool
}

// DebugKey inspects this node's stores for k directly, without routing.
func (n *Node) DebugKey(k Key) KeyDump {
	var d KeyDump
	d.Primary, d.HasPrimary = n.inner.PrimaryValue(k)
	d.Replica, d.HasReplica = n.inner.ReplicaValue(k)
	d.ReplicaTomb = n.inner.ReplicaDeleted(k)
	return d
}
