package degreedist

import (
	"math"
	"math/rand"
	"testing"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(7)) }

func sampleMean(d Distribution, n int) float64 {
	r := testRand()
	var sum int
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return float64(sum) / float64(n)
}

func TestConstant(t *testing.T) {
	c := Constant(27)
	if c.Mean() != 27 {
		t.Errorf("Mean = %g", c.Mean())
	}
	r := testRand()
	for i := 0; i < 100; i++ {
		if c.Sample(r) != 27 {
			t.Fatal("constant must always return its value")
		}
	}
}

func TestPaperStepped(t *testing.T) {
	s := PaperStepped()
	if got := s.Mean(); got != 27 {
		t.Errorf("stepped mean = %g, want 27", got)
	}
	allowed := map[int]bool{19: true, 23: true, 27: true, 39: true}
	r := testRand()
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		v := s.Sample(r)
		if !allowed[v] {
			t.Fatalf("sampled %d outside {19,23,27,39}", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c < 800 || c > 1200 { // each should be ≈1000
			t.Errorf("cap %d drawn %d/4000 times; not uniform", v, c)
		}
	}
	if got := sampleMean(s, 20000); math.Abs(got-27) > 0.3 {
		t.Errorf("empirical stepped mean = %g", got)
	}
}

func TestPaperRealisticMeanIs27(t *testing.T) {
	d := PaperRealistic()
	if got := d.Mean(); math.Abs(got-27) > 1e-9 {
		t.Errorf("analytic mean = %.12f, want exactly 27", got)
	}
	if got := sampleMean(d, 100000); math.Abs(got-27) > 0.5 {
		t.Errorf("empirical mean = %g, want ≈27", got)
	}
}

func TestPaperRealisticShape(t *testing.T) {
	// Fig 1a: visible probability spikes at default-configuration values on
	// a heavy-tailed envelope, support reaching past 10^2.
	d := PaperRealistic()
	if d.MaxDegree() < 200 {
		t.Fatalf("support too small: %d", d.MaxDegree())
	}
	for _, spike := range []int{20, 27, 32, 50, 100} {
		p := d.Prob(spike)
		left, right := d.Prob(spike-1), d.Prob(spike+1)
		if p <= 2*left || p <= 2*right {
			t.Errorf("degree %d should be a spike: p=%.2g neighbours (%.2g, %.2g)", spike, p, left, right)
		}
	}
	// Envelope decays: non-spike probabilities fall with degree.
	if d.Prob(3) <= d.Prob(150) {
		t.Error("power-law envelope should decay with degree")
	}
	// pdf range matches the published axes (1e-5 .. 1e-1).
	if d.Prob(27) > 0.5 || d.Prob(27) < 1e-3 {
		t.Errorf("main spike mass %.2g implausible vs Fig 1a", d.Prob(27))
	}
}

func TestPMFSamplesInSupport(t *testing.T) {
	d := PaperRealistic()
	r := testRand()
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1 || v > d.MaxDegree() {
			t.Fatalf("sample %d outside support", v)
		}
	}
}

func TestPMFProbSumsToOne(t *testing.T) {
	d := PaperRealistic()
	var sum float64
	for deg := 1; deg <= d.MaxDegree(); deg++ {
		sum += d.Prob(deg)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %.12f", sum)
	}
	if d.Prob(0) != 0 || d.Prob(d.MaxDegree()+1) != 0 {
		t.Error("out-of-support degrees must have probability 0")
	}
}

func TestPMFSampleMatchesProb(t *testing.T) {
	d := PaperRealistic()
	r := testRand()
	const n = 200000
	counts := make([]int, d.MaxDegree()+1)
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for _, deg := range []int{1, 20, 27, 50} {
		emp := float64(counts[deg]) / n
		ana := d.Prob(deg)
		if math.Abs(emp-ana) > 0.005+0.2*ana {
			t.Errorf("degree %d: empirical %.4f vs analytic %.4f", deg, emp, ana)
		}
	}
}

func TestNewPMFValidation(t *testing.T) {
	if _, err := NewPMF("empty", nil); err == nil {
		t.Error("empty weights must be rejected")
	}
	if _, err := NewPMF("neg", []float64{1, -1}); err == nil {
		t.Error("negative weight must be rejected")
	}
	if _, err := NewPMF("zero", []float64{0, 0}); err == nil {
		t.Error("zero mass must be rejected")
	}
}

func TestRealisticSpikyValidation(t *testing.T) {
	if _, err := RealisticSpiky(27, 1); err == nil {
		t.Error("tiny support must be rejected")
	}
	if _, err := RealisticSpiky(27, 64); err == nil {
		t.Error("support below the largest spike must be rejected")
	}
	if _, err := RealisticSpiky(5, 256); err == nil {
		t.Error("unreachable (too small) mean must be rejected")
	}
	if _, err := RealisticSpiky(100, 256); err == nil {
		t.Error("unreachable (too large) mean must be rejected")
	}
}

func TestRealisticSpikyCustomMean(t *testing.T) {
	d, err := RealisticSpiky(20, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Mean(); math.Abs(got-20) > 1e-9 {
		t.Errorf("mean = %g, want 20", got)
	}
}

func TestByName(t *testing.T) {
	for name, wantMean := range map[string]float64{"constant": 27, "stepped": 27, "realistic": 27} {
		d, err := ByName(name, 27)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if math.Abs(d.Mean()-wantMean) > 1e-9 {
			t.Errorf("%s mean = %g, want %g", name, d.Mean(), wantMean)
		}
	}
	if _, err := ByName("nope", 27); err == nil {
		t.Error("unknown name must be rejected")
	}
}
