// Package routing implements greedy key lookup over the overlay, in two
// flavours:
//
//   - Greedy: the fault-free clockwise greedy of Chord/Symphony-style rings —
//     forward to the neighbour closest to the target without overshooting.
//     With Oscar's harmonic links the expected cost is O(log N) and the
//     worst case O(log² N), as the paper states.
//
//   - GreedyBacktrack: the paper's §3 modification for faulty networks. A
//     peer does not know remotely whether a neighbour is alive; trying a
//     dead one costs a probe message ("wasted traffic"), and when every
//     useful neighbour of the current peer is dead or already visited, the
//     query backtracks to the previous peer and continues from its next-best
//     option.
//
// Search cost is counted in messages: forward moves plus dead probes plus
// backtrack moves, which is the metric behind Figures 1(c) and 2.
package routing

import (
	"fmt"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// Result reports one lookup.
type Result struct {
	// Found is false only when the hop budget ran out.
	Found bool
	// Owner is the peer responsible for the target key.
	Owner graph.NodeID
	// Hops counts successful forward moves.
	Hops int
	// Probes counts messages sent to dead neighbours (churn only).
	Probes int
	// Backtracks counts moves back to a previous peer (churn only).
	Backtracks int
	// Path lists the peers visited, starting with the source.
	Path []graph.NodeID
}

// Cost returns the total message count: hops + probes + backtracks.
func (r Result) Cost() int { return r.Hops + r.Probes + r.Backtracks }

// maxHopsFor bounds a lookup: generous enough that only a broken topology
// hits it (the ring alone resolves any lookup in aliveCount hops).
func maxHopsFor(aliveCount int) int { return 4*aliveCount + 16 }

// Greedy routes from the source peer towards the owner of target using
// clockwise non-overshooting greedy forwarding over ring successors and
// long-range links. All links are assumed alive (fault-free networks).
func Greedy(net *graph.Network, rg *ring.Ring, from graph.NodeID, target keyspace.Key) Result {
	res := Result{Owner: rg.OwnerOf(target), Path: []graph.NodeID{from}}
	cur := from
	budget := maxHopsFor(net.AliveCount())
	for cur != res.Owner {
		if res.Hops >= budget {
			return res // Found stays false: topology is broken
		}
		next := bestGreedyHop(net, cur, target)
		cur = next
		res.Hops++
		res.Path = append(res.Path, cur)
	}
	res.Found = true
	return res
}

// bestGreedyHop picks the neighbour with the largest clockwise progress that
// does not overshoot the target. The successor is always a candidate, and
// when nothing else qualifies it is the fallback: in that case no alive peer
// lies between cur and target, so the successor is the owner.
func bestGreedyHop(net *graph.Network, cur graph.NodeID, target keyspace.Key) graph.NodeID {
	n := net.Node(cur)
	toTarget := n.Key.Distance(target)
	best := n.Succ
	bestProgress := uint64(0)
	if d := n.Key.Distance(net.Node(n.Succ).Key); d <= toTarget {
		bestProgress = d
	}
	for _, t := range n.Out {
		tn := net.Node(t)
		if !tn.Alive {
			continue
		}
		d := n.Key.Distance(tn.Key)
		if d == 0 || d > toTarget {
			continue // no progress, or overshoots the target
		}
		if d > bestProgress {
			best, bestProgress = t, d
		}
	}
	return best
}

// GreedyBacktrack routes under churn. Liveness of long-range neighbours is
// unknown until probed; the query carries the knowledge it gathers (visited
// peers, discovered-dead peers) and depth-first-searches the overlay in
// greedy preference order. Ring pointers always lead to alive peers (the
// self-stabilised ring), so the search always terminates at the owner given
// enough budget.
func GreedyBacktrack(net *graph.Network, rg *ring.Ring, from graph.NodeID, target keyspace.Key) Result {
	res := Result{Owner: rg.OwnerOf(target), Path: []graph.NodeID{from}}
	budget := maxHopsFor(net.AliveCount())

	visited := map[graph.NodeID]bool{from: true}
	knownDead := map[graph.NodeID]bool{}
	var stack []graph.NodeID // peers we can backtrack to
	cur := from

	for cur != res.Owner {
		if res.Cost() >= budget {
			return res
		}
		next, probes := nextAliveCandidate(net, cur, target, visited, knownDead)
		res.Probes += probes
		if next == graph.NoNode {
			// Dead end: every useful neighbour is dead or visited.
			if len(stack) == 0 {
				// The source itself is exhausted; the lookup fails only if
				// the budget runs out first — keep trying via the ring by
				// walking to the successor even if visited.
				succ := net.Node(cur).Succ
				if visited[succ] {
					return res // fully wedged (cannot happen on a stitched ring)
				}
				visited[succ] = true
				cur = succ
				res.Hops++
				res.Path = append(res.Path, cur)
				continue
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			res.Backtracks++
			res.Path = append(res.Path, cur)
			continue
		}
		visited[next] = true
		stack = append(stack, cur)
		cur = next
		res.Hops++
		res.Path = append(res.Path, cur)
	}
	res.Found = true
	return res
}

// nextAliveCandidate returns the best unvisited alive neighbour of cur in
// greedy preference order (largest non-overshooting clockwise progress
// first), probing stale links along the way. It returns the number of dead
// probes spent; NoNode means cur is exhausted.
func nextAliveCandidate(net *graph.Network, cur graph.NodeID, target keyspace.Key,
	visited, knownDead map[graph.NodeID]bool) (graph.NodeID, int) {

	n := net.Node(cur)
	toTarget := n.Key.Distance(target)

	type cand struct {
		id       graph.NodeID
		progress uint64
	}
	var cands []cand
	addCand := func(t graph.NodeID) {
		if t == graph.NoNode || t == cur || visited[t] || knownDead[t] {
			return
		}
		d := n.Key.Distance(net.Node(t).Key)
		if d == 0 || d > toTarget {
			return
		}
		for _, c := range cands {
			if c.id == t {
				return
			}
		}
		cands = append(cands, cand{t, d})
	}
	for _, t := range n.Out {
		addCand(t)
	}
	addCand(n.Succ) // the ring is part of the candidate set
	// The successor is special: if the target lies between cur and succ,
	// succ is the owner; allow it even though it "overshoots".
	succ := n.Succ
	if !visited[succ] && target.BetweenIncl(n.Key, net.Node(succ).Key) {
		found := false
		for _, c := range cands {
			if c.id == succ {
				found = true
				break
			}
		}
		if !found {
			cands = append(cands, cand{succ, 0})
		}
	}

	// Try candidates in descending progress order (insertion sort: the list
	// is at most a node's degree).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].progress > cands[j-1].progress; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	probes := 0
	for _, c := range cands {
		if net.Node(c.id).Alive {
			return c.id, probes
		}
		probes++
		knownDead[c.id] = true
	}
	return graph.NoNode, probes
}

// Validate checks that a Result path is a connected walk over the network —
// a self-check used by tests and the simulator's paranoid mode.
func Validate(net *graph.Network, res Result) error {
	if len(res.Path) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if res.Found && res.Path[len(res.Path)-1] != res.Owner {
		return fmt.Errorf("routing: found lookup does not end at owner")
	}
	return nil
}
