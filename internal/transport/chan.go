package transport

import (
	"context"
	"fmt"
	"sync"
)

// Fabric is an in-memory transport registry: every endpoint created from the
// same Fabric can call every other. It is the test and single-process
// deployment fabric; calls are direct function invocations on the callee's
// handler, which keeps a 1000-node cluster cheap.
type Fabric struct {
	mu        sync.RWMutex
	endpoints map[Addr]*chanEndpoint
	next      int
}

// NewFabric creates an empty in-memory fabric.
func NewFabric() *Fabric {
	return &Fabric{endpoints: make(map[Addr]*chanEndpoint)}
}

// Endpoint creates a new endpoint with a unique address.
func (f *Fabric) Endpoint() Transport {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next++
	ep := &chanEndpoint{fabric: f, addr: Addr(fmt.Sprintf("mem-%d", f.next))}
	f.endpoints[ep.addr] = ep
	return ep
}

// lookup finds a live endpoint.
func (f *Fabric) lookup(addr Addr) (*chanEndpoint, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ep, ok := f.endpoints[addr]
	return ep, ok
}

// remove unregisters an endpoint.
func (f *Fabric) remove(addr Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.endpoints, addr)
}

// chanEndpoint is one in-memory endpoint.
type chanEndpoint struct {
	fabric *Fabric
	addr   Addr

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

// Addr implements Transport.
func (e *chanEndpoint) Addr() Addr { return e.addr }

// Serve implements Transport.
func (e *chanEndpoint) Serve(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Call implements Transport. The handler runs on the caller's goroutine —
// in-memory "messages" are synchronous function calls, which preserves the
// request/response semantics while avoiding per-call goroutines.
func (e *chanEndpoint) Call(addr Addr, req *Request) (*Response, error) {
	return e.CallCtx(context.Background(), addr, req)
}

// CallCtx implements Transport. Cancellation is honoured at entry only:
// the in-memory handler runs synchronously and cannot be interrupted.
func (e *chanEndpoint) CallCtx(ctx context.Context, addr Addr, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrUnreachable
	}
	target, ok := e.fabric.lookup(addr)
	if !ok {
		return nil, ErrUnreachable
	}
	target.mu.RLock()
	h := target.handler
	tclosed := target.closed
	target.mu.RUnlock()
	if tclosed || h == nil {
		return nil, ErrUnreachable
	}
	return h(req), nil
}

// Close implements Transport.
func (e *chanEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.fabric.remove(e.addr)
	return nil
}
