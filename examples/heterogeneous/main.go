// Heterogeneous: the Figure 1 scenario — the same skewed key space indexed
// by peer populations with three different link-budget distributions
// (constant, "realistic" spiky, stepped). Oscar's search cost and exploited
// degree volume barely move across them.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	oscar "github.com/oscar-overlay/oscar"
)

func main() {
	distributions := []struct {
		name    string
		degrees oscar.DegreeDistribution
	}{
		{"constant(27)", oscar.ConstantDegrees(27)},
		{"realistic spiky (mean 27)", oscar.RealisticDegrees()},
		{"stepped {19,23,27,39}", oscar.SteppedDegrees()},
	}

	fmt.Println("building 1500-peer overlays on Gnutella-like keys…")
	fmt.Printf("%-28s %10s %10s %10s %8s\n", "caps", "avg_cost", "p90_cost", "volume", "links")
	for _, d := range distributions {
		ov, err := oscar.Build(oscar.Config{
			Size:    1500,
			Seed:    7,
			Keys:    oscar.GnutellaKeys(),
			Degrees: d.degrees,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := ov.Measure()
		fmt.Printf("%-28s %10.2f %10.2f %9.0f%% %8.1f\n",
			d.name, m.AvgSearchCost, m.Search.P90, 100*m.DegreeVolume, m.AvgLinksMade)
	}
	fmt.Println("\nheterogeneity is absorbed: the three rows nearly coincide (paper Fig 1b/1c)")
}
