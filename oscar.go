// Package oscar is a data-oriented P2P overlay for heterogeneous
// environments — a Go implementation of the Oscar overlay (Girdzijauskas,
// Datta, Aberer; ICDE 2007).
//
// Oscar is an order-preserving (range-queriable) distributed index that
// tolerates two kinds of real-world skew at once: arbitrary key
// distributions (peers position themselves where the data is, so identifier
// density mirrors data density) and heterogeneous peer capacities (every
// peer chooses its own maximum in/out link budget). Long-range links are
// drawn from nested median-based partitions discovered by restricted random
// walks, which realises Kleinberg's harmonic small-world distribution over
// any key distribution with only O(log N) medians to learn.
//
// # Quick start
//
// The context-first Client interface is the public surface; it runs against
// two backends. The simulator backend models thousands of peers in one
// process:
//
//	cl, err := oscar.NewClient(oscar.WithSize(2000), oscar.WithSeed(1))
//	if err != nil { ... }
//	defer cl.Close()
//	res, err := cl.Lookup(ctx, oscar.KeyFromFloat(0.42))
//	fmt.Println(res.Cost)
//
// The live backend runs the same algorithms as message-passing peers, over
// in-memory channels (StartCluster) or TCP (StartNode):
//
//	node, err := oscar.StartNode(oscar.NodeConfig{Listen: "127.0.0.1:0", Key: oscar.KeyFromFloat(0.5)})
//	if err != nil { ... }
//	defer node.Close()
//	err = node.Join(ctx, "127.0.0.1:7001")
//
// Both satisfy Client, so application code is backend-agnostic. The lower
// level Build/Overlay API remains for experiments: the package also bundles
// a Mercury baseline and a global-knowledge Kleinberg reference for
// comparison, a churn model, and a per-peer ordered key-value layer with
// range queries; cmd/oscar-bench regenerates every figure and table of the
// paper.
package oscar

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/routing"
	"github.com/oscar-overlay/oscar/internal/sim"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Key is a position on the 2^64-point identifier circle. The overlay is
// order-preserving: map application keys onto the circle monotonically and
// range queries stay contiguous.
type Key = keyspace.Key

// Range is a half-open clockwise arc [Start, End) of the identifier circle.
type Range = keyspace.Range

// NodeID identifies a peer in one overlay.
type NodeID = graph.NodeID

// Route is the outcome of one lookup, including the message-cost breakdown.
type Route = routing.Result

// Measurement is a full metrics snapshot (search cost, degree volume,
// relative loads) as used by the paper's experiments.
type Measurement = sim.Measurement

// Item is one stored record of the data layer.
type Item = storage.Item

// KeyFromFloat maps a fraction in [0,1) onto the identifier circle.
func KeyFromFloat(f float64) Key { return keyspace.FromFloat(f) }

// KeyDistribution generates peer identifiers. Implementations bundled:
// UniformKeys, GnutellaKeys, ZipfKeys.
type KeyDistribution = keydist.Distribution

// DegreeDistribution generates per-peer link budgets (ρmax). Implementations
// bundled: ConstantDegrees, SteppedDegrees, RealisticDegrees.
type DegreeDistribution = degreedist.Distribution

// UniformKeys returns the uniform key distribution (what hash-based DHTs
// assume).
func UniformKeys() KeyDistribution { return keydist.Uniform{} }

// GnutellaKeys returns the bundled heavy-tailed, spiky key distribution
// standing in for the paper's Gnutella filename trace.
func GnutellaKeys() KeyDistribution { return keydist.GnutellaLike() }

// ZipfKeys returns a Zipf-popularity cluster distribution with the given
// number of sites and exponent.
func ZipfKeys(sites int, exponent float64) (KeyDistribution, error) {
	return keydist.NewZipf(sites, exponent, 0.002)
}

// ConstantDegrees gives every peer the same link budget.
func ConstantDegrees(cap int) DegreeDistribution { return degreedist.Constant(cap) }

// SteppedDegrees returns the paper's stepped budget distribution: uniform
// over {19, 23, 27, 39}, mean 27.
func SteppedDegrees() DegreeDistribution { return degreedist.PaperStepped() }

// RealisticDegrees returns the paper's synthetic spiky budget distribution
// (Figure 1a): power-law envelope with mass spikes at client defaults,
// mean 27.
func RealisticDegrees() DegreeDistribution { return degreedist.PaperRealistic() }

// Algorithm selects the overlay construction algorithm.
type Algorithm int

// Available construction algorithms.
const (
	// AlgorithmOscar is the paper's contribution (default).
	AlgorithmOscar Algorithm = iota
	// AlgorithmMercury is the uniform-resolution histogram baseline.
	AlgorithmMercury
	// AlgorithmKleinberg is the global-knowledge rank-harmonic reference.
	AlgorithmKleinberg
)

// Config configures Build. The zero value of every field has a sensible
// default; Config{} builds a 1000-peer Oscar overlay on Gnutella-like keys
// with constant budgets of 27.
type Config struct {
	// Size is the target peer count (default 1000).
	Size int
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// Keys is the peer identifier distribution (default GnutellaKeys).
	Keys KeyDistribution
	// Degrees is the per-peer link budget distribution (default
	// ConstantDegrees(27)).
	Degrees DegreeDistribution
	// Algorithm selects the construction (default AlgorithmOscar).
	Algorithm Algorithm
	// DisablePowerOfTwo turns off the in-degree balancing rule (Oscar only).
	DisablePowerOfTwo bool
	// OraclePartitions uses exact global-knowledge medians instead of
	// random-walk estimates (Oscar only; for calibration).
	OraclePartitions bool
	// SampleSize and WalkSteps tune median estimation (0 = defaults).
	SampleSize, WalkSteps int
}

// Overlay is a running overlay network plus its data layer, modelling a
// distributed system inside one process (StartNode/StartCluster run the
// message-passing runtime). All methods are safe for concurrent use: a
// single mutex serialises operations, so concurrent callers observe the
// overlay as a sequentially consistent store. For the context-aware facade
// shared with the live runtime, see Client.
type Overlay struct {
	mu     sync.Mutex
	sim    *sim.Sim
	stores map[NodeID]*storage.Store
	// replStores holds replica copies pushed by PutReplicated (and the
	// replicated Client): kept apart from the primary shards so range
	// queries and migrations never see an item twice.
	replStores map[NodeID]*storage.Store
	// syncStats accumulates AntiEntropy repair work over the overlay's
	// lifetime (reported by the Client facade's Info).
	syncStats SyncStats
	rnd       *rand.Rand
}

// Build grows an overlay from scratch to cfg.Size peers, performs one full
// rewiring pass, and returns it.
func Build(cfg Config) (*Overlay, error) {
	sc := sim.DefaultConfig()
	sc.Seed = cfg.Seed
	if cfg.Size > 0 {
		sc.TargetSize = cfg.Size
	} else {
		sc.TargetSize = 1000
	}
	sc.Checkpoints = []int{sc.TargetSize}
	if cfg.Keys != nil {
		sc.Keys = cfg.Keys
	}
	if cfg.Degrees != nil {
		sc.Degrees = cfg.Degrees
	}
	switch cfg.Algorithm {
	case AlgorithmOscar:
		sc.System = sim.SystemOscar
	case AlgorithmMercury:
		sc.System = sim.SystemMercury
	case AlgorithmKleinberg:
		sc.System = sim.SystemKleinberg
	default:
		return nil, fmt.Errorf("oscar: unknown algorithm %d", cfg.Algorithm)
	}
	sc.Oscar.PowerOfTwo = !cfg.DisablePowerOfTwo
	sc.Oscar.Oracle = cfg.OraclePartitions
	if cfg.SampleSize > 0 {
		sc.Oscar.Sample.Samples = cfg.SampleSize
	}
	if cfg.WalkSteps > 0 {
		sc.Oscar.Sample.Steps = cfg.WalkSteps
	}

	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	ov := &Overlay{
		sim:        s,
		stores:     make(map[NodeID]*storage.Store),
		replStores: make(map[NodeID]*storage.Store),
		rnd:        rng.Derive(cfg.Seed, "overlay-facade"),
	}
	ov.Grow(sc.TargetSize)
	s.RewireAll()
	return ov, nil
}

// Size returns the number of alive peers.
func (o *Overlay) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Net().AliveCount()
}

// Nodes returns the ids of all alive peers.
func (o *Overlay) Nodes() []NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Net().AliveIDs()
}

// NodeInfo describes one peer.
type NodeInfo struct {
	ID            NodeID
	Key           Key
	MaxIn, MaxOut int
	InDeg, OutDeg int
	Alive         bool
	StoredItems   int
	ReplicaItems  int
	Successor     NodeID
	Predecessor   NodeID
}

// Info returns a snapshot of one peer.
func (o *Overlay) Info(id NodeID) NodeInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.infoLocked(id)
}

func (o *Overlay) infoLocked(id NodeID) NodeInfo {
	n := o.sim.Net().Node(id)
	info := NodeInfo{
		ID: n.ID, Key: n.Key,
		MaxIn: n.MaxIn, MaxOut: n.MaxOut,
		InDeg: n.InDeg(), OutDeg: len(n.Out),
		Alive: n.Alive, Successor: n.Succ, Predecessor: n.Pred,
	}
	if st := o.stores[id]; st != nil {
		info.StoredItems = st.Len()
	}
	if st := o.replStores[id]; st != nil {
		info.ReplicaItems = st.Len()
	}
	return info
}

// Grow adds peers one at a time until the overlay has n alive peers,
// migrating stored items to each joining peer (it takes over the arc
// (pred, self] from its successor).
func (o *Overlay) Grow(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.sim.Net().AliveCount() < n {
		id := o.sim.AddPeer()
		node := o.sim.Net().Node(id)
		succStore := o.stores[node.Succ]
		if succStore == nil || node.Succ == id {
			continue
		}
		pred := o.sim.Net().Node(node.Pred)
		arc := Range{Start: pred.Key + 1, End: node.Key + 1} // (pred, self]
		if moved := succStore.ExtractRange(arc); len(moved) > 0 {
			o.storeFor(id).InsertBulk(moved)
		}
	}
}

// RewireAll rebuilds every peer's long-range links (the paper's periodic
// rewiring).
func (o *Overlay) RewireAll() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sim.RewireAll()
}

// Crash kills the given fraction of peers. The ring self-stabilises;
// long-range links to victims go stale until the next rewiring; items stored
// on victims are lost (the data layer is an index, not a replicated store).
// It returns the number of peers killed.
func (o *Overlay) Crash(fraction float64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	victims := o.sim.Churn(fraction)
	for _, id := range victims {
		delete(o.stores, id)
		delete(o.replStores, id)
	}
	return len(victims)
}

// CrashNode kills exactly one peer: its shard (and any replica copies it
// held) are gone, the ring re-stitches around it, and long-range links to
// it go stale until the next rewiring. With replication, items the victim
// owned remain readable from its ring successors.
func (o *Overlay) CrashNode(id NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sim.Ring().Kill(id)
	delete(o.stores, id)
	delete(o.replStores, id)
}

// Lookup routes to the owner of key from a random peer.
func (o *Overlay) Lookup(key Key) Route {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lookupLocked(key)
}

func (o *Overlay) lookupLocked(key Key) Route {
	return o.lookupFromLocked(o.sim.Ring().RandomAlive(o.rnd), key)
}

// LookupFrom routes to the owner of key from a specific peer. On a network
// that has suffered crashes, routing automatically probes and backtracks
// around stale links.
func (o *Overlay) LookupFrom(from NodeID, key Key) Route {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lookupFromLocked(from, key)
}

func (o *Overlay) lookupFromLocked(from NodeID, key Key) Route {
	if o.sim.Net().Len() > o.sim.Net().AliveCount() {
		return routing.GreedyBacktrack(o.sim.Net(), o.sim.Ring(), from, key)
	}
	return routing.Greedy(o.sim.Net(), o.sim.Ring(), from, key)
}

// Measure runs the paper's measurement pass: lookups between random peers
// plus degree-volume and load statistics.
func (o *Overlay) Measure() Measurement {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.Measure(o.sim.Net().Len() > o.sim.Net().AliveCount())
}

// storeFor returns (creating if needed) the primary store of peer id.
func (o *Overlay) storeFor(id NodeID) *storage.Store {
	st := o.stores[id]
	if st == nil {
		st = &storage.Store{}
		o.stores[id] = st
	}
	return st
}

// replStoreFor returns (creating if needed) the replica store of peer id.
func (o *Overlay) replStoreFor(id NodeID) *storage.Store {
	st := o.replStores[id]
	if st == nil {
		st = &storage.Store{}
		o.replStores[id] = st
	}
	return st
}

// PutResult reports a data-layer write.
type PutResult struct {
	// Owner is the peer now holding the item.
	Owner NodeID
	// Cost is the routing message cost to reach it.
	Cost int
	// Replaced reports whether an existing value was overwritten.
	Replaced bool
	// Acks is how many stores applied the write: the owner plus every
	// replica copy placed (always 1 for the unreplicated Put).
	Acks int
}

// Put routes from a random peer to the owner of key and stores the value
// there.
func (o *Overlay) Put(key Key, value []byte) (PutResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return PutResult{}, fmt.Errorf("oscar: put %v: routing failed", key)
	}
	replaced := o.storeFor(route.Owner).Put(key, value)
	return PutResult{Owner: route.Owner, Cost: route.Cost(), Replaced: replaced, Acks: 1}, nil
}

// Get routes to the owner of key and returns the stored value, if any,
// along with the routing cost.
func (o *Overlay) Get(key Key) (value []byte, found bool, cost int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return nil, false, route.Cost(), fmt.Errorf("oscar: get %v: routing failed", key)
	}
	if st := o.stores[route.Owner]; st != nil {
		value, found = st.Get(key)
	}
	return value, found, route.Cost(), nil
}

// DeleteResult reports a data-layer delete.
type DeleteResult struct {
	// Owner is the peer that held (or would have held) the item.
	Owner NodeID
	// Cost is the routing message cost to reach it.
	Cost int
	// Existed reports whether an item was actually removed.
	Existed bool
	// Acks is how many stores applied the delete (owner plus chain
	// members visited; always 1 for the unreplicated Delete).
	Acks int
}

// Delete routes to the owner of key and removes the stored item, if any.
func (o *Overlay) Delete(key Key) (DeleteResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return DeleteResult{}, fmt.Errorf("oscar: delete %v: routing failed", key)
	}
	res := DeleteResult{Owner: route.Owner, Cost: route.Cost(), Acks: 1}
	if st := o.stores[route.Owner]; st != nil {
		res.Existed = st.Delete(key)
	}
	return res, nil
}

// RangeResult reports a range query.
type RangeResult struct {
	// Items are the matching records in clockwise key order.
	Items []Item
	// Cost is the total message cost: routing to the range start plus one
	// hop per additional peer scanned along the ring.
	Cost int
	// PeersScanned is the number of peers whose shards contributed.
	PeersScanned int
}

// RangeQuery returns up to limit items with keys in [start, end): it routes
// to the owner of start and walks ring successors until the arc is covered —
// the non-exact query class that order-preserving overlays exist for.
// limit <= 0 means no limit.
func (o *Overlay) RangeQuery(start, end Key, limit int) (RangeResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rg := Range{Start: start, End: end}
	route := o.lookupLocked(start)
	if !route.Found {
		return RangeResult{}, fmt.Errorf("oscar: range query: routing failed")
	}
	res := RangeResult{Cost: route.Cost()}
	net := o.sim.Net()
	cur := route.Owner
	for {
		res.PeersScanned++
		if st := o.stores[cur]; st != nil {
			st.Scan(rg, func(it Item) bool {
				if limit > 0 && len(res.Items) >= limit {
					return false
				}
				res.Items = append(res.Items, it)
				return true
			})
		}
		if limit > 0 && len(res.Items) >= limit {
			return res, nil
		}
		node := net.Node(cur)
		// The successor is the next shard clockwise; stop once the current
		// peer's key has passed the end of the arc (its successor's shard
		// starts beyond the range).
		if node.Succ == cur || !rg.Contains(node.Key) && res.PeersScanned > 0 {
			// Current owner's arc extends past `end` (it owns keys up to its
			// own key ≥ end), so the scan is complete.
			return res, nil
		}
		cur = node.Succ
		res.Cost++
		if res.PeersScanned > net.AliveCount() {
			return res, fmt.Errorf("oscar: range query did not terminate")
		}
	}
}

// StoredItems returns the total number of items across all peers' shards.
func (o *Overlay) StoredItems() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for _, st := range o.stores {
		total += st.Len()
	}
	return total
}

// CheckInvariants verifies graph and ring consistency (used by tests).
func (o *Overlay) CheckInvariants() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sim.CheckInvariants()
}
