package p2p

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// TestWriteConcernAcks is the p2p-level ack contract: with r=3 and one
// chain member dead (and the chain not yet repaired), a write collects
// exactly two acks — so w=2 succeeds, w=3 fails with the honest counts,
// and the failed-concern write still lands everywhere that acked.
func TestWriteConcernAcks(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 8, Seed: 7, Replicas: 3, StabilizeRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Find a key whose owner and first replica are both distinct from the
	// client node, so killing the replica leaves client and owner alive.
	client := c.Nodes[0]
	var key keyspace.Key
	var victim *Node
	for f := 0.05; f < 1 && victim == nil; f += 0.09 {
		k := keyspace.FromFloat(f)
		owner, _, err := client.Lookup(bg, k)
		if err != nil {
			t.Fatal(err)
		}
		var ownerNode *Node
		for _, n := range c.Nodes {
			if n.Self().Addr == owner.Addr {
				ownerNode = n
			}
		}
		if ownerNode == nil {
			continue
		}
		chain := ownerNode.SuccList()
		if len(chain) < 2 || chain[0].Addr == client.Self().Addr {
			continue
		}
		for _, n := range c.Nodes {
			if n.Self().Addr == chain[0].Addr {
				key, victim = k, n
			}
		}
	}
	if victim == nil {
		t.Fatal("no suitable key/victim pair found")
	}
	_ = victim.Close() // the owner's chain still lists it: one push must fail

	res, err := client.PutW(bg, key, []byte("wc-2"), 2)
	if err != nil {
		t.Fatalf("w=2 with one dead replica: %v", err)
	}
	if res.Acks != 2 {
		t.Fatalf("w=2 collected %d acks, want 2 (owner + surviving replica)", res.Acks)
	}

	res, err = client.PutW(bg, key, []byte("wc-3"), 3)
	if !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("w=3 with one dead replica = %v, want ErrWriteConcern", err)
	}
	var wce *WriteConcernError
	if !errors.As(err, &wce) || wce.Acks != 2 || wce.Want != 3 {
		t.Fatalf("write-concern error = %v, want 2/3 acks", err)
	}
	if res.Acks != 2 {
		t.Fatalf("failed write reports %d acks, want 2", res.Acks)
	}

	// The unsatisfied write is not rolled back: it reads back.
	got, err := client.Get(bg, key)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("wc-3")) {
		t.Fatalf("read after failed concern = %q/%v/%v, want the written value", got.Value, got.Found, err)
	}

	// Deletes enforce the same contract.
	if _, err := client.DeleteW(bg, key, 3); !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("delete w=3 = %v, want ErrWriteConcern", err)
	}
	if got, err := client.Get(bg, key); err != nil || got.Found {
		t.Fatalf("failed-concern delete must still hold where acked: found=%v err=%v", got.Found, err)
	}
}

// TestMigrateChunked: an arc holding far more items than one replicate
// frame carries must migrate completely on join — the joiner loops on the
// More flag, pulling bounded chunks, instead of receiving (or losing) one
// giant frame.
func TestMigrateChunked(t *testing.T) {
	const items = maxReplicateItems*2 + 57 // forces at least 3 chunks
	fabric := transport.NewFabric()
	n1 := mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(0.9), Seed: 1})
	t.Cleanup(func() { _ = n1.Close() })
	for i := 0; i < items; i++ {
		k := keyspace.FromFloat(0.1 + 0.5*float64(i)/items)
		if _, err := n1.Put(bg, k, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// One delete leaves a tombstone in the arc: delete knowledge must
	// travel with the chunked migration too.
	delKey := keyspace.FromFloat(0.1)
	if _, err := n1.Delete(bg, delKey); err != nil {
		t.Fatal(err)
	}

	n2 := mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(0.6), Seed: 2})
	t.Cleanup(func() { _ = n2.Close() })
	if err := n2.Join(bg, n1.Self().Addr); err != nil {
		t.Fatal(err)
	}

	if got := n2.StoredItems(); got != items-1 {
		t.Fatalf("joiner holds %d items, want %d (the whole arc, beyond one frame)", got, items-1)
	}
	if got := n1.StoredItems(); got != 0 {
		t.Fatalf("previous owner still holds %d arc items", got)
	}
	if _, found := n2.PrimaryValue(delKey); found {
		t.Fatal("deleted key resurfaced on the joiner")
	}
	if n2.Tombstones() == 0 {
		t.Error("arc tombstone did not travel with the chunked migration")
	}
}

// TestReadFallbackRespectsTombstone: the chain fallback added for
// read-repair must not turn a replica's zombie copy into a resurrected
// read — a tombstone at the owner is an authoritative miss.
func TestReadFallbackRespectsTombstone(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 6, Seed: 5, Replicas: 3, StabilizeRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client := c.Nodes[0]

	key := keyspace.FromFloat(0.42)
	if _, err := client.Put(bg, key, []byte("soon-dead")); err != nil {
		t.Fatal(err)
	}
	owner, _, err := client.Lookup(bg, key)
	if err != nil {
		t.Fatal(err)
	}
	var ownerNode *Node
	for _, n := range c.Nodes {
		if n.Self().Addr == owner.Addr {
			ownerNode = n
		}
	}
	if ownerNode == nil {
		t.Fatal("owner not in cluster")
	}
	if _, err := client.Delete(bg, key); err != nil {
		t.Fatal(err)
	}

	// The second replica resurrects the copy behind the protocol's back
	// (a stale push arriving out of order would look the same); the first
	// replica keeps the propagated tombstone.
	chain := ownerNode.SuccList()
	if len(chain) < 2 {
		t.Fatalf("owner chain too short: %d", len(chain))
	}
	for _, n := range c.Nodes {
		if n.Self().Addr == chain[1].Addr {
			n.InjectReplica(key, []byte("zombie"))
		}
	}

	res, err := client.Get(bg, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("deleted key served %q via chain fallback; the owner's tombstone must be authoritative", res.Value)
	}

	// Harder case: the owner loses every record of the key (item and
	// tombstone), the first replica still holds the tombstone, and the
	// second replica holds the zombie copy. The chain walk must stop at
	// the first tombstone — delete knowledge anywhere on the chain beats
	// a staler copy behind it.
	ownerNode.DropPrimary(key)
	res, err = client.Get(bg, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("recordless owner + chain tombstone still served %q; the first chain tombstone must end the read", res.Value)
	}
}

// TestSizeEstimateSkewedKeys: the harmonic (inverse-averaged) gossip
// bounds the ring-size error to a small factor under heavily skewed key
// spacing. Cubic spacing makes arc sizes span ~3 orders of magnitude and
// single-node density estimates range from ~0.5N to ~250N; the former
// arithmetic blend inherited the right skew of 1/f and parked sparse-arc
// neighbourhoods at hundreds of times the truth, while the harmonic mean
// (mixed over the successor ring plus one long-range link per round) must
// keep every node within a factor of two.
func TestSizeEstimateSkewedKeys(t *testing.T) {
	const size = 64
	fabric := transport.NewFabric()
	nodes := make([]*Node, size)
	for i := 0; i < size; i++ {
		f := 0.001 + 0.998*math.Pow(float64(i)/size, 3)
		nodes[i] = mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(f), Seed: int64(i)})
		if i > 0 {
			if err := nodes[i].Join(bg, nodes[i-1].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	for round := 0; round < 16; round++ {
		for _, n := range nodes {
			n.Stabilize(bg)
		}
	}
	for i, n := range nodes {
		est := n.SizeEstimate()
		if est < size/2 || est > size*2 {
			t.Errorf("node %d estimates %.1f peers on skewed keys, want within 2x of %d", i, est, size)
		}
	}
}

// TestReadRepairHealsOwner is the p2p-level read-repair loop: an owner
// that silently lost part of its arc is healed by the first fallback read
// that finds the state on a replica, and the repair moves exactly the
// divergence.
func TestReadRepairHealsOwner(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 6, Seed: 3, Replicas: 3, StabilizeRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client := c.Nodes[0]
	// Pick an owner whose arc is wide enough to hold the whole key run.
	var owner *Node
	for _, n := range c.Nodes[1:] {
		ref, _, err := client.Lookup(bg, n.Self().Key-4)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Addr == n.Self().Addr {
			owner = n
			break
		}
	}
	if owner == nil {
		t.Fatal("no node owns a wide enough arc")
	}

	keys := make([]keyspace.Key, 5)
	vals := make([][]byte, 5)
	for i := range keys {
		keys[i] = owner.Self().Key - keyspace.Key(i)
		vals[i] = []byte(fmt.Sprintf("rr-%d", i))
		if _, err := client.Put(bg, keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	base := owner.SyncTotals()

	owner.DropPrimary(keys[0])
	owner.DropPrimary(keys[1])

	res, err := client.Get(bg, keys[0])
	if err != nil || !res.Found || !bytes.Equal(res.Value, vals[0]) {
		t.Fatalf("fallback read = %q/%v/%v, want the replica's copy", res.Value, res.Found, err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := owner.SyncTotals()
		_, has0 := owner.PrimaryValue(keys[0])
		_, has1 := owner.PrimaryValue(keys[1])
		if has0 && has1 && st.KeysPushed-base.KeysPushed >= 2 {
			if pushed := st.KeysPushed - base.KeysPushed; pushed != 2 {
				t.Fatalf("read-repair pushed %d keys, want exactly the divergence (2)", pushed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never healed: has0=%v has1=%v stats=%+v", has0, has1, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
