package bench

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// tinyScale keeps harness tests fast while touching every code path.
func tinyScale() Scale {
	return Scale{
		Target:            300,
		GrowthCheckpoints: []int{150, 300},
		ChurnSizes:        []int{300},
		Queries:           200,
	}
}

func TestSeq(t *testing.T) {
	got := seq(2, 8, 2)
	want := []int{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("seq = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v, want %v", got, want)
		}
	}
}

func TestScales(t *testing.T) {
	p := PaperScale()
	if p.Target != 10000 || len(p.GrowthCheckpoints) != 10 {
		t.Errorf("paper scale: %+v", p)
	}
	q := QuickScale()
	if q.Target != 3000 {
		t.Errorf("quick scale: %+v", q)
	}
	for _, cp := range q.GrowthCheckpoints {
		if cp > q.Target {
			t.Errorf("checkpoint %d beyond target", cp)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	h := New(&bytes.Buffer{}, tinyScale(), 1, false)
	if err := h.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsAtTinyScale executes every experiment end to end and
// checks the headline claims hold even at 300 peers.
func TestAllExperimentsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness integration test")
	}
	var out bytes.Buffer
	h := New(&out, tinyScale(), 1, false)
	for _, id := range AllExperiments {
		if err := h.Run(id); err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
	}
	text := out.String()
	for _, want := range []string{
		"Fig 1(a)", "Fig 1(b)", "Fig 1(c)", "Fig 2(a)", "Fig 2(b)",
		"T1", "X1", "A1", "A2", "A3",
		"cost_nofault", "degree", "volume",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVExport(t *testing.T) {
	var out bytes.Buffer
	h := New(&out, tinyScale(), 1, false)
	files := map[string]string{}
	h.CSVWriter = func(name string, write func(f *os.File) error) error {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
		data, err := os.ReadFile(f.Name())
		if err != nil {
			return err
		}
		files[name] = string(data)
		return nil
	}
	if err := h.Run("fig1a"); err != nil {
		t.Fatal(err)
	}
	csv, ok := files["fig1a"]
	if !ok {
		t.Fatal("no CSV produced")
	}
	if !strings.HasPrefix(csv, "degree,pdf_analytic,pdf_empirical\n") {
		t.Errorf("csv header: %q", csv[:60])
	}
	if strings.Count(csv, "\n") < 10 {
		t.Error("csv too short")
	}
}

// TestVolumeOrdering is the T1 claim at tiny scale: Oscar exploits more
// degree volume than Mercury.
func TestVolumeOrdering(t *testing.T) {
	var out bytes.Buffer
	h := New(&out, tinyScale(), 1, false)
	if err := h.Run("volume"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Parse the two volume cells crudely.
	var oscarVol, mercVol float64
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "oscar" {
			oscarVol = parseF(t, fields[1])
		}
		if len(fields) >= 2 && fields[0] == "mercury" {
			mercVol = parseF(t, fields[1])
		}
	}
	if oscarVol == 0 || mercVol == 0 {
		t.Fatalf("could not parse volumes from:\n%s", text)
	}
	if oscarVol <= mercVol {
		t.Errorf("oscar volume %.3f not above mercury %.3f", oscarVol, mercVol)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
