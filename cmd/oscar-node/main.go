// Command oscar-node runs one live Oscar peer on TCP through the public
// oscar.Client API. Start a first node, then join others to it; each
// process serves the overlay protocol and answers simple commands on
// stdin. SIGINT/SIGTERM shut the node down gracefully: the root context is
// cancelled (aborting in-flight calls), maintenance stops, and the
// transport closes before exit.
//
//	# terminal 1: create an overlay
//	oscar-node -listen 127.0.0.1:7001 -key 0.10
//
//	# terminal 2..n: join it
//	oscar-node -listen 127.0.0.1:7002 -key 0.55 -join 127.0.0.1:7001
//
// Stdin commands:
//
//	put <frac> <value>    store value under the key at fraction <frac>
//	get <frac>            fetch the value
//	delete <frac>         remove the value
//	range <lo> <hi>       list items with keys in [lo, hi)
//	scan <lo> <hi> [n]    stream items in [lo, hi) page by page (limit n)
//	putblob <frac> <file> store a file as a chunked blob based at <frac>
//	getblob <frac> <out>  stream a blob back into a file, verifying checksums
//	lookup <frac>         route to the key's owner
//	info                  print ring pointers, links, stored items,
//	                      tombstones, ring-size estimate, sync stats, and
//	                      the negotiated wire codec per connected peer
//	wal-stats             print WAL size, frames since snapshot, and the
//	                      last snapshot time (needs -data-dir)
//	snapshot              force a compacted snapshot now (needs -data-dir)
//	stabilize             run one maintenance round
//	sync                  run one anti-entropy pass over the replica chain
//	rewire                rebuild long-range links
//	quit
//
// With -replicas r > 1 the node replicates its arc to its r-1 ring
// successors; -write-concern w makes every put/delete wait for w
// owner+chain acknowledgements and fail (with the achieved/required
// counts) when fewer arrive — the write still holds wherever it was
// acked; -anti-entropy sets how often it digest-syncs that chain in
// the background (repairing divergence without re-shipping arcs) and
// -tombstone-ttl bounds how long deletes are remembered for that repair.
//
//	# durable writes: 3 copies, majority acks required
//	oscar-node -listen 127.0.0.1:7001 -key 0.10 -replicas 3 -write-concern 2
//
// With -data-dir the node is durable: every storage mutation is appended
// to a write-ahead log in that directory (fsynced per -fsync) and
// periodically compacted into snapshots. A graceful exit (quit, SIGINT,
// SIGTERM) writes a final snapshot plus a clean-shutdown marker; a
// restart on the same directory — clean or after a crash — recovers the
// shard, rejoins, and re-ships only what changed while it was down.
//
//	# survive restarts: log every write, fsync before acking
//	oscar-node -listen 127.0.0.1:7001 -key 0.10 -data-dir /var/lib/oscar/n1 -fsync always
//
// With -tls-cert/-tls-key every connection — the listener and all dials —
// runs over TLS. All ring members must use TLS, and a fleet can share one
// self-signed certificate (it doubles as the trust root). -codec json pins
// the node to the legacy JSON wire codec during a rolling upgrade from
// pre-binary builds; -max-inflight caps in-flight calls per connection and
// concurrently running handlers, shedding the excess deterministically
// instead of queueing without bound.
//
// With -daemon the node skips the stdin command loop and runs until a
// signal arrives — the mode for containers and process supervisors, where
// stdin is closed and the interactive loop would exit immediately.
//
// The -fault-* flags wrap the node's transport in a seeded fault injector
// (internal/faultnet): every outbound call rolls deterministic per-link
// dice for drops (-fault-drop), duplication (-fault-dup), and added
// latency (-fault-latency ± -fault-jitter). Two fleets started with the
// same -fault-seed and topology see the same fault schedule — chaos runs
// are reproducible:
//
//	# a lossy, slow node: 2% drops, ~5ms extra latency per call
//	oscar-node -daemon -join seed:7001 -fault-seed 42 -fault-drop 0.02 \
//	    -fault-latency 3ms -fault-jitter 4ms
package main

import (
	"bufio"
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	oscar "github.com/oscar-overlay/oscar"
	"github.com/oscar-overlay/oscar/internal/faultnet"
	"github.com/oscar-overlay/oscar/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-node: ")

	var (
		listen      = flag.String("listen", "127.0.0.1:0", "listen address")
		keyFrac     = flag.Float64("key", -1, "position on the circle in [0,1); -1 = time-derived")
		join        = flag.String("join", "", "address of any overlay member to join through")
		maxIn       = flag.Int("max-in", 16, "in-link budget (ρmax_in)")
		maxOut      = flag.Int("max-out", 16, "out-link budget (ρmax_out)")
		replicas    = flag.Int("replicas", 1, "replication factor r: copies on the owner's r-1 ring successors")
		writeCon    = flag.Int("write-concern", 1, "owner+chain acks a put/delete must collect (1 = owner only; clamped to -replicas)")
		antiEntropy = flag.Duration("anti-entropy", time.Minute, "digest-sync the replica chain this often (0 = manual `sync` only; needs -replicas > 1 and a running maintenance loop)")
		tombTTL     = flag.Duration("tombstone-ttl", 10*time.Minute, "remember deletes this long for anti-entropy repair")
		alpha       = flag.Int("alpha", 1, "routing parallelism: probe up to α candidates per lookup hop (1 = classic single-probe walk)")
		routeCache  = flag.Int("route-cache", 0, "route-cache entries (0 = default 128, negative = disabled); hits are always re-validated against the ring")
		routeTTL    = flag.Duration("route-cache-ttl", 0, "route-cache entry TTL (0 = default 2s, negative = no aging); the hot-key cache shares it")
		hotCache    = flag.Int("hot-key-cache", 0, "hot-key value-cache entries (0 = default 128, negative = disabled); served only after a digest check at the owner")
		interval    = flag.Duration("stabilize", 2*time.Second, "stabilisation interval (0 = manual)")
		rewireEvery = flag.Int("rewire-every", 5, "rebuild long links every N stabilisations (0 = manual)")
		poolSize    = flag.Int("pool", 2, "persistent connections per peer")
		callTimeout = flag.Duration("call-timeout", 5*time.Second, "per-RPC timeout")
		idleTimeout = flag.Duration("idle-timeout", 60*time.Second, "reap pooled connections idle this long")
		maxInflight = flag.Int("max-inflight", 0, "backpressure cap: calls in flight per connection and concurrent handlers (0 = default 256); excess inbound requests are shed")
		codec       = flag.String("codec", "binary", "wire codec: binary (negotiated, with JSON fallback for old peers) or json (pin to the legacy codec)")
		tlsCert     = flag.String("tls-cert", "", "PEM certificate; with -tls-key, all connections are TLS (every ring member must use TLS, and the certificate doubles as the trust root)")
		tlsKey      = flag.String("tls-key", "", "PEM private key for -tls-cert")
		dataDir     = flag.String("data-dir", "", "data directory for the WAL + snapshots (empty = memory only)")
		fsync       = flag.String("fsync", "interval", "WAL fsync policy: always, interval, or never (needs -data-dir)")
		daemon      = flag.Bool("daemon", false, "no stdin command loop: run until SIGINT/SIGTERM (for containers)")

		faultSeed    = flag.Int64("fault-seed", 0, "seed for the deterministic fault injector (active when any -fault-* rate is set)")
		faultDrop    = flag.Float64("fault-drop", 0, "probability an outbound call is dropped before delivery")
		faultDup     = flag.Float64("fault-dup", 0, "probability an outbound call is delivered twice")
		faultLatency = flag.Duration("fault-latency", 0, "fixed extra latency per outbound call")
		faultJitter  = flag.Duration("fault-jitter", 0, "random extra latency per outbound call, uniform in [0, jitter)")
	)
	flag.Parse()

	// The root context governs every overlay operation; a signal cancels
	// it, aborting in-flight multi-hop calls before the node shuts down.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	key := oscar.KeyFromFloat(*keyFrac)
	if *keyFrac < 0 {
		key = oscar.Key(time.Now().UnixNano()) * 2654435761 // spread-ish
	}

	tlsConf, err := loadTLS(*tlsCert, *tlsKey)
	if err != nil {
		log.Fatal(err)
	}

	// The fault injector wraps the node's own transport: caller-side,
	// seeded, per-link deterministic. Faults apply to this node's
	// outbound calls only — each fleet member carries its own weather.
	var wrap func(transport.Transport) transport.Transport
	faults := faultnet.Faults{Drop: *faultDrop, Duplicate: *faultDup, Latency: *faultLatency, Jitter: *faultJitter}
	if faults != (faultnet.Faults{}) {
		fn := faultnet.New(*faultSeed)
		fn.SetDefault(faults)
		wrap = fn.Wrap
		fmt.Printf("fault injection on: seed=%d drop=%.3f dup=%.3f latency=%s jitter=%s\n",
			*faultSeed, *faultDrop, *faultDup, *faultLatency, *faultJitter)
	}

	node, err := oscar.StartNode(oscar.NodeConfig{
		Listen:         *listen,
		Key:            key,
		MaxIn:          *maxIn,
		MaxOut:         *maxOut,
		Replicas:       *replicas,
		WriteConcern:   *writeCon,
		AntiEntropy:    *antiEntropy,
		TombstoneTTL:   *tombTTL,
		Alpha:          *alpha,
		RouteCacheSize: *routeCache,
		RouteCacheTTL:  *routeTTL,
		HotKeyCache:    *hotCache,
		Seed:           time.Now().UnixNano(),
		PoolSize:       *poolSize,
		CallTimeout:    *callTimeout,
		IdleTimeout:    *idleTimeout,
		MaxInflight:    *maxInflight,
		TLS:            tlsConf,
		Codec:          *codec,
		DataDir:        *dataDir,
		Fsync:          *fsync,
		WrapTransport:  wrap,
	})
	if err != nil {
		log.Fatal(err)
	}
	tlsNote := ""
	if tlsConf != nil {
		tlsNote = ", tls"
	}
	fmt.Printf("node up at %s, key %s (codec %s%s)\n", node.Addr(), node.Key(), *codec, tlsNote)
	if rec := node.Recovery(); rec.Enabled {
		how := "crash"
		if rec.Clean {
			how = "clean shutdown"
		}
		if rec.SnapshotAt.IsZero() && rec.ReplayedFrames == 0 {
			fmt.Printf("durable: fresh data dir %s (fsync=%s)\n", *dataDir, *fsync)
		} else {
			fmt.Printf("durable: recovered %d items, %d replica copies, %d tombstones after %s (%d WAL frames replayed, torn tail=%v)\n",
				rec.Items, rec.ReplicaItems, rec.Tombstones, how, rec.ReplayedFrames, rec.TornTail)
		}
	}

	if *join != "" {
		if err := node.Join(ctx, *join); err != nil {
			_ = node.Close()
			log.Fatal(err)
		}
		info, _ := node.Info(ctx)
		fmt.Printf("joined via %s; succ=%s pred=%s, %d long links\n",
			*join, info.Successor.Key, info.Predecessor.Key, info.OutLinks)
	}

	if *interval > 0 {
		node.StartMaintenance(*interval, *rewireEvery)
	}

	if *daemon {
		// Containers and supervisors close stdin, so the interactive loop
		// would exit immediately; block on the signal context instead.
		<-ctx.Done()
		fmt.Println("\nsignal received, shutting down…")
	} else {
		// The stdin reader feeds a channel so the main loop can multiplex
		// user commands with context cancellation from a signal.
		lines := make(chan string)
		go func() {
			defer close(lines)
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				select {
				case lines <- sc.Text():
				case <-ctx.Done():
					return
				}
			}
		}()

		fmt.Print("> ")
	loop:
		for {
			select {
			case <-ctx.Done():
				fmt.Println("\nsignal received, shutting down…")
				break loop
			case line, ok := <-lines:
				if !ok {
					break loop
				}
				if err := execute(ctx, node, strings.Fields(line)); err != nil {
					if errors.Is(err, errQuit) {
						break loop
					}
					fmt.Println("error:", err)
				}
				fmt.Print("> ")
			}
		}
	}

	// Graceful shutdown: stop the background loop first so it cannot race
	// the transport teardown, then close the node (listener + pools).
	node.StopMaintenance()
	if err := node.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	fmt.Println("node stopped")
}

var errQuit = errors.New("quit")

// loadTLS builds the node's TLS configuration from a PEM certificate and
// key pair. The certificate is also installed as the trust root, so a
// fleet sharing one self-signed certificate verifies each other without a
// separate CA.
func loadTLS(certFile, keyFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("-tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("load TLS keypair: %w", err)
	}
	roots := x509.NewCertPool()
	pem, err := os.ReadFile(certFile)
	if err != nil {
		return nil, err
	}
	if !roots.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("no certificates in %s", certFile)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, RootCAs: roots}, nil
}

func fmtSnapTime(t time.Time) string {
	if t.IsZero() {
		return "never"
	}
	return fmt.Sprintf("%s (%s ago)", t.Format(time.RFC3339), time.Since(t).Round(time.Second))
}

func parseFrac(s string) (oscar.Key, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f >= 1 {
		return 0, fmt.Errorf("want a fraction in [0,1), got %q", s)
	}
	return oscar.KeyFromFloat(f), nil
}

func execute(ctx context.Context, node *oscar.Node, args []string) error {
	if len(args) == 0 {
		return nil
	}
	switch args[0] {
	case "quit", "exit":
		return errQuit

	case "info":
		info, err := node.Info(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("self  %s key=%s\n", info.Self.Addr, info.Self.Key)
		fmt.Printf("succ  %s key=%s\n", info.Successor.Addr, info.Successor.Key)
		fmt.Printf("pred  %s key=%s\n", info.Predecessor.Addr, info.Predecessor.Key)
		fmt.Printf("links out=%d in=%d items=%d replicas=%d (r=%d, w=%d) tombstones=%d\n",
			info.OutLinks, info.InLinks, info.StoredItems, info.ReplicaItems, info.Replicas, info.WriteConcern, info.Tombstones)
		if info.Peers >= 0 {
			fmt.Printf("peers %d (gossip estimate %.1f)\n", info.Peers, info.SizeEstimate)
		}
		ae := info.AntiEntropy
		if ae.Rounds > 0 {
			fmt.Printf("anti-entropy: %d rounds, %d keys pushed, %d tombstones, %d dropped\n",
				ae.Rounds, ae.KeysPushed, ae.TombstonesPushed, ae.Dropped)
		}
		if info.RouteCacheHits+info.RouteCacheMisses+info.HotKeyCacheHits+info.HotKeyCacheMisses > 0 {
			fmt.Printf("caches: route %d hits / %d misses, hot-key %d hits / %d misses\n",
				info.RouteCacheHits, info.RouteCacheMisses, info.HotKeyCacheHits, info.HotKeyCacheMisses)
		}
		if info.Durable {
			fmt.Printf("durable: wal=%dB frames=%d last-snapshot=%s\n",
				info.WALBytes, info.WALFrames, fmtSnapTime(info.LastSnapshot))
		}
		if codecs := node.PeerCodecs(); len(codecs) > 0 {
			addrs := make([]string, 0, len(codecs))
			for addr := range codecs {
				addrs = append(addrs, addr)
			}
			sort.Strings(addrs)
			for _, addr := range addrs {
				fmt.Printf("conn  %s codec=%s\n", addr, codecs[addr])
			}
		}
		return nil

	case "wal-stats":
		info, err := node.Info(ctx)
		if err != nil {
			return err
		}
		if !info.Durable {
			return fmt.Errorf("node runs without -data-dir; no WAL to report")
		}
		fmt.Printf("wal size:             %d bytes\n", info.WALBytes)
		fmt.Printf("frames since snapshot: %d\n", info.WALFrames)
		fmt.Printf("last snapshot:        %s\n", fmtSnapTime(info.LastSnapshot))
		return nil

	case "snapshot":
		info, err := node.Info(ctx)
		if err != nil {
			return err
		}
		if !info.Durable {
			return fmt.Errorf("node runs without -data-dir; nothing to snapshot")
		}
		if err := node.Snapshot(); err != nil {
			return err
		}
		fmt.Println("snapshot written, wal truncated")
		return nil

	case "stabilize":
		node.Stabilize(ctx)
		return nil

	case "sync":
		stats, err := node.AntiEntropy(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("synced: %d rounds, %d keys pushed, %d tombstones, %d dropped\n",
			stats.Rounds, stats.KeysPushed, stats.TombstonesPushed, stats.Dropped)
		return nil

	case "rewire":
		if err := node.Rewire(ctx); err != nil {
			return err
		}
		info, err := node.Info(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%d long-range links\n", info.OutLinks)
		return nil

	case "lookup":
		if len(args) != 2 {
			return fmt.Errorf("usage: lookup <frac>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		res, err := node.Lookup(ctx, k)
		if err != nil {
			return err
		}
		fmt.Printf("owner %s key=%s (%d messages)\n", res.Owner.Addr, res.Owner.Key, res.Cost)
		return nil

	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <frac> <value>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		res, err := node.Put(ctx, k, []byte(strings.Join(args[2:], " ")))
		if errors.Is(err, oscar.ErrWriteConcern) {
			fmt.Printf("UNDER-REPLICATED: %v — stored at %s but below the requested durability\n", err, res.Owner.Addr)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("stored at %s (%d messages, %d acks, replaced=%v)\n", res.Owner.Addr, res.Cost, res.Acks, res.Replaced)
		return nil

	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <frac>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		res, err := node.Get(ctx, k)
		if errors.Is(err, oscar.ErrNotFound) {
			fmt.Printf("not found (%d messages)\n", res.Cost)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%q (%d messages)\n", res.Value, res.Cost)
		return nil

	case "delete":
		if len(args) != 2 {
			return fmt.Errorf("usage: delete <frac>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		res, err := node.Delete(ctx, k)
		if errors.Is(err, oscar.ErrNotFound) {
			fmt.Printf("not found (%d messages)\n", res.Cost)
			return nil
		}
		if errors.Is(err, oscar.ErrWriteConcern) {
			fmt.Printf("UNDER-REPLICATED: %v — deleted where acked, below the requested durability\n", err)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("deleted (%d messages, %d acks)\n", res.Cost, res.Acks)
		return nil

	case "range":
		if len(args) != 3 {
			return fmt.Errorf("usage: range <lo> <hi>")
		}
		lo, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		hi, err := parseFrac(args[2])
		if err != nil {
			return err
		}
		res, err := node.RangeQuery(ctx, lo, hi, 0)
		if err != nil {
			return err
		}
		for _, it := range res.Items {
			fmt.Printf("  %s = %q\n", it.Key, it.Value)
		}
		fmt.Printf("%d items from %d peers (%d messages)\n", len(res.Items), res.PeersScanned, res.Cost)
		return nil

	case "scan":
		if len(args) != 3 && len(args) != 4 {
			return fmt.Errorf("usage: scan <lo> <hi> [limit]")
		}
		lo, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		hi, err := parseFrac(args[2])
		if err != nil {
			return err
		}
		var opts []oscar.ScanOption
		if len(args) == 4 {
			limit, err := strconv.Atoi(args[3])
			if err != nil {
				return fmt.Errorf("bad limit %q", args[3])
			}
			opts = append(opts, oscar.WithLimit(limit))
		}
		count := 0
		sc := node.Scan(ctx, lo, hi, opts...)
		for sc.Next() {
			it := sc.Item()
			fmt.Printf("  %s = %q\n", it.Key, it.Value)
			count++
		}
		if err := sc.Err(); err != nil {
			return err
		}
		st := sc.Stats()
		fmt.Printf("%d items streamed in %d pages from %d peers (%d messages)\n", count, st.Pages, st.PeersScanned, st.Cost)
		return nil

	case "putblob":
		if len(args) != 3 {
			return fmt.Errorf("usage: putblob <frac> <file>")
		}
		base, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		f, err := os.Open(args[2])
		if err != nil {
			return err
		}
		defer f.Close()
		start := time.Now()
		m, err := node.PutBlob(ctx, base, f)
		if err != nil {
			return err
		}
		fmt.Printf("stored %d bytes as %d chunks under [%s, %s) in %v (crc %08x)\n",
			m.Size, m.Chunks, base, base+oscar.Key(m.Chunks)+1, time.Since(start).Round(time.Millisecond), m.CRC)
		return nil

	case "getblob":
		if len(args) != 3 {
			return fmt.Errorf("usage: getblob <frac> <out-file>")
		}
		base, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		br, err := node.GetBlob(ctx, base)
		if err != nil {
			return err
		}
		defer br.Close()
		out, err := os.Create(args[2])
		if err != nil {
			return err
		}
		start := time.Now()
		n, err := io.Copy(out, br)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("after %d bytes: %w", n, err)
		}
		m := br.Manifest()
		fmt.Printf("streamed %d bytes (%d chunks, verified crc %08x) to %s in %v\n",
			n, m.Chunks, m.CRC, args[2], time.Since(start).Round(time.Millisecond))
		return nil

	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
