// Package churn injects peer failures for the robustness experiments
// (Figure 2): a fraction of the population is "killed"; the ring is assumed
// re-stitched by self-stabilisation (ring.Kill does this instantly), while
// long-range links pointing at dead peers remain in their holders' link
// tables as stale entries that routing must probe around.
package churn

import (
	"math/rand"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// KillFraction kills ⌊fraction·alive⌋ uniformly random alive peers and
// returns their ids. fraction outside [0,1) is clamped; the last peer is
// never killed (an empty overlay has no behaviour to measure).
func KillFraction(net *graph.Network, rg *ring.Ring, fraction float64, rnd *rand.Rand) []graph.NodeID {
	if fraction <= 0 {
		return nil
	}
	if fraction >= 1 {
		fraction = 0.999
	}
	alive := net.AliveIDs()
	want := int(fraction * float64(len(alive)))
	if want >= len(alive) {
		want = len(alive) - 1
	}
	// Partial Fisher–Yates: the first `want` entries become the victims.
	for i := 0; i < want; i++ {
		j := i + rnd.Intn(len(alive)-i)
		alive[i], alive[j] = alive[j], alive[i]
	}
	victims := alive[:want]
	for _, id := range victims {
		rg.Kill(id)
	}
	return victims
}
