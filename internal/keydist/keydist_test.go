package keydist

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// checkCDF verifies the basic CDF contract: bounds, monotonicity.
func checkCDF(t *testing.T, d Distribution) {
	t.Helper()
	if got := d.CDF(0); got != 0 {
		t.Errorf("%s: CDF(0) = %g, want 0", d.Name(), got)
	}
	if got := d.CDF(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("%s: CDF(1) = %g, want 1", d.Name(), got)
	}
	prev := 0.0
	for x := 0.0; x <= 1.0; x += 1.0 / 512 {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("%s: CDF not monotone at %g: %g < %g", d.Name(), x, c, prev)
		}
		prev = c
	}
}

// checkSamplesMatchCDF draws samples and compares the empirical CDF with the
// analytic one at a few probe points (a crude Kolmogorov–Smirnov check).
func checkSamplesMatchCDF(t *testing.T, d Distribution, n int, tol float64) {
	t.Helper()
	r := testRand()
	fracs := make([]float64, n)
	for i := range fracs {
		fracs[i] = d.Sample(r).Float()
	}
	sort.Float64s(fracs)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		emp := float64(sort.SearchFloat64s(fracs, x)) / float64(n)
		ana := d.CDF(x)
		if math.Abs(emp-ana) > tol {
			t.Errorf("%s: at x=%g empirical CDF %.4f vs analytic %.4f", d.Name(), x, emp, ana)
		}
	}
}

func TestUniform(t *testing.T) {
	checkCDF(t, Uniform{})
	checkSamplesMatchCDF(t, Uniform{}, 20000, 0.02)
}

func TestGnutellaLike(t *testing.T) {
	d := GnutellaLike()
	checkCDF(t, d)
	checkSamplesMatchCDF(t, d, 20000, 0.02)
}

func TestGnutellaLikeIsSpiky(t *testing.T) {
	// The defining property: density varies by orders of magnitude. Compare
	// mass in a thin window around the needle at 0.91 with a same-width
	// window in the background.
	d := GnutellaLike()
	const w = 0.002
	needle := d.CDF(0.91+w) - d.CDF(0.91-w)
	background := d.CDF(0.25+w) - d.CDF(0.25-w)
	if needle < 20*background {
		t.Errorf("needle mass %.5f not ≫ background mass %.5f; distribution not spiky enough", needle, background)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture("empty", nil); err == nil {
		t.Error("empty mixture must be rejected")
	}
	if _, err := NewMixture("neg", []Component{{Weight: -1, Uniform: &UniformSpec{0, 1}}}); err == nil {
		t.Error("negative weight must be rejected")
	}
	if _, err := NewMixture("both", []Component{{Weight: 1, Uniform: &UniformSpec{0, 1}, Gauss: &GaussSpec{0.5, 0.1}}}); err == nil {
		t.Error("component with two shapes must be rejected")
	}
	if _, err := NewMixture("none", []Component{{Weight: 1}}); err == nil {
		t.Error("component with no shape must be rejected")
	}
	if _, err := NewMixture("sigma", []Component{{Weight: 1, Gauss: &GaussSpec{0.5, 0}}}); err == nil {
		t.Error("zero sigma must be rejected")
	}
	if _, err := NewMixture("bounds", []Component{{Weight: 1, Uniform: &UniformSpec{0.5, 0.2}}}); err == nil {
		t.Error("inverted uniform bounds must be rejected")
	}
}

func TestZipf(t *testing.T) {
	z, err := NewZipf(32, 1.0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	checkCDF(t, z)
	checkSamplesMatchCDF(t, z, 20000, 0.02)
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1, 0); err == nil {
		t.Error("zero sites must be rejected")
	}
	if _, err := NewZipf(4, 0, 0); err == nil {
		t.Error("zero exponent must be rejected")
	}
	if _, err := NewZipf(4, 1, 0.9); err == nil {
		t.Error("oversized jitter must be rejected")
	}
}

func TestZipfFirstSiteDominates(t *testing.T) {
	z, err := NewZipf(16, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := testRand()
	counts := make(map[keyspace.Key]int)
	for i := 0; i < 10000; i++ {
		counts[z.Sample(r)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2000 { // rank-1 site should carry ≈ 1/H ≈ 29% of the mass
		t.Errorf("most popular site has only %d/10000 samples; Zipf skew missing", max)
	}
}

func TestEmpirical(t *testing.T) {
	r := testRand()
	src := GnutellaLike()
	keys := SampleN(src, r, 5000)
	e, err := NewEmpirical(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCDF(t, e)
	checkSamplesMatchCDF(t, e, 20000, 0.03)
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil, 0); err == nil {
		t.Error("empty key set must be rejected")
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, d := range []Distribution{Uniform{}, GnutellaLike()} {
		for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			k := Quantile(d, q)
			if got := d.CDF(k.Float()); math.Abs(got-q) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", d.Name(), q, got)
			}
		}
	}
}

func TestQuantileExtremes(t *testing.T) {
	d := Uniform{}
	if Quantile(d, 0) != 0 {
		t.Error("Quantile(0) should be key 0")
	}
	if Quantile(d, 1) != keyspace.MaxKey {
		t.Error("Quantile(1) should be MaxKey")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "gnutella", "zipf"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must be rejected")
	}
}

func TestSampleN(t *testing.T) {
	keys := SampleN(Uniform{}, testRand(), 17)
	if len(keys) != 17 {
		t.Fatalf("SampleN returned %d keys", len(keys))
	}
}

func TestWindowMassBelow(t *testing.T) {
	cases := []struct {
		lo, hi, x, want float64
	}{
		{0.4, 0.6, 0.5, 0.5},
		{0.4, 0.6, 0.4, 0},
		{0.4, 0.6, 0.7, 1},
		{-0.05, 0.05, 0.05, 0.5}, // wraps below zero: half the window is near 1
		{0.95, 1.05, 0.03, 0.3},  // wraps above one: [0,0.05) near 0, x cuts at 0.03
		{-0.05, 0.05, 1.0, 1},    // everything is below 1
		{0.95, 1.05, 1.0, 1},
	}
	for _, c := range cases {
		if got := windowMassBelow(c.lo, c.hi, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("windowMassBelow(%g,%g,%g) = %g, want %g", c.lo, c.hi, c.x, got, c.want)
		}
	}
}
