package oscar

import "fmt"

// Replication: the paper's data layer is an index, so a crashed peer takes
// its shard with it. PutReplicated stores copies on the owner's ring
// successors, and GetReplicated falls back along the same chain — the
// standard successor-list replication of ring overlays, provided as the
// bundled extension for crash-tolerant reads.
//
// Replication is per-write: copies are placed at write time and re-placed
// on rewrite. A membership change between write and read shifts the
// successor chain by at most the number of joins/crashes in between, which
// the read-side fallback absorbs as long as fewer than `replicas`
// consecutive chain members are lost.

// PutReplicated stores value under key at the key's owner and on the next
// replicas-1 alive ring successors. replicas < 1 is treated as 1.
func (o *Overlay) PutReplicated(key Key, value []byte, replicas int) (PutResult, error) {
	if replicas < 1 {
		replicas = 1
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return PutResult{}, fmt.Errorf("oscar: put %v: routing failed", key)
	}
	res := PutResult{Owner: route.Owner, Cost: route.Cost()}
	cur := route.Owner
	for i := 0; i < replicas; i++ {
		replaced := o.storeFor(cur).Put(key, value)
		if i == 0 {
			res.Replaced = replaced
		} else {
			res.Cost++ // one hop along the successor chain per copy
		}
		next := o.sim.Net().Node(cur).Succ
		if next == cur || next == route.Owner {
			break // wrapped around a tiny overlay
		}
		cur = next
	}
	return res, nil
}

// GetReplicated fetches the value for key, falling back along up to
// replicas-1 ring successors of the owner when the primary misses (for
// example because the peer holding it crashed and a stale-arc neighbour now
// owns the key).
func (o *Overlay) GetReplicated(key Key, replicas int) (value []byte, found bool, cost int, err error) {
	if replicas < 1 {
		replicas = 1
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return nil, false, route.Cost(), fmt.Errorf("oscar: get %v: routing failed", key)
	}
	cost = route.Cost()
	cur := route.Owner
	for i := 0; i < replicas; i++ {
		if st := o.stores[cur]; st != nil {
			if v, ok := st.Get(key); ok {
				return v, true, cost, nil
			}
		}
		next := o.sim.Net().Node(cur).Succ
		if next == cur || next == route.Owner {
			break
		}
		cur = next
		cost++
	}
	return nil, false, cost, nil
}
