// Package degreedist provides the node-degree-cap distributions of the
// paper's heterogeneity experiments.
//
// Every peer p announces ρmax_in(p) and ρmax_out(p): the most incoming and
// outgoing long-range links it is willing to carry given its bandwidth
// budget. The paper evaluates three distributions, all with mean 27:
//
//   - constant: every peer allows exactly 27 links;
//   - stepped: caps drawn uniformly from {19, 23, 27, 39};
//   - "realistic": a synthetic spiky pdf (Fig 1a) emulating measured
//     file-sharing overlays [Stutzbach et al. 2005], where default client
//     configurations produce mass spikes on a heavy-tailed envelope.
package degreedist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution yields per-peer degree caps.
type Distribution interface {
	// Name identifies the distribution in reports and CLI flags.
	Name() string
	// Sample draws one degree cap (always >= 1).
	Sample(r *rand.Rand) int
	// Mean returns the exact expected cap.
	Mean() float64
}

// Constant gives every peer the same cap.
type Constant int

// Name implements Distribution.
func (c Constant) Name() string { return fmt.Sprintf("constant(%d)", int(c)) }

// Sample implements Distribution.
func (c Constant) Sample(*rand.Rand) int { return int(c) }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return float64(c) }

// Stepped draws uniformly from a fixed set of caps.
type Stepped []int

// PaperStepped is the paper's stepped distribution: uniform over
// {19, 23, 27, 39}, mean 27.
func PaperStepped() Stepped { return Stepped{19, 23, 27, 39} }

// Name implements Distribution.
func (s Stepped) Name() string { return fmt.Sprintf("stepped%v", []int(s)) }

// Sample implements Distribution.
func (s Stepped) Sample(r *rand.Rand) int { return s[r.Intn(len(s))] }

// Mean implements Distribution.
func (s Stepped) Mean() float64 {
	var sum int
	for _, v := range s {
		sum += v
	}
	return float64(sum) / float64(len(s))
}

// PMF is a discrete probability mass function over degrees 1..len(P).
// P[d-1] is the probability of degree d.
type PMF struct {
	name string
	p    []float64 // pmf, index 0 => degree 1
	cum  []float64 // cumulative
	mean float64
}

// NewPMF builds a distribution from unnormalised weights (index 0 is degree 1).
func NewPMF(name string, weights []float64) (*PMF, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("degreedist: %q needs at least one weight", name)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("degreedist: %q has negative weight at degree %d", name, i+1)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("degreedist: %q has zero total mass", name)
	}
	d := &PMF{name: name, p: make([]float64, len(weights)), cum: make([]float64, len(weights))}
	cum := 0.0
	for i, w := range weights {
		d.p[i] = w / total
		cum += d.p[i]
		d.cum[i] = cum
		d.mean += float64(i+1) * d.p[i]
	}
	d.cum[len(d.cum)-1] = 1
	return d, nil
}

// Name implements Distribution.
func (d *PMF) Name() string { return d.name }

// Sample implements Distribution.
func (d *PMF) Sample(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(d.cum, u) + 1
}

// Mean implements Distribution.
func (d *PMF) Mean() float64 { return d.mean }

// Prob returns the probability of degree deg (0 outside the support).
func (d *PMF) Prob(deg int) float64 {
	if deg < 1 || deg > len(d.p) {
		return 0
	}
	return d.p[deg-1]
}

// MaxDegree returns the largest degree in the support.
func (d *PMF) MaxDegree() int { return len(d.p) }

// RealisticSpiky builds the synthetic spiky distribution of Figure 1(a):
// a power-law envelope p(d) ∝ d^-alpha over degrees 1..maxDeg with
// probability-mass spikes at common client-default cap values, mixed so the
// overall mean is exactly targetMean. It models measured unstructured
// overlays, where most peers run defaults (spikes) on a heavy tail.
//
// The envelope/spike mixing weight is solved at construction time, so the
// mean is exact, not tuned.
func RealisticSpiky(targetMean float64, maxDeg int) (*PMF, error) {
	if maxDeg < 2 {
		return nil, fmt.Errorf("degreedist: maxDeg %d too small", maxDeg)
	}
	const alpha = 1.5
	envelope := make([]float64, maxDeg)
	var envTotal, envMean float64
	for d := 1; d <= maxDeg; d++ {
		w := math.Pow(float64(d), -alpha)
		envelope[d-1] = w
		envTotal += w
		envMean += float64(d) * w
	}
	envMean /= envTotal

	// Spikes at typical default configurations (cf. Fig 1a's visible bumps).
	// The spike mean sits just above the target so the envelope weight stays
	// small: most peers run defaults, and the probability of a tiny cap
	// (≲5 links) stays around 15% — matching both the published pdf range
	// (1e-5..1e-1) and the paper's observation that the heterogeneous cases
	// behave like the constant one.
	spikes := map[int]float64{20: 0.32, 27: 0.36, 32: 0.22, 50: 0.08, 100: 0.02}
	var spikeTotal, spikeMean float64
	for d, w := range spikes {
		if d > maxDeg {
			return nil, fmt.Errorf("degreedist: spike degree %d exceeds maxDeg %d", d, maxDeg)
		}
		spikeTotal += w
		spikeMean += float64(d) * w
	}
	spikeMean /= spikeTotal

	if targetMean <= envMean || targetMean >= spikeMean {
		return nil, fmt.Errorf("degreedist: target mean %.3g outside achievable range (%.3g, %.3g)",
			targetMean, envMean, spikeMean)
	}
	s := (targetMean - envMean) / (spikeMean - envMean) // spike mixture weight

	weights := make([]float64, maxDeg)
	for i, w := range envelope {
		weights[i] = (1 - s) * w / envTotal
	}
	for d, w := range spikes {
		weights[d-1] += s * w / spikeTotal
	}
	return NewPMF(fmt.Sprintf("realistic(mean=%g)", targetMean), weights)
}

// PaperRealistic is RealisticSpiky with the paper's parameters: mean 27,
// support 1..256.
func PaperRealistic() *PMF {
	d, err := RealisticSpiky(27, 256)
	if err != nil {
		panic("degreedist: PaperRealistic construction: " + err.Error()) // static spec, cannot fail
	}
	return d
}

// ByName returns a registered distribution by CLI name. mean is used by
// constant (rounded) and realistic.
func ByName(name string, mean float64) (Distribution, error) {
	switch name {
	case "constant":
		return Constant(int(math.Round(mean))), nil
	case "stepped":
		return PaperStepped(), nil
	case "realistic":
		if mean == 27 {
			return PaperRealistic(), nil
		}
		return RealisticSpiky(mean, 256)
	default:
		return nil, fmt.Errorf("degreedist: unknown distribution %q (want constant|stepped|realistic)", name)
	}
}
