// Churn: the Figure 2 scenario — crash 10% and then 33% of the peers and
// watch search stay correct while paying for dead-link probes and
// backtracking ("wasted traffic").
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	oscar "github.com/oscar-overlay/oscar"
)

func main() {
	ov, err := oscar.Build(oscar.Config{Size: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string) {
		m := ov.Measure()
		fmt.Printf("%-12s peers=%-5d cost=%-6.2f hops=%-6.2f probes=%-5.2f backtracks=%-5.2f failed=%d\n",
			label, m.Size, m.AvgSearchCost, m.AvgHops, m.AvgProbes, m.AvgBacktracks, m.Failed)
	}

	report("no faults")

	killed := ov.Crash(0.10)
	fmt.Printf("\n-- crashed %d peers (10%%); ring self-stabilises, long links go stale --\n", killed)
	report("10% crashes")

	// Top up to 33% of the original population.
	killed = ov.Crash(0.2555)
	fmt.Printf("\n-- crashed %d more (33%% total) --\n", killed)
	report("33% crashes")

	fmt.Println("\nthe overlay stays navigable: every query still reaches the right owner,")
	fmt.Println("at the price of probe traffic — the paper's Figure 2 in miniature.")

	// Rewiring heals: stale links are dropped and fresh ones acquired.
	ov.RewireAll()
	fmt.Println("\n-- after one rewiring pass --")
	report("rewired")
}
