// Tcpcluster: a live Oscar cluster on loopback TCP sockets — real listeners,
// pooled persistent connections multiplexing concurrent RPCs, Chord-style
// stabilisation, walk-based partition discovery and link acquisition,
// puts/gets/range queries, a concurrent workload burst, and a crash that
// the ring heals around. This is the deployment path; the sequential
// simulator is only for 10000-peer experiments.
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/p2p"
	"github.com/oscar-overlay/oscar/internal/transport"
)

func main() {
	const size = 12
	var nodes []*p2p.Node

	fmt.Println("spawning", size, "nodes on 127.0.0.1…")
	for i := 0; i < size; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		n := p2p.NewNode(ep, p2p.Config{
			Key:    keyspace.FromFloat(float64(i)/size + 0.001),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if i > 0 {
			if err := n.Join(nodes[0].Self().Addr); err != nil {
				log.Fatalf("node %d join: %v", i, err)
			}
		}
		nodes = append(nodes, n)
		fmt.Printf("  node %2d @ %s key=%s\n", i, n.Self().Addr, n.Self().Key)
	}

	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(); err != nil {
			log.Fatal(err)
		}
	}
	links := 0
	for _, n := range nodes {
		links += len(n.OutLinks())
	}
	fmt.Printf("overlay wired: %d long-range links\n", links)

	key := keyspace.FromFloat(0.77)
	if cost, err := nodes[2].Put(key, []byte("stored over TCP")); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("put through node 2: %d messages\n", cost)
	}
	val, found, cost, err := nodes[9].Get(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get through node 9: %q (found=%v, %d messages)\n", val, found, cost)

	// A concurrent burst: every worker multiplexes its RPCs over the same
	// pooled connections instead of dialing per call.
	const workers, opsPer = 16, 25
	fmt.Printf("\nconcurrent workload: %d workers x %d put+get…\n", workers, opsPer)
	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := nodes[w%len(nodes)]
			for j := 0; j < opsPer; j++ {
				k := keyspace.FromFloat(float64(w*opsPer+j) / (workers * opsPer))
				v := []byte(fmt.Sprintf("w%d-%d", w, j))
				if _, err := node.Put(k, v); err != nil {
					failed.Add(1)
					continue
				}
				got, ok, _, err := nodes[(w+3)%len(nodes)].Get(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * opsPer * 2
	fmt.Printf("%d ops in %v (%.0f ops/s), %d failures\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), failed.Load())

	fmt.Println("\ncrashing node 5…")
	_ = nodes[5].Close()
	for round := 0; round < 4; round++ {
		for i, n := range nodes {
			if i != 5 {
				n.Stabilize()
			}
		}
	}
	owner, cost, err := nodes[1].Lookup(keyspace.FromFloat(0.99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup after crash: owner key=%s in %d messages — ring healed\n", owner.Key, cost)

	for i, n := range nodes {
		if i != 5 {
			_ = n.Close()
		}
	}
	fmt.Println("cluster shut down")
}
