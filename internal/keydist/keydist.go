// Package keydist provides the key (peer identifier) distributions used by
// the experiments.
//
// Data-oriented overlays are order-preserving, so peer identifiers inherit
// whatever skew the application data has. The paper draws peer keys from the
// "Gnutella filename distribution", a proprietary 2005 trace; GnutellaLike
// is our synthetic stand-in (see DESIGN.md §3): a heavy-tailed, multi-modal
// mixture whose narrow density spikes are exactly the feature that defeats
// uniform-resolution histogram estimation (Mercury) while leaving Oscar's
// median-based partitioning unaffected.
//
// All distributions are expressed over the unit interval [0,1) and mapped
// onto the identifier circle with keyspace.FromFloat. CDFs are exposed so
// tests and oracle tooling can compute exact quantiles.
package keydist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// Distribution is a probability distribution over the identifier circle.
type Distribution interface {
	// Name identifies the distribution in reports and CLI flags.
	Name() string
	// Sample draws one key.
	Sample(r *rand.Rand) keyspace.Key
	// CDF returns the probability mass lying in the fraction interval
	// [0, x) of the circle, for x in [0,1]. It is nondecreasing with
	// CDF(0)=0 and CDF(1)=1.
	CDF(x float64) float64
}

// Quantile inverts d's CDF by bisection: it returns the key k such that a
// fraction q of the mass lies clockwise-before k (counting from key 0).
func Quantile(d Distribution, q float64) keyspace.Key {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return keyspace.MaxKey
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if d.CDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return keyspace.FromFloat((lo + hi) / 2)
}

// SampleN draws n keys.
func SampleN(d Distribution, r *rand.Rand, n int) []keyspace.Key {
	out := make([]keyspace.Key, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// Uniform is the uniform distribution over the circle: the baseline that
// hash-based overlays (Chord, CAN) implicitly assume.
type Uniform struct{}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Sample implements Distribution.
func (Uniform) Sample(r *rand.Rand) keyspace.Key { return keyspace.Key(r.Uint64()) }

// CDF implements Distribution.
func (Uniform) CDF(x float64) float64 { return clamp01(x) }

// unitDist is one mixture component over [0,1).
type unitDist interface {
	sample(r *rand.Rand) float64
	cdf(x float64) float64
}

// uniformUnit is uniform over [a,b) ⊂ [0,1).
type uniformUnit struct{ a, b float64 }

func (u uniformUnit) sample(r *rand.Rand) float64 { return u.a + r.Float64()*(u.b-u.a) }
func (u uniformUnit) cdf(x float64) float64 {
	switch {
	case x <= u.a:
		return 0
	case x >= u.b:
		return 1
	default:
		return (x - u.a) / (u.b - u.a)
	}
}

// gaussUnit is a Gaussian truncated to [0,1). With the narrow sigmas used
// here the truncation loss is negligible but the CDF normalises it away
// regardless.
type gaussUnit struct{ mu, sigma float64 }

func stdNormCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

func (g gaussUnit) mass() float64 {
	return stdNormCDF((1-g.mu)/g.sigma) - stdNormCDF((0-g.mu)/g.sigma)
}

func (g gaussUnit) sample(r *rand.Rand) float64 {
	for {
		x := g.mu + r.NormFloat64()*g.sigma
		if x >= 0 && x < 1 {
			return x
		}
	}
}

func (g gaussUnit) cdf(x float64) float64 {
	x = clamp01(x)
	num := stdNormCDF((x-g.mu)/g.sigma) - stdNormCDF((0-g.mu)/g.sigma)
	return num / g.mass()
}

// Mixture is a weighted mixture of unit-interval components.
type Mixture struct {
	name    string
	weights []float64 // cumulative, last == 1
	comps   []unitDist
}

// Component describes one mixture part for NewMixture.
type Component struct {
	Weight float64
	// Exactly one of the following is used:
	Gauss   *GaussSpec
	Uniform *UniformSpec
}

// GaussSpec is a truncated Gaussian component.
type GaussSpec struct{ Mu, Sigma float64 }

// UniformSpec is a uniform component over [A,B).
type UniformSpec struct{ A, B float64 }

// NewMixture builds a mixture distribution. Weights are normalised; a
// component must specify exactly one shape.
func NewMixture(name string, comps []Component) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("keydist: mixture %q needs at least one component", name)
	}
	var total float64
	for _, c := range comps {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("keydist: mixture %q has non-positive weight", name)
		}
		total += c.Weight
	}
	m := &Mixture{name: name}
	cum := 0.0
	for i, c := range comps {
		cum += c.Weight / total
		m.weights = append(m.weights, cum)
		switch {
		case c.Gauss != nil && c.Uniform == nil:
			if c.Gauss.Sigma <= 0 {
				return nil, fmt.Errorf("keydist: component %d of %q has sigma <= 0", i, name)
			}
			m.comps = append(m.comps, gaussUnit{c.Gauss.Mu, c.Gauss.Sigma})
		case c.Uniform != nil && c.Gauss == nil:
			if !(c.Uniform.A < c.Uniform.B) || c.Uniform.A < 0 || c.Uniform.B > 1 {
				return nil, fmt.Errorf("keydist: component %d of %q has invalid uniform bounds", i, name)
			}
			m.comps = append(m.comps, uniformUnit{c.Uniform.A, c.Uniform.B})
		default:
			return nil, fmt.Errorf("keydist: component %d of %q must set exactly one shape", i, name)
		}
	}
	m.weights[len(m.weights)-1] = 1 // kill accumulated rounding
	return m, nil
}

// Name implements Distribution.
func (m *Mixture) Name() string { return m.name }

// Sample implements Distribution.
func (m *Mixture) Sample(r *rand.Rand) keyspace.Key {
	u := r.Float64()
	i := sort.SearchFloat64s(m.weights, u)
	if i == len(m.comps) {
		i--
	}
	return keyspace.FromFloat(m.comps[i].sample(r))
}

// CDF implements Distribution.
func (m *Mixture) CDF(x float64) float64 {
	x = clamp01(x)
	var sum, prev float64
	for i, c := range m.comps {
		w := m.weights[i] - prev
		prev = m.weights[i]
		sum += w * c.cdf(x)
	}
	return sum
}

// GnutellaLike returns the synthetic stand-in for the paper's "Gnutella
// filename distribution": a 10% uniform background plus six Gaussian density
// spikes of widely varying width, down to needle-thin (sigma 4e-4). The
// needles are narrower than any practical uniform-resolution histogram
// bucket, which is the documented failure mode of Mercury's sampling and the
// regime Oscar's median estimation is designed for.
func GnutellaLike() Distribution {
	m, err := NewMixture("gnutella", []Component{
		{Weight: 0.10, Uniform: &UniformSpec{A: 0, B: 1}},
		{Weight: 0.22, Gauss: &GaussSpec{Mu: 0.12, Sigma: 0.015}},
		{Weight: 0.18, Gauss: &GaussSpec{Mu: 0.31, Sigma: 0.003}},
		{Weight: 0.15, Gauss: &GaussSpec{Mu: 0.47, Sigma: 0.025}},
		{Weight: 0.12, Gauss: &GaussSpec{Mu: 0.63, Sigma: 0.001}},
		{Weight: 0.13, Gauss: &GaussSpec{Mu: 0.78, Sigma: 0.010}},
		{Weight: 0.10, Gauss: &GaussSpec{Mu: 0.91, Sigma: 0.0004}},
	})
	if err != nil {
		panic("keydist: GnutellaLike construction: " + err.Error()) // static spec, cannot fail
	}
	return m
}

// Zipf places mass on Sites discrete cluster centres with popularity
// ∝ 1/rank^S, spreading each cluster over a small jitter window. It models
// key spaces organised around popular items (access-skew workloads).
type Zipf struct {
	sites   []float64 // cluster centres in [0,1)
	cum     []float64 // cumulative site probabilities
	jitter  float64
	nameStr string
}

// NewZipf builds a Zipf cluster distribution with the given number of sites,
// exponent s > 0 and per-site jitter half-width (fraction of the circle).
func NewZipf(sites int, s, jitter float64) (*Zipf, error) {
	if sites < 1 {
		return nil, fmt.Errorf("keydist: zipf needs at least one site")
	}
	if s <= 0 {
		return nil, fmt.Errorf("keydist: zipf exponent must be positive")
	}
	if jitter < 0 || jitter > 0.5/float64(sites) {
		return nil, fmt.Errorf("keydist: zipf jitter %g out of range", jitter)
	}
	z := &Zipf{jitter: jitter, nameStr: fmt.Sprintf("zipf(%d,%.2g)", sites, s)}
	var total float64
	probs := make([]float64, sites)
	for i := range probs {
		probs[i] = 1 / math.Pow(float64(i+1), s)
		total += probs[i]
	}
	// Deterministically scatter the sites: golden-ratio low-discrepancy
	// sequence keeps popular sites spread over the circle.
	const golden = 0.6180339887498949
	pos := 0.0
	cum := 0.0
	for i := range probs {
		pos = math.Mod(pos+golden, 1)
		z.sites = append(z.sites, pos)
		cum += probs[i] / total
		z.cum = append(z.cum, cum)
	}
	z.cum[len(z.cum)-1] = 1
	return z, nil
}

// Name implements Distribution.
func (z *Zipf) Name() string { return z.nameStr }

// Sample implements Distribution.
func (z *Zipf) Sample(r *rand.Rand) keyspace.Key {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i == len(z.sites) {
		i--
	}
	x := z.sites[i]
	if z.jitter > 0 {
		x += (r.Float64()*2 - 1) * z.jitter
	}
	return keyspace.FromFloat(math.Mod(x+1, 1))
}

// CDF implements Distribution.
func (z *Zipf) CDF(x float64) float64 {
	x = clamp01(x)
	var sum float64
	prev := 0.0
	for i, site := range z.sites {
		p := z.cum[i] - prev
		prev = z.cum[i]
		if z.jitter == 0 {
			if site < x {
				sum += p
			}
			continue
		}
		lo, hi := site-z.jitter, site+z.jitter
		// Mass of the site's uniform window lying below x, handling wrap.
		sum += p * windowMassBelow(lo, hi, x)
	}
	return sum
}

// windowMassBelow returns the fraction of the uniform window [lo,hi)
// (possibly extending past the unit interval on either side, i.e. wrapping)
// that lies in [0, x).
func windowMassBelow(lo, hi, x float64) float64 {
	width := hi - lo
	mass := overlap(lo, hi, 0, x) // unwrapped part
	if lo < 0 {                   // wrapped low part lives near 1
		mass += overlap(lo+1, 1, 0, x)
		mass -= overlap(lo, 0, 0, x) // remove the below-zero stretch counted above
	}
	if hi > 1 { // wrapped high part lives near 0
		mass += overlap(0, hi-1, 0, x)
		mass -= overlap(1, hi, 0, x)
	}
	return mass / width
}

func overlap(a1, a2, b1, b2 float64) float64 {
	lo := math.Max(a1, b1)
	hi := math.Min(a2, b2)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Empirical resamples (with replacement, plus optional jitter) from an
// observed key set — the path for loading a real trace.
type Empirical struct {
	sorted []float64
	jitter float64
}

// NewEmpirical builds an empirical distribution from observed keys.
func NewEmpirical(keys []keyspace.Key, jitter float64) (*Empirical, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("keydist: empirical distribution needs at least one key")
	}
	e := &Empirical{jitter: jitter}
	e.sorted = make([]float64, len(keys))
	for i, k := range keys {
		e.sorted[i] = k.Float()
	}
	sort.Float64s(e.sorted)
	return e, nil
}

// Name implements Distribution.
func (e *Empirical) Name() string { return "empirical" }

// Sample implements Distribution.
func (e *Empirical) Sample(r *rand.Rand) keyspace.Key {
	x := e.sorted[r.Intn(len(e.sorted))]
	if e.jitter > 0 {
		x = math.Mod(x+(r.Float64()*2-1)*e.jitter+1, 1)
	}
	return keyspace.FromFloat(x)
}

// CDF implements Distribution. Jitter is ignored here: for trace-sized key
// sets the smoothing shifts mass by at most the jitter width.
func (e *Empirical) CDF(x float64) float64 {
	x = clamp01(x)
	return float64(sort.SearchFloat64s(e.sorted, x)) / float64(len(e.sorted))
}

// ByName returns a registered distribution by CLI name.
func ByName(name string) (Distribution, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "gnutella":
		return GnutellaLike(), nil
	case "zipf":
		return NewZipf(64, 1.0, 0.002)
	default:
		return nil, fmt.Errorf("keydist: unknown distribution %q (want uniform|gnutella|zipf)", name)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
