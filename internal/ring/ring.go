// Package ring maintains the ordered ring underlying the overlay: peers
// sorted by identifier, successor/predecessor pointers over alive peers,
// and key-ownership lookups.
//
// The paper assumes "the ring structure was preserved by the devised
// self-stabilizing techniques (e.g. Chord ring maintenance algorithms)" and
// evaluates only the long-range-link layer under churn. This package is that
// assumption made executable: Kill re-stitches the alive ring immediately. A
// message-driven stabiliser for live deployments lives in internal/p2p.
package ring

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// Ring keeps the peers of a Network in identifier order.
type Ring struct {
	net *graph.Network
	// order lists all peers (alive and dead) sorted by (key, id); dead
	// peers are skipped during lookups. Ties on key are broken by id so the
	// order is total, and a peer's index can be recovered by binary search.
	order []graph.NodeID
}

// New creates a ring over an (initially empty) network.
func New(net *graph.Network) *Ring {
	return &Ring{net: net}
}

// indexOf returns the position of id in the order via binary search on
// (key, id). It panics if the peer was never inserted.
func (r *Ring) indexOf(id graph.NodeID) int {
	i := sort.Search(len(r.order), func(i int) bool { return !r.less(r.order[i], id) })
	if i == len(r.order) || r.order[i] != id {
		panic(fmt.Sprintf("ring: node %d not on the ring", id))
	}
	return i
}

// less orders peers by (key, id).
func (r *Ring) less(a, b graph.NodeID) bool {
	na, nb := r.net.Node(a), r.net.Node(b)
	if na.Key != nb.Key {
		return na.Key < nb.Key
	}
	return na.ID < nb.ID
}

// Insert adds an alive peer to the ring and splices the successor and
// predecessor pointers of its neighbours.
func (r *Ring) Insert(id graph.NodeID) {
	n := r.net.Node(id)
	if !n.Alive {
		panic("ring: inserting dead peer")
	}
	i := sort.Search(len(r.order), func(i int) bool { return !r.less(r.order[i], id) })
	r.order = append(r.order, graph.NoNode)
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = id
	// Splice pointers: find alive neighbours around position i.
	if r.aliveLen() == 1 {
		n.Succ, n.Pred = id, id // single-peer ring points at itself
		return
	}
	succ := r.nextAliveFrom(i + 1)
	pred := r.prevAliveFrom(i - 1)
	n.Succ, n.Pred = succ, pred
	r.net.Node(succ).Pred = id
	r.net.Node(pred).Succ = id
}

// aliveLen returns the number of alive peers on the ring.
func (r *Ring) aliveLen() int { return r.net.AliveCount() }

// nextAliveFrom scans clockwise starting at index i (wrapping) and returns
// the first alive peer. It panics if no peer is alive.
func (r *Ring) nextAliveFrom(i int) graph.NodeID {
	n := len(r.order)
	for k := 0; k < n; k++ {
		id := r.order[((i+k)%n+n)%n]
		if r.net.Node(id).Alive {
			return id
		}
	}
	panic("ring: no alive peers")
}

// prevAliveFrom scans counterclockwise starting at index i (wrapping) and
// returns the first alive peer.
func (r *Ring) prevAliveFrom(i int) graph.NodeID {
	n := len(r.order)
	for k := 0; k < n; k++ {
		id := r.order[((i-k)%n+n)%n]
		if r.net.Node(id).Alive {
			return id
		}
	}
	panic("ring: no alive peers")
}

// Kill marks the peer dead in the network and re-stitches its alive ring
// neighbours around it, modelling instantaneous self-stabilisation.
func (r *Ring) Kill(id graph.NodeID) {
	n := r.net.Node(id)
	if !n.Alive {
		return
	}
	r.net.Kill(id)
	if r.aliveLen() == 0 {
		return
	}
	i := r.indexOf(id)
	succ := r.nextAliveFrom(i + 1)
	pred := r.prevAliveFrom(i - 1)
	r.net.Node(pred).Succ = succ
	r.net.Node(succ).Pred = pred
}

// OwnerOf returns the peer owning key k under the successor convention: the
// first alive peer at or clockwise-after k. It panics on an empty ring.
func (r *Ring) OwnerOf(k keyspace.Key) graph.NodeID {
	if len(r.order) == 0 || r.aliveLen() == 0 {
		panic("ring: OwnerOf on empty ring")
	}
	i := sort.Search(len(r.order), func(i int) bool {
		return r.net.Node(r.order[i]).Key >= k
	})
	return r.nextAliveFrom(i) // wraps to the smallest key when k > all keys
}

// Successor returns the alive peer clockwise-after the given peer (which may
// itself be dead: the lookup starts from its ring position).
func (r *Ring) Successor(id graph.NodeID) graph.NodeID {
	return r.nextAliveFrom(r.indexOf(id) + 1)
}

// Predecessor returns the alive peer counterclockwise-before the given peer.
func (r *Ring) Predecessor(id graph.NodeID) graph.NodeID {
	return r.prevAliveFrom(r.indexOf(id) - 1)
}

// RandomAlive returns a uniformly random alive peer.
func (r *Ring) RandomAlive(rng *rand.Rand) graph.NodeID {
	if r.aliveLen() == 0 {
		panic("ring: RandomAlive on empty ring")
	}
	for {
		id := r.order[rng.Intn(len(r.order))]
		if r.net.Node(id).Alive {
			return id
		}
	}
}

// RandomAliveInRange returns a uniformly random alive peer with key in rg,
// or graph.NoNode when the range holds none. Used by oracle-mode wiring.
func (r *Ring) RandomAliveInRange(rng *rand.Rand, rg keyspace.Range) graph.NodeID {
	if len(r.order) == 0 {
		return graph.NoNode
	}
	if rg.IsFull() {
		if r.aliveLen() == 0 {
			return graph.NoNode
		}
		return r.RandomAlive(rng)
	}
	// The order slice is sorted by key, so the range occupies a contiguous
	// (possibly wrapping) index window.
	n := len(r.order)
	lo := sort.Search(n, func(i int) bool { return r.net.Node(r.order[i]).Key >= rg.Start })
	hi := sort.Search(n, func(i int) bool { return r.net.Node(r.order[i]).Key >= rg.End })
	window := hi - lo
	if window <= 0 {
		window += n
	}
	if window == 0 {
		return graph.NoNode
	}
	// Rejection-sample alive peers from the window; fall back to a scan if
	// the window looks devoid of alive peers.
	for attempt := 0; attempt < 3*window+8; attempt++ {
		id := r.order[(lo+rng.Intn(window))%n]
		node := r.net.Node(id)
		if node.Alive && rg.Contains(node.Key) {
			return id
		}
	}
	ids := r.AliveInRange(rg)
	if len(ids) == 0 {
		return graph.NoNode
	}
	return ids[rng.Intn(len(ids))]
}

// AliveInRange returns the alive peers whose keys lie in rg, ordered
// clockwise starting from rg.Start.
func (r *Ring) AliveInRange(rg keyspace.Range) []graph.NodeID {
	var out []graph.NodeID
	r.ScanRange(rg, func(id graph.NodeID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// CountAliveInRange counts alive peers with keys in rg.
func (r *Ring) CountAliveInRange(rg keyspace.Range) int {
	count := 0
	r.ScanRange(rg, func(graph.NodeID) bool {
		count++
		return true
	})
	return count
}

// ScanRange visits alive peers with keys in rg in clockwise order from
// rg.Start; fn returning false stops the scan.
func (r *Ring) ScanRange(rg keyspace.Range, fn func(graph.NodeID) bool) {
	if len(r.order) == 0 {
		return
	}
	start := sort.Search(len(r.order), func(i int) bool {
		return r.net.Node(r.order[i]).Key >= rg.Start
	})
	n := len(r.order)
	for k := 0; k < n; k++ {
		id := r.order[(start+k)%n]
		node := r.net.Node(id)
		if !node.Alive {
			continue
		}
		if !rg.Contains(node.Key) {
			// Peers are visited in clockwise key order from rg.Start, so
			// the first key outside the arc ends it — unless the range is
			// full, which Contains already reports as inside.
			return
		}
		if !fn(id) {
			return
		}
	}
}

// AliveOrdered returns all alive peers in ascending key order.
func (r *Ring) AliveOrdered() []graph.NodeID {
	out := make([]graph.NodeID, 0, r.aliveLen())
	for _, id := range r.order {
		if r.net.Node(id).Alive {
			out = append(out, id)
		}
	}
	return out
}

// Stabilize recomputes every alive peer's successor and predecessor from the
// global order. Insert and Kill keep pointers correct incrementally; this is
// the recovery path after bulk operations and a test oracle.
func (r *Ring) Stabilize() {
	alive := make([]graph.NodeID, 0, r.aliveLen())
	for _, id := range r.order {
		if r.net.Node(id).Alive {
			alive = append(alive, id)
		}
	}
	for i, id := range alive {
		n := r.net.Node(id)
		n.Succ = alive[(i+1)%len(alive)]
		n.Pred = alive[(i-1+len(alive))%len(alive)]
	}
}

// CheckInvariants verifies ring consistency: order sorted, positions match,
// pointers form the alive cycle.
func (r *Ring) CheckInvariants() error {
	for i := 1; i < len(r.order); i++ {
		if !r.less(r.order[i-1], r.order[i]) {
			return fmt.Errorf("ring: order not sorted at %d", i)
		}
	}
	for i, id := range r.order {
		if r.indexOf(id) != i {
			return fmt.Errorf("ring: indexOf(%d)=%d, want %d", id, r.indexOf(id), i)
		}
	}
	var alive []graph.NodeID
	for _, id := range r.order {
		if r.net.Node(id).Alive {
			alive = append(alive, id)
		}
	}
	for i, id := range alive {
		n := r.net.Node(id)
		wantSucc := alive[(i+1)%len(alive)]
		wantPred := alive[(i-1+len(alive))%len(alive)]
		if n.Succ != wantSucc {
			return fmt.Errorf("ring: node %d succ=%d, want %d", id, n.Succ, wantSucc)
		}
		if n.Pred != wantPred {
			return fmt.Errorf("ring: node %d pred=%d, want %d", id, n.Pred, wantPred)
		}
	}
	return nil
}
