package oscar

import (
	"bytes"
	"fmt"
	"testing"
)

func TestReplicatedRoundTrip(t *testing.T) {
	ov := buildSmall(t, Config{Size: 300})
	key := KeyFromFloat(0.4)
	if _, err := ov.PutReplicated(key, []byte("r3"), 3); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := ov.GetReplicated(key, 3)
	if err != nil || !found || !bytes.Equal(v, []byte("r3")) {
		t.Fatalf("get = %q %v %v", v, found, err)
	}
	// The plain Get also sees it (primary copy is at the owner).
	v, found, _, err = ov.Get(key)
	if err != nil || !found || !bytes.Equal(v, []byte("r3")) {
		t.Fatalf("plain get = %q %v %v", v, found, err)
	}
}

func TestReplicationPlacesCopiesOnSuccessors(t *testing.T) {
	ov := buildSmall(t, Config{Size: 200})
	key := KeyFromFloat(0.6)
	res, err := ov.PutReplicated(key, []byte("x"), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The owner holds the primary item; its two successors hold replica
	// copies in their replica stores (so range scans never see them).
	owner := ov.Info(res.Owner)
	if owner.StoredItems != 1 || owner.ReplicaItems != 0 {
		t.Errorf("owner holds %d primary / %d replica items, want 1/0", owner.StoredItems, owner.ReplicaItems)
	}
	cur := owner.Successor
	for i := 1; i < 3; i++ {
		info := ov.Info(cur)
		if info.StoredItems != 0 || info.ReplicaItems != 1 {
			t.Errorf("replica %d (node %d) holds %d primary / %d replica items, want 0/1",
				i, cur, info.StoredItems, info.ReplicaItems)
		}
		cur = info.Successor
	}
	next := ov.Info(cur)
	if next.StoredItems != 0 || next.ReplicaItems != 0 {
		t.Error("a fourth copy exists")
	}
}

func TestReplicationSurvivesCrashes(t *testing.T) {
	const n, items, replicas = 600, 200, 3
	ov := buildSmall(t, Config{Size: n, Seed: 5})
	var keys []Key
	for i := 0; i < items; i++ {
		k := KeyFromFloat(float64(i) / items)
		keys = append(keys, k)
		if _, err := ov.PutReplicated(k, []byte(fmt.Sprint(i)), replicas); err != nil {
			t.Fatal(err)
		}
	}
	ov.Crash(0.25)

	// Unreplicated expectation: ~25% of items lost. With 3 replicas an item
	// needs its whole chain neighbourhood gone; only a few percent may
	// disappear (chain shifts at crash boundaries).
	foundReplicated := 0
	for _, k := range keys {
		if _, ok, _, err := ov.GetReplicated(k, replicas); err == nil && ok {
			foundReplicated++
		}
	}
	if foundReplicated < items*90/100 {
		t.Errorf("only %d/%d items survive 25%% crashes with %d replicas", foundReplicated, items, replicas)
	}
	t.Logf("survived: %d/%d", foundReplicated, items)
}

func TestDeleteReplicatedClearsChain(t *testing.T) {
	ov := buildSmall(t, Config{Size: 200})
	key := KeyFromFloat(0.33)
	if _, err := ov.PutReplicated(key, []byte("gone"), 3); err != nil {
		t.Fatal(err)
	}
	res, err := ov.DeleteReplicated(key, 3)
	if err != nil || !res.Existed {
		t.Fatalf("delete: %+v err=%v", res, err)
	}
	// No copy survives anywhere on the chain.
	if _, found, _, err := ov.GetReplicated(key, 3); err != nil || found {
		t.Fatalf("item survived replicated delete: found=%v err=%v", found, err)
	}
	// Deleting again reports absence.
	res, err = ov.DeleteReplicated(key, 3)
	if err != nil || res.Existed {
		t.Fatalf("second delete: %+v err=%v", res, err)
	}
}

func TestReplicationDegenerateArgs(t *testing.T) {
	ov := buildSmall(t, Config{Size: 100})
	key := KeyFromFloat(0.1)
	if _, err := ov.PutReplicated(key, []byte("a"), 0); err != nil {
		t.Fatal(err) // replicas<1 behaves like 1
	}
	v, found, _, err := ov.GetReplicated(key, -5)
	if err != nil || !found || string(v) != "a" {
		t.Fatalf("degenerate replicas: %q %v %v", v, found, err)
	}
}

func TestReplicationTinyOverlayWraps(t *testing.T) {
	ov, err := Build(Config{Size: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFromFloat(0.5)
	if _, err := ov.PutReplicated(key, []byte("tiny"), 5); err != nil {
		t.Fatal(err) // replicas > overlay size must not loop forever
	}
	v, found, _, err := ov.GetReplicated(key, 5)
	if err != nil || !found || string(v) != "tiny" {
		t.Fatalf("tiny overlay: %q %v %v", v, found, err)
	}
}
