// Package routecache provides the small bounded caches that sit on the
// hot lookup/read path: a per-node LRU of key → owner-resolution results
// and a requester-side LRU of hot-key value copies. Both are freshness
// caches, never authority — every consumer validates an entry against
// the ring (ownership gates, digest checks) before trusting it, so the
// cache is allowed to be stale without ever being wrong.
//
// The cache is safe for concurrent use and takes only its own lock, so
// callers may invoke it while holding node locks without ordering
// concerns.
package routecache

import (
	"container/list"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// Stats is a point-in-time hit/miss snapshot.
type Stats struct {
	Hits   uint64
	Misses uint64
}

type entry[V any] struct {
	key keyspace.Key
	val V
	// expires is the wall-clock instant the entry stops being served;
	// the zero time means the entry never ages out.
	expires time.Time
}

// Cache is a bounded LRU of key → V with an optional TTL. A nil *Cache
// is a valid, permanently-empty cache: every method is nil-safe, so a
// disabled cache needs no call-site guards.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	byKey map[keyspace.Key]*list.Element
	hits  uint64
	miss  uint64
	now   func() time.Time // test seam
}

// New builds a cache holding at most capacity entries, each served for
// at most ttl after insertion (ttl <= 0 disables aging). A capacity of
// zero or less returns nil — the disabled cache.
func New[V any](capacity int, ttl time.Duration) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[V]{
		cap:   capacity,
		ttl:   ttl,
		ll:    list.New(),
		byKey: make(map[keyspace.Key]*list.Element, capacity),
		now:   time.Now,
	}
}

// Get returns the live entry for k, marking it most recently used. An
// expired entry is removed and reported as a miss.
func (c *Cache[V]) Get(k keyspace.Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.miss++
		return zero, false
	}
	e := el.Value.(*entry[V])
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.miss++
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.val, true
}

// Put inserts or refreshes the entry for k, restarting its TTL and
// evicting the least recently used entry on overflow.
func (c *Cache[V]) Put(k keyspace.Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.byKey[k]; ok {
		e := el.Value.(*entry[V])
		e.val, e.expires = v, expires
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[V]{key: k, val: v, expires: expires})
	c.byKey[k] = el
	if c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
	}
}

// Invalidate drops the entry for k, if present.
func (c *Cache[V]) Invalidate(k keyspace.Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.removeLocked(el)
	}
}

// InvalidateMatching drops every entry the predicate selects — e.g. all
// resolutions pointing at a peer that just proved unreachable.
func (c *Cache[V]) InvalidateMatching(pred func(k keyspace.Key, v V) bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*entry[V])
		if pred(e.key, e.val) {
			c.removeLocked(el)
		}
	}
}

// Flush empties the cache — the membership-change hammer: any ring
// topology shift makes every cached resolution suspect at once.
func (c *Cache[V]) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.byKey)
}

// Len reports the current entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the accumulated hit/miss counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.miss}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.byKey, el.Value.(*entry[V]).key)
}
