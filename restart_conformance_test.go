package oscar

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The restart-durability contract: a durable node crashed mid-WAL and
// restarted on the same data directory loses zero acked writes, keeps
// every delete deleted (including deletes issued while it was down), and
// rejoins by pulling only the downtime delta from its successor — never
// the full arc it already holds.

const restartReplicas = 3

// durableNodeConfig is the per-node config of the restart scenarios:
// evenly spaced keys, r=3, and a private data directory per ring slot.
// Restarting slot i means calling StartNode with this config again.
func durableNodeConfig(dir string, i, size int, fsync string) NodeConfig {
	return NodeConfig{
		Listen: "127.0.0.1:0",
		Key:    KeyFromFloat(float64(i)/float64(size) + 0.013),
		MaxIn:  8, MaxOut: 8,
		Replicas: restartReplicas,
		Seed:     int64(i),
		DataDir:  filepath.Join(dir, fmt.Sprintf("node-%d", i)),
		Fsync:    fsync,
	}
}

// crashNode kills a node the way a SIGKILL would reach its storage: the
// transport drops and no final snapshot or clean marker is written, so
// the next start from the same directory takes the crash-recovery path.
// The public wrapper is marked closed so stabilisation loops skip it.
func crashNode(n *Node) {
	n.mu.Lock()
	n.closed = true
	m := n.maint
	n.maint = nil
	n.mu.Unlock()
	if m != nil {
		m.Stop()
	}
	_ = n.inner.Close()
}

// settleRing stabilises every open node until the first open node's ring
// walk reports exactly want peers, then runs one extra full pass: the walk
// counts successor pointers, which converge a round before predecessor
// pointers do (a node clears its dead pred after its own predecessor's
// notify for that round already passed), and a cleared pred slot rejects
// writes for the inherited arc until the next notify re-offers it.
func settleRing(t *testing.T, nodes []*Node, want int) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	pass := func() *Node {
		var cl *Node
		for _, n := range nodes {
			if n != nil && !n.isClosed() {
				if cl == nil {
					cl = n
				}
				n.Stabilize(ctx)
			}
		}
		return cl
	}
	for {
		cl := pass()
		if cl == nil {
			t.Fatal("no open node left to settle")
		}
		info, err := cl.Info(ctx)
		if err == nil && info.Peers == want {
			pass()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never settled at %d peers (last: %d, err %v)", want, info.Peers, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartDurability is the acceptance scenario of the durable engine,
// on the TCP backend under the race detector: write under load with a
// data dir, crash the owner mid-WAL, restart it on the same directory,
// and assert zero acked writes lost, deletes preserved, and only the
// downtime delta re-shipped on rejoin.
func TestRestartDurability(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const size = 8
	nodes := make([]*Node, size)
	for i := range nodes {
		n, err := StartNode(durableNodeConfig(dir, i, size, "always"))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	settleRing(t, nodes, size)

	client, victim := nodes[0], nodes[5]
	arcKey := func(off uint64) Key { return victim.Key() - Key(off) }
	if res, err := client.Lookup(ctx, arcKey(1)); err != nil || res.Owner.Addr != victim.Addr() {
		t.Fatalf("arc key not owned by the victim (owner %v, err %v)", res.Owner, err)
	}

	// acked tracks every write the client got an acknowledgement for —
	// the set the restart must preserve bit for bit.
	acked := map[Key][]byte{}
	var ackedMu sync.Mutex
	put := func(k Key, v []byte) {
		t.Helper()
		if _, err := client.Put(ctx, k, v); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}

	// Pre-crash state: a dozen keys on the victim's arc, a spread of keys
	// across the rest of the ring, and two deletes whose tombstones only
	// the victim's WAL fully holds.
	for j := uint64(1); j <= 12; j++ {
		put(arcKey(j), []byte(fmt.Sprintf("pre-%d", j)))
	}
	for j := 0; j < 16; j++ {
		put(KeyFromFloat(float64(j)/16+0.005), []byte(fmt.Sprintf("spread-%d", j)))
	}
	deletedPre := []Key{arcKey(11), arcKey(12)}
	for _, k := range deletedPre {
		if _, err := client.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
		delete(acked, k)
	}

	// Crash under load: writers hammer the victim's arc while it dies, so
	// the WAL tail is hot when the process goes away. Only writes the
	// client saw acked enter the ledger.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				k := arcKey(uint64(100 + w*1000 + j))
				v := []byte(fmt.Sprintf("load-%d-%d", w, j))
				if _, err := client.Put(ctx, k, v); err == nil {
					ackedMu.Lock()
					acked[k] = v
					ackedMu.Unlock()
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	crashNode(victim)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The survivors heal; the arc keeps taking writes while the owner is
	// down — these five keys are the downtime delta the rejoin must pull.
	settleRing(t, nodes, size-1)
	downKeys := make([]Key, 5)
	for d := range downKeys {
		downKeys[d] = arcKey(uint64(5000 + d))
		put(downKeys[d], []byte(fmt.Sprintf("down-%d", d)))
	}
	// ...and one pre-crash key is deleted while its original owner is
	// down: the restarted node still holds it live in its WAL and must
	// not resurrect it.
	downDeleted := arcKey(3)
	waitGet(t, client, downDeleted)
	if _, err := client.Delete(ctx, downDeleted); err != nil {
		t.Fatal(err)
	}
	delete(acked, downDeleted)

	// Restart from the same directory: crash recovery, then rejoin.
	restarted, err := StartNode(durableNodeConfig(dir, 5, size, "always"))
	if err != nil {
		t.Fatal(err)
	}
	rec := restarted.Recovery()
	if !rec.Enabled || rec.Clean {
		t.Fatalf("recovery = %+v, want a crash restart", rec)
	}
	if rec.Items == 0 || rec.ReplayedFrames == 0 {
		t.Fatalf("recovery = %+v, want replayed WAL state", rec)
	}
	if err := restarted.Join(ctx, client.Addr()); err != nil {
		t.Fatal(err)
	}

	// The delta contract: the join migrated exactly the five downtime
	// writes — not the dozens of arc keys the node recovered locally.
	shippedItems, shippedTombs := restarted.inner.JoinShipped()
	if shippedItems != len(downKeys) {
		t.Errorf("join shipped %d items, want exactly the %d-key downtime delta", shippedItems, len(downKeys))
	}
	if shippedTombs < 1 || shippedTombs > 3 {
		t.Errorf("join shipped %d tombstones, want the downtime delete (1..3 with replicated pre-crash tombstones)", shippedTombs)
	}
	nodes[5] = restarted
	settleRing(t, nodes, size)

	// Zero acked writes lost, every delete still a delete.
	deadline := time.Now().Add(20 * time.Second)
	for {
		lost := ""
		for k, v := range acked {
			got, err := client.Get(ctx, k)
			if err != nil {
				lost = fmt.Sprintf("key %v: %v", k, err)
				break
			}
			if !bytes.Equal(got.Value, v) {
				lost = fmt.Sprintf("key %v = %q, want %q", k, got.Value, v)
				break
			}
		}
		if lost == "" {
			for _, k := range append(deletedPre, downDeleted) {
				if _, err := client.Get(ctx, k); !errors.Is(err, ErrNotFound) {
					lost = fmt.Sprintf("deleted key %v resurrected (err %v)", k, err)
					break
				}
			}
		}
		if lost == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after restart: %s", lost)
		}
		time.Sleep(10 * time.Millisecond)
	}

	info, err := restarted.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable {
		t.Error("restarted node does not report Durable")
	}
}

// waitGet polls until the key reads successfully — the chain fallback
// needs a moment after an owner crash before promotion completes.
func waitGet(t *testing.T, cl Client, k Key) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := cl.Get(ctx, k); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("key %v never became readable: %v", k, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// restartBackend is one backend under the delete-survives-restart
// contract: a ring of durable nodes and a way to bring a crashed slot
// back from its data directory.
type restartBackend struct {
	name   string
	nodes  []*Node
	client *Node
	// restart boots the crashed slot's identity again from the same data
	// directory and returns the new node (also recorded in nodes).
	restart func(t *testing.T, slot int) *Node
	close   func()
}

func restartMemBackend(t *testing.T) *restartBackend {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	const size = 10
	c, err := StartCluster(ctx, size, WithSeed(19),
		WithReplicas(restartReplicas),
		WithDataDir(dir),
		WithStabilizeRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	b := &restartBackend{
		name:   "p2p/mem",
		nodes:  c.Nodes(),
		client: c.Node(0),
		close:  func() { _ = c.Close() },
	}
	b.restart = func(t *testing.T, slot int) *Node {
		t.Helper()
		n, err := c.AddNode(ctx, NodeConfig{
			Key:   b.nodes[slot].Key(),
			MaxIn: 16, MaxOut: 16,
			Replicas: restartReplicas,
			Seed:     int64(slot),
			DataDir:  filepath.Join(dir, fmt.Sprintf("node-%d", slot)),
		})
		if err != nil {
			t.Fatal(err)
		}
		b.nodes[slot] = n
		return n
	}
	return b
}

func restartTCPBackend(t *testing.T) *restartBackend {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	const size = 8
	nodes := make([]*Node, size)
	for i := range nodes {
		n, err := StartNode(durableNodeConfig(dir, i, size, "interval"))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = n
	}
	b := &restartBackend{
		name:   "p2p/tcp",
		nodes:  nodes,
		client: nodes[0],
		close: func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		},
	}
	b.restart = func(t *testing.T, slot int) *Node {
		t.Helper()
		n, err := StartNode(durableNodeConfig(dir, slot, size, "interval"))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Join(ctx, b.client.Addr()); err != nil {
			t.Fatal(err)
		}
		b.nodes[slot] = n
		return n
	}
	return b
}

// TestDeleteSurvivesRestart is the tombstone-durability contract on all
// three backends. The live fabrics run the full scenario — delete before
// the crash, delete during the downtime, restart the owner from its data
// directory, nothing resurrects. The simulator cannot restart a process,
// so it asserts its half of the contract: with the owner permanently
// gone, the replica chain keeps both deletes deleted.
func TestDeleteSurvivesRestart(t *testing.T) {
	t.Run("simulator", func(t *testing.T) {
		ctx := context.Background()
		ov, err := Build(Config{Size: 64, Seed: 31, Keys: UniformKeys()})
		if err != nil {
			t.Fatal(err)
		}
		cl := ov.ReplicatedClient(restartReplicas)
		probe, err := cl.Put(ctx, KeyFromFloat(0.52), []byte("probe"))
		if err != nil {
			t.Fatal(err)
		}
		k1, k2 := probe.Owner.Key-1, probe.Owner.Key-2
		for _, k := range []Key{k1, k2} {
			if _, err := cl.Put(ctx, k, []byte("doomed")); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cl.Delete(ctx, k1); err != nil {
			t.Fatal(err)
		}
		ov.CrashNode(probe.Owner.ID)
		if _, err := cl.Delete(ctx, k2); err != nil {
			t.Fatal(err)
		}
		for _, k := range []Key{k1, k2} {
			if _, err := cl.Get(ctx, k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %v = %v, want ErrNotFound", k, err)
			}
		}
	})

	backends := []func(*testing.T) *restartBackend{
		restartMemBackend,
		restartTCPBackend,
	}
	for _, mk := range backends {
		b := mk(t)
		t.Run(b.name, func(t *testing.T) {
			defer b.close()
			runDeleteSurvivesRestart(t, b)
		})
	}
}

func runDeleteSurvivesRestart(t *testing.T, b *restartBackend) {
	ctx := context.Background()
	settleRing(t, b.nodes, len(b.nodes))

	// Pick a victim (never the client's node) that owns a small run of
	// keys below its own identifier.
	slot := -1
	for i, n := range b.nodes {
		if i == 0 {
			continue
		}
		res, err := b.client.Lookup(ctx, n.Key()-4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.Addr == n.Addr() {
			slot = i
			break
		}
	}
	if slot < 0 {
		t.Fatal("no node owns a wide enough arc")
	}
	victim := b.nodes[slot]
	k1, k2, kept := victim.Key()-1, victim.Key()-2, victim.Key()-3

	for _, k := range []Key{k1, k2, kept} {
		if _, err := b.client.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// k1 dies before the crash: its tombstone must ride the WAL through
	// the restart.
	if _, err := b.client.Delete(ctx, k1); err != nil {
		t.Fatal(err)
	}

	crashNode(victim)
	settleRing(t, b.nodes, len(b.nodes)-1)

	// k2 dies while the owner is down: the restarted node still holds it
	// live on disk and must adopt the newer tombstone on rejoin.
	waitGet(t, b.client, k2)
	if _, err := b.client.Delete(ctx, k2); err != nil {
		t.Fatal(err)
	}

	restarted := b.restart(t, slot)
	rec := restarted.Recovery()
	if !rec.Enabled || rec.Clean {
		t.Fatalf("recovery = %+v, want a crash restart", rec)
	}
	if rec.Tombstones == 0 {
		t.Fatalf("recovery = %+v, want the pre-crash tombstone recovered", rec)
	}
	settleRing(t, b.nodes, len(b.nodes))

	deadline := time.Now().Add(20 * time.Second)
	for {
		bad := ""
		for _, k := range []Key{k1, k2} {
			if _, err := b.client.Get(ctx, k); !errors.Is(err, ErrNotFound) {
				bad = fmt.Sprintf("deleted key %v = %v, want ErrNotFound", k, err)
				break
			}
		}
		if bad == "" {
			if got, err := b.client.Get(ctx, kept); err != nil || !bytes.Equal(got.Value, []byte("v")) {
				bad = fmt.Sprintf("surviving key = %q, %v", got.Value, err)
			}
		}
		if bad == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after restart: %s", bad)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
