package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Recovered is the state reconstructed by Open: the node's two stores
// as of the last durable mutation, plus how we got there.
type Recovered struct {
	// Primary is the recovered owned shard.
	Primary *storage.Store
	// Replica is the recovered replica store.
	Replica *storage.Store
	// Clean reports whether the previous run shut down cleanly (the
	// marker is consumed on read, so a subsequent crash reads false).
	Clean bool
	// SnapshotAt is the unix-nano save time of the snapshot loaded,
	// or zero if recovery started from an empty state.
	SnapshotAt int64
	// Replayed is the number of log frames replayed over the snapshot.
	Replayed int
	// TornTail reports that a torn or corrupt tail was found in the
	// log and discarded — the signature of a crash mid-append.
	TornTail bool
}

// HasState reports whether recovery produced any data at all.
func (r *Recovered) HasState() bool {
	return r.Primary.Len() > 0 || r.Primary.TombstoneCount() > 0 ||
		r.Replica.Len() > 0 || r.Replica.TombstoneCount() > 0
}

// Snapshot serialises the full state of both stores to disk (write to
// snapshot.tmp, fsync, atomic rename, fsync dir) and truncates the
// log. The caller must guarantee the stores reflect every mutation
// appended so far — in practice, call it under the same lock that
// serialises mutations.
func (e *Engine) Snapshot(primary, replica *storage.Store, savedAt int64) error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	if err := e.buf.Flush(); err != nil {
		e.err = err
		return err
	}
	if err := writeSnapshotFile(e.dir, primary, replica, savedAt); err != nil {
		return err
	}
	if err := e.syncDir(); err != nil {
		return err
	}
	// Everything the log held is now inside the snapshot; an empty log
	// plus this snapshot is the new recovery point.
	if err := e.f.Truncate(0); err != nil {
		e.err = err
		return err
	}
	if _, err := e.f.Seek(0, 0); err != nil {
		e.err = err
		return err
	}
	if err := e.f.Sync(); err != nil {
		e.err = err
		return err
	}
	e.buf.Reset(e.f)
	e.written, e.frames, e.synced = 0, 0, 0
	e.lastSnap = savedAt
	return nil
}

// writeSnapshotFile writes the two stores to dir/snapshot via the
// temp-file + atomic-rename protocol.
func writeSnapshotFile(dir string, primary, replica *storage.Store, savedAt int64) error {
	tmp := filepath.Join(dir, snapTempFile)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var scratch []byte
	emit := func(rec Record) error {
		scratch = appendRecord(scratch[:0], rec)
		_, err := w.Write(scratch)
		return err
	}
	err = emit(Record{Store: storeHeader, Mut: storage.Mutation{Key: keyspace.Key(headerMagic), At: savedAt}})
	stores := []struct {
		id uint8
		s  *storage.Store
	}{{StorePrimary, primary}, {StoreReplica, replica}}
	for _, st := range stores {
		if err != nil {
			break
		}
		id, s := st.id, st.s
		for _, it := range s.Items() {
			if err = emit(Record{Store: id, Mut: storage.Mutation{Op: storage.MutPut, Key: it.Key, Value: it.Value}}); err != nil {
				break
			}
		}
		if err != nil {
			break
		}
		for _, tb := range s.Tombstones() {
			if err = emit(Record{Store: id, Mut: storage.Mutation{Op: storage.MutTombstone, Key: tb.Key, At: tb.At}}); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, snapFile))
}

// loadSnapshot applies dir/snapshot into the given stores, returning
// the header's save time. A missing file is not an error (savedAt 0).
func loadSnapshot(dir string, primary, replica *storage.Store) (int64, error) {
	f, err := os.Open(filepath.Join(dir, snapFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var scratch []byte
	hdr, _, err := readFrame(r, &scratch)
	if err == io.EOF { // zero-length file: treat as absent
		return 0, nil
	}
	if err != nil || hdr.Store != storeHeader || uint64(hdr.Mut.Key) != headerMagic {
		return 0, fmt.Errorf("wal: snapshot header invalid")
	}
	savedAt := hdr.Mut.At
	for {
		rec, _, err := readFrame(r, &scratch)
		if err == io.EOF {
			return savedAt, nil
		}
		if err != nil {
			// Snapshots are renamed into place whole; a damaged one is
			// real corruption, not a crash window. Refuse to guess.
			return 0, fmt.Errorf("wal: snapshot corrupt: %v", err)
		}
		applyRecord(rec, primary, replica)
	}
}

// applyRecord routes one record to the store it mutates. Unknown store
// ids are skipped (forward compatibility).
func applyRecord(rec Record, primary, replica *storage.Store) {
	switch rec.Store {
	case StorePrimary:
		primary.ApplyMutation(rec.Mut)
	case StoreReplica:
		replica.ApplyMutation(rec.Mut)
	}
}

// recover performs the Open-time sequence: consume the clean marker,
// discard a stale in-flight snapshot, load the snapshot, replay the
// log tail (truncating a torn frame), and compact if anything was
// replayed.
func (e *Engine) recover() (*Recovered, error) {
	rec := &Recovered{Primary: &storage.Store{}, Replica: &storage.Store{}}

	marker := filepath.Join(e.dir, cleanFile)
	if _, err := os.Stat(marker); err == nil {
		rec.Clean = true
		if err := os.Remove(marker); err != nil {
			return nil, fmt.Errorf("wal: consume clean marker: %w", err)
		}
	}

	// A snapshot.tmp is an interrupted snapshot write; the real
	// snapshot (if any) is still intact under its final name.
	if err := os.Remove(filepath.Join(e.dir, snapTempFile)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}

	savedAt, err := loadSnapshot(e.dir, rec.Primary, rec.Replica)
	if err != nil {
		return nil, err
	}
	rec.SnapshotAt = savedAt
	e.lastSnap = savedAt

	logPath := filepath.Join(e.dir, walFile)
	good := int64(0)
	if f, err := os.Open(logPath); err == nil {
		var frames int
		var torn bool
		good, frames, torn = scanFrames(bufio.NewReaderSize(f, 1<<16), func(r Record) {
			applyRecord(r, rec.Primary, rec.Replica)
		})
		cerr := f.Close()
		if cerr != nil {
			return nil, cerr
		}
		rec.Replayed = frames
		rec.TornTail = torn
		if torn {
			if err := os.Truncate(logPath, good); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if err := e.openLog(good); err != nil {
		return nil, err
	}
	e.frames = uint64(rec.Replayed)

	// Fold the replayed tail into a fresh snapshot so the next crash
	// replays nothing we already worked through.
	if rec.Replayed > 0 {
		if err := e.Snapshot(rec.Primary, rec.Replica, nowNanos()); err != nil {
			return nil, fmt.Errorf("wal: post-recovery compaction: %w", err)
		}
	}
	return rec, nil
}

// Inspect reads the on-disk stats of a data directory without opening
// an engine (used by the wal-stats command against a stopped node).
func Inspect(dir string) (Stats, error) {
	var st Stats
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err == nil {
		st.WALBytes = fi.Size()
	} else if !os.IsNotExist(err) {
		return st, err
	}
	if f, err := os.Open(filepath.Join(dir, walFile)); err == nil {
		_, frames, _ := scanFrames(bufio.NewReaderSize(f, 1<<16), func(Record) {})
		f.Close()
		st.Frames = uint64(frames)
	} else if !os.IsNotExist(err) {
		return st, err
	}
	if f, err := os.Open(filepath.Join(dir, snapFile)); err == nil {
		var scratch []byte
		if hdr, _, herr := readFrame(bufio.NewReader(f), &scratch); herr == nil && hdr.Store == storeHeader {
			st.LastSnapshot = hdr.Mut.At
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return st, err
	}
	return st, nil
}
