package transport

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	crand "crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"math/big"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

var echoV2Handler = Handler(func(req *Request) *Response {
	return &Response{OK: true, Peer: PeerRef{Key: req.Key}, Value: req.Value}
})

// listen is a test helper for a served endpoint.
func listen(t testing.TB, h Handler, opts ...TCPOption) *TCPEndpoint {
	t.Helper()
	e, err := ListenTCP("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	e.Serve(h)
	return e
}

// TestCodecNegotiation covers the version-handshake matrix: binary↔binary
// settles on the binary codec, a JSON-pinned peer on either side settles
// on JSON, and every pairing still round-trips requests correctly.
func TestCodecNegotiation(t *testing.T) {
	cases := []struct {
		name       string
		serverOpts []TCPOption
		clientOpts []TCPOption
		wantCodec  int
	}{
		{"binary-binary", nil, nil, codecBinary},
		{"json-client", nil, []TCPOption{WithJSONCodec()}, codecJSON},
		{"json-server", []TCPOption{WithJSONCodec()}, nil, codecJSON},
		{"json-json", []TCPOption{WithJSONCodec()}, []TCPOption{WithJSONCodec()}, codecJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			server := listen(t, echoV2Handler, tc.serverOpts...)
			client := listen(t, nil, tc.clientOpts...)
			resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: 42, Value: []byte("hello")})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK || resp.Peer.Key != 42 || string(resp.Value) != "hello" {
				t.Fatalf("echo mismatch: %+v", resp)
			}
			codecs := client.PeerCodecs()
			if got := codecs[server.Addr()]; got != tc.wantCodec {
				t.Fatalf("negotiated codec = %d, want %d (map %v)", got, tc.wantCodec, codecs)
			}
		})
	}
}

// TestLegacyFramesAccepted proves a pre-handshake peer — one that opens
// with a raw JSON frame and never speaks the magic — still works against
// an upgraded server: the rolling-upgrade guarantee.
func TestLegacyFramesAccepted(t *testing.T) {
	server := listen(t, echoV2Handler)
	resp, err := dialPerCall(server.Addr(), &Request{Op: OpPing, Key: keyspace.Key(7)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Peer.Key != 7 {
		t.Fatalf("legacy echo mismatch: %+v", resp)
	}
}

// selfSignedTLS builds a self-signed cert for 127.0.0.1 and returns a
// tls.Config usable symmetrically: it is the fleet's identity and its
// trust root at once.
func selfSignedTLS(t testing.TB) *tls.Config {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "oscar-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(crand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	roots := x509.NewCertPool()
	roots.AddCert(leaf)
	return &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}},
		RootCAs:      roots,
	}
}

// TestTLSTransport runs the full call path over TLS, with certificate
// verification on (shared self-signed cert as the trust root), in both
// codecs.
func TestTLSTransport(t *testing.T) {
	cfg := selfSignedTLS(t)
	for _, tc := range []struct {
		name string
		opts []TCPOption
	}{
		{"binary", []TCPOption{WithTLS(cfg)}},
		{"json", []TCPOption{WithTLS(cfg), WithJSONCodec()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			server := listen(t, echoV2Handler, tc.opts...)
			client := listen(t, nil, tc.opts...)
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: keyspace.Key(i)})
					if err != nil {
						t.Error(err)
						return
					}
					if !resp.OK || resp.Peer.Key != keyspace.Key(i) {
						t.Errorf("echo mismatch: %+v", resp)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

// TestTLSRejectsPlaintextPeer ensures a TLS endpoint does not silently
// accept a plaintext caller.
func TestTLSRejectsPlaintextPeer(t *testing.T) {
	server := listen(t, echoV2Handler, WithTLS(selfSignedTLS(t)))
	plain := listen(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := plain.CallCtx(ctx, server.Addr(), &Request{Op: OpPing}); err == nil {
		t.Fatal("plaintext call against TLS endpoint succeeded")
	}
}

// TestOverloadShedding is the overload conformance scenario: saturate a
// node far past its in-flight cap and assert (a) the excess fails with
// the typed ErrOverloaded instead of queueing, (b) the server's goroutine
// count stays bounded by the cap — deterministic shedding, not OOM — and
// (c) the node serves normally again once the flood passes.
func TestOverloadShedding(t *testing.T) {
	const cap = 8
	release := make(chan struct{})
	var serving sync.WaitGroup
	slow := Handler(func(req *Request) *Response {
		if req.Op == OpPing {
			return &Response{OK: true}
		}
		<-release
		return &Response{OK: true, Peer: PeerRef{Key: req.Key}}
	})
	server := listen(t, slow, WithMaxInflight(cap))
	// The client's own in-flight cap must be wider than the server's, or
	// the flood would be throttled before it ever reaches the peer.
	client := listen(t, nil, WithMaxInflight(4*cap))

	before := runtime.NumGoroutine()

	const flood = 4 * cap
	errs := make(chan error, flood)
	for i := 0; i < flood; i++ {
		serving.Add(1)
		go func(i int) {
			defer serving.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := client.CallCtx(ctx, server.Addr(), &Request{Op: OpGet, Key: keyspace.Key(i)})
			errs <- err
		}(i)
	}

	// Wait until the shed responses have come back: everything beyond the
	// handler cap fails fast while the cap's worth of calls still hangs.
	shed := 0
	for shed < flood-cap {
		err := <-errs
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("flood error = %v, want ErrOverloaded", err)
		}
		shed++
	}

	// The server must not have grown a goroutine per queued request: its
	// handler goroutines are capped, the shed requests spawned none.
	if grew := runtime.NumGoroutine() - before; grew > flood+cap {
		t.Fatalf("goroutines grew by %d during flood (cap %d, flood %d)", grew, cap, flood)
	}

	close(release) // let the admitted calls finish
	serving.Wait()
	ok := 0
	for i := 0; i < cap; i++ {
		if err := <-errs; err == nil {
			ok++
		}
	}
	if ok != cap {
		t.Fatalf("admitted calls succeeded = %d, want %d", ok, cap)
	}

	// After the flood: the node serves again immediately.
	resp, err := client.Call(server.Addr(), &Request{Op: OpPing})
	if err != nil || !resp.OK {
		t.Fatalf("post-flood call = %+v, %v", resp, err)
	}
}

// TestClientInflightCapOverload drives the client-side half of
// backpressure: a saturated per-connection in-flight cap fails the excess
// call with ErrOverloaded once its context expires, without breaking the
// connection.
func TestClientInflightCapOverload(t *testing.T) {
	release := make(chan struct{})
	slow := Handler(func(req *Request) *Response {
		if req.Op == OpPing {
			return &Response{OK: true}
		}
		<-release
		return &Response{OK: true}
	})
	server := listen(t, slow)
	client := listen(t, nil, WithMaxInflight(2), WithPoolSize(1))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = client.Call(server.Addr(), &Request{Op: OpGet})
		}()
	}
	// Let both slow calls occupy the cap.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if codecs := client.PeerCodecs(); len(codecs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never dialed")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := client.CallCtx(ctx, server.Addr(), &Request{Op: OpGet})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated client call = %v, want ErrOverloaded", err)
	}

	close(release)
	wg.Wait()
	resp, err := client.Call(server.Addr(), &Request{Op: OpPing})
	if err != nil || !resp.OK {
		t.Fatalf("post-saturation call = %+v, %v", resp, err)
	}
}
