// Package sim is the experiment engine: it reproduces the paper's §3
// methodology — "a simulation of the bootstrap of the Oscar network starting
// from scratch and simulating the network growth until it reaches 10000
// peers", with periodic rewiring of all peers' long-range links and
// performance measurements (average search cost of N random queries) along
// the way, under configurable key distributions, degree-cap distributions
// and churn.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/oscar-overlay/oscar/internal/churn"
	"github.com/oscar-overlay/oscar/internal/core"
	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/mercury"
	"github.com/oscar-overlay/oscar/internal/metrics"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/routing"
	"github.com/oscar-overlay/oscar/internal/sampling"
	"github.com/oscar-overlay/oscar/internal/smallworld"
)

// System selects the overlay construction algorithm under test.
type System int

// The systems the harness can build.
const (
	// SystemOscar is the paper's contribution.
	SystemOscar System = iota
	// SystemMercury is the histogram-based baseline.
	SystemMercury
	// SystemKleinberg is the global-knowledge rank-harmonic reference.
	SystemKleinberg
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SystemOscar:
		return "oscar"
	case SystemMercury:
		return "mercury"
	case SystemKleinberg:
		return "kleinberg"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// Config describes one simulation run.
type Config struct {
	// Seed drives every stochastic component (bit-reproducible runs).
	Seed int64
	// TargetSize is the final peer count (the paper grows to 10000).
	TargetSize int
	// SeedSize is the bootstrap population wired as a plain ring before
	// growth begins.
	SeedSize int
	// Checkpoints are network sizes at which all peers are rewired and the
	// network is measured. Empty means {TargetSize}.
	Checkpoints []int
	// Keys is the peer-identifier distribution (the paper uses the
	// Gnutella filename distribution).
	Keys keydist.Distribution
	// Degrees yields per-peer ρmax caps. With SeparateInOut false the same
	// draw is used for ρmax_in and ρmax_out (the paper's setup keeps their
	// means equal at 27).
	Degrees       degreedist.Distribution
	SeparateInOut bool
	// System selects the construction algorithm.
	System System
	// Oscar and Mercury tune the respective algorithms.
	Oscar   core.Config
	Mercury mercury.Config
	// QueriesPerMeasure is the query count per measurement; 0 uses the
	// current network size (the paper's "N random queries").
	QueriesPerMeasure int
	// Paranoid enables invariant checks at every checkpoint.
	Paranoid bool
}

// DefaultConfig returns the paper's baseline setup: growth to 10000 peers,
// Gnutella-like keys, constant caps of 27, checkpoints every 1000 peers.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		TargetSize:  10000,
		SeedSize:    8,
		Checkpoints: []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000},
		Keys:        keydist.GnutellaLike(),
		Degrees:     degreedist.Constant(27),
		System:      SystemOscar,
		Oscar:       core.DefaultConfig(),
		Mercury:     mercury.DefaultConfig(),
	}
}

// Measurement is one checkpoint's metrics.
type Measurement struct {
	// Size is the alive peer count at measurement time.
	Size int
	// Queries is the number of lookups measured.
	Queries int
	// AvgSearchCost is the mean message cost per lookup (hops, plus probes
	// and backtracks under churn) — the paper's performance metric.
	AvgSearchCost float64
	// Search summarises the per-lookup costs.
	Search metrics.Summary
	// Failed counts lookups that exhausted their hop budget (0 in healthy
	// networks).
	Failed int
	// AvgHops, AvgProbes, AvgBacktracks decompose the cost under churn.
	AvgHops, AvgProbes, AvgBacktracks float64
	// DegreeVolume is Σ in-degree / Σ ρmax_in over alive peers: the
	// fraction of offered in-degree capacity the construction exploited.
	DegreeVolume float64
	// RelativeLoads is each alive peer's in-degree/ρmax_in, sorted
	// ascending (Figure 1b's curve).
	RelativeLoads []float64
	// AvgLinksMade / AvgLinksWanted report out-link slot fill.
	AvgLinksMade, AvgLinksWanted float64
	// AvgLevels is the mean partition count per Oscar peer (≈ log₂ N).
	AvgLevels float64
	// Transit summarises per-peer forwarding load (lookups transiting each
	// alive peer, per query) — only filled by MeasureLoad.
	Transit metrics.Summary
}

// Result is a full run: one Measurement per checkpoint.
type Result struct {
	Config      Config
	Checkpoints []Measurement
}

// Sim holds a running simulation. Methods are not safe for concurrent use.
type Sim struct {
	cfg    Config
	net    *graph.Network
	ring   *ring.Ring
	walker *sampling.Walker

	keyRand    *rand.Rand
	capRand    *rand.Rand
	wireRand   *rand.Rand
	queryRand  *rand.Rand
	churnRand  *rand.Rand
	rewireSeq  int
	lastLevels float64 // mean partition count from the latest full rewire
}

// New validates the configuration and prepares an empty simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.TargetSize < 2 {
		return nil, fmt.Errorf("sim: TargetSize %d too small", cfg.TargetSize)
	}
	if cfg.SeedSize < 2 {
		cfg.SeedSize = 2
	}
	if cfg.SeedSize > cfg.TargetSize {
		cfg.SeedSize = cfg.TargetSize
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("sim: Keys distribution is required")
	}
	if cfg.Degrees == nil {
		return nil, fmt.Errorf("sim: Degrees distribution is required")
	}
	if len(cfg.Checkpoints) == 0 {
		cfg.Checkpoints = []int{cfg.TargetSize}
	}
	sorted := append([]int(nil), cfg.Checkpoints...)
	sort.Ints(sorted)
	if sorted[len(sorted)-1] > cfg.TargetSize {
		return nil, fmt.Errorf("sim: checkpoint %d beyond TargetSize %d", sorted[len(sorted)-1], cfg.TargetSize)
	}
	cfg.Checkpoints = sorted

	net := graph.New()
	s := &Sim{
		cfg:       cfg,
		net:       net,
		ring:      ring.New(net),
		keyRand:   rng.Derive(cfg.Seed, "keys"),
		capRand:   rng.Derive(cfg.Seed, "caps"),
		wireRand:  rng.Derive(cfg.Seed, "wire"),
		queryRand: rng.Derive(cfg.Seed, "query"),
		churnRand: rng.Derive(cfg.Seed, "churn"),
	}
	s.walker = sampling.NewWalker(net, rng.Derive(cfg.Seed, "walk"))
	return s, nil
}

// Net exposes the underlying network (read-mostly: examples and tests).
func (s *Sim) Net() *graph.Network { return s.net }

// Ring exposes the underlying ring.
func (s *Sim) Ring() *ring.Ring { return s.ring }

// Config returns the validated configuration.
func (s *Sim) Config() Config { return s.cfg }

// addPeer creates one peer with sampled key and caps, splices it into the
// ring, and wires its long-range links with the configured algorithm.
func (s *Sim) addPeer() *graph.Node {
	key := s.cfg.Keys.Sample(s.keyRand)
	maxIn := s.cfg.Degrees.Sample(s.capRand)
	maxOut := maxIn
	if s.cfg.SeparateInOut {
		maxOut = s.cfg.Degrees.Sample(s.capRand)
	}
	n := s.net.Add(key, maxIn, maxOut)
	s.ring.Insert(n.ID)
	s.wireOne(n.ID)
	return n
}

// wireOne (re)wires a single peer's long-range links.
func (s *Sim) wireOne(id graph.NodeID) core.WireStats {
	switch s.cfg.System {
	case SystemOscar:
		return core.Wire(s.net, s.ring, s.walker, id, s.cfg.Oscar, s.wireRand)
	case SystemMercury:
		ms := mercury.Wire(s.net, s.ring, s.walker, id, s.cfg.Mercury, s.net.AliveCount(), s.wireRand)
		return core.WireStats{
			LinksWanted: ms.LinksWanted, LinksMade: ms.LinksMade,
			Refusals: ms.Refusals, SampleCost: ms.SampleCost,
		}
	case SystemKleinberg:
		// The reference construction wires globally at RewireAll time;
		// joining peers ride the ring until then.
		return core.WireStats{}
	default:
		panic("sim: unknown system")
	}
}

// GrowTo adds peers until the alive population reaches n.
func (s *Sim) GrowTo(n int) {
	for s.net.AliveCount() < n {
		s.addPeer()
	}
}

// AddPeer adds exactly one peer (sampled key and caps, ring splice, join
// wiring) and returns its id — the hook the data layer uses to migrate items
// to joining peers.
func (s *Sim) AddPeer() graph.NodeID {
	return s.addPeer().ID
}

// RewireOne rebuilds a single peer's long-range links and returns the
// wiring stats (benchmark hook).
func (s *Sim) RewireOne(id graph.NodeID) core.WireStats {
	return s.wireOne(id)
}

// RewireAll rebuilds every alive peer's long-range links in random order —
// the paper's periodic rewiring. It returns aggregate wiring stats.
func (s *Sim) RewireAll() core.WireStats {
	s.rewireSeq++
	if s.cfg.System == SystemKleinberg {
		ws := smallworld.WireAll(s.net, s.ring, s.cfg.Oscar.LinkRetries, s.wireRand)
		return core.WireStats{LinksWanted: ws.LinksWanted, LinksMade: ws.LinksMade, Refusals: ws.Refusals}
	}
	ids := s.net.AliveIDs()
	s.wireRand.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var total core.WireStats
	for _, id := range ids {
		st := s.wireOne(id)
		total.Add(st)
	}
	if len(ids) > 0 {
		s.lastLevels = float64(total.Levels) / float64(len(ids))
	}
	return total
}

// Churn kills the given fraction of alive peers; the ring re-stitches
// (self-stabilisation) while long-range links to the victims go stale.
func (s *Sim) Churn(fraction float64) []graph.NodeID {
	return churn.KillFraction(s.net, s.ring, fraction, s.churnRand)
}

// Measure runs lookups and collects the checkpoint metrics. faulty selects
// the backtracking router (churned networks); otherwise plain greedy.
func (s *Sim) Measure(faulty bool) Measurement {
	queries := s.cfg.QueriesPerMeasure
	if queries <= 0 {
		queries = s.net.AliveCount()
	}
	m := Measurement{Size: s.net.AliveCount(), Queries: queries}

	costs := make([]float64, 0, queries)
	var hops, probes, backtracks int
	for i := 0; i < queries; i++ {
		from := s.ring.RandomAlive(s.queryRand)
		target := s.net.Node(s.ring.RandomAlive(s.queryRand)).Key
		var res routing.Result
		if faulty {
			res = routing.GreedyBacktrack(s.net, s.ring, from, target)
		} else {
			res = routing.Greedy(s.net, s.ring, from, target)
		}
		if !res.Found {
			m.Failed++
			continue
		}
		costs = append(costs, float64(res.Cost()))
		hops += res.Hops
		probes += res.Probes
		backtracks += res.Backtracks
	}
	m.Search = metrics.Summarize(costs)
	m.AvgSearchCost = m.Search.Mean
	if n := len(costs); n > 0 {
		m.AvgHops = float64(hops) / float64(n)
		m.AvgProbes = float64(probes) / float64(n)
		m.AvgBacktracks = float64(backtracks) / float64(n)
	}

	// Degree-volume utilisation and per-peer relative loads (Fig 1b, T1).
	var inSum, capSum, outMade, outWanted int
	s.net.ForEachAlive(func(n *graph.Node) {
		inSum += n.InDeg()
		capSum += n.MaxIn
		outWanted += n.MaxOut
		made := 0
		for _, t := range n.Out {
			if s.net.Node(t).Alive {
				made++
			}
		}
		outMade += made
		m.RelativeLoads = append(m.RelativeLoads, n.InLoad())
	})
	if capSum > 0 {
		m.DegreeVolume = float64(inSum) / float64(capSum)
	}
	if alive := s.net.AliveCount(); alive > 0 {
		m.AvgLinksMade = float64(outMade) / float64(alive)
		m.AvgLinksWanted = float64(outWanted) / float64(alive)
	}
	sort.Float64s(m.RelativeLoads)
	m.AvgLevels = s.lastLevels
	return m
}

// MeasureLoad runs a measurement like Measure but with target popularity
// skew and per-peer transit-load accounting: targets are the keys of alive
// peers drawn by Zipf rank (exponent skew) over the key-ordered population,
// modelling a hot range of popular items; skew 0 means uniform. The
// returned Measurement additionally carries the Transit summary (per-peer
// forwarded lookups per query).
func (s *Sim) MeasureLoad(faulty bool, skew float64) Measurement {
	queries := s.cfg.QueriesPerMeasure
	if queries <= 0 {
		queries = s.net.AliveCount()
	}
	m := Measurement{Size: s.net.AliveCount(), Queries: queries}
	alive := s.ring.AliveOrdered()
	zipfCum := zipfRanks(len(alive), skew)
	transits := make(map[graph.NodeID]int, len(alive))

	costs := make([]float64, 0, queries)
	for i := 0; i < queries; i++ {
		from := s.ring.RandomAlive(s.queryRand)
		var target keyspace.Key
		if skew <= 0 {
			target = s.net.Node(alive[s.queryRand.Intn(len(alive))]).Key
		} else {
			r := sort.SearchFloat64s(zipfCum, s.queryRand.Float64())
			if r >= len(alive) {
				r = len(alive) - 1
			}
			target = s.net.Node(alive[r]).Key
		}
		var res routing.Result
		if faulty {
			res = routing.GreedyBacktrack(s.net, s.ring, from, target)
		} else {
			res = routing.Greedy(s.net, s.ring, from, target)
		}
		if !res.Found {
			m.Failed++
			continue
		}
		costs = append(costs, float64(res.Cost()))
		for _, id := range res.Path[1:] { // transits exclude the source
			transits[id]++
		}
	}
	m.Search = metrics.Summarize(costs)
	m.AvgSearchCost = m.Search.Mean
	loads := make([]float64, 0, len(alive))
	for _, id := range alive {
		loads = append(loads, float64(transits[id])/float64(queries))
	}
	m.Transit = metrics.Summarize(loads)
	return m
}

// zipfRanks returns the cumulative Zipf(s) distribution over n ranks
// (nil when skew <= 0).
func zipfRanks(n int, s float64) []float64 {
	if s <= 0 || n == 0 {
		return nil
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// Run executes the full growth schedule: grow to each checkpoint, rewire all
// peers, measure, continue; it returns one Measurement per checkpoint.
func (s *Sim) Run() (*Result, error) {
	res := &Result{Config: s.cfg}
	for _, cp := range s.cfg.Checkpoints {
		s.GrowTo(cp)
		s.RewireAll()
		if s.cfg.Paranoid {
			if err := s.CheckInvariants(); err != nil {
				return res, fmt.Errorf("sim: invariant violation at size %d: %w", cp, err)
			}
		}
		res.Checkpoints = append(res.Checkpoints, s.Measure(false))
	}
	return res, nil
}

// CheckInvariants verifies graph and ring consistency.
func (s *Sim) CheckInvariants() error {
	if err := s.net.CheckInvariants(); err != nil {
		return err
	}
	return s.ring.CheckInvariants()
}
