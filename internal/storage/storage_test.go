package storage

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func TestPutGetDelete(t *testing.T) {
	var s Store
	if replaced := s.Put(10, []byte("a")); replaced {
		t.Error("first put cannot replace")
	}
	if replaced := s.Put(10, []byte("b")); !replaced {
		t.Error("second put must replace")
	}
	v, ok := s.Get(10)
	if !ok || !bytes.Equal(v, []byte("b")) {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get(11); ok {
		t.Error("missing key found")
	}
	if !s.Delete(10) {
		t.Error("delete failed")
	}
	if s.Delete(10) {
		t.Error("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestItemsSorted(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{50, 10, 30, 20, 40} {
		s.Put(k, nil)
	}
	items := s.Items()
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key < items[j].Key }) {
		t.Errorf("items out of order: %v", items)
	}
	if len(items) != 5 {
		t.Errorf("len = %d", len(items))
	}
}

func TestPutSortedProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		var s Store
		uniq := map[uint64]bool{}
		for _, k := range keys {
			s.Put(keyspace.Key(k), nil)
			uniq[k] = true
		}
		items := s.Items()
		if len(items) != len(uniq) {
			return false
		}
		for i := 1; i < len(items); i++ {
			if items[i-1].Key >= items[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanPlainRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: 25, End: 65}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	want := []keyspace.Key{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanWrappingRange(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{5, 50, keyspace.MaxKey - 5} {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: keyspace.MaxKey - 10, End: 10}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	if len(got) != 2 || got[0] != keyspace.MaxKey-5 || got[1] != 5 {
		t.Errorf("wrapping scan = %v", got)
	}
}

func TestScanFullRangeAndEarlyStop(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 50; k += 10 {
		s.Put(k, nil)
	}
	count := 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return true
	})
	if count != 5 {
		t.Errorf("full scan visited %d", count)
	}
	count = 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanEmptyStore(t *testing.T) {
	var s Store
	s.Scan(keyspace.FullRange(), func(Item) bool {
		t.Fatal("empty store scanned something")
		return false
	})
}

func TestExtractRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, []byte{byte(k)})
	}
	moved := s.ExtractRange(keyspace.Range{Start: 30, End: 60})
	if len(moved) != 3 { // 30, 40, 50
		t.Fatalf("moved %d items", len(moved))
	}
	if s.Len() != 7 {
		t.Errorf("kept %d items", s.Len())
	}
	if _, ok := s.Get(40); ok {
		t.Error("extracted item still present")
	}
	var dst Store
	dst.InsertBulk(moved)
	if v, ok := dst.Get(40); !ok || !bytes.Equal(v, []byte{40}) {
		t.Error("migration lost data")
	}
}

func TestExtractInsertRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var s Store
		n := 1 + rnd.Intn(100)
		for i := 0; i < n; i++ {
			s.Put(keyspace.Key(rnd.Uint64()), nil)
		}
		before := s.Len()
		rg := keyspace.Range{Start: keyspace.Key(rnd.Uint64()), End: keyspace.Key(rnd.Uint64())}
		if rg.Start == rg.End {
			continue
		}
		var dst Store
		dst.InsertBulk(s.ExtractRange(rg))
		if s.Len()+dst.Len() != before {
			t.Fatalf("items lost in migration: %d + %d != %d", s.Len(), dst.Len(), before)
		}
		// Nothing left in the source belongs to the range.
		s.Scan(rg, func(it Item) bool {
			t.Fatalf("item %v left behind in extracted range", it.Key)
			return false
		})
	}
}
