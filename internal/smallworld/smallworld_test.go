package smallworld

import (
	"math"
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

func buildRing(n, caps int) (*graph.Network, *ring.Ring) {
	g := graph.New()
	r := ring.New(g)
	step := keyspace.MaxKey / keyspace.Key(n)
	for i := 0; i < n; i++ {
		node := g.Add(keyspace.Key(i)*step, caps, caps)
		r.Insert(node.ID)
	}
	return g, r
}

func TestHarmonicRankBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		r := HarmonicRank(rnd, 1000)
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of bounds", r)
		}
	}
	if HarmonicRank(rnd, 1) != 1 {
		t.Error("max=1 must return 1")
	}
	if HarmonicRank(rnd, 0) != 1 {
		t.Error("degenerate max must return 1")
	}
}

func TestHarmonicRankDistribution(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	const n = 4096
	var sumLog float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		sumLog += math.Log(float64(HarmonicRank(rnd, n)))
	}
	mean := sumLog / trials
	want := math.Log(n) / 2 // log of a harmonic draw is ≈ uniform on [0, ln n]
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("mean log rank %.3f, want ≈%.3f", mean, want)
	}
}

func TestWireAllFillsAndRespects(t *testing.T) {
	g, r := buildRing(512, 16)
	stats := WireAll(g, r, 2, rand.New(rand.NewSource(3)))
	if float64(stats.LinksMade) < 0.7*float64(stats.LinksWanted) {
		t.Errorf("filled %d/%d", stats.LinksMade, stats.LinksWanted)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWireAllTiny(t *testing.T) {
	g, r := buildRing(1, 4)
	if stats := WireAll(g, r, 2, rand.New(rand.NewSource(4))); stats.LinksMade != 0 {
		t.Error("singleton cannot link")
	}
	g2, r2 := buildRing(2, 4)
	stats := WireAll(g2, r2, 2, rand.New(rand.NewSource(5)))
	if stats.LinksMade == 0 {
		t.Error("pair should link")
	}
}

func TestWireAllSkipsDead(t *testing.T) {
	g, r := buildRing(64, 8)
	rnd := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		r.Kill(r.RandomAlive(rnd))
	}
	WireAll(g, r, 2, rnd)
	g.ForEachAlive(func(n *graph.Node) {
		for _, tgt := range n.Out {
			if !g.Node(tgt).Alive {
				t.Errorf("alive node %d wired to dead %d", n.ID, tgt)
			}
		}
	})
}
