package oscar

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/faultnet"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// TestFaultedRing re-runs the whole conformance scenario table on both live
// fabrics with a seeded fault plan underneath: every link drops 5% of
// calls and delays the rest by up to 20ms (internal/faultnet, deterministic
// per seed). The contract is the same table, verbatim — a lossy network
// may cost retries, never answers. A partition subtest then asserts the
// replication story across an asymmetric split: writes and deletes landed
// on an isolated owner reach its replica chain after the heal via
// anti-entropy, and tombstones win — deleted keys stay deleted even when
// only replicas survive.
func TestFaultedRing(t *testing.T) {
	harnesses := []func(*testing.T) *conformanceHarness{
		faultedMemHarness,
		faultedTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runConformance(t, h)
		})
	}
	t.Run("partition-heal", testPartitionHeal)
}

// stabilizeUntil runs stabilisation rounds until probe's ring walk counts
// want peers for three consecutive rounds (or 30s pass — the table's info
// subtest then reports the exact shortfall). On a lossy fabric
// convergence is eventual, not single-round: a dropped probe can re-break
// a pointer the previous round fixed. The extra settled rounds also give
// predecessor pointers time to heal — the walk counts successors, which
// converge a round before preds do, and a cleared pred slot rejects
// writes for the inherited arc until a notify re-offers it.
func stabilizeUntil(ctx context.Context, want int, probe *Node, round func()) {
	deadline := time.Now().Add(30 * time.Second)
	settled := 0
	for settled < 3 {
		round()
		if info, err := probe.Info(ctx); err == nil && info.Peers == want {
			settled++
		} else {
			settled = 0
		}
		if time.Now().After(deadline) {
			return
		}
	}
}

// conformanceFaults is the seeded per-link fault mix under the faulted
// conformance runs: 5% drops plus up to 20ms of jitter on every call.
var conformanceFaults = faultnet.Faults{Drop: 0.05, Jitter: 20 * time.Millisecond}

func faultedMemHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ctx := context.Background()
	fn := faultnet.New(42)
	c, err := StartCluster(ctx, 16, WithSeed(4), WithTransportWrapper(fn.Wrap))
	if err != nil {
		t.Fatal(err)
	}
	// Boot clean, then turn the weather on: a join that never completed
	// would test the fault plan, not the protocol under it.
	fn.SetDefault(conformanceFaults)
	return &conformanceHarness{
		name:   "p2p/mem+faults",
		client: &retryClient{Client: c.Node(0)},
		crash: func() {
			for _, i := range []int{3, 7, 11} {
				_ = c.Node(i).Close()
			}
			// Under drops, one stabilisation round can re-break what the
			// last one healed; run rounds until the ring walk counts every
			// survivor (the table's info subtest holds the exact number).
			stabilizeUntil(ctx, 13, c.Node(0), func() { c.StabilizeAll(ctx) })
		},
		close:           func() { _ = c.Close() },
		peersAfterCrash: 13,
	}
}

func faultedTCPHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ctx := context.Background()
	fn := faultnet.New(99)
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.013),
			MaxIn:  8, MaxOut: 8,
			Seed:          int64(i),
			WrapTransport: fn.Wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	fn.SetDefault(conformanceFaults)
	return &conformanceHarness{
		name:   "p2p/tcp+faults",
		client: &retryClient{Client: nodes[0]},
		crash: func() {
			_ = nodes[5].Close()
			stabilizeUntil(ctx, 7, nodes[0], func() {
				for _, n := range nodes {
					if !n.isClosed() {
						n.Stabilize(ctx)
					}
				}
			})
		},
		close: func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		},
		peersAfterCrash: 7,
	}
}

// retryClient is the caller's side of the lossy-network bargain: a dropped
// call surfaces as ErrUnavailable (or a transient routing failure), and
// because faults shed requests before delivery, re-issuing is always safe.
// Everything else — not-found, bad ranges, write concern, context errors,
// closed clients — passes through untouched: the scenario table's
// assertions about those must hold verbatim on a faulted fabric. Scans are
// not wrapped; the scan session carries its own churn-recovery retries.
type retryClient struct {
	Client
}

func transientErr(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrRoutingFailed)
}

func retryOp[T any](ctx context.Context, op func() (T, error)) (T, error) {
	const attempts = 12
	var out T
	var err error
	for i := 0; i < attempts; i++ {
		out, err = op()
		if err == nil || ctx.Err() != nil || !transientErr(err) {
			return out, err
		}
		select {
		case <-ctx.Done():
			return out, err
		case <-time.After(15 * time.Millisecond):
		}
	}
	return out, err
}

func (r *retryClient) Put(ctx context.Context, key Key, value []byte) (PutResponse, error) {
	return retryOp(ctx, func() (PutResponse, error) { return r.Client.Put(ctx, key, value) })
}

func (r *retryClient) Get(ctx context.Context, key Key) (GetResponse, error) {
	return retryOp(ctx, func() (GetResponse, error) { return r.Client.Get(ctx, key) })
}

func (r *retryClient) Delete(ctx context.Context, key Key) (DeleteResponse, error) {
	return retryOp(ctx, func() (DeleteResponse, error) { return r.Client.Delete(ctx, key) })
}

func (r *retryClient) Lookup(ctx context.Context, key Key) (LookupResponse, error) {
	return retryOp(ctx, func() (LookupResponse, error) { return r.Client.Lookup(ctx, key) })
}

func (r *retryClient) RangeQuery(ctx context.Context, start, end Key, limit int) (RangeResponse, error) {
	return retryOp(ctx, func() (RangeResponse, error) { return r.Client.RangeQuery(ctx, start, end, limit) })
}

func (r *retryClient) Info(ctx context.Context) (InfoResponse, error) {
	return retryOp(ctx, func() (InfoResponse, error) { return r.Client.Info(ctx) })
}

// testPartitionHeal: an owner fully partitioned from the ring keeps taking
// writes and deletes (w=1); its replicas keep serving the pre-partition
// state to the far side. After the heal, one anti-entropy round pushes the
// divergence — new value and tombstone both — to the chain, so even with
// the owner gone for good the far side reads the partition-era write and
// the deleted key stays deleted. Maintenance is manual throughout: ring
// pointers never churn, so the heal is a pure data-convergence story.
func testPartitionHeal(t *testing.T) {
	ctx := context.Background()
	fn := faultnet.New(7)
	const size = 10
	c, err := StartCluster(ctx, size, WithSeed(21),
		WithReplicas(3), WithWriteConcern(1),
		WithStabilizeRounds(4),
		WithTransportWrapper(fn.Wrap))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pick an owner other than the far-side client, and two keys just
	// below its ring position so both live on its arc.
	client := c.Node(0)
	var owner *Node
	for _, n := range c.Nodes()[1:] {
		res, err := client.Lookup(ctx, n.Key()-2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.Addr == n.Addr() {
			owner = n
			break
		}
	}
	if owner == nil {
		t.Fatal("no suitable owner found")
	}
	kept, gone := owner.Key()-1, owner.Key()-2

	// Pre-partition state, fully replicated: kept=v1 and gone=v0.
	if _, err := client.Put(ctx, kept, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Put(ctx, gone, []byte("v0")); err != nil {
		t.Fatal(err)
	}

	// Isolate the owner from every other node, both directions.
	var farSide []transport.Addr
	for _, n := range c.Nodes() {
		if n.Addr() != owner.Addr() {
			farSide = append(farSide, transport.Addr(n.Addr()))
		}
	}
	fn.Partition([]transport.Addr{transport.Addr(owner.Addr())}, farSide)

	// The isolated owner keeps accepting state changes at w=1: replica
	// pushes fail silently and the divergence accrues.
	if _, err := owner.Put(ctx, kept, []byte("v2")); err != nil {
		t.Fatalf("isolated owner rejected a w=1 put: %v", err)
	}
	if _, err := owner.Delete(ctx, gone); err != nil {
		t.Fatalf("isolated owner rejected a w=1 delete: %v", err)
	}

	// The far side cannot write through the partition: depending on where
	// the walk first touches the blocked links, the failure surfaces as an
	// unreachable owner or as routing giving up on an excluded one.
	if _, err := client.Put(ctx, kept, []byte("nope")); !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrRoutingFailed) {
		t.Fatalf("put across the partition = %v, want ErrUnavailable or ErrRoutingFailed", err)
	}
	// ...and cannot read it either: a lookup only terminates when the
	// owner itself confirms ownership, so with every owner link black-holed
	// and the ring pointers deliberately frozen (no stabilisation during
	// the split), the far side gets a typed failure — never a stale or
	// fabricated answer.
	if got, err := client.Get(ctx, kept); err == nil {
		t.Fatalf("read across the partition answered %q; want a typed failure", got.Value)
	} else if !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrRoutingFailed) {
		t.Fatalf("read across the partition = %v, want ErrUnavailable or ErrRoutingFailed", err)
	}

	// Heal, then let the owner push its partition-era divergence. The
	// round must move both the new value and the tombstone.
	fn.Heal()
	st, err := owner.AntiEntropy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeysPushed < 1 || st.TombstonesPushed < 1 {
		t.Fatalf("anti-entropy pushed %d keys / %d tombstones, want >=1 of each", st.KeysPushed, st.TombstonesPushed)
	}

	// The strongest convergence check: kill the owner. If the chain really
	// converged, the far side reads the partition-era write from a replica
	// and the tombstone still wins — the deleted key cannot resurrect.
	_ = owner.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, gerr := client.Get(ctx, kept)
		_, derr := client.Get(ctx, gone)
		if gerr == nil && string(got.Value) == "v2" && errors.Is(derr, ErrNotFound) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-heal state never converged: kept = %q (%v), gone err = %v (want v2, ErrNotFound)",
				got.Value, gerr, derr)
		}
		for _, n := range c.Nodes() {
			if !n.isClosed() {
				n.Stabilize(ctx)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}
