package storage

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func TestPutGetDelete(t *testing.T) {
	var s Store
	if replaced := s.Put(10, []byte("a")); replaced {
		t.Error("first put cannot replace")
	}
	if replaced := s.Put(10, []byte("b")); !replaced {
		t.Error("second put must replace")
	}
	v, ok := s.Get(10)
	if !ok || !bytes.Equal(v, []byte("b")) {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get(11); ok {
		t.Error("missing key found")
	}
	if !s.Delete(10) {
		t.Error("delete failed")
	}
	if s.Delete(10) {
		t.Error("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestItemsSorted(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{50, 10, 30, 20, 40} {
		s.Put(k, nil)
	}
	items := s.Items()
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key < items[j].Key }) {
		t.Errorf("items out of order: %v", items)
	}
	if len(items) != 5 {
		t.Errorf("len = %d", len(items))
	}
}

func TestPutSortedProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		var s Store
		uniq := map[uint64]bool{}
		for _, k := range keys {
			s.Put(keyspace.Key(k), nil)
			uniq[k] = true
		}
		items := s.Items()
		if len(items) != len(uniq) {
			return false
		}
		for i := 1; i < len(items); i++ {
			if items[i-1].Key >= items[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanPlainRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: 25, End: 65}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	want := []keyspace.Key{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanWrappingRange(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{5, 50, keyspace.MaxKey - 5} {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: keyspace.MaxKey - 10, End: 10}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	if len(got) != 2 || got[0] != keyspace.MaxKey-5 || got[1] != 5 {
		t.Errorf("wrapping scan = %v", got)
	}
}

func TestScanFullRangeAndEarlyStop(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 50; k += 10 {
		s.Put(k, nil)
	}
	count := 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return true
	})
	if count != 5 {
		t.Errorf("full scan visited %d", count)
	}
	count = 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanEmptyStore(t *testing.T) {
	var s Store
	s.Scan(keyspace.FullRange(), func(Item) bool {
		t.Fatal("empty store scanned something")
		return false
	})
}

func TestExtractRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, []byte{byte(k)})
	}
	moved := s.ExtractRange(keyspace.Range{Start: 30, End: 60})
	if len(moved) != 3 { // 30, 40, 50
		t.Fatalf("moved %d items", len(moved))
	}
	if s.Len() != 7 {
		t.Errorf("kept %d items", s.Len())
	}
	if _, ok := s.Get(40); ok {
		t.Error("extracted item still present")
	}
	var dst Store
	dst.InsertBulk(moved)
	if v, ok := dst.Get(40); !ok || !bytes.Equal(v, []byte{40}) {
		t.Error("migration lost data")
	}
}

func TestExtractInsertRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var s Store
		n := 1 + rnd.Intn(100)
		for i := 0; i < n; i++ {
			s.Put(keyspace.Key(rnd.Uint64()), nil)
		}
		before := s.Len()
		rg := keyspace.Range{Start: keyspace.Key(rnd.Uint64()), End: keyspace.Key(rnd.Uint64())}
		if rg.Start == rg.End {
			continue
		}
		var dst Store
		dst.InsertBulk(s.ExtractRange(rg))
		if s.Len()+dst.Len() != before {
			t.Fatalf("items lost in migration: %d + %d != %d", s.Len(), dst.Len(), before)
		}
		// Nothing left in the source belongs to the range.
		s.Scan(rg, func(it Item) bool {
			t.Fatalf("item %v left behind in extracted range", it.Key)
			return false
		})
	}
}

func TestExtractRangeLimit(t *testing.T) {
	var s Store
	s.EnableDigest(8)
	for i := 0; i < 10; i++ {
		s.Put(keyspace.Key(100+i), []byte{byte(i)})
	}
	rg := keyspace.Range{Start: 100, End: 110}

	// Item cap: clockwise chunks of 4, More set until the range drains.
	got, more := s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 4 || !more {
		t.Fatalf("first chunk = %d items, more=%v; want 4, true", len(got), more)
	}
	for i, it := range got {
		if it.Key != keyspace.Key(100+i) {
			t.Fatalf("chunk out of clockwise order: item %d has key %v", i, it.Key)
		}
	}
	got, more = s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 4 || !more || got[0].Key != 104 {
		t.Fatalf("second chunk = %d items from %v, more=%v; want 4 from 104, true", len(got), got[0].Key, more)
	}
	got, more = s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 2 || more {
		t.Fatalf("final chunk = %d items, more=%v; want 2, false", len(got), more)
	}
	if s.Len() != 0 {
		t.Fatalf("%d items left after draining the range", s.Len())
	}
	// The maintained digest tracked every removal: an emptied store
	// digests as empty.
	if diff := antientropy.DiffLeaves(s.DigestLeaves(), nil); len(diff) != 0 {
		t.Fatalf("digest out of sync after chunked extraction: %d buckets differ", len(diff))
	}

	// Byte cap: at least one item always moves, then the cap closes the
	// chunk.
	for i := 0; i < 4; i++ {
		s.Put(keyspace.Key(200+i), make([]byte, 100))
	}
	rg = keyspace.Range{Start: 200, End: 210}
	got, more = s.ExtractRangeLimit(rg, 0, 250)
	if len(got) != 2 || !more {
		t.Fatalf("byte-capped chunk = %d items, more=%v; want 2, true", len(got), more)
	}
	got, more = s.ExtractRangeLimit(rg, 0, 50) // cap below one item
	if len(got) != 1 || !more {
		t.Fatalf("tiny byte cap must still move one item: %d items, more=%v", len(got), more)
	}

	// Wrap-around range: extraction runs clockwise from Start across the
	// top of the circle.
	var w Store
	w.Put(5, []byte("low"))
	w.Put(^keyspace.Key(0)-1, []byte("high"))
	got, more = w.ExtractRangeLimit(keyspace.Range{Start: ^keyspace.Key(0) - 2, End: 10}, 1, 0)
	if len(got) != 1 || !more || got[0].Key != ^keyspace.Key(0)-1 {
		t.Fatalf("wrap-around chunk = %+v, more=%v; want the high key first", got, more)
	}
}

func TestScanPage(t *testing.T) {
	var s Store
	for i := 0; i < 10; i++ {
		s.Put(keyspace.Key(100+i), []byte{byte(i)})
	}
	rg := keyspace.Range{Start: 100, End: 110}

	// Item cap: clockwise pages of 4, More until the range is covered —
	// and unlike extraction, the store is untouched.
	got, more := s.ScanPage(rg, 4, 0)
	if len(got) != 4 || !more || got[0].Key != 100 {
		t.Fatalf("first page = %d items from %v, more=%v; want 4 from 100, true", len(got), got[0].Key, more)
	}
	got, more = s.ScanPage(keyspace.Range{Start: got[3].Key + 1, End: 110}, 0, 0)
	if len(got) != 6 || more || got[0].Key != 104 {
		t.Fatalf("rest = %d items, more=%v; want 6, false", len(got), more)
	}
	if s.Len() != 10 {
		t.Fatalf("scan mutated the store: %d items left", s.Len())
	}

	// Byte cap: at least one item per page, even under a tiny cap.
	var b Store
	for i := 0; i < 4; i++ {
		b.Put(keyspace.Key(200+i), make([]byte, 100))
	}
	got, more = b.ScanPage(keyspace.Range{Start: 200, End: 210}, 0, 250)
	if len(got) != 2 || !more {
		t.Fatalf("byte-capped page = %d items, more=%v; want 2, true", len(got), more)
	}
	got, more = b.ScanPage(keyspace.Range{Start: 200, End: 210}, 0, 50)
	if len(got) != 1 || !more {
		t.Fatalf("tiny byte cap must still return one item: %d, more=%v", len(got), more)
	}

	// A deleted key is invisible to pages.
	s.Delete(105)
	got, _ = s.ScanPage(rg, 0, 0)
	if len(got) != 9 {
		t.Fatalf("page after delete = %d items, want 9", len(got))
	}
}

func TestScanPageMerged(t *testing.T) {
	var primary, fallback Store
	// Primary owns evens, fallback (a replica view) holds odds plus a
	// stale copy of key 102 that must lose to the primary.
	for i := 100; i < 110; i += 2 {
		primary.Put(keyspace.Key(i), []byte("p"))
	}
	for i := 101; i < 110; i += 2 {
		fallback.Put(keyspace.Key(i), []byte("f"))
	}
	fallback.Put(102, []byte("stale"))

	rg := keyspace.Range{Start: 100, End: 110}
	got, more := ScanPageMerged(&primary, &fallback, rg, 0, 0)
	if more {
		t.Fatal("small merged range reported more")
	}
	if len(got) != 10 {
		t.Fatalf("merged = %d items, want 10", len(got))
	}
	for i, it := range got {
		if it.Key != keyspace.Key(100+i) {
			t.Fatalf("merged out of order at %d: key %v", i, it.Key)
		}
	}
	if !bytes.Equal(got[2].Value, []byte("p")) {
		t.Fatalf("primary must win duplicate key 102, got %q", got[2].Value)
	}

	// A primary tombstone hides the fallback's copy entirely.
	primary.Put(103, []byte("x"))
	primary.Delete(103)
	got, _ = ScanPageMerged(&primary, &fallback, rg, 0, 0)
	for _, it := range got {
		if it.Key == 103 {
			t.Fatalf("tombstoned key 103 leaked from the fallback: %q", it.Value)
		}
	}
	if len(got) != 9 {
		t.Fatalf("merged after tombstone = %d items, want 9", len(got))
	}

	// More is exact: a page cut right before only-tombstoned or
	// duplicate leftovers must not claim more.
	got, more = ScanPageMerged(&primary, &fallback, rg, 9, 0)
	if len(got) != 9 || more {
		t.Fatalf("page of 9 = %d items, more=%v; want 9, false", len(got), more)
	}

	// Paged resume via cursor covers everything exactly once.
	var all []Item
	cursor := keyspace.Key(100)
	for {
		page, more := ScanPageMerged(&primary, &fallback, keyspace.Range{Start: cursor, End: 110}, 3, 0)
		all = append(all, page...)
		if !more {
			break
		}
		cursor = page[len(page)-1].Key + 1
	}
	if len(all) != 9 {
		t.Fatalf("cursor walk = %d items, want 9", len(all))
	}

	// Nil / empty stores are fine on either side.
	// (Without a primary there is no tombstone for 103 and no duplicate
	// winner for 102, so all 6 fallback items are live.)
	if got, _ := ScanPageMerged(nil, &fallback, rg, 0, 0); len(got) != 6 {
		t.Fatalf("nil primary = %d items, want all 6 fallback items", len(got))
	}
	if got, _ := ScanPageMerged(&primary, nil, rg, 0, 0); len(got) != 5 {
		t.Fatalf("nil fallback = %d items, want the primary's 5", len(got))
	}

	// Wrap-around merged range.
	var hi, lo Store
	hi.Put(^keyspace.Key(0)-1, []byte("high"))
	lo.Put(3, []byte("low"))
	got, _ = ScanPageMerged(&hi, &lo, keyspace.Range{Start: ^keyspace.Key(0) - 5, End: 10}, 0, 0)
	if len(got) != 2 || got[0].Key != ^keyspace.Key(0)-1 || got[1].Key != 3 {
		t.Fatalf("wrap-around merged = %+v", got)
	}
}
