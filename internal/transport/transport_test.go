package transport

import (
	"errors"
	"sync"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// echoHandler answers every request with its key echoed back.
func echoHandler(req *Request) *Response {
	return &Response{OK: true, Peer: PeerRef{Key: req.Key}}
}

func TestFabricCall(t *testing.T) {
	f := NewFabric()
	a, b := f.Endpoint(), f.Endpoint()
	b.Serve(echoHandler)
	resp, err := a.Call(b.Addr(), &Request{Op: OpPing, Key: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Peer.Key != 42 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestFabricUnknownAddr(t *testing.T) {
	f := NewFabric()
	a := f.Endpoint()
	if _, err := a.Call("nope", &Request{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestFabricClosedEndpoint(t *testing.T) {
	f := NewFabric()
	a, b := f.Endpoint(), f.Endpoint()
	b.Serve(echoHandler)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(b.Addr(), &Request{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to closed endpoint: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(a.Addr(), &Request{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call from closed endpoint: %v", err)
	}
}

func TestFabricUniqueAddrs(t *testing.T) {
	f := NewFabric()
	seen := map[Addr]bool{}
	for i := 0; i < 100; i++ {
		addr := f.Endpoint().Addr()
		if seen[addr] {
			t.Fatalf("duplicate address %s", addr)
		}
		seen[addr] = true
	}
}

func TestFabricConcurrentCalls(t *testing.T) {
	f := NewFabric()
	server := f.Endpoint()
	var mu sync.Mutex
	count := 0
	server.Serve(func(req *Request) *Response {
		mu.Lock()
		count++
		mu.Unlock()
		return &Response{OK: true}
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := f.Endpoint()
			for j := 0; j < 50; j++ {
				if _, err := client.Call(server.Addr(), &Request{Op: OpPing}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if count != 1000 {
		t.Errorf("handled %d calls, want 1000", count)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(func(req *Request) *Response {
		return &Response{OK: true, Value: append([]byte("echo:"), req.Value...), Peer: PeerRef{Key: req.Key}}
	})
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Call(server.Addr(), &Request{
		Op: OpPut, Key: keyspace.MaxKey, Value: []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Value) != "echo:hello" {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Peer.Key != keyspace.MaxKey {
		t.Error("uint64 key did not survive the JSON round trip")
	}
}

func TestTCPDeadPeer(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server.Serve(echoHandler)
	addr := server.Addr()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call(addr, &Request{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dead peer call: %v", err)
	}
}

func TestTCPConcurrent(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: keyspace.Key(k)})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Peer.Key != keyspace.Key(k) {
					t.Errorf("cross-talk: got %v want %d", resp.Peer.Key, k)
					return
				}
			}
		}(uint64(i) << 60)
	}
	wg.Wait()
}
