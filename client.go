package oscar

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// Client is the unified public surface of the overlay: the same
// operations against either backend — the in-process simulator
// (NewClient) or the live message-passing runtime (StartNode /
// StartCluster). Every method takes a context whose cancellation or
// deadline aborts the operation, and failures surface as typed errors
// (ErrNotFound, ErrRoutingFailed, ErrClosed, ErrUnavailable,
// ErrBadRange) that callers test with errors.Is.
//
// Implementations are safe for concurrent use by multiple goroutines.
type Client interface {
	// Put stores value under key at the key's owner.
	Put(ctx context.Context, key Key, value []byte) (PutResponse, error)
	// Get fetches the value under key from the key's owner. A missing key
	// is ErrNotFound (the response still carries the routing cost).
	Get(ctx context.Context, key Key) (GetResponse, error)
	// Delete removes the item under key at the key's owner. A missing key
	// is ErrNotFound (the response still carries the routing cost).
	Delete(ctx context.Context, key Key) (DeleteResponse, error)
	// Scan streams the items with keys in the clockwise arc [start, end)
	// in clockwise key order, pulling frame-bounded pages (at most 512
	// items / 4 MiB per page) from one shard owner at a time — the scan
	// never materialises more than one page per hop in memory. start > end
	// wraps around the top of the identifier circle; start == end is
	// rejected with ErrBadRange (on the Scanner, since Scan itself cannot
	// fail). Construction is lazy: no messages are sent until the first
	// Next. Iterate with Next/Item/Err or range over All.
	Scan(ctx context.Context, start, end Key, opts ...ScanOption) *Scanner
	// RangeQuery returns up to limit items with keys in the clockwise arc
	// [start, end), in clockwise key order. start > end wraps around the
	// top of the identifier circle. limit <= 0 means no limit; start ==
	// end is ErrBadRange.
	//
	// Deprecated: RangeQuery buffers the whole result in memory. Use Scan,
	// which streams page by page; RangeQuery is a thin wrapper over it and
	// returns byte-identical results.
	RangeQuery(ctx context.Context, start, end Key, limit int) (RangeResponse, error)
	// PutBlob chunks the stream r into fixed-size pieces stored under the
	// contiguous key sub-range [base+1, base+1+chunks) with a JSON manifest
	// at base, so a whole blob reads back as one Scan. The returned
	// manifest carries per-chunk and whole-blob checksums.
	PutBlob(ctx context.Context, base Key, r io.Reader, opts ...BlobOption) (BlobManifest, error)
	// GetBlob opens the blob stored at base for streaming reads: chunks
	// are prefetched ahead of the reader via a single Scan, verified
	// against the manifest's checksums, and reassembled in order. The
	// caller must Close the reader.
	GetBlob(ctx context.Context, base Key) (*BlobReader, error)
	// DeleteBlob removes a blob's chunks and then its manifest. A missing
	// manifest is ErrNotFound; a partially deleted blob (crash mid-delete)
	// still has its manifest and can be re-deleted.
	DeleteBlob(ctx context.Context, base Key) error
	// Lookup routes to the owner of key without touching the data layer.
	Lookup(ctx context.Context, key Key) (LookupResponse, error)
	// Info reports a snapshot of the backend's view of the overlay.
	Info(ctx context.Context) (InfoResponse, error)
	// Close releases the client. Further calls return ErrClosed.
	Close() error
}

// Typed errors returned by Client implementations. Operations wrap them, so
// match with errors.Is. Context cancellation and deadline expiry are NOT
// translated: they surface as the context's own error.
var (
	// ErrNotFound reports that the key holds no item at its owner.
	ErrNotFound = errors.New("oscar: key not found")
	// ErrRoutingFailed reports that routing exhausted every path to the
	// key's owner (dead peers, partitions, or a broken ring).
	ErrRoutingFailed = errors.New("oscar: routing failed")
	// ErrClosed reports an operation on a closed client.
	ErrClosed = errors.New("oscar: client closed")
	// ErrUnavailable reports that routing reached the owner but the data
	// operation itself failed (for example the owner crashed mid-call).
	ErrUnavailable = errors.New("oscar: peer unavailable")
	// ErrBadRange reports a degenerate scan range: start == end, which in
	// range semantics denotes the full circle — a footgun for a streaming
	// read, so scans refuse it. Split a full-circle read into two halves.
	ErrBadRange = errors.New("oscar: bad range")
	// ErrWriteConcern reports that a write (Put or Delete) reached the
	// key's owner but collected fewer acknowledgements from owner+chain
	// than the requested write concern. The write is NOT rolled back — it
	// holds at the owner and every chain member that acked, and
	// anti-entropy re-fills the rest — so the error is a durability
	// report at return time, not an undo. errors.As against
	// *WriteConcernError recovers the counts.
	ErrWriteConcern = errors.New("oscar: write concern not satisfied")
)

// WriteConcernError carries a write's acknowledgement shortfall: Acks
// members of owner+chain applied the write, Want were required. It
// matches ErrWriteConcern under errors.Is.
type WriteConcernError struct {
	// Acks is how many stores (the owner plus replica chain members)
	// acknowledged the write.
	Acks int
	// Want is the write concern the call required.
	Want int
}

func (e *WriteConcernError) Error() string {
	return fmt.Sprintf("oscar: write concern not satisfied: %d/%d acks", e.Acks, e.Want)
}

func (e *WriteConcernError) Unwrap() error { return ErrWriteConcern }

// writeConcernKey carries a per-call write concern through a context.
type writeConcernKey struct{}

// ContextWithWriteConcern returns a context that overrides the client's
// default write concern for the Put and Delete calls run under it: the
// call fails with ErrWriteConcern unless at least w members of
// owner+chain acknowledge the write. It is the per-call companion of the
// WithWriteConcern client option and NodeConfig.WriteConcern; unlike
// those, a per-call w is not clamped to the replication factor, so a w no
// chain can satisfy fails honestly instead of silently degrading.
func ContextWithWriteConcern(ctx context.Context, w int) context.Context {
	return context.WithValue(ctx, writeConcernKey{}, w)
}

// writeConcernFrom extracts the per-call write concern override, or 0 when
// the context carries none (meaning: use the client's configured default).
func writeConcernFrom(ctx context.Context) int {
	w, _ := ctx.Value(writeConcernKey{}).(int)
	return w
}

// OwnerRef identifies the peer that served an operation in a
// backend-neutral way: the key is always set; Addr is the transport
// address on the live backend; ID is the simulator node id.
type OwnerRef struct {
	// Key is the peer's position on the identifier circle.
	Key Key
	// Addr is the live backend's transport address ("" on the simulator).
	Addr string
	// ID is the simulator's node id (0 and meaningless on the live backend).
	ID NodeID
}

// PutResponse reports a Put.
type PutResponse struct {
	// Owner is the peer now holding the item.
	Owner OwnerRef
	// Cost is the message cost of the operation (routing plus the write).
	Cost int
	// Replaced reports whether an existing value was overwritten.
	Replaced bool
	// Acks is how many stores (the owner plus replica chain members)
	// acknowledged the write — filled whether or not the write concern
	// was met, so a caller seeing ErrWriteConcern still learns how far
	// the write got.
	Acks int
}

// GetResponse reports a Get.
type GetResponse struct {
	// Owner is the peer holding the item.
	Owner OwnerRef
	// Cost is the message cost of the operation.
	Cost int
	// Value is the stored value.
	Value []byte
}

// DeleteResponse reports a Delete.
type DeleteResponse struct {
	// Owner is the peer that held the item.
	Owner OwnerRef
	// Cost is the message cost of the operation.
	Cost int
	// Acks is how many stores (the owner plus replica chain members)
	// acknowledged the delete.
	Acks int
}

// RangeResponse reports a RangeQuery.
type RangeResponse struct {
	// Items are the matching records in clockwise key order from the range
	// start.
	Items []Item
	// Cost is the total message cost: routing to the range start plus one
	// hop per additional peer scanned along the ring.
	Cost int
	// PeersScanned is the number of peers whose shards were visited.
	PeersScanned int
}

// LookupResponse reports a Lookup.
type LookupResponse struct {
	// Owner is the peer owning the key.
	Owner OwnerRef
	// Cost is the routing message cost.
	Cost int
}

// SyncStats reports anti-entropy work: the digest-driven repair passes
// that keep replica chains convergent. Every counter tracks divergence,
// never arc size — an in-sync chain member costs one digest exchange and
// moves nothing.
type SyncStats struct {
	// Rounds is the number of owner→replica digest exchanges opened.
	Rounds int
	// KeysPushed is the number of items shipped to replicas that were
	// missing them or held stale values.
	KeysPushed int
	// TombstonesPushed is the number of deletes propagated to replicas
	// that had missed them.
	TombstonesPushed int
	// Dropped is the number of stray replica keys (no owner record)
	// replicas were told to forget.
	Dropped int
}

// InfoResponse is a snapshot of the backend's view of the overlay. The
// simulator has global knowledge; a live node reports only its local state.
type InfoResponse struct {
	// Backend names the implementation: "simulator" or "p2p".
	Backend string
	// Peers is the number of alive peers. The simulator knows it exactly.
	// A live node reports an exact successor-pointer ring walk while the
	// gossip size estimate says the ring is small enough (up to 128 peers),
	// and the gossip estimate itself beyond that — an honest estimate at
	// any scale instead of the former -1. Treat it as an estimate either
	// way: concurrent joins and crashes skew both sources.
	Peers int
	// SizeEstimate is the raw gossip-maintained ring-size estimate a live
	// node blends from successor-list density and neighbour exchanges (the
	// exact count on the simulator). Peers derives from it.
	SizeEstimate float64
	// Replicas is the replication factor r the client writes with: every
	// item is stored at its owner and on the owner's r-1 ring successors
	// (1 = no replication).
	Replicas int
	// WriteConcern is the default number of owner+chain acknowledgements
	// the client's writes require (1 = the owner's ack alone);
	// ContextWithWriteConcern overrides it per call.
	WriteConcern int
	// Self is the serving peer (zero on the simulator, which has no
	// distinguished vantage point).
	Self OwnerRef
	// Successor and Predecessor are the serving peer's ring pointers
	// (live backend only).
	Successor, Predecessor OwnerRef
	// OutLinks and InLinks count the serving peer's long-range links
	// (live backend only).
	OutLinks, InLinks int
	// StoredItems is the primary item count (replica copies excluded): the
	// local shard on the live backend, the sum over all shards on the
	// simulator.
	StoredItems int
	// ReplicaItems is the number of replica copies the serving peer holds
	// for its predecessors' arcs (live backend only).
	ReplicaItems int
	// Tombstones is the number of deletes remembered for anti-entropy and
	// not yet TTL-collected (the serving peer's on the live backend, the
	// overlay total on the simulator).
	Tombstones int
	// AntiEntropy accumulates the backend's digest-sync repair work: the
	// serving peer's lifetime totals on the live backend, the overlay's on
	// the simulator.
	AntiEntropy SyncStats
	// Durable reports the serving peer runs with a data directory (WAL +
	// compacted snapshots; see NodeConfig.DataDir / WithDataDir).
	Durable bool
	// WALBytes and WALFrames are the size and intact frame count of the
	// serving peer's write-ahead log since its last snapshot — the replay
	// cost of a crash right now (durable live backend only).
	WALBytes  int64
	WALFrames int
	// LastSnapshot is when the serving peer last wrote a compacted
	// snapshot (zero if never, or not durable).
	LastSnapshot time.Time
	// RouteCacheHits counts data operations that reached the key's owner
	// through the serving peer's route cache; RouteCacheMisses counts the
	// ones that paid the full routing walk (including invalidated stale
	// hits). Both zero when the cache is disabled.
	RouteCacheHits, RouteCacheMisses uint64
	// HotKeyCacheHits counts reads served from the local hot-key value
	// cache after the owner (or chain) confirmed the copy's digest;
	// HotKeyCacheMisses counts reads that fetched the value in full.
	HotKeyCacheHits, HotKeyCacheMisses uint64
}

// options collects the functional construction options shared by NewClient
// and StartCluster.
type options struct {
	size              int
	seed              int64
	keys              KeyDistribution
	degrees           DegreeDistribution
	algorithm         Algorithm
	disablePowerOfTwo bool
	oraclePartitions  bool
	sampleSize        int
	walkSteps         int
	stabilizeRounds   int
	replicas          int
	writeConcern      int
	autoMaintenance   time.Duration
	antiEntropy       time.Duration
	dataDir           string
	fsync             string
	transportWrapper  func(transport.Transport) transport.Transport
	alpha             int
	routeCacheSize    int
	routeCacheTTL     time.Duration
	hotKeyCache       int
}

// Option customises client construction. The zero configuration builds a
// 1000-peer Oscar overlay on Gnutella-like keys with constant budgets.
type Option func(*options)

// WithSize sets the simulator overlay's target peer count (NewClient only;
// StartCluster takes its size as an argument).
func WithSize(n int) Option { return func(o *options) { o.size = n } }

// WithSeed seeds all randomness; runs with equal seeds are identical.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithKeys sets the peer identifier distribution.
func WithKeys(d KeyDistribution) Option { return func(o *options) { o.keys = d } }

// WithDegrees sets the per-peer link budget distribution.
func WithDegrees(d DegreeDistribution) Option { return func(o *options) { o.degrees = d } }

// WithAlgorithm selects the construction algorithm (simulator only; the
// live runtime always runs Oscar).
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithoutPowerOfTwo turns off the two-choices in-degree balancing rule.
func WithoutPowerOfTwo() Option { return func(o *options) { o.disablePowerOfTwo = true } }

// WithOraclePartitions uses exact global-knowledge medians instead of
// random-walk estimates (simulator only; for calibration).
func WithOraclePartitions() Option { return func(o *options) { o.oraclePartitions = true } }

// WithSampling tunes median estimation: samples per level and walk steps
// per sample (0 keeps the default for either).
func WithSampling(samples, steps int) Option {
	return func(o *options) { o.sampleSize, o.walkSteps = samples, steps }
}

// WithStabilizeRounds sets how many stabilisation rounds StartCluster runs
// after boot (live backend only).
func WithStabilizeRounds(n int) Option { return func(o *options) { o.stabilizeRounds = n } }

// WithReplicas sets the replication factor r (default 1 = no replication):
// every Put stores the item at its owner and pushes copies to the owner's
// r-1 immediate ring successors, Delete propagates along the same chain,
// and Get falls back through it when the owner is unreachable. Both
// backends honour it, so the durability contract is identical on the
// simulator and the live runtime: killing fewer than r consecutive ring
// members loses no data once maintenance has re-replicated.
func WithReplicas(r int) Option { return func(o *options) { o.replicas = r } }

// WithWriteConcern sets the default write concern w (default 1): a Put or
// Delete succeeds only once at least w members of owner+chain have
// acknowledged it, and returns ErrWriteConcern — with the achieved and
// required counts — otherwise. The write is never rolled back on a
// shortfall; it holds wherever it was acked and anti-entropy converges
// the rest. w is clamped to the replication factor (WithReplicas), since
// a chain cannot produce more acks than it has members; use
// ContextWithWriteConcern for an unclamped per-call requirement. Both
// backends honour it identically.
func WithWriteConcern(w int) Option { return func(o *options) { o.writeConcern = w } }

// WithDataDir makes cluster nodes durable (StartCluster only): node i
// logs every storage mutation to a write-ahead log under dir/node-i and
// compacts it into snapshots, so a node restarted on the same
// subdirectory recovers its shard instead of re-filling it over the
// network. The simulator ignores it.
func WithDataDir(dir string) Option { return func(o *options) { o.dataDir = dir } }

// WithFsync selects the WAL fsync policy ("always", "interval", or
// "never") for durable cluster nodes; see NodeConfig.Fsync. Only
// meaningful together with WithDataDir.
func WithFsync(policy string) Option { return func(o *options) { o.fsync = policy } }

// WithAutoMaintenance starts the background maintenance loop on every
// node StartCluster boots: ring stabilisation every interval (jittered
// per node so rounds do not synchronise across the cluster) and a
// long-range rewiring pass every 16 stabilisations. Zero (the default)
// leaves maintenance manual: call Stabilize/StabilizeAll/RewireAll or
// Node.StartMaintenance yourself. Live backend only.
func WithAutoMaintenance(interval time.Duration) Option {
	return func(o *options) { o.autoMaintenance = interval }
}

// WithTransportWrapper interposes wrap on the transport endpoint of every
// node StartCluster boots — the cluster-wide form of
// NodeConfig.WrapTransport. Fault harnesses pass a
// faultnet.Network's Wrap here to subject the whole cluster to
// deterministic, seeded drop/latency/duplication/partition faults; see
// internal/faultnet. Nil (the default) leaves endpoints bare. Live
// backend only; the simulator has no transport to wrap.
func WithTransportWrapper(wrap func(transport.Transport) transport.Transport) Option {
	return func(o *options) { o.transportWrapper = wrap }
}

// WithAntiEntropy starts the periodic digest sync on every node
// StartCluster boots (live backend, with WithAutoMaintenance): each node,
// as the owner of its arc, reconciles its replica chain against
// Merkle-style arc digests every interval and ships only diverged keys —
// repairing writes a replica missed, deletes that raced a crash, and stray
// copies, without re-pushing arcs. Requires WithReplicas(r > 1) to have
// any effect. Zero (the default) leaves periodic sync off; membership
// changes still trigger the same incremental repair from stabilisation.
func WithAntiEntropy(interval time.Duration) Option {
	return func(o *options) { o.antiEntropy = interval }
}

// WithAlpha sets the lookup parallelism α (default 1): each routing hop
// probes the current peer plus up to α-1 backtrack candidates
// concurrently, so a dead or slow hop is recovered from answers already
// in hand instead of a serial ping round. Higher α spends α-1 extra
// messages per hop to cut the lookup tail under churn. Both live
// fabrics honour it; the simulator's synchronous router has no tail to
// cut and treats every α alike.
func WithAlpha(alpha int) Option { return func(o *options) { o.alpha = alpha } }

// WithRouteCache configures the per-node route cache: an LRU of key →
// owner+chain resolutions that lets data operations skip the routing
// walk on a hit. Entries are TTL-aged, flushed on every membership
// change the node observes, and — decisively — every hit is
// re-validated against the ring (the write ops' ownership gate, one
// direct find_owner for reads) before being trusted, so a stale entry
// costs one wasted RPC, never a wrong answer. size 0 keeps the default
// (128 entries); size < 0 disables the cache. ttl 0 keeps the default
// (2s); ttl < 0 disables aging.
func WithRouteCache(size int, ttl time.Duration) Option {
	return func(o *options) { o.routeCacheSize, o.routeCacheTTL = size, ttl }
}

// WithHotKeyCache configures the requester-side hot-key value cache: an
// LRU of recently read values served only after a cheap digest check
// against the key's owner (or its chain, when the owner is dead)
// confirms the copy — so a Zipf-hot key costs its owner one hash
// comparison instead of a value transfer, stale copies always lose to
// the ring, and tombstones are honoured. size 0 keeps the default (128
// entries); size < 0 disables the cache.
func WithHotKeyCache(size int) Option {
	return func(o *options) { o.hotKeyCache = size }
}

func buildOptions(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// NewClient builds a simulator-backed Client: an in-process overlay grown
// to the configured size, sharing the Client surface with the live
// runtime. The simulator executes operations synchronously, so contexts
// are honoured at operation entry.
func NewClient(opts ...Option) (Client, error) {
	o := buildOptions(opts)
	ov, err := Build(Config{
		Size:              o.size,
		Seed:              o.seed,
		Keys:              o.keys,
		Degrees:           o.degrees,
		Algorithm:         o.algorithm,
		DisablePowerOfTwo: o.disablePowerOfTwo,
		OraclePartitions:  o.oraclePartitions,
		SampleSize:        o.sampleSize,
		WalkSteps:         o.walkSteps,
	})
	if err != nil {
		return nil, err
	}
	cl := ov.clientWith(o.replicas, o.writeConcern)
	// The simulator routes synchronously, so WithAlpha has nothing to
	// parallelise there; the cache options map directly.
	cl.setCaches(o.routeCacheSize, o.routeCacheTTL, o.hotKeyCache)
	return cl, nil
}
