// Package storage is the per-peer ordered key-value store of the data
// layer. The overlay is order-preserving precisely so that stores can be
// range-partitioned: peer p holds every item whose key falls in the arc
// (pred(p), p], and range queries scan consecutive peers' stores.
//
// Items are kept in a sorted slice: stores hold one peer's shard (thousands
// of items, not millions), where binary search plus contiguous memory beats
// pointer-chasing tree structures.
package storage

import (
	"sort"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// Item is one stored record.
type Item struct {
	Key   keyspace.Key
	Value []byte
}

// Store is one peer's shard, ordered by key. The zero value is an empty
// store ready to use.
type Store struct {
	items []Item // sorted by Key ascending
}

// Len returns the number of items.
func (s *Store) Len() int { return len(s.items) }

// search returns the index of the first item with key >= k.
func (s *Store) search(k keyspace.Key) int {
	return sort.Search(len(s.items), func(i int) bool { return s.items[i].Key >= k })
}

// Put inserts or replaces the value for k and reports whether an existing
// item was replaced. The value slice is stored as-is (callers own it).
func (s *Store) Put(k keyspace.Key, v []byte) (replaced bool) {
	i := s.search(k)
	if i < len(s.items) && s.items[i].Key == k {
		s.items[i].Value = v
		return true
	}
	s.items = append(s.items, Item{})
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = Item{Key: k, Value: v}
	return false
}

// Get returns the value for k.
func (s *Store) Get(k keyspace.Key) ([]byte, bool) {
	i := s.search(k)
	if i < len(s.items) && s.items[i].Key == k {
		return s.items[i].Value, true
	}
	return nil, false
}

// Delete removes the item with key k and reports whether it existed.
func (s *Store) Delete(k keyspace.Key) bool {
	i := s.search(k)
	if i == len(s.items) || s.items[i].Key != k {
		return false
	}
	s.items = append(s.items[:i], s.items[i+1:]...)
	return true
}

// Scan visits items whose keys lie in the clockwise arc rg, in clockwise
// order starting from rg.Start; fn returning false stops the scan. Wrapping
// arcs are handled (the scan may start near the top of the key space and
// continue from the bottom).
func (s *Store) Scan(rg keyspace.Range, fn func(Item) bool) {
	if len(s.items) == 0 {
		return
	}
	if rg.IsFull() {
		// Clockwise from rg.Start over the whole circle.
		start := s.search(rg.Start)
		for i := 0; i < len(s.items); i++ {
			if !fn(s.items[(start+i)%len(s.items)]) {
				return
			}
		}
		return
	}
	if rg.Start < rg.End {
		for i := s.search(rg.Start); i < len(s.items) && s.items[i].Key < rg.End; i++ {
			if !fn(s.items[i]) {
				return
			}
		}
		return
	}
	// Wrapping arc: [Start, MaxKey] then [0, End).
	for i := s.search(rg.Start); i < len(s.items); i++ {
		if !fn(s.items[i]) {
			return
		}
	}
	for i := 0; i < len(s.items) && s.items[i].Key < rg.End; i++ {
		if !fn(s.items[i]) {
			return
		}
	}
}

// Items returns all items in key order (a copy of the slice headers; values
// are shared).
func (s *Store) Items() []Item {
	return append([]Item(nil), s.items...)
}

// ExtractRange removes and returns the items whose keys lie in rg — the
// migration primitive used when a joining peer takes over part of its
// successor's arc.
func (s *Store) ExtractRange(rg keyspace.Range) []Item {
	var out []Item
	kept := s.items[:0]
	for _, it := range s.items {
		if rg.Contains(it.Key) {
			out = append(out, it)
		} else {
			kept = append(kept, it)
		}
	}
	s.items = kept
	return out
}

// InsertBulk merges items (each keyed uniquely) into the store.
func (s *Store) InsertBulk(items []Item) {
	for _, it := range items {
		s.Put(it.Key, it.Value)
	}
}
