package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a wire frame; anything larger is a protocol violation.
const maxFrame = 16 << 20

// callTimeout bounds one RPC round trip; a peer that cannot answer within
// it is treated as dead (the probe semantics routing relies on).
const callTimeout = 5 * time.Second

// TCPEndpoint is a Transport over real sockets: length-prefixed JSON frames,
// one request/response exchange per connection. Dial-per-call keeps the
// implementation obviously correct; for loopback demo clusters the cost is
// negligible.
type TCPEndpoint struct {
	ln net.Listener

	mu      sync.RWMutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
}

// ListenTCP opens an endpoint on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(bind string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	e := &TCPEndpoint{ln: ln}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Transport.
func (e *TCPEndpoint) Addr() Addr { return Addr(e.ln.Addr().String()) }

// Serve implements Transport.
func (e *TCPEndpoint) Serve(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer conn.Close()
			e.serveConn(conn)
		}()
	}
}

func (e *TCPEndpoint) serveConn(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(callTimeout))
	var req Request
	if err := readFrame(conn, &req); err != nil {
		return
	}
	e.mu.RLock()
	h := e.handler
	closed := e.closed
	e.mu.RUnlock()
	if h == nil || closed {
		return
	}
	resp := h(&req)
	_ = writeFrame(conn, resp)
}

// Call implements Transport.
func (e *TCPEndpoint) Call(addr Addr, req *Request) (*Response, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrUnreachable
	}
	conn, err := net.DialTimeout("tcp", string(addr), callTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(callTimeout))
	if err := writeFrame(conn, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return &resp, nil
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// writeFrame sends one length-prefixed JSON value.
func writeFrame(conn net.Conn, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	w := bufio.NewWriter(conn)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame receives one length-prefixed JSON value.
func readFrame(conn net.Conn, v interface{}) error {
	var hdr [4]byte
	if _, err := readFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := readFull(conn, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
