package oscar

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultChunkSize is the blob chunk size when WithChunkSize is not given:
// 1 MiB, a quarter of a scan page's byte bound, so a GetBlob page streams
// several chunks per round trip while staying far under the 16 MiB frame
// cap.
const DefaultChunkSize = 1 << 20

// blobPrefetchChunks is how many verified chunks GetBlob buffers ahead of
// the reader — the prefetch window that overlaps network fetches with the
// caller's consumption.
const blobPrefetchChunks = 4

// castagnoli is the CRC-32C table blob checksums use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlobManifest describes one stored blob: it lives as a JSON value under
// the blob's base key, and the chunks occupy the contiguous key sub-range
// [base+1, base+1+Chunks) — one key per chunk, in order — so the whole
// blob reads back as a single clockwise Scan. Checksums are CRC-32C.
type BlobManifest struct {
	// Size is the blob's total byte length.
	Size int64 `json:"size"`
	// ChunkSize is the byte length of every chunk except the last.
	ChunkSize int `json:"chunk_size"`
	// Chunks is the number of chunk keys following the base key.
	Chunks int `json:"chunks"`
	// ChunkCRC holds one CRC-32C per chunk, in key order.
	ChunkCRC []uint32 `json:"chunk_crc,omitempty"`
	// CRC is the CRC-32C of the whole blob.
	CRC uint32 `json:"crc"`
}

// chunkKey returns the key of blob chunk i: base+1+i, keeping manifest and
// chunks in one contiguous clockwise sub-range.
func chunkKey(base Key, i int) Key { return base + 1 + Key(i) }

// BlobOption tunes PutBlob.
type BlobOption func(*blobConfig)

type blobConfig struct {
	chunkSize int
}

// WithChunkSize sets the chunk size PutBlob splits the stream into
// (default DefaultChunkSize). Smaller chunks smooth streaming and shrink
// the re-read unit after a failure; larger chunks cut per-chunk overhead.
// Must be positive, and must stay well under the scan page byte bound
// (4 MiB) for chunks to stream several to a page.
func WithChunkSize(n int) BlobOption {
	return func(c *blobConfig) { c.chunkSize = n }
}

// putBlob is the shared PutBlob engine: chunks first (so a reader never
// sees a manifest whose chunks are still missing), manifest last.
func putBlob(ctx context.Context, c Client, base Key, r io.Reader, opts []BlobOption) (BlobManifest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := blobConfig{chunkSize: DefaultChunkSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.chunkSize <= 0 {
		return BlobManifest{}, fmt.Errorf("oscar: blob: chunk size must be positive, got %d", cfg.chunkSize)
	}
	m := BlobManifest{ChunkSize: cfg.chunkSize}
	buf := make([]byte, cfg.chunkSize)
	var whole uint32
	for i := 0; ; i++ {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			chunk := make([]byte, n)
			copy(chunk, buf[:n])
			if _, perr := c.Put(ctx, chunkKey(base, i), chunk); perr != nil {
				return m, fmt.Errorf("oscar: blob: put chunk %d: %w", i, perr)
			}
			m.ChunkCRC = append(m.ChunkCRC, crc32.Checksum(chunk, castagnoli))
			m.Chunks++
			m.Size += int64(n)
			whole = crc32.Update(whole, castagnoli, chunk)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return m, fmt.Errorf("oscar: blob: read input: %w", err)
		}
	}
	m.CRC = whole
	data, err := json.Marshal(m)
	if err != nil {
		return m, fmt.Errorf("oscar: blob: encode manifest: %w", err)
	}
	if _, err := c.Put(ctx, base, data); err != nil {
		return m, fmt.Errorf("oscar: blob: put manifest: %w", err)
	}
	return m, nil
}

// BlobReader streams a blob back: an io.ReadCloser fed by a background
// fetcher that pulls chunk pages through one Scan, verifies every chunk
// against the manifest, and keeps a small window of verified chunks
// buffered ahead of the reader. A verification failure (corrupt or missing
// chunk, whole-blob checksum mismatch) surfaces from Read.
type BlobReader struct {
	m      BlobManifest
	cancel context.CancelFunc
	ch     <-chan []byte
	errc   <-chan error

	cur  []byte
	err  error
	done bool
}

// Manifest returns the blob's manifest.
func (r *BlobReader) Manifest() BlobManifest { return r.m }

// Read implements io.Reader. The final error after the last byte is io.EOF
// on a fully verified blob, or the verification/transport failure.
func (r *BlobReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.done {
			return 0, r.err
		}
		v, ok := <-r.ch
		if !ok {
			r.done = true
			if e := <-r.errc; e != nil {
				r.err = e
			} else {
				r.err = io.EOF
			}
			return 0, r.err
		}
		r.cur = v
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close stops the background fetcher. It is safe to call at any point,
// including mid-stream; subsequent Reads fail.
func (r *BlobReader) Close() error {
	r.cancel()
	if !r.done {
		r.done = true
		r.err = errors.New("oscar: blob: reader closed")
		r.cur = nil
	}
	return nil
}

// getBlob is the shared GetBlob engine.
func getBlob(ctx context.Context, c Client, base Key) (*BlobReader, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := c.Get(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("oscar: blob: manifest: %w", err)
	}
	var m BlobManifest
	if err := json.Unmarshal(res.Value, &m); err != nil {
		return nil, fmt.Errorf("oscar: blob: bad manifest at %v: %w", base, err)
	}
	if m.Chunks < 0 || len(m.ChunkCRC) != m.Chunks || (m.Chunks > 0 && m.ChunkSize <= 0) {
		return nil, fmt.Errorf("oscar: blob: corrupt manifest at %v: %d chunks, %d checksums", base, m.Chunks, len(m.ChunkCRC))
	}
	cctx, cancel := context.WithCancel(ctx)
	ch := make(chan []byte, blobPrefetchChunks)
	errc := make(chan error, 1)
	r := &BlobReader{m: m, cancel: cancel, ch: ch, errc: errc}
	go func() {
		defer close(ch)
		errc <- fetchBlobChunks(cctx, c, base, m, ch)
	}()
	return r, nil
}

// fetchBlobChunks streams and verifies a blob's chunks into ch: one Scan
// over the contiguous chunk sub-range, each chunk checked for position,
// size and CRC as it arrives, and the whole-blob CRC checked at the end.
func fetchBlobChunks(ctx context.Context, c Client, base Key, m BlobManifest, ch chan<- []byte) error {
	if m.Chunks == 0 {
		if m.CRC != 0 || m.Size != 0 {
			return fmt.Errorf("oscar: blob: corrupt manifest: empty blob with nonzero size/crc")
		}
		return nil
	}
	next := 0
	var whole uint32
	sc := c.Scan(ctx, chunkKey(base, 0), chunkKey(base, m.Chunks))
	for sc.Next() {
		it := sc.Item()
		if next >= m.Chunks || it.Key != chunkKey(base, next) {
			return fmt.Errorf("oscar: blob: chunk %d: expected key %v, got %v (missing or stray chunk)", next, chunkKey(base, next), it.Key)
		}
		wantLen := m.ChunkSize
		if next == m.Chunks-1 {
			wantLen = int(m.Size - int64(m.Chunks-1)*int64(m.ChunkSize))
		}
		if len(it.Value) != wantLen {
			return fmt.Errorf("oscar: blob: chunk %d: %d bytes, want %d", next, len(it.Value), wantLen)
		}
		if crc := crc32.Checksum(it.Value, castagnoli); crc != m.ChunkCRC[next] {
			return fmt.Errorf("oscar: blob: chunk %d: checksum mismatch (%08x != %08x)", next, crc, m.ChunkCRC[next])
		}
		whole = crc32.Update(whole, castagnoli, it.Value)
		select {
		case ch <- it.Value:
		case <-ctx.Done():
			return ctx.Err()
		}
		next++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("oscar: blob: scan chunks: %w", err)
	}
	if next != m.Chunks {
		return fmt.Errorf("oscar: blob: %d of %d chunks found", next, m.Chunks)
	}
	if whole != m.CRC {
		return fmt.Errorf("oscar: blob: whole-blob checksum mismatch (%08x != %08x)", whole, m.CRC)
	}
	return nil
}

// deleteBlob is the shared DeleteBlob engine: chunks first, manifest last,
// so a crash mid-delete leaves the manifest behind and the delete can be
// retried.
func deleteBlob(ctx context.Context, c Client, base Key) error {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := c.Get(ctx, base)
	if err != nil {
		return fmt.Errorf("oscar: blob: manifest: %w", err)
	}
	var m BlobManifest
	if err := json.Unmarshal(res.Value, &m); err != nil {
		return fmt.Errorf("oscar: blob: bad manifest at %v: %w", base, err)
	}
	for i := 0; i < m.Chunks; i++ {
		if _, err := c.Delete(ctx, chunkKey(base, i)); err != nil && !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("oscar: blob: delete chunk %d: %w", i, err)
		}
	}
	if _, err := c.Delete(ctx, base); err != nil && !errors.Is(err, ErrNotFound) {
		return fmt.Errorf("oscar: blob: delete manifest: %w", err)
	}
	return nil
}
