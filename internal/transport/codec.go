package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Wire codec versions, negotiated once per connection (see the handshake in
// tcp.go / pool.go). The payload inside each length-delimited frame is
// encoded in the connection's negotiated codec; the frame header itself is
// identical across versions, so the demux and framing layers never care.
const (
	// codecJSON is the v1 payload encoding: one JSON document per frame.
	// It is also the implicit codec of legacy peers that predate the
	// handshake — a connection that opens with a frame instead of the
	// handshake magic speaks JSON.
	codecJSON = 1
	// codecBinary is the v2 payload encoding: the hand-rolled tag/length/
	// value format below. Roughly 5-10x cheaper to encode+decode than JSON
	// (no reflection, no base64, values alias the read buffer) and 2-4x
	// smaller on the wire.
	codecBinary = 2
	// codecMax is the newest codec this build speaks; the handshake
	// negotiates min(codecMax, peer's offer) per connection.
	codecMax = codecBinary
)

// CodecName renders a negotiated codec version (as reported by
// TCPEndpoint.PeerCodecs) for humans.
func CodecName(v int) string {
	switch v {
	case codecJSON:
		return "json"
	case codecBinary:
		return "binary"
	default:
		return fmt.Sprintf("v%d", v)
	}
}

// The binary payload is a flat sequence of fields, each encoded as
// [tag uvarint][length uvarint][value], preceded by one kind byte ('Q' for
// requests, 'S' for responses) that makes a frame self-describing enough to
// reject cross-decoding. Zero-valued fields are omitted, mirroring the JSON
// codec's omitempty. Unknown tags are skipped by length, so fields can be
// added without a codec version bump as long as old decoders may ignore
// them.
//
// Value encodings inside a field:
//   - bool: zero-length (presence means true)
//   - int: zigzag uvarint
//   - float64: 8-byte big-endian IEEE 754 bits
//   - Key / uint64: 8-byte big-endian (keys are uniform over the full
//     space, so varints would average longer)
//   - string / []byte: raw bytes
//   - PeerRef: [8-byte key][addr bytes]
//   - slices: uvarint count, then the elements (except []Key and []uint64,
//     which are raw 8-byte concatenations with the count implied by length)
const (
	binKindRequest  = 'Q'
	binKindResponse = 'S'
)

// Request field tags.
const (
	rtagOp = iota + 1
	rtagFrom
	rtagKey
	rtagRange
	rtagValue
	rtagLimit
	rtagItems
	rtagTombs
	rtagDrop
	rtagDepth
	rtagBuckets
	rtagValues
	rtagStates
	rtagSizeEst
	rtagExclude
)

// Response field tags.
const (
	stagOK = iota + 1
	stagErr
	stagPeer
	stagPeers
	stagDegree
	stagValue
	stagFound
	stagDeleted
	stagAcks
	stagItems
	stagMore
	stagCursor
	stagTombs
	stagDigest
	stagStates
	stagSizeEst
	stagMaxIn
	stagMaxOut
	stagInDeg
)

var errBadPayload = errors.New("transport: bad binary payload")

// --- encoding ------------------------------------------------------------

// binWriter appends the binary encoding to a byte slice (the pooled frame
// buffer's tail, in practice). All methods are infallible; size limits are
// enforced by the frame layer after encoding.
type binWriter struct {
	b []byte
}

func (w *binWriter) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

func (w *binWriter) fixed64(v uint64) {
	w.b = binary.BigEndian.AppendUint64(w.b, v)
}

// field writes a tag and length header; the caller must then append exactly
// length bytes of value.
func (w *binWriter) field(tag int, length int) {
	w.uvarint(uint64(tag))
	w.uvarint(uint64(length))
}

func (w *binWriter) boolField(tag int, v bool) {
	if v {
		w.field(tag, 0)
	}
}

func (w *binWriter) intField(tag int, v int) {
	if v == 0 {
		return
	}
	zz := uint64(uint(v)<<1) ^ uint64(v>>(intBits-1))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], zz)
	w.field(tag, n)
	w.b = append(w.b, tmp[:n]...)
}

const intBits = 32 << (^uint(0) >> 63)

func (w *binWriter) float64Field(tag int, v float64) {
	if v == 0 {
		return
	}
	w.field(tag, 8)
	w.fixed64(math.Float64bits(v))
}

func (w *binWriter) keyField(tag int, k keyspace.Key) {
	if k == 0 {
		return
	}
	w.field(tag, 8)
	w.fixed64(uint64(k))
}

func (w *binWriter) bytesField(tag int, v []byte) {
	if len(v) == 0 {
		return
	}
	w.field(tag, len(v))
	w.b = append(w.b, v...)
}

func (w *binWriter) stringField(tag int, v string) {
	if len(v) == 0 {
		return
	}
	w.field(tag, len(v))
	w.b = append(w.b, v...)
}

func (w *binWriter) rangeField(tag int, rg keyspace.Range) {
	if rg.Start == 0 && rg.End == 0 {
		return
	}
	w.field(tag, 16)
	w.fixed64(uint64(rg.Start))
	w.fixed64(uint64(rg.End))
}

func (w *binWriter) peerRefField(tag int, p PeerRef) {
	if p.Addr == "" && p.Key == 0 {
		return
	}
	w.field(tag, 8+len(p.Addr))
	w.fixed64(uint64(p.Key))
	w.b = append(w.b, p.Addr...)
}

func (w *binWriter) keysField(tag int, ks []keyspace.Key) {
	if len(ks) == 0 {
		return
	}
	w.field(tag, 8*len(ks))
	for _, k := range ks {
		w.fixed64(uint64(k))
	}
}

func (w *binWriter) uint64sField(tag int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	w.field(tag, 8*len(vs))
	for _, v := range vs {
		w.fixed64(v)
	}
}

// scratchPool recycles the staging writers of varSliceField across frames
// so var-size fields don't allocate on the hot encode path.
var scratchPool = sync.Pool{
	New: func() interface{} { return &binWriter{b: make([]byte, 0, 512)} },
}

// varSliceField writes a counted slice whose elements have variable size:
// the element encodings are built in a scratch writer first so the field
// length is known up front.
func (w *binWriter) varSliceField(tag int, count int, enc func(*binWriter)) {
	if count == 0 {
		return
	}
	scratch := scratchPool.Get().(*binWriter)
	scratch.b = scratch.b[:0]
	scratch.uvarint(uint64(count))
	enc(scratch)
	w.field(tag, len(scratch.b))
	w.b = append(w.b, scratch.b...)
	scratchPool.Put(scratch)
}

func (w *binWriter) itemsField(tag int, items []storage.Item) {
	w.varSliceField(tag, len(items), func(s *binWriter) {
		for _, it := range items {
			s.fixed64(uint64(it.Key))
			s.uvarint(uint64(len(it.Value)))
			s.b = append(s.b, it.Value...)
		}
	})
}

func (w *binWriter) tombsField(tag int, tombs []storage.Tombstone) {
	w.varSliceField(tag, len(tombs), func(s *binWriter) {
		for _, tb := range tombs {
			s.fixed64(uint64(tb.Key))
			s.uvarint(uint64(tb.At)<<1 ^ uint64(tb.At>>63))
		}
	})
}

func (w *binWriter) statesField(tag int, states []antientropy.State) {
	w.varSliceField(tag, len(states), func(s *binWriter) {
		for _, st := range states {
			s.fixed64(uint64(st.Key))
			s.fixed64(st.Hash)
			if st.Deleted {
				s.b = append(s.b, 1)
			} else {
				s.b = append(s.b, 0)
			}
		}
	})
}

func (w *binWriter) peersField(tag int, peers []PeerRef) {
	w.varSliceField(tag, len(peers), func(s *binWriter) {
		for _, p := range peers {
			s.fixed64(uint64(p.Key))
			s.uvarint(uint64(len(p.Addr)))
			s.b = append(s.b, p.Addr...)
		}
	})
}

func (w *binWriter) addrsField(tag int, addrs []Addr) {
	w.varSliceField(tag, len(addrs), func(s *binWriter) {
		for _, a := range addrs {
			s.uvarint(uint64(len(a)))
			s.b = append(s.b, a...)
		}
	})
}

func (w *binWriter) intsField(tag int, vs []int) {
	w.varSliceField(tag, len(vs), func(s *binWriter) {
		for _, v := range vs {
			s.uvarint(uint64(uint(v))<<1 ^ uint64(v>>(intBits-1)))
		}
	})
}

// appendRequest appends the binary encoding of req to b.
func appendRequest(b []byte, req *Request) []byte {
	w := binWriter{b: append(b, binKindRequest)}
	w.stringField(rtagOp, string(req.Op))
	w.peerRefField(rtagFrom, req.From)
	w.keyField(rtagKey, req.Key)
	w.rangeField(rtagRange, req.Range)
	w.bytesField(rtagValue, req.Value)
	w.intField(rtagLimit, req.Limit)
	w.itemsField(rtagItems, req.Items)
	w.tombsField(rtagTombs, req.Tombs)
	w.keysField(rtagDrop, req.Drop)
	w.intField(rtagDepth, req.Depth)
	w.intsField(rtagBuckets, req.Buckets)
	w.boolField(rtagValues, req.Values)
	w.statesField(rtagStates, req.States)
	w.float64Field(rtagSizeEst, req.SizeEst)
	w.addrsField(rtagExclude, req.Exclude)
	return w.b
}

// appendResponse appends the binary encoding of resp to b.
func appendResponse(b []byte, resp *Response) []byte {
	w := binWriter{b: append(b, binKindResponse)}
	w.boolField(stagOK, resp.OK)
	w.stringField(stagErr, resp.Err)
	w.peerRefField(stagPeer, resp.Peer)
	w.peersField(stagPeers, resp.Peers)
	w.intField(stagDegree, resp.Degree)
	w.bytesField(stagValue, resp.Value)
	w.boolField(stagFound, resp.Found)
	w.boolField(stagDeleted, resp.Deleted)
	w.intField(stagAcks, resp.Acks)
	w.itemsField(stagItems, resp.Items)
	w.boolField(stagMore, resp.More)
	w.keyField(stagCursor, resp.Cursor)
	w.tombsField(stagTombs, resp.Tombs)
	w.uint64sField(stagDigest, resp.Digest)
	w.statesField(stagStates, resp.States)
	w.float64Field(stagSizeEst, resp.SizeEst)
	w.intField(stagMaxIn, resp.MaxIn)
	w.intField(stagMaxOut, resp.MaxOut)
	w.intField(stagInDeg, resp.InDeg)
	return w.b
}

// --- decoding ------------------------------------------------------------

// binReader consumes a binary payload. Every read is bounds-checked; any
// overrun or malformed varint fails the whole decode — the connection-level
// protocol-violation semantics the JSON codec has for invalid JSON.
type binReader struct {
	b   []byte
	err bool
}

func (r *binReader) fail() {
	r.err = true
	r.b = nil
}

func (r *binReader) empty() bool { return len(r.b) == 0 }

func (r *binReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) fixed64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *binReader) take(n int) []byte {
	if n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *binReader) zigzag() int {
	v := r.uvarint()
	return int(int64(v>>1) ^ -int64(v&1))
}

// field reads the next [tag][length] header and returns the tag plus a
// sub-reader over exactly the field's value bytes.
func (r *binReader) field() (int, binReader) {
	tag := r.uvarint()
	length := r.uvarint()
	if r.err {
		return 0, binReader{}
	}
	return int(tag), binReader{b: r.take(int(length))}
}

// sliceCount reads a slice's element count and sanity-checks it against the
// remaining bytes (each element costs at least minElem bytes), so corrupt
// counts cannot drive huge allocations.
func (r *binReader) sliceCount(minElem int) int {
	n := r.uvarint()
	if r.err || n > uint64(len(r.b)/minElem)+1 {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *binReader) peerRef() PeerRef {
	key := r.fixed64()
	addr := r.b
	r.b = nil
	if r.err {
		return PeerRef{}
	}
	return PeerRef{Addr: Addr(addr), Key: keyspace.Key(key)}
}

func (r *binReader) keys() []keyspace.Key {
	if len(r.b) == 0 || len(r.b)%8 != 0 {
		if len(r.b) != 0 {
			r.fail()
		}
		return nil
	}
	ks := make([]keyspace.Key, 0, len(r.b)/8)
	for !r.empty() {
		ks = append(ks, keyspace.Key(r.fixed64()))
	}
	return ks
}

func (r *binReader) uint64s() []uint64 {
	if len(r.b) == 0 || len(r.b)%8 != 0 {
		if len(r.b) != 0 {
			r.fail()
		}
		return nil
	}
	vs := make([]uint64, 0, len(r.b)/8)
	for !r.empty() {
		vs = append(vs, r.fixed64())
	}
	return vs
}

func (r *binReader) items() []storage.Item {
	n := r.sliceCount(9)
	if n == 0 {
		return nil
	}
	items := make([]storage.Item, 0, n)
	for i := 0; i < n; i++ {
		key := r.fixed64()
		vlen := r.uvarint()
		if r.err {
			return nil
		}
		items = append(items, storage.Item{Key: keyspace.Key(key), Value: r.take(int(vlen))})
	}
	return items
}

func (r *binReader) tombs() []storage.Tombstone {
	n := r.sliceCount(9)
	if n == 0 {
		return nil
	}
	tombs := make([]storage.Tombstone, 0, n)
	for i := 0; i < n; i++ {
		key := r.fixed64()
		zz := r.uvarint()
		if r.err {
			return nil
		}
		tombs = append(tombs, storage.Tombstone{
			Key: keyspace.Key(key),
			At:  int64(zz>>1) ^ -int64(zz&1),
		})
	}
	return tombs
}

func (r *binReader) states() []antientropy.State {
	n := r.sliceCount(17)
	if n == 0 {
		return nil
	}
	states := make([]antientropy.State, 0, n)
	for i := 0; i < n; i++ {
		key := r.fixed64()
		hash := r.fixed64()
		del := r.take(1)
		if r.err {
			return nil
		}
		states = append(states, antientropy.State{
			Key: keyspace.Key(key), Hash: hash, Deleted: del[0] != 0,
		})
	}
	return states
}

func (r *binReader) peers() []PeerRef {
	n := r.sliceCount(9)
	if n == 0 {
		return nil
	}
	peers := make([]PeerRef, 0, n)
	for i := 0; i < n; i++ {
		key := r.fixed64()
		alen := r.uvarint()
		if r.err {
			return nil
		}
		peers = append(peers, PeerRef{
			Addr: Addr(r.take(int(alen))), Key: keyspace.Key(key),
		})
	}
	return peers
}

func (r *binReader) addrs() []Addr {
	n := r.sliceCount(1)
	if n == 0 {
		return nil
	}
	addrs := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		alen := r.uvarint()
		if r.err {
			return nil
		}
		addrs = append(addrs, Addr(r.take(int(alen))))
	}
	return addrs
}

func (r *binReader) ints() []int {
	n := r.sliceCount(1)
	if n == 0 {
		return nil
	}
	vs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, r.zigzag())
		if r.err {
			return nil
		}
	}
	return vs
}

// decodeRequest decodes a binary request payload into req. The decoded
// slices and strings alias b, which must stay immutable for their lifetime
// (the mux allocates one read buffer per frame, so this holds).
func decodeRequest(b []byte, req *Request) error {
	if len(b) == 0 || b[0] != binKindRequest {
		return fmt.Errorf("%w: not a request", errBadPayload)
	}
	r := binReader{b: b[1:]}
	for !r.empty() && !r.err {
		tag, fr := r.field()
		if r.err {
			break
		}
		switch tag {
		case rtagOp:
			req.Op = Op(fr.b)
			fr.b = nil
		case rtagFrom:
			req.From = fr.peerRef()
		case rtagKey:
			req.Key = keyspace.Key(fr.fixed64())
		case rtagRange:
			req.Range = keyspace.Range{Start: keyspace.Key(fr.fixed64()), End: keyspace.Key(fr.fixed64())}
		case rtagValue:
			req.Value = fr.b
			fr.b = nil
		case rtagLimit:
			req.Limit = fr.zigzag()
		case rtagItems:
			req.Items = fr.items()
		case rtagTombs:
			req.Tombs = fr.tombs()
		case rtagDrop:
			req.Drop = fr.keys()
		case rtagDepth:
			req.Depth = fr.zigzag()
		case rtagBuckets:
			req.Buckets = fr.ints()
		case rtagValues:
			req.Values = true
		case rtagStates:
			req.States = fr.states()
		case rtagSizeEst:
			req.SizeEst = math.Float64frombits(fr.fixed64())
		case rtagExclude:
			req.Exclude = fr.addrs()
		default:
			// Unknown field from a newer peer: skipped by length.
		}
		if fr.err {
			return errBadPayload
		}
	}
	if r.err {
		return errBadPayload
	}
	return nil
}

// decodeResponse decodes a binary response payload into resp; aliasing
// rules match decodeRequest.
func decodeResponse(b []byte, resp *Response) error {
	if len(b) == 0 || b[0] != binKindResponse {
		return fmt.Errorf("%w: not a response", errBadPayload)
	}
	r := binReader{b: b[1:]}
	for !r.empty() && !r.err {
		tag, fr := r.field()
		if r.err {
			break
		}
		switch tag {
		case stagOK:
			resp.OK = true
		case stagErr:
			resp.Err = string(fr.b)
			fr.b = nil
		case stagPeer:
			resp.Peer = fr.peerRef()
		case stagPeers:
			resp.Peers = fr.peers()
		case stagDegree:
			resp.Degree = fr.zigzag()
		case stagValue:
			resp.Value = fr.b
			fr.b = nil
		case stagFound:
			resp.Found = true
		case stagDeleted:
			resp.Deleted = true
		case stagAcks:
			resp.Acks = fr.zigzag()
		case stagItems:
			resp.Items = fr.items()
		case stagMore:
			resp.More = true
		case stagCursor:
			resp.Cursor = keyspace.Key(fr.fixed64())
		case stagTombs:
			resp.Tombs = fr.tombs()
		case stagDigest:
			resp.Digest = fr.uint64s()
		case stagStates:
			resp.States = fr.states()
		case stagSizeEst:
			resp.SizeEst = math.Float64frombits(fr.fixed64())
		case stagMaxIn:
			resp.MaxIn = fr.zigzag()
		case stagMaxOut:
			resp.MaxOut = fr.zigzag()
		case stagInDeg:
			resp.InDeg = fr.zigzag()
		default:
		}
		if fr.err {
			return errBadPayload
		}
	}
	if r.err {
		return errBadPayload
	}
	return nil
}
