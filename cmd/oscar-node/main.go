// Command oscar-node runs one live Oscar peer on TCP. Start a first node,
// then join others to it; each process serves the overlay protocol and
// answers simple commands on stdin.
//
//	# terminal 1: create an overlay
//	oscar-node -listen 127.0.0.1:7001 -key 0.10
//
//	# terminal 2..n: join it
//	oscar-node -listen 127.0.0.1:7002 -key 0.55 -join 127.0.0.1:7001
//
// Stdin commands:
//
//	put <frac> <value>    store value under the key at fraction <frac>
//	get <frac>            fetch the value
//	range <lo> <hi>       list items with keys in [lo, hi)
//	lookup <frac>         route to the key's owner
//	info                  print ring pointers, links, stored items
//	stabilize             run one maintenance round
//	rewire                rebuild long-range links
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/p2p"
	"github.com/oscar-overlay/oscar/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-node: ")

	var (
		listen      = flag.String("listen", "127.0.0.1:0", "listen address")
		keyFrac     = flag.Float64("key", -1, "position on the circle in [0,1); -1 = time-derived")
		join        = flag.String("join", "", "address of any overlay member to join through")
		maxIn       = flag.Int("max-in", 16, "in-link budget (ρmax_in)")
		maxOut      = flag.Int("max-out", 16, "out-link budget (ρmax_out)")
		interval    = flag.Duration("stabilize", 2*time.Second, "stabilisation interval (0 = manual)")
		rewireEvery = flag.Int("rewire-every", 5, "rebuild long links every N stabilisations (0 = manual)")
		poolSize    = flag.Int("pool", 2, "persistent connections per peer")
		callTimeout = flag.Duration("call-timeout", 5*time.Second, "per-RPC timeout")
		idleTimeout = flag.Duration("idle-timeout", 60*time.Second, "reap pooled connections idle this long")
	)
	flag.Parse()

	key := keyspace.FromFloat(*keyFrac)
	if *keyFrac < 0 {
		key = keyspace.Key(time.Now().UnixNano()) * 2654435761 // spread-ish
	}

	ep, err := transport.ListenTCP(*listen,
		transport.WithPoolSize(*poolSize),
		transport.WithCallTimeout(*callTimeout),
		transport.WithIdleTimeout(*idleTimeout),
	)
	if err != nil {
		log.Fatal(err)
	}
	node := p2p.NewNode(ep, p2p.Config{
		Key: key, MaxIn: *maxIn, MaxOut: *maxOut,
		Seed: time.Now().UnixNano(),
	})
	fmt.Printf("node up at %s, key %s\n", node.Self().Addr, node.Self().Key)

	if *join != "" {
		if err := node.Join(transport.Addr(*join)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("joined via %s; succ=%s pred=%s, %d long links\n",
			*join, node.Succ().Key, node.Pred().Key, len(node.OutLinks()))
	}

	if *interval > 0 {
		m := node.StartMaintenance(*interval, *rewireEvery)
		defer m.Stop()
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if err := execute(node, strings.Fields(sc.Text())); err != nil {
			if err == errQuit {
				break
			}
			fmt.Println("error:", err)
		}
		fmt.Print("> ")
	}
	_ = node.Close()
}

var errQuit = fmt.Errorf("quit")

func parseFrac(s string) (keyspace.Key, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f >= 1 {
		return 0, fmt.Errorf("want a fraction in [0,1), got %q", s)
	}
	return keyspace.FromFloat(f), nil
}

func execute(node *p2p.Node, args []string) error {
	if len(args) == 0 {
		return nil
	}
	switch args[0] {
	case "quit", "exit":
		return errQuit

	case "info":
		fmt.Printf("self  %s key=%s\n", node.Self().Addr, node.Self().Key)
		fmt.Printf("succ  %s key=%s\n", node.Succ().Addr, node.Succ().Key)
		fmt.Printf("pred  %s key=%s\n", node.Pred().Addr, node.Pred().Key)
		fmt.Printf("links out=%d in=%d items=%d\n", len(node.OutLinks()), node.InDegree(), node.StoredItems())
		return nil

	case "stabilize":
		node.Stabilize()
		return nil

	case "rewire":
		if err := node.Rewire(); err != nil {
			return err
		}
		fmt.Printf("%d long-range links\n", len(node.OutLinks()))
		return nil

	case "lookup":
		if len(args) != 2 {
			return fmt.Errorf("usage: lookup <frac>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		owner, cost, err := node.Lookup(k)
		if err != nil {
			return err
		}
		fmt.Printf("owner %s key=%s (%d messages)\n", owner.Addr, owner.Key, cost)
		return nil

	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <frac> <value>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		cost, err := node.Put(k, []byte(strings.Join(args[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("stored (%d messages)\n", cost)
		return nil

	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <frac>")
		}
		k, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		val, found, cost, err := node.Get(k)
		if err != nil {
			return err
		}
		if !found {
			fmt.Printf("not found (%d messages)\n", cost)
			return nil
		}
		fmt.Printf("%q (%d messages)\n", val, cost)
		return nil

	case "range":
		if len(args) != 3 {
			return fmt.Errorf("usage: range <lo> <hi>")
		}
		lo, err := parseFrac(args[1])
		if err != nil {
			return err
		}
		hi, err := parseFrac(args[2])
		if err != nil {
			return err
		}
		items, cost, err := node.RangeQuery(lo, hi, 0)
		if err != nil {
			return err
		}
		for _, it := range items {
			fmt.Printf("  %s = %q\n", it.Key, it.Value)
		}
		fmt.Printf("%d items (%d messages)\n", len(items), cost)
		return nil

	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
