package p2p

import (
	"testing"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// mustNode is the test-side NewNode: without a DataDir it cannot fail,
// so tests fatal instead of threading the error.
func mustNode(tb testing.TB, tr transport.Transport, cfg Config) *Node {
	tb.Helper()
	n, err := NewNode(tr, cfg)
	if err != nil {
		tb.Fatalf("NewNode: %v", err)
	}
	return n
}
