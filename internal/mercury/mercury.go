// Package mercury implements the Mercury baseline [Bharambe, Agrawal,
// Seshan, SIGCOMM 2004] the paper compares against.
//
// Mercury also builds a Symphony-style small world over a skewed key space,
// but it learns the key distribution globally and with uniform resolution:
// each node samples peers uniformly at random (random walks), accumulates
// their keys in a fixed-bucket histogram over the identifier space, and
// inverts that histogram to translate a harmonically drawn *rank* distance
// into a *key* distance. When the key density has spikes narrower than a
// bucket, the within-bucket-uniform assumption misplaces links badly — the
// failure mode Oscar's nested-median sampling avoids (see [8] as cited in
// the paper's §2/§3).
//
// For the degree-volume comparison, Mercury uses the same in-degree
// admission rule but no power-of-two choice: candidates are determined by
// the drawn key alone.
package mercury

import (
	"math"
	"math/rand"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

// Config tunes the Mercury wiring algorithm.
type Config struct {
	// Buckets is the histogram resolution over the identifier space.
	Buckets int
	// Samples is the number of uniform peer samples used to fill the
	// histogram.
	Samples int
	// WalkSteps is the walk length per sample.
	WalkSteps int
	// LinkRetries is how many fresh harmonic draws a node spends on a link
	// slot after a refusal. The default of 1 gives Mercury the same
	// two-candidates-per-slot budget Oscar's power-of-two rule uses, and
	// lands at the paper's ≈61% exploited degree volume.
	LinkRetries int
}

// DefaultConfig mirrors Mercury's published parameters scaled to the
// experiment sizes: k ≈ log n samples would be too few to fill the
// histogram, so Mercury uses on the order of 50–100 samples per node.
func DefaultConfig() Config {
	return Config{Buckets: 50, Samples: 60, WalkSteps: 10, LinkRetries: 1}
}

// WireStats reports one wiring pass.
type WireStats struct {
	LinksWanted int
	LinksMade   int
	Refusals    int
	SampleCost  int
}

// Add accumulates another pass's stats.
func (s *WireStats) Add(o WireStats) {
	s.LinksWanted += o.LinksWanted
	s.LinksMade += o.LinksMade
	s.Refusals += o.Refusals
	s.SampleCost += o.SampleCost
}

// Histogram is Mercury's uniform-resolution estimate of the key density.
type Histogram struct {
	mass []float64 // normalised bucket masses, summing to 1
}

// NewHistogram builds the density estimate from sampled keys. Buckets that
// received no sample get zero mass: Mercury cannot see what it did not
// sample.
func NewHistogram(buckets int, keys []keyspace.Key) *Histogram {
	h := &Histogram{mass: make([]float64, buckets)}
	if len(keys) == 0 {
		// No information: assume uniform, Mercury's bootstrap default.
		for i := range h.mass {
			h.mass[i] = 1 / float64(buckets)
		}
		return h
	}
	inc := 1 / float64(len(keys))
	for _, k := range keys {
		b := int(k.Float() * float64(buckets))
		if b == buckets {
			b--
		}
		h.mass[b] += inc
	}
	return h
}

// InvertFrom returns the key t such that the estimated population mass of
// the clockwise arc [from, t) equals f (f in [0,1)). Mass inside a bucket is
// assumed uniform — the resolution limit at the heart of the comparison.
func (h *Histogram) InvertFrom(from keyspace.Key, f float64) keyspace.Key {
	if f <= 0 {
		return from
	}
	if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	buckets := len(h.mass)
	start := from.Float() * float64(buckets)
	bi := int(start)
	if bi == buckets {
		bi--
	}
	// Mass remaining in the starting bucket, clockwise of `from`.
	frac := start - float64(bi)
	remaining := h.mass[bi] * (1 - frac)
	need := f
	pos := bi
	cons := 0
	for cons < buckets+1 {
		if remaining >= need && h.mass[pos] > 0 {
			// The target lies inside this bucket: the within-bucket density
			// is assumed uniform, so advancing Δ bucket-widths consumes
			// mass[pos]·Δ of mass.
			base := 0.0
			if cons == 0 {
				base = frac // the first bucket is entered mid-way
			}
			delta := need / h.mass[pos]
			x := (float64(pos) + base + delta) / float64(buckets)
			return keyspace.FromFloat(x)
		}
		need -= remaining
		pos = (pos + 1) % buckets
		remaining = h.mass[pos]
		cons++
	}
	// Numerical dust: wrap to just before `from`.
	return from - 1
}

// Wire (re)builds node u's long-range links the Mercury way. nAlive is the
// network-size estimate; Mercury has its own estimator (also walk-based) —
// the simulator supplies the true count because estimator error is not what
// the comparison measures.
func Wire(net *graph.Network, rg *ring.Ring, w *sampling.Walker, u graph.NodeID,
	cfg Config, nAlive int, rnd *rand.Rand) WireStats {

	node := net.Node(u)
	stats := WireStats{LinksWanted: node.MaxOut}
	net.DropLinks(u)
	if nAlive < 2 {
		return stats
	}

	// Learn the key distribution at uniform resolution.
	samples, cost, err := w.SampleChain(u, keyspace.FullRange(), cfg.Samples, cfg.WalkSteps)
	stats.SampleCost = cost
	if err != nil {
		return stats
	}
	keys := make([]keyspace.Key, len(samples))
	for i, id := range samples {
		keys[i] = net.Node(id).Key
	}
	hist := NewHistogram(cfg.Buckets, keys)

	for slot := 0; slot < node.MaxOut; slot++ {
		if acquireLink(net, rg, u, hist, cfg, nAlive, rnd, &stats) {
			stats.LinksMade++
		}
	}
	return stats
}

// acquireLink draws harmonic rank distances until a link sticks or retries
// run out.
func acquireLink(net *graph.Network, rg *ring.Ring, u graph.NodeID, hist *Histogram,
	cfg Config, nAlive int, rnd *rand.Rand, stats *WireStats) bool {

	node := net.Node(u)
	for attempt := 0; attempt <= cfg.LinkRetries; attempt++ {
		// Harmonic draw over rank distance [1, n-1]: pdf(d) ∝ 1/d, via
		// d = exp(U · ln(n-1)) (Symphony's construction).
		d := math.Exp(rnd.Float64() * math.Log(float64(nAlive-1)))
		f := d / float64(nAlive)
		target := hist.InvertFrom(node.Key, f)
		cand := rg.OwnerOf(target)
		if cand == u {
			continue
		}
		switch err := net.AddLink(u, cand); err {
		case nil:
			return true
		case graph.ErrRefused:
			stats.Refusals++
		default:
			// duplicate: redraw
		}
	}
	return false
}
