# Build stage: the module has zero external dependencies, so the build
# needs no network beyond the base image — COPY and compile.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/oscar-node ./cmd/oscar-node \
 && CGO_ENABLED=0 go build -trimpath -o /out/oscar-soak ./cmd/oscar-soak

# Runtime stage: alpine (not distroless) because docker-compose.yml wraps
# the entrypoint in `sh -c` to pin the listen address to the container IP
# — the TCP transport advertises its literal listen address to peers, so
# binding 0.0.0.0 would gossip an undialable address across the ring.
FROM alpine:3.20
COPY --from=build /out/oscar-node /out/oscar-soak /usr/local/bin/
ENTRYPOINT ["oscar-node"]
