package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// maxFrame bounds a wire payload; anything larger is a protocol violation
// and kills the connection.
const maxFrame = 16 << 20

// frameHeaderSize is [4-byte payload length][8-byte request id].
const frameHeaderSize = 12

// maxPooledBuf caps the encode buffers kept in the frame pool: the
// occasional giant frame (a bulk migrate or re-replicate) is returned to
// the allocator instead of pinning megabytes in the pool forever.
const maxPooledBuf = 64 << 10

// wireFrame is a reusable encode buffer for one outgoing frame. Encoding
// writes the header placeholder and the JSON payload into one contiguous
// buffer — no intermediate json.Marshal allocation, no header+payload
// copy — and the buffer (with its json.Encoder's internal state) is
// recycled through framePool once the frame has left for the wire.
type wireFrame struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var framePool = sync.Pool{New: func() interface{} {
	f := &wireFrame{}
	f.enc = json.NewEncoder(&f.buf)
	return f
}}

func acquireFrame() *wireFrame { return framePool.Get().(*wireFrame) }

func releaseFrame(f *wireFrame) {
	if f.buf.Cap() > maxPooledBuf {
		return
	}
	framePool.Put(f)
}

// encode fills the frame with header (payload length + request id) and
// JSON payload for v. Encoding failures (unserializable value, oversized
// payload) happen before anything touches the wire, so they never corrupt
// the connection's frame stream. The frame is reusable after an error.
func (f *wireFrame) encode(id uint64, v interface{}) error {
	f.buf.Reset()
	var hdr [frameHeaderSize]byte
	f.buf.Write(hdr[:])
	if err := f.enc.Encode(v); err != nil {
		return err
	}
	// The payload includes the encoder's trailing newline; Unmarshal on the
	// receive side skips trailing whitespace.
	payload := f.buf.Len() - frameHeaderSize
	if payload > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", payload)
	}
	b := f.buf.Bytes()
	binary.BigEndian.PutUint32(b[0:4], uint32(payload))
	binary.BigEndian.PutUint64(b[4:12], id)
	return nil
}

// bytes returns the encoded frame, valid until the next encode or release.
func (f *wireFrame) bytes() []byte { return f.buf.Bytes() }

// writeMuxFrame encodes and sends one frame with a single Write — the
// unshared (one frame per connection) discipline used by tests and the
// dial-per-call baseline.
func writeMuxFrame(w io.Writer, id uint64, v interface{}) error {
	f := acquireFrame()
	defer releaseFrame(f)
	if err := f.encode(id, v); err != nil {
		return err
	}
	_, err := w.Write(f.bytes())
	return err
}

// connWriter owns one connection's write half: callers enqueue encoded
// frames and a dedicated goroutine drains everything queued before each
// flush, so under high in-flight counts many frames leave per syscall
// while a lone frame still flushes immediately. The first write error
// fires onErr (once) and stops the writer — frame state past an error is
// unknown, so the connection must die with it.
type connWriter struct {
	conn    net.Conn
	timeout time.Duration
	onErr   func(error)

	frames chan *wireFrame
	stop   chan struct{}
	once   sync.Once
}

func startConnWriter(conn net.Conn, timeout time.Duration, onErr func(error)) *connWriter {
	w := &connWriter{
		conn:    conn,
		timeout: timeout,
		onErr:   onErr,
		frames:  make(chan *wireFrame, 256),
		stop:    make(chan struct{}),
	}
	go w.loop()
	return w
}

var errWriterClosed = errors.New("transport: connection writer closed")

// enqueue hands one frame to the writer goroutine, blocking only if the
// queue is full (backpressure against a stalled peer). The caller's
// context bounds the wait so a slow-draining connection cannot hold a
// call past its deadline. On success the writer owns the frame and will
// release it back to the pool after the wire write; on failure ownership
// stays with the caller.
func (w *connWriter) enqueue(ctx context.Context, frame *wireFrame) error {
	select {
	case w.frames <- frame:
		return nil
	case <-w.stop:
		return errWriterClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the writer goroutine; queued frames are dropped (the
// connection is dying anyway). Idempotent.
func (w *connWriter) close() {
	w.once.Do(func() { close(w.stop) })
}

func (w *connWriter) loop() {
	bw := bufio.NewWriter(w.conn)
	for {
		select {
		case <-w.stop:
			return
		case frame := <-w.frames:
			_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
			_, err := bw.Write(frame.bytes())
			releaseFrame(frame)
			// Yield once before draining: concurrent callers get a chance
			// to enqueue, so a burst leaves in one flush instead of many.
			runtime.Gosched()
			for err == nil {
				select {
				case next := <-w.frames:
					_, err = bw.Write(next.bytes())
					releaseFrame(next)
					continue
				default:
				}
				err = bw.Flush()
				break
			}
			if err != nil {
				w.onErr(err)
				w.close()
				return
			}
		}
	}
}

// readMuxFrame receives one frame and unmarshals its payload into v,
// returning the frame's request id. A length over maxFrame or a payload
// that is not valid JSON is a protocol violation: the caller must close
// the connection.
func readMuxFrame(r *bufio.Reader, v interface{}) (uint64, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	id := binary.BigEndian.Uint64(hdr[4:12])
	if n > maxFrame {
		return 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return 0, fmt.Errorf("transport: bad frame payload: %w", err)
	}
	return id, nil
}

// errConnBroken marks a connection-level failure (as opposed to a per-call
// timeout): the pooled connection is unusable and must be evicted. sent
// distinguishes whether the request may have reached the peer — only
// unsent requests are safe to retry on a fresh connection (a sent request
// could otherwise execute twice, which non-idempotent ops like migrate
// cannot tolerate).
type errConnBroken struct {
	cause error
	sent  bool
}

func (e errConnBroken) Error() string {
	return fmt.Sprintf("transport: connection broken: %v", e.cause)
}
func (e errConnBroken) Unwrap() error { return e.cause }

// muxConn is one client-side persistent connection: many concurrent calls
// share it, each tagged with a request id; a demux read loop routes
// response frames to the waiting caller's channel. The first I/O error
// breaks the connection: all in-flight calls fail, and the pool evicts it.
type muxConn struct {
	conn net.Conn
	wr   *connWriter

	mu       sync.Mutex
	pending  map[uint64]chan *Response
	nextID   uint64
	broken   bool
	cause    error
	lastUsed time.Time

	dead chan struct{} // closed when the read loop exits
}

// newMuxConn wraps a dialed connection and starts its demux loop.
func newMuxConn(conn net.Conn, writeTimeout time.Duration) *muxConn {
	c := &muxConn{
		conn:     conn,
		pending:  make(map[uint64]chan *Response),
		lastUsed: time.Now(),
		dead:     make(chan struct{}),
	}
	c.wr = startConnWriter(conn, writeTimeout, c.fail)
	go c.readLoop()
	return c
}

// readLoop demultiplexes response frames to their callers until the
// connection dies.
func (c *muxConn) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		var resp Response
		id, err := readMuxFrame(br, &resp)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.lastUsed = time.Now()
		c.mu.Unlock()
		if ok {
			ch <- &resp // buffered: never blocks the loop
		}
		// An unknown id is a response whose caller already timed out and
		// abandoned the slot: drop it, the connection stays healthy.
	}
}

// fail marks the connection broken, closes it, and wakes every in-flight
// caller. Idempotent; only the first cause is kept.
func (c *muxConn) fail(cause error) {
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return
	}
	c.broken = true
	c.cause = cause
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	c.wr.close()
	_ = c.conn.Close()
	close(c.dead)
}

// isBroken reports whether the connection has failed.
func (c *muxConn) isBroken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// inflight returns the number of calls awaiting a response.
func (c *muxConn) inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// idleSince returns the last moment the connection did useful work, or the
// zero time if calls are still in flight.
func (c *muxConn) idleSince() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) > 0 {
		return time.Time{}
	}
	return c.lastUsed
}

// call sends one request over the shared connection and waits for its
// response, the context deadline, or connection failure. A context expiry
// abandons the response slot without harming the connection; a write
// failure breaks the connection (frame state is unknown past it).
func (c *muxConn) call(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	if c.broken {
		cause := c.cause
		c.mu.Unlock()
		return nil, errConnBroken{cause: cause}
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Response, 1)
	c.pending[id] = ch
	c.lastUsed = time.Now()
	c.mu.Unlock()

	frame := acquireFrame()
	if err := frame.encode(id, req); err != nil {
		// The request itself is unsendable; the connection is untouched.
		releaseFrame(frame)
		c.forget(id)
		return nil, err
	}
	if err := c.wr.enqueue(ctx, frame); err != nil {
		releaseFrame(frame)
		c.forget(id)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr // deadline while queueing; nothing was sent
		}
		c.mu.Lock()
		if c.cause != nil {
			err = c.cause
		}
		c.mu.Unlock()
		return nil, errConnBroken{cause: err}
	}

	select {
	case resp := <-ch:
		return resp, nil
	case <-c.dead:
		c.forget(id)
		c.mu.Lock()
		cause := c.cause
		c.mu.Unlock()
		// The frame was queued and possibly delivered: not retryable.
		return nil, errConnBroken{cause: cause, sent: true}
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending call's response slot.
func (c *muxConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// close tears the connection down, failing any in-flight calls.
func (c *muxConn) close() {
	c.fail(errors.New("transport: connection closed"))
}
