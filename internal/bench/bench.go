// Package bench contains the experiment implementations shared by
// cmd/oscar-bench and the root-level testing.B benchmarks: one function per
// paper figure/table, each producing the rows behind the published plot.
package bench

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/metrics"
	"github.com/oscar-overlay/oscar/internal/sim"
)

// Scale fixes the experiment sizes. The paper grows to 10000 peers; the
// quick scale preserves every qualitative shape at laptop-iteration speed.
type Scale struct {
	// Target is the final network size.
	Target int
	// GrowthCheckpoints are the sizes measured in growth curves (fig1c).
	GrowthCheckpoints []int
	// ChurnSizes are the sizes at which churned networks are built (fig2).
	ChurnSizes []int
	// Queries per measurement (0 = network size, the paper's N).
	Queries int
}

// PaperScale is the paper's setup: 10000 peers.
func PaperScale() Scale {
	return Scale{
		Target:            10000,
		GrowthCheckpoints: seq(1000, 10000, 1000),
		ChurnSizes:        seq(2000, 10000, 2000),
	}
}

// QuickScale preserves the shapes at 3000 peers.
func QuickScale() Scale {
	return Scale{
		Target:            3000,
		GrowthCheckpoints: seq(500, 3000, 500),
		ChurnSizes:        []int{1000, 2000, 3000},
	}
}

func seq(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

// AllExperiments lists the experiment ids in presentation order.
var AllExperiments = []string{
	"fig1a", "fig1b", "fig1c", "fig2a", "fig2b",
	"volume", "homog",
	"ablation-p2c", "ablation-samples", "ablation-oracle",
	"ablation-routing", "access-skew",
}

// Harness runs experiments and renders their tables.
type Harness struct {
	Out   io.Writer
	Scale Scale
	Seed  int64
	// CSVWriter, when set, receives each experiment's table for export.
	CSVWriter func(name string, write func(f *os.File) error) error

	verbose bool
}

// New creates a harness writing tables to out.
func New(out io.Writer, scale Scale, seed int64, verbose bool) *Harness {
	return &Harness{Out: out, Scale: scale, Seed: seed, verbose: verbose}
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.verbose {
		log.Printf(format, args...)
	}
}

func (h *Harness) section(title, expectation string) {
	fmt.Fprintf(h.Out, "\n## %s\n", title)
	if expectation != "" {
		fmt.Fprintf(h.Out, "# paper: %s\n", expectation)
	}
}

func (h *Harness) emit(name string, tab *metrics.Table) error {
	if _, err := tab.WriteTo(h.Out); err != nil {
		return err
	}
	if h.CSVWriter != nil {
		return h.CSVWriter(name, func(f *os.File) error { return tab.WriteCSV(f) })
	}
	return nil
}

// Run executes one experiment by id.
func (h *Harness) Run(id string) error {
	switch id {
	case "fig1a":
		return h.Fig1a()
	case "fig1b":
		return h.Fig1b()
	case "fig1c":
		return h.Fig1c()
	case "fig2a":
		return h.Fig2a()
	case "fig2b":
		return h.Fig2b()
	case "volume":
		return h.Volume()
	case "homog":
		return h.Homog()
	case "ablation-p2c":
		return h.AblationP2C()
	case "ablation-samples":
		return h.AblationSamples()
	case "ablation-oracle":
		return h.AblationOracle()
	case "ablation-routing":
		return h.AblationRouting()
	case "access-skew":
		return h.AccessSkew()
	default:
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// capDistributions returns the paper's three degree-cap distributions.
func capDistributions() []degreedist.Distribution {
	return []degreedist.Distribution{
		degreedist.Constant(27),
		degreedist.PaperRealistic(),
		degreedist.PaperStepped(),
	}
}

// growthRun builds one network along the growth checkpoints and returns the
// per-checkpoint measurements.
func (h *Harness) growthRun(system sim.System, caps degreedist.Distribution, mutate func(*sim.Config)) ([]sim.Measurement, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = h.Seed
	cfg.TargetSize = h.Scale.Target
	cfg.Checkpoints = h.Scale.GrowthCheckpoints
	cfg.Keys = keydist.GnutellaLike()
	cfg.Degrees = caps
	cfg.System = system
	cfg.QueriesPerMeasure = h.Scale.Queries
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	return res.Checkpoints, nil
}

// buildAt grows a fresh network to exactly size and rewires it once.
func (h *Harness) buildAt(size int, system sim.System, caps degreedist.Distribution, mutate func(*sim.Config)) (*sim.Sim, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = h.Seed
	cfg.TargetSize = size
	cfg.Checkpoints = []int{size}
	cfg.Keys = keydist.GnutellaLike()
	cfg.Degrees = caps
	cfg.System = system
	cfg.QueriesPerMeasure = h.Scale.Queries
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	s.GrowTo(size)
	s.RewireAll()
	return s, nil
}
