package ring

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// build creates a network+ring with the given keys; caps are generous.
func build(keys ...keyspace.Key) (*graph.Network, *Ring) {
	g := graph.New()
	r := New(g)
	for _, k := range keys {
		n := g.Add(k, 100, 100)
		r.Insert(n.ID)
	}
	return g, r
}

func TestInsertMaintainsPointers(t *testing.T) {
	g, r := build(50, 10, 30, 90, 70)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Walk the ring from the smallest key; must visit keys in order.
	start := r.OwnerOf(0)
	keys := []keyspace.Key{g.Node(start).Key}
	for id := g.Node(start).Succ; id != start; id = g.Node(id).Succ {
		keys = append(keys, g.Node(id).Key)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("ring walk out of order: %v", keys)
	}
	if len(keys) != 5 {
		t.Errorf("walk visited %d peers", len(keys))
	}
}

func TestSingleNodeRing(t *testing.T) {
	g, r := build(42)
	id := r.OwnerOf(7)
	n := g.Node(id)
	if n.Succ != id || n.Pred != id {
		t.Error("single peer must point at itself")
	}
	if r.OwnerOf(10000) != id {
		t.Error("single peer owns everything")
	}
}

func TestOwnerOf(t *testing.T) {
	_, r := build(100, 200, 300)
	cases := map[keyspace.Key]keyspace.Key{
		100: 100, 150: 200, 200: 200, 250: 300, 300: 300,
		301: 100, // wraps
		0:   100,
	}
	for k, wantKey := range cases {
		got := r.net.Node(r.OwnerOf(k)).Key
		if got != wantKey {
			t.Errorf("OwnerOf(%d) has key %d, want %d", k, got, wantKey)
		}
	}
}

func TestKillRestitches(t *testing.T) {
	g, r := build(10, 20, 30, 40)
	mid := r.OwnerOf(20)
	r.Kill(mid)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// 20's neighbours must now bypass it.
	n10 := g.Node(r.OwnerOf(10))
	if g.Node(n10.Succ).Key != 30 {
		t.Errorf("succ of 10 is %d, want 30", g.Node(n10.Succ).Key)
	}
	if r.net.Node(r.OwnerOf(15)).Key != 30 {
		t.Error("ownership must skip dead peers")
	}
	r.Kill(mid) // idempotent
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorPredecessorAroundDead(t *testing.T) {
	g, r := build(10, 20, 30)
	id20 := r.OwnerOf(20)
	r.Kill(id20)
	// Successor from the dead peer's position still works.
	if g.Node(r.Successor(id20)).Key != 30 {
		t.Error("Successor from dead position wrong")
	}
	if g.Node(r.Predecessor(id20)).Key != 10 {
		t.Error("Predecessor from dead position wrong")
	}
}

func TestDuplicateKeysOrderedByID(t *testing.T) {
	g, r := build(50, 50, 50)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All three must be on the ring and reachable.
	start := r.OwnerOf(0)
	count := 1
	for id := g.Node(start).Succ; id != start; id = g.Node(id).Succ {
		count++
	}
	if count != 3 {
		t.Errorf("ring cycle has %d peers, want 3", count)
	}
}

func TestScanRange(t *testing.T) {
	g, r := build(10, 20, 30, 40, 50)
	got := keysOf(g, r.AliveInRange(keyspace.Range{Start: 15, End: 45}))
	want := []keyspace.Key{20, 30, 40}
	if !equalKeys(got, want) {
		t.Errorf("AliveInRange = %v, want %v", got, want)
	}
	// Wrapping range.
	got = keysOf(g, r.AliveInRange(keyspace.Range{Start: 45, End: 15}))
	want = []keyspace.Key{50, 10}
	if !equalKeys(got, want) {
		t.Errorf("wrapping AliveInRange = %v, want %v", got, want)
	}
	// Full range.
	if n := r.CountAliveInRange(keyspace.FullRange()); n != 5 {
		t.Errorf("full-range count = %d", n)
	}
	// Early stop.
	visits := 0
	r.ScanRange(keyspace.FullRange(), func(graph.NodeID) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Errorf("early stop visited %d", visits)
	}
}

func TestScanRangeSkipsDead(t *testing.T) {
	g, r := build(10, 20, 30)
	r.Kill(r.OwnerOf(20))
	got := keysOf(g, r.AliveInRange(keyspace.Range{Start: 5, End: 35}))
	if !equalKeys(got, []keyspace.Key{10, 30}) {
		t.Errorf("got %v", got)
	}
}

func TestRandomAliveOnlyReturnsAlive(t *testing.T) {
	g, r := build(1, 2, 3, 4, 5, 6, 7, 8)
	r.Kill(r.OwnerOf(2))
	r.Kill(r.OwnerOf(5))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if !g.Node(r.RandomAlive(rng)).Alive {
			t.Fatal("RandomAlive returned a dead peer")
		}
	}
}

func TestStabilizeMatchesIncremental(t *testing.T) {
	g, r := build(5, 15, 25, 35, 45, 55)
	r.Kill(r.OwnerOf(25))
	r.Kill(r.OwnerOf(55))
	// Capture incremental pointers, recompute, compare via invariants.
	type ptrs struct{ s, p graph.NodeID }
	before := map[graph.NodeID]ptrs{}
	g.ForEachAlive(func(n *graph.Node) { before[n.ID] = ptrs{n.Succ, n.Pred} })
	r.Stabilize()
	g.ForEachAlive(func(n *graph.Node) {
		if b := before[n.ID]; b.s != n.Succ || b.p != n.Pred {
			t.Errorf("node %d: incremental (%d,%d) vs stabilized (%d,%d)", n.ID, b.s, b.p, n.Succ, n.Pred)
		}
	})
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New()
	r := New(g)
	var ids []graph.NodeID
	for i := 0; i < 300; i++ {
		n := g.Add(keyspace.Key(rng.Uint64()), 10, 10)
		r.Insert(n.ID)
		ids = append(ids, n.ID)
		if i%10 == 0 && len(ids) > 5 {
			r.Kill(ids[rng.Intn(len(ids))])
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func keysOf(g *graph.Network, ids []graph.NodeID) []keyspace.Key {
	out := make([]keyspace.Key, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Key
	}
	return out
}

func equalKeys(a, b []keyspace.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
