package storage

import "github.com/oscar-overlay/oscar/internal/keyspace"

// MutOp enumerates the primitive, replayable mutations of a Store. Every
// public mutator reduces to a sequence of these, each emitted to the
// store's sink (SetSink) at the moment it is applied — the same hook
// discipline the digest tree uses, so a write-ahead log fed by the sink
// can never diverge from the digest.
//
// The set is closed under idempotent replay: for any log of mutations L
// and state S, apply(apply(S, L), L) == apply(S, L). Each per-key op is
// absolute (the last record for a key dictates its final state) and MutGC
// is monotone in its cutoff, which is what lets recovery replay a log
// tail over a snapshot that may already include a prefix of it.
type MutOp uint8

const (
	// MutPut stores Value under Key, clearing any tombstone.
	MutPut MutOp = iota + 1
	// MutTombstone removes the live item and records Key deleted at At
	// (newest timestamp wins) — Delete, DeleteAt, SetTombstone and
	// InsertTombstones all reduce to it.
	MutTombstone
	// MutDrop removes every trace of Key: live item and tombstone alike.
	MutDrop
	// MutRemoveItem removes the live item only, leaving tombstones — the
	// per-item record of ExtractRange/ExtractRangeLimit handing keys to a
	// new owner.
	MutRemoveItem
	// MutRemoveTomb removes the tombstone only — the per-key record of
	// ExtractTombstones.
	MutRemoveTomb
	// MutGC discards tombstones recorded before At.
	MutGC
)

// Mutation is one primitive store mutation: the unit a sink observes and
// a write-ahead log replays.
type Mutation struct {
	Op    MutOp
	Key   keyspace.Key
	Value []byte
	At    int64
}

// SetSink installs fn to observe every primitive mutation as it is
// applied, or removes the observer when fn is nil. The sink runs
// synchronously under the caller of the mutating method — whatever lock
// serialises the store's mutations serialises the sink — so a
// write-ahead log fed by it records mutations in exactly apply order.
func (s *Store) SetSink(fn func(Mutation)) { s.sink = fn }

// emit reports one applied mutation to the sink, if any.
func (s *Store) emit(m Mutation) {
	if s.sink != nil {
		s.sink(m)
	}
}

// ApplyMutation re-applies one recorded mutation — the replay half of the
// sink contract. Replay into a store with a sink attached re-emits (a
// recovering store attaches its sink only after replay).
func (s *Store) ApplyMutation(m Mutation) {
	switch m.Op {
	case MutPut:
		s.Put(m.Key, m.Value)
	case MutTombstone:
		s.SetTombstone(m.Key, m.At)
	case MutDrop:
		s.Drop(m.Key)
	case MutRemoveItem:
		s.emit(Mutation{Op: MutRemoveItem, Key: m.Key})
		s.removeItem(m.Key)
	case MutRemoveTomb:
		s.emit(Mutation{Op: MutRemoveTomb, Key: m.Key})
		s.clearTombstone(m.Key)
	case MutGC:
		s.GCTombstones(m.At)
	}
}

// Tombstones returns all tombstones in key order (a copy).
func (s *Store) Tombstones() []Tombstone {
	return append([]Tombstone(nil), s.tombs...)
}
