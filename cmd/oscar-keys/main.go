// Command oscar-keys inspects the bundled key and degree distributions:
// it prints density tables (the data behind Figure 1(a) and the key-space
// skew plots) so they can be eyeballed or piped into a plotting tool.
//
// Examples:
//
//	oscar-keys -keys gnutella -bins 64
//	oscar-keys -degrees realistic
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-keys: ")

	var (
		keys    = flag.String("keys", "", "key distribution to inspect: uniform|gnutella|zipf")
		degrees = flag.String("degrees", "", "degree distribution to inspect: constant|stepped|realistic")
		bins    = flag.Int("bins", 50, "histogram bins for key densities")
		samples = flag.Int("samples", 200000, "sample draws")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *keys == "" && *degrees == "" {
		*keys = "gnutella" // default inspection target
	}
	rnd := rand.New(rand.NewSource(*seed))

	if *keys != "" {
		d, err := keydist.ByName(*keys)
		if err != nil {
			log.Fatal(err)
		}
		hist, err := metrics.NewHistogram(0, 1, *bins)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *samples; i++ {
			hist.Add(d.Sample(rnd).Float())
		}
		fmt.Printf("# key distribution %q: density over the unit circle (%d samples)\n", d.Name(), *samples)
		tab := metrics.NewTable("bin_center", "density_empirical", "cdf_analytic")
		for i := 0; i < *bins; i++ {
			c := hist.BinCenter(i)
			tab.AddRow(c, hist.Density(i), d.CDF(c))
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *degrees != "" {
		d, err := degreedist.ByName(*degrees, 27)
		if err != nil {
			log.Fatal(err)
		}
		pmf := metrics.NewIntPMF()
		for i := 0; i < *samples; i++ {
			pmf.Add(d.Sample(rnd))
		}
		fmt.Printf("# degree distribution %q: mean %.3f (%d samples)\n", d.Name(), d.Mean(), *samples)
		tab := metrics.NewTable("degree", "pdf_empirical")
		for _, deg := range pmf.Support() {
			tab.AddRow(deg, pmf.Prob(deg))
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
