package routing

import (
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/smallworld"
)

// buildRing creates n evenly spaced peers; withLinks adds harmonic long
// links via the smallworld reference so greedy has shortcuts.
func buildRing(t *testing.T, n int, withLinks bool, seed int64) (*graph.Network, *ring.Ring) {
	t.Helper()
	g := graph.New()
	r := ring.New(g)
	step := keyspace.MaxKey / keyspace.Key(n)
	for i := 0; i < n; i++ {
		node := g.Add(keyspace.Key(i)*step, 16, 16)
		r.Insert(node.ID)
	}
	if withLinks {
		smallworld.WireAll(g, r, 2, rand.New(rand.NewSource(seed)))
	}
	return g, r
}

func TestGreedyReachesOwner(t *testing.T) {
	g, r := buildRing(t, 256, true, 1)
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		from := r.RandomAlive(rnd)
		target := keyspace.Key(rnd.Uint64())
		res := Greedy(g, r, from, target)
		if !res.Found {
			t.Fatalf("lookup failed from %d to %v", from, target)
		}
		if res.Path[len(res.Path)-1] != res.Owner {
			t.Fatal("path does not end at owner")
		}
		owner := g.Node(res.Owner)
		pred := g.Node(owner.Pred)
		if !target.BetweenIncl(pred.Key, owner.Key) {
			t.Fatalf("owner %d does not own target %v", res.Owner, target)
		}
		if err := Validate(g, res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedySelfLookup(t *testing.T) {
	g, r := buildRing(t, 64, true, 3)
	// Looking up your own key terminates with zero hops.
	id := r.OwnerOf(0)
	res := Greedy(g, r, id, g.Node(id).Key)
	if !res.Found || res.Hops != 0 {
		t.Errorf("self lookup: found=%v hops=%d", res.Found, res.Hops)
	}
}

func TestGreedyRingOnlyFollowsSuccessors(t *testing.T) {
	g, r := buildRing(t, 32, false, 0)
	// Without long links, cost from peer 0 to the key of peer 20 is 20 hops.
	from := r.OwnerOf(0)
	target := g.Node(r.OwnerOf(keyspace.MaxKey / 32 * 20)).Key
	res := Greedy(g, r, from, target)
	if !res.Found {
		t.Fatal("ring-only lookup failed")
	}
	if res.Hops != 20 {
		t.Errorf("ring-only hops = %d, want 20", res.Hops)
	}
}

func TestGreedyShortcutsHelp(t *testing.T) {
	gPlain, rPlain := buildRing(t, 512, false, 4)
	gLinked, rLinked := buildRing(t, 512, true, 4)
	rnd := rand.New(rand.NewSource(5))
	var plain, linked int
	for trial := 0; trial < 200; trial++ {
		target := keyspace.Key(rnd.Uint64())
		from := graph.NodeID(rnd.Intn(512))
		plain += Greedy(gPlain, rPlain, from, target).Hops
		linked += Greedy(gLinked, rLinked, from, target).Hops
	}
	if linked*4 > plain {
		t.Errorf("long links should cut cost ≥4x: plain=%d linked=%d", plain, linked)
	}
}

func TestGreedyNeverOvershootsExceptFinalHop(t *testing.T) {
	g, r := buildRing(t, 256, true, 6)
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		from := r.RandomAlive(rnd)
		target := keyspace.Key(rnd.Uint64())
		res := Greedy(g, r, from, target)
		for i := 1; i < len(res.Path); i++ {
			prev := g.Node(res.Path[i-1])
			cur := g.Node(res.Path[i])
			moved := prev.Key.Distance(cur.Key)
			toTarget := prev.Key.Distance(target)
			if moved > toTarget && res.Path[i] != res.Owner {
				t.Fatalf("hop %d overshot mid-route", i)
			}
		}
	}
}

func TestGreedyBacktrackEqualsGreedyWhenHealthy(t *testing.T) {
	g, r := buildRing(t, 256, true, 8)
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		from := r.RandomAlive(rnd)
		target := keyspace.Key(rnd.Uint64())
		a := Greedy(g, r, from, target)
		b := GreedyBacktrack(g, r, from, target)
		if !b.Found {
			t.Fatal("backtracking lookup failed on a healthy network")
		}
		if b.Probes != 0 || b.Backtracks != 0 {
			t.Fatalf("healthy network produced probes=%d backtracks=%d", b.Probes, b.Backtracks)
		}
		if a.Owner != b.Owner {
			t.Fatal("routers disagree on owner")
		}
	}
}

func TestGreedyBacktrackSurvivesChurn(t *testing.T) {
	for _, frac := range []float64{0.10, 0.33} {
		g, r := buildRing(t, 600, true, 10)
		rnd := rand.New(rand.NewSource(11))
		// Kill peers; ring restitches, long links go stale.
		victims := int(frac * 600)
		for i := 0; i < victims; i++ {
			r.Kill(r.RandomAlive(rnd))
		}
		var totalCost, totalProbes int
		for trial := 0; trial < 300; trial++ {
			from := r.RandomAlive(rnd)
			target := g.Node(r.RandomAlive(rnd)).Key
			res := GreedyBacktrack(g, r, from, target)
			if !res.Found {
				t.Fatalf("lookup failed at %.0f%% churn", frac*100)
			}
			if cur := res.Path[len(res.Path)-1]; cur != res.Owner {
				t.Fatal("path does not end at owner")
			}
			totalCost += res.Cost()
			totalProbes += res.Probes
		}
		if totalProbes == 0 {
			t.Errorf("at %.0f%% churn no dead links were probed — stale-link model broken", frac*100)
		}
		t.Logf("churn %.0f%%: avg cost %.2f, avg probes %.2f", frac*100,
			float64(totalCost)/300, float64(totalProbes)/300)
	}
}

func TestGreedyBacktrackNeverVisitsDead(t *testing.T) {
	g, r := buildRing(t, 300, true, 12)
	rnd := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		r.Kill(r.RandomAlive(rnd))
	}
	for trial := 0; trial < 100; trial++ {
		from := r.RandomAlive(rnd)
		target := g.Node(r.RandomAlive(rnd)).Key
		res := GreedyBacktrack(g, r, from, target)
		for _, id := range res.Path {
			if !g.Node(id).Alive {
				t.Fatal("query visited a dead peer")
			}
		}
	}
}

// TestGreedyBacktrackPopsOnStalePointers exercises the DFS stack
// deterministically: the ring is *not yet* stabilised, so one peer's
// successor pointer still references a corpse, producing a genuine dead end
// that the query must back out of. (With instant stabilisation — the
// default churn model — dead ends cannot occur; see the bidirectional test.)
func TestGreedyBacktrackPopsOnStalePointers(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	// Alive peers on the ring: A=10, B=20, L=40, E=50.
	a := g.Add(10, 8, 8)
	b := g.Add(20, 8, 8)
	l := g.Add(40, 8, 8)
	e := g.Add(50, 8, 8)
	for _, n := range []graph.NodeID{a.ID, b.ID, l.ID, e.ID} {
		r.Insert(n)
	}
	// The corpse never joins the ring index (it died earlier) but L's
	// successor pointer is still stale and references it.
	c := g.Add(45, 8, 8)
	g.Kill(c.ID)
	l.Succ = c.ID
	// A prefers its long link to L (progress 30) over its successor B
	// (progress 10); B holds the only working route to E.
	if err := g.AddLink(a.ID, l.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(b.ID, e.ID); err != nil {
		t.Fatal(err)
	}
	// Route A → key 50 (owner E): greedy goes A→L, probes L's dead
	// successor, dead-ends, backtracks to A, proceeds A→B→E.
	res := GreedyBacktrack(g, r, a.ID, 50)
	if !res.Found || res.Owner != e.ID {
		t.Fatalf("lookup failed: %+v", res)
	}
	if res.Backtracks == 0 {
		t.Errorf("expected at least one backtrack, got %+v", res)
	}
	if res.Probes == 0 {
		t.Errorf("expected a dead probe, got %+v", res)
	}
	for _, id := range res.Path {
		if !g.Node(id).Alive {
			t.Error("query visited the corpse")
		}
	}
}

func TestCostDecomposition(t *testing.T) {
	res := Result{Hops: 5, Probes: 3, Backtracks: 2}
	if res.Cost() != 10 {
		t.Errorf("Cost = %d", res.Cost())
	}
}

func TestValidate(t *testing.T) {
	g, r := buildRing(t, 16, false, 0)
	res := Greedy(g, r, r.OwnerOf(0), 12345)
	if err := Validate(g, res); err != nil {
		t.Error(err)
	}
	if err := Validate(g, Result{}); err == nil {
		t.Error("empty path must be invalid")
	}
	bad := Result{Found: true, Owner: 3, Path: []graph.NodeID{1, 2}}
	if err := Validate(g, bad); err == nil {
		t.Error("found-but-wrong-endpoint must be invalid")
	}
}
