// Blobstream: the streaming read path end to end — store a 16 MiB blob as
// checksummed chunks in one contiguous key sub-range, stream it back
// through the paged Scan-backed BlobReader, and kill the node owning the
// blob's arc mid-stream. With replication the scan cursor resumes through
// the owner's replica chain, so the stream completes and verifies intact.
// The same scenario runs on both live fabrics: the in-memory cluster and
// real loopback TCP sockets.
//
//	go run ./examples/blobstream
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	mrand "math/rand"
	"time"

	oscar "github.com/oscar-overlay/oscar"
)

const blobSize = 16 << 20 // 16 MiB

func main() {
	ctx := context.Background()

	// A deterministic pseudo-random blob: incompressible, easy to verify.
	data := make([]byte, blobSize)
	mrand.New(mrand.NewSource(42)).Read(data)

	fmt.Println("== in-memory fabric ==")
	cluster, err := oscar.StartCluster(ctx, 10,
		oscar.WithSeed(7),
		oscar.WithReplicas(3),
		oscar.WithAutoMaintenance(25*time.Millisecond),
		oscar.WithStabilizeRounds(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	runScenario(ctx, cluster.Nodes(), data)
	cluster.Close()

	fmt.Println("\n== TCP fabric (loopback sockets) ==")
	const size = 8
	var nodes []*oscar.Node
	for i := 0; i < size; i++ {
		n, err := oscar.StartNode(oscar.NodeConfig{
			Listen:          "127.0.0.1:0",
			Key:             oscar.KeyFromFloat(float64(i)/size + 0.001),
			MaxIn:           8,
			MaxOut:          8,
			Replicas:        3,
			AutoMaintenance: 25 * time.Millisecond,
			Seed:            int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				log.Fatalf("node %d join: %v", i, err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	runScenario(ctx, nodes, data)
	for _, n := range nodes {
		_ = n.Close()
	}
	fmt.Println("\nboth fabrics streamed the blob intact through an owner crash")
}

// runScenario stores the blob, streams a third of it back, crashes the
// node owning the blob's arc, and verifies the rest of the stream arrives
// bit-identical through the replica chain.
func runScenario(ctx context.Context, nodes []*oscar.Node, data []byte) {
	base := oscar.KeyFromFloat(0.3)

	start := time.Now()
	m, err := nodes[0].PutBlob(ctx, base, bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d bytes as %d chunks of %d (crc %08x) in %v\n",
		m.Size, m.Chunks, m.ChunkSize, m.CRC, time.Since(start).Round(time.Millisecond))

	// The blob's chunks live in one contiguous arc, so one owner holds
	// them all — the node we will crash. Read through a different node.
	route, err := nodes[0].Lookup(ctx, base+1)
	if err != nil {
		log.Fatal(err)
	}
	var victim, reader *oscar.Node
	for _, n := range nodes {
		if n.Addr() == route.Owner.Addr {
			victim = n
		}
	}
	for _, n := range nodes {
		if n != victim {
			reader = n
			break
		}
	}
	if victim == nil {
		log.Fatal("blob owner is not one of our nodes")
	}

	br, err := reader.GetBlob(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	defer br.Close()

	var got bytes.Buffer
	third := int64(len(data) / 3)
	if _, err := io.CopyN(&got, br, third); err != nil {
		log.Fatalf("first third: %v", err)
	}
	fmt.Printf("streamed %d bytes; crashing blob owner %s mid-stream…\n", got.Len(), victim.Addr())
	_ = victim.Close()

	start = time.Now()
	if _, err := io.Copy(&got, br); err != nil {
		log.Fatalf("after crash, at byte %d: %v", got.Len(), err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		log.Fatalf("blob mismatch: %d bytes read", got.Len())
	}
	fmt.Printf("rest of the blob (%d bytes) arrived via the replica chain in %v — verified intact\n",
		int64(len(data))-third, time.Since(start).Round(time.Millisecond))
}
