package oscar

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/routecache"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Client returns the context-first Client facade over this overlay. The
// facade shares the overlay's state: operations through either surface see
// each other's writes, and the overlay's mutex makes them safe to mix from
// multiple goroutines. The simulator executes synchronously, so contexts
// are honoured at operation entry (a cancelled context aborts the call
// before any routing happens).
func (o *Overlay) Client() Client {
	return o.ReplicatedClient(1)
}

// ReplicatedClient returns the Client facade with the given replication
// factor: every Put places copies on the owner's replicas-1 ring
// successors, Delete clears the same chain, and Get falls back through it
// — the same durability contract the live runtime implements under
// WithReplicas. replicas < 1 is treated as 1.
func (o *Overlay) ReplicatedClient(replicas int) Client {
	return o.clientWith(replicas, 1)
}

// clientWith builds the facade with a replication factor and a default
// write concern (the same normalisation NodeConfig applies: at least 1,
// at most replicas).
func (o *Overlay) clientWith(replicas, writeConcern int) *simClient {
	if replicas < 1 {
		replicas = 1
	}
	if writeConcern < 1 {
		writeConcern = 1
	}
	if writeConcern > replicas {
		writeConcern = replicas
	}
	c := &simClient{ov: o, replicas: replicas, writeConcern: writeConcern}
	c.setCaches(0, 0, 0)
	return c
}

// setCaches (re)builds the client's route and hot-key caches with the same
// normalisation the live runtime applies: size 0 means the 128-entry
// default and negative disables; TTL 0 means the 2-second default and
// negative disables aging. The hot-key cache shares the route cache's TTL.
func (c *simClient) setCaches(routeSize int, ttl time.Duration, hotSize int) {
	if routeSize == 0 {
		routeSize = 128
	}
	if hotSize == 0 {
		hotSize = 128
	}
	if ttl == 0 {
		ttl = 2 * time.Second
	}
	c.routes = routecache.New[NodeID](routeSize, ttl)
	c.hot = routecache.New[[]byte](hotSize, ttl)
}

// simClient adapts the simulator Overlay to the Client interface. Each
// operation runs under the overlay's mutex, so routing and the data access
// are one atomic step — the in-process analogue of the owner executing the
// data op locally.
type simClient struct {
	ov           *Overlay
	replicas     int
	writeConcern int
	closed       atomic.Bool

	// routes caches key → owner resolutions and hot caches recently read
	// values — the simulator mirror of the live runtime's caching layer,
	// so the three-backend conformance table exercises one contract. Both
	// are validated against the sim graph on every hit (ownership for
	// routes, a digest comparison for values), never trusted blind.
	routes *routecache.Cache[NodeID]
	hot    *routecache.Cache[[]byte]

	routeHits, routeMisses atomic.Uint64
	hotHits, hotMisses     atomic.Uint64
}

// concern resolves the write concern for one call: the context override
// when present, the client default otherwise.
func (c *simClient) concern(ctx context.Context) int {
	if w := writeConcernFrom(ctx); w > 0 {
		return w
	}
	return c.writeConcern
}

// begin gates every operation on the context and the closed flag.
func (c *simClient) begin(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.closed.Load() {
		return ErrClosed
	}
	return nil
}

// ownerLocked builds the backend-neutral owner ref for a simulator peer.
// Callers hold c.ov.mu.
func (c *simClient) ownerLocked(id NodeID) OwnerRef {
	return OwnerRef{ID: id, Key: c.ov.sim.Net().Node(id).Key}
}

// simOwnsLocked reports whether peer id currently owns key on the sim
// graph: alive, with a defined predecessor, and key on the clockwise arc
// (pred, id]. This is the validation gate every route-cache hit passes —
// the sim analogue of the live runtime's ownership check at the owner.
// Callers hold o.mu.
func (o *Overlay) simOwnsLocked(id NodeID, key Key) bool {
	net := o.sim.Net()
	node := net.Node(id)
	if !node.Alive {
		return false
	}
	if node.Pred == id {
		return true // one-peer ring owns the whole circle
	}
	if node.Pred == graph.NoNode {
		return false // arc undefined: force a fresh lookup
	}
	return key.BetweenIncl(net.Node(node.Pred).Key, node.Key)
}

// resolveLocked finds the owner of key, preferring a validated route-cache
// hit: a cached owner is trusted only while the sim graph still shows it
// alive and owning the key's arc (cost 1, the validation probe). Anything
// else falls back to a routed lookup and refreshes the cache, so a stale
// entry costs one wasted check, never a wrong answer. Callers hold o.mu.
func (c *simClient) resolveLocked(key Key) (NodeID, int, error) {
	o := c.ov
	if id, ok := c.routes.Get(key); ok {
		if o.simOwnsLocked(id, key) {
			c.routeHits.Add(1)
			return id, 1, nil
		}
		c.routes.Invalidate(key)
	}
	if c.routes != nil {
		c.routeMisses.Add(1)
	}
	route := o.lookupLocked(key)
	if !route.Found {
		return 0, route.Cost(), fmt.Errorf("routing failed")
	}
	c.routes.Put(key, route.Owner)
	return route.Owner, route.Cost(), nil
}

// hotGetLocked tries to serve a read from the hot-key cache: the cached
// value counts only if a digest comparison against the validated owner's
// own copy confirms it — the sim analogue of the live OpKeyHash check.
// served=true means the response is final (a confirmed value, or an
// authoritative not-found from an owner tombstone); served=false falls
// through to the regular replicated read. Callers hold o.mu.
func (c *simClient) hotGetLocked(key Key) (GetResponse, bool, error) {
	if c.hot == nil {
		return GetResponse{}, false, nil
	}
	val, ok := c.hot.Get(key)
	if !ok {
		c.hotMisses.Add(1)
		return GetResponse{}, false, nil
	}
	o := c.ov
	id, cached := c.routes.Get(key)
	if !cached || !o.simOwnsLocked(id, key) {
		if cached {
			c.routes.Invalidate(key)
		}
		c.hotMisses.Add(1)
		return GetResponse{}, false, nil
	}
	v, found, deleted := o.peekLocked(id, key)
	switch {
	case found && antientropy.ItemHash(key, v) == antientropy.ItemHash(key, val):
		c.hotHits.Add(1)
		return GetResponse{Owner: c.ownerLocked(id), Cost: 1, Value: val}, true, nil
	case found:
		// The owner holds a newer value: the cached copy lost.
		c.hot.Invalidate(key)
	case deleted:
		// An owner tombstone is authoritative: the read ends as not-found
		// and the stale cached value is evicted.
		c.hot.Invalidate(key)
		c.hotMisses.Add(1)
		return GetResponse{Owner: c.ownerLocked(id), Cost: 1}, true, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	c.hotMisses.Add(1)
	return GetResponse{}, false, nil
}

func (c *simClient) Put(ctx context.Context, key Key, value []byte) (PutResponse, error) {
	if err := c.begin(ctx); err != nil {
		return PutResponse{}, err
	}
	o := c.ov
	o.mu.Lock()
	defer o.mu.Unlock()
	owner, cost, err := c.resolveLocked(key)
	if err != nil {
		return PutResponse{Cost: cost}, fmt.Errorf("%w: put %v", ErrRoutingFailed, key)
	}
	res := o.putAtLocked(owner, cost, key, value, c.replicas)
	c.hot.Invalidate(key)
	out := PutResponse{Owner: c.ownerLocked(res.Owner), Cost: res.Cost, Replaced: res.Replaced, Acks: res.Acks}
	if w := c.concern(ctx); res.Acks < w {
		// The write holds wherever it was placed; the shortfall is
		// reported, mirroring the live runtime's contract.
		return out, &WriteConcernError{Acks: res.Acks, Want: w}
	}
	return out, nil
}

func (c *simClient) Get(ctx context.Context, key Key) (GetResponse, error) {
	if err := c.begin(ctx); err != nil {
		return GetResponse{}, err
	}
	o := c.ov
	o.mu.Lock()
	defer o.mu.Unlock()
	if res, served, err := c.hotGetLocked(key); served {
		return res, err
	}
	owner, cost, err := c.resolveLocked(key)
	if err != nil {
		return GetResponse{Cost: cost}, fmt.Errorf("%w: get %v", ErrRoutingFailed, key)
	}
	servedBy, value, found, cost := o.getAtLocked(owner, cost, key, c.replicas)
	out := GetResponse{Owner: c.ownerLocked(servedBy), Cost: cost}
	if !found {
		c.hot.Invalidate(key)
		return out, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	c.hot.Put(key, value)
	out.Value = value
	return out, nil
}

func (c *simClient) Delete(ctx context.Context, key Key) (DeleteResponse, error) {
	if err := c.begin(ctx); err != nil {
		return DeleteResponse{}, err
	}
	o := c.ov
	o.mu.Lock()
	defer o.mu.Unlock()
	owner, cost, err := c.resolveLocked(key)
	if err != nil {
		return DeleteResponse{Cost: cost}, fmt.Errorf("%w: delete %v", ErrRoutingFailed, key)
	}
	res := o.deleteAtLocked(owner, cost, key, c.replicas)
	c.hot.Invalidate(key)
	out := DeleteResponse{Owner: c.ownerLocked(res.Owner), Cost: res.Cost, Acks: res.Acks}
	if w := c.concern(ctx); res.Acks < w {
		return out, &WriteConcernError{Acks: res.Acks, Want: w}
	}
	if !res.Existed {
		return out, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	return out, nil
}

// simScanSession is the simulator's shard walker behind Scan: one merged
// page per call under the overlay mutex, so a long scan interleaves with
// writes and churn between pages exactly like the live backend.
type simScanSession struct {
	c  *simClient
	rg Range

	cur     NodeID
	have    bool
	counted bool
}

func (s *simScanSession) nextPage(cursor Key, want int) (scanChunk, error) {
	o := s.c.ov
	o.mu.Lock()
	defer o.mu.Unlock()
	var out scanChunk
	rem := Range{Start: cursor, End: s.rg.End}
	net := o.sim.Net()
	maxItems := storage.PageMaxItems
	if want > 0 && want < maxItems {
		maxItems = want
	}
	for hops := 0; hops <= net.Len()+1; hops++ {
		// A shard owner that died between pages: re-route the cursor. The
		// new owner's replica store carries the dead peer's arc, so the
		// resumed page loses nothing (the sim analogue of chain fallback).
		if s.have && !net.Node(s.cur).Alive {
			s.have = false
		}
		if !s.have {
			owner, cost, err := s.c.resolveLocked(cursor)
			out.cost += cost
			if err != nil {
				return out, fmt.Errorf("%w: scan at %v", ErrRoutingFailed, cursor)
			}
			s.cur, s.have, s.counted = owner, true, false
		}
		node := net.Node(s.cur)
		// Clip the merged view to the arc this peer serves
		// authoritatively — keys clockwise up to its own position — so
		// replica copies of live predecessors across the circle never
		// leak into the page and skip the shards in between (the same
		// clip the live OpScan handler applies).
		clipped := rem
		selfEnd := node.Key + 1
		var items []Item
		more := false
		if rem.Start != selfEnd {
			if rem.Start.Distance(selfEnd) < rem.Start.Distance(rem.End) {
				clipped.End = selfEnd
			}
			items, more = storage.ScanPageMerged(o.storeFor(s.cur), o.replStoreFor(s.cur), clipped, maxItems, storage.PageMaxBytes)
		}
		out.cost++
		if !s.counted {
			out.peers++
			s.counted = true
		}
		out.items = items
		if more {
			return out, nil
		}
		if node.Succ == s.cur || !rem.Contains(node.Key) {
			out.done = true
			return out, nil
		}
		s.cur, s.counted = node.Succ, false
		if len(items) > 0 {
			return out, nil
		}
		// Empty shard: keep walking within this page call.
	}
	return out, fmt.Errorf("oscar: scan did not terminate")
}

// Scan implements Client over the simulator: the same paged walk as the
// live backend, against the overlay's in-process shards.
func (c *simClient) Scan(ctx context.Context, start, end Key, opts ...ScanOption) *Scanner {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.begin(ctx); err != nil {
		return failedScanner(err)
	}
	sess := &simScanSession{c: c, rg: Range{Start: start, End: end}}
	return newScanner(ctx, start, end, opts, func(ctx context.Context, cursor Key, want int) (scanChunk, error) {
		if c.closed.Load() {
			return scanChunk{}, ErrClosed
		}
		return sess.nextPage(cursor, want)
	})
}

// RangeQuery implements Client.
//
// Deprecated: use Scan — RangeQuery buffers the whole result in memory
// and is now a thin wrapper over the same paged scan.
func (c *simClient) RangeQuery(ctx context.Context, start, end Key, limit int) (RangeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return drainScanner(c.Scan(ctx, start, end, WithLimit(limit)))
}

// PutBlob implements Client.
func (c *simClient) PutBlob(ctx context.Context, base Key, r io.Reader, opts ...BlobOption) (BlobManifest, error) {
	return putBlob(ctx, c, base, r, opts)
}

// GetBlob implements Client.
func (c *simClient) GetBlob(ctx context.Context, base Key) (*BlobReader, error) {
	return getBlob(ctx, c, base)
}

// DeleteBlob implements Client.
func (c *simClient) DeleteBlob(ctx context.Context, base Key) error {
	return deleteBlob(ctx, c, base)
}

func (c *simClient) Lookup(ctx context.Context, key Key) (LookupResponse, error) {
	if err := c.begin(ctx); err != nil {
		return LookupResponse{}, err
	}
	o := c.ov
	o.mu.Lock()
	defer o.mu.Unlock()
	route := o.lookupLocked(key)
	if !route.Found {
		return LookupResponse{Cost: route.Cost()}, fmt.Errorf("%w: lookup %v", ErrRoutingFailed, key)
	}
	return LookupResponse{Owner: c.ownerLocked(route.Owner), Cost: route.Cost()}, nil
}

func (c *simClient) Info(ctx context.Context) (InfoResponse, error) {
	if err := c.begin(ctx); err != nil {
		return InfoResponse{}, err
	}
	o := c.ov
	size := o.Size()
	o.mu.Lock()
	sync := o.syncStats
	o.mu.Unlock()
	return InfoResponse{
		Backend:      "simulator",
		Peers:        size,
		SizeEstimate: float64(size),
		Replicas:     c.replicas,
		WriteConcern: c.writeConcern,
		StoredItems:  o.StoredItems(),
		Tombstones:   o.Tombstones(),
		AntiEntropy:  sync,

		RouteCacheHits:    c.routeHits.Load(),
		RouteCacheMisses:  c.routeMisses.Load(),
		HotKeyCacheHits:   c.hotHits.Load(),
		HotKeyCacheMisses: c.hotMisses.Load(),
	}, nil
}

// Close marks the client closed. The underlying Overlay stays usable
// through its own methods (it holds no external resources).
func (c *simClient) Close() error {
	c.closed.Store(true)
	return nil
}
