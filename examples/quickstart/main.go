// Quickstart: the context-first Client API against the simulator backend —
// build an overlay, look keys up, store, fetch, delete and range-query
// data. The same Client interface runs against the live runtime (see
// examples/tcpcluster).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	oscar "github.com/oscar-overlay/oscar"
)

func main() {
	ctx := context.Background()

	// A 2000-peer overlay on a heavy-tailed key distribution with every
	// peer allowing 27 links — the paper's baseline setting, built from
	// scratch in-process. (oscar.NewClient(oscar.WithSize(2000)) builds the
	// same thing in one call; going through Build keeps the Overlay handle
	// for the measurement pass below.) The client is safe for concurrent
	// use.
	ov, err := oscar.Build(oscar.Config{Size: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cl := ov.Client()
	defer cl.Close()

	info, err := cl.Info(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay up: %d peers\n", info.Peers)

	// Route to the owner of a key. Routing is greedy over each peer's ring
	// pointers and long-range links; cost is the number of messages.
	key := oscar.KeyFromFloat(0.42)
	route, err := cl.Lookup(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup %v: owner at key %v in %d messages\n", key, route.Owner.Key, route.Cost)

	// The overlay is an order-preserving index: store items and query them
	// back, by key or by range.
	for i := 0; i < 100; i++ {
		k := oscar.KeyFromFloat(0.30 + 0.001*float64(i))
		if _, err := cl.Put(ctx, k, []byte(fmt.Sprintf("item-%03d", i))); err != nil {
			log.Fatal(err)
		}
	}
	got, err := cl.Get(ctx, oscar.KeyFromFloat(0.35))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get 0.35: %q (%d messages)\n", got.Value, got.Cost)

	res, err := cl.RangeQuery(ctx, oscar.KeyFromFloat(0.32), oscar.KeyFromFloat(0.36), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [0.32,0.36): %d items from %d peers, %d messages\n",
		len(res.Items), res.PeersScanned, res.Cost)

	// Deletes are first-class; a missing key is the typed ErrNotFound.
	if _, err := cl.Delete(ctx, oscar.KeyFromFloat(0.35)); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Get(ctx, oscar.KeyFromFloat(0.35)); errors.Is(err, oscar.ErrNotFound) {
		fmt.Println("get 0.35 after delete: not found (as it should be)")
	}

	// The lower-level Overlay API stays available for experiments: the
	// measurement pass the paper's figures are made of, on the same overlay
	// the client has been writing to.
	m := ov.Measure()
	fmt.Printf("avg search cost %.2f over %d queries; degree volume %.0f%%\n",
		m.AvgSearchCost, m.Queries, 100*m.DegreeVolume)
}
