package oscar

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/p2p"
)

// The conformance suite runs one identical scenario sequence against every
// Client backend: the simulator, the live runtime on the in-memory channel
// fabric, and the live runtime on loopback TCP. It is the contract that
// makes the Client interface mean the same thing everywhere.

// conformanceHarness is one backend under test.
type conformanceHarness struct {
	name   string
	client Client
	// crash kills a minority of peers other than the one serving the
	// client, then heals the overlay enough for routing to succeed.
	crash func()
	close func()
	// peersAfterCrash is the alive count Info must report once crash() has
	// run — the simulator from its global view, a live node from its ring
	// walk. Both backends fill the same field honestly.
	peersAfterCrash int
}

func simHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ov, err := Build(Config{Size: 64, Seed: 3, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	return &conformanceHarness{
		name:   "simulator",
		client: ov.Client(),
		crash: func() {
			ov.Crash(0.2)
			ov.RewireAll()
		},
		close:           func() {},
		peersAfterCrash: 52, // 64 - ⌊0.2·64⌋
	}
}

func memClusterHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ctx := context.Background()
	c, err := StartCluster(ctx, 16, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	return &conformanceHarness{
		name:   "p2p/mem",
		client: c.Node(0),
		crash: func() {
			for _, i := range []int{3, 7, 11} {
				_ = c.Node(i).Close()
			}
			for round := 0; round < 6; round++ {
				c.StabilizeAll(ctx)
			}
		},
		close:           func() { _ = c.Close() },
		peersAfterCrash: 13,
	}
}

func tcpClusterHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ctx := context.Background()
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.013),
			MaxIn:  8, MaxOut: 8,
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stabilize := func(rounds int) {
		for round := 0; round < rounds; round++ {
			for _, n := range nodes {
				if !n.isClosed() {
					n.Stabilize(ctx)
				}
			}
		}
	}
	return &conformanceHarness{
		name:   "p2p/tcp",
		client: nodes[0],
		crash: func() {
			_ = nodes[5].Close()
			stabilize(6)
		},
		close: func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		},
		peersAfterCrash: 7,
	}
}

// tcpMixedCodecHarness is tcpClusterHarness with half the ring pinned to
// the legacy JSON wire codec: every binary↔json pairing falls back to
// JSON via the per-connection handshake while binary↔binary pairs speak
// binary — the rolling-upgrade topology. The whole scenario table must
// pass across the mixed fabric.
func tcpMixedCodecHarness(t *testing.T) *conformanceHarness {
	t.Helper()
	ctx := context.Background()
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		codec := "binary"
		if i%2 == 1 {
			codec = "json"
		}
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.013),
			MaxIn:  8, MaxOut: 8,
			Seed:  int64(i),
			Codec: codec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The client node is binary-capable and its ring successor is pinned to
	// JSON, so after stabilisation its pool must hold at least one
	// connection that fell back to the legacy codec.
	fellBack := false
	for _, codec := range nodes[0].PeerCodecs() {
		if codec == "json" {
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatalf("no connection negotiated the JSON fallback: %v", nodes[0].PeerCodecs())
	}
	return &conformanceHarness{
		name:   "p2p/tcp-mixed-codec",
		client: nodes[0],
		crash: func() {
			_ = nodes[5].Close()
			for round := 0; round < 6; round++ {
				for _, n := range nodes {
					if !n.isClosed() {
						n.Stabilize(ctx)
					}
				}
			}
		},
		close: func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		},
		peersAfterCrash: 7,
	}
}

func TestConformance(t *testing.T) {
	harnesses := []func(*testing.T) *conformanceHarness{
		simHarness,
		memClusterHarness,
		tcpClusterHarness,
		tcpMixedCodecHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runConformance(t, h)
		})
	}
}

// runConformance is the single scenario table: every backend must pass it
// verbatim.
func runConformance(t *testing.T, h *conformanceHarness) {
	ctx := context.Background()
	cl := h.client
	key := KeyFromFloat(0.35)

	t.Run("get-absent", func(t *testing.T) {
		_, err := cl.Get(ctx, key)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("get absent = %v, want ErrNotFound", err)
		}
	})

	t.Run("put-get-roundtrip", func(t *testing.T) {
		put, err := cl.Put(ctx, key, []byte("v1"))
		if err != nil {
			t.Fatal(err)
		}
		if put.Replaced {
			t.Error("first put reported replacement")
		}
		got, err := cl.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Value) != "v1" {
			t.Fatalf("get = %q", got.Value)
		}
		if got.Cost < 0 {
			t.Error("negative cost")
		}
	})

	t.Run("put-replace", func(t *testing.T) {
		put, err := cl.Put(ctx, key, []byte("v2"))
		if err != nil {
			t.Fatal(err)
		}
		if !put.Replaced {
			t.Error("overwrite not reported as replacement")
		}
		got, err := cl.Get(ctx, key)
		if err != nil || string(got.Value) != "v2" {
			t.Fatalf("get after replace = %q, %v", got.Value, err)
		}
	})

	t.Run("lookup-agrees-with-put", func(t *testing.T) {
		a, err := cl.Lookup(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Lookup(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if a.Owner.Key != b.Owner.Key {
			t.Fatalf("repeated lookups disagree: %v vs %v", a.Owner, b.Owner)
		}
		got, err := cl.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.Owner.Key != a.Owner.Key {
			t.Fatalf("get served by %v, lookup says %v", got.Owner, a.Owner)
		}
	})

	t.Run("delete", func(t *testing.T) {
		if _, err := cl.Delete(ctx, key); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get(ctx, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after delete = %v, want ErrNotFound", err)
		}
		if _, err := cl.Delete(ctx, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("second delete = %v, want ErrNotFound", err)
		}
	})

	// Bulk data for the range scenarios: one item per fraction i/40.
	const items = 40
	for i := 0; i < items; i++ {
		if _, err := cl.Put(ctx, KeyFromFloat(float64(i)/items), []byte{byte(i)}); err != nil {
			t.Fatalf("bulk put %d: %v", i, err)
		}
	}

	t.Run("range", func(t *testing.T) {
		res, err := cl.RangeQuery(ctx, KeyFromFloat(0.2), KeyFromFloat(0.5), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Items) != 12 { // fractions 8/40 .. 19/40
			t.Fatalf("range returned %d items, want 12", len(res.Items))
		}
		for i, it := range res.Items {
			if it.Value[0] != byte(8+i) {
				t.Fatalf("range item %d = value %d, want %d", i, it.Value[0], 8+i)
			}
		}
	})

	t.Run("range-limit", func(t *testing.T) {
		res, err := cl.RangeQuery(ctx, KeyFromFloat(0.2), KeyFromFloat(0.5), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Items) != 5 {
			t.Fatalf("limit ignored: %d items", len(res.Items))
		}
		for i, it := range res.Items {
			if it.Value[0] != byte(8+i) {
				t.Fatalf("limited range kept item %d, want the first clockwise", it.Value[0])
			}
		}
	})

	t.Run("range-wraparound", func(t *testing.T) {
		// [0.9, 0.1) crosses the top of the circle: fractions 36..39, 0..3.
		res, err := cl.RangeQuery(ctx, KeyFromFloat(0.9), KeyFromFloat(0.1), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{36, 37, 38, 39, 0, 1, 2, 3}
		if len(res.Items) != len(want) {
			t.Fatalf("wrap-around range returned %d items, want %d", len(res.Items), len(want))
		}
		for i, it := range res.Items {
			if it.Value[0] != want[i] {
				t.Fatalf("wrap-around item %d = value %d, want %d (clockwise order)", i, it.Value[0], want[i])
			}
		}
	})

	t.Run("range-wraparound-limit", func(t *testing.T) {
		res, err := cl.RangeQuery(ctx, KeyFromFloat(0.9), KeyFromFloat(0.1), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{36, 37, 38}
		if len(res.Items) != len(want) {
			t.Fatalf("wrap-around limit returned %d items, want %d", len(res.Items), len(want))
		}
		for i, it := range res.Items {
			if it.Value[0] != want[i] {
				t.Fatalf("wrap-around limited item %d = value %d, want %d", i, it.Value[0], want[i])
			}
		}
	})

	// Scan must agree with RangeQuery byte for byte on every backend —
	// including when forced to page, to wrap around the circle, and to
	// stop at a limit.
	t.Run("scan-matches-range", func(t *testing.T) {
		cases := []struct {
			name     string
			lo, hi   float64
			limit    int
			pageSize int
		}{
			{"plain", 0.2, 0.5, 0, 0},
			{"paged", 0.2, 0.5, 0, 3},
			{"limit", 0.2, 0.5, 5, 0},
			{"paged-limit", 0.2, 0.5, 5, 2},
			{"wraparound", 0.9, 0.1, 0, 0},
			{"wraparound-paged", 0.9, 0.1, 0, 3},
			{"wraparound-limit", 0.9, 0.1, 3, 1},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				lo, hi := KeyFromFloat(tc.lo), KeyFromFloat(tc.hi)
				want, err := cl.RangeQuery(ctx, lo, hi, tc.limit)
				if err != nil {
					t.Fatal(err)
				}
				opts := []ScanOption{WithLimit(tc.limit)}
				if tc.pageSize > 0 {
					opts = append(opts, WithPageSize(tc.pageSize))
				}
				var got []Item
				sc := cl.Scan(ctx, lo, hi, opts...)
				for sc.Next() {
					got = append(got, sc.Item())
				}
				if err := sc.Err(); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want.Items) {
					t.Fatalf("scan = %d items, range query = %d", len(got), len(want.Items))
				}
				for i := range got {
					if got[i].Key != want.Items[i].Key || !bytes.Equal(got[i].Value, want.Items[i].Value) {
						t.Fatalf("scan item %d = (%v, %q), range query has (%v, %q)",
							i, got[i].Key, got[i].Value, want.Items[i].Key, want.Items[i].Value)
					}
				}
				if tc.pageSize > 0 && len(want.Items) > tc.pageSize && sc.Stats().Pages < 2 {
					t.Fatalf("page size %d over %d items fetched only %d page(s)",
						tc.pageSize, len(want.Items), sc.Stats().Pages)
				}
			})
		}
	})

	t.Run("scan-iterator", func(t *testing.T) {
		// The range-over-func adapter yields the same stream as Next/Item,
		// and breaking out stops the scan early without an error.
		var got []Item
		for it, err := range cl.Scan(ctx, KeyFromFloat(0.2), KeyFromFloat(0.5)).All() {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, it)
		}
		if len(got) != 12 {
			t.Fatalf("All yielded %d items, want 12", len(got))
		}
		n := 0
		for _, err := range cl.Scan(ctx, KeyFromFloat(0.2), KeyFromFloat(0.5), WithPageSize(2)).All() {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 3 {
				break
			}
		}
		if n != 3 {
			t.Fatalf("broke after %d items, want 3", n)
		}
	})

	t.Run("scan-bad-range", func(t *testing.T) {
		// start == end denotes the full circle in range semantics; the
		// streaming API refuses the footgun with a typed error on both
		// surfaces.
		k := KeyFromFloat(0.4)
		sc := cl.Scan(ctx, k, k)
		if sc.Next() {
			t.Fatal("degenerate scan yielded an item")
		}
		if !errors.Is(sc.Err(), ErrBadRange) {
			t.Fatalf("degenerate scan err = %v, want ErrBadRange", sc.Err())
		}
		if _, err := cl.RangeQuery(ctx, k, k, 0); !errors.Is(err, ErrBadRange) {
			t.Fatalf("degenerate range query = %v, want ErrBadRange", err)
		}
	})

	t.Run("scan-skips-deleted", func(t *testing.T) {
		// Fraction 10/40 = 0.25 sits inside [0.2, 0.5): a tombstone must
		// hide it from the stream.
		victim := KeyFromFloat(10.0 / items)
		if _, err := cl.Delete(ctx, victim); err != nil {
			t.Fatal(err)
		}
		sc := cl.Scan(ctx, KeyFromFloat(0.2), KeyFromFloat(0.5))
		n := 0
		for sc.Next() {
			if sc.Item().Key == victim {
				t.Fatal("deleted key leaked into the scan")
			}
			n++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if n != 11 {
			t.Fatalf("scan after delete = %d items, want 11", n)
		}
		// Restore the item for the subtests that follow.
		if _, err := cl.Put(ctx, victim, []byte{10}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("concurrent-clients", func(t *testing.T) {
		const workers, opsPer = 8, 12
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < opsPer; j++ {
					k := KeyFromFloat(0.41 + float64(w*opsPer+j)/1000)
					v := []byte(fmt.Sprintf("w%d-%d", w, j))
					if _, err := cl.Put(ctx, k, v); err != nil {
						errs <- fmt.Errorf("put: %w", err)
						return
					}
					got, err := cl.Get(ctx, k)
					if err != nil {
						errs <- fmt.Errorf("get: %w", err)
						return
					}
					if !bytes.Equal(got.Value, v) {
						errs <- fmt.Errorf("get %v = %q, want %q", k, got.Value, v)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})

	t.Run("cancelled-context", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := cl.Lookup(cctx, key); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled lookup = %v, want context.Canceled", err)
		}
		if _, err := cl.Put(cctx, key, []byte("x")); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled put = %v, want context.Canceled", err)
		}
		if _, err := cl.Get(cctx, key); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled get = %v, want context.Canceled", err)
		}
		if _, err := cl.Delete(cctx, key); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled delete = %v, want context.Canceled", err)
		}
		if _, err := cl.RangeQuery(cctx, key, KeyFromFloat(0.6), 0); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled range = %v, want context.Canceled", err)
		}
		if sc := cl.Scan(cctx, key, KeyFromFloat(0.6)); sc.Next() || !errors.Is(sc.Err(), context.Canceled) {
			t.Errorf("cancelled scan err = %v, want context.Canceled", sc.Err())
		}
		if _, err := cl.Info(cctx); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled info = %v, want context.Canceled", err)
		}
		// The value must not have been written by the cancelled put.
		if got, err := cl.Get(ctx, key); err == nil && string(got.Value) == "x" {
			t.Error("cancelled put still wrote the value")
		}
	})

	t.Run("deadline", func(t *testing.T) {
		dctx, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
		defer cancel()
		if _, err := cl.Lookup(dctx, key); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("expired deadline lookup = %v, want context.DeadlineExceeded", err)
		}
	})

	t.Run("crash-and-heal", func(t *testing.T) {
		h.crash()
		if _, err := cl.Lookup(ctx, KeyFromFloat(0.77)); err != nil {
			t.Fatalf("lookup after crash: %v", err)
		}
		k := KeyFromFloat(0.771)
		if _, err := cl.Put(ctx, k, []byte("post-crash")); err != nil {
			t.Fatalf("put after crash: %v", err)
		}
		got, err := cl.Get(ctx, k)
		if err != nil || string(got.Value) != "post-crash" {
			t.Fatalf("get after crash = %q, %v", got.Value, err)
		}
	})

	t.Run("info", func(t *testing.T) {
		info, err := cl.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Backend == "" {
			t.Error("backend not reported")
		}
		// Both backends fill Peers honestly: global knowledge on the
		// simulator, a successor-pointer ring walk on a live node. After
		// the crash scenario healed, both see the same survivor count. The
		// walk crosses every ring link, so on a faulted fabric any one
		// probe can transiently fail — poll briefly, then hold the count
		// to the exact survivor number.
		deadline := time.Now().Add(10 * time.Second)
		for info.Peers != h.peersAfterCrash && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			if next, nerr := cl.Info(ctx); nerr == nil {
				info = next
			}
		}
		if info.Peers != h.peersAfterCrash {
			t.Errorf("info reports %d peers after crash, want %d", info.Peers, h.peersAfterCrash)
		}
		if info.Replicas != 1 {
			t.Errorf("unreplicated client reports r=%d", info.Replicas)
		}
	})

	t.Run("closed", func(t *testing.T) {
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get(ctx, key); !errors.Is(err, ErrClosed) {
			t.Errorf("get on closed client = %v, want ErrClosed", err)
		}
		if _, err := cl.Put(ctx, key, nil); !errors.Is(err, ErrClosed) {
			t.Errorf("put on closed client = %v, want ErrClosed", err)
		}
		if sc := cl.Scan(ctx, key, KeyFromFloat(0.6)); sc.Next() || !errors.Is(sc.Err(), ErrClosed) {
			t.Errorf("scan on closed client err = %v, want ErrClosed", sc.Err())
		}
	})
}

// durabilityHarness is one backend under the crash-durability contract:
// a client writing with r=3, a way to kill the peer that owns a key, and
// a way to know when the overlay has healed enough to assert on.
type durabilityHarness struct {
	name   string
	client Client
	// kill removes the peer identified by an operation's OwnerRef. The
	// overlay heals on its own afterwards (instantly on the simulator,
	// via auto-maintenance on the live fabrics).
	kill  func(t *testing.T, owner OwnerRef)
	close func()
}

const durabilityReplicas = 3

// waitRingSize polls Info until the client sees exactly want peers — the
// ring walk completing at the right count means the ring is closed and
// every arc has its true owner, so writes land where reads will look.
func waitRingSize(t *testing.T, cl Client, want int) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for {
		info, err := cl.Info(ctx)
		if err == nil && info.Peers == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never reached %d peers (last: %d, err %v)", want, info.Peers, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func durabilitySimHarness(t *testing.T) *durabilityHarness {
	t.Helper()
	ov, err := Build(Config{Size: 64, Seed: 11, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	return &durabilityHarness{
		name:   "simulator",
		client: ov.ReplicatedClient(durabilityReplicas),
		kill: func(t *testing.T, owner OwnerRef) {
			ov.CrashNode(owner.ID)
		},
		close: func() {},
	}
}

func durabilityMemHarness(t *testing.T) *durabilityHarness {
	t.Helper()
	ctx := context.Background()
	const size = 10
	c, err := StartCluster(ctx, size, WithSeed(6),
		WithReplicas(durabilityReplicas),
		WithAutoMaintenance(25*time.Millisecond),
		WithStabilizeRounds(4))
	if err != nil {
		t.Fatal(err)
	}
	waitRingSize(t, c.Node(0), size)
	return &durabilityHarness{
		name:   "p2p/mem",
		client: c.Node(0),
		kill: func(t *testing.T, owner OwnerRef) {
			for _, n := range c.Nodes() {
				if n.Addr() == owner.Addr {
					_ = n.Close()
					return
				}
			}
			t.Fatalf("owner %s not found in cluster", owner.Addr)
		},
		close: func() { _ = c.Close() },
	}
}

func durabilityTCPHarness(t *testing.T) *durabilityHarness {
	t.Helper()
	ctx := context.Background()
	const size = 10
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.021),
			MaxIn:  8, MaxOut: 8,
			Replicas:        durabilityReplicas,
			AutoMaintenance: 30 * time.Millisecond,
			Seed:            int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	waitRingSize(t, nodes[0], size)
	return &durabilityHarness{
		name:   "p2p/tcp",
		client: nodes[0],
		kill: func(t *testing.T, owner OwnerRef) {
			for _, n := range nodes {
				if n.Addr() == owner.Addr {
					_ = n.Close()
					return
				}
			}
			t.Fatalf("owner %s not found in cluster", owner.Addr)
		},
		close: func() {
			for _, n := range nodes {
				_ = n.Close()
			}
		},
	}
}

// TestCrashDurability is the cross-backend durability contract: writing
// with r=3, then killing the node that owns some of the keys and letting
// maintenance heal the ring, loses zero previously-written keys. The live
// fabrics heal through their jittered auto-maintenance loops — no manual
// StabilizeAll.
func TestCrashDurability(t *testing.T) {
	harnesses := []func(*testing.T) *durabilityHarness{
		durabilitySimHarness,
		durabilityMemHarness,
		durabilityTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runCrashDurability(t, h)
		})
	}
}

func runCrashDurability(t *testing.T, h *durabilityHarness) {
	ctx := context.Background()
	cl := h.client

	if info, err := cl.Info(ctx); err != nil || info.Replicas != durabilityReplicas {
		t.Fatalf("client reports r=%d (err %v), want %d", info.Replicas, err, durabilityReplicas)
	}

	// Write keys covering every arc of the ring.
	const items = 30
	keys := make([]Key, items)
	vals := make([][]byte, items)
	var owners []OwnerRef
	for i := 0; i < items; i++ {
		keys[i] = KeyFromFloat(float64(i)/items + 0.005)
		vals[i] = []byte(fmt.Sprintf("durable-%d", i))
		put, err := cl.Put(ctx, keys[i], vals[i])
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		owners = append(owners, put.Owner)
	}

	// Kill the owner of one of the keys — any peer but the one serving the
	// client, so the client survives to observe the loss (or its absence).
	self, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, o := range owners {
		if o.Addr != self.Self.Addr || (o.Addr == "" && o.ID != 0) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("every key owned by the client's own node")
	}
	h.kill(t, owners[victim])

	// After maintenance heals the ring, every key must still be readable
	// with its exact value: the owner's crash lost routing entries but no
	// data.
	deadline := time.Now().Add(20 * time.Second)
	for {
		lost := ""
		for i := range keys {
			got, err := cl.Get(ctx, keys[i])
			if err != nil {
				lost = fmt.Sprintf("key %d: %v", i, err)
				break
			}
			if !bytes.Equal(got.Value, vals[i]) {
				lost = fmt.Sprintf("key %d: value %q, want %q", i, got.Value, vals[i])
				break
			}
		}
		if lost == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("data lost after owner crash + heal: %s", lost)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// writeConcernHarness is one backend under the write-concern contract: a
// client configured with r=3 and a default write concern of 2, a key
// whose owner's chain has exactly one member unable to acknowledge by the
// time the runner writes, and no background maintenance to repair the
// chain mid-assertion.
type writeConcernHarness struct {
	name   string
	client Client
	key    Key
	close  func()
}

const (
	writeConcernReplicas = 3
	writeConcernDefault  = 2
)

func writeConcernSimHarness(t *testing.T) *writeConcernHarness {
	t.Helper()
	// The simulator's ring heals instantly around a crash, so the only way
	// a chain can come up short of acks is a ring with fewer members than
	// the chain wants: three peers, one killed, leaves owner + one.
	ov, err := Build(Config{Size: 3, Seed: 9, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	cl := ov.clientWith(writeConcernReplicas, writeConcernDefault)
	key := KeyFromFloat(0.4)
	put, err := cl.Put(context.Background(), key, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ov.Nodes() {
		if id != put.Owner.ID {
			ov.CrashNode(id)
			break
		}
	}
	return &writeConcernHarness{name: "simulator", client: cl, key: key, close: func() {}}
}

// liveWriteConcernHarness finds a key whose owner and first replica are
// both distinct from the client's node, then kills that first replica
// without letting maintenance repair the chain. closeAll tears the whole
// cluster down; it runs even when no suitable pair exists.
func liveWriteConcernHarness(t *testing.T, name string, clientNode *Node, nodes []*Node, closeAll func()) *writeConcernHarness {
	t.Helper()
	ctx := context.Background()
	for f := 0.05; f < 1; f += 0.09 {
		key := KeyFromFloat(f)
		res, err := clientNode.Lookup(ctx, key)
		if err != nil {
			closeAll()
			t.Fatal(err)
		}
		var owner *Node
		for _, n := range nodes {
			if n.Addr() == res.Owner.Addr {
				owner = n
			}
		}
		if owner == nil {
			continue
		}
		chain := owner.inner.SuccList()
		if len(chain) < writeConcernReplicas-1 || string(chain[0].Addr) == clientNode.Addr() {
			continue
		}
		for _, n := range nodes {
			if n.Addr() == string(chain[0].Addr) {
				_ = n.Close()
				return &writeConcernHarness{name: name, client: clientNode, key: key, close: closeAll}
			}
		}
	}
	closeAll()
	t.Fatal("no suitable key/victim pair found")
	return nil
}

func writeConcernMemHarness(t *testing.T) *writeConcernHarness {
	t.Helper()
	c, err := StartCluster(context.Background(), 10, WithSeed(14),
		WithReplicas(writeConcernReplicas),
		WithWriteConcern(writeConcernDefault),
		WithStabilizeRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	return liveWriteConcernHarness(t, "p2p/mem", c.Node(0), c.Nodes(), func() { _ = c.Close() })
}

func writeConcernTCPHarness(t *testing.T) *writeConcernHarness {
	t.Helper()
	ctx := context.Background()
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.017),
			MaxIn:  8, MaxOut: 8,
			Replicas:     writeConcernReplicas,
			WriteConcern: writeConcernDefault,
			Seed:         int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 5; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	return liveWriteConcernHarness(t, "p2p/tcp", nodes[0], nodes, func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
}

// TestWriteConcern is the cross-backend write-concern contract: with r=3
// and one chain member gone, a write collects exactly two acks — the
// configured default w=2 succeeds, a per-call w=3 fails with
// ErrWriteConcern carrying the honest 2/3 counts, and an unsatisfied
// write still holds everywhere it was acknowledged instead of silently
// succeeding or silently disappearing.
func TestWriteConcern(t *testing.T) {
	harnesses := []func(*testing.T) *writeConcernHarness{
		writeConcernSimHarness,
		writeConcernMemHarness,
		writeConcernTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runWriteConcern(t, h)
		})
	}
}

func runWriteConcern(t *testing.T, h *writeConcernHarness) {
	ctx := context.Background()
	cl := h.client

	if info, err := cl.Info(ctx); err != nil || info.WriteConcern != writeConcernDefault {
		t.Fatalf("client reports w=%d (err %v), want %d", info.WriteConcern, err, writeConcernDefault)
	}

	// The configured default (w=2) is satisfiable by owner + the
	// surviving replica.
	put, err := cl.Put(ctx, h.key, []byte("wc-default"))
	if err != nil {
		t.Fatalf("put under default w=2 with one dead chain member: %v", err)
	}
	if put.Acks != 2 {
		t.Fatalf("put collected %d acks, want exactly 2 (owner + surviving replica)", put.Acks)
	}

	// A per-call w=3 cannot be: ErrWriteConcern with the honest counts.
	put, err = cl.Put(ContextWithWriteConcern(ctx, 3), h.key, []byte("wc-strict"))
	if !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("put w=3 = %v, want ErrWriteConcern", err)
	}
	var wce *WriteConcernError
	if !errors.As(err, &wce) {
		t.Fatalf("write-concern failure %v does not carry *WriteConcernError", err)
	}
	if wce.Acks != 2 || wce.Want != 3 {
		t.Fatalf("write-concern counts = %d/%d, want 2/3", wce.Acks, wce.Want)
	}
	if put.Acks != 2 {
		t.Fatalf("failed put reports %d acks, want 2", put.Acks)
	}

	// The unsatisfied write was not rolled back: it reads back.
	got, err := cl.Get(ctx, h.key)
	if err != nil || !bytes.Equal(got.Value, []byte("wc-strict")) {
		t.Fatalf("read after failed concern = %q, %v; the write must hold where acked", got.Value, err)
	}

	// Deletes enforce the same contract, and an unsatisfied delete also
	// holds where acked.
	del, err := cl.Delete(ContextWithWriteConcern(ctx, 3), h.key)
	if !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("delete w=3 = %v, want ErrWriteConcern", err)
	}
	if del.Acks != 2 {
		t.Fatalf("failed delete reports %d acks, want 2", del.Acks)
	}
	if _, err := cl.Get(ctx, h.key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after failed-concern delete = %v, want ErrNotFound (the delete held where acked)", err)
	}
}

// readRepairHarness is one backend under the read-repair contract: keys
// sharing one owner written with r=3, a hook that silently erases some of
// them from the owner's primary shard, and visibility into the healing
// side's repair stats and shard.
type readRepairHarness struct {
	name   string
	client Client
	keys   []Key
	// dropPrimary erases the keys from the owner's primary shard behind
	// the protocol's back — the fault read-repair exists to recover from.
	dropPrimary func(keys []Key)
	// stats returns the healing side's accumulated anti-entropy stats.
	stats func() SyncStats
	// ownerHas reports whether the owner's primary shard holds the key.
	ownerHas func(k Key) bool
	close    func()
}

const readRepairReplicas = 3

func readRepairSimHarness(t *testing.T) *readRepairHarness {
	t.Helper()
	ov, err := Build(Config{Size: 64, Seed: 29, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	cl := ov.ReplicatedClient(readRepairReplicas)
	put, err := cl.Put(context.Background(), KeyFromFloat(0.61), []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	ownerID := put.Owner.ID
	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = put.Owner.Key - Key(i)
	}
	return &readRepairHarness{
		name:   "simulator",
		client: cl,
		keys:   keys,
		dropPrimary: func(ks []Key) {
			ov.mu.Lock()
			defer ov.mu.Unlock()
			for _, k := range ks {
				ov.storeFor(ownerID).Drop(k)
			}
		},
		stats: func() SyncStats {
			ov.mu.Lock()
			defer ov.mu.Unlock()
			return ov.syncStats
		},
		ownerHas: func(k Key) bool {
			ov.mu.Lock()
			defer ov.mu.Unlock()
			_, ok := ov.storeFor(ownerID).Get(k)
			return ok
		},
		close: func() {},
	}
}

// liveReadRepairHarness picks an owner whose arc comfortably holds a run
// of keys below its identifier, writes nothing itself (the runner does),
// and wires the fault-injection and observation hooks to that owner.
func liveReadRepairHarness(t *testing.T, name string, nodes []*Node, closeAll func()) *readRepairHarness {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	client := nodes[0]
	var owner *Node
	for _, n := range nodes[1:] {
		res, err := client.Lookup(ctx, n.Key()-8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner.Addr == n.Addr() {
			owner = n
			break
		}
	}
	if owner == nil {
		t.Fatal("no node owns a wide enough arc")
	}
	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = owner.Key() - Key(i)
	}
	toSync := func(st p2p.SyncStats) SyncStats {
		return SyncStats{
			Rounds:           st.Rounds,
			KeysPushed:       st.KeysPushed,
			TombstonesPushed: st.TombsPushed,
			Dropped:          st.Dropped,
		}
	}
	return &readRepairHarness{
		name:   name,
		client: client,
		keys:   keys,
		dropPrimary: func(ks []Key) {
			for _, k := range ks {
				owner.inner.DropPrimary(k)
			}
		},
		stats: func() SyncStats { return toSync(owner.inner.SyncTotals()) },
		ownerHas: func(k Key) bool {
			_, ok := owner.inner.PrimaryValue(k)
			return ok
		},
		close: closeAll,
	}
}

func readRepairMemHarness(t *testing.T) *readRepairHarness {
	t.Helper()
	c, err := StartCluster(context.Background(), 10, WithSeed(17), WithReplicas(readRepairReplicas))
	if err != nil {
		t.Fatal(err)
	}
	return liveReadRepairHarness(t, "p2p/mem", c.Nodes(), func() { _ = c.Close() })
}

func readRepairTCPHarness(t *testing.T) *readRepairHarness {
	t.Helper()
	ctx := context.Background()
	const size = 7
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.027),
			MaxIn:  8, MaxOut: 8,
			Replicas: readRepairReplicas,
			Seed:     int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	return liveReadRepairHarness(t, "p2p/tcp", nodes, func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
}

// TestReadRepair is the cross-backend read-repair contract: an owner that
// silently lost part of its arc still serves those reads through the
// chain fallback, and the first such read heals the owner — with repair
// stats equal to the exact divergence, visible through the same counters
// as scheduled anti-entropy.
func TestReadRepair(t *testing.T) {
	harnesses := []func(*testing.T) *readRepairHarness{
		readRepairSimHarness,
		readRepairMemHarness,
		readRepairTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runReadRepair(t, h)
		})
	}
}

func runReadRepair(t *testing.T, h *readRepairHarness) {
	ctx := context.Background()
	cl := h.client

	// All keys must share one owner — the harness promised it.
	first, err := cl.Lookup(ctx, h.keys[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range h.keys[1:] {
		got, err := cl.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Owner.Key != first.Owner.Key {
			t.Fatalf("harness keys span owners (%v vs %v)", got.Owner, first.Owner)
		}
	}

	vals := make([][]byte, len(h.keys))
	for i := range h.keys {
		vals[i] = []byte(fmt.Sprintf("repair-%d", i))
		if _, err := cl.Put(ctx, h.keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	base := h.stats()

	// The owner silently loses two keys (divergence = 2).
	h.dropPrimary(h.keys[:2])

	// The fallback read still serves the right value, from a replica.
	got, err := cl.Get(ctx, h.keys[0])
	if err != nil || !bytes.Equal(got.Value, vals[0]) {
		t.Fatalf("fallback read = %q, %v; want the replica's copy", got.Value, err)
	}

	// ...and heals the owner: both lost keys return to its shard, and the
	// repair moved exactly the divergence (2 keys, no tombstones, no
	// drops). The live backends repair asynchronously, so poll.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := h.stats()
		if h.ownerHas(h.keys[0]) && h.ownerHas(h.keys[1]) && st.KeysPushed-base.KeysPushed >= 2 {
			if pushed := st.KeysPushed - base.KeysPushed; pushed != 2 {
				t.Fatalf("read-repair pushed %d keys, want exactly the divergence (2)", pushed)
			}
			if tombs := st.TombstonesPushed - base.TombstonesPushed; tombs != 0 {
				t.Fatalf("read-repair pushed %d tombstones, want 0", tombs)
			}
			if dropped := st.Dropped - base.Dropped; dropped != 0 {
				t.Fatalf("read-repair dropped %d keys, want 0", dropped)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never healed (stats delta %+v, has0=%v has1=%v)",
				SyncStats{
					Rounds:           st.Rounds - base.Rounds,
					KeysPushed:       st.KeysPushed - base.KeysPushed,
					TombstonesPushed: st.TombstonesPushed - base.TombstonesPushed,
					Dropped:          st.Dropped - base.Dropped,
				}, h.ownerHas(h.keys[0]), h.ownerHas(h.keys[1]))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every key reads back with its exact value after the heal.
	for i := range h.keys {
		got, err := cl.Get(ctx, h.keys[i])
		if err != nil || !bytes.Equal(got.Value, vals[i]) {
			t.Fatalf("key %d after repair = %q, %v; want %q", i, got.Value, err, vals[i])
		}
	}
}

// TestScanChurn is the mid-scan churn contract: a paged scan whose serving
// arc owner is killed between pages resumes through the owner's replica
// chain — the cursor loses nothing and duplicates nothing. It reuses the
// crash-durability harnesses (r=3, auto-maintenance on the live fabrics)
// and forces tiny pages so the kill lands between fetches.
func TestScanChurn(t *testing.T) {
	harnesses := []func(*testing.T) *durabilityHarness{
		durabilitySimHarness,
		durabilityMemHarness,
		durabilityTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runScanChurn(t, h)
		})
	}
}

func runScanChurn(t *testing.T, h *durabilityHarness) {
	ctx := context.Background()
	cl := h.client

	self, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Items across most of the circle, replicated with r=3.
	const items = 40
	lo, hi := KeyFromFloat(0.05), KeyFromFloat(0.95)
	want := make(map[Key]byte, items)
	for i := 0; i < items; i++ {
		k := KeyFromFloat(0.05 + 0.9*float64(i)/items)
		if _, err := cl.Put(ctx, k, []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[k] = byte(i)
	}

	// Stream with 3-item pages; a third of the way in, kill the peer that
	// owns the very next cursor position — the one serving the current
	// shard, whose replica chain the session learned when it routed there.
	sc := cl.Scan(ctx, lo, hi, WithPageSize(3))
	seen := make(map[Key]byte, items)
	var prev Key
	killed := false
	count := 0
	for sc.Next() {
		it := sc.Item()
		if _, dup := seen[it.Key]; dup {
			t.Fatalf("key %v streamed twice", it.Key)
		}
		wantVal, ok := want[it.Key]
		if !ok {
			t.Fatalf("stray key %v in scan", it.Key)
		}
		if len(it.Value) != 1 || it.Value[0] != wantVal {
			t.Fatalf("key %v = %v, want [%d]", it.Key, it.Value, wantVal)
		}
		if count > 0 && lo.Distance(it.Key) <= lo.Distance(prev) {
			t.Fatalf("scan out of clockwise order: %v after %v", it.Key, prev)
		}
		seen[it.Key] = it.Value[0]
		prev = it.Key
		count++
		if !killed && count >= items/3 {
			route, err := cl.Lookup(ctx, it.Key+1)
			if err != nil {
				t.Fatalf("lookup next cursor: %v", err)
			}
			// Never kill the node serving the client; try again one item
			// later — some other peer owns the rest of the range.
			if self.Backend == "simulator" || route.Owner.Addr != self.Self.Addr {
				h.kill(t, route.Owner)
				killed = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan failed after churn (streamed %d items): %v", count, err)
	}
	if !killed {
		t.Fatal("never found a victim to kill — scenario did not exercise churn")
	}
	if count != items {
		missing := 0
		for k := range want {
			if _, ok := seen[k]; !ok {
				missing++
			}
		}
		t.Fatalf("scan under churn returned %d/%d items (%d missing)", count, items, missing)
	}
}
