// Streaming-read benchmarks: the paged Scan iterator and the chunked blob
// layer. `make bench-stream` runs these once (benchtime=1x) as a CI smoke;
// locally, plain `go test -bench` gives stable numbers.
package oscar

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// BenchmarkScan streams a populated arc end to end through the paged
// iterator on the simulator backend. The two sizes bracket the page
// machinery: 1k items is a handful of pages, 100k items exercises hundreds
// of cursor hand-offs across shard boundaries.
func BenchmarkScan(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			ctx := context.Background()
			ov, err := Build(Config{Size: 128, Seed: 21, Keys: UniformKeys()})
			if err != nil {
				b.Fatal(err)
			}
			cl := ov.Client()
			defer cl.Close()
			lo, hi := KeyFromFloat(0.1), KeyFromFloat(0.9)
			val := []byte("v")
			for i := 0; i < n; i++ {
				k := KeyFromFloat(0.1 + 0.8*float64(i)/float64(n))
				if _, err := cl.Put(ctx, k, val); err != nil {
					b.Fatal(err)
				}
			}
			var pages int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := cl.Scan(ctx, lo, hi)
				count := 0
				for sc.Next() {
					count++
				}
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				if count != n {
					b.Fatalf("scan streamed %d items, want %d", count, n)
				}
				pages = sc.Stats().Pages
			}
			b.StopTimer()
			b.ReportMetric(float64(pages), "pages/op")
			b.ReportMetric(float64(n), "items/op")
		})
	}
}

// BenchmarkBlobRoundTrip writes and streams back a 16 MiB blob through a
// live in-memory cluster: chunking, per-chunk and whole-blob checksums,
// prefetch pipelining, and the paged scan underneath.
func BenchmarkBlobRoundTrip(b *testing.B) {
	ctx := context.Background()
	c, err := StartCluster(ctx, 8, WithSeed(15))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cl := c.Node(0)
	base := KeyFromFloat(0.35)

	data := make([]byte, 16<<20)
	rand.New(rand.NewSource(99)).Read(data)
	b.SetBytes(int64(len(data)) * 2) // one put + one get per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.PutBlob(ctx, base, bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
		br, err := cl.GetBlob(ctx, base)
		if err != nil {
			b.Fatal(err)
		}
		got, err := io.Copy(io.Discard, br)
		if err != nil {
			b.Fatal(err)
		}
		if got != int64(len(data)) {
			b.Fatalf("streamed %d bytes, want %d", got, len(data))
		}
		if err := br.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
