package mercury

import (
	"math"
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

func TestHistogramUniformKeys(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	keys := keydist.SampleN(keydist.Uniform{}, rnd, 10000)
	h := NewHistogram(20, keys)
	var total float64
	for _, m := range h.mass {
		total += m
		if m < 0.02 || m > 0.09 { // expect ≈0.05 per bucket
			t.Errorf("bucket mass %.3f far from uniform", m)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("masses sum to %g", total)
	}
}

func TestHistogramEmptyDefaultsUniform(t *testing.T) {
	h := NewHistogram(10, nil)
	for _, m := range h.mass {
		if math.Abs(m-0.1) > 1e-12 {
			t.Errorf("empty histogram bucket %g, want 0.1", m)
		}
	}
}

func TestInvertFromUniform(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	keys := keydist.SampleN(keydist.Uniform{}, rnd, 50000)
	h := NewHistogram(50, keys)
	// With uniform keys, advancing fraction f of the population ≈ advancing
	// fraction f of the key space.
	for _, f := range []float64{0.1, 0.3, 0.5, 0.9} {
		from := keyspace.FromFloat(0.2)
		got := h.InvertFrom(from, f).Float()
		want := math.Mod(0.2+f, 1)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("InvertFrom(0.2, %g) = %.3f, want ≈%.3f", f, got, want)
		}
	}
}

func TestInvertFromZeroFraction(t *testing.T) {
	h := NewHistogram(10, nil)
	from := keyspace.FromFloat(0.37)
	if got := h.InvertFrom(from, 0); got != from {
		t.Error("zero fraction must return the origin")
	}
}

func TestInvertFromSkipsEmptyBuckets(t *testing.T) {
	// All mass in [0.5, 0.6): inverting any fraction from 0 must land there.
	var keys []keyspace.Key
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		keys = append(keys, keyspace.FromFloat(0.5+0.1*rnd.Float64()))
	}
	h := NewHistogram(10, keys)
	for _, f := range []float64{0.1, 0.5, 0.9} {
		got := h.InvertFrom(0, f).Float()
		if got < 0.5 || got >= 0.6 {
			t.Errorf("InvertFrom(0, %g) = %.3f, want inside [0.5,0.6)", f, got)
		}
	}
}

// TestResolutionFailureOnSpikes demonstrates the documented Mercury failure
// mode this reproduction relies on: a needle spike much narrower than a
// bucket gets smeared over the whole bucket, so rank→key translation inside
// the spike is off by orders of magnitude in population terms.
func TestResolutionFailureOnSpikes(t *testing.T) {
	// 90% of peers inside a needle of width 1e-4 around 0.35.
	var keys []keyspace.Key
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		if rnd.Float64() < 0.9 {
			keys = append(keys, keyspace.FromFloat(0.35+1e-4*rnd.Float64()))
		} else {
			keys = append(keys, keyspace.FromFloat(rnd.Float64()))
		}
	}
	h := NewHistogram(50, keys) // bucket width 0.02 ≫ needle width 1e-4
	// Ask for the key at population fraction 0.5 from 0: truly ≈0.35005
	// (the middle of the needle). Mercury smears the needle across its
	// bucket, so the returned key, although close in *key* distance, lands
	// at a wildly wrong *population rank* — the quantity links depend on.
	got := h.InvertFrom(0, 0.5).Float()
	truePopFrac := func(x float64) float64 {
		needleLo, needleW := 0.35, 1e-4
		inNeedle := math.Min(math.Max((x-needleLo)/needleW, 0), 1)
		return 0.9*inNeedle + 0.1*x
	}
	rankErr := math.Abs(truePopFrac(got) - 0.5)
	if rankErr < 0.2 {
		t.Errorf("population-rank error %.3f too small; the resolution failure mode vanished (key %.5f)", rankErr, got)
	}
	if got < 0.34 || got > 0.37 {
		t.Errorf("median estimate %.4f not even in the right bucket", got)
	}
}

func buildPopulation(t *testing.T, n, caps int, dist keydist.Distribution, seed int64) (*graph.Network, *ring.Ring) {
	t.Helper()
	g := graph.New()
	r := ring.New(g)
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		node := g.Add(dist.Sample(rnd), caps, caps)
		r.Insert(node.ID)
	}
	return g, r
}

func TestWireRespectsCaps(t *testing.T) {
	g, r := buildPopulation(t, 300, 10, keydist.GnutellaLike(), 5)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(6)))
	rnd := rand.New(rand.NewSource(7))
	for _, id := range g.AliveIDs() {
		Wire(g, r, w, id, DefaultConfig(), g.AliveCount(), rnd)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g.ForEachAlive(func(n *graph.Node) {
		if n.InDeg() > n.MaxIn || len(n.Out) > n.MaxOut {
			t.Errorf("node %d violates caps", n.ID)
		}
	})
}

func TestWireMakesMostLinks(t *testing.T) {
	g, r := buildPopulation(t, 400, 16, keydist.Uniform{}, 8)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(9)))
	rnd := rand.New(rand.NewSource(10))
	var stats WireStats
	for _, id := range g.AliveIDs() {
		st := Wire(g, r, w, id, DefaultConfig(), g.AliveCount(), rnd)
		stats.Add(st)
	}
	if float64(stats.LinksMade) < 0.5*float64(stats.LinksWanted) {
		t.Errorf("mercury filled only %d/%d slots", stats.LinksMade, stats.LinksWanted)
	}
	if stats.SampleCost == 0 {
		t.Error("histogram sampling must cost messages")
	}
}

func TestWireTinyNetwork(t *testing.T) {
	g, r := buildPopulation(t, 2, 4, keydist.Uniform{}, 11)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(12)))
	stats := Wire(g, r, w, g.AliveIDs()[0], DefaultConfig(), 2, rand.New(rand.NewSource(13)))
	// n=2: the only candidate is the other peer; link should usually form.
	if stats.LinksWanted != 4 {
		t.Errorf("wanted = %d", stats.LinksWanted)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWireSingleton(t *testing.T) {
	g, r := buildPopulation(t, 1, 4, keydist.Uniform{}, 14)
	w := sampling.NewWalker(g, rand.New(rand.NewSource(15)))
	stats := Wire(g, r, w, g.AliveIDs()[0], DefaultConfig(), 1, rand.New(rand.NewSource(16)))
	if stats.LinksMade != 0 {
		t.Error("singleton cannot link")
	}
}
