package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// benchInflights are the concurrency levels the transport benchmarks
// sweep: a single caller, a moderate fanout, and a heavy fanout.
var benchInflights = []int{1, 8, 64}

// dialPerCall is the old transport discipline reproduced as a baseline:
// a fresh TCP dial, one framed exchange, a teardown — per call.
func dialPerCall(addr Addr, req *Request) (*Response, error) {
	conn, err := net.Dial("tcp", string(addr))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeMuxFrame(conn, 1, req); err != nil {
		return nil, err
	}
	var resp Response
	if _, err := readMuxFrame(bufio.NewReader(conn), &resp, codecJSON); err != nil {
		return nil, err
	}
	return &resp, nil
}

// benchCalls drives b.N calls through fn from `inflight` workers and
// reports aggregate throughput.
func benchCalls(b *testing.B, inflight int, fn func(*Request) (*Response, error)) {
	b.Helper()
	var wg sync.WaitGroup
	calls := make(chan int, inflight)
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range calls {
				resp, err := fn(&Request{Op: OpPing, Key: keyspace.Key(i)})
				if err != nil {
					b.Error(err)
					return
				}
				if resp.Peer.Key != keyspace.Key(i) {
					b.Errorf("cross-talk at call %d", i)
					return
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		calls <- i
	}
	close(calls)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// BenchmarkFrameEncode isolates the frame write path's encoding cost:
// the pre-pool discipline (json.Marshal into a fresh payload, then a
// fresh header+payload buffer) against the pooled wireFrame encoder that
// the mux now uses. The delta is the per-frame allocation saving.
func BenchmarkFrameEncode(b *testing.B) {
	req := &Request{
		Op: OpFindOwner, Key: keyspace.FromFloat(0.42),
		From:    PeerRef{Addr: "127.0.0.1:9999", Key: keyspace.FromFloat(0.17)},
		Exclude: []Addr{"127.0.0.1:9001", "127.0.0.1:9002"},
	}
	b.Run("marshal-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			payload, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, frameHeaderSize+len(payload))
			binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
			binary.BigEndian.PutUint64(buf[4:12], uint64(i))
			copy(buf[frameHeaderSize:], payload)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := acquireFrame()
			if err := f.encode(uint64(i), req, codecJSON); err != nil {
				b.Fatal(err)
			}
			releaseFrame(f)
		}
	})
	b.Run("pooled-binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := acquireFrame()
			if err := f.encode(uint64(i), req, codecBinary); err != nil {
				b.Fatal(err)
			}
			releaseFrame(f)
		}
	})
}

// BenchmarkDialPerCall measures the pre-pool baseline: every RPC pays
// dial + exchange + close.
func BenchmarkDialPerCall(b *testing.B) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	for _, inflight := range benchInflights {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			benchCalls(b, inflight, func(req *Request) (*Response, error) {
				return dialPerCall(server.Addr(), req)
			})
		})
	}
}

// benchPooled runs the pooled-transport sweep for one endpoint flavour:
// both peers share opts, the pool is warmed outside the timed region, and
// each in-flight level gets its own sub-benchmark.
func benchPooled(b *testing.B, opts ...TCPOption) {
	server, err := ListenTCP("127.0.0.1:0", opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	for _, inflight := range benchInflights {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			client, err := ListenTCP("127.0.0.1:0", opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			// Warm the pool so dials happen outside the timed region.
			if _, err := client.Call(server.Addr(), &Request{Op: OpPing}); err != nil {
				b.Fatal(err)
			}
			benchCalls(b, inflight, func(req *Request) (*Response, error) {
				return client.Call(server.Addr(), req)
			})
		})
	}
}

// BenchmarkPooledMux measures the pooled, multiplexed transport: calls
// share persistent connections and demux by request id. The codec
// sub-benchmarks isolate the wire-codec cost — same framing, same pool,
// same socket, only the payload encoding differs.
func BenchmarkPooledMux(b *testing.B) {
	b.Run("codec=binary", func(b *testing.B) { benchPooled(b) })
	b.Run("codec=json", func(b *testing.B) { benchPooled(b, WithJSONCodec()) })
}

// BenchmarkPooledMuxTLS is BenchmarkPooledMux over TLS (binary codec):
// the delta against the plaintext rows is the record-layer cost once the
// handshake is amortised by the pool.
func BenchmarkPooledMuxTLS(b *testing.B) {
	benchPooled(b, WithTLS(selfSignedTLS(b)))
}
