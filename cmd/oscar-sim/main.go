// Command oscar-sim runs one parameterised overlay simulation and prints a
// per-checkpoint report: growth from scratch, periodic rewiring, average
// search cost, degree-volume utilisation and (optionally) churn.
//
// Examples:
//
//	oscar-sim -n 10000 -keys gnutella -degrees constant
//	oscar-sim -n 5000 -system mercury -keys gnutella
//	oscar-sim -n 4000 -churn 0.33
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/metrics"
	"github.com/oscar-overlay/oscar/internal/sim"
	"github.com/oscar-overlay/oscar/internal/simsnapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-sim: ")

	var (
		n        = flag.Int("n", 10000, "target network size")
		seed     = flag.Int64("seed", 1, "root random seed")
		keys     = flag.String("keys", "gnutella", "key distribution: uniform|gnutella|zipf")
		degrees  = flag.String("degrees", "constant", "degree-cap distribution: constant|stepped|realistic")
		mean     = flag.Float64("degree-mean", 27, "mean degree cap")
		system   = flag.String("system", "oscar", "construction: oscar|mercury|kleinberg")
		churnPct = flag.Float64("churn", 0, "fraction of peers to crash before the final measurement")
		queries  = flag.Int("queries", 0, "queries per measurement (0 = network size)")
		ckpts    = flag.String("checkpoints", "", "comma-separated sizes (default: every n/10)")
		oracle   = flag.Bool("oracle", false, "oscar: use exact global-knowledge partitions (ablation)")
		noP2C    = flag.Bool("no-p2c", false, "oscar: disable power-of-two-choices balancing")
		paranoid = flag.Bool("paranoid", false, "run invariant checks at checkpoints")
		save     = flag.String("save", "", "write a JSON snapshot of the final network to this file")
		verbose  = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.TargetSize = *n
	cfg.QueriesPerMeasure = *queries
	cfg.Paranoid = *paranoid

	var err error
	if cfg.Keys, err = keydist.ByName(*keys); err != nil {
		log.Fatal(err)
	}
	if cfg.Degrees, err = degreedist.ByName(*degrees, *mean); err != nil {
		log.Fatal(err)
	}
	switch *system {
	case "oscar":
		cfg.System = sim.SystemOscar
	case "mercury":
		cfg.System = sim.SystemMercury
	case "kleinberg":
		cfg.System = sim.SystemKleinberg
	default:
		log.Fatalf("unknown -system %q", *system)
	}
	cfg.Oscar.Oracle = *oracle
	cfg.Oscar.PowerOfTwo = !*noP2C

	if *ckpts != "" {
		cfg.Checkpoints = nil
		for _, part := range strings.Split(*ckpts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -checkpoints entry %q: %v", part, err)
			}
			cfg.Checkpoints = append(cfg.Checkpoints, v)
		}
	} else {
		cfg.Checkpoints = nil
		step := *n / 10
		if step < 1 {
			step = 1
		}
		for size := step; size <= *n; size += step {
			cfg.Checkpoints = append(cfg.Checkpoints, size)
		}
	}

	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# system=%s keys=%s degrees=%s n=%d seed=%d\n",
		*system, cfg.Keys.Name(), cfg.Degrees.Name(), *n, *seed)

	tab := metrics.NewTable("size", "avg_cost", "p50", "p90", "p99", "failed", "volume", "links/peer", "levels")
	start := time.Now()
	for _, cp := range cfg.Checkpoints {
		s.GrowTo(cp)
		s.RewireAll()
		if cfg.Paranoid {
			if err := s.CheckInvariants(); err != nil {
				log.Fatalf("invariant violation at size %d: %v", cp, err)
			}
		}
		m := s.Measure(false)
		tab.AddRow(m.Size, m.AvgSearchCost, m.Search.P50, m.Search.P90, m.Search.P99,
			m.Failed, m.DegreeVolume, m.AvgLinksMade, m.AvgLevels)
		if *verbose {
			log.Printf("size %d done (%.1fs elapsed)", cp, time.Since(start).Seconds())
		}
	}
	if _, err := tab.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%s n=%d keys=%s degrees=%s seed=%d", *system, *n, cfg.Keys.Name(), cfg.Degrees.Name(), *seed)
		if err := simsnapshot.Capture(s.Net(), label).Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot written to %s", *save)
	}

	if *churnPct > 0 {
		fmt.Printf("\n# churn: killing %.0f%% of peers\n", *churnPct*100)
		s.Churn(*churnPct)
		m := s.Measure(true)
		ct := metrics.NewTable("size", "avg_cost", "hops", "probes", "backtracks", "p90", "failed")
		ct.AddRow(m.Size, m.AvgSearchCost, m.AvgHops, m.AvgProbes, m.AvgBacktracks, m.Search.P90, m.Failed)
		if _, err := ct.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
