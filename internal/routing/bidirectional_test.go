package routing

import (
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/smallworld"
)

func newRingFor(g *graph.Network) *ring.Ring { return ring.New(g) }

func wireHarmonic(g *graph.Network, r *ring.Ring, rnd *rand.Rand) {
	smallworld.WireAll(g, r, 2, rnd)
}

func TestBidirectionalReachesOwner(t *testing.T) {
	g, r := buildRing(t, 256, true, 21)
	rnd := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		from := r.RandomAlive(rnd)
		target := keyspace.Key(rnd.Uint64())
		res := GreedyBidirectional(g, r, from, target)
		if !res.Found {
			t.Fatalf("bidirectional lookup failed")
		}
		if res.Path[len(res.Path)-1] != res.Owner {
			t.Fatal("path does not end at owner")
		}
		if Greedy(g, r, from, target).Owner != res.Owner {
			t.Fatal("routers disagree on ownership")
		}
	}
}

func TestBidirectionalNotWorseThanRingOnly(t *testing.T) {
	// On a plain ring, bidirectional greedy takes the shorter arc, so it
	// should average at most ~n/4 hops vs clockwise's ~n/2.
	g, r := buildRing(t, 200, false, 23)
	rnd := rand.New(rand.NewSource(24))
	var cw, bidir int
	for trial := 0; trial < 200; trial++ {
		from := r.RandomAlive(rnd)
		target := keyspace.Key(rnd.Uint64())
		cw += Greedy(g, r, from, target).Hops
		bidir += GreedyBidirectional(g, r, from, target).Hops
	}
	if bidir >= cw {
		t.Errorf("bidirectional (%d hops) should beat clockwise (%d) on a plain ring", bidir, cw)
	}
}

func TestBidirectionalSurvivesChurnWithBacktracking(t *testing.T) {
	// Sparse network (few links per peer) + heavy churn: strict-improvement
	// greedy then hits genuine dead ends and must backtrack.
	g := graph.New()
	r := newRingFor(g)
	step := keyspace.MaxKey / 400
	for i := 0; i < 400; i++ {
		node := g.Add(keyspace.Key(i)*step, 4, 4)
		r.Insert(node.ID)
	}
	rnd := rand.New(rand.NewSource(26))
	wireHarmonic(g, r, rnd)
	for i := 0; i < 160; i++ { // 40% churn
		r.Kill(r.RandomAlive(rnd))
	}
	var probes, backtracks int
	for trial := 0; trial < 500; trial++ {
		from := r.RandomAlive(rnd)
		target := g.Node(r.RandomAlive(rnd)).Key
		res := GreedyBidirectional(g, r, from, target)
		if !res.Found {
			t.Fatal("lookup failed under churn")
		}
		for _, id := range res.Path {
			if !g.Node(id).Alive {
				t.Fatal("visited a dead peer")
			}
		}
		probes += res.Probes
		backtracks += res.Backtracks
	}
	if probes == 0 {
		t.Error("no probes under churn")
	}
	// Note: with an instantly self-stabilised ring, dead ends are provably
	// impossible (each node's successor is alive, unvisited-or-final, and
	// admissible), so backtracks stay 0 here. The backtracking machinery is
	// exercised deterministically in TestGreedyBacktrackPopsOnStalePointers,
	// which models a not-yet-stabilised ring.
	t.Logf("500 churned lookups: %d probes, %d backtracks", probes, backtracks)
}

func TestBidirectionalSelfLookup(t *testing.T) {
	g, r := buildRing(t, 64, true, 27)
	id := r.OwnerOf(0)
	res := GreedyBidirectional(g, r, id, g.Node(id).Key)
	if !res.Found || res.Hops != 0 {
		t.Errorf("self lookup: %+v", res)
	}
}

func TestBidirectionalTinyRing(t *testing.T) {
	g, r := buildRing(t, 2, false, 28)
	from := r.OwnerOf(0)
	other := g.Node(from).Succ
	res := GreedyBidirectional(g, r, from, g.Node(other).Key)
	if !res.Found || res.Owner != graph.NodeID(other) {
		t.Errorf("pair lookup: %+v", res)
	}
}
