package p2p

import (
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/wal"
)

// RecoveryInfo describes what a node reconstructed from its data
// directory at startup. Zero value means durability is off.
type RecoveryInfo struct {
	// Enabled reports that the node runs with a durable engine.
	Enabled bool
	// Clean reports that the previous run shut down cleanly (final
	// snapshot written); a crash restart reads false.
	Clean bool
	// SnapshotAt is the unix-nano save time of the snapshot loaded.
	SnapshotAt int64
	// Replayed is the number of WAL frames replayed over the snapshot.
	Replayed int
	// TornTail reports a torn final frame was found and discarded.
	TornTail bool
	// Items, ReplicaItems and Tombstones count the recovered state.
	Items, ReplicaItems, Tombstones int
}

// HasState reports whether recovery produced any data to re-announce.
func (r RecoveryInfo) HasState() bool {
	return r.Items > 0 || r.ReplicaItems > 0 || r.Tombstones > 0
}

// openEngine runs recovery against cfg.DataDir and installs the
// recovered stores and WAL sinks on the node. Called from NewNode
// before the transport starts serving, so no mutation can race it.
func (n *Node) openEngine() error {
	eng, rec, err := wal.Open(wal.Options{
		Dir:           n.cfg.DataDir,
		Policy:        n.cfg.Fsync,
		FsyncInterval: n.cfg.FsyncInterval,
	})
	if err != nil {
		return err
	}
	n.eng = eng
	n.store = *rec.Primary
	n.replStore = *rec.Replica
	n.recovery = RecoveryInfo{
		Enabled:      true,
		Clean:        rec.Clean,
		SnapshotAt:   rec.SnapshotAt,
		Replayed:     rec.Replayed,
		TornTail:     rec.TornTail,
		Items:        rec.Primary.Len(),
		ReplicaItems: rec.Replica.Len(),
		Tombstones:   rec.Primary.TombstoneCount() + rec.Replica.TombstoneCount(),
	}
	// Sinks attach after replay (ApplyMutation must not re-log) and
	// feed every subsequent mutation to the WAL in apply order — the
	// same hook discipline as the digest tree, under the same n.mu.
	n.store.SetSink(func(m storage.Mutation) { n.logMut(wal.StorePrimary, m) })
	n.replStore.SetSink(func(m storage.Mutation) { n.logMut(wal.StoreReplica, m) })
	return nil
}

// logMut appends one mutation to the WAL. Engine errors are sticky
// inside the engine and surface through PersistStats; the in-memory
// store stays authoritative for the running process either way.
func (n *Node) logMut(store uint8, m storage.Mutation) {
	_ = n.eng.Append(wal.Record{Store: store, Mut: m})
}

// Recovery returns what this node reconstructed at startup.
func (n *Node) Recovery() RecoveryInfo { return n.recovery }

// PersistStats reports the durable engine's on-disk footprint. ok is
// false when the node runs without a data directory.
func (n *Node) PersistStats() (st wal.Stats, ok bool) {
	if n.eng == nil {
		return wal.Stats{}, false
	}
	return n.eng.Stats(), true
}

// Snapshot forces a compacted snapshot of both stores, truncating the
// WAL. No-op without a durable engine.
func (n *Node) Snapshot() error {
	if n.eng == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Snapshot(&n.store, &n.replStore, time.Now().UnixNano())
}

// maybeSnapshot compacts when the WAL has grown past the configured
// frame threshold. Runs at the end of every stabilisation round, so
// compaction cost is amortised into maintenance, never a foreground
// write.
func (n *Node) maybeSnapshot() {
	if n.eng == nil {
		return
	}
	if st := n.eng.Stats(); st.Frames >= uint64(n.cfg.SnapshotEvery) {
		_ = n.Snapshot()
	}
}

// CloseClean is the graceful counterpart of Close: write a final
// snapshot and the clean-shutdown marker, then leave the network. A
// node restarted from this state replays nothing and re-announces its
// arc immediately. Without a durable engine it is exactly Close.
func (n *Node) CloseClean() error {
	if n.eng == nil {
		return n.Close()
	}
	n.mu.Lock()
	n.down = true
	serr := n.eng.Snapshot(&n.store, &n.replStore, time.Now().UnixNano())
	if serr == nil {
		serr = n.eng.MarkClean()
	}
	n.mu.Unlock()
	terr := n.tr.Close()
	cerr := n.eng.Close()
	if serr != nil {
		return serr
	}
	if terr != nil {
		return terr
	}
	return cerr
}

// JoinShipped reports how many items and tombstones the last Join
// actually pulled from the successor — with recovered state announced,
// the delta filter keeps already-held keys home, so this is the
// downtime delta rather than the full arc.
func (n *Node) JoinShipped() (items, tombs int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastJoinItems, n.lastJoinTombs
}

// joinStatesLocked builds the per-key state vector (both stores merged,
// restricted to the arc being claimed) a recovered joiner announces on
// migrate, letting the responder ship only what the joiner lacks.
func (n *Node) joinStatesLocked(arc keyspace.Range) []antientropy.State {
	if n.eng == nil || !n.recovery.HasState() {
		return nil
	}
	states := n.store.SyncStates(arc)
	have := make(map[keyspace.Key]struct{}, len(states))
	for _, s := range states {
		have[s.Key] = struct{}{}
	}
	for _, s := range n.replStore.SyncStates(arc) {
		if _, dup := have[s.Key]; !dup {
			states = append(states, s)
		}
	}
	return states
}

// filterMigrateItems drops items the requester proved it already holds
// byte-identically (matching item hash). Tombstoned or missing keys
// never match — a tombstone state hashes differently — so they always
// ship.
func filterMigrateItems(items []storage.Item, states []antientropy.State) []storage.Item {
	if len(states) == 0 {
		return items
	}
	have := make(map[keyspace.Key]uint64, len(states))
	for _, s := range states {
		if !s.Deleted {
			have[s.Key] = s.Hash
		}
	}
	kept := items[:0]
	for _, it := range items {
		if h, ok := have[it.Key]; ok && h == antientropy.ItemHash(it.Key, it.Value) {
			continue
		}
		kept = append(kept, it)
	}
	return kept
}

// relocateRecoveredLocked re-sorts recovered state against the arc the
// node just claimed: in-arc replica state is promoted into the primary
// store (it is now this node's to serve) and out-of-arc primary state
// is demoted into the replica store, where anti-entropy against the
// keys' current owners reconciles it. After this the primary store
// holds exactly the owned arc — the invariant the digest tree summary
// depends on.
func (n *Node) relocateRecoveredLocked(arc keyspace.Range) {
	for _, it := range n.replStore.ExtractRange(arc) {
		_, live := n.store.Get(it.Key)
		_, dead := n.store.Tombstone(it.Key)
		if !live && !dead {
			n.store.Put(it.Key, it.Value)
		}
	}
	for _, tb := range n.replStore.ExtractTombstones(arc) {
		if _, live := n.store.Get(tb.Key); !live {
			n.store.SetTombstone(tb.Key, tb.At)
		}
	}
	outside := keyspace.Range{Start: arc.End, End: arc.Start}
	strayItems := n.store.ExtractRange(outside)
	strayTombs := n.store.ExtractTombstones(outside)
	n.replStore.InsertBulk(strayItems)
	n.replStore.InsertTombstones(strayTombs)
}
