// Package transport provides the message fabric for the live (non-simulated)
// overlay runtime in internal/p2p: a blocking request/response Call
// abstraction with two implementations — an in-memory channel fabric for
// tests and single-process clusters, and a TCP fabric (length-prefixed JSON)
// for real deployments.
package transport

import (
	"errors"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Addr addresses one node endpoint. For the TCP fabric it is "host:port";
// for the in-memory fabric an arbitrary unique string.
type Addr string

// PeerRef pairs a peer's address with its identifier — the unit of routing
// tables and neighbour lists.
type PeerRef struct {
	Addr Addr
	Key  keyspace.Key
}

// Op enumerates the RPC operations of the overlay protocol.
type Op string

// The overlay protocol operations.
const (
	OpPing      Op = "ping"       // liveness probe
	OpInfo      Op = "info"       // peer's key, caps, degrees
	OpGetSucc   Op = "get_succ"   // successor pointer
	OpGetPred   Op = "get_pred"   // predecessor pointer
	OpNotify    Op = "notify"     // Chord notify: candidate predecessor
	OpNeighbors Op = "neighbors"  // neighbour refs within a range + degree
	OpLink      Op = "link"       // request a long-range in-link
	OpUnlink    Op = "unlink"     // release a long-range in-link
	OpFindOwner Op = "find_owner" // iterative routing step: best next hop
	OpPut       Op = "put"        // store an item (owner only)
	OpGet       Op = "get"        // fetch an item (owner only)
	OpRangeScan Op = "range_scan" // scan the local shard
	OpMigrate   Op = "migrate"    // hand over items in a range (join)
)

// Request is the wire request. One struct covers all ops; unused fields are
// zero (JSON-omitted).
type Request struct {
	Op   Op      `json:"op"`
	From PeerRef `json:"from,omitempty"`

	Key   keyspace.Key   `json:"key,omitempty"`
	Range keyspace.Range `json:"range,omitempty"`
	Value []byte         `json:"value,omitempty"`
	Limit int            `json:"limit,omitempty"`
	// Exclude lists peers the query has discovered dead (or routeless);
	// find_owner skips them — the live analogue of the simulator's
	// per-query known-dead set.
	Exclude []Addr `json:"exclude,omitempty"`
}

// Response is the wire response.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Peer   PeerRef        `json:"peer,omitempty"`
	Peers  []PeerRef      `json:"peers,omitempty"`
	Degree int            `json:"degree,omitempty"`
	Value  []byte         `json:"value,omitempty"`
	Found  bool           `json:"found,omitempty"`
	Items  []storage.Item `json:"items,omitempty"`
	MaxIn  int            `json:"max_in,omitempty"`
	MaxOut int            `json:"max_out,omitempty"`
	InDeg  int            `json:"in_deg,omitempty"`
}

// Handler processes one incoming request.
type Handler func(*Request) *Response

// Transport is one node's endpoint on the fabric.
type Transport interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Call sends a request to a remote endpoint and waits for its response.
	// A transport-level failure (dead peer, closed endpoint) returns an
	// error — the live-network analogue of probing a stale link.
	Call(addr Addr, req *Request) (*Response, error)
	// Serve installs the handler for incoming requests. It must be called
	// exactly once before the first Call arrives.
	Serve(h Handler)
	// Close tears the endpoint down; subsequent calls to it fail.
	Close() error
}

// ErrUnreachable reports a dead or unknown endpoint.
var ErrUnreachable = errors.New("transport: peer unreachable")
