package transport

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport tuning defaults; override per endpoint with TCPOptions.
const (
	// defaultCallTimeout bounds one RPC round trip when the caller's
	// context carries no deadline; a peer that cannot answer within it is
	// treated as dead (the probe semantics routing relies on).
	defaultCallTimeout = 5 * time.Second
	// defaultPoolSize is the persistent-connection cap per peer.
	defaultPoolSize = 2
	// defaultIdleTimeout is how long a pooled connection may sit without
	// in-flight calls before the reaper closes it. Server-side connections
	// get 4x this before an idle read deadline fires, so the client side
	// always disconnects first.
	defaultIdleTimeout = 60 * time.Second
	// defaultMaxInflight caps, per client connection, the calls awaiting a
	// response, and, per endpoint, the requests being handled concurrently.
	// Both sides of the backpressure contract: a client saturating its cap
	// fails fast with ErrOverloaded, a server past its cap sheds the
	// excess deterministically instead of growing a goroutine per queued
	// request.
	defaultMaxInflight = 256
)

// Codec handshake preamble: a connection that opens with these four bytes
// is negotiating a codec version (one more byte: the client's best).
// A legacy frame can never start with 0xF7 — the first byte of its 4-byte
// big-endian length prefix is at most 0x01 under the 16 MiB frame cap —
// so the server distinguishes handshaking peers from legacy JSON peers by
// peeking one byte.
var codecMagic = [4]byte{0xF7, 'O', 'S', 'C'}

// overloadedWireErr is the Response.Err marker of a shed request. It is
// matched exactly by the client and surfaced as ErrOverloaded, so handler
// error strings can never be mistaken for transport-level shedding.
const overloadedWireErr = "transport: overloaded"

// TCPOption customises a TCP endpoint.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	poolSize    int
	callTimeout time.Duration
	idleTimeout time.Duration
	maxInflight int
	codecMax    uint8
	tlsConf     *tls.Config
}

// WithPoolSize sets the persistent-connection cap per peer (default 2).
func WithPoolSize(n int) TCPOption {
	return func(o *tcpOptions) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithCallTimeout sets the default per-call timeout applied when the
// caller's context has no deadline (default 5s).
func WithCallTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.callTimeout = d
		}
	}
}

// WithIdleTimeout sets how long a pooled connection may idle before being
// reaped (default 60s).
func WithIdleTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.idleTimeout = d
		}
	}
}

// WithMaxInflight sets the backpressure cap (default 256): at most n calls
// awaiting responses per client connection, and at most n requests being
// handled concurrently by this endpoint's server side. A client past its
// cap blocks until a slot frees or its context expires (then fails with
// ErrOverloaded); a server past its cap answers the excess with an
// overload error immediately — deterministic shedding with a bounded
// goroutine count — instead of queueing unboundedly.
func WithMaxInflight(n int) TCPOption {
	return func(o *tcpOptions) {
		if n > 0 {
			o.maxInflight = n
		}
	}
}

// WithJSONCodec pins the endpoint to the legacy JSON wire codec: outbound
// connections skip the version handshake entirely (so they interoperate
// with peers that predate it), and inbound negotiation never offers more
// than JSON. Use it on one side of a rolling upgrade; binary-capable peers
// fall back per connection automatically.
func WithJSONCodec() TCPOption {
	return func(o *tcpOptions) { o.codecMax = codecJSON }
}

// WithTLS wraps every connection — inbound and outbound — in TLS using
// cfg. The listener side needs cfg.Certificates; the dial side needs the
// peers' roots in cfg.RootCAs (or InsecureSkipVerify) and derives
// ServerName from the dialed host:port when cfg leaves it empty, so one
// shared config serves a whole symmetric fleet. nil leaves the endpoint
// on plain TCP.
func WithTLS(cfg *tls.Config) TCPOption {
	return func(o *tcpOptions) { o.tlsConf = cfg }
}

// TCPEndpoint is a Transport over real sockets: persistent pooled
// connections carrying length-prefixed frames tagged with request ids, so
// many in-flight Calls multiplex over one connection in each direction.
// The payload codec — compact binary by default, JSON for legacy peers —
// is negotiated once per connection by a one-byte-version handshake. The
// server side reads frames in a loop and answers each request on its own
// goroutine, bounded by the endpoint's in-flight cap; excess load is shed
// with a typed overload error. Broken connections are evicted and
// redialed on the next call. With WithTLS, every connection is encrypted.
type TCPEndpoint struct {
	ln   net.Listener
	pool *pool
	opts tcpOptions

	// slots is the server-side handler semaphore: one token per request
	// being handled, across all connections.
	slots chan struct{}

	mu      sync.RWMutex
	handler Handler
	closed  bool
	conns   map[net.Conn]struct{} // live server-side connections

	wg         sync.WaitGroup
	stopReaper chan struct{}
}

// ListenTCP opens an endpoint on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(bind string, options ...TCPOption) (*TCPEndpoint, error) {
	opts := tcpOptions{
		poolSize:    defaultPoolSize,
		callTimeout: defaultCallTimeout,
		idleTimeout: defaultIdleTimeout,
		maxInflight: defaultMaxInflight,
		codecMax:    codecMax,
	}
	for _, opt := range options {
		opt(&opts)
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	if opts.tlsConf != nil {
		ln = tls.NewListener(ln, opts.tlsConf)
	}
	e := &TCPEndpoint{
		ln:         ln,
		pool:       newPool(opts.poolSize, opts.callTimeout, opts.callTimeout, opts.maxInflight, opts.codecMax, opts.tlsConf),
		opts:       opts,
		slots:      make(chan struct{}, opts.maxInflight),
		conns:      make(map[net.Conn]struct{}),
		stopReaper: make(chan struct{}),
	}
	e.wg.Add(2)
	go e.acceptLoop()
	go e.reapLoop()
	return e, nil
}

// Addr implements Transport.
func (e *TCPEndpoint) Addr() Addr { return Addr(e.ln.Addr().String()) }

// Serve implements Transport.
func (e *TCPEndpoint) Serve(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// PeerCodecs reports the negotiated wire codec version of each peer this
// endpoint currently holds a live pooled connection to (2 = binary,
// 1 = JSON). Peers without a live connection are absent.
func (e *TCPEndpoint) PeerCodecs() map[Addr]int {
	return e.pool.peerCodecs()
}

// reapLoop periodically closes idle pooled connections.
func (e *TCPEndpoint) reapLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.idleTimeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopReaper:
			return
		case <-ticker.C:
			e.pool.reap(e.opts.idleTimeout)
		}
	}
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		setNoDelay(conn)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
			e.mu.Lock()
			delete(e.conns, conn)
			e.mu.Unlock()
			_ = conn.Close()
		}()
	}
}

// setNoDelay disables Nagle on the underlying TCP connection, reaching
// through a TLS wrapper when present.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*tls.Conn); ok {
		conn = tc.NetConn()
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// acceptCodec runs the server half of the codec handshake: peek one byte;
// the handshake magic negotiates min(ours, theirs) and answers with it,
// anything else is a legacy JSON peer mid-frame (nothing is consumed).
func (e *TCPEndpoint) acceptCodec(conn net.Conn, br *bufio.Reader) (uint8, error) {
	_ = conn.SetReadDeadline(time.Now().Add(e.opts.callTimeout))
	first, err := br.Peek(1)
	if err != nil {
		return 0, err
	}
	if first[0] != codecMagic[0] {
		return codecJSON, nil
	}
	var hello [5]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return 0, err
	}
	if [4]byte(hello[:4]) != codecMagic {
		return 0, errors.New("transport: bad codec handshake")
	}
	version := hello[4]
	if version > e.opts.codecMax {
		version = e.opts.codecMax
	}
	if version < codecJSON {
		return 0, fmt.Errorf("transport: peer offered codec %d", hello[4])
	}
	_ = conn.SetWriteDeadline(time.Now().Add(e.opts.callTimeout))
	if _, err := conn.Write([]byte{version}); err != nil {
		return 0, err
	}
	return version, nil
}

// serveConn is the server half of one multiplexed connection: negotiate
// the codec, then read frames in a loop, answering each on its own
// goroutine so a slow handler never head-of-line-blocks the connection,
// with response writes serialized by the connection writer. When every
// handler slot of the endpoint is taken, further requests are answered
// with an overload error without touching the handler — the node sheds
// load at a deterministic bound instead of ballooning goroutines. Any
// protocol violation (oversized frame, garbage payload) or idle expiry
// ends the connection.
func (e *TCPEndpoint) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	codec, err := e.acceptCodec(conn, br)
	if err != nil {
		return
	}
	wr := startConnWriter(conn, e.opts.callTimeout, func(error) { _ = conn.Close() })
	defer wr.close()
	respond := func(id uint64, resp *Response) bool {
		frame := acquireFrame()
		err := frame.encode(id, resp, codec)
		if err != nil {
			err = frame.encode(id, &Response{OK: false, Err: err.Error()}, codec)
		}
		if err != nil {
			releaseFrame(frame)
			_ = conn.Close() // unblocks the read loop
			return false
		}
		if wr.enqueue(context.Background(), frame) != nil {
			releaseFrame(frame) // a dead writer already closed the conn
			return false
		}
		return true
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(4 * e.opts.idleTimeout))
		var req Request
		id, err := readMuxFrame(br, &req, codec)
		if err != nil {
			return
		}
		e.mu.RLock()
		h := e.handler
		closed := e.closed
		e.mu.RUnlock()
		if closed {
			return
		}
		select {
		case e.slots <- struct{}{}:
		default:
			// Every handler slot is busy: shed this request now. The
			// response is encoded on the read goroutine — cheap, bounded —
			// and the caller gets a typed ErrOverloaded.
			respond(id, &Response{OK: false, Err: overloadedWireErr})
			continue
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() { <-e.slots }()
			resp := &Response{OK: false, Err: "no handler"}
			if h != nil {
				resp = h(&req)
			}
			respond(id, resp)
		}()
	}
}

// Call implements Transport.
func (e *TCPEndpoint) Call(addr Addr, req *Request) (*Response, error) {
	return e.CallCtx(context.Background(), addr, req)
}

// CallCtx implements Transport. It multiplexes the call over a pooled
// persistent connection; if the connection turns out to be stale before
// the request is sent (e.g. the peer restarted since it was dialed) it
// evicts it and retries once on a fresh dial. Once the request may have
// reached the peer, a failure returns without retrying — at-most-once
// delivery, so non-idempotent ops (migrate) never execute twice. A peer
// that shed the request — or a saturated local in-flight cap — surfaces
// as ErrOverloaded, distinct from ErrUnreachable: the peer is alive,
// just behind.
func (e *TCPEndpoint) CallCtx(ctx context.Context, addr Addr, req *Request) (*Response, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrUnreachable
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.callTimeout)
		defer cancel()
	}

	const attempts = 2
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		mc, err := e.pool.get(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		resp, err := mc.call(ctx, req)
		if err == nil {
			if resp.Err == overloadedWireErr {
				return nil, fmt.Errorf("%w: %s shed the request", ErrOverloaded, addr)
			}
			return resp, nil
		}
		if errors.Is(err, ErrOverloaded) {
			return nil, err
		}
		broken, isBroken := err.(errConnBroken)
		if !isBroken {
			return nil, fmt.Errorf("%w: %w", ErrUnreachable, err) // timeout/cancel
		}
		e.pool.evict(addr, mc)
		if broken.sent {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrUnreachable, lastErr)
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()

	err := e.ln.Close()
	close(e.stopReaper)
	e.pool.closeAll()
	for _, c := range conns {
		_ = c.Close() // unblocks server read loops
	}
	e.wg.Wait()
	return err
}
