package sampling

import (
	"math"
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// buildLine creates n peers with keys i*step on a stitched ring, plus a few
// random long-range links so walks can mix.
func buildLine(t *testing.T, n int, links int, seed int64) (*graph.Network, *ring.Ring) {
	t.Helper()
	g := graph.New()
	r := ring.New(g)
	step := keyspace.MaxKey / keyspace.Key(n)
	for i := 0; i < n; i++ {
		node := g.Add(keyspace.Key(i)*step, 64, 64)
		r.Insert(node.ID)
	}
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for l := 0; l < links; l++ {
			to := graph.NodeID(rnd.Intn(n))
			_ = g.AddLink(graph.NodeID(i), to) // self/dup errors are fine here
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return g, r
}

func TestWalkStaysInRange(t *testing.T) {
	g, _ := buildLine(t, 200, 4, 1)
	w := NewWalker(g, rand.New(rand.NewSource(2)))
	// Range covering keys of peers 50..149.
	step := keyspace.MaxKey / 200
	rg := keyspace.Range{Start: 50 * step, End: 150 * step}
	start := graph.NodeID(70)
	for trial := 0; trial < 50; trial++ {
		end, err := w.Walk(start, rg, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.Contains(g.Node(end).Key) {
			t.Fatalf("walk escaped the range: landed on key %v", g.Node(end).Key)
		}
	}
}

func TestWalkRejectsBadStart(t *testing.T) {
	g, _ := buildLine(t, 50, 2, 1)
	w := NewWalker(g, rand.New(rand.NewSource(2)))
	step := keyspace.MaxKey / 50
	rg := keyspace.Range{Start: 10 * step, End: 20 * step}
	if _, err := w.Walk(graph.NodeID(30), rg, 5); err != ErrEmptyRange {
		t.Errorf("out-of-range start: err = %v", err)
	}
	g.Kill(graph.NodeID(12))
	if _, err := w.Walk(graph.NodeID(12), rg, 5); err != ErrEmptyRange {
		t.Errorf("dead start: err = %v", err)
	}
}

func TestWalkSkipsDeadPeers(t *testing.T) {
	g, r := buildLine(t, 100, 3, 3)
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		r.Kill(graph.NodeID(rnd.Intn(100)))
	}
	w := NewWalker(g, rnd)
	alive := g.AliveIDs()
	start := alive[0]
	for trial := 0; trial < 100; trial++ {
		end, err := w.Walk(start, keyspace.FullRange(), 20)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Node(end).Alive {
			t.Fatal("walk landed on a dead peer")
		}
	}
}

// TestMHUniformity is the statistical heart of the walker: on a ring with
// heterogeneous degrees, visit frequencies after mixing must be near-uniform
// rather than proportional to degree.
func TestMHUniformity(t *testing.T) {
	const n = 40
	g := graph.New()
	r := ring.New(g)
	step := keyspace.MaxKey / n
	for i := 0; i < n; i++ {
		node := g.Add(keyspace.Key(i)*step, 64, 64)
		r.Insert(node.ID)
	}
	// Heterogeneous: a hub (peer 0) linked to many peers; others sparse.
	for i := 1; i <= 20; i++ {
		if err := g.AddLink(0, graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWalker(g, rand.New(rand.NewSource(5)))
	counts := make([]int, n)
	const trials = 30000
	for trial := 0; trial < trials; trial++ {
		end, err := w.Walk(graph.NodeID(trial%n), keyspace.FullRange(), 60)
		if err != nil {
			t.Fatal(err)
		}
		counts[end]++
	}
	want := float64(trials) / n
	// The hub must not be oversampled by more than ~35%; a plain (non-MH)
	// walk would oversample it by a factor of ~(22/2) ≈ 10.
	if float64(counts[0]) > want*1.35 {
		t.Errorf("hub visited %d times, uniform expectation %.0f: MH correction failing", counts[0], want)
	}
	// Chi-square-ish sanity: no peer wildly off.
	for i, c := range counts {
		if float64(c) < want*0.5 || float64(c) > want*1.6 {
			t.Errorf("peer %d visited %d times vs expectation %.0f", i, c, want)
		}
	}
}

func TestSampleChainCountAndCost(t *testing.T) {
	g, _ := buildLine(t, 100, 3, 6)
	w := NewWalker(g, rand.New(rand.NewSource(7)))
	samples, cost, err := w.SampleChain(0, keyspace.FullRange(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Errorf("got %d samples", len(samples))
	}
	if cost != 55 { // burn-in 5 + 10 gaps of 5
		t.Errorf("cost = %d, want 55", cost)
	}
}

func TestEstimateMedianOnUniformLine(t *testing.T) {
	g, _ := buildLine(t, 400, 6, 8)
	w := NewWalker(g, rand.New(rand.NewSource(9)))
	m, _, err := w.EstimateMedian(0, keyspace.FullRange(), 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	// True median from peer 0 over a uniform line is near the antipode.
	got := m.Float()
	if math.Abs(got-0.5) > 0.2 {
		t.Errorf("estimated median at fraction %.3f, want ≈0.5", got)
	}
}

func TestMedianFrom(t *testing.T) {
	// Keys clockwise from origin 0: 10, 20, 30, 40.
	keys := []keyspace.Key{30, 10, 40, 20}
	if m := MedianFrom(0, keys); m != 30 {
		t.Errorf("median = %v, want 30 (upper middle)", m)
	}
	if m := MedianFrom(0, []keyspace.Key{7}); m != 7 {
		t.Errorf("singleton median = %v", m)
	}
	if m := MedianFrom(5, nil); m != 5 {
		t.Errorf("empty median should fall back to origin, got %v", m)
	}
	// Wrapping: origin 100, keys at 150, 200, 50 (50 is farthest clockwise).
	if m := MedianFrom(100, []keyspace.Key{150, 200, 50}); m != 200 {
		t.Errorf("wrapped median = %v, want 200", m)
	}
}

func TestSingleNodeWalk(t *testing.T) {
	g := graph.New()
	r := ring.New(g)
	n := g.Add(5, 4, 4)
	r.Insert(n.ID)
	w := NewWalker(g, rand.New(rand.NewSource(1)))
	end, err := w.Walk(n.ID, keyspace.FullRange(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if end != n.ID {
		t.Error("walk on a singleton must stay put")
	}
}
