// Package partition implements the core construction of the paper's §2:
// each Oscar node u splits the identifier circle into logarithmically many
// partitions A1..AL of geometrically shrinking population.
//
// Walking clockwise from uid, the border between A1 and A2 is the median m1
// of the whole population; the border between A2 and A3 is the median m2 of
// the subpopulation remaining after removing A1 (the far half); and so on:
// A_i = [m_i, m_{i-1}) with m_0 = uid. Ideally |A1| = n/2, |A2| = n/4, …
// The partition count adapts to the (unknown) network size: splitting stops
// when the remaining population is exhausted, so roughly log₂ N levels
// emerge without any global knowledge.
//
// Two builders are provided: BuildSampled estimates each median from
// range-restricted random-walk samples (the deployable algorithm, "very good
// results in practice even with very low sample sizes"); BuildExact computes
// true medians from the global ring (the oracle used by tests and the
// accuracy ablation).
package partition

import (
	"fmt"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

// Partitions is the result of the construction for one node.
type Partitions struct {
	// Node is the owning peer.
	Node graph.NodeID
	// NodeKey is the peer's identifier (m_0).
	NodeKey keyspace.Key
	// Borders holds m_1, m_2, … m_L: each border is closer (clockwise-wise)
	// to the node than the previous one.
	Borders []keyspace.Key
	// Cost is the number of walk messages spent estimating the borders
	// (zero for the oracle builder).
	Cost int
}

// Count returns the number of partitions L.
func (p *Partitions) Count() int { return len(p.Borders) }

// Range returns partition A_(i+1) for i in [0, Count): Range(0) is the far
// half [m_1, uid), Range(Count-1) the nearest population.
func (p *Partitions) Range(i int) keyspace.Range {
	if i == 0 {
		return keyspace.Range{Start: p.Borders[0], End: p.NodeKey}
	}
	return keyspace.Range{Start: p.Borders[i], End: p.Borders[i-1]}
}

// Ranges returns all partitions, far half first.
func (p *Partitions) Ranges() []keyspace.Range {
	out := make([]keyspace.Range, p.Count())
	for i := range out {
		out[i] = p.Range(i)
	}
	return out
}

// CheckInvariants verifies the structural partition properties: borders
// strictly approach the node clockwise and ranges tile the circle minus the
// node's own position.
func (p *Partitions) CheckInvariants() error {
	prev := p.NodeKey // m_0
	for i, b := range p.Borders {
		if b == p.NodeKey {
			return fmt.Errorf("partition: border %d equals the node key", i)
		}
		if i > 0 {
			// b must lie strictly inside [nodeKey, prev).
			if !(keyspace.Range{Start: p.NodeKey, End: prev}).Contains(b) {
				return fmt.Errorf("partition: border %d (%v) not inside remaining range [%v,%v)", i, b, p.NodeKey, prev)
			}
		}
		prev = b
	}
	return nil
}

// BuildExact computes true-median partitions from global knowledge. The
// population is every alive peer except u itself.
func BuildExact(net *graph.Network, rg *ring.Ring, u graph.NodeID) *Partitions {
	node := net.Node(u)
	p := &Partitions{Node: u, NodeKey: node.Key}
	// Alive peers clockwise from u, excluding u.
	var pop []keyspace.Key
	rg.ScanRange(keyspace.FullRange(), func(id graph.NodeID) bool {
		if id != u {
			pop = append(pop, net.Node(id).Key)
		}
		return true
	})
	// ScanRange starts at key 0; rotate so pop is ordered clockwise from u.
	rotated := make([]keyspace.Key, 0, len(pop))
	var before []keyspace.Key
	for _, k := range pop {
		if node.Key.Distance(k) > 0 && k >= node.Key {
			rotated = append(rotated, k)
		} else {
			before = append(before, k)
		}
	}
	pop = append(rotated, before...)
	for len(pop) > 0 {
		mid := len(pop) / 2
		border := pop[mid]
		if border == node.Key {
			// A peer sharing u's key: it is covered by the previous border.
			break
		}
		if len(p.Borders) > 0 && border == p.Borders[len(p.Borders)-1] {
			// Duplicate keys straddling the median: the equal-key peers are
			// already covered by the previous partition; keep halving.
			pop = pop[:mid]
			continue
		}
		p.Borders = append(p.Borders, border)
		pop = pop[:mid]
	}
	return p
}

// SampleParams tunes the sampled builder.
type SampleParams struct {
	// Samples is the number of walk samples per median estimate.
	Samples int
	// Steps is the number of Metropolis–Hastings moves between samples.
	Steps int
	// MaxLevels bounds the partition count (a safety net; the natural
	// stopping rule usually fires first at ~log₂ N levels).
	MaxLevels int
}

// DefaultSampleParams matches the paper's "very low sample sizes" regime.
func DefaultSampleParams() SampleParams {
	return SampleParams{Samples: 12, Steps: 8, MaxLevels: 48}
}

// BuildSampled estimates the partitions for node u using only local
// information and restricted random walks, per the paper's algorithm. The
// node's ring successor provides the local stopping rule: when the estimated
// median reaches the successor, the remaining population is exhausted.
func BuildSampled(net *graph.Network, w *sampling.Walker, u graph.NodeID, params SampleParams) *Partitions {
	node := net.Node(u)
	p := &Partitions{Node: u, NodeKey: node.Key}
	if node.Succ == graph.NoNode || node.Succ == u {
		return p // alone on the ring: no population to link to
	}
	succKey := net.Node(node.Succ).Key
	prev := node.Key // m_0: remaining range is [uid, prev) == full circle initially
	for level := 0; level < params.MaxLevels; level++ {
		remaining := keyspace.Range{Start: node.Key, End: prev}
		samples, cost, err := w.SampleChain(u, remaining, params.Samples, params.Steps)
		p.Cost += cost
		if err != nil {
			break
		}
		// The node estimates the median of the *other* peers in the range;
		// its own key would anchor the estimate at distance zero, which on
		// tiny populations drowns the signal.
		keys := make([]keyspace.Key, 0, len(samples))
		for _, id := range samples {
			if id != u {
				keys = append(keys, net.Node(id).Key)
			}
		}
		if len(keys) == 0 {
			break // the remaining population appears empty
		}
		m := sampling.MedianFrom(node.Key, keys)
		if m == node.Key {
			// A peer sharing u's key: covered by the previous border.
			break
		}
		if level > 0 && !remaining.Contains(m) {
			break // defensive: a stale estimate escaped the range
		}
		p.Borders = append(p.Borders, m)
		prev = m
		if m == succKey {
			// The nearest peer is the border: the remaining open range
			// (uid, m) holds no peers; the construction is complete.
			break
		}
	}
	// If MaxLevels cut the recursion short, close the tiling with the
	// successor so every peer stays reachable through some partition.
	if len(p.Borders) > 0 && p.Borders[len(p.Borders)-1] != succKey {
		last := keyspace.Range{Start: node.Key, End: p.Borders[len(p.Borders)-1]}
		if last.Contains(succKey) {
			p.Borders = append(p.Borders, succKey)
		}
	}
	return p
}
