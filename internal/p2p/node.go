// Package p2p is the live (message-passing) implementation of the Oscar
// node: the same algorithms as the sequential simulator — Chord-style ring
// maintenance, restricted-walk median sampling, partition-based long-range
// link acquisition with in-degree admission — expressed as RPCs over a
// transport.Transport, so a cluster can run on in-memory channels or real
// TCP sockets.
//
// The simulator (internal/sim) is the tool for 10000-peer experiments; this
// package is the deployment path and the proof that the algorithms need
// nothing beyond per-node local state plus the protocol ops.
package p2p

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/routecache"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
	"github.com/oscar-overlay/oscar/internal/wal"
)

// Config parameterises one node.
type Config struct {
	// Key is the node's position on the identifier circle.
	Key keyspace.Key
	// MaxIn and MaxOut are the link budgets (ρmax).
	MaxIn, MaxOut int
	// Samples and WalkSteps tune median estimation (defaults 12 and 8).
	Samples, WalkSteps int
	// MaxLevels bounds the partition recursion (default 48).
	MaxLevels int
	// PickSteps is the walk length for in-partition candidate draws
	// (default 10).
	PickSteps int
	// DisablePowerOfTwo turns off the two-choices in-degree balancing
	// (enabled by default).
	DisablePowerOfTwo bool
	// Replicas is the replication factor r: every item is stored at its
	// owner and pushed to the owner's r-1 immediate ring successors, so a
	// crash loses routing entries but no data as long as fewer than r
	// consecutive ring members fail together. Default 1 (no replication).
	Replicas int
	// WriteConcern is the default number of acknowledgements — the owner
	// plus chain members — a Put or Delete must collect before it
	// succeeds; with fewer the write still lands wherever it was acked
	// but the call returns ErrWriteConcern carrying the shortfall.
	// Default 1 (the owner's ack alone, the fire-and-forget-replica
	// behaviour); values above Replicas are clamped to it, since a chain
	// can never produce more acks than it has members.
	WriteConcern int
	// AntiEntropy, when positive, is the cadence of the periodic digest
	// sync: the maintenance loop runs an AntiEntropy pass against the
	// replica chain every interval, repairing divergence that no membership
	// change surfaced (a replica that missed a write push, a delete that
	// raced a crash). Zero leaves periodic sync off; membership-change
	// repair in Stabilize still runs.
	AntiEntropy time.Duration
	// TombstoneTTL bounds how long a delete is remembered for anti-entropy
	// purposes. It must exceed the anti-entropy interval by a comfortable
	// margin: a tombstone only needs to survive until every replica has
	// applied it. Default 10 minutes.
	TombstoneTTL time.Duration
	// Seed drives the node's local randomness.
	Seed int64
	// DataDir, when non-empty, makes the node durable: every storage
	// mutation is written to a WAL in this directory, periodically
	// compacted into snapshots, and replayed on the next start so the
	// node rejoins with its arc intact. Empty keeps the seed behaviour
	// (memory only).
	DataDir string
	// Fsync is the WAL fsync policy (wal.PolicyAlways / Interval /
	// Never). Only meaningful with DataDir set.
	Fsync wal.Policy
	// FsyncInterval overrides the background fsync cadence for
	// wal.PolicyInterval (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery is the WAL frame count that triggers a compacting
	// snapshot at the next stabilisation round (default 4096).
	SnapshotEvery int
	// Alpha is the lookup parallelism α: each routing hop probes the
	// current peer plus up to α-1 backtrack candidates concurrently, so a
	// dead or slow hop is recovered from answers already in hand instead
	// of a serial ping round. α=1 (the default) is the classic one-probe
	// walk; higher values spend more messages per hop to cut the tail.
	Alpha int
	// RouteCacheSize bounds the per-node LRU of key → owner+chain
	// resolutions; a hit lets data ops skip the routing walk. Every hit
	// is re-validated against the ring (ownership gates for writes, a
	// direct find_owner for reads) before being trusted, so a stale entry
	// costs one wasted RPC, never a wrong answer. 0 means the default
	// (128); negative disables the cache.
	RouteCacheSize int
	// RouteCacheTTL ages route-cache entries (default 2s); <0 disables
	// aging.
	RouteCacheTTL time.Duration
	// HotKeyCache bounds the requester-side LRU of hot-key value copies.
	// A cached read is served only after the owner (or chain, when the
	// owner is dead) confirms the copy's item hash, so stale copies lose
	// to the ring and tombstones are honoured. 0 means the default (128);
	// negative disables the cache.
	HotKeyCache int
}

func (c *Config) fillDefaults() {
	if c.MaxIn == 0 {
		c.MaxIn = 27
	}
	if c.MaxOut == 0 {
		c.MaxOut = 27
	}
	if c.Samples == 0 {
		c.Samples = 12
	}
	if c.WalkSteps == 0 {
		c.WalkSteps = 8
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 48
	}
	if c.PickSteps == 0 {
		c.PickSteps = 10
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.WriteConcern < 1 {
		c.WriteConcern = 1
	}
	if c.WriteConcern > c.Replicas {
		c.WriteConcern = c.Replicas
	}
	if c.TombstoneTTL == 0 {
		c.TombstoneTTL = 10 * time.Minute
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.Alpha < 1 {
		c.Alpha = 1
	}
	if c.RouteCacheSize == 0 {
		c.RouteCacheSize = 128
	}
	if c.RouteCacheTTL == 0 {
		c.RouteCacheTTL = 2 * time.Second
	}
	if c.HotKeyCache == 0 {
		c.HotKeyCache = 128
	}
}

// minSuccList is the floor on the successor-list length: even without
// replication the ring keeps a few spare successors so repair after a
// crashed successor walks the list instead of guessing from long-range
// links.
const minSuccList = 4

// lockedRand guards a rand.Rand so the maintenance loop, parallel RPC
// fanouts, and user-facing calls can draw concurrently (rand.Rand itself is
// not goroutine-safe).
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

func (l *lockedRand) Intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Intn(n)
}

// Node is one live overlay peer.
type Node struct {
	cfg  Config
	tr   transport.Transport
	self transport.PeerRef

	mu sync.Mutex
	// succs is the successor list in ring order: entry 0 is the immediate
	// successor. An empty list means the node is (or believes it is) a
	// one-peer ring. Stabilize refreshes the tail from the live successor.
	succs []transport.PeerRef
	// succsWrapped records that the last list refresh stopped because the
	// ring wrapped back to this node — the list provably covers the whole
	// ring, so its length is an exact peer count. A short list without
	// this flag (fresh join, post-crash fallback) proves nothing.
	succsWrapped bool
	// succsFreshRounds counts consecutive Stabilize refreshes since the
	// list was last spliced provisionally (join, notify, crash repair).
	// Each refresh re-verifies one more tail entry: the head is ping-
	// verified directly and entry j is head's entry j-1 from the previous
	// round, so after len(succs) rounds the whole list is known to be
	// consecutive ring members. Only then does its density feed the
	// ring-size gossip — a provisional tail predates peers that joined in
	// between, spans far too much of the circle, and the resulting gross
	// underestimate is exactly the outlier a harmonic mean is most
	// sensitive to.
	succsFreshRounds int
	pred             transport.PeerRef
	// arcFloor remembers the last real predecessor's key even after the
	// slot is cleared by a failure (pred = self). While the slot is
	// cleared, the routing layer claims the whole counterclockwise circle
	// (findOwnerLocked — lookups must terminate somewhere); the write
	// gate must not inherit that claim wholesale, or every write routed
	// through the node during the window is accepted, acked, and
	// stranded once the ring heals. ownsLocked keeps accepting the
	// node's own arc down to this floor; inheriting the dead
	// predecessor's arc for writes waits until the next-live
	// predecessor's notify moves the floor.
	arcFloor     keyspace.Key
	haveArcFloor bool
	out          []transport.PeerRef
	in           map[transport.Addr]keyspace.Key
	// store holds the arc the node owns: (pred, self].
	store storage.Store
	// replStore holds copies of predecessors' arcs pushed by their owners;
	// stabilisation promotes entries into store when the node inherits
	// their arc (its predecessor range expanded after a crash).
	replStore storage.Store
	// lastChain snapshots the replica targets of the previous stabilisation
	// round; a difference triggers re-replication of the local arc.
	lastChain []transport.Addr
	// sizeEst is the gossip-maintained ring-size estimate: a blend of the
	// node's own successor-list density estimate and its neighbours'
	// estimates, exchanged on succ_list traffic. 0 until the first
	// stabilisation.
	sizeEst float64
	// lastGCPred and gcTick schedule the replica-collection walk: a
	// predecessor change (or the periodic fallback reaching zero) makes
	// the next stabilisation run it.
	lastGCPred transport.Addr
	gcTick     int
	// stats accumulates anti-entropy work over the node's lifetime.
	stats SyncStats
	// repairing dedupes read-repair: a burst of fallback reads against a
	// stale owner triggers one bounded repair pass, not one per read.
	// repairedAt additionally rate-limits passes (readRepairCooldown), so
	// an unclosable divergence cannot turn reads into a digest storm.
	repairing  bool
	repairedAt time.Time
	down       bool
	// lastJoinItems / lastJoinTombs count what the most recent Join
	// actually pulled over the wire (see JoinShipped).
	lastJoinItems, lastJoinTombs int
	// joinDirty, while non-nil, records every key written (put or
	// deleted) since this node's own Join spliced it into the ring.
	// Migrate chunks still in flight were extracted before those writes
	// landed, so Join filters them against this set — a stale migrated
	// copy must not overwrite a value the new owner already acked, and a
	// migrated item must not resurrect a key it already deleted.
	joinDirty map[keyspace.Key]struct{}

	// eng is the durable WAL engine (nil without Config.DataDir);
	// recovery describes what it reconstructed at startup.
	eng      *wal.Engine
	recovery RecoveryInfo

	// routes caches key → owner+chain resolutions so data ops skip the
	// routing walk; hot caches value copies of read-heavy keys. Both are
	// freshness caches only — every use is validated against the ring
	// (see resolveRead / dataOp / hotGet) — and both are flushed on
	// membership change. nil when disabled; routecache methods are
	// nil-safe.
	routes *routecache.Cache[routeEntry]
	hot    *routecache.Cache[[]byte]
	// Cache effectiveness counters, surfaced through CacheStats. Atomics:
	// they are bumped on the read path without n.mu.
	routeHits, routeMisses, hotHits, hotMisses atomic.Uint64

	rnd *lockedRand
}

// routeEntry is one cached owner resolution: the peer that owned the
// key's arc when it was cached, plus its replica chain for read
// fallback.
type routeEntry struct {
	owner transport.PeerRef
	chain []transport.PeerRef
}

// CacheStats is a snapshot of the node's cache effectiveness counters:
// route hits are data ops that reached the owner through a cached
// resolution, hot hits are reads served from the local value cache after
// a digest check; misses are the ops that paid the full path.
type CacheStats struct {
	RouteHits, RouteMisses uint64
	HotHits, HotMisses     uint64
}

// CacheStats returns the accumulated cache hit/miss counters.
func (n *Node) CacheStats() CacheStats {
	return CacheStats{
		RouteHits:   n.routeHits.Load(),
		RouteMisses: n.routeMisses.Load(),
		HotHits:     n.hotHits.Load(),
		HotMisses:   n.hotMisses.Load(),
	}
}

// NewNode creates a node on the given transport and starts serving its
// protocol handler. The node starts as a one-peer ring (succ = pred = self);
// call Join to enter an existing overlay. With Config.DataDir set it
// first recovers durable state from disk (snapshot load + WAL tail
// replay) — the only way NewNode can fail.
func NewNode(tr transport.Transport, cfg Config) (*Node, error) {
	cfg.fillDefaults()
	n := &Node{
		cfg:  cfg,
		tr:   tr,
		self: transport.PeerRef{Addr: tr.Addr(), Key: cfg.Key},
		in:   make(map[transport.Addr]keyspace.Key),
		rnd:  &lockedRand{r: rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Key)))},
	}
	n.routes = routecache.New[routeEntry](cfg.RouteCacheSize, cfg.RouteCacheTTL)
	n.hot = routecache.New[[]byte](cfg.HotKeyCache, cfg.RouteCacheTTL)
	n.pred = n.self
	if cfg.DataDir != "" {
		// Recovery runs before anything serves: the stores NewNode
		// continues with are the recovered ones, and the WAL sinks are
		// attached before the first reachable mutation.
		if err := n.openEngine(); err != nil {
			return nil, err
		}
	}
	// The primary store carries the incrementally-maintained arc digest:
	// the store holds exactly the owned arc, so its leaf vector is the
	// owner-side summary every sync round starts from. After recovery
	// this re-seeds the tree from the recovered contents.
	n.store.EnableDigest(antientropy.DefaultDepth)
	tr.Serve(n.handle)
	return n, nil
}

// Self returns the node's own peer reference.
func (n *Node) Self() transport.PeerRef { return n.self }

// Replicas returns the node's replication factor r.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// WriteConcern returns the node's default write concern w.
func (n *Node) WriteConcern() int { return n.cfg.WriteConcern }

// succListLen is the target successor-list length: long enough to resolve
// the whole replica chain, and never shorter than the repair floor.
func (n *Node) succListLen() int {
	if n.cfg.Replicas > minSuccList {
		return n.cfg.Replicas
	}
	return minSuccList
}

// succLocked returns the immediate successor (self on a one-peer ring).
func (n *Node) succLocked() transport.PeerRef {
	if len(n.succs) == 0 {
		return n.self
	}
	return n.succs[0]
}

// setSuccLocked installs p as the immediate successor. The previous
// entries stay behind it as provisional tail (ring order is preserved: a
// new closer successor precedes the old one) until the next Stabilize
// refreshes the list from p itself.
func (n *Node) setSuccLocked(p transport.PeerRef) {
	if n.succLocked().Addr != p.Addr {
		// The clockwise neighbourhood changed: every cached resolution —
		// ours or an arc downstream — is suspect. Flushing is cheap and
		// only costs freshness; validation covers correctness either way.
		n.routes.Flush()
	}
	n.succsWrapped = false // provisional list: wrap knowledge is stale
	n.succsFreshRounds = 0 // and its density must not feed the gossip
	if p.Addr == "" || p.Addr == n.self.Addr {
		n.succs = nil
		return
	}
	list := make([]transport.PeerRef, 0, n.succListLen())
	list = append(list, p)
	for _, q := range n.succs {
		if len(list) >= n.succListLen() {
			break
		}
		if q.Addr != p.Addr && q.Addr != n.self.Addr {
			list = append(list, q)
		}
	}
	n.succs = list
}

// replicaTargetsLocked returns the peers that must hold copies of this
// node's arc: the first r-1 successor-list entries.
func (n *Node) replicaTargetsLocked() []transport.PeerRef {
	want := n.cfg.Replicas - 1
	if want <= 0 {
		return nil
	}
	if want > len(n.succs) {
		want = len(n.succs)
	}
	return append([]transport.PeerRef(nil), n.succs[:want]...)
}

// Succ returns the current successor pointer (the successor list's head).
func (n *Node) Succ() transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succLocked()
}

// SuccList returns a snapshot of the successor list, nearest first.
func (n *Node) SuccList() []transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]transport.PeerRef(nil), n.succs...)
}

// Pred returns the current predecessor pointer.
func (n *Node) Pred() transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// OutLinks returns a snapshot of the long-range out-links.
func (n *Node) OutLinks() []transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]transport.PeerRef(nil), n.out...)
}

// InDegree returns the number of registered in-links.
func (n *Node) InDegree() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.in)
}

// StoredItems returns the number of items in the local shard (the arc the
// node owns; replica copies held for predecessors are not counted).
func (n *Node) StoredItems() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Len()
}

// ReplicaItems returns the number of replica copies held for predecessors'
// arcs.
func (n *Node) ReplicaItems() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replStore.Len()
}

// Tombstones returns the number of tombstones held across the primary and
// replica stores (deletes remembered for anti-entropy, not yet collected).
func (n *Node) Tombstones() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.TombstoneCount() + n.replStore.TombstoneCount()
}

// SizeEstimate returns the gossip-maintained ring-size estimate: the blend
// of this node's successor-list density estimate with its neighbours',
// refreshed every stabilisation. On rings small enough for the successor
// list to wrap it is an exact count. 0 means no estimate yet (no
// stabilisation has run); a one-peer ring reports 1.
func (n *Node) SizeEstimate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if local, exact := n.localSizeEstimateLocked(); exact || n.sizeEst == 0 {
		return local
	}
	return n.sizeEst
}

// harmonicBlend combines two ring-size estimates with weights wa+wb=1 in
// inverse space: 1/(wa/a + wb/b). A successor-list density estimate k/f
// is unbiased in its *inverse* (arc fractions f add up to exactly k/N
// across the ring, however skewed the key spacing), so gossip that
// averages inverses converges to the harmonic mean of the local
// estimates — k divided by the true mean arc fraction, i.e. N — where an
// arithmetic blend inherits the heavy right skew of 1/f and
// overestimates under uneven spacing.
func harmonicBlend(a, wa, b, wb float64) float64 {
	if a <= 0 {
		return b
	}
	if b <= 0 {
		return a
	}
	return 1 / (wa/a + wb/b)
}

// localSizeEstimateLocked estimates the ring size from successor-list
// density: k successors spanning fraction f of the circle imply about k/f
// peers. When the last list refresh provably wrapped the ring, the list
// covers every peer, the count is exact, and gossip must not dilute it
// (exact is returned true) — but the wrap proof is only as good as the
// tail it rests on, so it must have survived a full re-verification
// cycle (see succsFreshRounds): a wrap recorded when the ring really was
// three peers would otherwise keep overriding gossip long after a mass
// join. A short list without the wrap proof (fresh join, post-crash
// fallback) still yields a density estimate — never a confident
// miscount.
func (n *Node) localSizeEstimateLocked() (est float64, exact bool) {
	k := len(n.succs)
	if k == 0 {
		return 1, true
	}
	if n.succsWrapped && n.succsFreshRounds >= k {
		return float64(k + 1), true // whole ring in the list, verified
	}
	frac := keyspace.Key(n.self.Key.Distance(n.succs[k-1].Key)).Float()
	if frac <= 0 {
		return float64(k + 1), false
	}
	return float64(k) / frac, false
}

// arcLocked returns the arc this node owns, (pred, self]. The arc is only
// well defined with a known, distinct predecessor: pred == self means the
// slot was cleared by a failure, and an equal key would read as the full
// circle.
func (n *Node) arcLocked() (keyspace.Range, bool) {
	if n.pred.Addr == "" || n.pred.Addr == n.self.Addr || n.pred.Key == n.self.Key {
		return keyspace.Range{}, false
	}
	return keyspace.Range{Start: n.pred.Key + 1, End: n.self.Key + 1}, true
}

// errNotOwner is the typed rejection a data write gets from a node whose
// arc no longer covers the key: the ownership moved between the writer's
// routing step and the data RPC. The write was definitely not executed,
// so the writer re-routes and retries (see dataOp).
const errNotOwner = "not owner"

// ownsLocked reports whether this node currently accepts writes for the
// key. With a real, distinct predecessor this is the exact predicate
// findOwnerLocked terminates routing with, evaluated under the same
// lock. With the pred slot empty or cleared by a failure, routing claims
// the whole circle (lookups must terminate somewhere) but the write gate
// stays bounded: a true singleton owns everything; otherwise only keys
// down to the last known predecessor's key are accepted — arcs whose
// owners are alive elsewhere on the ring must not be silently absorbed.
func (n *Node) ownsLocked(key keyspace.Key) bool {
	if n.pred.Addr != "" && n.pred.Addr != n.self.Addr {
		return key.BetweenIncl(n.pred.Key, n.self.Key) || n.succLocked().Addr == n.self.Addr
	}
	if n.succLocked().Addr == n.self.Addr || !n.haveArcFloor {
		return true
	}
	return key.BetweenIncl(n.arcFloor, n.self.Key)
}

// setPredLocked installs p as the predecessor and, when p is a real
// distinct peer, records its key as the arc floor (see ownsLocked).
func (n *Node) setPredLocked(p transport.PeerRef) {
	if n.pred.Addr != p.Addr {
		// The arc boundary moved (a joiner spliced in, or a crash widened
		// the arc): cached resolutions may now point past the true owner.
		n.routes.Flush()
	}
	n.pred = p
	if p.Addr != "" && p.Addr != n.self.Addr {
		n.arcFloor, n.haveArcFloor = p.Key, true
	}
}

// markJoinDirtyLocked records a write that landed during this node's own
// join window (no-op otherwise) so in-flight migrate chunks cannot stomp
// it.
func (n *Node) markJoinDirtyLocked(key keyspace.Key) {
	if n.joinDirty != nil {
		n.joinDirty[key] = struct{}{}
	}
}

// InjectReplica plants (or overwrites) a replica copy directly in the
// node's replica store, bypassing the protocol — a fault-injection hook for
// divergence tests and harnesses, never used by the overlay itself.
func (n *Node) InjectReplica(k keyspace.Key, v []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replStore.Put(k, v)
}

// DropReplica erases every trace of k (copy and tombstone) from the node's
// replica store — the fault-injection counterpart of InjectReplica.
func (n *Node) DropReplica(k keyspace.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replStore.Drop(k)
}

// DropPrimary erases every trace of k (item and tombstone) from the node's
// primary store, bypassing the protocol — a fault-injection hook that
// models an owner silently losing state, used by read-repair tests.
func (n *Node) DropPrimary(k keyspace.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store.Drop(k)
}

// PrimaryValue reads the node's primary store directly (test/inspection
// hook).
func (n *Node) PrimaryValue(k keyspace.Key) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Get(k)
}

// ReplicaValue reads a replica copy directly (test/inspection hook).
func (n *Node) ReplicaValue(k keyspace.Key) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replStore.Get(k)
}

// ReplicaDeleted reports whether the replica store remembers k as deleted.
func (n *Node) ReplicaDeleted(k keyspace.Key) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.replStore.Tombstone(k)
	return ok
}

// Close takes the node off the network (a crash: no graceful handover,
// no final snapshot — recovery replays the WAL tail). CloseClean is the
// graceful counterpart.
func (n *Node) Close() error {
	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
	err := n.tr.Close()
	if n.eng != nil {
		if cerr := n.eng.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// handle dispatches one incoming request. It runs on transport goroutines.
func (n *Node) handle(req *transport.Request) *transport.Response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return &transport.Response{OK: false, Err: "node down"}
	}
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{OK: true, Peer: n.self}

	case transport.OpInfo:
		return &transport.Response{
			OK: true, Peer: n.self,
			MaxIn: n.cfg.MaxIn, MaxOut: n.cfg.MaxOut, InDeg: len(n.in),
		}

	case transport.OpGetSucc:
		return &transport.Response{OK: true, Peer: n.succLocked()}

	case transport.OpGetPred:
		return &transport.Response{OK: true, Peer: n.pred}

	case transport.OpSuccList:
		// One RPC answers both stabilisation questions: the responder's
		// predecessor (Peer) and its successor list (Peers). The exchange
		// doubles as one gossip round of ring-size estimation: fold the
		// caller's estimate into ours and return the result (push-pull
		// averaging in inverse space preserves the mean of 1/est and
		// spreads every local density estimate across the ring). An exact
		// local count — the list wraps the whole ring — overrides gossip
		// instead of blending into it.
		if local, exact := n.localSizeEstimateLocked(); exact {
			n.sizeEst = local
		} else if req.SizeEst > 0 {
			if n.sizeEst == 0 {
				n.sizeEst = req.SizeEst
			} else {
				n.sizeEst = harmonicBlend(n.sizeEst, 0.5, req.SizeEst, 0.5)
			}
		}
		return &transport.Response{
			OK: true, Peer: n.pred,
			Peers:   append([]transport.PeerRef(nil), n.succs...),
			SizeEst: n.sizeEst,
		}

	case transport.OpNotify:
		// A peer announces itself; adopt it as pred and/or succ if it sits
		// between the current pointers and us (Chord notify, both sides).
		from := req.From
		if from.Addr != n.self.Addr {
			if n.pred.Addr == n.self.Addr || from.Key.Between(n.pred.Key, n.self.Key) ||
				(from.Key == n.self.Key && from.Addr != n.pred.Addr && n.pred.Addr == n.self.Addr) {
				n.setPredLocked(from)
			}
			succ := n.succLocked()
			if succ.Addr == n.self.Addr || from.Key.Between(n.self.Key, succ.Key) {
				n.setSuccLocked(from)
			}
		}
		return &transport.Response{OK: true, Peer: n.succLocked()}

	case transport.OpNeighbors:
		return n.neighborsLocked(req.Range)

	case transport.OpLink:
		if _, dup := n.in[req.From.Addr]; dup {
			return &transport.Response{OK: true} // idempotent
		}
		if len(n.in) >= n.cfg.MaxIn {
			return &transport.Response{OK: false, Err: "refused: in-degree cap"}
		}
		n.in[req.From.Addr] = req.From.Key
		return &transport.Response{OK: true}

	case transport.OpUnlink:
		delete(n.in, req.From.Addr)
		return &transport.Response{OK: true}

	case transport.OpFindOwner:
		return n.findOwnerLocked(req.Key, req.Exclude)

	case transport.OpPut:
		// Peers carries the replica chain the writer must push copies to;
		// the owner's own replication factor governs its length. Acks is
		// this store's own acknowledgement — the writer adds the chain's.
		if !n.ownsLocked(req.Key) {
			// The arc moved between the writer's routing step and this RPC
			// (a joiner spliced in and migrate drained the range). Acking
			// anyway would strand the value in a store no lookup reaches
			// and no digest covers — a silently lost acknowledged write.
			// Rejection is a definite non-execution: the writer re-routes.
			return &transport.Response{OK: false, Err: errNotOwner, Peer: n.succLocked()}
		}
		n.markJoinDirtyLocked(req.Key)
		replaced := n.store.Put(req.Key, req.Value)
		return &transport.Response{OK: true, Found: replaced, Peers: n.replicaTargetsLocked(), Acks: 1}

	case transport.OpGet:
		// The owned arc is authoritative; the replica store answers for
		// arcs inherited from a crashed predecessor before promotion, and
		// for chain-fallback reads while the owner is unreachable. On a
		// miss, Deleted distinguishes "tombstoned here" (an authoritative
		// delete the reader must not try to fill from replicas) from "no
		// record" (possibly lost state a fallback read may recover).
		v, found := n.store.Get(req.Key)
		if !found {
			v, found = n.replStore.Get(req.Key)
		}
		resp := &transport.Response{OK: true, Value: v, Found: found}
		if !found {
			_, dead := n.store.Tombstone(req.Key)
			if !dead {
				_, dead = n.replStore.Tombstone(req.Key)
			}
			resp.Deleted = dead
		}
		return resp

	case transport.OpKeyHash:
		// Hot-key cache validation at the owner. The ownership gate makes
		// the answer authoritative the same way OpPut's does: a node whose
		// arc no longer covers the key rejects with errNotOwner instead of
		// confirming a hash for state it no longer answers for — the typed
		// rejection doubles as the requester's route-cache invalidation
		// signal. Peers carries the replica chain for owner-death fallback.
		if !n.ownsLocked(req.Key) {
			return &transport.Response{OK: false, Err: errNotOwner, Peer: n.succLocked()}
		}
		resp := n.keyHashLocked(req.Key)
		resp.Peers = n.replicaTargetsLocked()
		return resp

	case transport.OpKeyHashChain:
		// Chain fallback of OpKeyHash: like OpGet, chain members answer
		// ungated over their merged view — the requester only asks them
		// after the owner proved unreachable.
		return n.keyHashLocked(req.Key)

	case transport.OpDelete:
		// Same ownership gate as OpPut: a delete acked by a node that
		// already handed the key's arc to a joiner would tombstone a store
		// nothing reads while the migrated live copy survives at the new
		// owner — the delete would silently un-happen.
		if !n.ownsLocked(req.Key) {
			return &transport.Response{OK: false, Err: errNotOwner, Peer: n.succLocked()}
		}
		n.markJoinDirtyLocked(req.Key)
		existed := n.store.Delete(req.Key)
		if n.replStore.Delete(req.Key) {
			existed = true
		}
		return &transport.Response{OK: true, Found: existed, Peers: n.replicaTargetsLocked(), Acks: 1}

	case transport.OpReplicate:
		// Owner→replica push, bypassing routing: copies land in the replica
		// store so they never pollute range scans or migrations of the arc
		// this node owns. One op carries all three repair verbs of the
		// anti-entropy plan — upserts (Items), deletes the replica missed
		// (Tombs: clear the copy, remember the delete), and strays the
		// owner has no record of (Drop: forget every trace). Write-time
		// pushes are the single-item degenerate case.
		for _, k := range req.Drop {
			n.replStore.Drop(k)
		}
		n.replStore.InsertTombstones(req.Tombs)
		n.replStore.InsertBulk(req.Items)
		return &transport.Response{OK: true, Acks: 1}

	case transport.OpReplicateDel:
		// A delete propagated along the chain tombstones the copy — so a
		// later stale push cannot resurrect it silently — and clears any
		// promoted remnant from an earlier ownership change. The primary
		// store records the delete only for keys in this node's own arc
		// (where it is the authority); a foreign key's tombstone would sit
		// in the maintained arc digest and make every future digest round
		// against this node's own replicas mismatch until TTL GC.
		found := n.replStore.SetTombstone(req.Key, time.Now().UnixNano())
		if arc, ok := n.arcLocked(); ok && arc.Contains(req.Key) {
			if n.store.Delete(req.Key) {
				found = true
			}
		} else if _, live := n.store.Get(req.Key); live {
			n.store.Drop(req.Key)
			found = true
		}
		return &transport.Response{OK: true, Found: found, Acks: 1}

	case transport.OpDigest:
		// An arc owner asks what this replica holds of its arc: the digest
		// leaf vector over the replica store restricted to the arc,
		// tombstones included. Equal vectors end the sync round right here.
		return &transport.Response{OK: true, Digest: n.replStore.Digest(req.Range, req.Depth)}

	case transport.OpSyncPull:
		// Key-level follow-up for the buckets whose digests disagreed: the
		// per-key states (hash + deleted flag) this replica holds of the
		// owner's arc in those buckets. A read-repair pull additionally
		// asks for the payloads (Values), so one RPC both diffs and heals;
		// the response stays divergence-proportional — only the mismatched
		// buckets' keys ride along.
		states := antientropy.FilterBuckets(n.replStore.SyncStates(req.Range), req.Depth, req.Buckets)
		resp := &transport.Response{OK: true, States: states}
		if req.Values {
			// Values are bounded like replicate frames so an arc-sized
			// divergence cannot build a response past the transport's
			// frame cap; the requester fetches what did not fit key by
			// key, and every adopted key shrinks the next diff, so repair
			// converges over passes. Tombstones are a few words each and
			// always ship complete.
			bytes := 0
			for _, s := range states {
				if s.Deleted {
					if at, ok := n.replStore.Tombstone(s.Key); ok {
						resp.Tombs = append(resp.Tombs, storage.Tombstone{Key: s.Key, At: at})
					}
					continue
				}
				if len(resp.Items) >= maxReplicateItems || bytes >= maxReplicateBytes {
					continue
				}
				if v, ok := n.replStore.Get(s.Key); ok {
					resp.Items = append(resp.Items, storage.Item{Key: s.Key, Value: v})
					bytes += len(v)
				}
			}
		}
		return resp

	case transport.OpReadRepair:
		// A reader found state at a replica that this node — the owner it
		// routed to — has no record of: pull the arc's divergence back
		// from that replica and then re-sync the chain. The pass runs
		// asynchronously (the nudge must stay cheap on the read path),
		// concurrent nudges coalesce into one pass, and a cooldown keeps
		// a read-heavy workload against a divergence repair cannot close
		// (a partitioned replica, a key living outside every digest
		// scope) from degenerating into a continuous digest storm.
		if req.From.Addr == "" || req.From.Addr == n.self.Addr || n.repairing ||
			time.Since(n.repairedAt) < readRepairCooldown {
			return &transport.Response{OK: true}
		}
		n.repairing = true
		n.repairedAt = time.Now()
		go n.readRepair(req.From)
		return &transport.Response{OK: true}

	case transport.OpScan:
		// One page of a streaming arc scan, clockwise from the cursor
		// (Range.Start), non-destructive and frame-bounded like replicate
		// pushes. The page merges the primary shard with the replica store
		// (tombstones honoured, primary wins), clipped to the arc this node
		// can serve authoritatively: keys clockwise up to its own position.
		// The clip is what makes the merged view safe — a chain member
		// standing in for a dead predecessor still covers that arc (the
		// dead peer's keys are clockwise before its own), while a healthy
		// node never leaks its replica copies of live predecessors across
		// the circle, which would skip every shard in between. More +
		// Cursor tell the requester to call again here before hopping to
		// Peer (the successor).
		rg := req.Range
		selfEnd := n.self.Key + 1
		if rg.Start == selfEnd {
			// The cursor starts exactly past this node's arc: nothing to
			// serve here (and no clip — Start==End would mean full circle).
			return &transport.Response{OK: true, Peer: n.succLocked()}
		}
		if rg.Start.Distance(selfEnd) < rg.Start.Distance(rg.End) {
			rg.End = selfEnd
		}
		maxItems := maxReplicateItems
		if req.Limit > 0 && req.Limit < maxItems {
			maxItems = req.Limit
		}
		items, more := storage.ScanPageMerged(&n.store, &n.replStore, rg, maxItems, maxReplicateBytes)
		resp := &transport.Response{OK: true, Items: items, More: more, Peer: n.succLocked()}
		if more && len(items) > 0 {
			resp.Cursor = items[len(items)-1].Key + 1
		}
		return resp

	case transport.OpMigrate:
		// The joining predecessor takes over its arc — items and the
		// tombstones covering it, so deletes stay deleted across the
		// ownership change. Responses are chunked under the same bounds as
		// replicate pushes (a huge arc must not approach the 16 MiB frame
		// cap): each call extracts the next bounded batch clockwise and
		// More tells the joiner to call again. Tombstones are small and
		// ship with the first chunk (extraction leaves none for later
		// calls). A recovered joiner announces what it already holds
		// (req.States): ownership still transfers in full — extraction
		// proceeds — but byte-identical items are filtered from the
		// response, so a restart re-ships only the downtime delta.
		items, more := n.store.ExtractRangeLimit(req.Range, maxReplicateItems, maxReplicateBytes)
		tombs := n.store.ExtractTombstones(req.Range)
		items = filterMigrateItems(items, req.States)
		return &transport.Response{OK: true, Items: items, Tombs: tombs, More: more}

	default:
		return &transport.Response{OK: false, Err: "unknown op"}
	}
}

// keyHashLocked answers one hot-key digest check over the same merged
// view OpGet reads (primary first, then replica copies; tombstones
// reported as Deleted): Found plus the item hash when the key is held,
// Deleted for an authoritative tombstone, a bare OK for no record.
func (n *Node) keyHashLocked(key keyspace.Key) *transport.Response {
	v, found := n.store.Get(key)
	if !found {
		v, found = n.replStore.Get(key)
	}
	if found {
		return &transport.Response{OK: true, Found: true, Digest: []uint64{antientropy.ItemHash(key, v)}}
	}
	_, dead := n.store.Tombstone(key)
	if !dead {
		_, dead = n.replStore.Tombstone(key)
	}
	return &transport.Response{OK: true, Deleted: dead}
}

// neighborsLocked lists this node's neighbours (ring pointers, out-links,
// in-links) whose keys lie in rg, as a multiset like the simulator's walker
// (symmetric multiplicities keep the MH walk uniform).
func (n *Node) neighborsLocked(rg keyspace.Range) *transport.Response {
	var peers []transport.PeerRef
	consider := func(ref transport.PeerRef) {
		if ref.Addr == n.self.Addr || ref.Addr == "" {
			return
		}
		if rg.Contains(ref.Key) {
			peers = append(peers, ref)
		}
	}
	// Only the immediate successor joins the neighbour multiset: the MH
	// walk needs symmetric multiplicities, and succ/pred is the one ring
	// relation both sides track (list tails are one-directional).
	consider(n.succLocked())
	consider(n.pred)
	for _, ref := range n.out {
		consider(ref)
	}
	for addr, key := range n.in {
		consider(transport.PeerRef{Addr: addr, Key: key})
	}
	return &transport.Response{OK: true, Peers: peers, Degree: len(peers), Peer: n.self}
}

// findOwnerLocked answers one iterative routing step: if this node owns the
// key, Found is true (and Peers carries the owner's replica chain, so the
// querier can fall back through it if the owner crashes before the data
// RPC); otherwise Peer is the best non-overshooting next hop not in the
// query's exclude set. With every useful neighbour excluded it reports no
// route (OK=false) and the querier backtracks.
func (n *Node) findOwnerLocked(key keyspace.Key, exclude []transport.Addr) *transport.Response {
	succ := n.succLocked()
	if key.BetweenIncl(n.pred.Key, n.self.Key) || succ.Addr == n.self.Addr {
		return &transport.Response{OK: true, Found: true, Peer: n.self, Peers: n.replicaTargetsLocked()}
	}
	excluded := func(a transport.Addr) bool {
		for _, x := range exclude {
			if x == a {
				return true
			}
		}
		return false
	}
	// The successor owns the key when it lies in (self, succ].
	if key.BetweenIncl(n.self.Key, succ.Key) {
		if excluded(succ.Addr) {
			return &transport.Response{OK: false, Err: "no route"}
		}
		return &transport.Response{OK: true, Found: false, Peer: succ}
	}
	toTarget := n.self.Key.Distance(key)
	var best transport.PeerRef
	bestProgress := uint64(0)
	if !excluded(succ.Addr) {
		best = succ
		if d := n.self.Key.Distance(succ.Key); d <= toTarget {
			bestProgress = d
		}
	}
	// Successor-list tails and long-range links compete on clockwise
	// progress alike.
	cands := n.out
	if len(n.succs) > 1 {
		cands = append(append([]transport.PeerRef(nil), n.succs[1:]...), n.out...)
	}
	for _, ref := range cands {
		if excluded(ref.Addr) {
			continue
		}
		d := n.self.Key.Distance(ref.Key)
		if d == 0 || d > toTarget {
			continue
		}
		if d > bestProgress || best.Addr == "" {
			best, bestProgress = ref, d
		}
	}
	if best.Addr == "" {
		return &transport.Response{OK: false, Err: "no route"}
	}
	return &transport.Response{OK: true, Found: false, Peer: best}
}
