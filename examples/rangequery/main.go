// Rangequery: the data-oriented use case the paper's introduction motivates.
// An order-preserving overlay can answer non-exact (range / similarity)
// queries because contiguous application ranges stay contiguous on the ring
// — here, a product-price index over a skewed price distribution.
//
//	go run ./examples/rangequery
package main

import (
	"fmt"
	"log"
	"math/rand"

	oscar "github.com/oscar-overlay/oscar"
)

// priceToKey maps a price in [0, 1000) monotonically onto the circle. Any
// monotone mapping works; no hashing, or ranges would shatter.
func priceToKey(price float64) oscar.Key {
	return oscar.KeyFromFloat(price / 1000)
}

func main() {
	// Peers position themselves according to the data distribution, so the
	// index load spreads even though prices cluster heavily.
	ov, err := oscar.Build(oscar.Config{
		Size: 1000,
		Seed: 11,
		Keys: oscar.GnutellaKeys(), // stand-in for "where the data is"
	})
	if err != nil {
		log.Fatal(err)
	}

	// Index 5000 products with clustered prices (most cost 10–50).
	rnd := rand.New(rand.NewSource(5))
	indexed := 0
	for i := 0; i < 5000; i++ {
		price := 10 + rnd.ExpFloat64()*40
		if price >= 1000 {
			continue
		}
		name := fmt.Sprintf("product-%04d@%.2f", i, price)
		if _, err := ov.Put(priceToKey(price), []byte(name)); err != nil {
			log.Fatal(err)
		}
		indexed++
	}
	fmt.Printf("indexed %d products across %d peers\n", indexed, ov.Size())

	// Range query: everything priced in [25, 30).
	res, err := ov.RangeQuery(priceToKey(25), priceToKey(30), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproducts priced in [25, 30): %d hits, %d messages, %d shards scanned\n",
		len(res.Items), res.Cost, res.PeersScanned)
	for i, it := range res.Items {
		if i >= 5 {
			fmt.Printf("  … and %d more\n", len(res.Items)-5)
			break
		}
		fmt.Printf("  %s\n", it.Value)
	}

	// Top-k flavoured query: the 10 cheapest products above 100.
	res, err = ov.RangeQuery(priceToKey(100), priceToKey(1000-1e-9), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n10 cheapest products above 100:\n")
	for _, it := range res.Items {
		fmt.Printf("  %s\n", it.Value)
	}
}
