// Package metrics collects and formats the statistics reported by the
// experiments: summaries (mean/percentiles), linear and logarithmic
// histograms, and aligned-table / CSV writers for the harness output.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 0.50)
	s.P90 = percentileSorted(sorted, 0.90)
	s.P99 = percentileSorted(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. It copies and sorts xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts is Mean over integers.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples < Lo
	Over   int // samples >= Hi
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: histogram bounds [%g,%g) are empty", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bin")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard the x==Hi-epsilon rounding edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded samples, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the probability density estimate of bin i.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * w)
}

// IntPMF counts integer-valued samples and reports their empirical pmf —
// used for the Fig 1a degree-distribution plot, where bins are exact degrees.
type IntPMF struct {
	Counts map[int]int
	total  int
}

// NewIntPMF creates an empty integer pmf accumulator.
func NewIntPMF() *IntPMF { return &IntPMF{Counts: make(map[int]int)} }

// Add records one sample.
func (p *IntPMF) Add(v int) {
	p.Counts[v]++
	p.total++
}

// Prob returns the empirical probability of v.
func (p *IntPMF) Prob(v int) float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.Counts[v]) / float64(p.total)
}

// Total returns the number of recorded samples.
func (p *IntPMF) Total() int { return p.total }

// Support returns the observed values in ascending order.
func (p *IntPMF) Support() []int {
	vs := make([]int, 0, len(p.Counts))
	for v := range p.Counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}
