package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %g", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %g", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P99 != 7 {
		t.Errorf("single-sample summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 1: 40, 0.5: 25}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if MeanInts([]int{1, 2, 3}) != 2 {
		t.Error("MeanInts broken")
	}
	if MeanInts(nil) != 0 {
		t.Error("MeanInts(nil) should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g", got)
	}
}

func TestHistogramDensityIntegratesToCoverage(t *testing.T) {
	h, _ := NewHistogram(0, 1, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%1000) / 1000)
	}
	w := 0.1
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integrates to %g", integral)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty bounds must be rejected")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins must be rejected")
	}
}

func TestIntPMF(t *testing.T) {
	p := NewIntPMF()
	for _, v := range []int{3, 3, 3, 7} {
		p.Add(v)
	}
	if got := p.Prob(3); got != 0.75 {
		t.Errorf("Prob(3) = %g", got)
	}
	if got := p.Prob(9); got != 0 {
		t.Errorf("Prob(9) = %g", got)
	}
	if sup := p.Support(); len(sup) != 2 || sup[0] != 3 || sup[1] != 7 {
		t.Errorf("Support = %v", sup)
	}
	if p.Total() != 4 {
		t.Errorf("Total = %d", p.Total())
	}
}

func TestIntPMFEmpty(t *testing.T) {
	p := NewIntPMF()
	if p.Prob(1) != 0 || p.Total() != 0 || len(p.Support()) != 0 {
		t.Error("empty pmf misbehaves")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("n", "cost")
	tab.AddRow(1000, 7.25)
	tab.AddRow(2000, 8.5)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "n") || !strings.Contains(lines[0], "cost") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1000") || !strings.Contains(lines[2], "7.25") {
		t.Errorf("row missing: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x", 1)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\nx,1\n" {
		t.Errorf("csv = %q", got)
	}
}
