// Command oscar-soak drives a seeded fault-and-churn soak against a live
// overlay and asserts, at teardown, that no write the cluster acknowledged
// at the requested write concern was lost.
//
// In the default -mode mem the harness boots an in-process cluster
// (StartCluster on the in-memory fabric) with an internal/faultnet fault
// model wrapped under every node, then runs two things concurrently:
//
//   - a load generator: -workers workers drawing keys from a seeded Zipf
//     distribution over a fixed keyspace and issuing a mixed put/get/
//     delete/scan stream at -rate ops/sec, keeping a client-side ledger of
//     every write the cluster acknowledged (and of every indeterminate
//     write — shed, timed out, or under-replicated — whose fate is
//     legitimately unknown);
//
//   - a fault plan: baseline loss+jitter with one deliberately slow node,
//     a hot-key crowd (every worker narrows to the head of its stripe, so
//     the route and hot-key caches — on by default — carry a flash of
//     popularity under a concurrent write mix), a flash crowd of joiners,
//     a correlated crash of two key-adjacent arc owners, a full partition
//     of one node (which dies for good at heal time — a cut-off node is
//     declared failed and replaced, never readmitted with stale state), a
//     heal plus rolling restarts that recover from the write-ahead log,
//     and a drain.
//
// When the plan completes the load stops, and the harness polls the
// cluster until every tracked key reads back a ledger-allowed value:
// the last acknowledged write (or its acknowledged deletion), or — for
// keys with indeterminate writes — one of the candidate values. The time
// to the first fully clean sweep is reported as convergence_ms. A key
// that still reads back a value the ledger never allowed (or reads back
// nothing where an acknowledged write was never deleted) after
// -converge-timeout is a violation: the run prints the evidence, still
// writes its report, and exits 1.
//
// The report lands in -o (default BENCH_soak.json) using the same schema
// cmd/oscar-benchjson emits, so CI publishes soak numbers next to the
// other benchmark artifacts.
//
// Determinism: the fault schedule is fully determined by -seed (faultnet
// decides per-link, per-call), and the workers' key and op streams are
// seeded from the same root, so a failing soak replays with the same
// faults in the same order. Goroutine interleaving still varies — the
// invariant must hold under every interleaving, which is the point.
//
// -mode tcp turns the harness into a pure load+ledger client for an
// external ring (e.g. the docker-compose fleet): it starts one TCP node,
// joins through -join, runs the same workload and teardown verification,
// and writes the same report. Fault injection then lives in the ring
// nodes themselves (oscar-node -fault-* flags), not in the client.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	oscar "github.com/oscar-overlay/oscar"
	"github.com/oscar-overlay/oscar/internal/faultnet"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// benchResult mirrors cmd/oscar-benchjson's output schema, so the soak
// report concatenates cleanly with the other BENCH_*.json artifacts.
type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type soakConfig struct {
	mode            string
	seed            int64
	nodes           int
	duration        time.Duration
	rate            float64
	workers         int
	keys            int
	zipfS           float64
	replicas        int
	writeConcern    int
	convergeTimeout time.Duration
	dataDir         string
	out             string
	listen          string
	join            string
}

// opTimeout bounds every single client operation: during a partition or a
// crash window an op must fail fast and feed the ledger, not stall a
// worker for the whole phase.
const opTimeout = 3 * time.Second

// scanSpan is the arc width of one scan op: 1/64 of the circle.
const scanSpan = oscar.Key(1) << 58

// baseFaults is the steady-state weather every phase after the clean boot
// runs under: a lossy, jittery fabric, never a perfect one.
var baseFaults = faultnet.Faults{
	Drop:    0.02,
	Latency: 500 * time.Microsecond,
	Jitter:  4 * time.Millisecond,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-soak: ")

	var cfg soakConfig
	flag.StringVar(&cfg.mode, "mode", "mem", "mem (in-process cluster + fault plan) or tcp (load client for an external ring)")
	flag.Int64Var(&cfg.seed, "seed", 1, "root seed: fixes the fault schedule and the workload streams")
	flag.IntVar(&cfg.nodes, "nodes", 12, "cluster size before churn (mem mode; min 10)")
	flag.DurationVar(&cfg.duration, "duration", 25*time.Second, "load duration; the fault plan's phases split it")
	flag.Float64Var(&cfg.rate, "rate", 300, "target ops/sec across all workers")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent load workers (each owns a disjoint key stripe)")
	flag.IntVar(&cfg.keys, "keys", 480, "keyspace size (split evenly across workers)")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "Zipf skew of the key popularity (> 1)")
	flag.IntVar(&cfg.replicas, "replicas", 3, "replication factor r (mem mode)")
	flag.IntVar(&cfg.writeConcern, "write-concern", 3, "acks a write must collect to count as acknowledged (mem mode)")
	flag.DurationVar(&cfg.convergeTimeout, "converge-timeout", 60*time.Second, "how long teardown waits for every tracked key to read back a ledger-allowed value")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "data directory for the cluster WALs (mem mode; empty = a temp dir, removed on exit)")
	flag.StringVar(&cfg.out, "o", "BENCH_soak.json", "report file (benchjson schema)")
	flag.StringVar(&cfg.listen, "listen", "0.0.0.0:0", "listen address of the load client's node (tcp mode)")
	flag.StringVar(&cfg.join, "join", "", "address of any ring member to join through (tcp mode, required)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cfg.mode {
	case "mem":
		err = runMem(ctx, cfg)
	case "tcp":
		err = runTCP(ctx, cfg)
	default:
		err = fmt.Errorf("unknown -mode %q (want mem or tcp)", cfg.mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Ledger
//
// Every worker owns a disjoint stripe of the keyspace (key index i belongs
// to worker i%workers), so no two goroutines ever write the same key and
// each worker's ledger needs no locks. A key's entry distinguishes what
// the cluster acknowledged — which the final state MUST honour — from
// indeterminate writes (shed, timed out, under-replicated) that may or
// may not have landed, any of which the final state MAY show.

type keyState struct {
	ackedKnown bool            // some write concern-acked op happened
	ackedDel   bool            // ...and the last one was a delete
	acked      string          // ...or this value, when !ackedDel
	cands      map[string]bool // indeterminate put values since the last ack
	candDel    bool            // an indeterminate delete since the last ack
}

// allows reports whether an observed read is consistent with the ledger.
func (s *keyState) allows(val string, absent bool) bool {
	if absent {
		// Absence is fine unless an acknowledged value stands with no
		// possibly-applied delete after it.
		return !s.ackedKnown || s.ackedDel || s.candDel
	}
	if s.ackedKnown && !s.ackedDel && val == s.acked {
		return true
	}
	return s.cands[val]
}

// determinate reports that the ledger knows the key's exact final state —
// a violation on such a key is a lost acknowledged write, not an
// ambiguity.
func (s *keyState) determinate() bool {
	return s.ackedKnown && len(s.cands) == 0 && !s.candDel
}

func (s *keyState) indeterminate() bool { return len(s.cands) > 0 || s.candDel }

func (s *keyState) ackPut(val string) {
	s.ackedKnown, s.ackedDel, s.acked = true, false, val
	s.cands, s.candDel = nil, false
}

func (s *keyState) ackDelete() {
	s.ackedKnown, s.ackedDel, s.acked = true, true, ""
	s.cands, s.candDel = nil, false
}

func (s *keyState) candPut(val string) {
	if s.cands == nil {
		s.cands = make(map[string]bool)
	}
	s.cands[val] = true
}

// ---------------------------------------------------------------------------
// Workers

type workerStats struct {
	ops, puts, gets, dels, scans      int64
	ackedWrites, shortfalls           int64
	transients, unexpected, anomalies int64
	scanItems                         int64
	hotOps                            int64
	latencies                         []int64 // ns, one per completed op
}

type worker struct {
	id      int
	total   int // keyspace size across all workers
	stride  int // number of workers
	client  oscar.Client
	rnd     *rand.Rand
	zipf    *rand.Zipf
	hotZipf *rand.Zipf   // near-flat draw over the head of the stripe
	hot     *atomic.Bool // hot-key phase flag, shared with the plan
	seq     int64
	keys    map[int]*keyState
	stats   workerStats
}

func newWorker(id int, cfg soakConfig, client oscar.Client, hot *atomic.Bool) *worker {
	r := rng.DeriveN(cfg.seed, "soak-worker", id)
	per := cfg.keys / cfg.workers
	// The hot crowd is the head of the stripe: a low-s (near-flat) Zipf
	// over a slice ~1/16th the size of the full keyspace, so during the
	// hot phase every key drawn is genuinely popular across all workers.
	hotSpan := per / 16
	if hotSpan < 2 {
		hotSpan = 2
	}
	return &worker{
		id:      id,
		total:   per * cfg.workers,
		stride:  cfg.workers,
		client:  client,
		rnd:     r,
		zipf:    rand.NewZipf(r, cfg.zipfS, 1, uint64(per-1)),
		hotZipf: rand.NewZipf(r, 1.05, 1, uint64(hotSpan-1)),
		hot:     hot,
		keys:    make(map[int]*keyState),
	}
}

// keyFor spreads key index i evenly over the circle.
func keyFor(i, total int) oscar.Key {
	return oscar.KeyFromFloat((float64(i) + 0.5) / float64(total))
}

func (w *worker) state(idx int) *keyState {
	s, ok := w.keys[idx]
	if !ok {
		s = &keyState{}
		w.keys[idx] = s
	}
	return s
}

func transientOp(err error) bool {
	return errors.Is(err, oscar.ErrUnavailable) ||
		errors.Is(err, oscar.ErrRoutingFailed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// run issues ops at the worker's share of the target rate until stop
// closes. Each op gets its own deadline so a partition stalls nothing.
func (w *worker) run(ctx context.Context, stop <-chan struct{}, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.step(ctx)
	}
}

func (w *worker) step(ctx context.Context) {
	idx := int(w.zipf.Uint64())*w.stride + w.id
	if w.hot.Load() {
		idx = int(w.hotZipf.Uint64())*w.stride + w.id
		w.stats.hotOps++
	}
	key := keyFor(idx, w.total)
	st := w.state(idx)

	octx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()

	t0 := time.Now()
	switch p := w.rnd.Float64(); {
	case p < 0.35:
		w.stats.puts++
		w.seq++
		val := fmt.Sprintf("w%d.k%d.n%d", w.id, idx, w.seq)
		_, err := w.client.Put(octx, key, []byte(val))
		switch {
		case err == nil:
			st.ackPut(val)
			w.stats.ackedWrites++
		case errors.Is(err, oscar.ErrWriteConcern):
			w.stats.shortfalls++
			st.candPut(val)
		case transientOp(err):
			w.stats.transients++
			st.candPut(val)
		default:
			w.stats.unexpected++
			st.candPut(val)
		}

	case p < 0.45:
		w.stats.dels++
		_, err := w.client.Delete(octx, key)
		switch {
		case err == nil:
			st.ackDelete()
			w.stats.ackedWrites++
		case errors.Is(err, oscar.ErrNotFound):
			// The owner processed the delete and had nothing: the key is
			// absent there now, but an indeterminate put may still lurk on
			// a divergent chain, so only loosen the ledger.
			st.candDel = true
		case errors.Is(err, oscar.ErrWriteConcern):
			w.stats.shortfalls++
			st.candDel = true
		case transientOp(err):
			w.stats.transients++
			st.candDel = true
		default:
			w.stats.unexpected++
			st.candDel = true
		}

	case p < 0.50:
		w.stats.scans++
		start := oscar.KeyFromFloat(w.rnd.Float64())
		sc := w.client.Scan(octx, start, start+scanSpan, oscar.WithLimit(64))
		for sc.Next() {
			w.stats.scanItems++
		}
		if err := sc.Err(); err != nil && !transientOp(err) {
			w.stats.unexpected++
		} else if err != nil {
			w.stats.transients++
		}

	default:
		w.stats.gets++
		res, err := w.client.Get(octx, key)
		switch {
		case err == nil:
			if !st.allows(string(res.Value), false) {
				w.stats.anomalies++
			}
		case errors.Is(err, oscar.ErrNotFound):
			if !st.allows("", true) {
				w.stats.anomalies++
			}
		case transientOp(err):
			w.stats.transients++
		default:
			w.stats.unexpected++
		}
	}
	w.stats.ops++
	w.stats.latencies = append(w.stats.latencies, time.Since(t0).Nanoseconds())
}

func startWorkers(ctx context.Context, cfg soakConfig, client oscar.Client) ([]*worker, chan struct{}, *sync.WaitGroup, *atomic.Bool) {
	interval := time.Duration(float64(time.Second) * float64(cfg.workers) / cfg.rate)
	stop := make(chan struct{})
	hot := &atomic.Bool{}
	var wg sync.WaitGroup
	ws := make([]*worker, cfg.workers)
	for i := range ws {
		ws[i] = newWorker(i, cfg, client, hot)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(ctx, stop, interval)
		}(ws[i])
	}
	return ws, stop, &wg, hot
}

// ---------------------------------------------------------------------------
// mem mode: in-process cluster + fault plan

// churnState is mutated only by the plan goroutine and read only after
// the plan finished; no locking needed.
type churnState struct {
	added, crashed, restarted     int
	joinFailures, restartFailures int
	closed                        map[string]bool // dead transport addrs
}

func runMem(ctx context.Context, cfg soakConfig) error {
	if cfg.nodes < 10 {
		return fmt.Errorf("-nodes %d too small: the churn phases need at least 10", cfg.nodes)
	}
	if cfg.workers < 1 || cfg.keys/cfg.workers < 2 {
		return fmt.Errorf("need -keys >= 2*-workers (got %d keys, %d workers)", cfg.keys, cfg.workers)
	}

	dir := cfg.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "oscar-soak-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fn := faultnet.New(cfg.seed)
	log.Printf("booting %d-node cluster (r=%d, w=%d, seed=%d, data=%s)",
		cfg.nodes, cfg.replicas, cfg.writeConcern, cfg.seed, dir)
	c, err := oscar.StartCluster(ctx, cfg.nodes,
		oscar.WithSeed(cfg.seed),
		oscar.WithReplicas(cfg.replicas),
		oscar.WithWriteConcern(cfg.writeConcern),
		oscar.WithDataDir(dir),
		oscar.WithAutoMaintenance(250*time.Millisecond),
		oscar.WithAntiEntropy(time.Second),
		oscar.WithStabilizeRounds(4),
		oscar.WithTransportWrapper(fn.Wrap))
	if err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	defer c.Close()

	// Victim casting, by ring order so the correlated crash really takes
	// two key-adjacent arc owners. Node 0 is the load client and immortal.
	order := make([]int, 0, cfg.nodes-1)
	for i := 1; i < cfg.nodes; i++ {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		return c.Node(order[a]).Key() < c.Node(order[b]).Key()
	})
	killA, killB := order[0], order[1]
	partVictim := order[3]
	restartA, restartB := order[5], order[7]
	slowNode := order[len(order)-1]

	churn := &churnState{closed: make(map[string]bool)}
	client := c.Node(0)
	ws, stopLoad, wg, hot := startWorkers(ctx, cfg, client)

	start := time.Now()
	plan := buildMemPlan(ctx, cfg, c, fn, churn, dir, start, hot,
		killA, killB, partVictim, restartA, restartB, slowNode)
	planErr := plan.Run(ctx, fn)
	close(stopLoad)
	wg.Wait()
	loadDur := time.Since(start)
	if planErr != nil {
		return fmt.Errorf("fault plan aborted: %w", planErr)
	}

	// Teardown: the weather is clear (drain phase); poll until every
	// tracked key reads back a ledger-allowed value.
	debugDump = func(k oscar.Key) []string {
		var lines []string
		for i := 0; i < c.Len(); i++ {
			n := c.Node(i)
			if churn.closed[n.Addr()] {
				continue
			}
			d := n.DebugKey(k)
			if d.HasPrimary || d.HasReplica || d.ReplicaTomb {
				lines = append(lines, fmt.Sprintf("    node[%d] key=%x primary=%q(%v) replica=%q(%v) rtomb=%v",
					i, uint64(n.Key()), d.Primary, d.HasPrimary, d.Replica, d.HasReplica, d.ReplicaTomb))
			}
		}
		octx, cancel := context.WithTimeout(ctx, opTimeout)
		if res, err := client.Lookup(octx, k); err == nil {
			lines = append(lines, fmt.Sprintf("    lookup owner=%s key=%x", res.Owner.Addr, uint64(res.Owner.Key)))
		} else {
			lines = append(lines, fmt.Sprintf("    lookup err=%v", err))
		}
		cancel()
		return lines
	}
	verdict := verifyConverged(ctx, cfg, client, ws)
	fs := fn.Stats()

	res := buildReport(cfg, "mem", ws, loadDur, verdict, &fs, churn, cacheCounters(ctx, client))
	if err := writeReport(cfg.out, res); err != nil {
		return err
	}
	return printVerdict(cfg, ws, verdict, res)
}

func buildMemPlan(ctx context.Context, cfg soakConfig, c *oscar.Cluster, fn *faultnet.Network,
	churn *churnState, dir string, start time.Time, hot *atomic.Bool,
	killA, killB, partVictim, restartA, restartB, slowNode int) faultnet.Plan {

	d := cfg.duration
	frac := func(f float64) time.Duration { return time.Duration(float64(d) * f) }
	joinRnd := rng.Derive(cfg.seed, "soak-joiners")

	nodeCfg := func(key oscar.Key, seed int64, dataDir string) oscar.NodeConfig {
		return oscar.NodeConfig{
			Key:             key,
			MaxIn:           16,
			MaxOut:          16,
			Replicas:        cfg.replicas,
			WriteConcern:    cfg.writeConcern,
			AutoMaintenance: 250 * time.Millisecond,
			AntiEntropy:     time.Second,
			Seed:            seed,
			DataDir:         dataDir,
		}
	}

	crash := func(i int) {
		n := c.Node(i)
		churn.closed[n.Addr()] = true
		_ = n.Close()
		churn.crashed++
	}

	return faultnet.Plan{
		OnPhase: func(ph faultnet.Phase) {
			log.Printf("phase %-18s t=%v", ph.Name, time.Since(start).Round(time.Millisecond))
		},
		Phases: []faultnet.Phase{
			{
				// Steady lossy weather, plus one node dragging every
				// conversation it is part of — the heterogeneity the
				// overlay is designed around.
				Name:     "baseline",
				Duration: frac(0.10),
				Apply: func(n *faultnet.Network) {
					n.SetDefault(baseFaults)
					n.SlowNode(transport.Addr(c.Node(slowNode).Addr()), 2.5)
				},
			},
			{
				// A hot-key crowd: every worker narrows its draws to the
				// head of its stripe while the put/delete mix keeps
				// mutating the same keys — the route and hot-key caches
				// (on by default) must absorb the read traffic without
				// ever serving a value the ledger disallows.
				Name:     "hot-key",
				Duration: frac(0.10),
				Apply: func(*faultnet.Network) {
					hot.Store(true)
				},
			},
			{
				// A flash crowd: three joiners arrive back to back while
				// the load runs. Each join splices an arc out of a live
				// owner (migrate) under loss.
				Name:     "flash-crowd",
				Duration: frac(0.10),
				Apply: func(*faultnet.Network) {
					hot.Store(false)
					for j := 0; j < 3; j++ {
						key := oscar.KeyFromFloat(joinRnd.Float64())
						_, err := c.AddNode(ctx, nodeCfg(key, cfg.seed+1000+int64(j), ""))
						if err != nil {
							log.Printf("flash-crowd join %d failed: %v", j, err)
							churn.joinFailures++
							continue
						}
						churn.added++
					}
				},
			},
			{
				// Two key-adjacent arc owners crash together: every write
				// they acked at w=3 has exactly one surviving copy, which
				// the next chain member must promote.
				Name:     "correlated-crash",
				Duration: frac(0.20),
				Apply: func(*faultnet.Network) {
					crash(killA)
					crash(killB)
				},
			},
			{
				// One node is fully cut off, both directions. The far side
				// heals around it and keeps acking writes to its old arc.
				Name:     "partition",
				Duration: frac(0.20),
				Apply: func(*faultnet.Network) {
					victim := c.Node(partVictim)
					var far []transport.Addr
					for _, n := range c.Nodes() {
						if n.Addr() != victim.Addr() && !churn.closed[n.Addr()] {
							far = append(far, transport.Addr(n.Addr()))
						}
					}
					fn.Partition([]transport.Addr{transport.Addr(victim.Addr())}, far)
				},
			},
			{
				// The partitioned node is declared failed and dies for
				// good before the blocks lift: its pre-partition state was
				// replicated, and readmitting a stale owner would shadow
				// every write its promoted successor acked in the
				// meantime (owner-authoritative anti-entropy). Then two
				// other nodes restart in place: clean close, WAL recovery,
				// rejoin — re-Join migrates the downtime delta back from
				// whoever owns the arc now.
				Name:     "heal+restart",
				Duration: frac(0.20),
				Apply: func(n *faultnet.Network) {
					crash(partVictim)
					n.Heal()
					for _, i := range []int{restartA, restartB} {
						old := c.Node(i)
						key := old.Key()
						churn.closed[old.Addr()] = true
						_ = old.Close()
						sleepCtx(ctx, 1200*time.Millisecond)
						_, err := c.AddNode(ctx, nodeCfg(key, cfg.seed+int64(i),
							filepath.Join(dir, fmt.Sprintf("node-%d", i))))
						if err != nil {
							log.Printf("restart of node %d failed: %v", i, err)
							churn.restartFailures++
							continue
						}
						churn.restarted++
						sleepCtx(ctx, 800*time.Millisecond)
					}
				},
			},
			{
				// Clear weather; the load keeps running so the report's
				// tail isn't all failure-path latencies.
				Name:     "drain",
				Duration: frac(0.10),
				Apply: func(n *faultnet.Network) {
					n.SetDefault(faultnet.Faults{})
					n.Heal()
				},
			},
		},
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// ---------------------------------------------------------------------------
// tcp mode: load + ledger client for an external ring

func runTCP(ctx context.Context, cfg soakConfig) error {
	if cfg.join == "" {
		return fmt.Errorf("tcp mode needs -join (address of any ring member)")
	}
	if cfg.workers < 1 || cfg.keys/cfg.workers < 2 {
		return fmt.Errorf("need -keys >= 2*-workers (got %d keys, %d workers)", cfg.keys, cfg.workers)
	}
	node, err := oscar.StartNode(oscar.NodeConfig{
		Listen:          cfg.listen,
		Key:             oscar.KeyFromFloat(rng.Derive(cfg.seed, "soak-client-key").Float64()),
		MaxIn:           16,
		MaxOut:          16,
		Replicas:        cfg.replicas,
		WriteConcern:    cfg.writeConcern,
		AutoMaintenance: 2 * time.Second,
		AntiEntropy:     2 * time.Second,
		Seed:            cfg.seed,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	// Rings boot one container at a time; wait out the window where the
	// introducer is not up yet.
	joinDeadline := time.Now().Add(time.Minute)
	for {
		if err = node.Join(ctx, cfg.join); err == nil {
			break
		}
		if time.Now().After(joinDeadline) || ctx.Err() != nil {
			return fmt.Errorf("join %s: %w", cfg.join, err)
		}
		sleepCtx(ctx, time.Second)
	}
	log.Printf("joined ring via %s as %s", cfg.join, node.Addr())

	ws, stopLoad, wg, _ := startWorkers(ctx, cfg, node)
	start := time.Now()
	sleepCtx(ctx, cfg.duration)
	close(stopLoad)
	wg.Wait()
	loadDur := time.Since(start)

	verdict := verifyConverged(ctx, cfg, node, ws)
	res := buildReport(cfg, "tcp", ws, loadDur, verdict, nil, nil, cacheCounters(ctx, node))
	if err := writeReport(cfg.out, res); err != nil {
		return err
	}
	return printVerdict(cfg, ws, verdict, res)
}

// ---------------------------------------------------------------------------
// Teardown verification

type soakVerdict struct {
	converged     bool
	convergence   time.Duration
	violations    []string
	lostAcked     int
	unresolved    int
	indeterminate int
	tracked       int
}

// verifyConverged polls the cluster until one full sweep reads every
// tracked key back as a ledger-allowed value, or the converge timeout
// expires. Background maintenance and anti-entropy keep running
// underneath — the poll measures the system healing itself.
func verifyConverged(ctx context.Context, cfg soakConfig, client oscar.Client, ws []*worker) soakVerdict {
	var v soakVerdict
	for _, w := range ws {
		for _, st := range w.keys {
			v.tracked++
			if st.indeterminate() {
				v.indeterminate++
			}
		}
	}
	log.Printf("verifying %d tracked keys (%d indeterminate) for up to %v",
		v.tracked, v.indeterminate, cfg.convergeTimeout)

	start := time.Now()
	deadline := start.Add(cfg.convergeTimeout)
	for {
		viol, lost, unresolved := sweep(ctx, client, ws)
		if len(viol) == 0 && unresolved == 0 {
			v.converged = true
			v.convergence = time.Since(start)
			v.violations, v.lostAcked, v.unresolved = nil, 0, 0
			return v
		}
		v.violations, v.lostAcked, v.unresolved = viol, lost, unresolved
		if time.Now().After(deadline) || ctx.Err() != nil {
			v.convergence = time.Since(start)
			return v
		}
		sleepCtx(ctx, 300*time.Millisecond)
	}
}

// debugDump, when set, reports where a violated key's value lives across
// the cluster's stores — temporary diagnostics for loss triage.
var debugDump func(oscar.Key) []string

// sweep runs one strict pass over every tracked key. unresolved counts
// keys whose reads kept failing (not a loss, but not convergence either).
func sweep(ctx context.Context, client oscar.Client, ws []*worker) (viol []string, lost, unresolved int) {
	const maxEvidence = 20
	record := func(msg string) {
		if len(viol) < maxEvidence {
			viol = append(viol, msg)
		} else if len(viol) == maxEvidence {
			viol = append(viol, "... more suppressed")
		}
	}
	for _, w := range ws {
		idxs := make([]int, 0, len(w.keys))
		for idx := range w.keys {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			st := w.keys[idx]
			val, absent, ok := finalGet(ctx, client, keyFor(idx, w.total))
			if !ok {
				unresolved++
				record(fmt.Sprintf("key %d: read kept failing", idx))
				continue
			}
			if st.allows(val, absent) {
				continue
			}
			if st.determinate() {
				lost++
			}
			got := fmt.Sprintf("%q", val)
			if absent {
				got = "nothing"
			}
			want := "an indeterminate candidate"
			if st.determinate() {
				if st.ackedDel {
					want = "nothing (acked delete)"
				} else {
					want = fmt.Sprintf("%q (acked)", st.acked)
				}
			}
			record(fmt.Sprintf("key %d: read %s, want %s", idx, got, want))
			if debugDump != nil {
				for _, line := range debugDump(keyFor(idx, w.total)) {
					record(line)
				}
			}
		}
	}
	return viol, lost, unresolved
}

// finalGet reads one key with per-attempt timeouts, riding out transient
// failures. ok=false means the read never resolved to found/not-found.
func finalGet(ctx context.Context, client oscar.Client, key oscar.Key) (val string, absent, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		octx, cancel := context.WithTimeout(ctx, opTimeout)
		res, err := client.Get(octx, key)
		cancel()
		switch {
		case err == nil:
			return string(res.Value), false, true
		case errors.Is(err, oscar.ErrNotFound):
			return "", true, true
		}
		if ctx.Err() != nil {
			return "", false, false
		}
		sleepCtx(ctx, 100*time.Millisecond)
	}
	return "", false, false
}

// ---------------------------------------------------------------------------
// Report

// cacheCounters reads the client's route/hot-key cache counters for the
// report; nil if Info itself fails (the report then just omits them).
func cacheCounters(ctx context.Context, client oscar.Client) map[string]float64 {
	octx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	info, err := client.Info(octx)
	if err != nil {
		return nil
	}
	return map[string]float64{
		"route_cache_hits":     float64(info.RouteCacheHits),
		"route_cache_misses":   float64(info.RouteCacheMisses),
		"hot_key_cache_hits":   float64(info.HotKeyCacheHits),
		"hot_key_cache_misses": float64(info.HotKeyCacheMisses),
	}
}

func buildReport(cfg soakConfig, mode string, ws []*worker, loadDur time.Duration,
	v soakVerdict, fs *faultnet.Stats, churn *churnState, caches map[string]float64) benchResult {

	var t workerStats
	var lat []int64
	for _, w := range ws {
		t.ops += w.stats.ops
		t.puts += w.stats.puts
		t.gets += w.stats.gets
		t.dels += w.stats.dels
		t.scans += w.stats.scans
		t.ackedWrites += w.stats.ackedWrites
		t.shortfalls += w.stats.shortfalls
		t.transients += w.stats.transients
		t.unexpected += w.stats.unexpected
		t.anomalies += w.stats.anomalies
		t.scanItems += w.stats.scanItems
		t.hotOps += w.stats.hotOps
		lat = append(lat, w.stats.latencies...)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / 1e6 // ms
	}
	var mean float64
	for _, l := range lat {
		mean += float64(l)
	}
	if len(lat) > 0 {
		mean /= float64(len(lat))
	}

	m := map[string]float64{
		"ops_per_sec":              float64(t.ops) / loadDur.Seconds(),
		"p50_ms":                   pct(0.50),
		"p95_ms":                   pct(0.95),
		"p99_ms":                   pct(0.99),
		"puts":                     float64(t.puts),
		"gets":                     float64(t.gets),
		"deletes":                  float64(t.dels),
		"scans":                    float64(t.scans),
		"scan_items":               float64(t.scanItems),
		"hot_ops":                  float64(t.hotOps),
		"acked_writes":             float64(t.ackedWrites),
		"write_concern_shortfalls": float64(t.shortfalls),
		"transient_errors":         float64(t.transients),
		"unexpected_errors":        float64(t.unexpected),
		"load_read_anomalies":      float64(t.anomalies),
		"tracked_keys":             float64(v.tracked),
		"indeterminate_keys":       float64(v.indeterminate),
		"lost_acked_writes":        float64(v.lostAcked),
		"violations":               float64(len(v.violations)),
		"unresolved_reads":         float64(v.unresolved),
		"convergence_ms":           float64(v.convergence.Milliseconds()),
	}
	if fs != nil {
		m["fault_calls"] = float64(fs.Calls)
		m["fault_dropped"] = float64(fs.Dropped)
		m["fault_blocked"] = float64(fs.Blocked)
		m["fault_overloaded"] = float64(fs.Overloaded)
		m["fault_delayed_ms"] = float64(fs.Delayed.Milliseconds())
	}
	if churn != nil {
		m["nodes_added"] = float64(churn.added)
		m["nodes_crashed"] = float64(churn.crashed)
		m["nodes_restarted"] = float64(churn.restarted)
		m["churn_failures"] = float64(churn.joinFailures + churn.restartFailures)
	}
	for k, val := range caches {
		m[k] = val
	}

	return benchResult{
		Name:       fmt.Sprintf("Soak/mode=%s/seed=%d", mode, cfg.seed),
		Procs:      runtime.GOMAXPROCS(0),
		Iterations: t.ops,
		NsPerOp:    mean,
		Metrics:    m,
	}
}

func writeReport(path string, res benchResult) error {
	enc, err := json.MarshalIndent([]benchResult{res}, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	return os.WriteFile(path, enc, 0o644)
}

// printVerdict prints the human summary and returns an error (exit 1)
// when the soak's invariants did not hold.
func printVerdict(cfg soakConfig, ws []*worker, v soakVerdict, res benchResult) error {
	m := res.Metrics
	fmt.Printf("soak: %d ops (%.0f/s), p50 %.1fms p95 %.1fms p99 %.1fms\n",
		res.Iterations, m["ops_per_sec"], m["p50_ms"], m["p95_ms"], m["p99_ms"])
	fmt.Printf("writes: %d acked, %d write-concern shortfalls, %d transient errors, %d unexpected\n",
		int(m["acked_writes"]), int(m["write_concern_shortfalls"]),
		int(m["transient_errors"]), int(m["unexpected_errors"]))
	if _, ok := m["nodes_crashed"]; ok {
		fmt.Printf("churn: +%d joined, %d crashed, %d restarted; faults: %d calls, %d dropped, %d blocked\n",
			int(m["nodes_added"]), int(m["nodes_crashed"]), int(m["nodes_restarted"]),
			int(m["fault_calls"]), int(m["fault_dropped"]), int(m["fault_blocked"]))
	}
	if _, ok := m["route_cache_hits"]; ok {
		fmt.Printf("caches: %d hot ops; route %d hits / %d misses, hot-key %d hits / %d misses\n",
			int(m["hot_ops"]),
			int(m["route_cache_hits"]), int(m["route_cache_misses"]),
			int(m["hot_key_cache_hits"]), int(m["hot_key_cache_misses"]))
	}
	if v.converged {
		fmt.Printf("converged: all %d tracked keys (%d indeterminate) read ledger-allowed values after %v\n",
			v.tracked, v.indeterminate, v.convergence.Round(time.Millisecond))
	}

	if res.Iterations == 0 {
		return fmt.Errorf("harness error: no ops executed")
	}
	if int(m["acked_writes"]) == 0 {
		return fmt.Errorf("harness error: no write was ever acknowledged")
	}
	if cfg.mode == "mem" {
		// The hot-key phase must have actually run its crowd through the
		// caches — a zero here means the caching path went untested, not
		// that the invariants held.
		if int(m["hot_ops"]) == 0 {
			return fmt.Errorf("harness error: the hot-key phase drove no ops")
		}
		if m["route_cache_hits"]+m["route_cache_misses"] == 0 {
			return fmt.Errorf("harness error: the route cache never saw traffic")
		}
		if m["hot_key_cache_hits"]+m["hot_key_cache_misses"] == 0 {
			return fmt.Errorf("harness error: the hot-key cache never saw traffic")
		}
	}
	if !v.converged {
		for _, line := range v.violations {
			log.Printf("VIOLATION: %s", line)
		}
		return fmt.Errorf("did not converge within %v: %d violations (%d lost acked writes, %d unresolved reads)",
			cfg.convergeTimeout, len(v.violations), v.lostAcked, v.unresolved)
	}
	return nil
}
