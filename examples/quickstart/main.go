// Quickstart: build an Oscar overlay, look keys up, store and fetch data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	oscar "github.com/oscar-overlay/oscar"
)

func main() {
	// A 2000-peer overlay on a heavy-tailed key distribution with every
	// peer allowing 27 links — the paper's baseline setting, built from
	// scratch in-process.
	ov, err := oscar.Build(oscar.Config{Size: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay up: %d peers\n", ov.Size())

	// Route to the owner of a key. Routing is greedy over each peer's ring
	// pointers and long-range links; cost is the number of messages.
	key := oscar.KeyFromFloat(0.42)
	route := ov.Lookup(key)
	fmt.Printf("lookup %v: owner node %d in %d hops\n", key, route.Owner, route.Hops)

	// The overlay is an order-preserving index: store items and query them
	// back, by key or by range.
	for i := 0; i < 100; i++ {
		k := oscar.KeyFromFloat(0.30 + 0.001*float64(i))
		if _, err := ov.Put(k, []byte(fmt.Sprintf("item-%03d", i))); err != nil {
			log.Fatal(err)
		}
	}
	val, found, cost, err := ov.Get(oscar.KeyFromFloat(0.35))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get 0.35: %q (found=%v, %d messages)\n", val, found, cost)

	res, err := ov.RangeQuery(oscar.KeyFromFloat(0.32), oscar.KeyFromFloat(0.36), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [0.32,0.36): %d items from %d peers, %d messages\n",
		len(res.Items), res.PeersScanned, res.Cost)

	// Network-wide health: the measurement the paper's figures are made of.
	m := ov.Measure()
	fmt.Printf("avg search cost %.2f over %d queries; degree volume %.0f%%\n",
		m.AvgSearchCost, m.Queries, 100*m.DegreeVolume)
}
