package oscar

import (
	"context"
	"fmt"
	"iter"
)

// ScanOption tunes one Scan call.
type ScanOption func(*scanConfig)

type scanConfig struct {
	pageSize int
	limit    int
}

// WithPageSize caps how many items each scan page requests. The server
// additionally bounds every page by its replicate frame limits (512 items
// / 4 MiB), so this only ever shrinks pages — useful to smooth latency or
// to exercise paging in tests. <= 0 (the default) means the frame bounds
// alone.
func WithPageSize(n int) ScanOption {
	return func(c *scanConfig) { c.pageSize = n }
}

// WithLimit stops the scan after n items. <= 0 (the default) means
// unlimited — the scan runs to the end of the range.
func WithLimit(n int) ScanOption {
	return func(c *scanConfig) { c.limit = n }
}

// ScanStats reports the accumulated cost of a scan so far.
type ScanStats struct {
	// Cost is the total message count: routing steps, page fetches and
	// failover probes.
	Cost int
	// PeersScanned is how many distinct peers served pages.
	PeersScanned int
	// Pages is the number of page fetches performed.
	Pages int
}

// scanChunk is one backend page: the raw items, whether the range is
// exhausted, and the page's message/peer accounting.
type scanChunk struct {
	items []Item
	done  bool
	cost  int
	peers int
}

// scanPager fetches one page of a scan, clockwise from cursor, with at
// most want items (<= 0: backend page bounds alone). Implementations keep
// their own shard position between calls; the cursor carries the resume
// key.
type scanPager func(ctx context.Context, cursor Key, want int) (scanChunk, error)

// Scanner streams the items of a range query page by page. It holds at
// most one page in memory at a time; the caller pulls with Next/Item or
// ranges over All. A Scanner is not safe for concurrent use.
//
//	sc := client.Scan(ctx, lo, hi)
//	for item, err := range sc.All() {
//	    if err != nil {
//	        return err
//	    }
//	    use(item)
//	}
type Scanner struct {
	ctx   context.Context
	rg    Range
	cfg   scanConfig
	fetch scanPager

	cursor  Key
	page    []Item
	idx     int
	emitted int
	stats   ScanStats
	err     error
	done    bool // no more pages to fetch
	fin     bool // iteration fully finished (page drained too)
}

// newScanner builds a Scanner over [start, end) driven by fetch.
func newScanner(ctx context.Context, start, end Key, opts []ScanOption, fetch scanPager) *Scanner {
	var cfg scanConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Scanner{ctx: ctx, rg: Range{Start: start, End: end}, cfg: cfg, fetch: fetch, cursor: start}
	if start == end {
		// A degenerate arc: Start == End denotes the full circle in range
		// semantics, which a scan refuses rather than silently walking the
		// whole ring — split a full-circle read into two halves instead.
		s.err = fmt.Errorf("%w: start == end (full-circle scan; split into two ranges)", ErrBadRange)
		s.done, s.fin = true, true
	}
	return s
}

// failedScanner is a Scanner that yields only err (client closed, nil
// context, ...).
func failedScanner(err error) *Scanner {
	return &Scanner{err: err, done: true, fin: true}
}

// Next advances to the next item. It returns false when the scan is
// exhausted or failed; check Err afterwards. Fetching happens lazily: a
// Next that crosses a page boundary performs the network round trips for
// the following page.
func (s *Scanner) Next() bool {
	if s.fin {
		return false
	}
	if s.idx < len(s.page) {
		s.idx++
		s.emitted++
		return true
	}
	for !s.done {
		if err := s.ctx.Err(); err != nil {
			s.err, s.done, s.fin = err, true, true
			return false
		}
		want := s.cfg.pageSize
		if s.cfg.limit > 0 {
			left := s.cfg.limit - s.emitted
			if left <= 0 {
				s.done, s.fin = true, true
				return false
			}
			if want <= 0 || left < want {
				want = left
			}
		}
		chunk, err := s.fetch(s.ctx, s.cursor, want)
		s.stats.Cost += chunk.cost
		s.stats.PeersScanned += chunk.peers
		s.stats.Pages++
		if err != nil {
			s.err, s.done, s.fin = err, true, true
			return false
		}
		raw := chunk.items
		if len(raw) > 0 {
			// Advance the cursor past the last raw item, then keep only the
			// items still ahead of the old cursor and inside the range — a
			// safety net against a lagging replica re-serving keys a
			// previous page already covered.
			rem := Range{Start: s.cursor, End: s.rg.End}
			page := raw[:0:0]
			for _, it := range raw {
				if rem.Contains(it.Key) {
					page = append(page, it)
				}
			}
			next := raw[len(raw)-1].Key + 1
			if !rem.Contains(next) {
				s.done = true
			}
			s.cursor = next
			if s.cfg.limit > 0 {
				if left := s.cfg.limit - s.emitted; len(page) >= left {
					page = page[:left]
					s.done = true
				}
			}
			s.page, s.idx = page, 0
		} else {
			s.page, s.idx = nil, 0
		}
		if chunk.done {
			s.done = true
		}
		if s.idx < len(s.page) {
			s.idx++
			s.emitted++
			return true
		}
	}
	s.fin = true
	return false
}

// Item returns the item Next advanced to. It is only valid after a Next
// that returned true.
func (s *Scanner) Item() Item { return s.page[s.idx-1] }

// Err returns the error that terminated the scan, or nil after a clean
// finish. Context cancellation surfaces here untranslated.
func (s *Scanner) Err() error { return s.err }

// Stats reports the message cost accumulated so far; it may be read mid-
// scan or after the end.
func (s *Scanner) Stats() ScanStats { return s.stats }

// All adapts the scanner to a range-over-func iterator: it yields every
// item in clockwise key order, then — if the scan failed — a final pair
// with the zero Item and the error. Breaking out of the loop stops the
// scan without further fetches.
func (s *Scanner) All() iter.Seq2[Item, error] {
	return func(yield func(Item, error) bool) {
		for s.Next() {
			if !yield(s.Item(), nil) {
				return
			}
		}
		if err := s.Err(); err != nil {
			yield(Item{}, err)
		}
	}
}

// drainScanner buffers a whole scan into a RangeResponse — the engine
// behind the deprecated RangeQuery methods.
func drainScanner(s *Scanner) (RangeResponse, error) {
	var out RangeResponse
	for s.Next() {
		out.Items = append(out.Items, s.Item())
	}
	st := s.Stats()
	out.Cost = st.Cost
	out.PeersScanned = st.PeersScanned
	return out, s.Err()
}
