package oscar

import (
	"bytes"
	"fmt"
	"testing"
)

// buildSmall builds a small overlay once per test (sizes chosen to keep the
// whole suite fast).
func buildSmall(t *testing.T, cfg Config) *Overlay {
	t.Helper()
	if cfg.Size == 0 {
		cfg.Size = 400
	}
	ov, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return ov
}

func TestBuildDefaults(t *testing.T) {
	ov := buildSmall(t, Config{})
	if ov.Size() != 400 {
		t.Errorf("Size = %d", ov.Size())
	}
	if len(ov.Nodes()) != 400 {
		t.Errorf("Nodes = %d", len(ov.Nodes()))
	}
}

func TestBuildRejectsBadAlgorithm(t *testing.T) {
	if _, err := Build(Config{Algorithm: Algorithm(99)}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestLookupFindsOwner(t *testing.T) {
	ov := buildSmall(t, Config{})
	for i := 0; i < 200; i++ {
		key := KeyFromFloat(float64(i) / 200)
		route := ov.Lookup(key)
		if !route.Found {
			t.Fatalf("lookup %v failed", key)
		}
		owner := ov.Info(route.Owner)
		pred := ov.Info(owner.Predecessor)
		if !key.BetweenIncl(pred.Key, owner.Key) {
			t.Fatalf("wrong owner for %v", key)
		}
	}
}

func TestLookupFromSpecificPeer(t *testing.T) {
	ov := buildSmall(t, Config{})
	from := ov.Nodes()[0]
	route := ov.LookupFrom(from, KeyFromFloat(0.5))
	if !route.Found {
		t.Fatal("lookup failed")
	}
	if route.Path[0] != from {
		t.Error("path must start at the source")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	ov := buildSmall(t, Config{})
	for i := 0; i < 100; i++ {
		key := KeyFromFloat(float64(i) / 100)
		want := []byte(fmt.Sprintf("value-%d", i))
		if _, err := ov.Put(key, want); err != nil {
			t.Fatal(err)
		}
		got, found, cost, err := ov.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("get %v = %q, %v", key, got, found)
		}
		if cost < 0 {
			t.Error("negative cost")
		}
	}
}

func TestGetMissing(t *testing.T) {
	ov := buildSmall(t, Config{})
	_, found, _, err := ov.Get(KeyFromFloat(0.123))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("missing key reported found")
	}
}

func TestPutReplace(t *testing.T) {
	ov := buildSmall(t, Config{})
	key := KeyFromFloat(0.7)
	if res, err := ov.Put(key, []byte("a")); err != nil || res.Replaced {
		t.Fatalf("first put: %+v, %v", res, err)
	}
	res, err := ov.Put(key, []byte("b"))
	if err != nil || !res.Replaced {
		t.Fatalf("second put: %+v, %v", res, err)
	}
	got, _, _, _ := ov.Get(key)
	if string(got) != "b" {
		t.Errorf("value = %q", got)
	}
}

func TestRangeQuery(t *testing.T) {
	ov := buildSmall(t, Config{})
	// Store 50 items at known fractions.
	for i := 0; i < 50; i++ {
		if _, err := ov.Put(KeyFromFloat(float64(i)/50), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Query [0.2, 0.4): fractions 10/50 .. 19/50.
	res, err := ov.RangeQuery(KeyFromFloat(0.2), KeyFromFloat(0.4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 10 {
		t.Fatalf("range returned %d items, want 10", len(res.Items))
	}
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i-1].Key >= res.Items[i].Key {
			t.Fatal("range results out of order")
		}
	}
	if res.PeersScanned < 1 || res.Cost < res.PeersScanned-1 {
		t.Errorf("implausible scan stats: %+v", res)
	}
}

func TestRangeQueryLimit(t *testing.T) {
	ov := buildSmall(t, Config{})
	for i := 0; i < 50; i++ {
		if _, err := ov.Put(KeyFromFloat(float64(i)/50), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ov.RangeQuery(KeyFromFloat(0), KeyFromFloat(1.0-1e-9), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 7 {
		t.Errorf("limit ignored: %d items", len(res.Items))
	}
}

func TestRangeQueryWrapping(t *testing.T) {
	ov := buildSmall(t, Config{})
	for _, f := range []float64{0.95, 0.99, 0.01, 0.05, 0.5} {
		if _, err := ov.Put(KeyFromFloat(f), []byte(fmt.Sprint(f))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ov.RangeQuery(KeyFromFloat(0.9), KeyFromFloat(0.1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 4 { // all but 0.5
		t.Errorf("wrapping range returned %d items, want 4", len(res.Items))
	}
}

func TestGrowMigratesItems(t *testing.T) {
	ov := buildSmall(t, Config{Size: 200})
	var keys []Key
	for i := 0; i < 300; i++ {
		k := KeyFromFloat(float64(i) / 300)
		keys = append(keys, k)
		if _, err := ov.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ov.Grow(400) // joins must take over their arcs' items
	ov.RewireAll()
	for i, k := range keys {
		got, found, _, err := ov.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || got[0] != byte(i) {
			t.Fatalf("item %d lost after growth", i)
		}
	}
}

func TestCrashAndBacktrackRouting(t *testing.T) {
	ov := buildSmall(t, Config{Size: 500})
	killed := ov.Crash(0.33)
	if killed != 165 {
		t.Fatalf("killed %d", killed)
	}
	if err := ov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		route := ov.Lookup(KeyFromFloat(float64(i) / 200))
		if !route.Found {
			t.Fatal("lookup failed after churn")
		}
	}
	m := ov.Measure()
	if m.Size != 335 {
		t.Errorf("size after churn = %d", m.Size)
	}
	if m.AvgProbes == 0 {
		t.Error("no probes under churn — stale link model inactive")
	}
}

func TestMeasureHealthy(t *testing.T) {
	ov := buildSmall(t, Config{})
	m := ov.Measure()
	if m.Failed != 0 || m.AvgSearchCost <= 0 {
		t.Errorf("measurement: %+v", m)
	}
	if m.DegreeVolume <= 0.5 {
		t.Errorf("degree volume %.2f", m.DegreeVolume)
	}
}

func TestAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmOscar, AlgorithmMercury, AlgorithmKleinberg} {
		ov := buildSmall(t, Config{Size: 300, Algorithm: alg})
		m := ov.Measure()
		if m.Failed != 0 {
			t.Errorf("algorithm %d: %d failures", alg, m.Failed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := buildSmall(t, Config{Seed: 7}).Measure()
	b := buildSmall(t, Config{Seed: 7}).Measure()
	if a.AvgSearchCost != b.AvgSearchCost {
		t.Error("same seed, different overlays")
	}
}

func TestInfo(t *testing.T) {
	ov := buildSmall(t, Config{})
	id := ov.Nodes()[10]
	info := ov.Info(id)
	if info.ID != id || !info.Alive {
		t.Errorf("info: %+v", info)
	}
	if info.MaxIn != 27 || info.MaxOut != 27 {
		t.Errorf("caps: %+v", info)
	}
	if info.Successor == info.ID && ov.Size() > 1 {
		t.Error("successor must differ")
	}
}

func TestDistributionConstructors(t *testing.T) {
	if UniformKeys().Name() != "uniform" {
		t.Error("UniformKeys")
	}
	if GnutellaKeys().Name() != "gnutella" {
		t.Error("GnutellaKeys")
	}
	if _, err := ZipfKeys(16, 1.0); err != nil {
		t.Error(err)
	}
	if ConstantDegrees(27).Mean() != 27 {
		t.Error("ConstantDegrees")
	}
	if SteppedDegrees().Mean() != 27 {
		t.Error("SteppedDegrees")
	}
	if m := RealisticDegrees().Mean(); m < 27-1e-9 || m > 27+1e-9 {
		t.Errorf("RealisticDegrees mean = %v", m)
	}
}
