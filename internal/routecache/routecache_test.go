package routecache

import (
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func k(i int) keyspace.Key { return keyspace.Key(i) }

func TestPutGet(t *testing.T) {
	c := New[string](4, 0)
	c.Put(k(1), "a")
	c.Put(k(2), "b")
	if v, ok := c.Get(k(1)); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := c.Get(k(3)); ok {
		t.Fatal("Get(3) hit on absent key")
	}
	c.Put(k(1), "a2")
	if v, _ := c.Get(k(1)); v != "a2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3, 0)
	for i := 1; i <= 3; i++ {
		c.Put(k(i), i)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(k(4), 4)
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("LRU entry 2 survived past capacity")
	}
	for _, want := range []int{1, 3, 4} {
		if _, ok := c.Get(k(want)); !ok {
			t.Fatalf("entry %d evicted wrongly", want)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New[string](4, time.Second)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put(k(1), "a")
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not removed")
	}
	// A refresh restarts the TTL.
	c.Put(k(1), "b")
	now = now.Add(900 * time.Millisecond)
	c.Put(k(1), "c")
	now = now.Add(900 * time.Millisecond)
	if v, ok := c.Get(k(1)); !ok || v != "c" {
		t.Fatalf("refreshed entry = %q, %v; want live \"c\"", v, ok)
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](8, 0)
	for i := 0; i < 6; i++ {
		c.Put(k(i), i)
	}
	c.Invalidate(k(2))
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("invalidated entry served")
	}
	c.InvalidateMatching(func(_ keyspace.Key, v int) bool { return v%2 == 1 })
	// Evens 0 and 4 survive (2 was invalidated above); odds 1,3,5 matched.
	if c.Len() != 2 {
		t.Fatalf("Len after InvalidateMatching = %d, want 2", c.Len())
	}
	for _, want := range []int{0, 4} {
		if _, ok := c.Get(k(want)); !ok {
			t.Fatalf("entry %d wrongly dropped", want)
		}
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("Flush left entries behind")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[string]
	if c != New[string](0, 0) || c != New[string](-1, 0) {
		t.Fatal("non-positive capacity must return the nil cache")
	}
	c.Put(k(1), "a")
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("nil cache served a value")
	}
	c.Invalidate(k(1))
	c.InvalidateMatching(func(keyspace.Key, string) bool { return true })
	c.Flush()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache reports non-empty state")
	}
}
