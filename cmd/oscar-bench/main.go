// Command oscar-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the experiment index):
//
//	fig1a   synthetic spiky node-degree pdf
//	fig1b   relative degree load per peer (three cap distributions)
//	fig1c   average search cost vs network size (three cap distributions)
//	fig2a   search cost under churn, constant caps
//	fig2b   search cost under churn, "realistic" caps
//	volume  degree-volume utilisation: Oscar vs Mercury (≈85% vs ≈61%)
//	homog   homogeneous-caps search cost: Oscar vs Mercury vs Kleinberg
//	ablation-p2c, ablation-samples, ablation-oracle
//
// By default the harness runs at a laptop-friendly scale (3000 peers); pass
// -full for the paper's 10000-peer setup. Results are printed as aligned
// tables; -csv DIR additionally writes one CSV per experiment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oscar-overlay/oscar/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oscar-bench: ")

	var (
		exp  = flag.String("exp", "all", "experiment id (all|fig1a|fig1b|fig1c|fig2a|fig2b|volume|homog|ablation-p2c|ablation-samples|ablation-oracle)")
		full = flag.Bool("full", false, "paper scale: 10000 peers (default: 3000)")
		seed = flag.Int64("seed", 1, "root random seed")
		csv  = flag.String("csv", "", "directory to write per-experiment CSV files")
		v    = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	scale := bench.QuickScale()
	if *full {
		scale = bench.PaperScale()
	}
	h := bench.New(os.Stdout, scale, *seed, *v)
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			log.Fatal(err)
		}
		h.CSVWriter = func(name string, write func(f *os.File) error) error {
			f, err := os.Create(filepath.Join(*csv, name+".csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return write(f)
		}
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = bench.AllExperiments
	}
	start := time.Now()
	for _, id := range ids {
		if err := h.Run(strings.TrimSpace(id)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n# done in %.1fs\n", time.Since(start).Seconds())
}
