// Package simsnapshot serialises a built overlay to JSON and back: experiment
// runs are expensive (minutes for 10 000 peers), so the harness can save a
// constructed topology once and analyses can reload it instantly. Snapshots
// also freeze a network for regression comparison across code versions.
package simsnapshot

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// FormatVersion identifies the snapshot schema.
const FormatVersion = 1

// NodeRecord is one peer's serialised state.
type NodeRecord struct {
	ID     graph.NodeID   `json:"id"`
	Key    keyspace.Key   `json:"key"`
	MaxIn  int            `json:"max_in"`
	MaxOut int            `json:"max_out"`
	Out    []graph.NodeID `json:"out,omitempty"`
	Alive  bool           `json:"alive"`
}

// Snapshot is a serialised overlay.
type Snapshot struct {
	Version int          `json:"version"`
	Label   string       `json:"label,omitempty"`
	Nodes   []NodeRecord `json:"nodes"`
}

// Capture serialises the network. Ring pointers are not stored: they are
// derivable (and re-derived on Restore via stabilisation).
func Capture(net *graph.Network, label string) *Snapshot {
	s := &Snapshot{Version: FormatVersion, Label: label}
	for id := 0; id < net.Len(); id++ {
		n := net.Node(graph.NodeID(id))
		rec := NodeRecord{
			ID: n.ID, Key: n.Key, MaxIn: n.MaxIn, MaxOut: n.MaxOut, Alive: n.Alive,
		}
		if n.Alive {
			rec.Out = append(rec.Out, n.Out...)
		}
		s.Nodes = append(s.Nodes, rec)
	}
	return s
}

// Write encodes the snapshot as JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Read decodes a snapshot from JSON.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	return &s, nil
}

// Restore rebuilds a network and its ring from a snapshot. Node ids are
// preserved (records must be dense and id-ordered, as Capture produces).
func Restore(s *Snapshot) (*graph.Network, *ring.Ring, error) {
	net := graph.New()
	rg := ring.New(net)
	// Pass 1: create peers in id order so ids line up.
	for i, rec := range s.Nodes {
		if int(rec.ID) != i {
			return nil, nil, fmt.Errorf("snapshot: non-dense node ids (record %d has id %d)", i, rec.ID)
		}
		n := net.Add(rec.Key, rec.MaxIn, rec.MaxOut)
		rg.Insert(n.ID)
	}
	// Pass 2: links between alive peers (links to dead peers are recreated
	// afterwards so admission control does not see them).
	for _, rec := range s.Nodes {
		if !rec.Alive {
			continue
		}
		for _, t := range rec.Out {
			if !s.Nodes[t].Alive {
				continue
			}
			if err := net.AddLink(rec.ID, t); err != nil {
				return nil, nil, fmt.Errorf("snapshot: restore link %d->%d: %w", rec.ID, t, err)
			}
		}
	}
	// Pass 3: deaths, then stale links into the corpses.
	for _, rec := range s.Nodes {
		if !rec.Alive {
			rg.Kill(rec.ID)
		}
	}
	for _, rec := range s.Nodes {
		if !rec.Alive {
			continue
		}
		for _, t := range rec.Out {
			if s.Nodes[t].Alive {
				continue
			}
			// Re-insert the stale entry directly: AddLink refuses dead
			// targets by design. The corpse's in-list mirrors the entry,
			// matching the live accounting convention (a dead peer's
			// in-list keeps naming its sources).
			net.Node(rec.ID).Out = append(net.Node(rec.ID).Out, t)
			net.Node(t).In = append(net.Node(t).In, rec.ID)
		}
	}
	return net, rg, nil
}
