package bench

import (
	"fmt"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/metrics"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/sim"
)

// fig1aDegrees are the support points printed for the degree pdf (log-ish
// spacing plus the spike locations).
var fig1aDegrees = []int{
	1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 24, 27, 32, 40, 50, 64, 80, 100, 128, 160, 200, 256,
}

// Fig1a prints the synthetic spiky node-degree distribution: analytic pmf
// and the empirical pmf of 100k draws.
func (h *Harness) Fig1a() error {
	h.section("Fig 1(a): synthetic spiky node-degree pdf (mean 27)",
		"log-log pdf over degrees 1..~256 spanning 1e-5..1e-1 with spikes at client defaults")
	d := degreedist.PaperRealistic()
	emp := metrics.NewIntPMF()
	r := rng.Derive(h.Seed, "fig1a")
	for i := 0; i < 100000; i++ {
		emp.Add(d.Sample(r))
	}
	tab := metrics.NewTable("degree", "pdf_analytic", "pdf_empirical")
	for _, deg := range fig1aDegrees {
		tab.AddRow(deg, d.Prob(deg), emp.Prob(deg))
	}
	if err := h.emit("fig1a", tab); err != nil {
		return err
	}
	fmt.Fprintf(h.Out, "# analytic mean %.4f (paper: 27)\n", d.Mean())
	return nil
}

// Fig1b prints the relative degree load curve (per-peer in-degree/ρmax_in,
// sorted ascending) at the target size for the three cap distributions, as
// deciles, plus the exploited degree volume.
func (h *Harness) Fig1b() error {
	h.section(fmt.Sprintf("Fig 1(b): relative degree load at n=%d (Gnutella keys)", h.Scale.Target),
		"all three cap distributions exploit ≈85% of the available degree volume; curves nearly coincide")
	tab := metrics.NewTable("caps", "volume", "load_p10", "load_p25", "load_p50", "load_p75", "load_p90", "load_max")
	for _, caps := range capDistributions() {
		h.logf("fig1b: building %s", caps.Name())
		s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, caps, nil)
		if err != nil {
			return err
		}
		m := s.Measure(false)
		loads := m.RelativeLoads
		tab.AddRow(caps.Name(), m.DegreeVolume,
			metrics.Percentile(loads, 0.10), metrics.Percentile(loads, 0.25),
			metrics.Percentile(loads, 0.50), metrics.Percentile(loads, 0.75),
			metrics.Percentile(loads, 0.90), metrics.Percentile(loads, 1.0))
	}
	return h.emit("fig1b", tab)
}

// Fig1c prints average search cost vs network size for the three cap
// distributions.
func (h *Harness) Fig1c() error {
	h.section("Fig 1(c): search cost vs size, three in-degree distributions (Gnutella keys)",
		"the three curves are almost identical and grow logarithmically (≈8–13 at 10000 in the paper's units)")
	results := make(map[string][]sim.Measurement)
	var names []string
	for _, caps := range capDistributions() {
		h.logf("fig1c: growth run with %s", caps.Name())
		ms, err := h.growthRun(sim.SystemOscar, caps, nil)
		if err != nil {
			return err
		}
		results[caps.Name()] = ms
		names = append(names, caps.Name())
	}
	tab := metrics.NewTable("size", "cost_constant", "cost_realistic", "cost_stepped")
	for i, size := range h.Scale.GrowthCheckpoints {
		tab.AddRow(size,
			results[names[0]][i].AvgSearchCost,
			results[names[1]][i].AvgSearchCost,
			results[names[2]][i].AvgSearchCost)
	}
	return h.emit("fig1c", tab)
}

// churnFigure builds networks at each churn size, then measures at 0%, 10%
// and 33% cumulative crashes (killing is exchangeable, so killing 10% and
// topping up to 33% equals killing 33% outright).
func (h *Harness) churnFigure(name string, caps degreedist.Distribution) error {
	tab := metrics.NewTable("size", "cost_nofault", "cost_10pct", "cost_33pct", "probes_33pct", "backtracks_33pct")
	for _, size := range h.Scale.ChurnSizes {
		h.logf("%s: building n=%d", name, size)
		s, err := h.buildAt(size, sim.SystemOscar, caps, nil)
		if err != nil {
			return err
		}
		healthy := s.Measure(false)
		s.Churn(0.10)
		at10 := s.Measure(true)
		// Top up to 33% of the original population.
		remaining := float64(s.Net().AliveCount())
		extra := (0.33 - 0.10) * float64(size) / remaining
		s.Churn(extra)
		at33 := s.Measure(true)
		tab.AddRow(size, healthy.AvgSearchCost, at10.AvgSearchCost, at33.AvgSearchCost,
			at33.AvgProbes, at33.AvgBacktracks)
	}
	return h.emit(name, tab)
}

// Fig2a prints search cost under churn with constant caps.
func (h *Harness) Fig2a() error {
	h.section("Fig 2(a): churn, constant in-degree distribution (Gnutella keys)",
		"network remains navigable; cost ordering no-fault < 10% < 33%, all curves flat-ish in size")
	return h.churnFigure("fig2a", degreedist.Constant(27))
}

// Fig2b prints search cost under churn with the realistic caps.
func (h *Harness) Fig2b() error {
	h.section("Fig 2(b): churn, \"realistic\" in-degree distribution (Gnutella keys)",
		"same shape as Fig 2(a): heterogeneity does not hurt churn resilience")
	return h.churnFigure("fig2b", degreedist.PaperRealistic())
}

// Volume prints the degree-volume comparison (in-text table T1).
func (h *Harness) Volume() error {
	h.section(fmt.Sprintf("T1: exploited degree volume at n=%d, constant caps", h.Scale.Target),
		"Oscar ≈85% vs Mercury ≈61%")
	tab := metrics.NewTable("system", "volume", "avg_cost", "links_made/peer")
	for _, system := range []sim.System{sim.SystemOscar, sim.SystemMercury} {
		h.logf("volume: building %s", system)
		s, err := h.buildAt(h.Scale.Target, system, degreedist.Constant(27), nil)
		if err != nil {
			return err
		}
		m := s.Measure(false)
		tab.AddRow(system.String(), m.DegreeVolume, m.AvgSearchCost, m.AvgLinksMade)
	}
	return h.emit("volume", tab)
}

// Homog prints the homogeneous-caps search-cost comparison (context from
// [8]: Oscar outperforms Mercury on skewed keys; Kleinberg is the
// global-knowledge reference).
func (h *Harness) Homog() error {
	h.section("X1: homogeneous caps, Gnutella keys: Oscar vs Mercury vs Kleinberg",
		"Oscar ≈ Kleinberg reference; Mercury worse on skewed keys")
	type row struct {
		name string
		ms   []sim.Measurement
	}
	var rows []row
	for _, system := range []sim.System{sim.SystemOscar, sim.SystemMercury, sim.SystemKleinberg} {
		h.logf("homog: growth run %s", system)
		ms, err := h.growthRun(system, degreedist.Constant(27), nil)
		if err != nil {
			return err
		}
		rows = append(rows, row{system.String(), ms})
	}
	tab := metrics.NewTable("size", "cost_oscar", "cost_mercury", "cost_kleinberg")
	for i, size := range h.Scale.GrowthCheckpoints {
		tab.AddRow(size, rows[0].ms[i].AvgSearchCost, rows[1].ms[i].AvgSearchCost, rows[2].ms[i].AvgSearchCost)
	}
	return h.emit("homog", tab)
}

// AblationP2C compares the power-of-two-choices rule on and off.
func (h *Harness) AblationP2C() error {
	h.section("A1: power-of-two-choices ablation (constant caps)",
		"p2c flattens the load curve; without it the volume drops and spread widens")
	tab := metrics.NewTable("p2c", "volume", "load_p10", "load_p90", "load_std", "avg_cost")
	for _, p2c := range []bool{true, false} {
		s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, degreedist.Constant(27), func(cfg *sim.Config) {
			cfg.Oscar.PowerOfTwo = p2c
		})
		if err != nil {
			return err
		}
		m := s.Measure(false)
		sum := metrics.Summarize(m.RelativeLoads)
		tab.AddRow(p2c, m.DegreeVolume,
			metrics.Percentile(m.RelativeLoads, 0.10),
			metrics.Percentile(m.RelativeLoads, 0.90),
			sum.Std, m.AvgSearchCost)
	}
	return h.emit("ablation-p2c", tab)
}

// AblationSamples sweeps the per-median sample count.
func (h *Harness) AblationSamples() error {
	h.section("A2: sample-size sweep (samples per median estimate)",
		"\"very good results in practice even with very low sample sizes\" — cost plateaus quickly")
	tab := metrics.NewTable("samples", "avg_cost", "p90_cost", "volume", "sample_msgs/peer")
	for _, samples := range []int{4, 8, 16, 32} {
		s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, degreedist.Constant(27), func(cfg *sim.Config) {
			cfg.Oscar.Sample.Samples = samples
		})
		if err != nil {
			return err
		}
		ws := s.RewireAll() // rewire once more to measure steady-state sampling cost
		m := s.Measure(false)
		tab.AddRow(samples, m.AvgSearchCost, m.Search.P90, m.DegreeVolume,
			float64(ws.SampleCost)/float64(h.Scale.Target))
	}
	return h.emit("ablation-samples", tab)
}

// AblationOracle compares sampled medians against exact global-knowledge
// medians.
func (h *Harness) AblationOracle() error {
	h.section("A3: sampled vs oracle partitions",
		"sampled construction is within a small factor of the exact-median oracle")
	tab := metrics.NewTable("partitions", "avg_cost", "p90_cost", "volume", "levels")
	for _, oracle := range []bool{false, true} {
		s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, degreedist.Constant(27), func(cfg *sim.Config) {
			cfg.Oscar.Oracle = oracle
		})
		if err != nil {
			return err
		}
		m := s.Measure(false)
		name := "sampled"
		if oracle {
			name = "oracle"
		}
		tab.AddRow(name, m.AvgSearchCost, m.Search.P90, m.DegreeVolume, m.AvgLevels)
	}
	return h.emit("ablation-oracle", tab)
}
