package simsnapshot

import (
	"bytes"
	"strings"
	"testing"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/routing"
	"github.com/oscar-overlay/oscar/internal/sim"
)

// buildNetwork grows a small overlay with some churn for realistic state.
func buildNetwork(t *testing.T) *sim.Sim {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.TargetSize = 300
	cfg.Checkpoints = []int{300}
	cfg.Keys = keydist.GnutellaLike()
	cfg.Degrees = degreedist.PaperStepped()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.GrowTo(300)
	s.RewireAll()
	s.Churn(0.1) // leaves stale links in the snapshot
	return s
}

func TestRoundTrip(t *testing.T) {
	s := buildNetwork(t)
	snap := Capture(s.Net(), "test")

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Label != "test" || len(loaded.Nodes) != s.Net().Len() {
		t.Fatalf("loaded %d nodes, label %q", len(loaded.Nodes), loaded.Label)
	}

	net, rg, err := Restore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if net.AliveCount() != s.Net().AliveCount() {
		t.Errorf("alive %d, want %d", net.AliveCount(), s.Net().AliveCount())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := rg.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Topology identical: every alive peer's key, caps and out-links match.
	for id := 0; id < s.Net().Len(); id++ {
		orig := s.Net().Node(graph.NodeID(id))
		rest := net.Node(graph.NodeID(id))
		if orig.Key != rest.Key || orig.Alive != rest.Alive || orig.MaxIn != rest.MaxIn {
			t.Fatalf("node %d differs after restore", id)
		}
		if orig.Alive && len(orig.Out) != len(rest.Out) {
			t.Fatalf("node %d out-degree %d vs %d", id, len(orig.Out), len(rest.Out))
		}
	}
}

func TestRestoredNetworkRoutes(t *testing.T) {
	s := buildNetwork(t)
	var buf bytes.Buffer
	if err := Capture(s.Net(), "").Write(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net, rg, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.Derive(5, "snapshot-queries")
	for i := 0; i < 100; i++ {
		from := rg.RandomAlive(qr)
		target := net.Node(rg.RandomAlive(qr)).Key
		res := routing.GreedyBacktrack(net, rg, from, target)
		if !res.Found {
			t.Fatal("restored network cannot route")
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version": 99, "nodes": []}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestRestoreRejectsNonDenseIDs(t *testing.T) {
	snap := &Snapshot{Version: FormatVersion, Nodes: []NodeRecord{{ID: 5, Alive: true}}}
	if _, _, err := Restore(snap); err == nil {
		t.Error("non-dense ids accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := buildNetwork(t)
	var a, b bytes.Buffer
	if err := Capture(s.Net(), "x").Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := Capture(s.Net(), "x").Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("capturing the same network twice differs")
	}
}
