// Package p2p is the live (message-passing) implementation of the Oscar
// node: the same algorithms as the sequential simulator — Chord-style ring
// maintenance, restricted-walk median sampling, partition-based long-range
// link acquisition with in-degree admission — expressed as RPCs over a
// transport.Transport, so a cluster can run on in-memory channels or real
// TCP sockets.
//
// The simulator (internal/sim) is the tool for 10000-peer experiments; this
// package is the deployment path and the proof that the algorithms need
// nothing beyond per-node local state plus the protocol ops.
package p2p

import (
	"math/rand"
	"sync"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// Config parameterises one node.
type Config struct {
	// Key is the node's position on the identifier circle.
	Key keyspace.Key
	// MaxIn and MaxOut are the link budgets (ρmax).
	MaxIn, MaxOut int
	// Samples and WalkSteps tune median estimation (defaults 12 and 8).
	Samples, WalkSteps int
	// MaxLevels bounds the partition recursion (default 48).
	MaxLevels int
	// PickSteps is the walk length for in-partition candidate draws
	// (default 10).
	PickSteps int
	// DisablePowerOfTwo turns off the two-choices in-degree balancing
	// (enabled by default).
	DisablePowerOfTwo bool
	// Seed drives the node's local randomness.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.MaxIn == 0 {
		c.MaxIn = 27
	}
	if c.MaxOut == 0 {
		c.MaxOut = 27
	}
	if c.Samples == 0 {
		c.Samples = 12
	}
	if c.WalkSteps == 0 {
		c.WalkSteps = 8
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 48
	}
	if c.PickSteps == 0 {
		c.PickSteps = 10
	}
}

// lockedRand guards a rand.Rand so the maintenance loop, parallel RPC
// fanouts, and user-facing calls can draw concurrently (rand.Rand itself is
// not goroutine-safe).
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

func (l *lockedRand) Intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Intn(n)
}

// Node is one live overlay peer.
type Node struct {
	cfg  Config
	tr   transport.Transport
	self transport.PeerRef

	mu    sync.Mutex
	succ  transport.PeerRef
	pred  transport.PeerRef
	out   []transport.PeerRef
	in    map[transport.Addr]keyspace.Key
	store storage.Store
	down  bool

	rnd *lockedRand
}

// NewNode creates a node on the given transport and starts serving its
// protocol handler. The node starts as a one-peer ring (succ = pred = self);
// call Join to enter an existing overlay.
func NewNode(tr transport.Transport, cfg Config) *Node {
	cfg.fillDefaults()
	n := &Node{
		cfg:  cfg,
		tr:   tr,
		self: transport.PeerRef{Addr: tr.Addr(), Key: cfg.Key},
		in:   make(map[transport.Addr]keyspace.Key),
		rnd:  &lockedRand{r: rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Key)))},
	}
	n.succ, n.pred = n.self, n.self
	tr.Serve(n.handle)
	return n
}

// Self returns the node's own peer reference.
func (n *Node) Self() transport.PeerRef { return n.self }

// Succ returns the current successor pointer.
func (n *Node) Succ() transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succ
}

// Pred returns the current predecessor pointer.
func (n *Node) Pred() transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// OutLinks returns a snapshot of the long-range out-links.
func (n *Node) OutLinks() []transport.PeerRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]transport.PeerRef(nil), n.out...)
}

// InDegree returns the number of registered in-links.
func (n *Node) InDegree() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.in)
}

// StoredItems returns the number of items in the local shard.
func (n *Node) StoredItems() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Len()
}

// Close takes the node off the network (a crash: no graceful handover).
func (n *Node) Close() error {
	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
	return n.tr.Close()
}

// handle dispatches one incoming request. It runs on transport goroutines.
func (n *Node) handle(req *transport.Request) *transport.Response {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return &transport.Response{OK: false, Err: "node down"}
	}
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{OK: true, Peer: n.self}

	case transport.OpInfo:
		return &transport.Response{
			OK: true, Peer: n.self,
			MaxIn: n.cfg.MaxIn, MaxOut: n.cfg.MaxOut, InDeg: len(n.in),
		}

	case transport.OpGetSucc:
		return &transport.Response{OK: true, Peer: n.succ}

	case transport.OpGetPred:
		return &transport.Response{OK: true, Peer: n.pred}

	case transport.OpNotify:
		// A peer announces itself; adopt it as pred and/or succ if it sits
		// between the current pointers and us (Chord notify, both sides).
		from := req.From
		if from.Addr != n.self.Addr {
			if n.pred.Addr == n.self.Addr || from.Key.Between(n.pred.Key, n.self.Key) ||
				(from.Key == n.self.Key && from.Addr != n.pred.Addr && n.pred.Addr == n.self.Addr) {
				n.pred = from
			}
			if n.succ.Addr == n.self.Addr || from.Key.Between(n.self.Key, n.succ.Key) {
				n.succ = from
			}
		}
		return &transport.Response{OK: true, Peer: n.succ}

	case transport.OpNeighbors:
		return n.neighborsLocked(req.Range)

	case transport.OpLink:
		if _, dup := n.in[req.From.Addr]; dup {
			return &transport.Response{OK: true} // idempotent
		}
		if len(n.in) >= n.cfg.MaxIn {
			return &transport.Response{OK: false, Err: "refused: in-degree cap"}
		}
		n.in[req.From.Addr] = req.From.Key
		return &transport.Response{OK: true}

	case transport.OpUnlink:
		delete(n.in, req.From.Addr)
		return &transport.Response{OK: true}

	case transport.OpFindOwner:
		return n.findOwnerLocked(req.Key, req.Exclude)

	case transport.OpPut:
		replaced := n.store.Put(req.Key, req.Value)
		return &transport.Response{OK: true, Found: replaced}

	case transport.OpGet:
		v, found := n.store.Get(req.Key)
		return &transport.Response{OK: true, Value: v, Found: found}

	case transport.OpDelete:
		existed := n.store.Delete(req.Key)
		return &transport.Response{OK: true, Found: existed}

	case transport.OpRangeScan:
		var items []storage.Item
		n.store.Scan(req.Range, func(it storage.Item) bool {
			if req.Limit > 0 && len(items) >= req.Limit {
				return false
			}
			items = append(items, it)
			return true
		})
		return &transport.Response{OK: true, Items: items, Peer: n.succ}

	case transport.OpMigrate:
		// The joining predecessor takes over its arc.
		items := n.store.ExtractRange(req.Range)
		return &transport.Response{OK: true, Items: items}

	default:
		return &transport.Response{OK: false, Err: "unknown op"}
	}
}

// neighborsLocked lists this node's neighbours (ring pointers, out-links,
// in-links) whose keys lie in rg, as a multiset like the simulator's walker
// (symmetric multiplicities keep the MH walk uniform).
func (n *Node) neighborsLocked(rg keyspace.Range) *transport.Response {
	var peers []transport.PeerRef
	consider := func(ref transport.PeerRef) {
		if ref.Addr == n.self.Addr || ref.Addr == "" {
			return
		}
		if rg.Contains(ref.Key) {
			peers = append(peers, ref)
		}
	}
	consider(n.succ)
	consider(n.pred)
	for _, ref := range n.out {
		consider(ref)
	}
	for addr, key := range n.in {
		consider(transport.PeerRef{Addr: addr, Key: key})
	}
	return &transport.Response{OK: true, Peers: peers, Degree: len(peers), Peer: n.self}
}

// findOwnerLocked answers one iterative routing step: if this node owns the
// key, Found is true; otherwise Peer is the best non-overshooting next hop
// not in the query's exclude set. With every useful neighbour excluded it
// reports no route (OK=false) and the querier backtracks.
func (n *Node) findOwnerLocked(key keyspace.Key, exclude []transport.Addr) *transport.Response {
	if key.BetweenIncl(n.pred.Key, n.self.Key) || n.succ.Addr == n.self.Addr {
		return &transport.Response{OK: true, Found: true, Peer: n.self}
	}
	excluded := func(a transport.Addr) bool {
		for _, x := range exclude {
			if x == a {
				return true
			}
		}
		return false
	}
	// The successor owns the key when it lies in (self, succ].
	if key.BetweenIncl(n.self.Key, n.succ.Key) {
		if excluded(n.succ.Addr) {
			return &transport.Response{OK: false, Err: "no route"}
		}
		return &transport.Response{OK: true, Found: false, Peer: n.succ}
	}
	toTarget := n.self.Key.Distance(key)
	var best transport.PeerRef
	bestProgress := uint64(0)
	if !excluded(n.succ.Addr) {
		best = n.succ
		if d := n.self.Key.Distance(n.succ.Key); d <= toTarget {
			bestProgress = d
		}
	}
	for _, ref := range n.out {
		if excluded(ref.Addr) {
			continue
		}
		d := n.self.Key.Distance(ref.Key)
		if d == 0 || d > toTarget {
			continue
		}
		if d > bestProgress || best.Addr == "" {
			best, bestProgress = ref, d
		}
	}
	if best.Addr == "" {
		return &transport.Response{OK: false, Err: "no route"}
	}
	return &transport.Response{OK: true, Found: false, Peer: best}
}
