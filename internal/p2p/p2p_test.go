package p2p

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// expectedOwner computes the true owner of key among the given nodes.
func expectedOwner(nodes []*Node, key keyspace.Key) transport.PeerRef {
	type ref struct {
		key  keyspace.Key
		addr transport.Addr
	}
	var alive []ref
	for _, n := range nodes {
		if !n.isDown() {
			alive = append(alive, ref{n.Self().Key, n.Self().Addr})
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].key < alive[j].key })
	for _, r := range alive {
		if r.key >= key {
			return transport.PeerRef{Addr: r.addr, Key: r.key}
		}
	}
	return transport.PeerRef{Addr: alive[0].addr, Key: alive[0].key} // wrap
}

func newTestCluster(t *testing.T, size int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Size: size, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSingleNode(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Nodes[0]
	if n.Succ().Addr != n.Self().Addr || n.Pred().Addr != n.Self().Addr {
		t.Error("singleton must point at itself")
	}
	owner, cost, err := n.Lookup(12345)
	if err != nil {
		t.Fatal(err)
	}
	if owner.Addr != n.Self().Addr || cost != 0 {
		t.Errorf("owner=%v cost=%d", owner, cost)
	}
}

func TestRingFormation(t *testing.T) {
	c := newTestCluster(t, 24)
	// Walk successors from node 0: must visit all 24 nodes in key order.
	start := c.Nodes[0].Self()
	visited := map[transport.Addr]bool{start.Addr: true}
	cur := c.Nodes[0].Succ()
	var keys []keyspace.Key
	for cur.Addr != start.Addr {
		if visited[cur.Addr] {
			t.Fatalf("ring short-circuits at %s after %d nodes", cur.Addr, len(visited))
		}
		visited[cur.Addr] = true
		keys = append(keys, cur.Key)
		resp, err := c.Nodes[0].tr.Call(cur.Addr, &transport.Request{Op: transport.OpGetSucc})
		if err != nil || !resp.OK {
			t.Fatalf("get_succ %s: %v", cur.Addr, err)
		}
		cur = resp.Peer
	}
	if len(visited) != 24 {
		t.Fatalf("ring covers %d of 24 nodes", len(visited))
	}
	// Keys along the walk from start wrap exactly once: the sequence of
	// clockwise distances from start must be increasing.
	for i := 1; i < len(keys); i++ {
		if start.Key.Distance(keys[i-1]) >= start.Key.Distance(keys[i]) {
			t.Fatal("ring order broken")
		}
	}
}

func TestLookupCorrectness(t *testing.T) {
	c := newTestCluster(t, 32)
	for i := 0; i < 100; i++ {
		key := keyspace.FromFloat(float64(i) / 100)
		want := expectedOwner(c.Nodes, key)
		got, _, err := c.Nodes[i%len(c.Nodes)].Lookup(key)
		if err != nil {
			t.Fatalf("lookup %v: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("lookup %v: owner %s (key %v), want %s (key %v)",
				key, got.Addr, got.Key, want.Addr, want.Key)
		}
	}
}

func TestRewireEstablishesLinks(t *testing.T) {
	c := newTestCluster(t, 40)
	total := 0
	for _, n := range c.Nodes {
		links := n.OutLinks()
		total += len(links)
		for _, ref := range links {
			if ref.Addr == n.Self().Addr {
				t.Error("self-link")
			}
		}
	}
	if total < 40*4 {
		t.Errorf("only %d long-range links across the cluster", total)
	}
	// In-degree caps respected.
	for _, n := range c.Nodes {
		if n.InDegree() > n.cfg.MaxIn {
			t.Errorf("node exceeds in-cap: %d > %d", n.InDegree(), n.cfg.MaxIn)
		}
	}
}

func TestPutGetAcrossCluster(t *testing.T) {
	c := newTestCluster(t, 24)
	for i := 0; i < 50; i++ {
		key := keyspace.FromFloat(float64(i) / 50)
		val := []byte(fmt.Sprintf("v%d", i))
		if _, err := c.Nodes[i%24].Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, found, _, err := c.Nodes[(i+7)%24].Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(got, val) {
			t.Fatalf("get %v from another node = %q, %v", key, got, found)
		}
	}
}

func TestRangeQueryAcrossShards(t *testing.T) {
	c := newTestCluster(t, 16)
	for i := 0; i < 40; i++ {
		if _, err := c.Nodes[0].Put(keyspace.FromFloat(float64(i)/40), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	items, _, err := c.Nodes[5].RangeQuery(keyspace.FromFloat(0.25), keyspace.FromFloat(0.75), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 20 { // fractions 10/40 .. 29/40
		t.Fatalf("range returned %d items, want 20", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatal("range results out of order")
		}
	}
}

func TestJoinMigratesItems(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Size: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys []keyspace.Key
	for i := 0; i < 60; i++ {
		k := keyspace.FromFloat(float64(i) / 60)
		keys = append(keys, k)
		if _, err := c.Nodes[0].Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A new node joins; items in its arc must move to it and stay readable.
	newbie := NewNode(c.Fabric.Endpoint(), Config{Key: keyspace.FromFloat(0.5), MaxIn: 16, MaxOut: 16, Seed: 99})
	if err := newbie.Join(c.Nodes[0].Self().Addr); err != nil {
		t.Fatal(err)
	}
	c.Nodes = append(c.Nodes, newbie)
	c.StabilizeAll()
	for i, k := range keys {
		got, found, _, err := c.Nodes[2].Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || got[0] != byte(i) {
			t.Fatalf("item %d lost after join", i)
		}
	}
	if newbie.StoredItems() == 0 {
		t.Error("joining node received no items despite owning an arc")
	}
}

func TestCrashAndHeal(t *testing.T) {
	c := newTestCluster(t, 24)
	// Kill a third of the nodes (not node 0, our query entry point).
	killed := 0
	for i := 1; i < len(c.Nodes) && killed < 8; i += 3 {
		_ = c.Nodes[i].Close()
		killed++
	}
	// A few stabilisation rounds heal the ring.
	for round := 0; round < 6; round++ {
		c.StabilizeAll()
	}
	for i := 0; i < 50; i++ {
		key := keyspace.FromFloat(float64(i) / 50)
		want := expectedOwner(c.Nodes, key)
		got, _, err := c.Nodes[0].Lookup(key)
		if err != nil {
			t.Fatalf("lookup %v after churn: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("lookup %v: owner %s, want %s", key, got.Addr, want.Addr)
		}
	}
}

func TestClusterOverTCP(t *testing.T) {
	// A small live cluster on loopback sockets: overlay formation, data
	// operations and a crash, all over real TCP.
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNode(ep, Config{
			Key:    keyspace.FromFloat(float64(i)/size + 0.01),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if i > 0 {
			if err := n.Join(nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(); err != nil {
			t.Fatal(err)
		}
	}
	key := keyspace.FromFloat(0.42)
	if _, err := nodes[3].Put(key, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	got, found, _, err := nodes[6].Get(key)
	if err != nil || !found || string(got) != "over-tcp" {
		t.Fatalf("tcp get = %q %v %v", got, found, err)
	}
	// Crash one node; the ring heals and lookups still succeed.
	_ = nodes[5].Close()
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			if !n.isDown() {
				n.Stabilize()
			}
		}
	}
	if _, _, err := nodes[1].Lookup(keyspace.FromFloat(0.9)); err != nil {
		t.Fatalf("lookup after tcp crash: %v", err)
	}
}
