package bench

import (
	"fmt"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/metrics"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/routing"
	"github.com/oscar-overlay/oscar/internal/sim"
)

// AblationRouting compares the clockwise non-overshooting router against the
// bidirectional strict-improvement router, healthy and at 33% churn.
func (h *Harness) AblationRouting() error {
	h.section("A4: routing-discipline ablation (clockwise vs bidirectional)",
		"bidirectional shortens paths slightly; with an instantly-stitched ring neither router ever backtracks (probes only)")
	s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, degreedist.Constant(27), nil)
	if err != nil {
		return err
	}
	tab := metrics.NewTable("router", "churn", "avg_cost", "p90", "probes/query", "backtracks/query", "failed")
	measure := func(name string, churned bool, route func() routing.Result) {
		queries := h.Scale.Target
		if queries > 4000 {
			queries = 4000
		}
		var costs []float64
		var probes, backtracks, failed int
		for i := 0; i < queries; i++ {
			res := route()
			if !res.Found {
				failed++
				continue
			}
			costs = append(costs, float64(res.Cost()))
			probes += res.Probes
			backtracks += res.Backtracks
		}
		sum := metrics.Summarize(costs)
		churnLabel := "none"
		if churned {
			churnLabel = "33%"
		}
		tab.AddRow(name, churnLabel, sum.Mean, sum.P90,
			float64(probes)/float64(queries), float64(backtracks)/float64(queries), failed)
	}

	qr := rng.Derive(h.Seed, "ablation-routing")
	run := func(churned bool) {
		measure("clockwise", churned, func() routing.Result {
			from := s.Ring().RandomAlive(qr)
			target := s.Net().Node(s.Ring().RandomAlive(qr)).Key
			if churned {
				return routing.GreedyBacktrack(s.Net(), s.Ring(), from, target)
			}
			return routing.Greedy(s.Net(), s.Ring(), from, target)
		})
		measure("bidirectional", churned, func() routing.Result {
			from := s.Ring().RandomAlive(qr)
			target := s.Net().Node(s.Ring().RandomAlive(qr)).Key
			return routing.GreedyBidirectional(s.Net(), s.Ring(), from, target)
		})
	}
	run(false)
	s.Churn(0.33)
	run(true)
	return h.emit("ablation-routing", tab)
}

// AccessSkew measures per-peer forwarding (transit) load under uniform vs
// Zipf-skewed target popularity — the "skewed access loads" of the paper's
// introduction, which consume disproportionate bandwidth on the hot range's
// owners.
func (h *Harness) AccessSkew() error {
	h.section("A5: access-skew workload (per-peer forwarding load)",
		"randomized links keep transit load flat under uniform access; a Zipf hot range concentrates load on the owners' neighbourhood, bounded by the fan-in of their partitions")
	s, err := h.buildAt(h.Scale.Target, sim.SystemOscar, degreedist.Constant(27), func(cfg *sim.Config) {
		cfg.QueriesPerMeasure = 4 * h.Scale.Target // denser sampling for tail percentiles
	})
	if err != nil {
		return err
	}
	tab := metrics.NewTable("target_popularity", "avg_cost", "transit_p50", "transit_p90", "transit_p99", "transit_max")
	for _, skew := range []float64{0, 0.8, 1.2} {
		m := s.MeasureLoad(false, skew)
		name := "uniform"
		if skew > 0 {
			name = fmt.Sprintf("zipf(%.1f)", skew)
		}
		tab.AddRow(name, m.AvgSearchCost, m.Transit.P50, m.Transit.P90, m.Transit.P99, m.Transit.Max)
	}
	return h.emit("access-skew", tab)
}
