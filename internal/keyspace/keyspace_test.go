package keyspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceBasics(t *testing.T) {
	cases := []struct {
		from, to Key
		want     uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, math.MaxUint64}, // all the way around
		{10, 5, math.MaxUint64 - 4},
		{MaxKey, 0, 1},
		{MaxKey, MaxKey, 0},
	}
	for _, c := range cases {
		if got := c.from.Distance(c.to); got != c.want {
			t.Errorf("Distance(%v,%v) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestCircularDistanceSymmetric(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Key(a), Key(b)
		return x.CircularDistance(y) == y.CircularDistance(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCircularDistanceIsShorterArc(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Key(a), Key(b)
		d := x.CircularDistance(y)
		return d <= x.Distance(y) && d <= y.Distance(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		k, from, to Key
		want        bool
	}{
		{5, 0, 10, true},
		{0, 0, 10, false},  // exclusive at from
		{10, 0, 10, false}, // exclusive at to
		{15, 0, 10, false},
		{MaxKey, 100, 5, true}, // wrapping arc
		{3, 100, 5, true},
		{5, 100, 5, false},
		{50, 100, 5, false},
		{7, 7, 7, false}, // full circle minus the point itself
		{8, 7, 7, true},
	}
	for _, c := range cases {
		if got := c.k.Between(c.from, c.to); got != c.want {
			t.Errorf("(%v).Between(%v,%v) = %v, want %v", c.k, c.from, c.to, got, c.want)
		}
	}
}

func TestBetweenInclOwnership(t *testing.T) {
	// Under the successor convention a node s owns (pred, s]. Verify the
	// boundary cases used by routing.
	pred, succ := Key(100), Key(200)
	if !succ.BetweenIncl(pred, succ) {
		t.Error("successor must own its own key")
	}
	if pred.BetweenIncl(pred, succ) {
		t.Error("predecessor key belongs to the predecessor, not the successor")
	}
	if !Key(150).BetweenIncl(pred, succ) {
		t.Error("interior key must be owned")
	}
	if Key(250).BetweenIncl(pred, succ) {
		t.Error("exterior key must not be owned")
	}
}

func TestBetweenConsistentWithDistances(t *testing.T) {
	f := func(k, from, to uint64) bool {
		kk, f2, t2 := Key(k), Key(from), Key(to)
		got := kk.Between(f2, t2)
		// Walking clockwise from `from`, k is strictly inside iff its
		// clockwise offset is positive and smaller than to's offset.
		var want bool
		if f2 == t2 {
			want = kk != f2
		} else {
			off := f2.Distance(kk)
			want = off > 0 && off < f2.Distance(t2)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		k := FromFloat(f)
		if got := k.Float(); math.Abs(got-f) > 1e-12 {
			t.Errorf("Float(FromFloat(%g)) = %g", f, got)
		}
	}
}

func TestFromFloatWraps(t *testing.T) {
	if FromFloat(1.25) != FromFloat(0.25) {
		t.Error("FromFloat must wrap fractions outside [0,1)")
	}
	if FromFloat(-0.75) != FromFloat(0.25) {
		t.Error("FromFloat must wrap negative fractions")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{100, 200}
	for k, want := range map[Key]bool{
		100: true, 150: true, 199: true, 200: false, 99: false, 0: false,
	} {
		if got := r.Contains(k); got != want {
			t.Errorf("%v.Contains(%v) = %v, want %v", r, k, got, want)
		}
	}
	wrap := Range{MaxKey - 10, 10}
	for k, want := range map[Key]bool{
		MaxKey - 10: true, MaxKey: true, 0: true, 9: true, 10: false, 100: false,
	} {
		if got := wrap.Contains(k); got != want {
			t.Errorf("%v.Contains(%v) = %v, want %v", wrap, k, got, want)
		}
	}
}

func TestFullRange(t *testing.T) {
	full := FullRange()
	if !full.IsFull() {
		t.Fatal("FullRange must report IsFull")
	}
	f := func(k uint64) bool { return full.Contains(Key(k)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if full.Fraction() != 1 {
		t.Errorf("full range fraction = %g", full.Fraction())
	}
}

func TestRangeSize(t *testing.T) {
	if got := (Range{0, 10}).Size(); got != 10 {
		t.Errorf("Size = %d, want 10", got)
	}
	if got := (Range{MaxKey, 1}).Size(); got != 2 {
		t.Errorf("wrapping Size = %d, want 2", got)
	}
}

func TestRangeLerpStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		r := Range{Key(rng.Uint64()), Key(rng.Uint64())}
		if r.Start == r.End {
			continue
		}
		f := rng.Float64()
		if k := r.Lerp(f); !r.Contains(k) {
			t.Fatalf("Lerp(%g) of %v produced %v outside the range", f, r, k)
		}
	}
}

func TestRangeLerpEndpoints(t *testing.T) {
	r := Range{1000, 2000}
	if got := r.Lerp(0); got != 1000 {
		t.Errorf("Lerp(0) = %v, want range start", got)
	}
	if got := r.Lerp(0.5); got != 1500 {
		t.Errorf("Lerp(0.5) = %v, want midpoint", got)
	}
	if got := r.Lerp(1); !r.Contains(got) {
		t.Errorf("Lerp(1) = %v escaped the half-open range", got)
	}
}

func TestMidpoint(t *testing.T) {
	if got := Key(0).Midpoint(10); got != 5 {
		t.Errorf("Midpoint = %v, want 5", got)
	}
	// Wrapping arc: from MaxKey-1 clockwise 4 points to 3; midpoint is 0.
	if got := (MaxKey - 1).Midpoint(3); got != 0 {
		t.Errorf("wrapping Midpoint = %v, want 0", got)
	}
}

func TestMidpointProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Key(a), Key(b)
		m := x.Midpoint(y)
		// The midpoint must not be farther clockwise than the destination.
		return x.Distance(m) <= x.Distance(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
