// oscar-benchjson converts `go test -bench` output on stdin into a JSON
// array on a file (or stdout), so CI can publish benchmark numbers as a
// machine-readable artifact next to the raw text log.
//
// Usage:
//
//	go test -run=NONE -bench=. ./internal/wal/ | oscar-benchjson -o BENCH_durability.json
//
// Each benchmark result line
//
//	BenchmarkWALAppend/policy=always-8   1226   995034 ns/op   128.66 MB/s
//
// becomes one object: {"name": "WALAppend/policy=always", "procs": 8,
// "iterations": 1226, "ns_per_op": 995034, "metrics": {"MB/s": 128.66}}.
// Non-benchmark lines are ignored, so piping the whole `go test` output
// through is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "oscar-benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "oscar-benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "oscar-benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one `go test -bench` result line. The format is
// stable: name, iteration count, then metric pairs of (value, unit).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
