package graph

import (
	"errors"
	"testing"
)

func TestAddAndAccounting(t *testing.T) {
	g := New()
	a := g.Add(100, 2, 3)
	b := g.Add(200, 2, 3)
	if a.ID == b.ID {
		t.Fatal("ids must be unique")
	}
	if g.Len() != 2 || g.AliveCount() != 2 {
		t.Fatalf("Len=%d Alive=%d", g.Len(), g.AliveCount())
	}
	if err := g.AddLink(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if b.InDeg() != 1 || !a.HasOut(b.ID) {
		t.Error("link not recorded")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAddLinkRejections(t *testing.T) {
	g := New()
	a := g.Add(1, 1, 5)
	b := g.Add(2, 1, 5)
	c := g.Add(3, 1, 5)
	if err := g.AddLink(a.ID, a.ID); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self link: %v", err)
	}
	if err := g.AddLink(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(a.ID, b.ID); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	// b is at its cap (MaxIn=1): c must be refused.
	if err := g.AddLink(c.ID, b.ID); !errors.Is(err, ErrRefused) {
		t.Errorf("refusal: %v", err)
	}
	g.Kill(c.ID)
	if err := g.AddLink(a.ID, c.ID); !errors.Is(err, ErrDead) {
		t.Errorf("dead target: %v", err)
	}
	if err := g.AddLink(c.ID, a.ID); !errors.Is(err, ErrDead) {
		t.Errorf("dead source: %v", err)
	}
}

func TestInLoad(t *testing.T) {
	g := New()
	a := g.Add(1, 4, 0)
	b := g.Add(2, 0, 4)
	if a.InLoad() != 0 {
		t.Error("fresh node should have zero load")
	}
	if err := g.AddLink(b.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if a.InLoad() != 0.25 {
		t.Errorf("load = %g", a.InLoad())
	}
	if b.InLoad() != 1 {
		t.Error("MaxIn=0 peer must report full load")
	}
}

func TestDropLinks(t *testing.T) {
	g := New()
	a := g.Add(1, 5, 5)
	b := g.Add(2, 5, 5)
	c := g.Add(3, 5, 5)
	mustLink(t, g, a.ID, b.ID)
	mustLink(t, g, a.ID, c.ID)
	g.DropLinks(a.ID)
	if len(a.Out) != 0 || b.InDeg() != 0 || c.InDeg() != 0 {
		t.Error("DropLinks must release in-degree at targets")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestKillReleasesInDegreeAtTargets(t *testing.T) {
	g := New()
	a := g.Add(1, 5, 5)
	b := g.Add(2, 5, 5)
	mustLink(t, g, a.ID, b.ID)
	g.Kill(a.ID)
	if b.InDeg() != 0 {
		t.Error("killing the source must release the target's in-degree")
	}
	if g.AliveCount() != 1 {
		t.Errorf("alive = %d", g.AliveCount())
	}
	g.Kill(a.ID) // idempotent
	if g.AliveCount() != 1 {
		t.Error("double kill must be a no-op")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestKillKeepsStaleLinksToDeadPeer(t *testing.T) {
	g := New()
	a := g.Add(1, 5, 5)
	b := g.Add(2, 5, 5)
	mustLink(t, g, a.ID, b.ID)
	g.Kill(b.ID)
	if !a.HasOut(b.ID) {
		t.Error("links to a dead peer must remain (stale) for the churn model")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Dropping later still keeps accounting consistent.
	g.DropLinks(a.ID)
	if err := g.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestForEachAliveAndIDs(t *testing.T) {
	g := New()
	a := g.Add(1, 1, 1)
	b := g.Add(2, 1, 1)
	g.Add(3, 1, 1)
	g.Kill(b.ID)
	var seen []NodeID
	g.ForEachAlive(func(n *Node) { seen = append(seen, n.ID) })
	if len(seen) != 2 || seen[0] != a.ID {
		t.Errorf("ForEachAlive visited %v", seen)
	}
	ids := g.AliveIDs()
	if len(ids) != 2 {
		t.Errorf("AliveIDs = %v", ids)
	}
}

func TestNodePanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid id must panic")
		}
	}()
	New().Node(3)
}

func mustLink(t *testing.T, g *Network, from, to NodeID) {
	t.Helper()
	if err := g.AddLink(from, to); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", from, to, err)
	}
}
