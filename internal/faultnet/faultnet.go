// Package faultnet injects deterministic, seeded network faults between a
// node and its transport — the harness that turns a perfect fabric into
// the heterogeneous environment the overlay is designed for.
//
// A Network holds the fault model: a default Faults mix, per-link
// (src→dst) overrides, asymmetric partition blocks, and per-node slowness
// multipliers. Network.Wrap turns any transport.Transport — the in-memory
// Fabric endpoint or a TCPEndpoint alike — into an endpoint whose outbound
// calls pass through the model: calls are dropped (ErrUnreachable), shed
// (ErrOverloaded), delayed (latency + jitter, scaled by the slowness of
// both ends), duplicated, or blocked by a partition, each decided
// deterministically from the Network seed, the link, and a per-link call
// counter. The same seed therefore produces the same fault schedule on
// every run — a failing soak replays.
//
// Faults are applied caller-side, before delivery. A dropped or shed call
// never reaches the peer, which keeps the transport's at-most-once
// contract intact: retrying a faulted call can never double-execute an op,
// so non-idempotent ops (migrate) stay safe under injected loss.
// Response loss — the half of packet loss that strands executed work — is
// deliberately out of scope: the crash scenarios already cover it.
//
// The model is mutable at runtime (SetDefault, SetLink, Partition,
// SlowNode, Heal) so a Plan can script phases: degrade, partition, heal,
// assert convergence. All methods are safe for concurrent use.
package faultnet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// Faults is the fault mix applied to calls on one link (an ordered
// src→dst pair). Probabilities are in [0, 1]; the zero value is a perfect
// link.
type Faults struct {
	// Drop is the probability a call is lost before delivery. The caller
	// sees transport.ErrUnreachable; the peer sees nothing.
	Drop float64
	// Overload is the probability a call is shed before delivery with
	// transport.ErrOverloaded — synthetic backpressure, for exercising the
	// overloaded-is-not-dead contract on fabrics that never saturate.
	Overload float64
	// Duplicate is the probability a delivered call is delivered a second
	// time (asynchronously; the first response is returned). Migrate is
	// exempt: it extracts state, so a duplicate would destroy data no real
	// duplicated packet could (TCP dedupes), not reveal a bug.
	Duplicate float64
	// Latency is a fixed delay added to every call on the link, and Jitter
	// a uniform extra in [0, Jitter). Both are scaled by the slowness
	// multipliers of the two ends (SlowNode).
	Latency time.Duration
	Jitter  time.Duration
}

// Stats counts what the network injected since construction. Snapshot via
// Network.Stats.
type Stats struct {
	// Calls is every outbound call that consulted the model.
	Calls int64
	// Dropped, Overloaded, Duplicated and Blocked count the faults
	// injected: lost calls, shed calls, extra deliveries, and calls
	// refused by a partition.
	Dropped    int64
	Overloaded int64
	Duplicated int64
	Blocked    int64
	// Delayed is the total injected latency across all calls.
	Delayed time.Duration
}

type linkKey struct{ src, dst transport.Addr }

// Network is one fault model shared by every endpoint wrapped on it.
type Network struct {
	seed int64

	mu      sync.Mutex
	def     Faults
	links   map[linkKey]Faults
	blocked map[linkKey]struct{}
	slow    map[transport.Addr]float64
	seq     map[linkKey]uint64
	stats   Stats
}

// New builds a fault-free Network. The seed fixes the fault schedule:
// call n on link src→dst makes the same drop/shed/duplicate/jitter
// decisions on every run with the same seed.
func New(seed int64) *Network {
	return &Network{
		seed:    seed,
		links:   make(map[linkKey]Faults),
		blocked: make(map[linkKey]struct{}),
		slow:    make(map[transport.Addr]float64),
		seq:     make(map[linkKey]uint64),
	}
}

// SetDefault replaces the fault mix applied to links without a SetLink
// override. The zero Faults restores perfect delivery.
func (n *Network) SetDefault(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = f
}

// SetLink overrides the fault mix of one directed link.
func (n *Network) SetLink(src, dst transport.Addr, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{src, dst}] = f
}

// ClearLink removes a SetLink override, restoring the default mix.
func (n *Network) ClearLink(src, dst transport.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{src, dst})
}

// Partition blocks every link between the two groups, both directions —
// group a cannot reach group b and vice versa. Blocks accumulate across
// calls; Heal clears them all.
func (n *Network) Partition(a, b []transport.Addr) {
	n.PartitionOneWay(a, b)
	n.PartitionOneWay(b, a)
}

// PartitionOneWay blocks only from→to links — an asymmetric partition:
// `from` nodes cannot reach `to` nodes, while the reverse direction still
// delivers. The signature failure mode of broken NAT and half-dead links.
func (n *Network) PartitionOneWay(from, to []transport.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, src := range from {
		for _, dst := range to {
			n.blocked[linkKey{src, dst}] = struct{}{}
		}
	}
}

// Heal removes every partition block. Fault mixes (SetDefault, SetLink)
// and slowness multipliers are untouched.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[linkKey]struct{})
}

// SlowNode scales all injected delay on links touching addr by mult —
// the per-node heterogeneity knob (a 10x slow node drags every
// conversation it is part of). mult 1 (or <= 0) restores normal speed;
// multipliers of the two ends of a link multiply.
func (n *Network) SlowNode(addr transport.Addr, mult float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if mult <= 0 || mult == 1 {
		delete(n.slow, addr)
		return
	}
	n.slow[addr] = mult
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// verdict is one call's fate under the model.
type verdict struct {
	blocked   bool
	drop      bool
	overload  bool
	duplicate bool
	delay     time.Duration
}

// decide rolls the seeded dice for the next call on src→dst and advances
// the link's counter. Stats are updated here, so a decision is an
// injection even if the caller's context dies during the delay.
func (n *Network) decide(src, dst transport.Addr) verdict {
	if src == dst {
		// A node's calls to itself never cross the network: no faults, no
		// schedule advance, no stats. Without this a lookup — which starts
		// by asking its own node — could "lose" a packet to itself.
		return verdict{}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Calls++
	k := linkKey{src, dst}
	if _, bad := n.blocked[k]; bad {
		n.stats.Blocked++
		return verdict{blocked: true}
	}
	f, ok := n.links[k]
	if !ok {
		f = n.def
	}
	seq := n.seq[k]
	n.seq[k] = seq + 1

	base := linkHash(n.seed, src, dst, seq)
	var v verdict
	if f.Latency > 0 || f.Jitter > 0 {
		d := f.Latency + time.Duration(float64(f.Jitter)*u01(splitmix(base+3)))
		mult := 1.0
		if m, ok := n.slow[src]; ok {
			mult *= m
		}
		if m, ok := n.slow[dst]; ok {
			mult *= m
		}
		v.delay = time.Duration(float64(d) * mult)
		n.stats.Delayed += v.delay
	}
	switch {
	case f.Drop > 0 && u01(splitmix(base)) < f.Drop:
		v.drop = true
		n.stats.Dropped++
	case f.Overload > 0 && u01(splitmix(base+1)) < f.Overload:
		v.overload = true
		n.stats.Overloaded++
	case f.Duplicate > 0 && u01(splitmix(base+2)) < f.Duplicate:
		v.duplicate = true
		n.stats.Duplicated++
	}
	return v
}

// linkHash folds seed, link and call counter into the 64-bit base of the
// call's fault decisions.
func linkHash(seed int64, src, dst transport.Addr, seq uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	return h.Sum64()
}

// splitmix is splitmix64: one cheap, well-mixed draw per fault dimension
// from the shared base.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// u01 maps a 64-bit draw to [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Wrap returns tr with this network's fault model interposed on every
// outbound call. Addr, Serve and Close delegate untouched — inbound
// requests are faulted by the sender's wrapper, not the receiver's.
func (n *Network) Wrap(tr transport.Transport) transport.Transport {
	return &endpoint{net: n, inner: tr}
}

// dupTimeout bounds the asynchronous second delivery of a duplicated
// call; the duplicate's response is discarded either way.
const dupTimeout = 2 * time.Second

type endpoint struct {
	net   *Network
	inner transport.Transport
}

func (e *endpoint) Addr() transport.Addr      { return e.inner.Addr() }
func (e *endpoint) Serve(h transport.Handler) { e.inner.Serve(h) }
func (e *endpoint) Close() error              { return e.inner.Close() }

func (e *endpoint) Call(addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	return e.CallCtx(context.Background(), addr, req)
}

func (e *endpoint) CallCtx(ctx context.Context, addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	v := e.net.decide(e.inner.Addr(), addr)
	if v.delay > 0 {
		t := time.NewTimer(v.delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	switch {
	case v.blocked:
		return nil, fmt.Errorf("faultnet: partitioned %s -> %s: %w", e.inner.Addr(), addr, transport.ErrUnreachable)
	case v.drop:
		return nil, fmt.Errorf("faultnet: dropped %s -> %s: %w", e.inner.Addr(), addr, transport.ErrUnreachable)
	case v.overload:
		return nil, fmt.Errorf("faultnet: shed %s -> %s: %w", e.inner.Addr(), addr, transport.ErrOverloaded)
	}
	resp, err := e.inner.CallCtx(ctx, addr, req)
	if v.duplicate && err == nil && req.Op != transport.OpMigrate {
		dup := *req
		go func() {
			dctx, cancel := context.WithTimeout(context.Background(), dupTimeout)
			defer cancel()
			_, _ = e.inner.CallCtx(dctx, addr, &dup)
		}()
	}
	return resp, err
}
