// Package antientropy is the digest layer of the replication subsystem: a
// Merkle-style summary of a key arc that lets an arc owner and its replicas
// agree on what they hold by exchanging O(1) metadata instead of the arc
// itself, plus the diff planner that turns two summaries into the minimal
// repair (push the missing/stale keys, propagate the missed deletes, drop
// the strays).
//
// The tree is fixed-depth over keyspace sub-ranges: the identifier circle is
// cut into 1<<depth equal buckets by the top bits of the key, and each leaf
// is an XOR set-digest of the per-key state hashes in its bucket. XOR makes
// the digest incrementally maintainable — adding and removing a key are the
// same O(1) toggle — and makes every interior level of the tree the XOR of
// its children, so only the leaves (and the root, for a one-word summary)
// ever need to be materialised or shipped. A leaf vector is depth-8 by
// default: 256 words, two kilobytes on the wire, one frame regardless of
// how many million items the arc holds.
//
// Per-key hashes deliberately exclude timestamps: a tombstone hashes the
// same on every node no matter when each learned of the delete, so two
// stores that agree on *state* (live values and deleted keys) produce equal
// digests even though their tombstone clocks differ.
package antientropy

import (
	"sort"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// DefaultDepth is the tree depth used by the overlay protocol: 1<<8 = 256
// leaf buckets, a 2 KiB leaf vector per digest exchange.
const DefaultDepth = 8

// FNV-1a 64-bit parameters (hash/fnv unrolled: the per-item hash is the
// replication hot path and must not allocate).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// tombSentinel separates the tombstone hash domain from the value domain, so
// a live item whose value happens to encode "deleted" never collides with
// the tombstone of the same key.
const (
	itemSentinel byte = 0x00
	tombSentinel byte = 0x01
)

func fnvKey(h uint64, k keyspace.Key) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ uint64(byte(k>>uint(shift)))) * fnvPrime
	}
	return h
}

// ItemHash digests one live item's state: key plus value. Two stores hold
// the same item exactly when their ItemHashes agree.
func ItemHash(k keyspace.Key, v []byte) uint64 {
	h := fnvKey(fnvOffset, k)
	h = (h ^ uint64(itemSentinel)) * fnvPrime
	for _, b := range v {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// TombHash digests one deleted key's state. It covers the key only — not
// the deletion time — so every node that has applied the delete computes
// the same hash regardless of when it learned of it.
func TombHash(k keyspace.Key) uint64 {
	h := fnvKey(fnvOffset, k)
	h = (h ^ uint64(tombSentinel)) * fnvPrime
	return h
}

// Bucket returns the leaf index of k in a depth-deep tree: the top `depth`
// bits of the key.
func Bucket(depth int, k keyspace.Key) int {
	return int(uint64(k) >> (64 - uint(depth)))
}

// State is one key's replication state as reported during a sync pull: the
// digest of what a store holds for the key, and whether that state is a
// tombstone. It is the wire unit of the key-level diff round.
type State struct {
	Key     keyspace.Key `json:"key"`
	Hash    uint64       `json:"hash"`
	Deleted bool         `json:"deleted,omitempty"`
}

// Tree is the incrementally-maintained digest of one store. The zero value
// is not usable; create with NewTree. Not safe for concurrent use — callers
// guard it with the lock that guards the store it summarises.
type Tree struct {
	depth  int
	leaves []uint64
}

// NewTree returns an empty digest tree with 1<<depth leaf buckets.
func NewTree(depth int) *Tree {
	return &Tree{depth: depth, leaves: make([]uint64, 1<<uint(depth))}
}

// Depth returns the tree depth.
func (t *Tree) Depth() int { return t.depth }

// Apply toggles one key-state hash in k's bucket. XOR is its own inverse:
// call it with a state's hash once to add the state and once more to remove
// it, and with old then new to replace one state with another.
func (t *Tree) Apply(k keyspace.Key, h uint64) {
	t.leaves[Bucket(t.depth, k)] ^= h
}

// Leaves returns a copy of the leaf vector.
func (t *Tree) Leaves() []uint64 {
	return append([]uint64(nil), t.leaves...)
}

// Root folds the leaf vector into the one-word tree root. With an XOR
// set-digest every interior node is the XOR of its children, so the root is
// derivable from the leaves and equal roots mean equal trees with the same
// (overwhelming) probability as equal leaf vectors mean equal buckets.
func (t *Tree) Root() uint64 {
	var r uint64
	for _, l := range t.leaves {
		r ^= l
	}
	return r
}

// DiffLeaves returns the bucket indices where the two leaf vectors differ.
// A short vector reads as zero-padded, so comparing against nil reports
// every non-empty bucket of the other side.
func DiffLeaves(a, b []uint64) []int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var diff []int
	for i := 0; i < n; i++ {
		var va, vb uint64
		if i < len(a) {
			va = a[i]
		}
		if i < len(b) {
			vb = b[i]
		}
		if va != vb {
			diff = append(diff, i)
		}
	}
	return diff
}

// FilterBuckets keeps the states whose keys fall in one of the given leaf
// buckets. The input order is preserved.
func FilterBuckets(states []State, depth int, buckets []int) []State {
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	var out []State
	for _, s := range states {
		if want[Bucket(depth, s.Key)] {
			out = append(out, s)
		}
	}
	return out
}

// Plan is the minimal repair that brings a replica's view of an arc into
// agreement with its owner's: Push lists owner keys the replica is missing
// or holds stale, Tombs lists owner deletes the replica has not applied,
// and Drop lists replica state (stray items or expired tombstones) with no
// owner counterpart at all.
type Plan struct {
	Push  []keyspace.Key
	Tombs []keyspace.Key
	Drop  []keyspace.Key
}

// Empty reports whether the plan requires no repair.
func (p Plan) Empty() bool {
	return len(p.Push) == 0 && len(p.Tombs) == 0 && len(p.Drop) == 0
}

// Size returns the number of keys the plan touches.
func (p Plan) Size() int { return len(p.Push) + len(p.Tombs) + len(p.Drop) }

// Diff computes the repair plan from the owner's authoritative states and
// the states a replica reported for the same key range. Both slices are
// sorted by key in place if they are not already.
func Diff(owner, replica []State) Plan {
	sortStates(owner)
	sortStates(replica)
	var p Plan
	i, j := 0, 0
	for i < len(owner) || j < len(replica) {
		switch {
		case j == len(replica) || (i < len(owner) && owner[i].Key < replica[j].Key):
			// Owner-only state: the replica never saw this key (or missed
			// its delete entirely).
			p = p.addOwner(owner[i])
			i++
		case i == len(owner) || replica[j].Key < owner[i].Key:
			// Replica-only state: nothing at the owner to back it — a stray
			// copy or a tombstone the owner has already collected.
			p.Drop = append(p.Drop, replica[j].Key)
			j++
		default: // same key
			if owner[i].Hash != replica[j].Hash {
				p = p.addOwner(owner[i])
			}
			i++
			j++
		}
	}
	return p
}

func (p Plan) addOwner(s State) Plan {
	if s.Deleted {
		p.Tombs = append(p.Tombs, s.Key)
	} else {
		p.Push = append(p.Push, s.Key)
	}
	return p
}

func sortStates(s []State) {
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Key < s[j].Key }) {
		sort.Slice(s, func(i, j int) bool { return s[i].Key < s[j].Key })
	}
}
