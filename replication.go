package oscar

import "fmt"

// Replication: the paper's data layer is an index, so a crashed peer takes
// its shard with it. PutReplicated stores copies on the owner's ring
// successors, GetReplicated falls back along the same chain, and
// DeleteReplicated propagates removals down it — the standard
// successor-list replication of ring overlays, provided as the bundled
// extension for crash-tolerant reads. The Client facade applies the same
// semantics to every operation when built with WithReplicas, giving the
// simulator and the live runtime one durability contract.
//
// Copies live in separate replica stores, so range queries and join
// migrations only ever see the primary shard. Replication is per-write:
// copies are placed at write time and re-placed on rewrite. A membership
// change between write and read shifts the successor chain by at most the
// number of joins/crashes in between, which the read-side fallback absorbs
// as long as fewer than `replicas` consecutive chain members are lost.

// PutReplicated stores value under key at the key's owner and pushes
// copies to the next replicas-1 alive ring successors. replicas < 1 is
// treated as 1.
func (o *Overlay) PutReplicated(key Key, value []byte, replicas int) (PutResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.putReplicatedLocked(key, value, replicas)
}

func (o *Overlay) putReplicatedLocked(key Key, value []byte, replicas int) (PutResult, error) {
	route := o.lookupLocked(key)
	if !route.Found {
		return PutResult{}, fmt.Errorf("oscar: put %v: routing failed", key)
	}
	return o.putAtLocked(route.Owner, route.Cost(), key, value, replicas), nil
}

// putAtLocked applies a replicated put rooted at an already-resolved owner,
// with the routing cost spent to reach it. The cached-route fast path of
// the Client facade enters here directly, skipping the lookup.
func (o *Overlay) putAtLocked(owner NodeID, cost int, key Key, value []byte, replicas int) PutResult {
	if replicas < 1 {
		replicas = 1
	}
	res := PutResult{Owner: owner, Cost: cost, Acks: 1}
	res.Replaced = o.storeFor(owner).Put(key, value)
	cur := owner
	for i := 1; i < replicas; i++ {
		next := o.sim.Net().Node(cur).Succ
		if next == cur || next == owner {
			break // wrapped around a tiny overlay
		}
		cur = next
		o.replStoreFor(cur).Put(key, value)
		res.Cost++ // one hop along the successor chain per copy
		res.Acks++ // every placed copy is an acknowledged copy
	}
	return res
}

// GetReplicated fetches the value for key, falling back along up to
// replicas-1 ring successors of the owner when the primary misses (for
// example because the peer holding it crashed and a stale-arc neighbour now
// owns the key). Each chain member is checked for a primary item first and
// a replica copy second. The owner's authority is tombstone-scoped,
// exactly as on the live runtime: a miss backed by a tombstone ends the
// read as an authoritative delete, while a recordless miss falls back —
// and a fallback served by a chain member read-repairs the stale owner
// (and re-syncs its chain), counted in the overlay's anti-entropy stats.
func (o *Overlay) GetReplicated(key Key, replicas int) (value []byte, found bool, cost int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, value, found, cost, err = o.getReplicatedLocked(key, replicas)
	return value, found, cost, err
}

func (o *Overlay) getReplicatedLocked(key Key, replicas int) (servedBy NodeID, value []byte, found bool, cost int, err error) {
	route := o.lookupLocked(key)
	if !route.Found {
		return 0, nil, false, route.Cost(), fmt.Errorf("oscar: get %v: routing failed", key)
	}
	servedBy, value, found, cost = o.getAtLocked(route.Owner, route.Cost(), key, replicas)
	return servedBy, value, found, cost, nil
}

// getAtLocked applies a replicated read rooted at an already-resolved
// owner, with the routing cost spent to reach it.
func (o *Overlay) getAtLocked(owner NodeID, cost int, key Key, replicas int) (servedBy NodeID, value []byte, found bool, outCost int) {
	if replicas < 1 {
		replicas = 1
	}
	cur := owner
	ownerStale := false // the owner has no copy and no tombstone
	for i := 0; i < replicas; i++ {
		v, ok, deleted := o.peekLocked(cur, key)
		if ok {
			if i > 0 && ownerStale {
				o.readRepairLocked(owner, cur, replicas)
			}
			return cur, v, true, cost
		}
		if i == 0 {
			if deleted {
				// Tombstoned at the owner: authoritatively deleted — a
				// replica's stale copy must not resurrect it.
				return owner, nil, false, cost
			}
			ownerStale = true
		} else if deleted {
			// A chain tombstone is delete knowledge too: it ends the read
			// before a staler copy further down can resurrect the key,
			// and a recordless owner adopts it via read-repair.
			if ownerStale {
				o.readRepairLocked(owner, cur, replicas)
			}
			return owner, nil, false, cost
		}
		next := o.sim.Net().Node(cur).Succ
		if next == cur || next == owner {
			break
		}
		cur = next
		cost++
	}
	return owner, nil, false, cost
}

// peekLocked checks one peer for key — primary shard first, replica copy
// second — and whether either store remembers the key as deleted.
func (o *Overlay) peekLocked(id NodeID, key Key) (v []byte, found, deleted bool) {
	if st := o.stores[id]; st != nil {
		if v, ok := st.Get(key); ok {
			return v, true, false
		}
		if _, dead := st.Tombstone(key); dead {
			deleted = true
		}
	}
	if st := o.replStores[id]; st != nil {
		if v, ok := st.Get(key); ok {
			return v, true, false
		}
		if _, dead := st.Tombstone(key); dead {
			deleted = true
		}
	}
	return nil, false, deleted
}

// DeleteReplicated removes the item under key at the key's owner and from
// the replica copies on the next replicas-1 ring successors. Existed
// reports whether any copy was removed.
func (o *Overlay) DeleteReplicated(key Key, replicas int) (DeleteResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.deleteReplicatedLocked(key, replicas)
}

func (o *Overlay) deleteReplicatedLocked(key Key, replicas int) (DeleteResult, error) {
	route := o.lookupLocked(key)
	if !route.Found {
		return DeleteResult{}, fmt.Errorf("oscar: delete %v: routing failed", key)
	}
	return o.deleteAtLocked(route.Owner, route.Cost(), key, replicas), nil
}

// deleteAtLocked applies a replicated delete rooted at an already-resolved
// owner, with the routing cost spent to reach it.
func (o *Overlay) deleteAtLocked(owner NodeID, cost int, key Key, replicas int) DeleteResult {
	if replicas < 1 {
		replicas = 1
	}
	res := DeleteResult{Owner: owner, Cost: cost}
	cur := owner
	for i := 0; i < replicas; i++ {
		if st := o.stores[cur]; st != nil && st.Delete(key) {
			res.Existed = true
		}
		if st := o.replStores[cur]; st != nil && st.Delete(key) {
			res.Existed = true
		}
		res.Acks++ // each visited chain member applied the delete
		next := o.sim.Net().Node(cur).Succ
		if next == cur || next == owner {
			break
		}
		cur = next
		res.Cost++
	}
	return res
}
