module github.com/oscar-overlay/oscar

go 1.24
