package transport

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// fullRequest exercises every field of the wire Request, including the
// bulk payloads (Items, Tombs, States) of the replication and anti-entropy
// protocols.
func fullRequest() *Request {
	return &Request{
		Op:    OpReplicate,
		From:  PeerRef{Addr: "10.0.0.7:9999", Key: keyspace.FromFloat(0.17)},
		Key:   keyspace.FromFloat(0.42),
		Range: keyspace.Range{Start: keyspace.FromFloat(0.9), End: keyspace.FromFloat(0.1)},
		Value: []byte("payload \x00\xff bytes"),
		Limit: -3,
		Items: []storage.Item{
			{Key: 1, Value: []byte("a")},
			{Key: keyspace.MaxKey, Value: []byte("")},
			{Key: 42, Value: []byte("zz-top")},
		},
		Tombs:   []storage.Tombstone{{Key: 9, At: -12345}, {Key: 10, At: 1}},
		Drop:    []keyspace.Key{3, keyspace.MaxKey, 0},
		Depth:   8,
		Buckets: []int{0, 255, 1 << 20},
		Values:  true,
		States: []antientropy.State{
			{Key: 5, Hash: 0xdeadbeefcafef00d, Deleted: true},
			{Key: 6, Hash: 1},
		},
		SizeEst: 147.25,
		Exclude: []Addr{"1.2.3.4:1", "5.6.7.8:2"},
	}
}

func fullResponse() *Response {
	return &Response{
		OK:      true,
		Err:     "some failure",
		Peer:    PeerRef{Addr: "10.0.0.8:1234", Key: 7},
		Peers:   []PeerRef{{Addr: "a:1", Key: 1}, {Addr: "b:2", Key: keyspace.MaxKey}},
		Degree:  -4,
		Value:   []byte{0, 1, 2, 254, 255},
		Found:   true,
		Deleted: true,
		Acks:    3,
		Items:   []storage.Item{{Key: 11, Value: []byte("v")}},
		More:    true,
		Cursor:  keyspace.FromFloat(0.31),
		Tombs:   []storage.Tombstone{{Key: 12, At: math.MaxInt64}},
		Digest:  []uint64{0, 1, math.MaxUint64},
		States:  []antientropy.State{{Key: 13, Hash: 2, Deleted: false}},
		SizeEst: 9.75,
		MaxIn:   27,
		MaxOut:  16,
		InDeg:   5,
	}
}

func TestBinaryRoundTripRequest(t *testing.T) {
	cases := []*Request{
		{},
		{Op: OpPing},
		{Op: OpGet, Key: 99},
		{Op: OpPut, Key: 1, Value: []byte("v"), From: PeerRef{Addr: "x:1", Key: 2}},
		fullRequest(),
	}
	for i, req := range cases {
		enc := appendRequest(nil, req)
		var got Request
		if err := decodeRequest(enc, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(&got)) {
			t.Fatalf("case %d: round trip mismatch:\n in: %+v\nout: %+v", i, req, &got)
		}
	}
}

func TestBinaryRoundTripResponse(t *testing.T) {
	cases := []*Response{
		{},
		{OK: true},
		{OK: true, Peer: PeerRef{Addr: "y:2", Key: 3}},
		fullResponse(),
	}
	for i, resp := range cases {
		enc := appendResponse(nil, resp)
		var got Response
		if err := decodeResponse(enc, &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(&got)) {
			t.Fatalf("case %d: round trip mismatch:\n in: %+v\nout: %+v", i, resp, &got)
		}
	}
}

// normalizeReq maps empty-but-non-nil slices to nil: the codec, like JSON
// omitempty, does not distinguish them on the wire.
func normalizeReq(r *Request) *Request {
	c := *r
	if len(c.Value) == 0 {
		c.Value = nil
	}
	for i := range c.Items {
		if len(c.Items[i].Value) == 0 {
			c.Items[i].Value = nil
		}
	}
	return &c
}

func normalizeResp(r *Response) *Response {
	c := *r
	if len(c.Value) == 0 {
		c.Value = nil
	}
	for i := range c.Items {
		if len(c.Items[i].Value) == 0 {
			c.Items[i].Value = nil
		}
	}
	return &c
}

// randomRequest builds a request with an arbitrary subset of fields set —
// the property-test generator. It never produces empty-but-non-nil slices
// (the codec cannot represent them, by design, mirroring JSON omitempty).
func randomRequest(rng *rand.Rand) *Request {
	ops := []Op{OpPing, OpInfo, OpFindOwner, OpPut, OpGet, OpDelete, OpScan,
		OpMigrate, OpSuccList, OpReplicate, OpReplicateDel, OpDigest,
		OpSyncPull, OpReadRepair, OpNotify, OpNeighbors, OpLink, OpUnlink}
	req := &Request{Op: ops[rng.Intn(len(ops))]}
	if rng.Intn(2) == 0 {
		req.Key = keyspace.Key(rng.Uint64())
	}
	if rng.Intn(2) == 0 {
		req.From = PeerRef{Addr: Addr(randString(rng, 1+rng.Intn(20))), Key: keyspace.Key(rng.Uint64())}
	}
	if rng.Intn(2) == 0 {
		req.Range = keyspace.Range{Start: keyspace.Key(rng.Uint64()), End: keyspace.Key(rng.Uint64())}
	}
	if rng.Intn(2) == 0 {
		req.Value = randBytes(rng, 1+rng.Intn(64))
	}
	if rng.Intn(2) == 0 {
		req.Limit = rng.Intn(2000) - 1000
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			req.Items = append(req.Items, storage.Item{
				Key: keyspace.Key(rng.Uint64()), Value: randBytes(rng, 1+rng.Intn(32)),
			})
		}
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			req.Tombs = append(req.Tombs, storage.Tombstone{
				Key: keyspace.Key(rng.Uint64()), At: rng.Int63() - rng.Int63(),
			})
		}
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			req.Drop = append(req.Drop, keyspace.Key(rng.Uint64()))
		}
	}
	if rng.Intn(2) == 0 {
		req.Depth = rng.Intn(20)
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			req.Buckets = append(req.Buckets, rng.Intn(1<<16))
		}
	}
	req.Values = rng.Intn(2) == 0
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			req.States = append(req.States, antientropy.State{
				Key: keyspace.Key(rng.Uint64()), Hash: rng.Uint64(), Deleted: rng.Intn(2) == 0,
			})
		}
	}
	if rng.Intn(2) == 0 {
		req.SizeEst = rng.Float64() * 1e6
	}
	if rng.Intn(3) == 0 {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			req.Exclude = append(req.Exclude, Addr(randString(rng, 1+rng.Intn(20))))
		}
	}
	return req
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func randString(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789.:"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// TestBinaryRoundTripProperty is the encode→decode == identity property
// over randomly generated requests and responses.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		req := randomRequest(rng)
		var got Request
		if err := decodeRequest(appendRequest(nil, req), &got); err != nil {
			t.Fatalf("iter %d: decode: %v\nreq: %+v", i, err, req)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(&got)) {
			t.Fatalf("iter %d: mismatch:\n in: %+v\nout: %+v", i, req, &got)
		}
	}
}

// TestBinaryUnknownFieldSkipped proves forward compatibility: a payload
// carrying an unknown tag decodes cleanly, ignoring it.
func TestBinaryUnknownFieldSkipped(t *testing.T) {
	enc := appendRequest(nil, &Request{Op: OpPing, Key: 7})
	// Append an unknown field: tag 200, 3-byte value.
	w := binWriter{b: enc}
	w.field(200, 3)
	w.b = append(w.b, 1, 2, 3)
	var got Request
	if err := decodeRequest(w.b, &got); err != nil {
		t.Fatalf("decode with unknown field: %v", err)
	}
	if got.Op != OpPing || got.Key != 7 {
		t.Fatalf("decoded %+v", got)
	}
}

// TestBinaryRejectsCrossKind ensures a response payload cannot decode as a
// request and vice versa.
func TestBinaryRejectsCrossKind(t *testing.T) {
	if err := decodeRequest(appendResponse(nil, &Response{OK: true}), &Request{}); err == nil {
		t.Error("response payload decoded as request")
	}
	if err := decodeResponse(appendRequest(nil, &Request{Op: OpPing}), &Response{}); err == nil {
		t.Error("request payload decoded as response")
	}
	if err := decodeRequest(nil, &Request{}); err == nil {
		t.Error("empty payload decoded as request")
	}
}

// FuzzDecodeRequest fuzzes the binary request decoder: arbitrary input
// must never panic or over-allocate, and any input that decodes must
// re-encode into a payload that decodes to the same request (canonical
// stability).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(appendRequest(nil, fullRequest()))
	f.Add(appendRequest(nil, &Request{}))
	f.Add(appendRequest(nil, &Request{Op: OpPut, Key: 3, Value: []byte("v")}))
	f.Add([]byte{binKindRequest})
	f.Add([]byte{binKindRequest, 1, 255, 255, 255})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		f.Add(appendRequest(nil, randomRequest(rng)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := decodeRequest(data, &req); err != nil {
			return
		}
		enc := appendRequest(nil, &req)
		var again Request
		if err := decodeRequest(enc, &again); err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeReq(&req), normalizeReq(&again)) {
			t.Fatalf("re-encode not stable:\n1st: %+v\n2nd: %+v", &req, &again)
		}
	})
}

// FuzzDecodeResponse is FuzzDecodeRequest for the response decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(appendResponse(nil, fullResponse()))
	f.Add(appendResponse(nil, &Response{}))
	f.Add(appendResponse(nil, &Response{OK: true, Value: []byte("x"), Found: true}))
	f.Add([]byte{binKindResponse})
	f.Add([]byte{binKindResponse, 4, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := decodeResponse(data, &resp); err != nil {
			return
		}
		enc := appendResponse(nil, &resp)
		var again Response
		if err := decodeResponse(enc, &again); err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeResp(&resp), normalizeResp(&again)) {
			t.Fatalf("re-encode not stable:\n1st: %+v\n2nd: %+v", &resp, &again)
		}
	})
}
