package faultnet

import (
	"context"
	"time"
)

// Phase is one timed step of a Plan: a mutation of the fault model held
// for a duration. Scenarios compose phases — "degrade, partition 10s,
// heal, settle" — and assert their invariants after Run returns.
type Phase struct {
	// Name labels the phase for logs and progress callbacks.
	Name string
	// Apply mutates the network when the phase begins (nil = no change,
	// a pure wait).
	Apply func(*Network)
	// Duration is how long the phase's state holds before the next phase
	// applies. Zero applies the mutation and moves on immediately.
	Duration time.Duration
}

// Plan is an ordered fault scenario: phases applied to one Network, in
// sequence, each held for its duration. Plans script the storyline of a
// test ("partition racks A|B for 10s, heal, assert convergence") while
// load runs concurrently against the cluster.
type Plan struct {
	Phases []Phase
	// OnPhase, when set, is called as each phase begins — the hook soak
	// harnesses use to log the storyline and timestamp convergence
	// windows.
	OnPhase func(Phase)
}

// Run applies the phases in order against net, sleeping each phase's
// duration. It returns ctx.Err() if the context dies mid-plan (the
// network keeps whatever state the last applied phase left — callers
// that need a clean fabric afterwards should Heal/SetDefault themselves).
func (p Plan) Run(ctx context.Context, net *Network) error {
	for _, ph := range p.Phases {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.OnPhase != nil {
			p.OnPhase(ph)
		}
		if ph.Apply != nil {
			ph.Apply(net)
		}
		if ph.Duration > 0 {
			t := time.NewTimer(ph.Duration)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return nil
}
