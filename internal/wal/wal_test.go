package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

func put(k uint64, v string) Record {
	return Record{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutPut, Key: keyspace.Key(k), Value: []byte(v)}}
}

func tomb(k uint64, at int64) Record {
	return Record{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutTombstone, Key: keyspace.Key(k), At: at}}
}

func mustOpen(t *testing.T, dir string, p Policy) (*Engine, *Recovered) {
	t.Helper()
	e, rec, err := Open(Options{Dir: dir, Policy: p})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e, rec
}

func sameStore(t *testing.T, want, got *storage.Store, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Items(), got.Items()) {
		t.Fatalf("%s: items diverge: want %v got %v", label, want.Items(), got.Items())
	}
	if !reflect.DeepEqual(want.Tombstones(), got.Tombstones()) {
		t.Fatalf("%s: tombstones diverge: want %v got %v", label, want.Tombstones(), got.Tombstones())
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, rec := mustOpen(t, dir, PolicyAlways)
	if rec.HasState() || rec.Clean || rec.Replayed != 0 {
		t.Fatalf("fresh dir should recover empty, got %+v", rec)
	}
	want := &storage.Store{}
	for i := 0; i < 50; i++ {
		r := put(uint64(i), fmt.Sprintf("v%d", i))
		want.ApplyMutation(r.Mut)
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want.ApplyMutation(tomb(7, 123).Mut)
	if err := e.Append(tomb(7, 123)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, rec2 := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if rec2.Clean {
		t.Fatal("no clean marker was written; Clean should be false")
	}
	if rec2.Replayed != 51 {
		t.Fatalf("Replayed = %d, want 51", rec2.Replayed)
	}
	sameStore(t, want, rec2.Primary, "after replay")
	// Post-recovery compaction folded the log into a snapshot.
	if st := e2.Stats(); st.WALBytes != 0 || st.Frames != 0 || st.LastSnapshot == 0 {
		t.Fatalf("expected compacted state after recovery, got %+v", st)
	}
}

func TestTornFinalFrame(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	for i := 0; i < 10; i++ {
		if err := e.Append(put(uint64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a frame header promising more bytes
	// than the file holds.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if !rec.TornTail {
		t.Fatal("expected TornTail")
	}
	if rec.Replayed != 10 || rec.Primary.Len() != 10 {
		t.Fatalf("intact prefix lost: replayed %d, %d items", rec.Replayed, rec.Primary.Len())
	}
}

func TestCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	var offsets []int64
	for i := 0; i < 10; i++ {
		if err := e.Append(put(uint64(i), "payload")); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, e.Stats().WALBytes)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside frame 5 (offsets[3] is where frame 4
	// ends, i.e. frame 5 starts).
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, offsets[3]+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if !rec.TornTail {
		t.Fatal("mid-log corruption should be reported as a torn tail")
	}
	// Everything before the damaged frame survives; nothing after it
	// can be trusted.
	if rec.Replayed != 4 || rec.Primary.Len() != 4 {
		t.Fatalf("want the 4-frame intact prefix, got replayed=%d items=%d", rec.Replayed, rec.Primary.Len())
	}
}

func TestEmptyWALStaleSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	for i := 0; i < 5; i++ {
		if err := e.Append(put(uint64(i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	want := &storage.Store{}
	for i := 0; i < 5; i++ {
		want.ApplyMutation(put(uint64(i), "v").Mut)
	}
	if err := e.Snapshot(want, &storage.Store{}, 42); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// wal.log is now empty; only the snapshot holds state.
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated by snapshot: %v %v", fi, err)
	}

	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if rec.SnapshotAt != 42 || rec.Replayed != 0 || rec.TornTail {
		t.Fatalf("want pure snapshot recovery, got %+v", rec)
	}
	sameStore(t, want, rec.Primary, "snapshot-only recovery")
}

func TestInterruptedSnapshotWrite(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	if err := e.Append(put(1, "good")); err != nil {
		t.Fatal(err)
	}
	s := &storage.Store{}
	s.ApplyMutation(put(1, "good").Mut)
	if err := e.Snapshot(s, &storage.Store{}, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-snapshot leaves a half-written temp file; the
	// committed snapshot must win and the temp file must be discarded.
	if err := os.WriteFile(filepath.Join(dir, snapTempFile), []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if rec.SnapshotAt != 7 {
		t.Fatalf("want committed snapshot (savedAt 7), got %d", rec.SnapshotAt)
	}
	if v, ok := rec.Primary.Get(1); !ok || string(v) != "good" {
		t.Fatalf("lost committed state: %q %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, snapTempFile)); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot.tmp not discarded: %v", err)
	}
}

func TestReplayIdempotence(t *testing.T) {
	// The mutation set must satisfy apply(apply(S, L), L) == apply(S, L):
	// recovery may replay frames whose effects a snapshot already holds.
	recs := []Record{
		put(1, "a"), put(2, "b"), tomb(1, 10), put(3, "c"),
		{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutDrop, Key: 2}},
		put(2, "b2"), tomb(4, 5),
		{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutGC, At: 6}},
		{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutRemoveItem, Key: 3}},
		{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutRemoveTomb, Key: 1}},
	}
	once, twice := &storage.Store{}, &storage.Store{}
	for _, r := range recs {
		once.ApplyMutation(r.Mut)
	}
	for i := 0; i < 2; i++ {
		for _, r := range recs {
			twice.ApplyMutation(r.Mut)
		}
	}
	sameStore(t, once, twice, "double replay")
}

func TestCleanMarkerConsumed(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	if err := e.MarkClean(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, rec := mustOpen(t, dir, PolicyAlways)
	if !rec.Clean {
		t.Fatal("clean marker not observed")
	}
	if err := e2.Close(); err != nil { // closes without MarkClean: a crash
		t.Fatal(err)
	}
	e3, rec3 := mustOpen(t, dir, PolicyAlways)
	defer e3.Close()
	if rec3.Clean {
		t.Fatal("clean marker must be consumed on read")
	}
}

func TestReplicaStoreRecovered(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	recs := []Record{
		put(1, "mine"),
		{Store: StoreReplica, Mut: storage.Mutation{Op: storage.MutPut, Key: 9, Value: []byte("theirs")}},
		{Store: StoreReplica, Mut: storage.Mutation{Op: storage.MutTombstone, Key: 8, At: 3}},
	}
	for _, r := range recs {
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if v, ok := rec.Replica.Get(9); !ok || string(v) != "theirs" {
		t.Fatalf("replica item lost: %q %v", v, ok)
	}
	if _, ok := rec.Replica.Tombstone(8); !ok {
		t.Fatal("replica tombstone lost")
	}
	if rec.Primary.Len() != 1 {
		t.Fatalf("primary polluted: %d items", rec.Primary.Len())
	}
}

func TestPolicyNeverAndIntervalStillRecoverAfterClose(t *testing.T) {
	for _, p := range []Policy{PolicyInterval, PolicyNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			e, _ := mustOpen(t, dir, p)
			for i := 0; i < 20; i++ {
				if err := e.Append(put(uint64(i), "v")); err != nil {
					t.Fatal(err)
				}
			}
			// Close flushes the buffer to the OS even when the policy
			// never fsyncs, so a process exit (not a machine crash)
			// loses nothing.
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			e2, rec := mustOpen(t, dir, p)
			defer e2.Close()
			if rec.Primary.Len() != 20 {
				t.Fatalf("%s: recovered %d items, want 20", p, rec.Primary.Len())
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"always": PolicyAlways, "interval": PolicyInterval, "never": PolicyNever, "": PolicyInterval, " Always ": PolicyAlways} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) should fail")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	s := &storage.Store{}
	s.ApplyMutation(put(1, "v").Mut)
	if err := e.Snapshot(s, &storage.Store{}, 99); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Append(put(uint64(i), "after-snap")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 3 || st.LastSnapshot != 99 || st.WALBytes == 0 {
		t.Fatalf("Inspect = %+v", st)
	}
}

func TestFrameCodecRejectsDamage(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, put(1, "hello"))
	// Intact decode.
	var scratch []byte
	rec, n, err := readFrame(bytes.NewReader(buf), &scratch)
	if err != nil || int(n) != len(buf) || string(rec.Mut.Value) != "hello" {
		t.Fatalf("intact frame: %+v %d %v", rec, n, err)
	}
	// Every single-byte flip must be caught.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		if _, _, err := readFrame(bytes.NewReader(mut), &scratch); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	const goroutines, per = 8, 25
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				if err := e.Append(put(uint64(g*1000+i), "cc")); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if rec.Primary.Len() != goroutines*per {
		t.Fatalf("recovered %d items, want %d", rec.Primary.Len(), goroutines*per)
	}
}

func TestSnapshotSurvivesLogLoss(t *testing.T) {
	// Deleting wal.log entirely (e.g. disk cleanup between snapshot
	// and restart) must still recover the snapshot state.
	dir := t.TempDir()
	e, _ := mustOpen(t, dir, PolicyAlways)
	s := &storage.Store{}
	s.ApplyMutation(put(5, "kept").Mut)
	if err := e.Snapshot(s, &storage.Store{}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, walFile)); err != nil {
		t.Fatal(err)
	}
	e2, rec := mustOpen(t, dir, PolicyAlways)
	defer e2.Close()
	if v, ok := rec.Primary.Get(5); !ok || string(v) != "kept" {
		t.Fatalf("snapshot state lost: %q %v", v, ok)
	}
}

func TestScanFramesStopsAtFirstDamage(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = appendRecord(buf, put(uint64(i), "v"))
	}
	frameLen := len(buf) / 3
	// Damage frame 2's checksum region.
	buf[frameLen+5] ^= 0x01
	good, frames, torn := scanFrames(bufio.NewReader(bytes.NewReader(buf)), func(Record) {})
	if !torn || frames != 1 || good != int64(frameLen) {
		t.Fatalf("good=%d frames=%d torn=%v; want %d,1,true", good, frames, torn, frameLen)
	}
}
