package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table — the
// output format of cmd/oscar-bench, mirroring the rows behind each paper
// figure.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v (floats with %.3g when
// given as float64).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int64
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
		n, err := io.WriteString(w, b.String())
		total += int64(n)
		return err
	}
	if err := writeRow(t.header); err != nil {
		return total, err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteCSV renders the table as CSV (no quoting: the harness emits only
// numbers and bare words).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(t.header, ",")+"\n"); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}
