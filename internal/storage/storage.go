// Package storage is the per-peer ordered key-value store of the data
// layer. The overlay is order-preserving precisely so that stores can be
// range-partitioned: peer p holds every item whose key falls in the arc
// (pred(p), p], and range queries scan consecutive peers' stores.
//
// Items are kept in a sorted slice: stores hold one peer's shard (thousands
// of items, not millions), where binary search plus contiguous memory beats
// pointer-chasing tree structures.
//
// Two replication concerns live here alongside the items:
//
//   - Tombstones. Delete does not just remove the item — it records the key
//     as deleted (with a timestamp for TTL garbage collection), so that
//     anti-entropy sync and arc re-syncs can distinguish "this replica never
//     saw the key" from "this key was deleted" and never resurrect deleted
//     data from a stale copy. A later Put clears the tombstone.
//
//   - Digests. A store can maintain an antientropy.Tree summary of its
//     contents (items and tombstones alike), updated in O(1) on every
//     mutation, so an arc owner can open a sync round without rehashing its
//     shard. Stores that don't need it (replica stores, the simulator's
//     shards) compute digests on demand with Digest instead.
package storage

import (
	"sort"
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// Page bounds shared by every frame-bounded bulk transfer of the data
// layer: replicate pushes, migrate responses and scan pages alike stop at
// PageMaxItems items or once the accumulated value bytes would pass
// PageMaxBytes — an order of magnitude under the transport's 16 MiB frame
// cap, so no single response can approach it.
const (
	PageMaxItems = 512
	PageMaxBytes = 4 << 20
)

// Item is one stored record.
type Item struct {
	Key   keyspace.Key
	Value []byte
}

// Tombstone records one deleted key and when it was deleted (unix
// nanoseconds, by the clock of the node that recorded it). The timestamp
// drives TTL garbage collection only — it is deliberately excluded from
// digests, so two nodes that agree a key is deleted agree on its hash no
// matter when each learned of the delete.
type Tombstone struct {
	Key keyspace.Key `json:"key"`
	At  int64        `json:"at"`
}

// Store is one peer's shard, ordered by key. The zero value is an empty
// store ready to use.
type Store struct {
	items []Item      // sorted by Key ascending
	tombs []Tombstone // sorted by Key ascending; disjoint from items
	// tree, when enabled, is the incrementally-maintained digest of items
	// and tombstones together.
	tree *antientropy.Tree
	// sink, when set, observes every primitive mutation in apply order —
	// the write-ahead-log hook, attached alongside the digest tree so the
	// two can never disagree about what happened. See SetSink.
	sink func(Mutation)
}

// Len returns the number of live items (tombstones excluded).
func (s *Store) Len() int { return len(s.items) }

// TombstoneCount returns the number of recorded tombstones.
func (s *Store) TombstoneCount() int { return len(s.tombs) }

// search returns the index of the first item with key >= k.
func (s *Store) search(k keyspace.Key) int {
	return sort.Search(len(s.items), func(i int) bool { return s.items[i].Key >= k })
}

// searchTomb returns the index of the first tombstone with key >= k.
func (s *Store) searchTomb(k keyspace.Key) int {
	return sort.Search(len(s.tombs), func(i int) bool { return s.tombs[i].Key >= k })
}

// apply toggles a state hash in the digest tree, if one is maintained.
func (s *Store) apply(k keyspace.Key, h uint64) {
	if s.tree != nil {
		s.tree.Apply(k, h)
	}
}

// Put inserts or replaces the value for k and reports whether an existing
// item was replaced. The value slice is stored as-is (callers own it). A
// tombstone for k, if any, is cleared: a fresh write supersedes the delete.
func (s *Store) Put(k keyspace.Key, v []byte) (replaced bool) {
	s.emit(Mutation{Op: MutPut, Key: k, Value: v})
	s.clearTombstone(k)
	i := s.search(k)
	if i < len(s.items) && s.items[i].Key == k {
		s.apply(k, antientropy.ItemHash(k, s.items[i].Value))
		s.items[i].Value = v
		s.apply(k, antientropy.ItemHash(k, v))
		return true
	}
	s.items = append(s.items, Item{})
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = Item{Key: k, Value: v}
	s.apply(k, antientropy.ItemHash(k, v))
	return false
}

// Get returns the value for k.
func (s *Store) Get(k keyspace.Key) ([]byte, bool) {
	i := s.search(k)
	if i < len(s.items) && s.items[i].Key == k {
		return s.items[i].Value, true
	}
	return nil, false
}

// Delete removes the item with key k and reports whether it existed. The
// delete is recorded as a tombstone (whether or not an item existed — the
// caller may be clearing a copy it cannot see), timestamped now, so sync
// protocols propagate it instead of resurrecting the key from stale copies.
func (s *Store) Delete(k keyspace.Key) bool {
	return s.DeleteAt(k, time.Now().UnixNano())
}

// DeleteAt is Delete with an explicit tombstone timestamp (unix nanos).
func (s *Store) DeleteAt(k keyspace.Key, at int64) bool {
	s.emit(Mutation{Op: MutTombstone, Key: k, At: at})
	existed := s.removeItem(k)
	s.setTomb(k, at)
	return existed
}

// removeItem removes the live item for k without recording a tombstone.
func (s *Store) removeItem(k keyspace.Key) bool {
	i := s.search(k)
	if i == len(s.items) || s.items[i].Key != k {
		return false
	}
	s.apply(k, antientropy.ItemHash(k, s.items[i].Value))
	s.items = append(s.items[:i], s.items[i+1:]...)
	return true
}

// setTomb records (or refreshes) the tombstone for k, keeping the newest
// timestamp. The digest is unchanged when a tombstone already exists: the
// tombstone hash covers the key only, so refreshing the clock is invisible.
func (s *Store) setTomb(k keyspace.Key, at int64) {
	i := s.searchTomb(k)
	if i < len(s.tombs) && s.tombs[i].Key == k {
		if at > s.tombs[i].At {
			s.tombs[i].At = at
		}
		return
	}
	s.tombs = append(s.tombs, Tombstone{})
	copy(s.tombs[i+1:], s.tombs[i:])
	s.tombs[i] = Tombstone{Key: k, At: at}
	s.apply(k, antientropy.TombHash(k))
}

// clearTombstone removes the tombstone for k, if any.
func (s *Store) clearTombstone(k keyspace.Key) bool {
	i := s.searchTomb(k)
	if i == len(s.tombs) || s.tombs[i].Key != k {
		return false
	}
	s.apply(k, antientropy.TombHash(k))
	s.tombs = append(s.tombs[:i], s.tombs[i+1:]...)
	return true
}

// SetTombstone applies a delete learned from elsewhere (an owner's
// anti-entropy push, a replicated delete): the live copy, if any, is
// removed and the key is marked deleted with the given timestamp (newest
// wins). It reports whether a live item was removed.
func (s *Store) SetTombstone(k keyspace.Key, at int64) bool {
	s.emit(Mutation{Op: MutTombstone, Key: k, At: at})
	existed := s.removeItem(k)
	s.setTomb(k, at)
	return existed
}

// Tombstone returns the deletion timestamp for k, if the key is tombstoned.
func (s *Store) Tombstone(k keyspace.Key) (int64, bool) {
	i := s.searchTomb(k)
	if i < len(s.tombs) && s.tombs[i].Key == k {
		return s.tombs[i].At, true
	}
	return 0, false
}

// InsertTombstones merges learned tombstones into the store (newest
// timestamp wins), removing any live copies of those keys.
func (s *Store) InsertTombstones(tombs []Tombstone) {
	for _, tb := range tombs {
		s.SetTombstone(tb.Key, tb.At)
	}
}

// Drop removes every trace of k — live item and tombstone alike — without
// recording a delete. It is the cleanup primitive for stray replica state
// the arc owner has no record of.
func (s *Store) Drop(k keyspace.Key) {
	s.emit(Mutation{Op: MutDrop, Key: k})
	s.removeItem(k)
	s.clearTombstone(k)
}

// GCTombstones discards tombstones recorded before cutoff (unix nanos) and
// returns how many were collected. Run it on a TTL well above the
// anti-entropy interval: a tombstone only needs to survive until every
// replica has either applied it or been dropped from the chain.
func (s *Store) GCTombstones(cutoff int64) int {
	kept := s.tombs[:0]
	dropped := 0
	for _, tb := range s.tombs {
		if tb.At < cutoff {
			s.apply(tb.Key, antientropy.TombHash(tb.Key))
			dropped++
		} else {
			kept = append(kept, tb)
		}
	}
	s.tombs = kept
	if dropped > 0 {
		s.emit(Mutation{Op: MutGC, At: cutoff})
	}
	return dropped
}

// Scan visits items whose keys lie in the clockwise arc rg, in clockwise
// order starting from rg.Start; fn returning false stops the scan. Wrapping
// arcs are handled (the scan may start near the top of the key space and
// continue from the bottom). Tombstoned keys are not visited.
func (s *Store) Scan(rg keyspace.Range, fn func(Item) bool) {
	if len(s.items) == 0 {
		return
	}
	if rg.IsFull() {
		// Clockwise from rg.Start over the whole circle.
		start := s.search(rg.Start)
		for i := 0; i < len(s.items); i++ {
			if !fn(s.items[(start+i)%len(s.items)]) {
				return
			}
		}
		return
	}
	if rg.Start < rg.End {
		for i := s.search(rg.Start); i < len(s.items) && s.items[i].Key < rg.End; i++ {
			if !fn(s.items[i]) {
				return
			}
		}
		return
	}
	// Wrapping arc: [Start, MaxKey] then [0, End).
	for i := s.search(rg.Start); i < len(s.items); i++ {
		if !fn(s.items[i]) {
			return
		}
	}
	for i := 0; i < len(s.items) && s.items[i].Key < rg.End; i++ {
		if !fn(s.items[i]) {
			return
		}
	}
}

// ScanPage returns up to maxItems items (whose accumulated value bytes
// stay within maxBytes) with keys in rg, in clockwise order from rg.Start,
// without removing them — the non-destructive sibling of ExtractRangeLimit
// and the single-store page of a streaming scan. At least one item ships
// when the range holds any (a single oversized value still pages), and a
// cap <= 0 is no cap. more reports that at least one further item remains
// in the range past the returned page; resume from the last returned key
// plus one.
func (s *Store) ScanPage(rg keyspace.Range, maxItems, maxBytes int) (out []Item, more bool) {
	bytes := 0
	s.Scan(rg, func(it Item) bool {
		if maxItems > 0 && len(out) >= maxItems {
			more = true
			return false
		}
		if maxBytes > 0 && len(out) > 0 && bytes+len(it.Value) > maxBytes {
			more = true
			return false
		}
		bytes += len(it.Value)
		out = append(out, it)
		return true
	})
	return out, more
}

// rangeViews returns up to two subslice views of s.items covering rg in
// clockwise order from rg.Start (two when the arc wraps the top of the
// circle). The views alias the store's backing array — read-only, valid
// until the next mutation.
func (s *Store) rangeViews(rg keyspace.Range) [][]Item {
	if s == nil || len(s.items) == 0 {
		return nil
	}
	i := s.search(rg.Start)
	if rg.IsFull() {
		return [][]Item{s.items[i:], s.items[:i]}
	}
	if rg.Start < rg.End {
		return [][]Item{s.items[i:s.search(rg.End)]}
	}
	return [][]Item{s.items[i:], s.items[:s.search(rg.End)]}
}

// pageWalker pulls items one at a time from a store's clockwise range
// views — the pull-style iterator a two-store merge needs.
type pageWalker struct {
	parts [][]Item
}

func (w *pageWalker) peek() (Item, bool) {
	for len(w.parts) > 0 {
		if len(w.parts[0]) == 0 {
			w.parts = w.parts[1:]
			continue
		}
		return w.parts[0][0], true
	}
	return Item{}, false
}

func (w *pageWalker) advance() { w.parts[0] = w.parts[0][1:] }

// ScanPageMerged returns one bounded page of the clockwise merge of two
// stores restricted to rg, from rg.Start: primary items win key
// collisions, and a fallback item is suppressed when the primary holds a
// tombstone for its key — the primary's delete is authoritative, the same
// per-key rule the chain-fallback read path applies. It is the page
// primitive of the streaming scan: a node serves its own shard merged with
// its replica store, so a chain member can answer for a dead owner's arc
// and an owner that inherited un-promoted replica state serves it too.
//
// Bounds behave like ScanPage (maxItems items, maxBytes accumulated value
// bytes, at least one item when any qualifies, cap <= 0 is no cap), and
// more is exact: it is true only when a further emittable item exists, so
// a resumer never spins on an empty page.
func ScanPageMerged(primary, fallback *Store, rg keyspace.Range, maxItems, maxBytes int) (out []Item, more bool) {
	if primary == nil {
		primary = &Store{}
	}
	p := &pageWalker{parts: primary.rangeViews(rg)}
	f := &pageWalker{parts: fallback.rangeViews(rg)}
	bytes := 0
	for {
		it, ok := nextMerged(p, f, rg.Start, primary)
		if !ok {
			return out, false
		}
		if maxItems > 0 && len(out) >= maxItems {
			return out, true
		}
		if maxBytes > 0 && len(out) > 0 && bytes+len(it.Value) > maxBytes {
			return out, true
		}
		bytes += len(it.Value)
		out = append(out, it)
	}
}

// nextMerged pops the next emittable item of the two-store clockwise
// merge: ordering is by clockwise distance from start, duplicate keys keep
// the primary's copy, and fallback-only keys tombstoned at the primary are
// skipped entirely.
func nextMerged(p, f *pageWalker, start keyspace.Key, primary *Store) (Item, bool) {
	for {
		pi, pok := p.peek()
		fi, fok := f.peek()
		switch {
		case !pok && !fok:
			return Item{}, false
		case pok && (!fok || start.Distance(pi.Key) <= start.Distance(fi.Key)):
			p.advance()
			if fok && fi.Key == pi.Key {
				f.advance() // duplicate copy: the primary's value wins
			}
			return pi, true
		default:
			f.advance()
			if _, dead := primary.Tombstone(fi.Key); dead {
				continue // authoritatively deleted at the primary
			}
			return fi, true
		}
	}
}

// Items returns all items in key order (a copy of the slice headers; values
// are shared).
func (s *Store) Items() []Item {
	return append([]Item(nil), s.items...)
}

// ExtractRange removes and returns the items whose keys lie in rg — the
// migration primitive used when a joining peer takes over part of its
// successor's arc. Tombstones in rg are not touched; migrate them
// separately with ExtractTombstones.
func (s *Store) ExtractRange(rg keyspace.Range) []Item {
	var out []Item
	kept := s.items[:0]
	for _, it := range s.items {
		if rg.Contains(it.Key) {
			s.emit(Mutation{Op: MutRemoveItem, Key: it.Key})
			s.apply(it.Key, antientropy.ItemHash(it.Key, it.Value))
			out = append(out, it)
		} else {
			kept = append(kept, it)
		}
	}
	s.items = kept
	return out
}

// ExtractRangeLimit removes and returns items whose keys lie in rg, in
// clockwise order from rg.Start, stopping after maxItems items or once the
// accumulated value bytes would exceed maxBytes (at least one item is
// always extracted when the range is non-empty; a cap <= 0 is no cap).
// more reports that items remain in the range: because extraction removes
// what it returns, calling again with the same range yields the next
// chunk — the pagination primitive for migrating a large arc in bounded
// frames.
func (s *Store) ExtractRangeLimit(rg keyspace.Range, maxItems, maxBytes int) (out []Item, more bool) {
	bytes := 0
	s.Scan(rg, func(it Item) bool {
		if maxItems > 0 && len(out) >= maxItems {
			more = true
			return false
		}
		if maxBytes > 0 && len(out) > 0 && bytes+len(it.Value) > maxBytes {
			more = true
			return false
		}
		bytes += len(it.Value)
		out = append(out, it)
		return true
	})
	for _, it := range out {
		s.emit(Mutation{Op: MutRemoveItem, Key: it.Key})
		s.removeItem(it.Key)
	}
	return out, more
}

// ExtractTombstones removes and returns the tombstones whose keys lie in rg
// — the delete knowledge travels with the arc it covers.
func (s *Store) ExtractTombstones(rg keyspace.Range) []Tombstone {
	var out []Tombstone
	kept := s.tombs[:0]
	for _, tb := range s.tombs {
		if rg.Contains(tb.Key) {
			s.emit(Mutation{Op: MutRemoveTomb, Key: tb.Key})
			s.apply(tb.Key, antientropy.TombHash(tb.Key))
			out = append(out, tb)
		} else {
			kept = append(kept, tb)
		}
	}
	s.tombs = kept
	return out
}

// InsertBulk merges items (each keyed uniquely) into the store.
func (s *Store) InsertBulk(items []Item) {
	for _, it := range items {
		s.Put(it.Key, it.Value)
	}
}

// EnableDigest attaches (or rebuilds) an incrementally-maintained digest
// tree of the given depth, seeded from the store's current contents. Every
// subsequent mutation updates it in O(1).
func (s *Store) EnableDigest(depth int) {
	s.tree = antientropy.NewTree(depth)
	for _, it := range s.items {
		s.tree.Apply(it.Key, antientropy.ItemHash(it.Key, it.Value))
	}
	for _, tb := range s.tombs {
		s.tree.Apply(tb.Key, antientropy.TombHash(tb.Key))
	}
}

// DigestLeaves returns the maintained digest's leaf vector, or nil if
// EnableDigest was never called.
func (s *Store) DigestLeaves() []uint64 {
	if s.tree == nil {
		return nil
	}
	return s.tree.Leaves()
}

// Digest computes the leaf vector of a depth-deep digest tree over the
// store's state (items and tombstones) restricted to rg. It is the
// on-demand counterpart of the maintained tree, used by replica stores
// answering a digest request for one owner's arc.
func (s *Store) Digest(rg keyspace.Range, depth int) []uint64 {
	t := antientropy.NewTree(depth)
	s.Scan(rg, func(it Item) bool {
		t.Apply(it.Key, antientropy.ItemHash(it.Key, it.Value))
		return true
	})
	for _, tb := range s.tombs {
		if rg.Contains(tb.Key) {
			t.Apply(tb.Key, antientropy.TombHash(tb.Key))
		}
	}
	return t.Leaves()
}

// SyncStates returns the per-key sync states (live items and tombstones
// merged) for keys in rg, sorted by key — the key-level unit of the
// anti-entropy pull round.
func (s *Store) SyncStates(rg keyspace.Range) []antientropy.State {
	var out []antientropy.State
	s.Scan(rg, func(it Item) bool {
		out = append(out, antientropy.State{Key: it.Key, Hash: antientropy.ItemHash(it.Key, it.Value)})
		return true
	})
	for _, tb := range s.tombs {
		if rg.Contains(tb.Key) {
			out = append(out, antientropy.State{Key: tb.Key, Hash: antientropy.TombHash(tb.Key), Deleted: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
