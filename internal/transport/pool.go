package transport

import (
	"context"
	"crypto/tls"
	"net"
	"sync"
	"time"
)

// pool keeps the persistent client connections of one TCP endpoint: a small
// set per peer, dialed lazily on first use (TLS-wrapped and codec-
// negotiated before first use), shared by concurrent calls, evicted when
// broken, and reaped when idle.
type pool struct {
	dialTimeout  time.Duration
	writeTimeout time.Duration
	perPeer      int // connection cap per peer
	maxInflight  int // per-connection in-flight cap
	codecMax     uint8
	tlsConf      *tls.Config

	mu     sync.Mutex
	peers  map[Addr]*peerConns
	closed bool
}

// peerConns is one peer's connection set; per-peer state keeps a slow dial
// to one peer from stalling calls to every other peer. dialing counts
// in-flight dials so the pool opens at most perPeer connections without
// ever holding the lock across a dial; dialed signals each dial's
// completion so callers that found every slot mid-dial wait for a result
// instead of dialing redundantly.
type peerConns struct {
	mu      sync.Mutex
	dialed  *sync.Cond // signalled under mu whenever a dial completes
	conns   []*muxConn
	dialing int
}

func newPeerConns() *peerConns {
	pc := &peerConns{}
	pc.dialed = sync.NewCond(&pc.mu)
	return pc
}

// pruneLocked drops broken connections; callers hold pc.mu.
func (pc *peerConns) pruneLocked() {
	live := pc.conns[:0]
	for _, c := range pc.conns {
		if !c.isBroken() {
			live = append(live, c)
		}
	}
	pc.conns = live
}

// leastLoadedLocked returns the live connection with the fewest in-flight
// calls (nil if none); callers hold pc.mu.
func (pc *peerConns) leastLoadedLocked() (*muxConn, int) {
	var best *muxConn
	bestLoad := -1
	for _, c := range pc.conns {
		if load := c.inflight(); best == nil || load < bestLoad {
			best, bestLoad = c, load
		}
	}
	return best, bestLoad
}

func newPool(perPeer int, dialTimeout, writeTimeout time.Duration, maxInflight int, codecMax uint8, tlsConf *tls.Config) *pool {
	return &pool{
		dialTimeout:  dialTimeout,
		writeTimeout: writeTimeout,
		perPeer:      perPeer,
		maxInflight:  maxInflight,
		codecMax:     codecMax,
		tlsConf:      tlsConf,
		peers:        make(map[Addr]*peerConns),
	}
}

// dial opens, wraps and negotiates one connection to addr: TCP dial, TLS
// handshake when configured, then the codec handshake (skipped entirely
// when this endpoint is pinned to the legacy JSON codec, which is exactly
// what pre-handshake peers expect). The context bounds the whole sequence.
func (p *pool) dial(ctx context.Context, addr Addr) (net.Conn, uint8, error) {
	dialer := net.Dialer{Timeout: p.dialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", string(addr))
	if err != nil {
		return nil, 0, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	if p.tlsConf != nil {
		cfg := p.tlsConf
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			cfg = cfg.Clone()
			if host, _, err := net.SplitHostPort(string(addr)); err == nil {
				cfg.ServerName = host
			}
		}
		tconn := tls.Client(conn, cfg)
		if err := tconn.HandshakeContext(ctx); err != nil {
			_ = conn.Close()
			return nil, 0, err
		}
		conn = tconn
	}
	codec := uint8(codecJSON)
	if p.codecMax >= codecBinary {
		deadline := time.Now().Add(p.dialTimeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		_ = conn.SetDeadline(deadline)
		hello := [5]byte{codecMagic[0], codecMagic[1], codecMagic[2], codecMagic[3], p.codecMax}
		if _, err := conn.Write(hello[:]); err != nil {
			_ = conn.Close()
			return nil, 0, err
		}
		var reply [1]byte
		if _, err := conn.Read(reply[:]); err != nil {
			_ = conn.Close()
			return nil, 0, err
		}
		codec = reply[0]
		if codec < codecJSON || codec > p.codecMax {
			_ = conn.Close()
			return nil, 0, errBadPayload
		}
		_ = conn.SetDeadline(time.Time{})
	}
	return conn, codec, nil
}

// get returns a live connection to addr, dialing lazily. Under concurrent
// load it spreads calls across up to perPeer connections: an existing idle
// connection is reused immediately, and a new one is dialed only while all
// existing ones are busy and the cap has room. Dials happen outside the
// peer lock and are bounded by the caller's context, so concurrent calls
// to a dead peer time out in parallel, not serially.
func (p *pool) get(ctx context.Context, addr Addr) (*muxConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrUnreachable
	}
	pc, ok := p.peers[addr]
	if !ok {
		pc = newPeerConns()
		p.peers[addr] = pc
	}
	p.mu.Unlock()

	pc.mu.Lock()
	for {
		pc.pruneLocked()
		best, bestLoad := pc.leastLoadedLocked()
		if best != nil && (bestLoad == 0 || len(pc.conns)+pc.dialing >= p.perPeer) {
			pc.mu.Unlock()
			return best, nil
		}
		if len(pc.conns)+pc.dialing < p.perPeer {
			pc.dialing++
			break
		}
		// Every cap slot is an in-flight dial: wait for one to land
		// rather than dialing redundantly. The wait is bounded — a dial
		// always completes (success or its own timeout) and signals.
		pc.dialed.Wait()
	}
	pc.mu.Unlock()

	conn, codec, err := p.dial(ctx, addr)

	pc.mu.Lock()
	pc.dialing--
	pc.dialed.Broadcast()
	if err != nil {
		pc.pruneLocked()
		fallback, _ := pc.leastLoadedLocked()
		pc.mu.Unlock()
		if fallback != nil {
			return fallback, nil // the peer may still answer on a busy conn
		}
		return nil, err
	}
	mc := newMuxConn(conn, p.writeTimeout, codec, p.maxInflight)
	pc.pruneLocked()
	// The reserved dialing slot guarantees room under the cap.
	pc.conns = append(pc.conns, mc)
	pc.mu.Unlock()
	return mc, nil
}

// peerCodecs snapshots the negotiated codec version of each peer with at
// least one live connection.
func (p *pool) peerCodecs() map[Addr]int {
	p.mu.Lock()
	peers := make(map[Addr]*peerConns, len(p.peers))
	for addr, pc := range p.peers {
		peers[addr] = pc
	}
	p.mu.Unlock()

	out := make(map[Addr]int)
	for addr, pc := range peers {
		pc.mu.Lock()
		for _, c := range pc.conns {
			if !c.isBroken() {
				out[addr] = int(c.codec)
				break
			}
		}
		pc.mu.Unlock()
	}
	return out
}

// evict removes a broken connection from the peer's set and closes it.
func (p *pool) evict(addr Addr, mc *muxConn) {
	p.mu.Lock()
	pc := p.peers[addr]
	p.mu.Unlock()
	if pc == nil {
		mc.close()
		return
	}
	pc.mu.Lock()
	for i, c := range pc.conns {
		if c == mc {
			pc.conns = append(pc.conns[:i], pc.conns[i+1:]...)
			break
		}
	}
	pc.mu.Unlock()
	mc.close()
}

// reap closes connections that have sat idle (no in-flight calls) longer
// than maxIdle, returning how many it closed.
func (p *pool) reap(maxIdle time.Duration) int {
	p.mu.Lock()
	peers := make([]*peerConns, 0, len(p.peers))
	for _, pc := range p.peers {
		peers = append(peers, pc)
	}
	p.mu.Unlock()

	cutoff := time.Now().Add(-maxIdle)
	closed := 0
	for _, pc := range peers {
		pc.mu.Lock()
		kept := pc.conns[:0]
		for _, c := range pc.conns {
			if idle := c.idleSince(); !idle.IsZero() && idle.Before(cutoff) {
				c.close()
				closed++
				continue
			}
			kept = append(kept, c)
		}
		pc.conns = kept
		pc.mu.Unlock()
	}
	return closed
}

// closeAll tears every connection down and rejects future gets.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	peers := p.peers
	p.peers = make(map[Addr]*peerConns)
	p.mu.Unlock()
	for _, pc := range peers {
		pc.mu.Lock()
		for _, c := range pc.conns {
			c.close()
		}
		pc.conns = nil
		pc.mu.Unlock()
	}
}
