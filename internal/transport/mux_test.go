package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// serverConnCount reports how many live server-side connections an
// endpoint holds (white-box: connection reuse is the point of the pool).
func serverConnCount(e *TCPEndpoint) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.conns)
}

// clientConnCount reports how many pooled client connections an endpoint
// holds toward addr.
func clientConnCount(e *TCPEndpoint, addr Addr) int {
	e.pool.mu.Lock()
	pc := e.pool.peers[addr]
	e.pool.mu.Unlock()
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := 0
	for _, c := range pc.conns {
		if !c.isBroken() {
			n++
		}
	}
	return n
}

// TestMuxConcurrentCallsShareConnection drives many in-flight calls
// through a pool capped at one connection and checks that every response
// reaches its own caller (no cross-talk) and that the server really saw a
// single multiplexed connection.
func TestMuxConcurrentCallsShareConnection(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	client, err := ListenTCP("127.0.0.1:0", WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const workers, callsPer = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < callsPer; j++ {
				key := keyspace.Key(uint64(w)<<32 | uint64(j))
				resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: key})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Peer.Key != key {
					t.Errorf("cross-talk: got %v want %v", resp.Peer.Key, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if n := serverConnCount(server); n != 1 {
		t.Errorf("server saw %d connections, want 1 (pool size 1)", n)
	}
	if n := clientConnCount(client, server.Addr()); n != 1 {
		t.Errorf("client pooled %d connections, want 1", n)
	}
}

// TestMuxPoolSpreadsLoad checks that under concurrency the pool opens at
// most its per-peer cap, and that serial traffic reuses one connection.
func TestMuxPoolSpreadsLoad(t *testing.T) {
	release := make(chan struct{})
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(func(req *Request) *Response {
		if req.Op == OpGet {
			<-release // hold calls in flight so the pool sees busy conns
		}
		return &Response{OK: true}
	})

	client, err := ListenTCP("127.0.0.1:0", WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Call(server.Addr(), &Request{Op: OpGet}); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until the in-flight calls have forced the pool to its cap.
	deadline := time.Now().Add(2 * time.Second)
	for clientConnCount(client, server.Addr()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := clientConnCount(client, server.Addr()); n != 2 {
		t.Errorf("pool holds %d connections, want exactly the cap 2", n)
	}
}

// TestMuxReconnectAfterRestart kills the server, verifies calls fail, then
// restarts it on the same address and checks the pooled (now stale)
// connection is evicted and redialed transparently.
func TestMuxReconnectAfterRestart(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server.Serve(echoHandler)
	addr := server.Addr()

	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Call(addr, &Request{Op: OpPing, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(addr, &Request{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to dead server: err = %v, want ErrUnreachable", err)
	}

	// Restart on the same port; the next call must succeed via a fresh dial.
	server2, err := ListenTCP(string(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	server2.Serve(echoHandler)

	resp, err := client.Call(addr, &Request{Op: OpPing, Key: 7})
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if resp.Peer.Key != 7 {
		t.Errorf("resp = %+v", resp)
	}
}

// TestMuxCallTimeoutDoesNotPoisonPool holds one request hostage past its
// deadline and checks that (a) the caller gets a deadline error, (b) the
// shared connection survives, and (c) the late response is discarded
// rather than delivered to the wrong caller.
func TestMuxCallTimeoutDoesNotPoisonPool(t *testing.T) {
	release := make(chan struct{})
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(func(req *Request) *Response {
		if req.Op == OpGet {
			<-release
			return &Response{OK: true, Err: "late"}
		}
		return &Response{OK: true, Peer: PeerRef{Key: req.Key}}
	})

	client, err := ListenTCP("127.0.0.1:0", WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = client.CallCtx(ctx, server.Addr(), &Request{Op: OpGet})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked call: err = %v, want DeadlineExceeded", err)
	}

	// Let the late response arrive, then prove the same pooled connection
	// still serves fresh calls and does not mis-deliver the stale frame.
	close(release)
	for i := 0; i < 20; i++ {
		key := keyspace.Key(100 + i)
		resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: key})
		if err != nil {
			t.Fatalf("call %d after timeout: %v", i, err)
		}
		if !resp.OK || resp.Err == "late" || resp.Peer.Key != key {
			t.Fatalf("call %d got stale/mismatched response %+v", i, resp)
		}
	}
	if n := clientConnCount(client, server.Addr()); n != 1 {
		t.Errorf("pool holds %d connections after timeout, want the original 1", n)
	}
}

// TestMuxGarbageFrames feeds the server protocol violations — an oversized
// length header and a non-JSON payload — and checks it drops those
// connections while continuing to serve well-formed traffic.
func TestMuxGarbageFrames(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	send := func(raw []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", string(server.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		// The server must hang up rather than answer.
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if n, err := conn.Read(buf); err == nil {
			t.Errorf("server answered %d bytes to a garbage frame", n)
		}
	}

	// Oversized declared length.
	huge := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(huge[0:4], maxFrame+1)
	send(huge)

	// Well-formed header, garbage payload.
	garbage := make([]byte, frameHeaderSize+4)
	binary.BigEndian.PutUint32(garbage[0:4], 4)
	binary.BigEndian.PutUint64(garbage[4:12], 9)
	copy(garbage[frameHeaderSize:], "\x00\x01\x02\x03")
	send(garbage)

	// The endpoint still serves honest clients.
	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.Call(server.Addr(), &Request{Op: OpPing, Key: 5})
	if err != nil || !resp.OK || resp.Peer.Key != 5 {
		t.Fatalf("honest call after garbage: %+v, %v", resp, err)
	}
}

// TestMuxOversizedRequestRejected checks a request whose payload exceeds
// the frame limit fails client-side instead of hitting the wire.
func TestMuxOversizedRequestRejected(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	client, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Call(server.Addr(), &Request{Op: OpPut, Value: make([]byte, maxFrame)}); err == nil {
		t.Fatal("oversized request succeeded")
	}
	// The transport recovers: a normal call still goes through.
	if _, err := client.Call(server.Addr(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("call after oversized request: %v", err)
	}
}

// TestMuxIdleReap checks the reaper closes idle pooled connections and the
// next call transparently redials.
func TestMuxIdleReap(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Serve(echoHandler)

	client, err := ListenTCP("127.0.0.1:0", WithIdleTimeout(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Call(server.Addr(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for clientConnCount(client, server.Addr()) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := clientConnCount(client, server.Addr()); n != 0 {
		t.Fatalf("reaper left %d idle connections", n)
	}
	if _, err := client.Call(server.Addr(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("call after reap: %v", err)
	}
}
