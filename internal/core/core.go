// Package core implements the Oscar node logic — the paper's primary
// contribution: long-range link acquisition over median-based logarithmic
// partitions, honouring per-peer degree budgets.
//
// The long-range link acquiring procedure (§2): "each peer u first chooses
// uniformly at random one logarithmic partition Ai and then within that
// partition uniformly at random one peer v. This peer v will become a
// long-range neighbor of u." Uniform in-partition choice is a restricted
// random walk (package sampling). A contacted peer accepts only while below
// ρmax_in (§3), and because the approach is randomized the power-of-two
// technique [Mitzenmacher et al.] balances in-degree load: draw two
// candidates, link the one with the lower relative in-degree load.
package core

import (
	"math/rand"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/partition"
	"github.com/oscar-overlay/oscar/internal/ring"
	"github.com/oscar-overlay/oscar/internal/sampling"
)

// Config tunes the Oscar wiring algorithm.
type Config struct {
	// Sample parameterises median estimation (partition discovery).
	Sample partition.SampleParams
	// PickSteps is the walk length used to draw a uniform peer inside a
	// chosen partition.
	PickSteps int
	// PowerOfTwo enables the two-choices in-degree balancing rule.
	PowerOfTwo bool
	// LinkRetries is how many fresh partition+peer draws a node spends on a
	// link slot after a refused or duplicate candidate, before giving the
	// slot up. Unfilled slots are why degree-volume utilisation stays below
	// 100%. The default of 0 (one power-of-two draw per slot) reproduces
	// the paper's ≈85% exploited degree volume; raising it trades wiring
	// traffic for fill.
	LinkRetries int
	// Oracle replaces sampled medians and sampled in-partition picks with
	// exact global-knowledge versions (ablation and tests).
	Oracle bool
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		Sample:      partition.DefaultSampleParams(),
		PickSteps:   10,
		PowerOfTwo:  true,
		LinkRetries: 0,
	}
}

// WireStats reports one wiring pass.
type WireStats struct {
	// LinksWanted is the node's ρmax_out.
	LinksWanted int
	// LinksMade is how many link slots were filled.
	LinksMade int
	// Refusals counts candidates that declined (in-degree cap).
	Refusals int
	// Levels is the partition count the node discovered (≈ log₂ N).
	Levels int
	// SampleCost counts walk messages spent on median estimation.
	SampleCost int
	// PickCost counts walk messages spent drawing candidates.
	PickCost int
}

// Add accumulates another pass's stats.
func (s *WireStats) Add(o WireStats) {
	s.LinksWanted += o.LinksWanted
	s.LinksMade += o.LinksMade
	s.Refusals += o.Refusals
	s.Levels += o.Levels
	s.SampleCost += o.SampleCost
	s.PickCost += o.PickCost
}

// Wire (re)builds node u's long-range links: it drops existing out-links,
// discovers partitions, and fills up to ρmax_out link slots. It is both the
// join-time wiring and the periodic rewiring of §3.
func Wire(net *graph.Network, rg *ring.Ring, w *sampling.Walker, u graph.NodeID, cfg Config, rnd *rand.Rand) WireStats {
	node := net.Node(u)
	stats := WireStats{LinksWanted: node.MaxOut}
	net.DropLinks(u)

	var parts *partition.Partitions
	if cfg.Oracle {
		parts = partition.BuildExact(net, rg, u)
	} else {
		parts = partition.BuildSampled(net, w, u, cfg.Sample)
	}
	stats.Levels = parts.Count()
	stats.SampleCost = parts.Cost
	if parts.Count() == 0 {
		return stats // alone (or effectively alone) on the ring
	}

	for slot := 0; slot < node.MaxOut; slot++ {
		if acquireLink(net, rg, w, u, parts, cfg, rnd, &stats) {
			stats.LinksMade++
		}
	}
	return stats
}

// acquireLink fills one link slot, retrying with fresh draws on refusal.
func acquireLink(net *graph.Network, rg *ring.Ring, w *sampling.Walker, u graph.NodeID,
	parts *partition.Partitions, cfg Config, rnd *rand.Rand, stats *WireStats) bool {

	for attempt := 0; attempt <= cfg.LinkRetries; attempt++ {
		cand := pickCandidate(net, rg, w, u, parts, cfg, rnd, stats)
		if cand == graph.NoNode {
			continue
		}
		switch err := net.AddLink(u, cand); err {
		case nil:
			return true
		case graph.ErrRefused:
			stats.Refusals++
		default:
			// duplicate or (transiently) dead candidate: just redraw
		}
	}
	return false
}

// pickCandidate draws one candidate per the paper's procedure: a uniformly
// random partition, then a uniformly random peer within it. With PowerOfTwo
// enabled it draws two and keeps the one with lower relative in-degree load.
func pickCandidate(net *graph.Network, rg *ring.Ring, w *sampling.Walker, u graph.NodeID,
	parts *partition.Partitions, cfg Config, rnd *rand.Rand, stats *WireStats) graph.NodeID {

	first := pickOne(net, rg, w, u, parts, cfg, rnd, stats)
	if !cfg.PowerOfTwo {
		return first
	}
	second := pickOne(net, rg, w, u, parts, cfg, rnd, stats)
	switch {
	case first == graph.NoNode:
		return second
	case second == graph.NoNode:
		return first
	case net.Node(second).InLoad() < net.Node(first).InLoad():
		return second
	default:
		return first
	}
}

// pickOne draws a single uniform peer from a uniformly chosen partition.
func pickOne(net *graph.Network, rg *ring.Ring, w *sampling.Walker, u graph.NodeID,
	parts *partition.Partitions, cfg Config, rnd *rand.Rand, stats *WireStats) graph.NodeID {

	pr := parts.Range(rnd.Intn(parts.Count()))
	if cfg.Oracle {
		cand := rg.RandomAliveInRange(rnd, pr)
		if cand == u {
			return graph.NoNode
		}
		return cand
	}
	start := startIn(net, rg, pr)
	if start == graph.NoNode {
		return graph.NoNode // stale border left the partition empty
	}
	cand, cost, err := w.UniformInRange(start, pr, cfg.PickSteps)
	stats.PickCost += cost
	if err != nil || cand == u {
		return graph.NoNode
	}
	return cand
}

// startIn resolves a walk entry point inside the partition: the overlay
// routes to the partition's lower border and starts the walk at the peer
// owning it. The simulator resolves ownership directly; the message cost of
// that routing step is not part of the paper's search-cost metric.
func startIn(net *graph.Network, rg *ring.Ring, pr keyspace.Range) graph.NodeID {
	owner := rg.OwnerOf(pr.Start)
	if !pr.Contains(net.Node(owner).Key) {
		return graph.NoNode
	}
	return owner
}
