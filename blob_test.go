package oscar

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func blobTestClient(t *testing.T) Client {
	t.Helper()
	ov, err := Build(Config{Size: 64, Seed: 9, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	cl := ov.Client()
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func blobData(n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(77)).Read(data)
	return data
}

func TestBlobRoundTrip(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	base := KeyFromFloat(0.25)

	// A size that does not divide evenly into chunks: the tail chunk is
	// short and both checksum layers still verify.
	data := blobData(10*64<<10 + 1234)
	m, err := cl.PutBlob(ctx, base, bytes.NewReader(data), WithChunkSize(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != int64(len(data)) || m.Chunks != 11 || m.ChunkSize != 64<<10 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.ChunkCRC) != m.Chunks {
		t.Fatalf("%d chunk checksums for %d chunks", len(m.ChunkCRC), m.Chunks)
	}

	br, err := cl.GetBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if br.Manifest().CRC != m.CRC {
		t.Fatalf("reader manifest crc %08x, put returned %08x", br.Manifest().CRC, m.CRC)
	}
	got, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("blob mismatch: %d bytes back, want %d", len(got), len(data))
	}
}

func TestBlobEmpty(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	base := KeyFromFloat(0.6)

	m, err := cl.PutBlob(ctx, base, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 0 || m.Chunks != 0 {
		t.Fatalf("empty blob manifest = %+v", m)
	}
	br, err := cl.GetBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	got, err := io.ReadAll(br)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty blob read = %d bytes, %v", len(got), err)
	}
}

func TestBlobMissing(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	if _, err := cl.GetBlob(ctx, KeyFromFloat(0.111)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing blob = %v, want ErrNotFound", err)
	}
	if err := cl.DeleteBlob(ctx, KeyFromFloat(0.111)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing blob = %v, want ErrNotFound", err)
	}
}

func TestBlobDelete(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	base := KeyFromFloat(0.33)

	data := blobData(200 << 10)
	m, err := cl.PutBlob(ctx, base, bytes.NewReader(data), WithChunkSize(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteBlob(ctx, base); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetBlob(ctx, base); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete = %v, want ErrNotFound", err)
	}
	for i := 0; i < m.Chunks; i++ {
		if _, err := cl.Get(ctx, chunkKey(base, i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("chunk %d survived DeleteBlob: %v", i, err)
		}
	}
}

func TestBlobCorruptChunk(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	base := KeyFromFloat(0.48)

	data := blobData(5 * 32 << 10)
	if _, err := cl.PutBlob(ctx, base, bytes.NewReader(data), WithChunkSize(32<<10)); err != nil {
		t.Fatal(err)
	}
	// Flip chunk 2 behind the manifest's back: the stream must fail with a
	// checksum error rather than hand back corrupt bytes.
	bad := make([]byte, 32<<10)
	if _, err := cl.Put(ctx, chunkKey(base, 2), bad); err != nil {
		t.Fatal(err)
	}
	br, err := cl.GetBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	_, err = io.ReadAll(br)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt chunk read err = %v, want a checksum failure", err)
	}
}

func TestBlobBadChunkSize(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	if _, err := cl.PutBlob(ctx, KeyFromFloat(0.5), strings.NewReader("x"), WithChunkSize(0)); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
}

func TestBlobReaderCloseMidStream(t *testing.T) {
	ctx := context.Background()
	cl := blobTestClient(t)
	base := KeyFromFloat(0.71)

	data := blobData(1 << 20)
	if _, err := cl.PutBlob(ctx, base, bytes.NewReader(data), WithChunkSize(16<<10)); err != nil {
		t.Fatal(err)
	}
	br, err := cl.GetBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10<<10)
	if _, err := io.ReadFull(br, buf); err != nil {
		t.Fatal(err)
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Read(buf); err == nil {
		t.Fatal("read after Close succeeded")
	}
	// The producer goroutine must wind down promptly after Close.
	time.Sleep(10 * time.Millisecond)
}

// TestBlobLiveCluster runs the blob layer against the live runtime on the
// in-memory fabric — same API, message-passing data path.
func TestBlobLiveCluster(t *testing.T) {
	ctx := context.Background()
	c, err := StartCluster(ctx, 8, WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.Node(0)
	base := KeyFromFloat(0.4)

	data := blobData(3 << 20)
	m, err := cl.PutBlob(ctx, base, bytes.NewReader(data), WithChunkSize(256<<10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks != 12 {
		t.Fatalf("manifest chunks = %d, want 12", m.Chunks)
	}
	br, err := c.Node(5).GetBlob(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	got, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("live blob mismatch: %d bytes back, want %d", len(got), len(data))
	}
}
