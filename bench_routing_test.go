// Routing benchmark: a Zipf hot-key read workload against a live
// in-memory cluster that has absorbed a crash, comparing the classic
// single-probe walk (α=1, caches off) against α-parallel routing with the
// route and hot-key caches on. Every link carries a fixed emulated delay
// (internal/faultnet) so message counts translate into wall time the way
// they do on a real network. Reported per sub-benchmark: lookup hops per
// op, p50/p95 latency, and the share of reads served from the hot-key
// cache after its digest check (owner-vs-cache serve ratio).
// `make bench-routing` renders this into the committed BENCH_routing.json.
package oscar

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/faultnet"
)

func BenchmarkRoutingZipf(b *testing.B) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"alpha=1-uncached", []Option{WithAlpha(1), WithRouteCache(-1, 0), WithHotKeyCache(-1)}},
		{"alpha=2-cached", []Option{WithAlpha(2), WithRouteCache(512, 30*time.Second), WithHotKeyCache(512)}},
		{"alpha=3-cached", []Option{WithAlpha(3), WithRouteCache(512, 30*time.Second), WithHotKeyCache(512)}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) { benchRoutingZipf(b, bc.opts) })
	}
}

func benchRoutingZipf(b *testing.B, opts []Option) {
	ctx := context.Background()
	const size, items = 20, 512
	fn := faultnet.New(17)
	c, err := StartCluster(ctx, size,
		append([]Option{WithSeed(17), WithReplicas(3), WithTransportWrapper(fn.Wrap)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Seed through a non-requester node so the requester's caches start
	// cold: every hit measured below was earned by the workload itself.
	key := func(i int) Key { return KeyFromFloat(float64(i)/items + 0.0007) }
	val := []byte("zipf-hot-key-benchmark-value-64-bytes-of-payload-padding-xxxxxx")
	for i := 0; i < items; i++ {
		if _, err := c.Node(1).Put(ctx, key(i), val); err != nil {
			b.Fatal(err)
		}
	}

	// Crash two peers and heal: routing now works around corpses and
	// promoted replicas — the regime the caches must stay correct in.
	_ = c.Node(5).Close()
	_ = c.Node(11).Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(ctx)
	}

	// Boot and seed on a perfect fabric, then turn the weather on: from
	// here every message pays a fixed 150µs link delay, so the hop counts
	// below are also the latency story.
	fn.SetDefault(faultnet.Faults{Latency: 150 * time.Microsecond})

	req := c.Node(0)
	// Warm the requester's caches with one read per key: the measured loop
	// is the steady state, not the one-time cold walk every variant pays.
	for i := 0; i < items; i++ {
		if _, err := req.Get(ctx, key(i)); err != nil {
			b.Fatal(err)
		}
	}

	zr := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(zr, 1.3, 1, items-1)
	before, err := req.Info(ctx)
	if err != nil {
		b.Fatal(err)
	}

	lat := make([]time.Duration, 0, b.N)
	totalCost := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key(int(zipf.Uint64()))
		start := time.Now()
		res, err := req.Get(ctx, k)
		if err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		totalCost += res.Cost
	}
	b.StopTimer()
	after, err := req.Info(ctx)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportMetric(float64(totalCost)/float64(b.N), "hops/op")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(float64(len(lat)) * p)
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.95), "p95_ms")
	served := float64(after.HotKeyCacheHits - before.HotKeyCacheHits)
	b.ReportMetric(served/float64(b.N), "cache_serve_ratio")
}
