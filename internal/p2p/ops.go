package p2p

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/sampling"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// maxRouteHops bounds an iterative lookup; only a broken ring exhausts it.
const maxRouteHops = 4096

// backtrackFan is how many backtrack candidates a lookup probes for
// liveness in parallel after a hop fails: consecutive dead peers cost one
// overlapped timeout instead of one timeout each.
const backtrackFan = 4

// ErrNoRoute reports that routing exhausted every candidate path to the
// key's owner (all useful neighbours dead or excluded, or the hop budget
// ran out). Callers distinguish it from transport failures and from
// context cancellation with errors.Is.
var ErrNoRoute = errors.New("p2p: no route")

// ErrWriteConcern reports that a write reached the key's owner but fewer
// members of owner+chain acknowledged it than the requested write
// concern. Match with errors.Is; errors.As against *WriteConcernError
// recovers the counts.
var ErrWriteConcern = errors.New("p2p: write concern not satisfied")

// WriteConcernError carries a write's ack shortfall: Acks members of
// owner+chain acknowledged, Want were required. The write is NOT rolled
// back — the owner and every acking chain member hold it, and the next
// anti-entropy pass re-fills the members that missed it — the error
// reports that durability is below the requested level at return time.
type WriteConcernError struct {
	Acks, Want int
}

func (e *WriteConcernError) Error() string {
	return fmt.Sprintf("p2p: write concern not satisfied: %d/%d acks", e.Acks, e.Want)
}

func (e *WriteConcernError) Unwrap() error { return ErrWriteConcern }

// Join enters the overlay through any existing member: it routes to the
// owner of the node's key (the future successor), splices itself between the
// owner and the owner's predecessor, migrates its arc's items, and wires its
// long-range links. The context bounds the whole sequence.
func (n *Node) Join(ctx context.Context, introducer transport.Addr) error {
	owner, _, err := n.lookupVia(ctx, introducer, n.self.Key)
	if err != nil {
		return fmt.Errorf("p2p: join: %w", err)
	}
	resp, err := n.callRetry(ctx, owner.Addr, &transport.Request{Op: transport.OpGetPred})
	if err != nil || !resp.OK {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("p2p: join: owner unreachable: %w", err)
	}
	pred := resp.Peer

	n.mu.Lock()
	n.setSuccLocked(owner)
	if pred.Addr != "" && pred.Addr != n.self.Addr {
		n.setPredLocked(pred)
	} else {
		n.setPredLocked(owner)
	}
	predKey := n.pred.Key
	// From the moment the ring learns about us (the notify below), writes
	// for the new arc can route here — racing the migrate pull still in
	// flight. Track every key written during the window so stale migrated
	// copies (extracted before those writes landed) cannot overwrite them.
	n.joinDirty = make(map[keyspace.Key]struct{})
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.joinDirty = nil
		n.mu.Unlock()
	}()

	// Announce ourselves to both sides in parallel so their pointers splice
	// eagerly (periodic Stabilize would get there too, just later).
	notify := &transport.Request{Op: transport.OpNotify, From: n.self}
	targets := []transport.Addr{owner.Addr}
	if pred.Addr != "" && pred.Addr != owner.Addr {
		targets = append(targets, pred.Addr)
	}
	for _, r := range n.fanoutRetry(ctx, targets, notify) {
		if r.Err != nil {
			// A cancelled fanout fails every call: surface the caller's
			// cancellation, never a fabricated dead-peer report.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("p2p: join: notify %s: %w", r.Addr, r.Err)
		}
	}

	// Take over the arc (pred, self] from the successor — the items, and
	// the tombstones covering it, so deletes survive the ownership change.
	// Migrate responses are chunked (extraction makes repeated calls
	// progress through the range), so a huge arc arrives in bounded frames.
	arc := keyspace.Range{Start: predKey + 1, End: n.self.Key + 1}
	n.mu.Lock()
	// A node restarting from a data directory announces the per-key
	// state it already holds: the responder still hands over the whole
	// range, but ships only the keys this node lacks — the downtime
	// delta, not the full arc.
	states := n.joinStatesLocked(arc)
	n.lastJoinItems, n.lastJoinTombs = 0, 0
	n.mu.Unlock()
	for {
		// Retrying a shed migrate is safe: overload means the request was
		// never executed, so no extracted chunk is at stake. Dropped and
		// timed-out calls get a few bounded retries too — abandoning the
		// pull mid-range is the worst outcome here: on a recovered join
		// the stale WAL state would become authoritative for the un-pulled
		// remainder while the fresh values sit stranded at the old owner,
		// and the next digest sync would push the stale copies over the
		// good replicas. A lost response after execution (TCP) has already
		// cost that chunk either way; the retry still drains the rest of
		// the range instead of stranding it.
		var mig *transport.Response
		var err error
		for attempt := 0; ; attempt++ {
			mig, err = n.callRetry(ctx, owner.Addr, &transport.Request{Op: transport.OpMigrate, Range: arc, From: n.self, States: states})
			if (err == nil && mig.OK) || attempt >= 3 || ctx.Err() != nil {
				break
			}
			select {
			case <-ctx.Done():
			case <-time.After(20 * time.Millisecond):
			}
		}
		if err != nil || mig == nil || !mig.OK {
			// Partial migration: the un-pulled remainder stays in the
			// successor's primary store, where the successor keeps serving
			// it until a future join drains the range (chunking already
			// shrank the blast radius — before it, a lost migrate response
			// dropped the entire extracted arc). See ROADMAP: migration
			// leases.
			break
		}
		if len(mig.Items) > 0 || len(mig.Tombs) > 0 {
			n.mu.Lock()
			items, tombs := mig.Items, mig.Tombs
			if len(n.joinDirty) > 0 {
				// A put or delete we acked after this chunk was extracted
				// is newer than anything in it: keep our copy (or our
				// tombstone) and drop the migrated one.
				keptItems := items[:0]
				for _, it := range items {
					if _, dirty := n.joinDirty[it.Key]; !dirty {
						keptItems = append(keptItems, it)
					}
				}
				items = keptItems
				keptTombs := tombs[:0]
				for _, tb := range tombs {
					if _, dirty := n.joinDirty[tb.Key]; !dirty {
						keptTombs = append(keptTombs, tb)
					}
				}
				tombs = keptTombs
			}
			if n.recovery.HasState() {
				// A recovered tombstone outranks a copy the responder
				// still holds: the delete may never have reached it
				// before the crash, and InsertBulk's Put would clear
				// the tombstone and resurrect the key.
				kept := items[:0]
				for _, it := range items {
					if _, dead := n.store.Tombstone(it.Key); !dead {
						kept = append(kept, it)
					}
				}
				items = kept
			}
			n.store.InsertBulk(items)
			n.store.InsertTombstones(tombs)
			n.lastJoinItems += len(items)
			n.lastJoinTombs += len(tombs)
			n.mu.Unlock()
		}
		if !mig.More {
			break
		}
	}
	if n.recovery.HasState() {
		// Recovered state may predate an arc change: promote in-arc
		// replica copies into the primary store and demote keys the new
		// arc no longer covers, so the primary store again holds exactly
		// the owned arc (the digest tree's contract).
		n.mu.Lock()
		n.relocateRecoveredLocked(arc)
		n.mu.Unlock()
	}

	return n.Rewire(ctx)
}

// Stabilize runs one round of Chord stabilisation: verify the successor,
// adopt a closer one if it appeared, refresh the successor list from the
// live successor, re-notify, and drop a dead predecessor. It finishes with
// the replication upkeep that rides on membership knowledge: promoting
// replica copies the node now owns and re-replicating the local arc when
// the first r list entries changed. Call it periodically (or after
// failures) to heal the ring.
func (n *Node) Stabilize(ctx context.Context) {
	succ := n.Succ()
	if succ.Addr == n.self.Addr {
		return
	}

	// The successor check and the predecessor liveness probe are
	// independent: overlap them so one dead peer's timeout does not delay
	// probing the other. One succ_list RPC answers both stabilisation
	// questions: the successor's predecessor and its successor list.
	pred := n.Pred()
	var (
		wg       sync.WaitGroup
		succResp *transport.Response
		succErr  error
		predDead bool
	)
	// Refresh the ring-size estimate before the exchange: fold the local
	// successor-list density estimate into the gossip value, then piggyback
	// it on the succ_list RPC (the responder folds it in and returns its
	// own — one push-pull gossip round per stabilisation, no extra
	// messages). Blends are harmonic (averaged in inverse space): the
	// density estimate k/f is unbiased in 1/est, so the gossip converges
	// to N even under heavily skewed key spacing, where an arithmetic
	// blend inherits the right skew of 1/f (see harmonicBlend). Only a
	// fully re-verified list's density is injected (see
	// succsFreshRounds): a provisional tail's gross underestimate would
	// dominate harmonic blends for many rounds after the list itself
	// healed. An exact local count — the list wraps the whole ring —
	// overrides the gossip value outright.
	n.mu.Lock()
	local, exact := n.localSizeEstimateLocked()
	switch {
	case exact:
		n.sizeEst = local
	case n.succsFreshRounds >= len(n.succs):
		if n.sizeEst == 0 {
			n.sizeEst = local
		} else {
			// The local density is re-injected gently: the verified-list
			// gate keeps junk out of the history, and the two gossip
			// exchanges per round (successor + one long-range link) do the
			// real averaging — a heavier local weight would anchor every
			// node to its neighbourhood's density instead of the ring
			// total, exactly the skew failure the harmonic mean exists to
			// fix.
			n.sizeEst = harmonicBlend(n.sizeEst, 0.875, local, 0.125)
		}
	}
	est := n.sizeEst
	n.mu.Unlock()

	wg.Add(1)
	go func() {
		defer wg.Done()
		succResp, succErr = n.readRetry(ctx, succ.Addr, &transport.Request{Op: transport.OpSuccList, SizeEst: est, From: n.self})
	}()
	if pred.Addr != n.self.Addr {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// An overloaded predecessor is alive — it shed the probe, it
			// didn't miss it. Clearing the slot would hand it to a worse
			// candidate at the next notify for no reason. The probe rides
			// out transient drops too (readRetry): a cleared slot makes
			// this node claim the whole counterclockwise circle until the
			// next notify, so a false positive here corrupts routing.
			if _, err := n.readRetry(ctx, pred.Addr, &transport.Request{Op: transport.OpPing}); err != nil && !errors.Is(err, transport.ErrOverloaded) {
				predDead = true
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return // cancelled: don't interpret aborted probes as dead peers
	}

	// Clear a dead predecessor so a live candidate can claim the slot at
	// the next notify — but only if it is still the peer we probed; a
	// notify may have installed a live predecessor during the probe.
	if predDead {
		n.mu.Lock()
		if n.pred.Addr == pred.Addr {
			n.pred = n.self
		}
		n.mu.Unlock()
	}

	if succErr != nil && errors.Is(succErr, transport.ErrOverloaded) {
		// The successor shed the exchange: it is saturated, not dead.
		// Keep the pointer and the list untouched — adopting the next
		// list entry here would splice a live peer out of the ring — and
		// let the next round retry.
	} else if succErr != nil || !succResp.OK {
		// Successor is dead: walk the successor list for a live entry.
		n.adoptNextSuccessor(ctx)
	} else {
		// Close the gossip round: fold in the successor's estimate —
		// harmonically, like every blend — unless our own count is exact
		// (a wrapped list beats gossip).
		if succResp.SizeEst > 0 {
			n.mu.Lock()
			if _, exact := n.localSizeEstimateLocked(); !exact {
				n.sizeEst = harmonicBlend(n.sizeEst, 0.5, succResp.SizeEst, 0.5)
			}
			n.mu.Unlock()
		}
		x := succResp.Peer // the successor's predecessor
		adopted := false
		if x.Addr != "" && x.Addr != n.self.Addr && x.Key.Between(n.self.Key, succ.Key) {
			if _, err := n.readRetry(ctx, x.Addr, &transport.Request{Op: transport.OpPing}); err == nil || errors.Is(err, transport.ErrOverloaded) {
				n.mu.Lock()
				n.setSuccLocked(x)
				n.mu.Unlock()
				adopted = true
			}
		}
		if !adopted {
			// Refresh the list through the verified successor: [succ] +
			// succ's own list, in ring order.
			n.refreshSuccList(succ, succResp.Peers)
		}
		_, _ = n.tr.CallCtx(ctx, n.Succ().Addr, &transport.Request{Op: transport.OpNotify, From: n.self})
	}

	// Second gossip exchange, with one random long-range link: successor
	// traffic alone diffuses estimates a hop per round, so under skewed
	// key spacing every neighbourhood converges to its *local* density
	// instead of the ring total. The small-world links are an expander —
	// one far exchange per round brings the global harmonic mean within
	// O(log N) rounds. The responder treats it as any other succ_list
	// gossip; the ring fields of its response are ignored.
	n.mu.Lock()
	var far transport.PeerRef
	if len(n.out) > 0 {
		far = n.out[n.rnd.Intn(len(n.out))]
	}
	est = n.sizeEst
	n.mu.Unlock()
	if ctx.Err() == nil && far.Addr != "" && far.Addr != n.self.Addr && est > 0 {
		if resp, err := n.tr.CallCtx(ctx, far.Addr, &transport.Request{Op: transport.OpSuccList, SizeEst: est, From: n.self}); err == nil && resp.OK && resp.SizeEst > 0 {
			n.mu.Lock()
			if _, exact := n.localSizeEstimateLocked(); !exact {
				n.sizeEst = harmonicBlend(n.sizeEst, 0.5, resp.SizeEst, 0.5)
			}
			n.mu.Unlock()
		}
	}

	n.syncReplicas(ctx)
	n.maybeGCReplicas(ctx)
	n.gcTombstones()
	n.maybeSnapshot()
}

// refreshSuccList rebuilds the successor list as head followed by head's
// own successors. Entries at or past self are dropped: on rings smaller
// than the target length the list must not wrap past the node itself.
func (n *Node) refreshSuccList(head transport.PeerRef, tail []transport.PeerRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	limit := n.succListLen()
	list := make([]transport.PeerRef, 0, limit)
	list = append(list, head)
	wrapped := false
	for _, p := range tail {
		if len(list) >= limit {
			break
		}
		if p.Addr == "" || p.Addr == n.self.Addr {
			wrapped = p.Addr == n.self.Addr // the ring wrapped back to us
			break
		}
		if p.Addr == head.Addr {
			continue
		}
		list = append(list, p)
	}
	// Only replace if the head still matches the current successor: a
	// concurrent notify may have installed a closer one while the RPC was
	// in flight.
	if n.succLocked().Addr == head.Addr {
		n.succs = list
		n.succsWrapped = wrapped
		n.succsFreshRounds++
	}
}

// adoptNextSuccessor replaces a dead successor by walking the successor
// list in ring order — the r-entry insurance maintained for exactly this
// moment. All list entries are pinged in one parallel sweep and the first
// live one (closest clockwise) takes over, with the dead prefix dropped.
// If the whole list is gone (correlated failures), the node falls back to
// the nearest alive long-range or in-link clockwise.
func (n *Node) adoptNextSuccessor(ctx context.Context) {
	list := n.SuccList()
	if len(list) == 0 {
		return
	}
	// Installs below only apply while the failed head is still current: a
	// concurrent notify may have already delivered a closer live successor
	// during the ping sweep, and that knowledge must win.
	deadHead := list[0]
	install := func(succs []transport.PeerRef) bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.succLocked().Addr != deadHead.Addr {
			return false
		}
		n.succs = succs
		n.succsWrapped = false // repaired tail: wrap knowledge is stale
		n.succsFreshRounds = 0 // re-verified from the new head over the next rounds
		return true
	}
	if len(list) > 1 {
		tail := list[1:] // entry 0 is the successor that just failed
		addrs := make([]transport.Addr, len(tail))
		for i, c := range tail {
			addrs[i] = c.Addr
		}
		results := n.fanoutReadRetry(ctx, addrs, &transport.Request{Op: transport.OpPing})
		if ctx.Err() != nil {
			return // cancelled probes are not dead list entries
		}
		for i, c := range tail {
			if !aliveResult(results[i]) || c.Addr == n.self.Addr {
				continue
			}
			if install(append([]transport.PeerRef(nil), tail[i:]...)) {
				_, _ = n.tr.CallCtx(ctx, c.Addr, &transport.Request{Op: transport.OpNotify, From: n.self})
			}
			return
		}
	}

	// The whole list died with the successor: sweep every remaining link
	// for the closest alive peer clockwise.
	n.mu.Lock()
	cands := append([]transport.PeerRef(nil), n.out...)
	for addr, key := range n.in {
		cands = append(cands, transport.PeerRef{Addr: addr, Key: key})
	}
	n.mu.Unlock()

	filtered := cands[:0]
	for _, c := range cands {
		if c.Addr != n.self.Addr {
			filtered = append(filtered, c)
		}
	}
	addrs := make([]transport.Addr, len(filtered))
	for i, c := range filtered {
		addrs[i] = c.Addr
	}
	results := n.fanoutReadRetry(ctx, addrs, &transport.Request{Op: transport.OpPing})
	if ctx.Err() != nil {
		return // cancelled sweep: keep the current (possibly stale) head
	}

	var best transport.PeerRef
	bestDist := ^uint64(0)
	for i, c := range filtered {
		if !aliveResult(results[i]) {
			continue
		}
		if d := n.self.Key.Distance(c.Key); d > 0 && d < bestDist {
			best, bestDist = c, d
		}
	}
	if best.Addr != "" && install([]transport.PeerRef{best}) {
		_, _ = n.tr.CallCtx(ctx, best.Addr, &transport.Request{Op: transport.OpNotify, From: n.self})
	}
}

// syncReplicas is the replication upkeep run at the end of every
// stabilisation round. Three duties: promote replica state whose keys fell
// into the node's own arc (it inherited them when its predecessor range
// expanded after a crash), digest-sync the replica chain whenever that
// membership — or a promotion — changed what the chain must hold, and
// garbage-collect replica state stranded outside the chains this node still
// serves. Re-replication is incremental: instead of re-pushing the whole
// arc, the owner compares Merkle-style digests with each chain member and
// ships only the missing or stale keys, so repair traffic is proportional
// to the divergence, not the shard. A target that misses one round is
// caught by the next membership change or anti-entropy tick.
func (n *Node) syncReplicas(ctx context.Context) {
	if n.cfg.Replicas <= 1 {
		return
	}
	n.mu.Lock()
	arc, haveArc := n.arcLocked()
	promoted := 0
	if haveArc {
		// Promote inherited items — absent keys only: a primary copy, when
		// present, is at least as fresh as any replica of it, and a primary
		// tombstone means the key is deleted, not missing.
		for _, it := range n.replStore.ExtractRange(arc) {
			_, live := n.store.Get(it.Key)
			_, dead := n.store.Tombstone(it.Key)
			if !live && !dead {
				n.store.Put(it.Key, it.Value)
				promoted++
			}
		}
		// Promote inherited delete knowledge: the previous owner's deletes
		// must keep holding once this node answers for the arc. A live
		// primary copy wins (it can only postdate the replica's tombstone
		// via a fresh write).
		for _, tb := range n.replStore.ExtractTombstones(arc) {
			if _, live := n.store.Get(tb.Key); !live {
				n.store.SetTombstone(tb.Key, tb.At)
			}
		}
	}
	targets := n.replicaTargetsLocked()
	changed := promoted > 0 || len(targets) != len(n.lastChain)
	if !changed {
		for i, p := range targets {
			if n.lastChain[i] != p.Addr {
				changed = true
				break
			}
		}
	}
	if changed {
		chain := make([]transport.Addr, len(targets))
		for i, p := range targets {
			chain[i] = p.Addr
		}
		n.lastChain = chain
		// The first-r chain this node replicates to changed: cached
		// resolutions carry chains for read fallback, so the membership
		// shift makes all of them suspect.
		n.routes.Flush()
	}
	n.mu.Unlock()

	if !changed || len(targets) == 0 || !haveArc {
		return
	}
	total := n.syncChain(ctx, targets, arc)
	n.mu.Lock()
	n.stats.add(total)
	n.mu.Unlock()
}

// CountPeers walks the ring clockwise via successor pointers and returns
// the number of peers when the walk returns home within max hops, and -1
// when it cannot (a ring larger than max, or a break mid-walk). It is an
// exact count on small healthy rings and a deliberate "unknown" otherwise.
func (n *Node) CountPeers(ctx context.Context, max int) int {
	cur := n.Succ()
	count := 1 // self
	for hops := 0; hops < max; hops++ {
		if cur.Addr == n.self.Addr {
			return count
		}
		if ctx.Err() != nil {
			return -1
		}
		resp, err := n.readRetry(ctx, cur.Addr, &transport.Request{Op: transport.OpGetSucc})
		if err != nil || !resp.OK || resp.Peer.Addr == "" || resp.Peer.Addr == cur.Addr {
			return -1
		}
		count++
		cur = resp.Peer
	}
	if cur.Addr == n.self.Addr {
		return count
	}
	return -1
}

// Lookup routes from this node to the owner of key. It returns the owner and
// the message cost (routing steps plus dead-peer probes). Cancelling the
// context aborts the walk between hops with ctx.Err().
func (n *Node) Lookup(ctx context.Context, key keyspace.Key) (transport.PeerRef, int, error) {
	owner, _, cost, err := n.lookupChain(ctx, n.self.Addr, key)
	return owner, cost, err
}

// lookupVia routes starting at a given peer; see lookupChain.
func (n *Node) lookupVia(ctx context.Context, start transport.Addr, key keyspace.Key) (transport.PeerRef, int, error) {
	owner, _, cost, err := n.lookupChain(ctx, start, key)
	return owner, cost, err
}

// lookupChain iteratively routes starting at a given peer. The query
// carries the knowledge it gathers: peers discovered dead (or routeless
// for this key) go into an exclude set that visited peers honour, and the
// walk backtracks when its current peer is exhausted — the live analogue
// of the simulator's backtracking router. Backtrack candidates are
// liveness-probed in parallel, so a run of dead peers costs one overlapped
// timeout instead of a serial timeout each.
//
// With Config.Alpha > 1 each hop is an α-way step: the current peer and
// up to α-1 backtrack candidates are probed concurrently with the same
// find_owner query (over fanoutReadRetry, so every leg rides the
// overload/read-retry contracts). The primary's answer drives the walk
// exactly as at α=1 — same cost accounting, same ctx-cancel points, same
// typed ErrOverloaded surface — and the extra answers are folded in: a
// Found is a terminal answer held in reserve, a next-hop suggestion is an
// instant detour if the primary turns out dead (skipping the backtrack
// ping round entirely), dead extras move to the exclude set, and live
// ones return to the stack. α buys a shorter tail under churn for α-1
// extra messages per hop.
//
// Alongside the owner it returns the owner's replica chain (the successor
// list entries holding copies of its arc), piggybacked on the terminal
// find_owner response; reads fall back through it when the owner dies
// between routing and the data RPC.
//
// The context is checked before every hop and a transport failure caused by
// cancellation surfaces as ctx.Err() rather than being mistaken for a dead
// peer, so a cancelled multi-hop walk stops issuing RPCs immediately.
func (n *Node) lookupChain(ctx context.Context, start transport.Addr, key keyspace.Key) (transport.PeerRef, []transport.PeerRef, int, error) {
	cur := start
	cost := 0
	var bad []transport.Addr   // dead or routeless peers
	var stack []transport.Addr // peers to backtrack to
	for hop := 0; hop < maxRouteHops; hop++ {
		if err := ctx.Err(); err != nil {
			return transport.PeerRef{}, nil, cost, err
		}
		req := &transport.Request{Op: transport.OpFindOwner, Key: key, Exclude: bad}
		var resp *transport.Response
		var err error
		// Knowledge folded from the α-1 extra probes of this hop.
		var foundPeer transport.PeerRef // a Found answer held in reserve
		var foundChain []transport.PeerRef
		haveFound := false
		var detour transport.Addr // a live extra's next-hop suggestion
		if k := n.cfg.Alpha - 1; k > 0 && len(stack) > 0 {
			if k > len(stack) {
				k = len(stack)
			}
			extras := append([]transport.Addr(nil), stack[len(stack)-k:]...)
			stack = stack[:len(stack)-k]
			probes := append([]transport.Addr{cur}, extras...)
			results := n.fanoutReadRetry(ctx, probes, req)
			resp, err = results[0].Resp, results[0].Err
			cost += k // the extra probes are messages too
			if cerr := ctx.Err(); cerr != nil {
				return transport.PeerRef{}, nil, cost, cerr
			}
			// Fold shallowest→deepest so the deepest (closest to the
			// target) wins conflicts, and stack order is preserved on
			// re-push.
			for i, r := range results[1:] {
				switch {
				case r.OK() && r.Resp.Found:
					foundPeer, foundChain, haveFound = r.Resp.Peer, r.Resp.Peers, true
					stack = append(stack, extras[i]) // still a live waypoint
				case r.OK():
					if s := r.Resp.Peer.Addr; s != "" && s != cur && !addrIn(bad, s) {
						detour = s
					}
					stack = append(stack, extras[i])
				case errors.Is(r.Err, transport.ErrOverloaded):
					stack = append(stack, extras[i]) // alive, just shedding
				default:
					bad = append(bad, extras[i]) // dead or routeless
				}
			}
		} else {
			resp, err = n.readRetry(ctx, cur, req)
		}
		if err != nil || !resp.OK {
			if cerr := ctx.Err(); cerr != nil {
				return transport.PeerRef{}, nil, cost, cerr
			}
			if errors.Is(err, transport.ErrOverloaded) {
				// The hop shed both the call and its retry. The peer is
				// alive — excluding it would route every later query around
				// a functioning node — so surface the backpressure and let
				// the caller decide to retry the whole operation. An extra's
				// Found still completes the lookup: the owner answered, the
				// congested waypoint no longer matters.
				if haveFound {
					return foundPeer, foundChain, cost, nil
				}
				return transport.PeerRef{}, nil, cost, fmt.Errorf("p2p: lookup via %s: %w", cur, err)
			}
			cost++ // wasted message (dead probe) or exhausted peer
			bad = append(bad, cur)
			if haveFound {
				return foundPeer, foundChain, cost, nil
			}
			if detour != "" {
				// An α sibling already told us where it would go next:
				// take that hop instead of a backtrack ping round. The
				// message was paid for above.
				cur = detour
				continue
			}
			next, probeCost := n.backtrack(ctx, &stack, &bad)
			cost += probeCost
			if cerr := ctx.Err(); cerr != nil {
				return transport.PeerRef{}, nil, cost, cerr
			}
			if next == "" {
				return transport.PeerRef{}, nil, cost, fmt.Errorf("%w to %v", ErrNoRoute, key)
			}
			cur = next
			continue
		}
		if resp.Found {
			return resp.Peer, resp.Peers, cost, nil
		}
		if haveFound {
			// A deeper sibling already reached the owner; the primary only
			// offered another hop. Terminal beats progress.
			return foundPeer, foundChain, cost, nil
		}
		stack = append(stack, cur)
		cur = resp.Peer.Addr
		cost++
	}
	return transport.PeerRef{}, nil, cost, fmt.Errorf("%w to %v: hop budget exhausted", ErrNoRoute, key)
}

// addrIn reports whether a is in the set.
func addrIn(set []transport.Addr, a transport.Addr) bool {
	for _, x := range set {
		if x == a {
			return true
		}
	}
	return false
}

// backtrack returns the deepest live peer on the stack, probing up to
// backtrackFan candidates per round with a parallel ping fanout. Peers
// found dead move to the query's exclude set; live-but-shallower peers go
// back on the stack for later rounds. It returns "" when the stack is
// exhausted, plus the number of probe messages spent.
func (n *Node) backtrack(ctx context.Context, stack *[]transport.Addr, bad *[]transport.Addr) (transport.Addr, int) {
	cost := 0
	for len(*stack) > 0 {
		if ctx.Err() != nil {
			return "", cost
		}
		k := backtrackFan
		if k > len(*stack) {
			k = len(*stack)
		}
		cands := append([]transport.Addr(nil), (*stack)[len(*stack)-k:]...)
		*stack = (*stack)[:len(*stack)-k]
		results := n.fanoutReadRetry(ctx, cands, &transport.Request{Op: transport.OpPing})
		cost += k
		if ctx.Err() != nil {
			return "", cost // cancelled probes prove nothing about the peers
		}
		chosen := -1
		for i := k - 1; i >= 0; i-- { // deepest (most recently pushed) first
			if aliveResult(results[i]) {
				chosen = i
				break
			}
		}
		for i := 0; i < k; i++ {
			switch {
			case i == chosen:
			case aliveResult(results[i]):
				*stack = append(*stack, cands[i]) // alive: keep as a fallback
			default:
				*bad = append(*bad, cands[i])
			}
		}
		if chosen >= 0 {
			return cands[chosen], cost
		}
	}
	return "", cost
}

// resolveRead resolves key → owner + replica chain for a read path,
// consulting the route cache first. A hit is validated with one direct
// find_owner to the cached owner: Found from the gate that terminates
// every real walk confirms the resolution and refreshes the chain in
// the same RPC, so a multi-hop walk collapses to one message. Anything
// else falls back to the full walk — an overloaded owner keeps its
// entry (alive, just shedding), any other answer invalidates it. A
// successful resolve (either path) re-primes the cache.
func (n *Node) resolveRead(ctx context.Context, key keyspace.Key) (transport.PeerRef, []transport.PeerRef, int, error) {
	cost := 0
	if ent, ok := n.routes.Get(key); ok {
		cost++
		resp, err := n.readRetry(ctx, ent.owner.Addr, &transport.Request{Op: transport.OpFindOwner, Key: key})
		if cerr := ctx.Err(); cerr != nil {
			return transport.PeerRef{}, nil, cost, cerr
		}
		if err == nil && resp.OK && resp.Found && resp.Peer.Addr == ent.owner.Addr {
			n.routeHits.Add(1)
			n.routes.Put(key, routeEntry{owner: resp.Peer, chain: resp.Peers})
			return resp.Peer, resp.Peers, cost, nil
		}
		if !errors.Is(err, transport.ErrOverloaded) {
			n.routes.Invalidate(key)
		}
	}
	if n.routes != nil {
		n.routeMisses.Add(1)
	}
	owner, chain, c, err := n.lookupChain(ctx, n.self.Addr, key)
	cost += c
	if err == nil {
		n.routes.Put(key, routeEntry{owner: owner, chain: chain})
	}
	return owner, chain, cost, err
}

// OpResult reports one data-layer operation executed at the key's owner.
type OpResult struct {
	// Owner is the peer that served the operation.
	Owner transport.PeerRef
	// Cost is the message cost: routing plus the data RPC itself.
	Cost int
	// Replaced reports whether a Put overwrote an existing value.
	Replaced bool
	// Found reports whether the item existed (Get, Delete).
	Found bool
	// Value is the stored value (Get).
	Value []byte
	// Acks is the number of stores that acknowledged a write (the owner
	// plus replica chain members), as reported on the wire by the data
	// and replicate responses — the observable a write concern is
	// enforced against.
	Acks int
}

// dataOp routes to the owner of key and executes one data RPC there. The
// raw response is returned alongside so write ops can read the replica
// chain the owner piggybacks on it.
//
// The route cache short-circuits the walk: a cached owner is tried
// directly, with no validation RPC — the write ops' own ownership gate
// is the validation. A stale entry earns a typed errNotOwner (or an
// unreachable peer), which invalidates the entry and falls back to the
// full walk without consuming one of the owner-moved attempts: cache
// staleness is the cache's fault, not ring churn.
//
// A "not owner" rejection means the arc moved between the routing step
// and the data RPC (a joiner spliced in): the op was definitely not
// executed, so re-routing and retrying is safe for writes. The retry is
// bounded and paced — one splice is a few notifies away from visible.
func (n *Node) dataOp(ctx context.Context, key keyspace.Key, req *transport.Request) (OpResult, *transport.Response, error) {
	const ownerMoves = 3
	var res OpResult
	cacheTried := false
	for attempt := 0; ; {
		var owner transport.PeerRef
		fromCache := false
		if !cacheTried && attempt == 0 {
			cacheTried = true
			if ent, ok := n.routes.Get(key); ok {
				owner, fromCache = ent.owner, true
			} else if n.routes != nil {
				n.routeMisses.Add(1)
			}
		}
		if owner.Addr == "" {
			o, _, cost, err := n.lookupChain(ctx, n.self.Addr, key)
			res.Cost += cost
			if err != nil {
				return res, nil, err
			}
			owner = o
		}
		res.Owner = owner
		res.Cost++
		resp, err := n.callRetry(ctx, owner.Addr, req)
		if err == nil && resp != nil && !resp.OK && resp.Err == errNotOwner {
			n.routes.Invalidate(key)
			if fromCache {
				// Stale cache entry, not a mid-op arc move: re-resolve for
				// free via the full walk.
				n.routeMisses.Add(1)
				continue
			}
			if attempt < ownerMoves {
				attempt++
				select {
				case <-ctx.Done():
					return res, nil, ctx.Err()
				case <-time.After(5 * time.Millisecond):
				}
				continue
			}
			return res, nil, fmt.Errorf("p2p: %s: owner of key moved during the op", req.Op)
		}
		if err != nil || !resp.OK {
			if cerr := ctx.Err(); cerr != nil {
				return res, nil, cerr
			}
			if fromCache && !errors.Is(err, transport.ErrOverloaded) {
				// The cached owner is gone. Drop every resolution pointing
				// at it and re-resolve via the full walk, which will route
				// around the corpse.
				n.routeMisses.Add(1)
				dead := owner.Addr
				n.routes.InvalidateMatching(func(_ keyspace.Key, e routeEntry) bool {
					return e.owner.Addr == dead
				})
				continue
			}
			if errors.Is(err, transport.ErrOverloaded) {
				return res, nil, fmt.Errorf("p2p: %s: owner overloaded: %w", req.Op, err)
			}
			return res, nil, fmt.Errorf("p2p: %s: owner unreachable: %w", req.Op, err)
		}
		if fromCache {
			n.routeHits.Add(1)
		}
		n.routes.Put(key, routeEntry{owner: owner, chain: resp.Peers})
		res.Replaced, res.Found, res.Value = resp.Found, resp.Found, resp.Value
		return res, resp, nil
	}
}

// pushReplicas sends one replication request to every chain target in
// parallel, returning the number of messages spent and how many targets
// acknowledged the push (summed from the wire ack counts, so a misbehaving
// transport handing back a nil or not-OK response never counts). Failures
// are tolerated at this layer — the caller decides whether the ack count
// satisfies its write concern — and a target that missed a push is
// re-filled by the owner's next membership-change or anti-entropy re-sync.
func (n *Node) pushReplicas(ctx context.Context, targets []transport.PeerRef, req *transport.Request) (msgs, acks int) {
	if len(targets) == 0 {
		return 0, 0
	}
	addrs := make([]transport.Addr, len(targets))
	for i, p := range targets {
		addrs[i] = p.Addr
	}
	for _, r := range n.fanoutRetry(ctx, addrs, req) {
		if r.OK() {
			acks += r.Resp.Acks
		}
	}
	return len(addrs), acks
}

// Put stores value under key at the key's owner, then pushes copies to the
// owner's replica chain (the owner's replication factor governs how many),
// under the node's configured default write concern. The pushes run in
// parallel and are awaited — when Put returns, every reachable chain
// member holds the copy — and the collected acks are checked against the
// write concern; see PutW.
func (n *Node) Put(ctx context.Context, key keyspace.Key, value []byte) (OpResult, error) {
	return n.PutW(ctx, key, value, 0)
}

// PutW is Put with an explicit write concern w: unless at least w members
// of owner+chain acknowledged the write, it returns ErrWriteConcern (as a
// *WriteConcernError carrying acks-got/acks-wanted). The write is not
// rolled back on a shortfall — it holds wherever it was acked and
// anti-entropy re-fills the rest — so the error is a durability report,
// not an undo. w <= 0 uses the node's configured default
// (Config.WriteConcern); w = 1 is the owner's ack alone. A cancelled
// context surfaces as the context's error, never as a fabricated
// write-concern failure.
func (n *Node) PutW(ctx context.Context, key keyspace.Key, value []byte, w int) (OpResult, error) {
	res, resp, err := n.dataOp(ctx, key, &transport.Request{Op: transport.OpPut, Key: key, Value: value, From: n.self})
	if err != nil {
		return res, err
	}
	res.Acks = resp.Acks
	msgs, acks := n.pushReplicas(ctx, resp.Peers, &transport.Request{
		Op: transport.OpReplicate, Items: []storage.Item{{Key: key, Value: value}}, From: n.self,
	})
	res.Cost += msgs
	res.Acks += acks
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	if w <= 0 {
		w = n.cfg.WriteConcern
	}
	if res.Acks < w {
		return res, &WriteConcernError{Acks: res.Acks, Want: w}
	}
	return res, nil
}

// hotGet tries to serve a read from the requester-side hot-key cache.
// The cached copy is never trusted on its own: one OpKeyHash to the
// cached owner fetches the key's current item hash, and only a matching
// digest serves the copy — one small RPC instead of a routing walk plus
// a value transfer. The check needs a cached route as well as a cached
// value; lacking either, the full path runs (and repopulates both).
//
// served reports the read was answered here: with the value on a hash
// match (from the owner, or from a chain member once the owner proved
// unreachable), or as an authoritative not-found when the validator
// reports a tombstone. Any disagreement — hash mismatch, no record,
// moved arc — drops the stale state and lets the full path decide, so
// the cache can shed load but never change an answer.
func (n *Node) hotGet(ctx context.Context, key keyspace.Key) (OpResult, bool, error) {
	if n.hot == nil {
		return OpResult{}, false, nil
	}
	val, ok := n.hot.Get(key)
	if !ok {
		n.hotMisses.Add(1)
		return OpResult{}, false, nil
	}
	ent, ok := n.routes.Get(key)
	if !ok {
		n.hotMisses.Add(1)
		return OpResult{}, false, nil
	}
	res := OpResult{Owner: ent.owner, Cost: 1}
	resp, err := n.readRetry(ctx, ent.owner.Addr, &transport.Request{Op: transport.OpKeyHash, Key: key})
	if cerr := ctx.Err(); cerr != nil {
		return res, true, cerr
	}
	switch {
	case err == nil && resp.OK && resp.Found:
		if len(resp.Digest) == 1 && resp.Digest[0] == antientropy.ItemHash(key, val) {
			n.hotHits.Add(1)
			n.routes.Put(key, routeEntry{owner: ent.owner, chain: resp.Peers})
			res.Found, res.Value = true, val
			return res, true, nil
		}
		// The owner holds a different value: our copy lost. Evict and
		// take the full path to fetch the fresh one.
		n.hot.Invalidate(key)

	case err == nil && resp.OK && resp.Deleted:
		// Authoritative tombstone behind the ownership gate: the read is
		// answered — not-found — and the stale copy dies.
		n.hot.Invalidate(key)
		n.hotMisses.Add(1)
		return res, true, nil

	case err == nil && !resp.OK && resp.Err == errNotOwner:
		// The arc moved: the cached route is stale (the copy may still be
		// good — the next full read revalidates it against the new owner).
		n.routes.Invalidate(key)

	case err != nil && !errors.Is(err, transport.ErrOverloaded):
		// Owner unreachable: ask the cached replica chain for the hash —
		// the same authority order the full read's fallback walk uses.
		for _, t := range ent.chain {
			res.Cost++
			r2, e2 := n.callRetry(ctx, t.Addr, &transport.Request{Op: transport.OpKeyHashChain, Key: key})
			if cerr := ctx.Err(); cerr != nil {
				return res, true, cerr
			}
			if e2 != nil || !r2.OK {
				continue
			}
			if r2.Found {
				if len(r2.Digest) == 1 && r2.Digest[0] == antientropy.ItemHash(key, val) {
					n.hotHits.Add(1)
					res.Owner, res.Found, res.Value = t, true, val
					return res, true, nil
				}
				break // a fresher value exists: full path fetches it
			}
			if r2.Deleted {
				n.hot.Invalidate(key)
				n.hotMisses.Add(1)
				return res, true, nil
			}
			// No record here: try the next chain member.
		}
		// Nothing confirmed the copy; the cached owner is likely dead.
		dead := ent.owner.Addr
		n.routes.InvalidateMatching(func(_ keyspace.Key, e routeEntry) bool {
			return e.owner.Addr == dead
		})
	}
	// Overloaded owner falls through here too: caches kept, full path
	// (with its own overload surface) decides.
	n.hotMisses.Add(1)
	return OpResult{}, false, nil
}

// Get fetches the value under key from the key's owner. A missing item is
// not an error: Found reports existence. When the owner is unreachable
// (it crashed between routing and the data RPC) the read falls back
// through the owner's replica chain, so a crash loses routing entries but
// no data.
//
// The owner's authority is tombstone-scoped: a miss backed by a tombstone
// is an authoritative delete and ends the read, while a miss with no
// record at all (an owner that lost or never inherited state) falls back
// through the chain like an unreachable owner would. The same rule holds
// along the chain — the first tombstone ends the read as deleted, so a
// staler copy further down can never resurrect the key. When a replica then
// answers with the value, the read nudges the live-but-stale owner to
// read-repair: the owner digest-pulls the arc's divergence back from that
// replica and re-syncs its trailing chain, asynchronously and counted in
// its anti-entropy stats — fallback reads heal the data path they expose.
func (n *Node) Get(ctx context.Context, key keyspace.Key) (OpResult, error) {
	if res, served, err := n.hotGet(ctx, key); served {
		return res, err
	}
	owner, chain, cost, err := n.resolveRead(ctx, key)
	if err != nil {
		return OpResult{Cost: cost}, err
	}
	res := OpResult{Owner: owner, Cost: cost}
	req := &transport.Request{Op: transport.OpGet, Key: key, From: n.self}
	ownerStale := false // the owner answered with no copy and no tombstone
	answered := false
	var lastErr error
	for i, t := range append([]transport.PeerRef{owner}, chain...) {
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		res.Cost++
		call := n.callRetry
		if i == 0 {
			// The owner read rides out transient unreachability before the
			// chain walk: with r=1 there are no replicas, and a chain
			// member honestly reporting "absent" would turn one lost
			// packet into a wrong not-found.
			call = n.readRetry
		}
		resp, err := call(ctx, t.Addr, req)
		if err != nil || !resp.OK {
			if cerr := ctx.Err(); cerr != nil {
				return res, cerr
			}
			// Unreachable — or still shedding after the retry. Either way
			// the right move for a read is the same: fall back along the
			// chain, which holds the same data.
			lastErr = err
			continue
		}
		if resp.Found {
			res.Owner, res.Found, res.Value = t, true, resp.Value
			n.hot.Put(key, resp.Value)
			if i > 0 && ownerStale {
				// A replica holds state the live owner has no record of:
				// one cheap nudge makes the owner pull the divergence.
				res.Cost++
				_, _ = n.tr.CallCtx(ctx, owner.Addr, &transport.Request{Op: transport.OpReadRepair, From: t})
			}
			return res, nil
		}
		if i == 0 {
			if resp.Deleted {
				// Tombstoned at the owner: authoritatively deleted, no
				// chain walk — a replica's stale copy must not resurrect.
				n.hot.Invalidate(key)
				return res, nil
			}
			ownerStale = true
			continue
		}
		if resp.Deleted {
			// A chain tombstone is delete knowledge too: with the owner
			// dead or recordless it ends the read, or a staler copy
			// further down the chain would resurrect the key. A stale
			// owner is nudged so it adopts the tombstone as well.
			n.hot.Invalidate(key)
			if ownerStale {
				res.Cost++
				_, _ = n.tr.CallCtx(ctx, owner.Addr, &transport.Request{Op: transport.OpReadRepair, From: t})
			}
			return res, nil
		}
		answered = true // a live replica without the item: keep walking
	}
	if answered || ownerStale {
		// Every reachable copy agrees the item is absent.
		return res, nil
	}
	return res, fmt.Errorf("p2p: get: owner and replicas unreachable: %w", lastErr)
}

// Delete removes the item under key at the key's owner and propagates the
// delete along the owner's replica chain, under the node's configured
// default write concern. Found reports whether it existed.
func (n *Node) Delete(ctx context.Context, key keyspace.Key) (OpResult, error) {
	return n.DeleteW(ctx, key, 0)
}

// DeleteW is Delete with an explicit write concern w, under the same
// contract as PutW: fewer than w acks from owner+chain returns
// ErrWriteConcern while the delete holds wherever it was acked (and its
// tombstone propagates to the rest via anti-entropy).
func (n *Node) DeleteW(ctx context.Context, key keyspace.Key, w int) (OpResult, error) {
	res, resp, err := n.dataOp(ctx, key, &transport.Request{Op: transport.OpDelete, Key: key, From: n.self})
	if err != nil {
		return res, err
	}
	res.Acks = resp.Acks
	msgs, acks := n.pushReplicas(ctx, resp.Peers, &transport.Request{
		Op: transport.OpReplicateDel, Key: key, From: n.self,
	})
	res.Cost += msgs
	res.Acks += acks
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	if w <= 0 {
		w = n.cfg.WriteConcern
	}
	if res.Acks < w {
		return res, &WriteConcernError{Acks: res.Acks, Want: w}
	}
	return res, nil
}

// RangeResult reports one range query: the matching items in clockwise key
// order, the total message cost, and how many peers' shards were scanned.
type RangeResult struct {
	Items        []storage.Item
	Cost         int
	PeersScanned int
}

// RangeQuery collects up to limit items with keys in [start, end), walking
// shards clockwise from the owner of start. limit <= 0 means unlimited.
// Cancelling the context aborts the scan between pages. It is a buffering
// wrapper over a ScanSession: large results should use the session (or the
// public Scan API) directly and stream page by page.
func (n *Node) RangeQuery(ctx context.Context, start, end keyspace.Key, limit int) (RangeResult, error) {
	var res RangeResult
	rg := keyspace.Range{Start: start, End: end}
	s := n.NewScanSession(start, end)
	cursor := start
	for {
		want := 0
		if limit > 0 {
			want = limit - len(res.Items)
			if want <= 0 {
				return res, nil
			}
		}
		chunk, err := s.NextPage(ctx, cursor, want)
		res.Cost += chunk.Cost
		res.PeersScanned += chunk.Peers
		if err != nil {
			return res, err
		}
		res.Items = append(res.Items, chunk.Items...)
		if limit > 0 && len(res.Items) >= limit {
			res.Items = res.Items[:limit]
			return res, nil
		}
		if chunk.Done {
			return res, nil
		}
		if len(chunk.Items) == 0 {
			// NextPage only returns an empty non-done chunk after advancing
			// shards internally; the cursor is unchanged.
			continue
		}
		cursor = chunk.Items[len(chunk.Items)-1].Key + 1
		if !rg.Contains(cursor) {
			return res, nil
		}
	}
}

// Rewire rebuilds the node's long-range links: release current ones,
// estimate partitions by remote restricted walks, then acquire up to MaxOut
// links with the admission + power-of-two rules. It returns the number of
// links established.
func (n *Node) Rewire(ctx context.Context) error {
	// Caller-cancel before any work: keep the current links instead of
	// dropping them ahead of a rebuild that cannot run.
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	old := n.out
	n.out = nil
	n.mu.Unlock()
	if len(old) > 0 {
		addrs := make([]transport.Addr, len(old))
		for i, ref := range old {
			addrs[i] = ref.Addr
		}
		// Releases are fire-and-forget: broadcast them in parallel.
		transport.Broadcast(ctx, n.tr, addrs, &transport.Request{Op: transport.OpUnlink, From: n.self})
	}

	borders := n.discoverPartitions(ctx)
	if len(borders) == 0 {
		return ctx.Err()
	}
	var out []transport.PeerRef
	for slot := 0; slot < n.cfg.MaxOut; slot++ {
		if err := ctx.Err(); err != nil {
			break
		}
		cand := n.pickCandidate(ctx, borders, out)
		if cand.Addr == "" {
			continue
		}
		resp, err := n.callRetry(ctx, cand.Addr, &transport.Request{Op: transport.OpLink, From: n.self})
		if err != nil || !resp.OK {
			continue // refused, shedding, or dead: the slot stays open until next rewire
		}
		out = append(out, cand)
	}
	n.mu.Lock()
	n.out = out
	n.mu.Unlock()
	return ctx.Err()
}

// discoverPartitions estimates the logarithmic partition borders via remote
// walks, mirroring partition.BuildSampled.
func (n *Node) discoverPartitions(ctx context.Context) []keyspace.Key {
	succ := n.Succ()
	if succ.Addr == n.self.Addr {
		return nil
	}
	var borders []keyspace.Key
	prev := n.self.Key
	for level := 0; level < n.cfg.MaxLevels; level++ {
		if ctx.Err() != nil {
			break
		}
		remaining := keyspace.Range{Start: n.self.Key, End: prev}
		keys := n.sampleKeys(ctx, remaining, n.cfg.Samples, n.cfg.WalkSteps)
		// Drop our own samples; see partition.BuildSampled.
		filtered := keys[:0]
		for _, k := range keys {
			if k != n.self.Key {
				filtered = append(filtered, k)
			}
		}
		if len(filtered) == 0 {
			break
		}
		m := sampling.MedianFrom(n.self.Key, filtered)
		if m == n.self.Key {
			break
		}
		if level > 0 && !remaining.Contains(m) {
			break
		}
		borders = append(borders, m)
		prev = m
		if m == succ.Key {
			break
		}
	}
	if len(borders) > 0 && borders[len(borders)-1] != succ.Key {
		last := keyspace.Range{Start: n.self.Key, End: borders[len(borders)-1]}
		if last.Contains(succ.Key) {
			borders = append(borders, succ.Key)
		}
	}
	return borders
}

// sampleKeys draws approximately-uniform peer keys from rg with a chained
// remote Metropolis–Hastings walk (client-driven: the node fetches each
// position's neighbour list and steps itself).
func (n *Node) sampleKeys(ctx context.Context, rg keyspace.Range, count, steps int) []keyspace.Key {
	n.mu.Lock()
	cur := n.self
	curNbrs := n.neighborsLocked(rg).Peers
	rnd := n.rnd
	n.mu.Unlock()

	var out []keyspace.Key
	moves := 0
	for len(out) < count {
		if ctx.Err() != nil {
			break
		}
		// One lazy MH step (mirrors sampling.Walker).
		if moves++; moves > count*steps*4 {
			break // walk wedged (tiny or partitioned range): return what we have
		}
		if rnd.Float64() < 1.0/3 {
			// lazy: stay
		} else if len(curNbrs) > 0 {
			next := curNbrs[rnd.Intn(len(curNbrs))]
			resp, err := n.tr.CallCtx(ctx, next.Addr, &transport.Request{Op: transport.OpNeighbors, Range: rg})
			if err == nil && resp.OK && resp.Degree > 0 {
				dv, du := len(curNbrs), resp.Degree
				if du <= dv || rnd.Float64() < float64(dv)/float64(du) {
					cur, curNbrs = next, resp.Peers
				}
			}
		}
		if moves%steps == 0 {
			out = append(out, cur.Key)
		}
	}
	return out
}

// pickCandidate draws a link candidate: uniform partition, uniform peer
// inside it (remote walk), with the power-of-two choice across two draws.
// The two draws — and the two load probes deciding between them — are
// independent multi-RPC chains, so they run in parallel.
func (n *Node) pickCandidate(ctx context.Context, borders []keyspace.Key, existing []transport.PeerRef) transport.PeerRef {
	if n.cfg.DisablePowerOfTwo {
		return n.pickOne(ctx, borders, existing)
	}
	var first, second transport.PeerRef
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		first = n.pickOne(ctx, borders, existing)
	}()
	go func() {
		defer wg.Done()
		second = n.pickOne(ctx, borders, existing)
	}()
	wg.Wait()
	switch {
	case first.Addr == "":
		return second
	case second.Addr == "" || second.Addr == first.Addr:
		return first
	default:
		var lf, ls float64
		var okf, oks bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			lf, okf = n.relativeLoad(ctx, first)
		}()
		go func() {
			defer wg.Done()
			ls, oks = n.relativeLoad(ctx, second)
		}()
		wg.Wait()
		if oks && (!okf || ls < lf) {
			return second
		}
		return first
	}
}

// relativeLoad fetches InDeg/MaxIn of a candidate.
func (n *Node) relativeLoad(ctx context.Context, ref transport.PeerRef) (float64, bool) {
	resp, err := n.tr.CallCtx(ctx, ref.Addr, &transport.Request{Op: transport.OpInfo})
	if err != nil || !resp.OK || resp.MaxIn <= 0 {
		return 1, false
	}
	return float64(resp.InDeg) / float64(resp.MaxIn), true
}

// pickOne draws one candidate from a uniformly chosen partition.
func (n *Node) pickOne(ctx context.Context, borders []keyspace.Key, existing []transport.PeerRef) transport.PeerRef {
	i := n.rnd.Intn(len(borders))
	var rg keyspace.Range
	if i == 0 {
		rg = keyspace.Range{Start: borders[0], End: n.self.Key}
	} else {
		rg = keyspace.Range{Start: borders[i], End: borders[i-1]}
	}
	// Enter the partition by routing to its lower border, then walk.
	entry, _, err := n.Lookup(ctx, rg.Start)
	if err != nil || !rg.Contains(entry.Key) {
		return transport.PeerRef{}
	}
	cand := n.walkOnce(ctx, entry, rg, n.cfg.PickSteps)
	if cand.Addr == n.self.Addr {
		return transport.PeerRef{}
	}
	for _, ex := range existing {
		if ex.Addr == cand.Addr {
			return transport.PeerRef{}
		}
	}
	return cand
}

// walkOnce performs one bounded remote walk from entry within rg.
func (n *Node) walkOnce(ctx context.Context, entry transport.PeerRef, rg keyspace.Range, steps int) transport.PeerRef {
	cur := entry
	resp, err := n.tr.CallCtx(ctx, cur.Addr, &transport.Request{Op: transport.OpNeighbors, Range: rg})
	if err != nil || !resp.OK {
		return transport.PeerRef{}
	}
	nbrs := resp.Peers
	rnd := n.rnd
	for s := 0; s < steps; s++ {
		if ctx.Err() != nil {
			break
		}
		if rnd.Float64() < 1.0/3 || len(nbrs) == 0 {
			continue
		}
		next := nbrs[rnd.Intn(len(nbrs))]
		r2, err := n.tr.CallCtx(ctx, next.Addr, &transport.Request{Op: transport.OpNeighbors, Range: rg})
		if err != nil || !r2.OK || r2.Degree == 0 {
			continue
		}
		dv, du := len(nbrs), r2.Degree
		if du <= dv || rnd.Float64() < float64(dv)/float64(du) {
			cur, nbrs = next, r2.Peers
		}
	}
	return cur
}
