package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Policy selects when appended frames are forced to stable storage.
type Policy uint8

const (
	// PolicyAlways fsyncs before every Append returns: an acked write
	// is durable. Group-commit coalescing keeps concurrent appenders
	// from each paying a separate fsync.
	PolicyAlways Policy = iota
	// PolicyInterval fsyncs on a background timer (FsyncInterval):
	// a crash loses at most one interval of acked writes.
	PolicyInterval
	// PolicyNever flushes to the OS but never fsyncs: a process crash
	// loses nothing, a machine crash can lose everything since the
	// last snapshot.
	PolicyNever
)

// ParsePolicy maps the CLI/API spellings onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return PolicyInterval, nil
	case "always":
		return PolicyAlways, nil
	case "never":
		return PolicyNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// DefaultFsyncInterval is the flush cadence for PolicyInterval when
// none is configured.
const DefaultFsyncInterval = 100 * time.Millisecond

// nowNanos is the engine's clock (a hook point for tests).
var nowNanos = func() int64 { return time.Now().UnixNano() }

const (
	walFile      = "wal.log"
	snapFile     = "snapshot"
	snapTempFile = "snapshot.tmp"
	cleanFile    = "clean"
)

// Options configures Open.
type Options struct {
	// Dir is the node's data directory; created if absent.
	Dir string
	// Policy is the fsync policy (default PolicyInterval).
	Policy Policy
	// FsyncInterval overrides DefaultFsyncInterval for PolicyInterval.
	FsyncInterval time.Duration
}

// Stats is a point-in-time view of the engine's on-disk state.
type Stats struct {
	// WALBytes is the current size of wal.log.
	WALBytes int64
	// Frames is the number of intact frames appended since the last
	// snapshot (i.e. the replay cost of a crash right now).
	Frames uint64
	// LastSnapshot is the unix-nano save time of the newest snapshot,
	// or zero if none exists.
	LastSnapshot int64
	// Policy is the configured fsync policy.
	Policy Policy
}

// Engine is the per-node durable log. All methods are safe for
// concurrent use; Append is ordered by whatever lock serialises the
// caller's store mutations (the sink contract in package storage).
type Engine struct {
	dir      string
	policy   Policy
	interval time.Duration

	// mu guards the buffered writer, file handle, counters, and err.
	mu       sync.Mutex
	f        *os.File
	buf      *bufio.Writer
	written  int64 // bytes appended (buffered + on disk)
	frames   uint64
	lastSnap int64
	scratch  []byte
	err      error // sticky background-write failure

	// syncMu serialises fsync so concurrent appenders group-commit:
	// one fsync covers every byte flushed before it. Lock order is
	// syncMu before mu.
	syncMu sync.Mutex
	synced int64 // byte offset known durable

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{} // flusher exited (nil when no flusher)
}

// Open opens (creating if needed) the engine in opts.Dir and performs
// recovery: load the snapshot if present, replay the log tail over it
// (truncating a torn final frame), and compact. The recovered store
// state is returned alongside the ready-to-append engine.
func Open(opts Options) (*Engine, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: empty data dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	e := &Engine{
		dir:      opts.Dir,
		policy:   opts.Policy,
		interval: opts.FsyncInterval,
		closed:   make(chan struct{}),
	}
	if e.interval <= 0 {
		e.interval = DefaultFsyncInterval
	}
	rec, err := e.recover()
	if err != nil {
		return nil, nil, err
	}
	if e.policy != PolicyAlways {
		e.done = make(chan struct{})
		go e.flusher()
	}
	return e, rec, nil
}

// Append logs one mutation. Under PolicyAlways it does not return
// until the frame is durable.
func (e *Engine) Append(rec Record) error {
	e.mu.Lock()
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	e.scratch = appendRecord(e.scratch[:0], rec)
	n, err := e.buf.Write(e.scratch)
	e.written += int64(n)
	e.frames++
	if err != nil {
		e.err = err
		e.mu.Unlock()
		return err
	}
	off := e.written
	e.mu.Unlock()
	if e.policy == PolicyAlways {
		return e.syncTo(off)
	}
	return nil
}

// syncTo makes every byte up to off durable. Concurrent callers
// group-commit: whoever wins syncMu flushes and fsyncs everything
// written so far, and late arrivals find their offset already covered.
func (e *Engine) syncTo(off int64) error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	if e.synced >= off {
		return nil
	}
	return e.syncLocked()
}

// syncLocked flushes and fsyncs everything appended so far. Caller
// holds syncMu.
func (e *Engine) syncLocked() error {
	e.mu.Lock()
	err := e.buf.Flush()
	if err != nil {
		e.err = err
	}
	f, target := e.f, e.written
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		e.mu.Lock()
		e.err = err
		e.mu.Unlock()
		return err
	}
	e.synced = target
	return nil
}

// Sync forces everything appended so far to stable storage regardless
// of policy.
func (e *Engine) Sync() error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	return e.syncLocked()
}

// flusher is the background loop for the interval and never policies.
func (e *Engine) flusher() {
	defer close(e.done)
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-e.closed:
			return
		case <-t.C:
			if e.policy == PolicyInterval {
				_ = e.Sync()
			} else { // PolicyNever: hand buffered bytes to the OS only
				e.mu.Lock()
				if err := e.buf.Flush(); err != nil && e.err == nil {
					e.err = err
				}
				e.mu.Unlock()
			}
		}
	}
}

// Stats reports the engine's current on-disk footprint.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{WALBytes: e.written, Frames: e.frames, LastSnapshot: e.lastSnap, Policy: e.policy}
}

// MarkClean writes the clean-shutdown marker. Recovery consumes it, so
// its presence means "the previous run shut down cleanly".
func (e *Engine) MarkClean() error {
	f, err := os.Create(filepath.Join(e.dir, cleanFile))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close stops the flusher and flushes buffered frames to the OS
// without snapshotting — the crash-adjacent path. Durability of the
// tail is whatever the policy already guaranteed.
func (e *Engine) Close() error {
	var err error
	e.closeOnce.Do(func() {
		close(e.closed)
		if e.done != nil {
			<-e.done
		}
		e.mu.Lock()
		ferr := e.buf.Flush()
		cerr := e.f.Close()
		e.mu.Unlock()
		if ferr != nil {
			err = ferr
		} else if cerr != nil {
			err = cerr
		}
	})
	return err
}

// openLog opens wal.log for appending, positioned at size. Caller
// holds mu (or is single-threaded during recovery).
func (e *Engine) openLog(size int64) error {
	f, err := os.OpenFile(filepath.Join(e.dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return err
	}
	e.f = f
	e.buf = bufio.NewWriterSize(f, 1<<16)
	e.written = size
	e.synced = size
	return nil
}

// syncDir fsyncs the data directory so renames and creates within it
// are durable.
func (e *Engine) syncDir() error {
	d, err := os.Open(e.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
