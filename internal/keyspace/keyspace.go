// Package keyspace defines the circular identifier space shared by every
// component of the Oscar overlay.
//
// Identifiers live on a ring of 2^64 points. The space is order-preserving:
// application keys are mapped onto the ring without hashing, so contiguous
// application ranges stay contiguous on the ring and range queries remain
// cheap. All distances are measured clockwise (increasing key value with
// wraparound), matching the directed ring used by Oscar, Mercury and
// Symphony-style overlays.
package keyspace

import (
	"fmt"
	"math"
)

// Key is a position on the identifier circle. The circle has 2^64 points;
// arithmetic wraps modulo 2^64.
type Key uint64

// MaxKey is the largest representable key. The circle size is MaxKey+1 (2^64).
const MaxKey = Key(math.MaxUint64)

// FromFloat maps a fraction in [0,1) onto the circle. Fractions outside
// [0,1) are wrapped into it, so FromFloat(1.25) == FromFloat(0.25).
func FromFloat(f float64) Key {
	f = f - math.Floor(f)
	// 1<<64 is not representable in float64 exactly, but the rounding error
	// is below the float64 resolution of the fraction itself.
	return Key(f * math.Exp2(64))
}

// Float returns the key's position as a fraction of the circle in [0,1).
func (k Key) Float() float64 {
	return float64(k) / math.Exp2(64)
}

// Distance returns the clockwise distance from k to to, i.e. the number of
// points passed when walking in increasing key direction (with wraparound)
// from k until reaching to. Distance(k, k) == 0.
func (k Key) Distance(to Key) uint64 {
	return uint64(to - k) // two's-complement wraparound does the modulo
}

// CircularDistance returns the length of the shorter arc between k and o.
func (k Key) CircularDistance(o Key) uint64 {
	cw := k.Distance(o)
	ccw := o.Distance(k)
	if cw < ccw {
		return cw
	}
	return ccw
}

// Between reports whether k lies on the clockwise arc (from, to), exclusive
// on both ends. When from == to the arc is the whole circle minus the point
// itself, following the Chord convention.
func (k Key) Between(from, to Key) bool {
	if from == to {
		return k != from
	}
	return from.Distance(k) > 0 && from.Distance(k) < from.Distance(to)
}

// BetweenIncl reports whether k lies on the clockwise arc (from, to],
// exclusive at from and inclusive at to. This is the test used to decide key
// ownership under the successor convention.
func (k Key) BetweenIncl(from, to Key) bool {
	if from == to {
		return true // the arc covers the whole circle
	}
	return from.Distance(k) > 0 && from.Distance(k) <= from.Distance(to)
}

// Midpoint returns the key halfway along the clockwise arc from k to to.
func (k Key) Midpoint(to Key) Key {
	return k + Key(k.Distance(to)/2)
}

// String renders the key as a fixed-width hexadecimal value.
func (k Key) String() string {
	return fmt.Sprintf("%016x", uint64(k))
}

// Range is a half-open clockwise arc [Start, End). A Range with Start == End
// denotes the full circle. Ranges never denote the empty set: the empty arc
// is not useful in the overlay and permitting it would make the full-circle
// encoding ambiguous.
type Range struct {
	Start Key
	End   Key
}

// FullRange returns the range covering the entire circle.
func FullRange() Range { return Range{0, 0} }

// Contains reports whether k lies in the half-open clockwise arc [Start, End).
func (r Range) Contains(k Key) bool {
	if r.Start == r.End {
		return true
	}
	return r.Start.Distance(k) < r.Start.Distance(r.End)
}

// Size returns the number of points in the arc. The full circle reports
// MaxUint64 (one short of the true 2^64, which does not fit in a uint64);
// callers only use Size for proportional arithmetic so the bias is harmless.
func (r Range) Size() uint64 {
	if r.Start == r.End {
		return math.MaxUint64
	}
	return r.Start.Distance(r.End)
}

// IsFull reports whether the range denotes the whole circle.
func (r Range) IsFull() bool { return r.Start == r.End }

// Fraction returns the arc length as a fraction of the circle in (0, 1].
func (r Range) Fraction() float64 {
	if r.IsFull() {
		return 1
	}
	return float64(r.Size()) / math.Exp2(64)
}

// Lerp returns the key at fraction f (in [0,1)) along the clockwise arc.
func (r Range) Lerp(f float64) Key {
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	if r.IsFull() {
		return r.Start + FromFloat(f)
	}
	return r.Start + Key(f*float64(r.Size()))
}

// String renders the range as [start, end).
func (r Range) String() string {
	return fmt.Sprintf("[%s, %s)", r.Start, r.End)
}
