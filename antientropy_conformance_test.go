package oscar

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// The divergence-heal contract, asserted against every backend: a replica
// that diverged from its arc's owner (missed writes, a stale value, a
// resurrected delete, stray keys) is repaired by one anti-entropy pass, the
// pass transfers only the diverged keys — counted via sync stats, never the
// arc size — and after the owner crashes the repaired chain serves every
// live key while deleted keys stay deleted.

// divergenceHarness is one backend under the divergence-heal contract.
type divergenceHarness struct {
	name   string
	client Client
	// keys are writeable keys sharing one owner (the divergence victim's
	// chain); stray is a key in the same arc never written anywhere.
	keys  []Key
	stray Key
	// divergeReplica corrupts the owner's first replica behind its back:
	// missing copies, a stale value, a resurrected delete, a stray key.
	divergeReplica func(missing []Key, stale Key, staleVal []byte, zombie Key, zombieVal []byte, stray Key, strayVal []byte)
	// sync runs one anti-entropy pass and returns its stats.
	sync func() SyncStats
	// killOwner crashes the keys' owner and heals the overlay enough for
	// routing to succeed.
	killOwner func()
	close     func()
}

const divergenceReplicas = 3

func divergenceSimHarness(t *testing.T) *divergenceHarness {
	t.Helper()
	ov, err := Build(Config{Size: 64, Seed: 23, Keys: UniformKeys()})
	if err != nil {
		t.Fatal(err)
	}
	cl := ov.ReplicatedClient(divergenceReplicas)

	// Anchor the key set on one owner: probe a key, then walk counter-
	// clockwise from the owner's own identifier.
	put, err := cl.Put(context.Background(), KeyFromFloat(0.37), []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	ownerID := put.Owner.ID
	ownerKey := put.Owner.Key
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = ownerKey - Key(i)
	}
	succ := ov.sim.Net().Node(ownerID).Succ
	if succ == ownerID {
		t.Fatal("test setup: one-peer ring")
	}
	return &divergenceHarness{
		name:   "simulator",
		client: cl,
		keys:   keys[:7],
		stray:  ownerKey - 1000,
		divergeReplica: func(missing []Key, stale Key, staleVal []byte, zombie Key, zombieVal []byte, stray Key, strayVal []byte) {
			ov.mu.Lock()
			defer ov.mu.Unlock()
			st := ov.replStoreFor(succ)
			for _, k := range missing {
				st.Drop(k)
			}
			st.Put(stale, staleVal)
			st.Put(zombie, zombieVal)
			st.Put(stray, strayVal)
		},
		sync:      func() SyncStats { return ov.AntiEntropy(divergenceReplicas) },
		killOwner: func() { ov.CrashNode(ownerID) },
		close:     func() {},
	}
}

// liveDivergenceHarness is the shared live-backend setup: both fabrics boot
// a ring of *Node, pick an owner other than the client's node, and reach
// into the p2p internals only for fault injection.
func liveDivergenceHarness(t *testing.T, name string, nodes []*Node, closeAll func()) *divergenceHarness {
	t.Helper()
	ctx := context.Background()
	stabilize := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, n := range nodes {
				if !n.isClosed() {
					n.Stabilize(ctx)
				}
			}
		}
	}
	stabilize(6)

	owner := nodes[2]
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = owner.Key() - Key(i)
	}
	chain := owner.inner.SuccList()
	if len(chain) < divergenceReplicas-1 {
		t.Fatalf("owner chain too short: %d", len(chain))
	}
	var replica *Node
	for _, n := range nodes {
		if n.Addr() == string(chain[0].Addr) {
			replica = n
		}
	}
	if replica == nil {
		t.Fatal("first replica not found")
	}
	return &divergenceHarness{
		name:   name,
		client: nodes[0],
		keys:   keys[:7],
		stray:  owner.Key() - 1000,
		divergeReplica: func(missing []Key, stale Key, staleVal []byte, zombie Key, zombieVal []byte, stray Key, strayVal []byte) {
			for _, k := range missing {
				replica.inner.DropReplica(k)
			}
			replica.inner.InjectReplica(stale, staleVal)
			replica.inner.InjectReplica(zombie, zombieVal)
			replica.inner.InjectReplica(stray, strayVal)
		},
		sync: func() SyncStats {
			st, err := owner.AntiEntropy(ctx)
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		killOwner: func() {
			_ = owner.Close()
			stabilize(6)
		},
		close: closeAll,
	}
}

func divergenceMemHarness(t *testing.T) *divergenceHarness {
	t.Helper()
	c, err := StartCluster(context.Background(), 10, WithSeed(8), WithReplicas(divergenceReplicas))
	if err != nil {
		t.Fatal(err)
	}
	return liveDivergenceHarness(t, "p2p/mem", c.Nodes(), func() { _ = c.Close() })
}

func divergenceTCPHarness(t *testing.T) *divergenceHarness {
	t.Helper()
	ctx := context.Background()
	const size = 7
	var nodes []*Node
	for i := 0; i < size; i++ {
		n, err := StartNode(NodeConfig{
			Listen: "127.0.0.1:0",
			Key:    KeyFromFloat(float64(i)/size + 0.031),
			MaxIn:  8, MaxOut: 8,
			Replicas: divergenceReplicas,
			Seed:     int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(ctx, nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	return liveDivergenceHarness(t, "p2p/tcp", nodes, func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
}

// TestDivergenceHeal is the cross-backend anti-entropy contract.
func TestDivergenceHeal(t *testing.T) {
	harnesses := []func(*testing.T) *divergenceHarness{
		divergenceSimHarness,
		divergenceMemHarness,
		divergenceTCPHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runDivergenceHeal(t, h)
		})
	}
}

func runDivergenceHeal(t *testing.T, h *divergenceHarness) {
	ctx := context.Background()
	cl := h.client

	// Verify the key set shares one owner — the harness promised it.
	first, err := cl.Lookup(ctx, h.keys[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range append(h.keys[1:], h.stray) {
		got, err := cl.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Owner.Key != first.Owner.Key {
			t.Fatalf("harness keys span owners (%v vs %v)", got.Owner, first.Owner)
		}
	}

	// Background load across the ring: "only the divergence moves" must
	// hold against a populated overlay, not an empty one.
	for i := 0; i < 30; i++ {
		if _, err := cl.Put(ctx, KeyFromFloat(float64(i)/30+0.009), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	vals := make([][]byte, 6)
	for i := 0; i < 6; i++ {
		vals[i] = []byte(fmt.Sprintf("val-%d", i))
		if _, err := cl.Put(ctx, h.keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	// keys[5] is deleted through the client: the owner keeps the tombstone
	// and the chain applies the delete.
	if _, err := cl.Delete(ctx, h.keys[5]); err != nil {
		t.Fatal(err)
	}

	// Diverge the first replica: two missing copies, one stale value, the
	// deleted key resurrected, and a stray key the owner never had.
	h.divergeReplica(
		[]Key{h.keys[0], h.keys[1]},
		h.keys[2], []byte("stale"),
		h.keys[5], []byte("zombie"),
		h.stray, []byte("stray"),
	)

	// One pass repairs it, and the stats count exactly the divergence:
	// 3 pushed keys (2 missing + 1 stale), 1 tombstone, 1 drop — out of a
	// store dozens of keys big.
	stats := h.sync()
	if stats.KeysPushed != 3 || stats.TombstonesPushed != 1 || stats.Dropped != 1 {
		t.Fatalf("sync stats = %+v, want exactly the divergence (3 pushed / 1 tombstone / 1 dropped)", stats)
	}

	// Convergence: a second pass moves nothing.
	if again := h.sync(); again.KeysPushed != 0 || again.TombstonesPushed != 0 || again.Dropped != 0 {
		t.Fatalf("second pass still moved data: %+v", again)
	}

	// Kill the owner: the repaired chain must serve every live key with
	// its exact value, and the deleted key must stay deleted — no
	// resurrection from the replica that once held a zombie copy.
	h.killOwner()
	for i := 0; i < 5; i++ {
		got, err := cl.Get(ctx, h.keys[i])
		if err != nil {
			t.Fatalf("key %d after owner crash: %v", i, err)
		}
		if !bytes.Equal(got.Value, vals[i]) {
			t.Fatalf("key %d = %q after owner crash, want %q", i, got.Value, vals[i])
		}
	}
	if _, err := cl.Get(ctx, h.keys[5]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key after owner crash = %v, want ErrNotFound", err)
	}
	if _, err := cl.Get(ctx, h.stray); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stray key after owner crash = %v, want ErrNotFound", err)
	}

	// Info surfaces the accumulated repair work on every backend.
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.name == "simulator" {
		if info.AntiEntropy.KeysPushed < 3 || info.AntiEntropy.TombstonesPushed < 1 {
			t.Errorf("info anti-entropy stats = %+v", info.AntiEntropy)
		}
	}
}

// TestRingSizeEstimate builds a ring well past the old 128-peer walk cap
// and checks the public Info reports a gossip-derived peer count within
// 20% of the truth — where the previous implementation reported -1.
func TestRingSizeEstimate(t *testing.T) {
	ctx := context.Background()
	const size = 150
	fabric := transport.NewFabric()
	nodes := make([]*Node, size)
	for i := 0; i < size; i++ {
		f := (float64(i) + 0.25*math.Sin(float64(i)*1.7)) / size
		var err error
		nodes[i], err = startNodeOn(fabric.Endpoint(), NodeConfig{
			Key:  KeyFromFloat(f),
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := nodes[i].Join(ctx, nodes[i-1].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for round := 0; round < 8; round++ {
		for _, n := range nodes {
			n.Stabilize(ctx)
		}
	}
	info, err := nodes[0].Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(info.Peers)-size)/size > 0.20 {
		t.Errorf("info reports %d peers on a %d-peer ring, want within 20%%", info.Peers, size)
	}
	if info.Peers < 0 {
		t.Error("large ring reported -1: the walk cap is back")
	}
	if math.Abs(info.SizeEstimate-size)/size > 0.20 {
		t.Errorf("size estimate %.1f, want within 20%% of %d", info.SizeEstimate, size)
	}
}
