// Package graph holds the overlay topology model used by the sequential
// simulator: the set of peers, their degree budgets, their long-range links,
// in-degree accounting and liveness.
//
// The model follows the paper's §3 setup: every peer p has ρmax_in(p) and
// ρmax_out(p); during construction p tries to establish up to ρmax_out(p)
// long-range links, and a contacted peer acknowledges a new in-link only
// while it has fewer than ρmax_in incoming links. Because establishing a
// link is a handshake, both endpoints know about it: each node keeps its
// out-link and in-link lists. That symmetric view is what random-walk
// sampling traverses (a Metropolis–Hastings walk needs symmetric proposals
// to converge to the uniform distribution).
package graph

import (
	"errors"
	"fmt"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// NodeID identifies a peer inside one Network. IDs are dense indices and
// never reused, so they stay valid across churn.
type NodeID int32

// NoNode is the null NodeID.
const NoNode NodeID = -1

// Errors returned by link manipulation.
var (
	// ErrRefused reports that the target peer is at its in-degree cap and
	// declined the connection — the admission rule of §3.
	ErrRefused = errors.New("graph: target refused link (in-degree cap reached)")
	// ErrSelfLink reports an attempt to link a peer to itself.
	ErrSelfLink = errors.New("graph: self-link not allowed")
	// ErrDuplicate reports that the link already exists.
	ErrDuplicate = errors.New("graph: duplicate link")
	// ErrDead reports an operation on a dead peer.
	ErrDead = errors.New("graph: peer is dead")
)

// Node is one peer.
type Node struct {
	ID     NodeID
	Key    keyspace.Key
	MaxIn  int // ρmax_in: incoming long-range links the peer accepts
	MaxOut int // ρmax_out: outgoing long-range links the peer maintains

	// Out lists long-range out-link targets. Under churn entries may point
	// at dead peers ("stale links"); routing discovers this by probing.
	Out []NodeID
	// In lists the alive peers holding a long-range link to this node (the
	// handshake makes in-links known). Sources remove themselves when they
	// drop the link or die.
	In []NodeID

	// Succ and Pred are the ring pointers, maintained by package ring. They
	// always reference alive peers (the paper assumes ring self-stabilisation).
	Succ, Pred NodeID

	Alive bool
}

// InDeg returns the number of alive peers linking to n.
func (n *Node) InDeg() int { return len(n.In) }

// InLoad returns the relative in-degree load InDeg/MaxIn used by the
// power-of-two-choices rule; a peer with MaxIn == 0 reports 1 (full).
func (n *Node) InLoad() float64 {
	if n.MaxIn <= 0 {
		return 1
	}
	return float64(len(n.In)) / float64(n.MaxIn)
}

// HasOut reports whether n already links to target.
func (n *Node) HasOut(target NodeID) bool {
	for _, t := range n.Out {
		if t == target {
			return true
		}
	}
	return false
}

// Network is the collection of peers.
type Network struct {
	nodes []*Node
	alive int
}

// New creates an empty network.
func New() *Network { return &Network{} }

// Add creates a new alive peer with the given key and degree caps and
// returns it. Ring pointers start at NoNode until the ring inserts the peer.
func (g *Network) Add(key keyspace.Key, maxIn, maxOut int) *Node {
	n := &Node{
		ID:     NodeID(len(g.nodes)),
		Key:    key,
		MaxIn:  maxIn,
		MaxOut: maxOut,
		Succ:   NoNode,
		Pred:   NoNode,
		Alive:  true,
	}
	g.nodes = append(g.nodes, n)
	g.alive++
	return n
}

// Node returns the peer with the given id. It panics on an invalid id: ids
// are produced by this package, so an invalid one is a programming error.
func (g *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("graph: invalid node id %d", id))
	}
	return g.nodes[id]
}

// Len returns the total number of peers ever added (alive and dead).
func (g *Network) Len() int { return len(g.nodes) }

// AliveCount returns the number of alive peers.
func (g *Network) AliveCount() int { return g.alive }

// AddLink opens a long-range link from -> to, enforcing the admission rule:
// the target accepts only while InDeg < MaxIn. Self-links and duplicates are
// rejected.
func (g *Network) AddLink(from, to NodeID) error {
	if from == to {
		return ErrSelfLink
	}
	src, dst := g.Node(from), g.Node(to)
	if !src.Alive || !dst.Alive {
		return ErrDead
	}
	if src.HasOut(to) {
		return ErrDuplicate
	}
	if len(dst.In) >= dst.MaxIn {
		return ErrRefused
	}
	src.Out = append(src.Out, to)
	dst.In = append(dst.In, from)
	return nil
}

// removeFrom deletes the first occurrence of id in list, preserving order.
func removeFrom(list []NodeID, id NodeID) []NodeID {
	for i, v := range list {
		if v == id {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// DropLinks removes all out-links of the peer, releasing the in-degree it
// held at its targets (dead targets included: the source de-registers
// either way).
func (g *Network) DropLinks(id NodeID) {
	n := g.Node(id)
	for _, t := range n.Out {
		tn := g.Node(t)
		tn.In = removeFrom(tn.In, id)
	}
	n.Out = n.Out[:0]
}

// Kill marks the peer dead and de-registers it from its targets' in-link
// lists (a dead source no longer consumes anyone's in-degree budget). Links
// *to* the dead peer are left in place in the holders' Out lists: they are
// the stale links routing must probe around under churn.
func (g *Network) Kill(id NodeID) {
	n := g.Node(id)
	if !n.Alive {
		return
	}
	n.Alive = false
	g.alive--
	for _, t := range n.Out {
		tn := g.Node(t)
		tn.In = removeFrom(tn.In, id)
	}
}

// ForEachAlive calls fn for every alive peer in id order.
func (g *Network) ForEachAlive(fn func(*Node)) {
	for _, n := range g.nodes {
		if n.Alive {
			fn(n)
		}
	}
}

// AliveIDs returns the ids of all alive peers in id order.
func (g *Network) AliveIDs() []NodeID {
	out := make([]NodeID, 0, g.alive)
	for _, n := range g.nodes {
		if n.Alive {
			out = append(out, n.ID)
		}
	}
	return out
}

// CheckInvariants verifies internal consistency (used by tests and the
// simulator's self-checks): in/out lists mirror each other among alive
// peers, caps are respected, no self or duplicate links.
func (g *Network) CheckInvariants() error {
	aliveSeen := 0
	for _, n := range g.nodes {
		if !n.Alive {
			continue
		}
		aliveSeen++
		seen := make(map[NodeID]bool, len(n.Out))
		for _, t := range n.Out {
			if t == n.ID {
				return fmt.Errorf("graph: node %d has a self-link", n.ID)
			}
			if seen[t] {
				return fmt.Errorf("graph: node %d has duplicate link to %d", n.ID, t)
			}
			seen[t] = true
			if !containsID(g.Node(t).In, n.ID) {
				return fmt.Errorf("graph: link %d->%d missing from target's in-list", n.ID, t)
			}
		}
		if len(n.In) > n.MaxIn {
			return fmt.Errorf("graph: node %d exceeded in-cap: %d > %d", n.ID, len(n.In), n.MaxIn)
		}
		for _, s := range n.In {
			sn := g.Node(s)
			if !sn.Alive {
				return fmt.Errorf("graph: node %d has dead source %d in in-list", n.ID, s)
			}
			if !sn.HasOut(n.ID) {
				return fmt.Errorf("graph: in-list entry %d->%d has no matching out-link", s, n.ID)
			}
		}
	}
	if aliveSeen != g.alive {
		return fmt.Errorf("graph: alive counter %d != scan %d", g.alive, aliveSeen)
	}
	return nil
}

func containsID(list []NodeID, id NodeID) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}
