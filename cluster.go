package oscar

import (
	"context"
	"fmt"
	"path/filepath"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// Cluster is an in-process overlay of live message-passing nodes on the
// in-memory fabric: every node runs the real protocol (joins, Chord
// stabilisation, walk-based link acquisition, iterative routing) without
// sockets. It is the bridge between simulator-scale experiments and a TCP
// deployment — integration tests and examples run the deployment code path
// at in-memory speed. Every node satisfies Client.
type Cluster struct {
	fabric *transport.Fabric
	nodes  []*Node
	// wrap is the WithTransportWrapper hook the cluster booted with;
	// AddNode applies it to joiners that don't bring their own, so churn
	// under a fault harness stays inside the harness.
	wrap func(transport.Transport) transport.Transport
}

// StartCluster boots size live nodes on a shared in-memory fabric: the
// first node creates the overlay, the rest join through it, then the
// cluster stabilises and wires long-range links. Options follow NewClient
// (WithSeed, WithKeys, WithDegrees, WithStabilizeRounds, WithReplicas,
// WithAutoMaintenance, WithAntiEntropy); the context bounds the whole boot
// sequence.
func StartCluster(ctx context.Context, size int, opts ...Option) (*Cluster, error) {
	if size < 1 {
		return nil, fmt.Errorf("oscar: cluster size %d", size)
	}
	o := buildOptions(opts)
	keys := o.keys
	if keys == nil {
		keys = keydist.GnutellaLike()
	}
	degrees := o.degrees
	if degrees == nil {
		degrees = degreedist.Constant(16)
	}
	stabilizeRounds := o.stabilizeRounds
	if stabilizeRounds == 0 {
		stabilizeRounds = 2
	}
	keyRand := rng.Derive(o.seed, "cluster-keys")
	capRand := rng.Derive(o.seed, "cluster-caps")

	c := &Cluster{fabric: transport.NewFabric(), wrap: o.transportWrapper}
	for i := 0; i < size; i++ {
		caps := degrees.Sample(capRand)
		cfg := NodeConfig{
			Key:               keys.Sample(keyRand),
			MaxIn:             caps,
			MaxOut:            caps,
			Samples:           o.sampleSize,
			WalkSteps:         o.walkSteps,
			DisablePowerOfTwo: o.disablePowerOfTwo,
			Replicas:          o.replicas,
			WriteConcern:      o.writeConcern,
			AutoMaintenance:   o.autoMaintenance,
			AntiEntropy:       o.antiEntropy,
			Alpha:             o.alpha,
			RouteCacheSize:    o.routeCacheSize,
			RouteCacheTTL:     o.routeCacheTTL,
			HotKeyCache:       o.hotKeyCache,
			Seed:              o.seed + int64(i),
			WrapTransport:     o.transportWrapper,
		}
		if o.dataDir != "" {
			cfg.DataDir = filepath.Join(o.dataDir, fmt.Sprintf("node-%d", i))
			cfg.Fsync = o.fsync
		}
		node, err := startNodeOn(c.fabric.Endpoint(), cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("oscar: cluster node %d: %w", i, err)
		}
		if i > 0 {
			if err := node.Join(ctx, c.nodes[0].Addr()); err != nil {
				_ = node.Close()
				c.Close()
				return nil, fmt.Errorf("oscar: cluster node %d join: %w", i, err)
			}
		}
		c.nodes = append(c.nodes, node)
	}
	for round := 0; round < stabilizeRounds; round++ {
		c.StabilizeAll(ctx)
	}
	c.RewireAll(ctx)
	if err := ctx.Err(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Len returns the number of nodes (alive or closed).
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns the i-th node. Use any node as the Client entry point —
// operations route to the right owner regardless of which peer serves
// them.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// AddNode boots one more node on the cluster's fabric and joins it through
// the cluster's first open node.
func (c *Cluster) AddNode(ctx context.Context, cfg NodeConfig) (*Node, error) {
	if cfg.WrapTransport == nil {
		cfg.WrapTransport = c.wrap
	}
	node, err := startNodeOn(c.fabric.Endpoint(), cfg)
	if err != nil {
		return nil, err
	}
	for _, peer := range c.nodes {
		if !peer.isClosed() {
			if err := node.Join(ctx, peer.Addr()); err != nil {
				_ = node.Close()
				return nil, err
			}
			c.nodes = append(c.nodes, node)
			return node, nil
		}
	}
	_ = node.Close()
	return nil, fmt.Errorf("oscar: add node: no open peer to join through")
}

// StabilizeAll runs one stabilisation round on every open node, in
// parallel — the live topology has no global scheduler, and Chord
// stabilisation is designed for concurrent rounds.
func (c *Cluster) StabilizeAll(ctx context.Context) {
	c.forAllOpen(func(n *Node) { n.Stabilize(ctx) })
}

// RewireAll rebuilds every open node's long-range links, in parallel.
func (c *Cluster) RewireAll(ctx context.Context) {
	c.forAllOpen(func(n *Node) { _ = n.Rewire(ctx) })
}

func (c *Cluster) forAllOpen(fn func(*Node)) {
	done := make(chan struct{})
	open := 0
	for _, n := range c.nodes {
		if n.isClosed() {
			continue
		}
		open++
		go func(n *Node) {
			fn(n)
			done <- struct{}{}
		}(n)
	}
	for i := 0; i < open; i++ {
		<-done
	}
}

// Close shuts every node down.
func (c *Cluster) Close() error {
	for _, n := range c.nodes {
		_ = n.Close()
	}
	return nil
}
