package p2p

import (
	"bytes"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// pickRemoteKey returns a key whose owner is not the given requester, so
// cache tests can crash or displace the owner without taking the
// requester down with it.
func pickRemoteKey(t *testing.T, c *Cluster, requester *Node) (keyspace.Key, transport.PeerRef) {
	t.Helper()
	for i := 0; i < 64; i++ {
		k := keyspace.FromFloat(float64(i) / 64)
		owner := expectedOwner(c.Nodes, k)
		if owner.Addr != requester.Self().Addr {
			return k, owner
		}
	}
	t.Fatal("test setup: every key is owned by the requester")
	return 0, transport.PeerRef{}
}

// TestRouteCacheServesWrites pins the cache's happy path: a second write
// to the same key reuses the cached route (counted as a hit) and spends
// no more messages than the first, which paid for the full walk.
func TestRouteCacheServesWrites(t *testing.T) {
	c := newTestCluster(t, 16)
	n := c.Nodes[0]
	k, _ := pickRemoteKey(t, c, n)

	first, err := n.Put(bg, k, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.Put(bg, k, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cost > first.Cost {
		t.Errorf("cached write cost %d exceeds uncached cost %d", second.Cost, first.Cost)
	}
	if st := n.CacheStats(); st.RouteHits == 0 {
		t.Errorf("route cache recorded no hit: %+v", st)
	}
	got, err := n.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("v2")) {
		t.Fatalf("get after cached write: found=%v value=%q err=%v", got.Found, got.Value, err)
	}
}

// TestRouteCacheStaleAfterJoin is the arc-moving stale-safety contract: a
// node joins exactly at a cached key, taking over its arc, and the next
// write through the stale cache must land on the new owner — the old
// owner's ownership gate rejects it and the route is re-resolved.
func TestRouteCacheStaleAfterJoin(t *testing.T) {
	c := newTestCluster(t, 8)
	n := c.Nodes[0]
	k := keyspace.FromFloat(0.5)
	if expectedOwner(c.Nodes, k).Addr == n.Self().Addr {
		n = c.Nodes[1] // requester must observe the arc move remotely
	}
	if _, err := n.Put(bg, k, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// The newbie's key equals k, so it owns k the moment it splices in.
	newbie := mustNode(t, c.Fabric.Endpoint(), Config{Key: k, MaxIn: 16, MaxOut: 16, Seed: 99})
	defer newbie.Close()
	if err := newbie.Join(bg, c.Nodes[0].Self().Addr); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		c.StabilizeAll(bg)
		newbie.Stabilize(bg)
	}

	res, err := n.Put(bg, k, []byte("after"))
	if err != nil {
		t.Fatalf("put through stale route: %v", err)
	}
	if res.Owner.Addr != newbie.Self().Addr {
		t.Errorf("write landed on %s, want the joined owner %s", res.Owner.Addr, newbie.Self().Addr)
	}
	got, err := newbie.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("after")) {
		t.Fatalf("read after arc move: found=%v value=%q err=%v", got.Found, got.Value, err)
	}
}

// TestRouteCacheStaleAfterOwnerCrash is the crash half of the stale-safety
// contract: the cached owner dies, the ring heals, and the next write
// through the stale cache re-resolves and succeeds with the fresh value
// readable — no wrong answer, no routing dead end.
func TestRouteCacheStaleAfterOwnerCrash(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 12, Seed: 21, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	n := c.Nodes[0]
	k, owner := pickRemoteKey(t, c, n)
	if _, err := n.Put(bg, k, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	for _, m := range c.Nodes {
		if m.Self().Addr == owner.Addr {
			_ = m.Close()
		}
	}
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}

	if _, err := n.Put(bg, k, []byte("v2")); err != nil {
		t.Fatalf("put through dead cached owner: %v", err)
	}
	got, err := n.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("v2")) {
		t.Fatalf("read after owner crash: found=%v value=%q err=%v", got.Found, got.Value, err)
	}
}

// TestHotKeyCacheFreshness pins the digest-validation contract: a hot
// read is served from cache only while the owner's hash confirms it, a
// remote overwrite wins immediately, and a remote delete is honoured as
// an authoritative not-found — never a resurrected stale value.
func TestHotKeyCacheFreshness(t *testing.T) {
	c := newTestCluster(t, 12)
	reader := c.Nodes[0]
	k, owner := pickRemoteKey(t, c, reader)
	var writer *Node
	for _, m := range c.Nodes[1:] {
		if m.Self().Addr != owner.Addr && m.Self().Addr != reader.Self().Addr {
			writer = m
			break
		}
	}
	if writer == nil {
		t.Fatal("no third node to write through")
	}

	if _, err := writer.Put(bg, k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, err := reader.Get(bg, k); err != nil || !got.Found {
		t.Fatalf("prime read: %v", err)
	}
	// Second read: digest-validated cache hit, one message to the owner.
	got, err := reader.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("v1")) {
		t.Fatalf("hot read: found=%v value=%q err=%v", got.Found, got.Value, err)
	}
	if got.Cost != 1 {
		t.Errorf("hot read cost %d, want 1 (the digest check)", got.Cost)
	}
	if st := reader.CacheStats(); st.HotHits == 0 {
		t.Errorf("hot-key cache recorded no hit: %+v", st)
	}

	// A remote overwrite: the reader's cached copy must lose the digest
	// comparison and the fresh value be fetched.
	if _, err := writer.Put(bg, k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err = reader.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("v2")) {
		t.Fatalf("read after remote overwrite: found=%v value=%q err=%v", got.Found, got.Value, err)
	}

	// A remote delete: the tombstone is authoritative — the cached copy
	// must not resurrect the key.
	if _, err := writer.Delete(bg, k); err != nil {
		t.Fatal(err)
	}
	got, err = reader.Get(bg, k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Fatalf("deleted key resurrected from hot cache: %q", got.Value)
	}
}

// TestHotKeyCacheOwnerCrashChainFallback: with the cached owner dead and
// the ring not yet healed, a hot read validates its copy against the
// cached replica chain instead — the read stays correct (and served)
// through the crash window.
func TestHotKeyCacheOwnerCrashChainFallback(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 12, Seed: 33, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	reader := c.Nodes[0]
	k, owner := pickRemoteKey(t, c, reader)
	if _, err := reader.Put(bg, k, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if got, err := reader.Get(bg, k); err != nil || !got.Found {
		t.Fatalf("prime read: %v", err)
	}

	for _, m := range c.Nodes {
		if m.Self().Addr == owner.Addr {
			_ = m.Close()
		}
	}
	// No stabilisation: the reader's route cache still names the corpse.
	got, err := reader.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("survivor")) {
		t.Fatalf("read during crash window: found=%v value=%q err=%v", got.Found, got.Value, err)
	}

	// And after the ring heals the key stays readable the ordinary way.
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	got, err = reader.Get(bg, k)
	if err != nil || !got.Found || !bytes.Equal(got.Value, []byte("survivor")) {
		t.Fatalf("read after heal: found=%v value=%q err=%v", got.Found, got.Value, err)
	}
}

// TestAlphaLookupCorrectness runs the lookup correctness sweep with α=3:
// parallel probing must change cost, never answers — including on a ring
// that has just absorbed crashes.
func TestAlphaLookupCorrectness(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 24, Seed: 5, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 64; i++ {
		key := keyspace.FromFloat(float64(i) / 64)
		want := expectedOwner(c.Nodes, key)
		got, _, err := c.Nodes[i%len(c.Nodes)].Lookup(bg, key)
		if err != nil {
			t.Fatalf("α=3 lookup %v: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("α=3 lookup %v: owner %s, want %s", key, got.Addr, want.Addr)
		}
	}

	// Crash a few peers and heal: α-probing must still terminate at the
	// true owner, folding dead candidates into the exclude set.
	for _, i := range []int{3, 11, 17} {
		_ = c.Nodes[i].Close()
	}
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	for i := 0; i < 64; i++ {
		key := keyspace.FromFloat(float64(i) / 64)
		want := expectedOwner(c.Nodes, key)
		from := c.Nodes[i%len(c.Nodes)]
		if from.isDown() {
			continue
		}
		got, _, err := from.Lookup(bg, key)
		if err != nil {
			t.Fatalf("α=3 lookup after crashes %v: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("α=3 lookup after crashes %v: owner %s, want %s", key, got.Addr, want.Addr)
		}
	}
}
