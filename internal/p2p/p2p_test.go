package p2p

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

var bg = context.Background()

// expectedOwner computes the true owner of key among the given nodes.
func expectedOwner(nodes []*Node, key keyspace.Key) transport.PeerRef {
	type ref struct {
		key  keyspace.Key
		addr transport.Addr
	}
	var alive []ref
	for _, n := range nodes {
		if !n.isDown() {
			alive = append(alive, ref{n.Self().Key, n.Self().Addr})
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].key < alive[j].key })
	for _, r := range alive {
		if r.key >= key {
			return transport.PeerRef{Addr: r.addr, Key: r.key}
		}
	}
	return transport.PeerRef{Addr: alive[0].addr, Key: alive[0].key} // wrap
}

func newTestCluster(t *testing.T, size int) *Cluster {
	t.Helper()
	c, err := NewCluster(bg, ClusterConfig{Size: size, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSingleNode(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Nodes[0]
	if n.Succ().Addr != n.Self().Addr || n.Pred().Addr != n.Self().Addr {
		t.Error("singleton must point at itself")
	}
	owner, cost, err := n.Lookup(bg, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if owner.Addr != n.Self().Addr || cost != 0 {
		t.Errorf("owner=%v cost=%d", owner, cost)
	}
}

func TestRingFormation(t *testing.T) {
	c := newTestCluster(t, 24)
	// Walk successors from node 0: must visit all 24 nodes in key order.
	start := c.Nodes[0].Self()
	visited := map[transport.Addr]bool{start.Addr: true}
	cur := c.Nodes[0].Succ()
	var keys []keyspace.Key
	for cur.Addr != start.Addr {
		if visited[cur.Addr] {
			t.Fatalf("ring short-circuits at %s after %d nodes", cur.Addr, len(visited))
		}
		visited[cur.Addr] = true
		keys = append(keys, cur.Key)
		resp, err := c.Nodes[0].tr.Call(cur.Addr, &transport.Request{Op: transport.OpGetSucc})
		if err != nil || !resp.OK {
			t.Fatalf("get_succ %s: %v", cur.Addr, err)
		}
		cur = resp.Peer
	}
	if len(visited) != 24 {
		t.Fatalf("ring covers %d of 24 nodes", len(visited))
	}
	// Keys along the walk from start wrap exactly once: the sequence of
	// clockwise distances from start must be increasing.
	for i := 1; i < len(keys); i++ {
		if start.Key.Distance(keys[i-1]) >= start.Key.Distance(keys[i]) {
			t.Fatal("ring order broken")
		}
	}
}

func TestLookupCorrectness(t *testing.T) {
	c := newTestCluster(t, 32)
	for i := 0; i < 100; i++ {
		key := keyspace.FromFloat(float64(i) / 100)
		want := expectedOwner(c.Nodes, key)
		got, _, err := c.Nodes[i%len(c.Nodes)].Lookup(bg, key)
		if err != nil {
			t.Fatalf("lookup %v: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("lookup %v: owner %s (key %v), want %s (key %v)",
				key, got.Addr, got.Key, want.Addr, want.Key)
		}
	}
}

func TestRewireEstablishesLinks(t *testing.T) {
	c := newTestCluster(t, 40)
	total := 0
	for _, n := range c.Nodes {
		links := n.OutLinks()
		total += len(links)
		for _, ref := range links {
			if ref.Addr == n.Self().Addr {
				t.Error("self-link")
			}
		}
	}
	if total < 40*4 {
		t.Errorf("only %d long-range links across the cluster", total)
	}
	// In-degree caps respected.
	for _, n := range c.Nodes {
		if n.InDegree() > n.cfg.MaxIn {
			t.Errorf("node exceeds in-cap: %d > %d", n.InDegree(), n.cfg.MaxIn)
		}
	}
}

func TestPutGetAcrossCluster(t *testing.T) {
	c := newTestCluster(t, 24)
	for i := 0; i < 50; i++ {
		key := keyspace.FromFloat(float64(i) / 50)
		val := []byte(fmt.Sprintf("v%d", i))
		put, err := c.Nodes[i%24].Put(bg, key, val)
		if err != nil {
			t.Fatal(err)
		}
		if put.Owner.Addr != expectedOwner(c.Nodes, key).Addr {
			t.Fatalf("put %v reported owner %s, want %s", key, put.Owner.Addr, expectedOwner(c.Nodes, key).Addr)
		}
		got, err := c.Nodes[(i+7)%24].Get(bg, key)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || !bytes.Equal(got.Value, val) {
			t.Fatalf("get %v from another node = %q, %v", key, got.Value, got.Found)
		}
	}
}

func TestPutReportsReplacement(t *testing.T) {
	c := newTestCluster(t, 8)
	key := keyspace.FromFloat(0.3)
	res, err := c.Nodes[1].Put(bg, key, []byte("a"))
	if err != nil || res.Replaced {
		t.Fatalf("first put: %+v err=%v", res, err)
	}
	res, err = c.Nodes[5].Put(bg, key, []byte("b"))
	if err != nil || !res.Replaced {
		t.Fatalf("second put: %+v err=%v", res, err)
	}
}

func TestDeleteAcrossCluster(t *testing.T) {
	c := newTestCluster(t, 16)
	key := keyspace.FromFloat(0.62)
	if _, err := c.Nodes[2].Put(bg, key, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	res, err := c.Nodes[9].Delete(bg, key)
	if err != nil || !res.Found {
		t.Fatalf("delete: %+v err=%v", res, err)
	}
	if got, err := c.Nodes[4].Get(bg, key); err != nil || got.Found {
		t.Fatalf("item survived delete: %+v err=%v", got, err)
	}
	// Deleting again reports absence, not an error.
	res, err = c.Nodes[0].Delete(bg, key)
	if err != nil || res.Found {
		t.Fatalf("second delete: %+v err=%v", res, err)
	}
}

func TestRangeQueryAcrossShards(t *testing.T) {
	c := newTestCluster(t, 16)
	for i := 0; i < 40; i++ {
		if _, err := c.Nodes[0].Put(bg, keyspace.FromFloat(float64(i)/40), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Nodes[5].RangeQuery(bg, keyspace.FromFloat(0.25), keyspace.FromFloat(0.75), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 20 { // fractions 10/40 .. 29/40
		t.Fatalf("range returned %d items, want 20", len(res.Items))
	}
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i-1].Key >= res.Items[i].Key {
			t.Fatal("range results out of order")
		}
	}
	if res.PeersScanned < 1 {
		t.Errorf("implausible scan stats: %+v", res)
	}
}

// TestRangeQueryWrapAround exercises a range crossing the top of the
// identifier circle (start > end), including the limit early-stop path.
func TestRangeQueryWrapAround(t *testing.T) {
	c := newTestCluster(t, 12)
	fracs := []float64{0.85, 0.92, 0.97, 0.03, 0.08, 0.5}
	for _, f := range fracs {
		if _, err := c.Nodes[0].Put(bg, keyspace.FromFloat(f), []byte(fmt.Sprint(f))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Nodes[3].RangeQuery(bg, keyspace.FromFloat(0.8), keyspace.FromFloat(0.1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 5 { // all but 0.5
		t.Fatalf("wrap-around range returned %d items, want 5: %v", len(res.Items), res.Items)
	}
	// Clockwise order from 0.8: distances from the range start must increase.
	start := keyspace.FromFloat(0.8)
	for i := 1; i < len(res.Items); i++ {
		if start.Distance(res.Items[i-1].Key) >= start.Distance(res.Items[i].Key) {
			t.Fatal("wrap-around results out of clockwise order")
		}
	}
	if res.PeersScanned < 2 {
		t.Errorf("wrap-around scan covered %d peers; expected the walk to cross shards", res.PeersScanned)
	}

	// Limit stops the scan early, keeping the first items clockwise.
	lim, err := c.Nodes[7].RangeQuery(bg, keyspace.FromFloat(0.8), keyspace.FromFloat(0.1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Items) != 2 {
		t.Fatalf("limit ignored: %d items", len(lim.Items))
	}
	for i, want := range []float64{0.85, 0.92} {
		if lim.Items[i].Key != keyspace.FromFloat(want) {
			t.Errorf("limited item %d = %v, want key at %v", i, lim.Items[i].Key, want)
		}
	}
	if lim.Cost > res.Cost {
		t.Errorf("limited scan cost %d exceeds full scan cost %d", lim.Cost, res.Cost)
	}
}

func TestJoinMigratesItems(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var keys []keyspace.Key
	for i := 0; i < 60; i++ {
		k := keyspace.FromFloat(float64(i) / 60)
		keys = append(keys, k)
		if _, err := c.Nodes[0].Put(bg, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A new node joins; items in its arc must move to it and stay readable.
	newbie := mustNode(t, c.Fabric.Endpoint(), Config{Key: keyspace.FromFloat(0.5), MaxIn: 16, MaxOut: 16, Seed: 99})
	if err := newbie.Join(bg, c.Nodes[0].Self().Addr); err != nil {
		t.Fatal(err)
	}
	c.Nodes = append(c.Nodes, newbie)
	c.StabilizeAll(bg)
	for i, k := range keys {
		got, err := c.Nodes[2].Get(bg, k)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || got.Value[0] != byte(i) {
			t.Fatalf("item %d lost after join", i)
		}
	}
	if newbie.StoredItems() == 0 {
		t.Error("joining node received no items despite owning an arc")
	}
}

// TestSuccessorListMaintained verifies that stabilisation fills every
// node's successor list with its true ring successors, in ring order.
func TestSuccessorListMaintained(t *testing.T) {
	c := newTestCluster(t, 16)
	// A few extra rounds let the lists propagate (each round extends a
	// node's list by its successor's knowledge).
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	// True ring order per node: sort all keys, walk clockwise from self.
	for _, n := range c.Nodes {
		list := n.SuccList()
		if len(list) < minSuccList {
			t.Fatalf("node %s has %d successor-list entries, want >= %d", n.Self().Addr, len(list), minSuccList)
		}
		cur := n.Self()
		for i, p := range list {
			want := expectedOwner(c.Nodes, cur.Key+1)
			if p.Addr != want.Addr {
				t.Fatalf("node %s list[%d] = %s, want %s", n.Self().Addr, i, p.Addr, want.Addr)
			}
			cur = p
		}
	}
}

// TestAdoptSuccessorFromList kills two consecutive successors of a node
// and verifies stabilisation walks the successor list to the third — no
// long-range-link guessing involved.
func TestAdoptSuccessorFromList(t *testing.T) {
	c := newTestCluster(t, 12)
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	n := c.Nodes[0]
	list := n.SuccList()
	if len(list) < 3 {
		t.Fatalf("need 3 list entries, have %d", len(list))
	}
	byAddr := map[transport.Addr]*Node{}
	for _, m := range c.Nodes {
		byAddr[m.Self().Addr] = m
	}
	_ = byAddr[list[0].Addr].Close()
	_ = byAddr[list[1].Addr].Close()
	n.Stabilize(bg)
	if got := n.Succ().Addr; got != list[2].Addr {
		t.Fatalf("after killing two successors, succ = %s, want list[2] = %s", got, list[2].Addr)
	}
}

// TestReplicatedPutSurvivesOwnerCrash is the p2p-level durability core:
// with r=3, every key written before its owner crashes is still readable
// after the ring heals — served from a promoted replica.
func TestReplicatedPutSurvivesOwnerCrash(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 12, Seed: 21, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}

	const items = 36
	for i := 0; i < items; i++ {
		if _, err := c.Nodes[0].Put(bg, keyspace.FromFloat(float64(i)/items), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the owner of one key — any node but the querying one.
	var owner transport.PeerRef
	for i := 0; i < items; i++ {
		owner = expectedOwner(c.Nodes, keyspace.FromFloat(float64(i)/items))
		if owner.Addr != c.Nodes[0].Self().Addr {
			break
		}
	}
	if owner.Addr == c.Nodes[0].Self().Addr {
		t.Fatal("test setup: every key is owned by the querying node")
	}
	for _, n := range c.Nodes {
		if n.Self().Addr == owner.Addr {
			_ = n.Close()
		}
	}
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}

	for i := 0; i < items; i++ {
		k := keyspace.FromFloat(float64(i) / items)
		got, err := c.Nodes[0].Get(bg, k)
		if err != nil {
			t.Fatalf("get %d after owner crash: %v", i, err)
		}
		if !got.Found || got.Value[0] != byte(i) {
			t.Fatalf("item %d lost after owner crash (found=%v)", i, got.Found)
		}
	}
}

// TestReplicatedDeletePropagates proves a delete clears the replica chain:
// after the owner crashes, the deleted item must not resurrect from a
// stale copy.
func TestReplicatedDeletePropagates(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 10, Seed: 33, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	key := keyspace.FromFloat(0.44)
	if _, err := c.Nodes[1].Put(bg, key, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Nodes[2].Delete(bg, key); err != nil || !res.Found {
		t.Fatalf("delete: %+v err=%v", res, err)
	}
	owner := expectedOwner(c.Nodes, key)
	for _, n := range c.Nodes {
		if n.Self().Addr == owner.Addr {
			_ = n.Close()
		}
	}
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	got, err := c.Nodes[1].Get(bg, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Fatalf("deleted item resurrected from a replica: %q", got.Value)
	}
}

// TestCountPeers checks the ring-walk membership count: exact on a small
// healthy ring, shrinking after a crash heals, -1 when the cap is too low.
func TestCountPeers(t *testing.T) {
	c := newTestCluster(t, 9)
	if got := c.Nodes[3].CountPeers(bg, 64); got != 9 {
		t.Fatalf("CountPeers = %d, want 9", got)
	}
	if got := c.Nodes[3].CountPeers(bg, 4); got != -1 {
		t.Fatalf("CountPeers with low cap = %d, want -1", got)
	}
	_ = c.Nodes[5].Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	if got := c.Nodes[3].CountPeers(bg, 64); got != 8 {
		t.Fatalf("CountPeers after crash+heal = %d, want 8", got)
	}
}

func TestCrashAndHeal(t *testing.T) {
	c := newTestCluster(t, 24)
	// Kill a third of the nodes (not node 0, our query entry point).
	killed := 0
	for i := 1; i < len(c.Nodes) && killed < 8; i += 3 {
		_ = c.Nodes[i].Close()
		killed++
	}
	// A few stabilisation rounds heal the ring.
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	for i := 0; i < 50; i++ {
		key := keyspace.FromFloat(float64(i) / 50)
		want := expectedOwner(c.Nodes, key)
		got, _, err := c.Nodes[0].Lookup(bg, key)
		if err != nil {
			t.Fatalf("lookup %v after churn: %v", key, err)
		}
		if got.Addr != want.Addr {
			t.Errorf("lookup %v: owner %s, want %s", key, got.Addr, want.Addr)
		}
	}
}

// cancellingTransport wraps a Transport and cancels the given context after
// a fixed number of CallCtx invocations — a deterministic way to cancel a
// lookup mid-walk.
type cancellingTransport struct {
	transport.Transport
	cancel context.CancelFunc
	after  int64
	calls  atomic.Int64
}

func (c *cancellingTransport) CallCtx(ctx context.Context, addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.Transport.CallCtx(ctx, addr, req)
}

func (c *cancellingTransport) Call(addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	return c.CallCtx(context.Background(), addr, req)
}

// TestLookupCancelledBeforeCall proves a context cancelled before a
// multi-hop lookup aborts with ctx.Err() without issuing a single RPC.
func TestLookupCancelledBeforeCall(t *testing.T) {
	c := newTestCluster(t, 24)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, cost, err := c.Nodes[0].Lookup(ctx, keyspace.FromFloat(0.73))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lookup returned %v, want context.Canceled", err)
	}
	if cost != 0 {
		t.Errorf("cancelled lookup still spent %d messages", cost)
	}
}

// TestLookupCancelledMidWalk cancels the context after the second hop of a
// multi-hop lookup and verifies the walk stops promptly with ctx.Err()
// instead of backtracking through the "failed" hop.
func TestLookupCancelledMidWalk(t *testing.T) {
	c := newTestCluster(t, 48)
	// Build a fresh node whose outgoing transport we can instrument; it
	// joins the existing overlay, then looks up a far-away key.
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ct := &cancellingTransport{Transport: c.Fabric.Endpoint(), cancel: cancel, after: 1 << 60}
	n := mustNode(t, ct, Config{Key: keyspace.FromFloat(0.001), MaxIn: 8, MaxOut: 8, Seed: 5})
	if err := n.Join(bg, c.Nodes[0].Self().Addr); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Pick a key provably owned by a remote peer, so the lookup needs at
	// least two transport calls (one on self for the first hop, one remote).
	all := append(append([]*Node(nil), c.Nodes...), n)
	var key keyspace.Key
	for f := 0.05; f < 1; f += 0.05 {
		k := keyspace.FromFloat(f)
		if owner := expectedOwner(all, k); owner.Addr != n.Self().Addr && owner.Addr != n.Succ().Addr {
			key = k
			break
		}
	}

	// Arm the trigger: cancel on the 2nd call from now.
	ct.calls.Store(0)
	ct.after = 2
	_, _, err := n.Lookup(ctx, key)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-walk cancellation returned %v, want context.Canceled", err)
	}
	// The walk must stop at (or immediately after) the cancelling call: the
	// per-hop ctx check forbids starting new hops, and the in-memory
	// transport rejects cancelled calls at entry, so at most one extra call
	// can slip in between Add and cancel.
	if calls := ct.calls.Load(); calls > ct.after+1 {
		t.Errorf("lookup kept issuing RPCs after cancellation: %d calls", calls)
	}
}

func TestRangeQueryCancelled(t *testing.T) {
	c := newTestCluster(t, 16)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := c.Nodes[0].RangeQuery(ctx, keyspace.FromFloat(0.1), keyspace.FromFloat(0.9), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled range query returned %v, want context.Canceled", err)
	}
}

func TestClusterOverTCP(t *testing.T) {
	// A small live cluster on loopback sockets: overlay formation, data
	// operations and a crash, all over real TCP.
	const size = 8
	var nodes []*Node
	for i := 0; i < size; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := mustNode(t, ep, Config{
			Key:    keyspace.FromFloat(float64(i)/size + 0.01),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if i > 0 {
			if err := n.Join(bg, nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(bg)
		}
	}
	for _, n := range nodes {
		if err := n.Rewire(bg); err != nil {
			t.Fatal(err)
		}
	}
	key := keyspace.FromFloat(0.42)
	if _, err := nodes[3].Put(bg, key, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[6].Get(bg, key)
	if err != nil || !got.Found || string(got.Value) != "over-tcp" {
		t.Fatalf("tcp get = %+v %v", got, err)
	}
	if res, err := nodes[2].Delete(bg, key); err != nil || !res.Found {
		t.Fatalf("tcp delete: %+v err=%v", res, err)
	}
	// Crash one node; the ring heals and lookups still succeed.
	_ = nodes[5].Close()
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			if !n.isDown() {
				n.Stabilize(bg)
			}
		}
	}
	if _, _, err := nodes[1].Lookup(bg, keyspace.FromFloat(0.9)); err != nil {
		t.Fatalf("lookup after tcp crash: %v", err)
	}
}
