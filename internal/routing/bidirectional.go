package routing

import (
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// GreedyBidirectional routes by shrinking the *circular* (shorter-arc)
// distance to the target, using ring pointers in both directions plus
// long-range links in either role (out-links and in-links are both usable:
// connections are bidirectional once established).
//
// Unlike the clockwise router, bidirectional greedy can genuinely dead-end:
// a peer may have no unvisited alive neighbour closer to the target, at
// which point the query backtracks (the mechanism of the paper's §3). It is
// provided as an ablation: on healthy networks it shortens paths slightly;
// under churn its backtracking cost quantifies what the clockwise router's
// monotone progress buys.
func GreedyBidirectional(net *graph.Network, rg *ring.Ring, from graph.NodeID, target keyspace.Key) Result {
	res := Result{Owner: rg.OwnerOf(target), Path: []graph.NodeID{from}}
	budget := maxHopsFor(net.AliveCount())

	ownerKey := net.Node(res.Owner).Key
	visited := map[graph.NodeID]bool{from: true}
	knownDead := map[graph.NodeID]bool{}
	var stack []graph.NodeID
	cur := from

	for cur != res.Owner {
		if res.Cost() >= budget {
			return res
		}
		next, probes := closestUnvisited(net, cur, ownerKey, visited, knownDead)
		res.Probes += probes
		if next == graph.NoNode {
			if len(stack) == 0 {
				return res // wedged at the source (cannot happen on a stitched ring)
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			res.Backtracks++
			res.Path = append(res.Path, cur)
			continue
		}
		visited[next] = true
		stack = append(stack, cur)
		cur = next
		res.Hops++
		res.Path = append(res.Path, cur)
	}
	res.Found = true
	return res
}

// closestUnvisited returns the unvisited alive neighbour circularly closest
// to the owner's key, probing stale entries on the way; NoNode when every
// strictly-closer neighbour is exhausted.
func closestUnvisited(net *graph.Network, cur graph.NodeID, ownerKey keyspace.Key,
	visited, knownDead map[graph.NodeID]bool) (graph.NodeID, int) {

	n := net.Node(cur)
	curDist := n.Key.CircularDistance(ownerKey)

	type cand struct {
		id   graph.NodeID
		dist uint64
	}
	var cands []cand
	addCand := func(t graph.NodeID) {
		if t == graph.NoNode || t == cur || visited[t] || knownDead[t] {
			return
		}
		d := net.Node(t).Key.CircularDistance(ownerKey)
		// Only the ring successor may tie or regress: it guarantees
		// eventual progress along the stitched ring. Everything else must
		// strictly improve, or the walk could orbit.
		if d >= curDist && t != n.Succ {
			return
		}
		for _, c := range cands {
			if c.id == t {
				return
			}
		}
		cands = append(cands, cand{t, d})
	}
	for _, t := range n.Out {
		addCand(t)
	}
	for _, t := range n.In {
		addCand(t)
	}
	addCand(n.Succ)
	addCand(n.Pred)

	// Sort ascending by distance (insertion sort over a degree-sized list).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	probes := 0
	for _, c := range cands {
		if net.Node(c.id).Alive {
			return c.id, probes
		}
		probes++
		knownDead[c.id] = true
	}
	return graph.NoNode, probes
}
