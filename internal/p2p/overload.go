package p2p

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/transport"
)

// Overload retry policy: transport.ErrOverloaded means the peer shed the
// request before executing it — backpressure, not death. Treating it like
// ErrUnreachable evicts live peers (unlink, adopt-away, backtrack) and
// turns a load spike into a membership event. Instead, every call-site
// retries once after a short jittered backoff when the context still has
// the budget for it, and otherwise surfaces the typed error so the caller
// can tell a saturated peer from a dead one. Because a shed request never
// executed, this retry is safe even for non-idempotent ops (migrate).
const (
	// overloadBackoffBase is the minimum wait before the single retry.
	overloadBackoffBase = 5 * time.Millisecond
	// overloadBackoffJitter is the extra uniform wait in [0, jitter) —
	// de-synchronising the retries of the very callers whose simultaneity
	// overloaded the peer in the first place.
	overloadBackoffJitter = 10 * time.Millisecond
)

// callRetry is CallCtx plus the overload contract: a call shed with
// transport.ErrOverloaded is retried once after a jittered backoff,
// provided the context's deadline leaves room for the wait plus a
// comparable round trip; otherwise (or when the retry is shed too) the
// typed error is returned for the caller to surface, never to treat as
// proof of death.
func (n *Node) callRetry(ctx context.Context, addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	resp, err := n.tr.CallCtx(ctx, addr, req)
	if err == nil || !errors.Is(err, transport.ErrOverloaded) {
		return resp, err
	}
	backoff := overloadBackoffBase + time.Duration(n.rnd.Float64()*float64(overloadBackoffJitter))
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < 2*backoff {
		return resp, err // no budget to wait out the backoff
	}
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return n.tr.CallCtx(ctx, addr, req)
}

// Read retry policy: a read re-sent to a peer that already executed it is
// harmless — unlike a write, where "unreachable" may mean
// executed-but-unacked. So idempotent read paths (Get at the owner, scan
// pages, ring walks) also ride out transient unreachability — a dropped
// datagram on a lossy link, a connection reset mid-handshake — instead of
// immediately treating the peer as dead and falling back to replicas that
// may not exist (r=1 runs no chain, and a chain member honestly reporting
// "absent" would turn one lost packet into a wrong not-found).
const (
	// readRetryAttempts bounds the total sends of one read (first try
	// included).
	readRetryAttempts = 4
	// readRetryStep is the pause between read retries.
	readRetryStep = 5 * time.Millisecond
)

// readRetry is callRetry for idempotent reads: on top of the overload
// contract, unreachable answers are retried up to readRetryAttempts total
// sends with short pauses. Overload still surfaces per the overload
// contract (callRetry already retried once), and application-level
// failures (resp.OK = false) are never retried.
func (n *Node) readRetry(ctx context.Context, addr transport.Addr, req *transport.Request) (*transport.Response, error) {
	var resp *transport.Response
	var err error
	for attempt := 0; attempt < readRetryAttempts; attempt++ {
		if attempt > 0 {
			if serr := sleepCtx(ctx, readRetryStep); serr != nil {
				return resp, err
			}
		}
		resp, err = n.callRetry(ctx, addr, req)
		if err == nil || errors.Is(err, transport.ErrOverloaded) {
			return resp, err
		}
		if ctx.Err() != nil {
			return resp, err
		}
	}
	return resp, err
}

// fanoutRetry is transport.Fanout through callRetry: the same parallel
// shape, with each leg honouring the overload retry contract. Use it
// where a shed leg would otherwise read as a dead peer or a lost ack.
func (n *Node) fanoutRetry(ctx context.Context, addrs []transport.Addr, req *transport.Request) []transport.FanoutResult {
	results := make([]transport.FanoutResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr transport.Addr) {
			defer wg.Done()
			resp, err := n.callRetry(ctx, addr, req)
			results[i] = transport.FanoutResult{Addr: addr, Resp: resp, Err: err}
		}(i, addr)
	}
	wg.Wait()
	return results
}

// fanoutReadRetry is fanoutRetry for idempotent probes (pings, succ-list
// reads): each leg additionally rides out transient unreachability via
// readRetry. Liveness sweeps must use this, or one dropped datagram on a
// lossy link reads as a dead peer and splices a live node out of the ring.
func (n *Node) fanoutReadRetry(ctx context.Context, addrs []transport.Addr, req *transport.Request) []transport.FanoutResult {
	results := make([]transport.FanoutResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr transport.Addr) {
			defer wg.Done()
			resp, err := n.readRetry(ctx, addr, req)
			results[i] = transport.FanoutResult{Addr: addr, Resp: resp, Err: err}
		}(i, addr)
	}
	wg.Wait()
	return results
}

// aliveResult reads a liveness-probe outcome: an OK response is proof of
// life, and so is an overload shed — only a running peer can shed. Ping
// sweeps (successor adoption, backtracking) must use this, not OK(), or
// a peer riding out a load spike gets adopted away from.
func aliveResult(r transport.FanoutResult) bool {
	return r.OK() || errors.Is(r.Err, transport.ErrOverloaded)
}
