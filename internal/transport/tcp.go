package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport tuning defaults; override per endpoint with TCPOptions.
const (
	// defaultCallTimeout bounds one RPC round trip when the caller's
	// context carries no deadline; a peer that cannot answer within it is
	// treated as dead (the probe semantics routing relies on).
	defaultCallTimeout = 5 * time.Second
	// defaultPoolSize is the persistent-connection cap per peer.
	defaultPoolSize = 2
	// defaultIdleTimeout is how long a pooled connection may sit without
	// in-flight calls before the reaper closes it. Server-side connections
	// get 4x this before an idle read deadline fires, so the client side
	// always disconnects first.
	defaultIdleTimeout = 60 * time.Second
)

// TCPOption customises a TCP endpoint.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	poolSize    int
	callTimeout time.Duration
	idleTimeout time.Duration
}

// WithPoolSize sets the persistent-connection cap per peer (default 2).
func WithPoolSize(n int) TCPOption {
	return func(o *tcpOptions) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithCallTimeout sets the default per-call timeout applied when the
// caller's context has no deadline (default 5s).
func WithCallTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.callTimeout = d
		}
	}
}

// WithIdleTimeout sets how long a pooled connection may idle before being
// reaped (default 60s).
func WithIdleTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.idleTimeout = d
		}
	}
}

// TCPEndpoint is a Transport over real sockets: persistent pooled
// connections carrying length-prefixed JSON frames tagged with request ids,
// so many in-flight Calls multiplex over one connection in each direction.
// The server side reads frames in a loop and answers each request on its
// own goroutine; the client side demuxes responses by id. Broken
// connections are evicted and redialed on the next call.
type TCPEndpoint struct {
	ln   net.Listener
	pool *pool
	opts tcpOptions

	mu      sync.RWMutex
	handler Handler
	closed  bool
	conns   map[net.Conn]struct{} // live server-side connections

	wg         sync.WaitGroup
	stopReaper chan struct{}
}

// ListenTCP opens an endpoint on the given address ("127.0.0.1:0" picks a
// free port).
func ListenTCP(bind string, options ...TCPOption) (*TCPEndpoint, error) {
	opts := tcpOptions{
		poolSize:    defaultPoolSize,
		callTimeout: defaultCallTimeout,
		idleTimeout: defaultIdleTimeout,
	}
	for _, opt := range options {
		opt(&opts)
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	e := &TCPEndpoint{
		ln:         ln,
		pool:       newPool(opts.poolSize, opts.callTimeout, opts.callTimeout),
		opts:       opts,
		conns:      make(map[net.Conn]struct{}),
		stopReaper: make(chan struct{}),
	}
	e.wg.Add(2)
	go e.acceptLoop()
	go e.reapLoop()
	return e, nil
}

// Addr implements Transport.
func (e *TCPEndpoint) Addr() Addr { return Addr(e.ln.Addr().String()) }

// Serve implements Transport.
func (e *TCPEndpoint) Serve(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// reapLoop periodically closes idle pooled connections.
func (e *TCPEndpoint) reapLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.idleTimeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopReaper:
			return
		case <-ticker.C:
			e.pool.reap(e.opts.idleTimeout)
		}
	}
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
			e.mu.Lock()
			delete(e.conns, conn)
			e.mu.Unlock()
			_ = conn.Close()
		}()
	}
}

// serveConn is the server half of one multiplexed connection: read frames
// in a loop, answer each on its own goroutine so a slow handler never
// head-of-line-blocks the connection, and serialize response writes with a
// per-connection lock. Any protocol violation (oversized frame, garbage
// payload) or idle expiry ends the connection.
func (e *TCPEndpoint) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	wr := startConnWriter(conn, e.opts.callTimeout, func(error) { _ = conn.Close() })
	defer wr.close()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(4 * e.opts.idleTimeout))
		var req Request
		id, err := readMuxFrame(br, &req)
		if err != nil {
			return
		}
		e.mu.RLock()
		h := e.handler
		closed := e.closed
		e.mu.RUnlock()
		if closed {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			resp := &Response{OK: false, Err: "no handler"}
			if h != nil {
				resp = h(&req)
			}
			frame := acquireFrame()
			err := frame.encode(id, resp)
			if err != nil {
				err = frame.encode(id, &Response{OK: false, Err: err.Error()})
			}
			if err != nil {
				releaseFrame(frame)
				_ = conn.Close() // unblocks the read loop
				return
			}
			if wr.enqueue(context.Background(), frame) != nil {
				releaseFrame(frame) // a dead writer already closed the conn
			}
		}()
	}
}

// Call implements Transport.
func (e *TCPEndpoint) Call(addr Addr, req *Request) (*Response, error) {
	return e.CallCtx(context.Background(), addr, req)
}

// CallCtx implements Transport. It multiplexes the call over a pooled
// persistent connection; if the connection turns out to be stale before
// the request is sent (e.g. the peer restarted since it was dialed) it
// evicts it and retries once on a fresh dial. Once the request may have
// reached the peer, a failure returns without retrying — at-most-once
// delivery, so non-idempotent ops (migrate) never execute twice.
func (e *TCPEndpoint) CallCtx(ctx context.Context, addr Addr, req *Request) (*Response, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrUnreachable
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.callTimeout)
		defer cancel()
	}

	const attempts = 2
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		mc, err := e.pool.get(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		resp, err := mc.call(ctx, req)
		if err == nil {
			return resp, nil
		}
		broken, isBroken := err.(errConnBroken)
		if !isBroken {
			return nil, fmt.Errorf("%w: %w", ErrUnreachable, err) // timeout/cancel
		}
		e.pool.evict(addr, mc)
		if broken.sent {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrUnreachable, lastErr)
}

// Close implements Transport.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()

	err := e.ln.Close()
	close(e.stopReaper)
	e.pool.closeAll()
	for _, c := range conns {
		_ = c.Close() // unblocks server read loops
	}
	e.wg.Wait()
	return err
}
