package storage

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func TestPutGetDelete(t *testing.T) {
	var s Store
	if replaced := s.Put(10, []byte("a")); replaced {
		t.Error("first put cannot replace")
	}
	if replaced := s.Put(10, []byte("b")); !replaced {
		t.Error("second put must replace")
	}
	v, ok := s.Get(10)
	if !ok || !bytes.Equal(v, []byte("b")) {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get(11); ok {
		t.Error("missing key found")
	}
	if !s.Delete(10) {
		t.Error("delete failed")
	}
	if s.Delete(10) {
		t.Error("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestItemsSorted(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{50, 10, 30, 20, 40} {
		s.Put(k, nil)
	}
	items := s.Items()
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key < items[j].Key }) {
		t.Errorf("items out of order: %v", items)
	}
	if len(items) != 5 {
		t.Errorf("len = %d", len(items))
	}
}

func TestPutSortedProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		var s Store
		uniq := map[uint64]bool{}
		for _, k := range keys {
			s.Put(keyspace.Key(k), nil)
			uniq[k] = true
		}
		items := s.Items()
		if len(items) != len(uniq) {
			return false
		}
		for i := 1; i < len(items); i++ {
			if items[i-1].Key >= items[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanPlainRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: 25, End: 65}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	want := []keyspace.Key{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanWrappingRange(t *testing.T) {
	var s Store
	for _, k := range []keyspace.Key{5, 50, keyspace.MaxKey - 5} {
		s.Put(k, nil)
	}
	var got []keyspace.Key
	s.Scan(keyspace.Range{Start: keyspace.MaxKey - 10, End: 10}, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	if len(got) != 2 || got[0] != keyspace.MaxKey-5 || got[1] != 5 {
		t.Errorf("wrapping scan = %v", got)
	}
}

func TestScanFullRangeAndEarlyStop(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 50; k += 10 {
		s.Put(k, nil)
	}
	count := 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return true
	})
	if count != 5 {
		t.Errorf("full scan visited %d", count)
	}
	count = 0
	s.Scan(keyspace.FullRange(), func(Item) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanEmptyStore(t *testing.T) {
	var s Store
	s.Scan(keyspace.FullRange(), func(Item) bool {
		t.Fatal("empty store scanned something")
		return false
	})
}

func TestExtractRange(t *testing.T) {
	var s Store
	for k := keyspace.Key(0); k < 100; k += 10 {
		s.Put(k, []byte{byte(k)})
	}
	moved := s.ExtractRange(keyspace.Range{Start: 30, End: 60})
	if len(moved) != 3 { // 30, 40, 50
		t.Fatalf("moved %d items", len(moved))
	}
	if s.Len() != 7 {
		t.Errorf("kept %d items", s.Len())
	}
	if _, ok := s.Get(40); ok {
		t.Error("extracted item still present")
	}
	var dst Store
	dst.InsertBulk(moved)
	if v, ok := dst.Get(40); !ok || !bytes.Equal(v, []byte{40}) {
		t.Error("migration lost data")
	}
}

func TestExtractInsertRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var s Store
		n := 1 + rnd.Intn(100)
		for i := 0; i < n; i++ {
			s.Put(keyspace.Key(rnd.Uint64()), nil)
		}
		before := s.Len()
		rg := keyspace.Range{Start: keyspace.Key(rnd.Uint64()), End: keyspace.Key(rnd.Uint64())}
		if rg.Start == rg.End {
			continue
		}
		var dst Store
		dst.InsertBulk(s.ExtractRange(rg))
		if s.Len()+dst.Len() != before {
			t.Fatalf("items lost in migration: %d + %d != %d", s.Len(), dst.Len(), before)
		}
		// Nothing left in the source belongs to the range.
		s.Scan(rg, func(it Item) bool {
			t.Fatalf("item %v left behind in extracted range", it.Key)
			return false
		})
	}
}

func TestExtractRangeLimit(t *testing.T) {
	var s Store
	s.EnableDigest(8)
	for i := 0; i < 10; i++ {
		s.Put(keyspace.Key(100+i), []byte{byte(i)})
	}
	rg := keyspace.Range{Start: 100, End: 110}

	// Item cap: clockwise chunks of 4, More set until the range drains.
	got, more := s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 4 || !more {
		t.Fatalf("first chunk = %d items, more=%v; want 4, true", len(got), more)
	}
	for i, it := range got {
		if it.Key != keyspace.Key(100+i) {
			t.Fatalf("chunk out of clockwise order: item %d has key %v", i, it.Key)
		}
	}
	got, more = s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 4 || !more || got[0].Key != 104 {
		t.Fatalf("second chunk = %d items from %v, more=%v; want 4 from 104, true", len(got), got[0].Key, more)
	}
	got, more = s.ExtractRangeLimit(rg, 4, 0)
	if len(got) != 2 || more {
		t.Fatalf("final chunk = %d items, more=%v; want 2, false", len(got), more)
	}
	if s.Len() != 0 {
		t.Fatalf("%d items left after draining the range", s.Len())
	}
	// The maintained digest tracked every removal: an emptied store
	// digests as empty.
	if diff := antientropy.DiffLeaves(s.DigestLeaves(), nil); len(diff) != 0 {
		t.Fatalf("digest out of sync after chunked extraction: %d buckets differ", len(diff))
	}

	// Byte cap: at least one item always moves, then the cap closes the
	// chunk.
	for i := 0; i < 4; i++ {
		s.Put(keyspace.Key(200+i), make([]byte, 100))
	}
	rg = keyspace.Range{Start: 200, End: 210}
	got, more = s.ExtractRangeLimit(rg, 0, 250)
	if len(got) != 2 || !more {
		t.Fatalf("byte-capped chunk = %d items, more=%v; want 2, true", len(got), more)
	}
	got, more = s.ExtractRangeLimit(rg, 0, 50) // cap below one item
	if len(got) != 1 || !more {
		t.Fatalf("tiny byte cap must still move one item: %d items, more=%v", len(got), more)
	}

	// Wrap-around range: extraction runs clockwise from Start across the
	// top of the circle.
	var w Store
	w.Put(5, []byte("low"))
	w.Put(^keyspace.Key(0)-1, []byte("high"))
	got, more = w.ExtractRangeLimit(keyspace.Range{Start: ^keyspace.Key(0) - 2, End: 10}, 1, 0)
	if len(got) != 1 || !more || got[0].Key != ^keyspace.Key(0)-1 {
		t.Fatalf("wrap-around chunk = %+v, more=%v; want the high key first", got, more)
	}
}
