package p2p

import (
	"context"
	"fmt"
	"sync"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// ClusterConfig parameterises NewCluster.
type ClusterConfig struct {
	// Size is the number of nodes (>= 1).
	Size int
	// Keys is the identifier distribution (default GnutellaLike).
	Keys keydist.Distribution
	// Degrees is the cap distribution (default Constant(16)).
	Degrees degreedist.Distribution
	// Seed drives key/cap draws and node randomness.
	Seed int64
	// StabilizeRounds after all joins (default 2).
	StabilizeRounds int
	// Replicas is the per-node replication factor r (default 1).
	Replicas int
	// Alpha is the per-node routing parallelism (default 1).
	Alpha int
}

// Cluster is an in-process overlay running on the in-memory fabric — the
// integration-test and example entry point for the live runtime.
type Cluster struct {
	Fabric *transport.Fabric
	Nodes  []*Node
}

// NewCluster boots a cluster: the first node creates the overlay, the rest
// join through it, then everybody stabilises and rewires. The context bounds
// the whole boot sequence.
func NewCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("p2p: cluster size %d", cfg.Size)
	}
	if cfg.Keys == nil {
		cfg.Keys = keydist.GnutellaLike()
	}
	if cfg.Degrees == nil {
		cfg.Degrees = degreedist.Constant(16)
	}
	if cfg.StabilizeRounds == 0 {
		cfg.StabilizeRounds = 2
	}
	keyRand := rng.Derive(cfg.Seed, "cluster-keys")
	capRand := rng.Derive(cfg.Seed, "cluster-caps")

	c := &Cluster{Fabric: transport.NewFabric()}
	for i := 0; i < cfg.Size; i++ {
		caps := cfg.Degrees.Sample(capRand)
		node, err := NewNode(c.Fabric.Endpoint(), Config{
			Key:      cfg.Keys.Sample(keyRand),
			MaxIn:    caps,
			MaxOut:   caps,
			Replicas: cfg.Replicas,
			Alpha:    cfg.Alpha,
			Seed:     cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("p2p: node %d: %w", i, err)
		}
		if i > 0 {
			if err := node.Join(ctx, c.Nodes[0].Self().Addr); err != nil {
				return nil, fmt.Errorf("p2p: node %d join: %w", i, err)
			}
		}
		c.Nodes = append(c.Nodes, node)
	}
	for round := 0; round < cfg.StabilizeRounds; round++ {
		c.StabilizeAll(ctx)
	}
	c.RewireAll(ctx)
	if err := ctx.Err(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// StabilizeAll runs one stabilisation round across the cluster, all nodes
// in parallel — the live topology has no global scheduler, and Chord
// stabilisation tolerates (is designed for) concurrent rounds.
func (c *Cluster) StabilizeAll(ctx context.Context) {
	c.forAllAlive(func(n *Node) { n.Stabilize(ctx) })
}

// RewireAll rebuilds every node's long-range links, all nodes in parallel.
func (c *Cluster) RewireAll(ctx context.Context) {
	c.forAllAlive(func(n *Node) { _ = n.Rewire(ctx) })
}

// forAllAlive applies fn to every alive node concurrently and waits.
func (c *Cluster) forAllAlive(fn func(*Node)) {
	var wg sync.WaitGroup
	for _, n := range c.Nodes {
		if n.isDown() {
			continue
		}
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			fn(n)
		}(n)
	}
	wg.Wait()
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		_ = n.Close()
	}
}

func (n *Node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}
