package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// BenchmarkWALAppend measures a single-appender write path under each
// fsync policy with a 128-byte value (the conformance workload shape).
func BenchmarkWALAppend(b *testing.B) {
	val := make([]byte, 128)
	for _, p := range []Policy{PolicyAlways, PolicyInterval, PolicyNever} {
		b.Run(p.String(), func(b *testing.B) {
			e, _, err := Open(Options{Dir: b.TempDir(), Policy: p})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.SetBytes(int64(payloadLen + len(val) + 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := Record{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutPut, Key: keyspace.Key(i), Value: val}}
				if err := e.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendParallel exercises group commit: many goroutines
// appending under PolicyAlways should share fsyncs.
func BenchmarkWALAppendParallel(b *testing.B) {
	val := make([]byte, 128)
	e, _, err := Open(Options{Dir: b.TempDir(), Policy: PolicyAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.SetBytes(int64(payloadLen + len(val) + 8))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			rec := Record{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutPut, Key: keyspace.Key(i), Value: val}}
			if err := e.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecovery measures Open (replay + post-recovery compaction)
// against a log of N puts. The template log is built once; each
// iteration restores it into a fresh directory outside the timer.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			template := b.TempDir()
			e, _, err := Open(Options{Dir: template, Policy: PolicyNever})
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 64)
			for i := 0; i < n; i++ {
				rec := Record{Store: StorePrimary, Mut: storage.Mutation{Op: storage.MutPut, Key: keyspace.Key(i), Value: val}}
				if err := e.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				b.Fatal(err)
			}
			src := filepath.Join(template, walFile)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				if err := copyFile(src, filepath.Join(dir, walFile)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				e, rec, err := Open(Options{Dir: dir, Policy: PolicyNever})
				if err != nil {
					b.Fatal(err)
				}
				if rec.Replayed != n {
					b.Fatalf("replayed %d, want %d", rec.Replayed, n)
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
