package churn

import (
	"math/rand"
	"testing"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/ring"
)

func build(n int) (*graph.Network, *ring.Ring) {
	g := graph.New()
	r := ring.New(g)
	step := keyspace.MaxKey / keyspace.Key(n)
	for i := 0; i < n; i++ {
		node := g.Add(keyspace.Key(i)*step, 8, 8)
		r.Insert(node.ID)
	}
	return g, r
}

func TestKillFractionCounts(t *testing.T) {
	g, r := build(1000)
	victims := KillFraction(g, r, 0.33, rand.New(rand.NewSource(1)))
	if len(victims) != 330 {
		t.Errorf("killed %d, want 330", len(victims))
	}
	if g.AliveCount() != 670 {
		t.Errorf("alive %d, want 670", g.AliveCount())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKillFractionZeroAndClamp(t *testing.T) {
	g, r := build(10)
	if v := KillFraction(g, r, 0, rand.New(rand.NewSource(2))); v != nil {
		t.Error("zero fraction must kill nobody")
	}
	KillFraction(g, r, 5.0, rand.New(rand.NewSource(3)))
	if g.AliveCount() < 1 {
		t.Error("at least one peer must survive")
	}
}

func TestKillFractionVictimsUnique(t *testing.T) {
	g, r := build(500)
	victims := KillFraction(g, r, 0.5, rand.New(rand.NewSource(4)))
	seen := map[graph.NodeID]bool{}
	for _, v := range victims {
		if seen[v] {
			t.Fatalf("victim %d killed twice", v)
		}
		seen[v] = true
		if g.Node(v).Alive {
			t.Fatalf("victim %d still alive", v)
		}
	}
}

func TestKillFractionRingSurvives(t *testing.T) {
	g, r := build(200)
	KillFraction(g, r, 0.33, rand.New(rand.NewSource(5)))
	// The alive ring must still be a single cycle.
	start := r.RandomAlive(rand.New(rand.NewSource(6)))
	count := 1
	for id := g.Node(start).Succ; id != start; id = g.Node(id).Succ {
		if !g.Node(id).Alive {
			t.Fatal("ring pointer leads to a dead peer")
		}
		count++
		if count > g.AliveCount()+1 {
			t.Fatal("ring walk does not close")
		}
	}
	if count != g.AliveCount() {
		t.Errorf("ring cycle covers %d of %d alive peers", count, g.AliveCount())
	}
}
