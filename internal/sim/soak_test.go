package sim

import (
	"testing"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
)

// TestLifecycleSoak drives a network through repeated grow → churn → rewire
// cycles, checking every structural invariant after each phase. This is the
// failure-injection test for the whole stack: the ring must stay a cycle,
// link accounting must stay symmetric and lookups must keep succeeding
// regardless of the order of operations.
func TestLifecycleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := DefaultConfig()
	cfg.TargetSize = 3000 // headroom: the soak interleaves its own growth
	cfg.Checkpoints = []int{3000}
	cfg.Keys = keydist.GnutellaLike()
	cfg.Degrees = degreedist.PaperRealistic()
	cfg.QueriesPerMeasure = 150
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	check := func(phase string, size int) {
		t.Helper()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s (size %d): %v", phase, size, err)
		}
	}

	size := 200
	s.GrowTo(size)
	s.RewireAll()
	check("initial build", size)

	for cycle := 0; cycle < 4; cycle++ {
		size += 300
		s.GrowTo(size)
		check("grow", size)

		m := s.Measure(false)
		if m.Failed != 0 {
			t.Fatalf("cycle %d: %d failed lookups before churn", cycle, m.Failed)
		}

		s.Churn(0.15)
		check("churn", s.Net().AliveCount())

		m = s.Measure(true)
		if m.Failed != 0 {
			t.Fatalf("cycle %d: %d failed lookups under churn", cycle, m.Failed)
		}

		// Growth continues on the churned network (joins route around
		// corpses), then a rewiring pass drops the stale links.
		size = s.Net().AliveCount() + 200
		s.GrowTo(size)
		check("regrow after churn", size)

		s.RewireAll()
		check("rewire", size)

		// After rewiring no alive peer should hold links to the dead.
		stale := 0
		s.Net().ForEachAlive(func(n *graph.Node) {
			for _, tgt := range n.Out {
				if !s.Net().Node(tgt).Alive {
					stale++
				}
			}
		})
		if stale != 0 {
			t.Fatalf("cycle %d: %d stale links survived rewiring", cycle, stale)
		}

		m = s.Measure(false)
		if m.Failed != 0 {
			t.Fatalf("cycle %d: %d failed lookups after heal", cycle, m.Failed)
		}
		if m.AvgSearchCost > 20 {
			t.Fatalf("cycle %d: cost %.1f exploded", cycle, m.AvgSearchCost)
		}
	}
}

// TestGrowOnChurnedNetwork verifies joins work when a large fraction of the
// network is dead (walkers and wiring must skip corpses).
func TestGrowOnChurnedNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetSize = 2000
	cfg.Checkpoints = []int{2000}
	cfg.QueriesPerMeasure = 100
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.GrowTo(400)
	s.RewireAll()
	s.Churn(0.4)
	s.GrowTo(600)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := s.Measure(true)
	if m.Failed != 0 {
		t.Fatalf("%d failures growing on a churned network", m.Failed)
	}
}

// TestAddPeerReturnsWiredNode covers the facade hook.
func TestAddPeerReturnsWiredNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetSize = 300
	cfg.Checkpoints = []int{300}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.GrowTo(250)
	// Rewire first: in a pure-growth network the in-degree budget is fully
	// consumed by earlier joiners, so a fresh peer would be refused
	// everywhere — redistributing via rewiring is exactly what the paper's
	// periodic rewiring is for.
	s.RewireAll()
	id := s.AddPeer()
	n := s.Net().Node(id)
	if !n.Alive || n.Succ == graph.NoNode {
		t.Error("AddPeer returned an unspliced node")
	}
	if len(n.Out) == 0 {
		t.Error("AddPeer returned an unwired node")
	}
	if s.Net().AliveCount() != 251 {
		t.Errorf("alive = %d", s.Net().AliveCount())
	}
}

// TestRewireOne covers the benchmark hook.
func TestRewireOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetSize = 300
	cfg.Checkpoints = []int{300}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.GrowTo(300)
	id := s.Net().AliveIDs()[7]
	st := s.RewireOne(id)
	if st.LinksWanted != s.Net().Node(id).MaxOut {
		t.Errorf("stats: %+v", st)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
