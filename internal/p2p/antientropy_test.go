package p2p

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
)

func nodeByAddr(t testing.TB, nodes []*Node, addr transport.Addr) *Node {
	t.Helper()
	for _, n := range nodes {
		if n.Self().Addr == addr {
			return n
		}
	}
	t.Fatalf("no node at %s", addr)
	return nil
}

// arcKeys returns count keys walking counter-clockwise from owner's own key
// — the keys most certainly inside the owner's arc.
func arcKeys(owner *Node, count int) []keyspace.Key {
	keys := make([]keyspace.Key, count)
	for i := range keys {
		keys[i] = owner.Self().Key - keyspace.Key(i)
	}
	return keys
}

// TestDigestSyncRepairsDivergence is the tentpole's core proof: every way a
// replica can diverge — missing copies, stale values, a resurrected delete,
// stray keys the owner never had — is repaired by one AntiEntropy pass, and
// the sync stats count exactly the divergence, not the arc.
func TestDigestSyncRepairsDivergence(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 10, Seed: 17, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}

	owner := c.Nodes[4]
	keys := arcKeys(owner, 7)
	for i, k := range keys {
		if got := expectedOwner(c.Nodes, k); got.Addr != owner.Self().Addr {
			t.Fatalf("test setup: key %d owned by %s, not the chosen owner", i, got.Addr)
		}
	}
	// Background load elsewhere on the ring, so "only the divergence moves"
	// is a real claim, not an artefact of an otherwise-empty store.
	for i := 0; i < 24; i++ {
		if _, err := c.Nodes[i%3].Put(bg, keyspace.FromFloat(float64(i)/24+0.017), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys[:6] {
		if _, err := c.Nodes[i%len(c.Nodes)].Put(bg, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// keys[5] is deleted: the owner keeps it as a tombstone.
	if res, err := c.Nodes[2].Delete(bg, keys[5]); err != nil || !res.Found {
		t.Fatalf("delete: %+v %v", res, err)
	}

	chain := owner.SuccList()
	if len(chain) < 2 {
		t.Fatalf("owner chain too short: %d", len(chain))
	}
	replica := nodeByAddr(t, c.Nodes, chain[0].Addr)

	// Diverge the first replica behind the owner's back.
	replica.DropReplica(keys[0])                     // missing copy
	replica.DropReplica(keys[1])                     // missing copy
	replica.InjectReplica(keys[2], []byte("stale"))  // stale value
	replica.InjectReplica(keys[5], []byte("zombie")) // resurrected delete
	stray := owner.Self().Key - 1000                 // never written anywhere
	replica.InjectReplica(stray, []byte("stray"))    // no owner record
	if got := expectedOwner(c.Nodes, stray); got.Addr != owner.Self().Addr {
		t.Fatalf("test setup: stray key not in the owner's arc")
	}

	stats := owner.AntiEntropy(bg)
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (one per chain member)", stats.Rounds)
	}
	if stats.KeysPushed != 3 || stats.TombsPushed != 1 || stats.Dropped != 1 {
		t.Errorf("stats = %+v, want 3 pushed / 1 tombstone / 1 dropped", stats)
	}

	for i, k := range keys[:5] {
		v, ok := replica.ReplicaValue(k)
		if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Errorf("key %d not repaired: %q, %v", i, v, ok)
		}
	}
	if _, ok := replica.ReplicaValue(keys[5]); ok {
		t.Error("resurrected delete survived the sync")
	}
	if !replica.ReplicaDeleted(keys[5]) {
		t.Error("replica did not learn the missed delete")
	}
	if _, ok := replica.ReplicaValue(stray); ok {
		t.Error("stray replica key survived the sync")
	}

	// Convergence: a second pass moves nothing.
	stats = owner.AntiEntropy(bg)
	if stats.KeysPushed != 0 || stats.TombsPushed != 0 || stats.Dropped != 0 || stats.LeavesDiffed != 0 {
		t.Errorf("second pass still moved data: %+v", stats)
	}
	if stats.Messages != 2 {
		t.Errorf("in-sync pass cost %d messages, want 2 (one digest per chain member)", stats.Messages)
	}
}

// TestSyncCostProportionalToDivergence pins the headline property with
// numbers: an arc of many items with a handful diverged moves exactly that
// handful, and the in-sync chain member costs one digest RPC.
func TestSyncCostProportionalToDivergence(t *testing.T) {
	c, err := NewCluster(bg, ClusterConfig{Size: 8, Seed: 5, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}

	owner := c.Nodes[2]
	const arcSize, diverged = 120, 4
	keys := arcKeys(owner, arcSize)
	for i, k := range keys {
		if _, err := c.Nodes[i%len(c.Nodes)].Put(bg, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	replica := nodeByAddr(t, c.Nodes, owner.SuccList()[0].Addr)
	for _, k := range keys[:diverged] {
		replica.DropReplica(k)
	}

	stats := owner.AntiEntropy(bg)
	if stats.KeysPushed != diverged {
		t.Errorf("pushed %d keys, want exactly the %d diverged (arc holds %d)",
			stats.KeysPushed, diverged, arcSize)
	}
	for i, k := range keys[:diverged] {
		if v, ok := replica.ReplicaValue(k); !ok || v[0] != byte(i) {
			t.Errorf("diverged key %d not repaired", i)
		}
	}
}

// TestReplicaGC proves memory is reclaimed after a chain membership shift:
// when a new node splices in front of a replica, the copies the replica
// held for its former predecessor's arc fall outside its new chain region
// and stabilisation drops them.
func TestReplicaGC(t *testing.T) {
	fabric := transport.NewFabric()
	mk := func(f float64, seed int64) *Node {
		return mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(f), Replicas: 2, Seed: seed})
	}
	a, b, cn := mk(0.1, 1), mk(0.4, 2), mk(0.7, 3)
	nodes := []*Node{a, b, cn}
	for _, n := range nodes[1:] {
		if err := n.Join(bg, a.Self().Addr); err != nil {
			t.Fatal(err)
		}
	}
	stabilize := func(list []*Node, rounds int) {
		for i := 0; i < rounds; i++ {
			for _, n := range list {
				if !n.isDown() {
					n.Stabilize(bg)
				}
			}
		}
	}
	stabilize(nodes, 4)

	// Fill B's arc (0.1, 0.4]; with r=2 its successor C replicates it.
	const items = 10
	for i := 0; i < items; i++ {
		if _, err := a.Put(bg, keyspace.FromFloat(0.2+float64(i)/100), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cn.ReplicaItems(); got != items {
		t.Fatalf("C holds %d replica items, want %d", got, items)
	}

	// D joins between B and C: C's chain region shrinks to (D, C] and the
	// copies of B's arc it still holds are stranded.
	d := mk(0.5, 4)
	if err := d.Join(bg, a.Self().Addr); err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, d)
	stabilize(nodes, 4)

	if got := cn.ReplicaItems(); got != 0 {
		t.Errorf("C still holds %d stranded replica items after GC", got)
	}
	// The data is not lost — it lives at its owner and its current chain.
	for i := 0; i < items; i++ {
		got, err := d.Get(bg, keyspace.FromFloat(0.2+float64(i)/100))
		if err != nil || !got.Found {
			t.Fatalf("key %d unreadable after GC: %v", i, err)
		}
	}

	// The boundary: GC must keep what C legitimately replicates — its
	// immediate predecessor D's arc — through any number of rounds.
	kd := keyspace.FromFloat(0.45) // owned by D, replicated at C
	if _, err := a.Put(bg, kd, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	stabilize(nodes, 4)
	if v, ok := cn.ReplicaValue(kd); !ok || string(v) != "keep" {
		t.Errorf("GC discarded a live chain copy (got %q, %v)", v, ok)
	}
}

// TestTombstoneStopsResurrection closes the missed-delete window end to
// end: a replica that reacquired a deleted key (stale state) is cleansed by
// anti-entropy, so even after the owner crashes, reads keep reporting the
// key deleted instead of serving the zombie copy.
func TestTombstoneStopsResurrection(t *testing.T) {
	fabric := transport.NewFabric()
	mk := func(f float64, seed int64) *Node {
		return mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(f), Replicas: 2, Seed: seed})
	}
	a, b, cn := mk(0.1, 1), mk(0.5, 2), mk(0.9, 3)
	nodes := []*Node{a, b, cn}
	for _, n := range nodes[1:] {
		if err := n.Join(bg, a.Self().Addr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for _, n := range nodes {
			n.Stabilize(bg)
		}
	}

	k := keyspace.FromFloat(0.45) // owner B, replica C
	if _, err := a.Put(bg, k, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if res, err := a.Delete(bg, k); err != nil || !res.Found {
		t.Fatalf("delete: %+v %v", res, err)
	}
	// C reverts to a stale copy (a missed delete / state restored from
	// before the delete).
	cn.InjectReplica(k, []byte("doomed"))

	if stats := b.AntiEntropy(bg); stats.TombsPushed != 1 {
		t.Fatalf("sync stats = %+v, want the one missed delete propagated", stats)
	}
	if _, ok := cn.ReplicaValue(k); ok {
		t.Fatal("zombie copy survived anti-entropy")
	}

	_ = b.Close()
	for i := 0; i < 4; i++ {
		for _, n := range nodes {
			if !n.isDown() {
				n.Stabilize(bg)
			}
		}
	}
	got, err := a.Get(bg, k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Fatalf("deleted key resurrected after owner crash: %q", got.Value)
	}
}

// TestMigrateCarriesTombstones: a node joining into an arc with a fresh
// delete inherits the tombstone with the arc, so the delete keeps holding
// under the new owner.
func TestMigrateCarriesTombstones(t *testing.T) {
	fabric := transport.NewFabric()
	mk := func(f float64, seed int64) *Node {
		return mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(f), Seed: seed})
	}
	a, b := mk(0.1, 1), mk(0.6, 2)
	if err := b.Join(bg, a.Self().Addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a.Stabilize(bg)
		b.Stabilize(bg)
	}
	k := keyspace.FromFloat(0.4) // owned by B
	if _, err := a.Put(bg, k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Delete(bg, k); err != nil {
		t.Fatal(err)
	}
	// C joins and takes over (0.1, 0.5] — including the deleted key.
	cn := mk(0.5, 3)
	if err := cn.Join(bg, a.Self().Addr); err != nil {
		t.Fatal(err)
	}
	n := cn
	n.mu.Lock()
	_, dead := n.store.Tombstone(k)
	n.mu.Unlock()
	if !dead {
		t.Error("migrated arc lost its tombstone")
	}
}

// TestSizeEstimateConverges builds a ring far past the old 128-peer walk
// cap and checks the gossip estimate lands within 20% of the true size on
// every node — with no O(N) walks anywhere.
func TestSizeEstimateConverges(t *testing.T) {
	const size = 150
	fabric := transport.NewFabric()
	nodes := make([]*Node, size)
	for i := 0; i < size; i++ {
		// Near-even spacing with deterministic jitter: local density
		// estimates are good but not trivially exact, so the test also
		// exercises the gossip averaging.
		f := (float64(i) + 0.25*math.Sin(float64(i)*1.7)) / size
		nodes[i] = mustNode(t, fabric.Endpoint(), Config{Key: keyspace.FromFloat(f), Seed: int64(i)})
		if i > 0 {
			if err := nodes[i].Join(bg, nodes[i-1].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 8; round++ {
		for _, n := range nodes {
			n.Stabilize(bg)
		}
	}
	for i, n := range nodes {
		est := n.SizeEstimate()
		if math.Abs(est-size)/size > 0.20 {
			t.Errorf("node %d estimates %.1f peers, want within 20%% of %d", i, est, size)
		}
	}
}

// TestSizeEstimateExactOnTinyRing: when the successor list wraps the whole
// ring the estimate is an exact count, not a density guess.
func TestSizeEstimateExactOnTinyRing(t *testing.T) {
	c := newTestCluster(t, 3)
	for i := 0; i < 4; i++ {
		c.StabilizeAll(bg)
	}
	for _, n := range c.Nodes {
		if est := n.SizeEstimate(); est != 3 {
			t.Errorf("node %s estimates %.2f, want exactly 3", n.Self().Addr, est)
		}
	}
}

func TestChunkReplicate(t *testing.T) {
	mkItems := func(n, valSize int) []storage.Item {
		items := make([]storage.Item, n)
		for i := range items {
			items[i] = storage.Item{Key: keyspace.Key(i), Value: make([]byte, valSize)}
		}
		return items
	}
	tombs := []storage.Tombstone{{Key: 1, At: 9}}
	drop := []keyspace.Key{2}

	// Item-count bound.
	reqs := chunkReplicate(mkItems(maxReplicateItems*2+5, 1), tombs, drop)
	if len(reqs) != 3 {
		t.Fatalf("%d chunks, want 3", len(reqs))
	}
	total := 0
	for i, r := range reqs {
		if len(r.Items) > maxReplicateItems {
			t.Errorf("chunk %d carries %d items", i, len(r.Items))
		}
		total += len(r.Items)
	}
	if total != maxReplicateItems*2+5 {
		t.Errorf("chunks carry %d items in total", total)
	}
	// Tombstones and drops ride once, in the first frame.
	if len(reqs[0].Tombs) != 1 || len(reqs[0].Drop) != 1 {
		t.Error("first chunk lost the tombstones/drops")
	}
	if len(reqs[1].Tombs) != 0 || len(reqs[2].Drop) != 0 {
		t.Error("tombstones/drops duplicated across chunks")
	}

	// Byte bound: 3 MiB values must split well under the 16 MiB frame cap.
	reqs = chunkReplicate(mkItems(4, 3<<20), nil, nil)
	if len(reqs) != 4 {
		t.Fatalf("%d byte-bounded chunks, want 4", len(reqs))
	}

	// A pure tombstone/drop plan still produces one frame.
	reqs = chunkReplicate(nil, tombs, drop)
	if len(reqs) != 1 || len(reqs[0].Tombs) != 1 || len(reqs[0].Drop) != 1 {
		t.Fatalf("empty-items plan = %+v", reqs)
	}
}

// BenchmarkAntiEntropySync measures one repair pass over a 2-node chain
// with a fixed divergence: the digest round plus the targeted pushes.
func BenchmarkAntiEntropySync(b *testing.B) {
	c, err := NewCluster(bg, ClusterConfig{Size: 6, Seed: 9, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 6; round++ {
		c.StabilizeAll(bg)
	}
	owner := c.Nodes[1]
	const arcSize, diverged = 256, 16
	keys := arcKeys(owner, arcSize)
	for i, k := range keys {
		if _, err := c.Nodes[i%len(c.Nodes)].Put(bg, k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			b.Fatal(err)
		}
	}
	replica := nodeByAddr(b, c.Nodes, owner.SuccList()[0].Addr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, k := range keys[:diverged] {
			replica.DropReplica(k)
		}
		b.StartTimer()
		if stats := owner.AntiEntropy(bg); stats.KeysPushed != diverged {
			b.Fatalf("pushed %d, want %d", stats.KeysPushed, diverged)
		}
	}
}
