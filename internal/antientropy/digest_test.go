package antientropy

import (
	"reflect"
	"testing"

	"github.com/oscar-overlay/oscar/internal/keyspace"
)

func TestHashesDistinguishStates(t *testing.T) {
	k := keyspace.FromFloat(0.3)
	if ItemHash(k, []byte("a")) == ItemHash(k, []byte("b")) {
		t.Error("different values hash equal")
	}
	if ItemHash(k, []byte("a")) == ItemHash(keyspace.FromFloat(0.4), []byte("a")) {
		t.Error("different keys hash equal")
	}
	if ItemHash(k, nil) == TombHash(k) {
		t.Error("empty item collides with tombstone")
	}
	if ItemHash(k, []byte("x")) != ItemHash(k, []byte("x")) {
		t.Error("hash not deterministic")
	}
	// The tombstone hash must not depend on anything but the key: every
	// node that applied the delete digests identically.
	if TombHash(k) != TombHash(k) {
		t.Error("tombstone hash not deterministic")
	}
}

func TestBucketPartitionsCircle(t *testing.T) {
	if got := Bucket(8, 0); got != 0 {
		t.Errorf("Bucket(8, 0) = %d", got)
	}
	if got := Bucket(8, keyspace.MaxKey); got != 255 {
		t.Errorf("Bucket(8, max) = %d", got)
	}
	if got := Bucket(8, keyspace.FromFloat(0.5)); got != 128 {
		t.Errorf("Bucket(8, 0.5) = %d", got)
	}
	if got := Bucket(1, keyspace.FromFloat(0.75)); got != 1 {
		t.Errorf("Bucket(1, 0.75) = %d", got)
	}
}

func TestTreeToggleSemantics(t *testing.T) {
	tr := NewTree(4)
	k1, k2 := keyspace.FromFloat(0.1), keyspace.FromFloat(0.9)
	h1, h2 := ItemHash(k1, []byte("v1")), ItemHash(k2, []byte("v2"))

	tr.Apply(k1, h1)
	tr.Apply(k2, h2)
	if tr.Root() == 0 {
		t.Fatal("non-empty tree has zero root")
	}

	// Removing both states restores the empty digest.
	tr.Apply(k1, h1)
	tr.Apply(k2, h2)
	if tr.Root() != 0 {
		t.Error("toggling all states out left a non-zero root")
	}
	for i, l := range tr.Leaves() {
		if l != 0 {
			t.Errorf("leaf %d non-zero after full removal", i)
		}
	}

	// Replace: toggle old out, new in; equals a tree built fresh.
	tr.Apply(k1, h1)
	tr.Apply(k1, h1)
	tr.Apply(k1, ItemHash(k1, []byte("v1b")))
	fresh := NewTree(4)
	fresh.Apply(k1, ItemHash(k1, []byte("v1b")))
	if !reflect.DeepEqual(tr.Leaves(), fresh.Leaves()) {
		t.Error("replace path diverges from fresh build")
	}
}

func TestTreeOrderIndependence(t *testing.T) {
	keys := []keyspace.Key{
		keyspace.FromFloat(0.11), keyspace.FromFloat(0.52),
		keyspace.FromFloat(0.521), keyspace.FromFloat(0.97),
	}
	a, b := NewTree(8), NewTree(8)
	for _, k := range keys {
		a.Apply(k, ItemHash(k, []byte("v")))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Apply(keys[i], ItemHash(keys[i], []byte("v")))
	}
	if !reflect.DeepEqual(a.Leaves(), b.Leaves()) {
		t.Error("digest depends on insertion order")
	}
}

func TestDiffLeaves(t *testing.T) {
	a := []uint64{1, 2, 3, 0}
	b := []uint64{1, 9, 3, 0}
	if got := DiffLeaves(a, b); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("diff = %v", got)
	}
	if got := DiffLeaves(a, a); got != nil {
		t.Errorf("self-diff = %v", got)
	}
	// nil reads as all-zero: every non-empty bucket of the other side.
	if got := DiffLeaves(a, nil); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("diff vs nil = %v", got)
	}
}

func TestDiffPlan(t *testing.T) {
	k := func(f float64) keyspace.Key { return keyspace.FromFloat(f) }
	owner := []State{
		{Key: k(0.1), Hash: ItemHash(k(0.1), []byte("same"))},
		{Key: k(0.2), Hash: ItemHash(k(0.2), []byte("fresh"))},   // stale at replica
		{Key: k(0.3), Hash: ItemHash(k(0.3), []byte("missing"))}, // absent at replica
		{Key: k(0.4), Hash: TombHash(k(0.4)), Deleted: true},     // replica missed the delete
		{Key: k(0.5), Hash: TombHash(k(0.5)), Deleted: true},     // both deleted: agree
	}
	replica := []State{
		{Key: k(0.1), Hash: ItemHash(k(0.1), []byte("same"))},
		{Key: k(0.2), Hash: ItemHash(k(0.2), []byte("stale"))},
		{Key: k(0.4), Hash: ItemHash(k(0.4), []byte("resurrected"))},
		{Key: k(0.5), Hash: TombHash(k(0.5)), Deleted: true},
		{Key: k(0.6), Hash: ItemHash(k(0.6), []byte("stray"))}, // no owner state
	}
	p := Diff(owner, replica)
	if !reflect.DeepEqual(p.Push, []keyspace.Key{k(0.2), k(0.3)}) {
		t.Errorf("push = %v", p.Push)
	}
	if !reflect.DeepEqual(p.Tombs, []keyspace.Key{k(0.4)}) {
		t.Errorf("tombs = %v", p.Tombs)
	}
	if !reflect.DeepEqual(p.Drop, []keyspace.Key{k(0.6)}) {
		t.Errorf("drop = %v", p.Drop)
	}
	if p.Size() != 4 || p.Empty() {
		t.Errorf("size = %d, empty = %v", p.Size(), p.Empty())
	}
	if !Diff(nil, nil).Empty() {
		t.Error("empty diff not empty")
	}
}

func TestFilterBuckets(t *testing.T) {
	states := []State{
		{Key: keyspace.FromFloat(0.01)}, // bucket 2 at depth 8
		{Key: keyspace.FromFloat(0.5)},  // bucket 128
		{Key: keyspace.FromFloat(0.99)}, // bucket 253
	}
	got := FilterBuckets(states, 8, []int{128, 253})
	if len(got) != 2 || got[0].Key != states[1].Key || got[1].Key != states[2].Key {
		t.Errorf("filter = %v", got)
	}
	if got := FilterBuckets(states, 8, nil); got != nil {
		t.Errorf("empty bucket set kept %v", got)
	}
}
