// Package wal implements the durable storage engine behind a node: an
// append-only, CRC-32C-framed write-ahead log of primitive storage
// mutations plus periodically compacted snapshots of the full store
// state. Recovery is snapshot load + log-tail replay, tolerant of a
// torn final frame (the crash window of an in-flight append).
//
// On disk a data directory holds:
//
//	wal.log       frames appended since the last snapshot
//	snapshot      full store state at some instant (atomic rename)
//	snapshot.tmp  in-flight snapshot write; stale copies are discarded
//	clean         marker present only after a clean shutdown
//
// Every frame — in the log and in snapshots alike — is
//
//	[len uint32 LE][crc32c uint32 LE][payload]
//
// with the checksum taken over the payload. A payload is one Record:
//
//	[store uint8][op uint8][key uint64 LE][at int64 LE][value ...]
//
// The mutation set is closed under idempotent replay (see
// storage.MutOp), so replaying a log whose prefix is already contained
// in the snapshot converges to the same state; that is what lets
// compaction be "write snapshot, truncate log" with no segment
// juggling.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Store identifiers: which of a node's two stores a record mutates.
const (
	// StorePrimary is the node's owned shard.
	StorePrimary uint8 = 1
	// StoreReplica is the node's replica store (state held for peers).
	StoreReplica uint8 = 2
	// storeHeader tags the synthetic first frame of a snapshot file.
	storeHeader uint8 = 0xFF
)

// headerMagic is carried in the Key field of a snapshot header frame.
const headerMagic uint64 = 0x6f73636172574131 // "oscarWA1"

// maxFrame bounds a decoded frame length; anything larger is treated
// as corruption (the biggest legal value is a blob chunk, well under
// the 4 MiB transport page bound).
const maxFrame = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged mutation: which store it applies to plus the
// primitive storage mutation itself.
type Record struct {
	Store uint8
	Mut   storage.Mutation
}

// payloadLen is the fixed prefix of an encoded record before the value.
const payloadLen = 1 + 1 + 8 + 8

// appendRecord appends the framed encoding of rec to dst.
func appendRecord(dst []byte, rec Record) []byte {
	plen := payloadLen + len(rec.Mut.Value)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	dst = append(dst, rec.Store, byte(rec.Mut.Op))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Mut.Key))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Mut.At))
	dst = append(dst, rec.Mut.Value...)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[start:], castagnoli))
	return dst
}

// decodePayload decodes a checksum-verified payload into a Record. The
// value is copied out of the scratch buffer.
func decodePayload(p []byte) (Record, error) {
	if len(p) < payloadLen {
		return Record{}, fmt.Errorf("wal: short payload: %d bytes", len(p))
	}
	rec := Record{
		Store: p[0],
		Mut: storage.Mutation{
			Op:  storage.MutOp(p[1]),
			Key: keyspace.Key(binary.LittleEndian.Uint64(p[2:])),
			At:  int64(binary.LittleEndian.Uint64(p[10:])),
		},
	}
	if len(p) > payloadLen {
		rec.Mut.Value = append([]byte(nil), p[payloadLen:]...)
	}
	return rec, nil
}

// errTorn reports a frame that ends early, fails its checksum, or has
// an implausible length — the expected shape of a crash mid-append.
var errTorn = errors.New("wal: torn or corrupt frame")

// readFrame reads one frame from r into a Record, reusing *scratch.
// io.EOF means a clean end; errTorn means the frame is damaged.
func readFrame(r io.Reader, scratch *[]byte) (Record, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Record{}, 0, io.EOF // clean end of log
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, errTorn
	}
	plen := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if plen < payloadLen || plen > maxFrame {
		return Record{}, 0, errTorn
	}
	if cap(*scratch) < int(plen) {
		*scratch = make([]byte, plen)
	}
	buf := (*scratch)[:plen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Record{}, 0, errTorn
	}
	if crc32.Checksum(buf, castagnoli) != sum {
		return Record{}, 0, errTorn
	}
	rec, err := decodePayload(buf)
	if err != nil {
		return Record{}, 0, errTorn
	}
	return rec, int64(8 + plen), nil
}

// scanFrames reads frames from r until a clean EOF or a torn frame,
// calling fn for each intact record. It returns the byte offset of the
// end of the last intact frame, the number of intact frames, and
// whether a torn tail was encountered.
func scanFrames(r io.Reader, fn func(Record)) (good int64, frames int, torn bool) {
	var scratch []byte
	for {
		rec, n, err := readFrame(r, &scratch)
		if err == io.EOF {
			return good, frames, false
		}
		if err != nil {
			return good, frames, true
		}
		fn(rec)
		good += n
		frames++
	}
}
