# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

# Packages with concurrency-sensitive code; the race job scopes to these
# to keep CI fast (the full suite still runs race-free in `test`).
RACE_PKGS = ./internal/transport/... ./internal/p2p/...

.PHONY: all build test race bench fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Bench smoke: compile and run every benchmark once (shape check, not a
# measurement). Full measurements: `go test -bench=. -benchtime=2s ./...`.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... | tee bench.txt

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench
