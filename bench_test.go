// Benchmarks: one per paper table/figure (plus micro-benchmarks of the hot
// paths). Each figure benchmark builds its network once, times the measured
// operation (lookups for search-cost figures), and reports the figure's
// headline metric via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the quantitative story end to end. cmd/oscar-bench produces
// the full row-by-row tables.
package oscar

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/oscar-overlay/oscar/internal/degreedist"
	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keydist"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/mercury"
	"github.com/oscar-overlay/oscar/internal/p2p"
	"github.com/oscar-overlay/oscar/internal/rng"
	"github.com/oscar-overlay/oscar/internal/routing"
	"github.com/oscar-overlay/oscar/internal/sampling"
	"github.com/oscar-overlay/oscar/internal/sim"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// benchSize keeps figure benchmarks quick while preserving shapes; the full
// 10000-peer runs live in cmd/oscar-bench -full.
const benchSize = 1200

var (
	benchMu    sync.Mutex
	benchCache = map[string]*sim.Sim{}
)

// builtNetwork memoises grown networks across benchmarks.
func builtNetwork(b *testing.B, label string, build func() (*sim.Sim, error)) *sim.Sim {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchCache[label]; ok {
		return s
	}
	s, err := build()
	if err != nil {
		b.Fatal(err)
	}
	benchCache[label] = s
	return s
}

func buildSim(system sim.System, caps degreedist.Distribution, churnFrac float64) func() (*sim.Sim, error) {
	return func() (*sim.Sim, error) {
		cfg := sim.DefaultConfig()
		cfg.TargetSize = benchSize
		cfg.Checkpoints = []int{benchSize}
		cfg.Keys = keydist.GnutellaLike()
		cfg.Degrees = caps
		cfg.System = system
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		s.GrowTo(benchSize)
		s.RewireAll()
		if churnFrac > 0 {
			s.Churn(churnFrac)
		}
		return s, nil
	}
}

// lookupLoop times b.N greedy lookups on a prepared network and reports the
// average search cost — the paper's metric.
func lookupLoop(b *testing.B, s *sim.Sim, faulty bool) {
	b.Helper()
	qr := rng.Derive(7, b.Name())
	totalCost := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := s.Ring().RandomAlive(qr)
		target := s.Net().Node(s.Ring().RandomAlive(qr)).Key
		var res routing.Result
		if faulty {
			res = routing.GreedyBacktrack(s.Net(), s.Ring(), from, target)
		} else {
			res = routing.Greedy(s.Net(), s.Ring(), from, target)
		}
		if !res.Found {
			b.Fatal("lookup failed")
		}
		totalCost += res.Cost()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalCost)/float64(b.N), "cost/query")
}

// BenchmarkFig1a_DegreeSampling regenerates Figure 1(a)'s distribution:
// draws from the synthetic spiky degree pdf (mean 27).
func BenchmarkFig1a_DegreeSampling(b *testing.B) {
	d := degreedist.PaperRealistic()
	r := rng.Derive(1, "fig1a-bench")
	sum := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += d.Sample(r)
	}
	b.StopTimer()
	b.ReportMetric(float64(sum)/float64(b.N), "mean-degree")
}

// BenchmarkFig1b_RelativeDegreeLoad regenerates Figure 1(b): lookups on the
// three cap distributions, reporting the exploited degree volume.
func BenchmarkFig1b_RelativeDegreeLoad(b *testing.B) {
	for _, caps := range []degreedist.Distribution{
		degreedist.Constant(27), degreedist.PaperRealistic(), degreedist.PaperStepped(),
	} {
		b.Run(caps.Name(), func(b *testing.B) {
			s := builtNetwork(b, "oscar/"+caps.Name(), buildSim(sim.SystemOscar, caps, 0))
			m := s.Measure(false)
			lookupLoop(b, s, false)
			b.ReportMetric(m.DegreeVolume, "degree-volume")
		})
	}
}

// BenchmarkFig1c_SearchCost regenerates Figure 1(c): average search cost on
// the three cap distributions (the three sub-benchmarks should coincide).
func BenchmarkFig1c_SearchCost(b *testing.B) {
	for _, caps := range []degreedist.Distribution{
		degreedist.Constant(27), degreedist.PaperRealistic(), degreedist.PaperStepped(),
	} {
		b.Run(caps.Name(), func(b *testing.B) {
			s := builtNetwork(b, "oscar/"+caps.Name(), buildSim(sim.SystemOscar, caps, 0))
			lookupLoop(b, s, false)
		})
	}
}

// BenchmarkFig2a_ChurnConstant regenerates Figure 2(a): lookups under churn
// with constant caps (stale links probed and backtracked around).
func BenchmarkFig2a_ChurnConstant(b *testing.B) {
	for _, churn := range []float64{0, 0.10, 0.33} {
		b.Run(fmt.Sprintf("crash=%.0f%%", churn*100), func(b *testing.B) {
			label := fmt.Sprintf("churn-const-%.2f", churn)
			s := builtNetwork(b, label, buildSim(sim.SystemOscar, degreedist.Constant(27), churn))
			lookupLoop(b, s, churn > 0)
		})
	}
}

// BenchmarkFig2b_ChurnRealistic regenerates Figure 2(b): churn with the
// "realistic" spiky caps.
func BenchmarkFig2b_ChurnRealistic(b *testing.B) {
	for _, churn := range []float64{0, 0.10, 0.33} {
		b.Run(fmt.Sprintf("crash=%.0f%%", churn*100), func(b *testing.B) {
			label := fmt.Sprintf("churn-real-%.2f", churn)
			s := builtNetwork(b, label, buildSim(sim.SystemOscar, degreedist.PaperRealistic(), churn))
			lookupLoop(b, s, churn > 0)
		})
	}
}

// BenchmarkTable_DegreeVolume regenerates the in-text comparison T1:
// Oscar ≈85% vs Mercury ≈61% exploited degree volume.
func BenchmarkTable_DegreeVolume(b *testing.B) {
	for _, system := range []sim.System{sim.SystemOscar, sim.SystemMercury} {
		b.Run(system.String(), func(b *testing.B) {
			s := builtNetwork(b, system.String()+"/constant(27)",
				buildSim(system, degreedist.Constant(27), 0))
			m := s.Measure(false)
			lookupLoop(b, s, false)
			b.ReportMetric(m.DegreeVolume, "degree-volume")
		})
	}
}

// BenchmarkX1_HomogeneousComparison regenerates the context comparison: all
// three systems on skewed keys with homogeneous caps.
func BenchmarkX1_HomogeneousComparison(b *testing.B) {
	for _, system := range []sim.System{sim.SystemOscar, sim.SystemMercury, sim.SystemKleinberg} {
		b.Run(system.String(), func(b *testing.B) {
			s := builtNetwork(b, system.String()+"/constant(27)",
				buildSim(system, degreedist.Constant(27), 0))
			lookupLoop(b, s, false)
		})
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkWirePeer times one full Oscar rewiring of a single peer
// (partition discovery by walks + link acquisition).
func BenchmarkWirePeer(b *testing.B) {
	s := builtNetwork(b, "oscar/constant(27)", buildSim(sim.SystemOscar, degreedist.Constant(27), 0))
	ids := s.Net().AliveIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.RewireOne(ids[i%len(ids)])
	}
}

// BenchmarkMercuryWirePeer times one Mercury rewiring (histogram sampling +
// harmonic draws).
func BenchmarkMercuryWirePeer(b *testing.B) {
	s := builtNetwork(b, "mercury/constant(27)", buildSim(sim.SystemMercury, degreedist.Constant(27), 0))
	ids := s.Net().AliveIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.RewireOne(ids[i%len(ids)])
	}
}

// BenchmarkMedianEstimation times one restricted-walk median estimate over
// the full circle.
func BenchmarkMedianEstimation(b *testing.B) {
	s := builtNetwork(b, "oscar/constant(27)", buildSim(sim.SystemOscar, degreedist.Constant(27), 0))
	w := sampling.NewWalker(s.Net(), rng.Derive(3, "median-bench"))
	ids := s.Net().AliveIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.EstimateMedian(ids[i%len(ids)], keyspace.FullRange(), 12, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyRouting times one fault-free lookup.
func BenchmarkGreedyRouting(b *testing.B) {
	s := builtNetwork(b, "oscar/constant(27)", buildSim(sim.SystemOscar, degreedist.Constant(27), 0))
	lookupLoop(b, s, false)
}

// BenchmarkBacktrackRouting times one lookup with the churn-capable router
// on a healthy network (its overhead over plain greedy).
func BenchmarkBacktrackRouting(b *testing.B) {
	s := builtNetwork(b, "oscar/constant(27)", buildSim(sim.SystemOscar, degreedist.Constant(27), 0))
	lookupLoop(b, s, true)
}

// BenchmarkRingOwnerLookup times the ring ownership primitive.
func BenchmarkRingOwnerLookup(b *testing.B) {
	s := builtNetwork(b, "oscar/constant(27)", buildSim(sim.SystemOscar, degreedist.Constant(27), 0))
	r := rng.Derive(9, "owner-bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Ring().OwnerOf(keyspace.Key(r.Uint64()))
	}
}

// BenchmarkMercuryHistogram times building + inverting Mercury's histogram.
func BenchmarkMercuryHistogram(b *testing.B) {
	r := rng.Derive(4, "hist-bench")
	keys := keydist.SampleN(keydist.GnutellaLike(), r, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := mercury.NewHistogram(50, keys)
		_ = h.InvertFrom(keyspace.Key(r.Uint64()), r.Float64())
	}
}

// BenchmarkGraphAddLink times the admission-controlled link primitive.
func BenchmarkGraphAddLink(b *testing.B) {
	g := graph.New()
	const n = 4096
	for i := 0; i < n; i++ {
		g.Add(keyspace.Key(i), 1<<30, 1<<30)
	}
	r := rng.Derive(5, "link-bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := graph.NodeID(r.Intn(n))
		to := graph.NodeID(r.Intn(n))
		if err := g.AddLink(from, to); err == nil && i%8 == 7 {
			g.DropLinks(from) // keep lists from growing unboundedly
		}
	}
}

// BenchmarkOverlayPutGet times the public data-layer round trip.
func BenchmarkOverlayPutGet(b *testing.B) {
	ov, err := Build(Config{Size: 800, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.Derive(6, "putget-bench")
	val := []byte("benchmark-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key(r.Uint64())
		if _, err := ov.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := ov.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// --- live-runtime benchmarks (internal/p2p over the transport fabric) ---

// BenchmarkLiveClusterLookup times concurrent lookups through a live
// 48-node cluster: every iteration is a full iterative routing walk of
// find_owner RPCs, issued from many goroutines at once — the workload the
// multiplexed transport exists for.
func BenchmarkLiveClusterLookup(b *testing.B) {
	c, err := p2p.NewCluster(context.Background(), p2p.ClusterConfig{Size: 48, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			node := c.Nodes[int(i)%len(c.Nodes)]
			key := keyspace.Key(i * 0x9e3779b97f4a7c15) // golden-ratio spread
			if _, _, err := node.Lookup(context.Background(), key); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLiveClusterPutGetTCP times put+get round trips through a live
// loopback-TCP cluster: real sockets, pooled multiplexed connections,
// multi-hop routing per operation. The codec sub-benchmarks compare the
// negotiated binary wire codec against a ring pinned to the legacy JSON
// codec — the payload-encoding share of a full data-path operation.
func BenchmarkLiveClusterPutGetTCP(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []transport.TCPOption
	}{
		{"codec=binary", nil},
		{"codec=json", []transport.TCPOption{transport.WithJSONCodec()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchLivePutGetTCP(b, bc.opts...)
		})
	}
}

func benchLivePutGetTCP(b *testing.B, topts ...transport.TCPOption) {
	const size = 8
	var nodes []*p2p.Node
	for i := 0; i < size; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0", topts...)
		if err != nil {
			b.Fatal(err)
		}
		n, err := p2p.NewNode(ep, p2p.Config{
			Key:    keyspace.FromFloat(float64(i)/size + 0.01),
			MaxIn:  8,
			MaxOut: 8,
			Seed:   int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			if err := n.Join(context.Background(), nodes[0].Self().Addr); err != nil {
				b.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.Stabilize(context.Background())
		}
	}
	val := []byte("live-bench")
	var next atomic.Uint64
	// The mux exists for concurrent callers: keep several ops in flight
	// per core so connection sharing, flush batching and the codec are
	// actually exercised (with the default parallelism a single-core
	// machine would serialise every RPC and measure only syscall latency).
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			node := nodes[int(i)%size]
			key := keyspace.Key(i * 0x9e3779b97f4a7c15)
			if _, err := node.Put(context.Background(), key, val); err != nil {
				b.Error(err)
				return
			}
			if _, err := node.Get(context.Background(), key); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPutReplicated times a replicated write (owner + 2 successor
// copies) through the simulator — the baseline for the replicated-path
// perf trajectory.
func BenchmarkPutReplicated(b *testing.B) {
	ov, err := Build(Config{Size: 800, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.Derive(12, "putrepl-bench")
	val := []byte("replicated-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ov.PutReplicated(Key(r.Uint64()), val, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveClusterPutReplicated times the live replicated write path
// on the in-memory fabric: route to the owner, owner write, parallel
// replicate pushes to the owner's successor-list chain.
func BenchmarkLiveClusterPutReplicated(b *testing.B) {
	c, err := p2p.NewCluster(context.Background(), p2p.ClusterConfig{Size: 24, Seed: 13, Replicas: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 4; round++ {
		c.StabilizeAll(context.Background())
	}
	val := []byte("replicated-live")
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			node := c.Nodes[int(i)%len(c.Nodes)]
			key := keyspace.Key(i * 0x9e3779b97f4a7c15)
			if _, err := node.Put(context.Background(), key, val); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPutWriteConcern times the live replicated write path under the
// three write-concern regimes: w=1 (owner ack only — the pushes are still
// awaited, so this is the ack-counting overhead baseline), w=2 (majority
// quorum of r=3) and w=3 (all copies). The spread between the rows is the
// price of each durability level; CI tracks it in bench.txt.
func BenchmarkPutWriteConcern(b *testing.B) {
	for _, bc := range []struct {
		name string
		w    int
	}{{"w1-owner", 1}, {"w2-quorum", 2}, {"w3-all", 3}} {
		b.Run(bc.name, func(b *testing.B) {
			c, err := p2p.NewCluster(context.Background(), p2p.ClusterConfig{Size: 24, Seed: 13, Replicas: 3})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			for round := 0; round < 4; round++ {
				c.StabilizeAll(context.Background())
			}
			val := []byte("write-concern")
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					node := c.Nodes[int(i)%len(c.Nodes)]
					key := keyspace.Key(i * 0x9e3779b97f4a7c15)
					if _, err := node.PutW(context.Background(), key, val, bc.w); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkOverlayRangeQuery times a 1%-of-circle range query.
func BenchmarkOverlayRangeQuery(b *testing.B) {
	ov, err := Build(Config{Size: 800, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := ov.Put(KeyFromFloat(float64(i)/2000), nil); err != nil {
			b.Fatal(err)
		}
	}
	r := rng.Derive(8, "range-bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := r.Float64()
		if _, err := ov.RangeQuery(KeyFromFloat(start), KeyFromFloat(start+0.01), 0); err != nil {
			b.Fatal(err)
		}
	}
}
