package oscar

import (
	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Anti-entropy on the simulator: the same digest protocol the live runtime
// runs over RPCs — leaf-vector comparison, key-level diff of mismatched
// buckets, targeted repair — executed in-process against the simulator's
// shard and replica stores. It exists for conformance parity: the
// divergence-heal contract (sync converges, transfers only the diverged
// keys, deleted keys stay deleted) is asserted against every backend, and
// both backends share internal/antientropy for the digest and diff logic,
// so the contract is one implementation deep.

// AntiEntropy runs one digest-driven repair pass over every alive peer's
// replica chain, with the given replication factor, and returns what it
// repaired. Traffic accounting mirrors the live runtime: an in-sync chain
// member costs one digest comparison and moves nothing.
func (o *Overlay) AntiEntropy(replicas int) SyncStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	if replicas < 2 {
		return SyncStats{}
	}
	var total SyncStats
	net := o.sim.Net()
	for _, id := range net.AliveIDs() {
		node := net.Node(id)
		if node.Pred == id || net.Node(node.Pred).Key == node.Key {
			continue // arc undefined (one-peer ring or degenerate keys)
		}
		arc := Range{Start: net.Node(node.Pred).Key + 1, End: node.Key + 1}
		owner := o.storeFor(id)
		cur := id
		for i := 1; i < replicas; i++ {
			next := net.Node(cur).Succ
			if next == cur || next == id {
				break // wrapped around a tiny overlay
			}
			cur = next
			total.add(syncStores(owner, o.replStoreFor(cur), arc))
		}
	}
	o.syncStats.add(total)
	return total
}

func (s *SyncStats) add(o SyncStats) {
	s.Rounds += o.Rounds
	s.KeysPushed += o.KeysPushed
	s.TombstonesPushed += o.TombstonesPushed
	s.Dropped += o.Dropped
}

// syncStores reconciles one replica store against the owner's arc, exactly
// as the live protocol does over the wire: compare digest leaf vectors,
// diff the per-key states of mismatched buckets, apply the minimal plan.
func syncStores(owner, replica *storage.Store, arc Range) SyncStats {
	st := SyncStats{Rounds: 1}
	depth := antientropy.DefaultDepth
	diff := antientropy.DiffLeaves(owner.Digest(arc, depth), replica.Digest(arc, depth))
	if len(diff) == 0 {
		return st
	}
	ownStates := antientropy.FilterBuckets(owner.SyncStates(arc), depth, diff)
	replStates := antientropy.FilterBuckets(replica.SyncStates(arc), depth, diff)
	plan := antientropy.Diff(ownStates, replStates)
	for _, k := range plan.Push {
		if v, ok := owner.Get(k); ok {
			replica.Put(k, v)
			st.KeysPushed++
		}
	}
	for _, k := range plan.Tombs {
		if at, ok := owner.Tombstone(k); ok {
			replica.SetTombstone(k, at)
			st.TombstonesPushed++
		}
	}
	for _, k := range plan.Drop {
		replica.Drop(k)
		st.Dropped++
	}
	return st
}

// readRepairLocked is the simulator mirror of the live read-repair pass: a
// fallback read was served by a chain member holding state the owner has
// no record of, so the owner pulls its arc's divergence back from that
// replica and — if anything was adopted — re-syncs its chain so the
// trailing members converge on the healed arc. Work lands in the
// overlay's accumulated sync stats, exactly like scheduled anti-entropy.
// Callers hold o.mu.
func (o *Overlay) readRepairLocked(owner, serving NodeID, replicas int) {
	net := o.sim.Net()
	node := net.Node(owner)
	if node.Pred == owner || net.Node(node.Pred).Key == node.Key {
		return // arc undefined (one-peer ring or degenerate keys)
	}
	arc := Range{Start: net.Node(node.Pred).Key + 1, End: node.Key + 1}
	ownerStore := o.storeFor(owner)
	st := readRepairStores(ownerStore, o.replStoreFor(serving), arc)
	if st.KeysPushed+st.TombstonesPushed > 0 {
		cur := owner
		for i := 1; i < replicas; i++ {
			next := net.Node(cur).Succ
			if next == cur || next == owner {
				break
			}
			cur = next
			st.add(syncStores(ownerStore, o.replStoreFor(cur), arc))
		}
	}
	o.syncStats.add(st)
}

// readRepairStores adopts, into the owner's store, arc state the replica
// holds that the owner lacks entirely — a key with neither a live copy nor
// a tombstone. The owner stays authoritative on every key it has an
// opinion on: hash mismatches and tombstoned keys are left alone, so
// read-repair fills holes but never rolls back a fresher owner write or
// resurrects an owner's delete. Adopted state counts as
// KeysPushed/TombstonesPushed — the keys the round moved.
func readRepairStores(owner, replica *storage.Store, arc Range) SyncStats {
	st := SyncStats{Rounds: 1}
	depth := antientropy.DefaultDepth
	diff := antientropy.DiffLeaves(owner.Digest(arc, depth), replica.Digest(arc, depth))
	if len(diff) == 0 {
		return st
	}
	ownStates := antientropy.FilterBuckets(owner.SyncStates(arc), depth, diff)
	replStates := antientropy.FilterBuckets(replica.SyncStates(arc), depth, diff)
	// Reversed diff: what does the replica hold that the owner should
	// consider adopting? (Diff's Drop leg is meaningless in this
	// direction and ignored.)
	plan := antientropy.Diff(replStates, ownStates)
	for _, k := range plan.Push {
		if _, live := owner.Get(k); live {
			continue
		}
		if _, dead := owner.Tombstone(k); dead {
			continue
		}
		if v, ok := replica.Get(k); ok {
			owner.Put(k, v)
			st.KeysPushed++
		}
	}
	for _, k := range plan.Tombs {
		if _, live := owner.Get(k); live {
			continue
		}
		if _, dead := owner.Tombstone(k); dead {
			continue
		}
		if at, ok := replica.Tombstone(k); ok {
			owner.SetTombstone(k, at)
			st.TombstonesPushed++
		}
	}
	return st
}

// Tombstones returns the number of deletes remembered (and not yet
// TTL-collected) across all peers' stores.
func (o *Overlay) Tombstones() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for _, st := range o.stores {
		total += st.TombstoneCount()
	}
	for _, st := range o.replStores {
		total += st.TombstoneCount()
	}
	return total
}

// GCTombstones discards tombstones recorded before cutoff (unix nanos)
// from every peer's stores and returns how many were collected — the
// simulator counterpart of the live runtime's TTL collection.
func (o *Overlay) GCTombstones(cutoff int64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	dropped := 0
	for _, st := range o.stores {
		dropped += st.GCTombstones(cutoff)
	}
	for _, st := range o.replStores {
		dropped += st.GCTombstones(cutoff)
	}
	return dropped
}
