package p2p

import (
	"context"
	"sync"
	"time"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// Chunking bounds for one replicate push frame — the storage layer's
// shared page bounds, which scan pages and migrate responses use too. The
// transport caps frames at 16 MiB; staying an order of magnitude under it
// leaves room for JSON framing and keeps a slow receiver from stalling one
// giant frame.
const (
	maxReplicateItems = storage.PageMaxItems
	maxReplicateBytes = storage.PageMaxBytes
)

// SyncStats counts anti-entropy work. Each field is a total over whatever
// scope the value describes: one sync round, one pass, or (via Node's
// accumulator) the node's lifetime. The headline property of digest sync
// is visible right here: KeysPushed tracks the *divergence* between owner
// and replica, never the arc size.
type SyncStats struct {
	// Rounds is the number of owner→replica digest exchanges opened.
	Rounds int
	// LeavesDiffed is the number of digest buckets that disagreed and were
	// pulled at key level.
	LeavesDiffed int
	// KeysPushed is the number of items shipped to replicas (missing or
	// stale copies).
	KeysPushed int
	// TombsPushed is the number of deletes propagated to replicas that had
	// missed them.
	TombsPushed int
	// Dropped is the number of stray replica keys (no owner record at all)
	// the replicas were told to forget.
	Dropped int
	// Messages is the RPC cost of the sync work.
	Messages int
}

func (s *SyncStats) add(o SyncStats) {
	s.Rounds += o.Rounds
	s.LeavesDiffed += o.LeavesDiffed
	s.KeysPushed += o.KeysPushed
	s.TombsPushed += o.TombsPushed
	s.Dropped += o.Dropped
	s.Messages += o.Messages
}

// SyncTotals returns the node's lifetime anti-entropy counters (membership
// repairs and periodic passes alike).
func (n *Node) SyncTotals() SyncStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// AntiEntropy runs one push-pull digest sync from this node, as arc owner,
// against every member of its replica chain, and returns the pass's stats.
// Traffic is proportional to the divergence: an in-sync replica costs one
// digest RPC (2 KiB), a divergent one additionally pulls the mismatched
// buckets and receives only the differing keys. The maintenance loop calls
// this on the AntiEntropy interval; Stabilize calls the same machinery on
// membership changes.
func (n *Node) AntiEntropy(ctx context.Context) SyncStats {
	n.mu.Lock()
	targets := n.replicaTargetsLocked()
	arc, haveArc := n.arcLocked()
	n.mu.Unlock()
	if !haveArc || len(targets) == 0 {
		return SyncStats{}
	}
	total := n.syncChain(ctx, targets, arc)
	n.mu.Lock()
	n.stats.add(total)
	n.mu.Unlock()
	return total
}

// syncChain digest-syncs every chain target in parallel and merges the
// stats (the caller accounts them).
func (n *Node) syncChain(ctx context.Context, targets []transport.PeerRef, arc keyspace.Range) SyncStats {
	var (
		mu    sync.Mutex
		total SyncStats
		wg    sync.WaitGroup
	)
	for _, t := range targets {
		wg.Add(1)
		go func(t transport.PeerRef) {
			defer wg.Done()
			st := n.syncTarget(ctx, t, arc)
			mu.Lock()
			total.add(st)
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return total
}

// syncTarget reconciles one replica against the owner's arc:
//
//  1. digest: fetch the replica's leaf vector for the arc and compare it
//     with the owner's incrementally-maintained tree — equal vectors mean
//     the replica is current and the round ends after one RPC;
//  2. pull: fetch the replica's per-key states for the mismatched buckets;
//  3. push: diff against the owner's states and ship only the difference —
//     missing/stale items, missed deletes, and drop notices for strays —
//     in bounded-size replicate frames.
//
// Failures abort the round; the next membership change or anti-entropy tick
// retries. Writes racing the sync can leave a transient mismatch that the
// next round repairs — the protocol is a convergence loop, not a barrier.
func (n *Node) syncTarget(ctx context.Context, target transport.PeerRef, arc keyspace.Range) SyncStats {
	var st SyncStats
	st.Rounds++

	n.mu.Lock()
	mine := n.store.DigestLeaves()
	n.mu.Unlock()

	resp, err := n.tr.CallCtx(ctx, target.Addr, &transport.Request{
		Op: transport.OpDigest, Range: arc, Depth: antientropy.DefaultDepth, From: n.self,
	})
	st.Messages++
	if err != nil || !resp.OK {
		return st
	}
	diff := antientropy.DiffLeaves(mine, resp.Digest)
	st.LeavesDiffed = len(diff)
	if len(diff) == 0 {
		return st
	}

	pull, err := n.tr.CallCtx(ctx, target.Addr, &transport.Request{
		Op: transport.OpSyncPull, Range: arc, Depth: antientropy.DefaultDepth, Buckets: diff, From: n.self,
	})
	st.Messages++
	if err != nil || !pull.OK {
		return st
	}

	// Build the repair plan and collect the payloads under one lock hold,
	// so items, tombstones and the plan describe one consistent snapshot.
	n.mu.Lock()
	ownStates := antientropy.FilterBuckets(n.store.SyncStates(arc), antientropy.DefaultDepth, diff)
	plan := antientropy.Diff(ownStates, pull.States)
	items := make([]storage.Item, 0, len(plan.Push))
	for _, k := range plan.Push {
		if v, ok := n.store.Get(k); ok {
			items = append(items, storage.Item{Key: k, Value: v})
		}
	}
	tombs := make([]storage.Tombstone, 0, len(plan.Tombs))
	for _, k := range plan.Tombs {
		if at, ok := n.store.Tombstone(k); ok {
			tombs = append(tombs, storage.Tombstone{Key: k, At: at})
		}
	}
	n.mu.Unlock()

	if len(items) == 0 && len(tombs) == 0 && len(plan.Drop) == 0 {
		return st
	}
	for _, req := range chunkReplicate(items, tombs, plan.Drop) {
		req.From = n.self
		if _, err := n.tr.CallCtx(ctx, target.Addr, req); err != nil {
			st.Messages++
			return st
		}
		st.Messages++
		st.KeysPushed += len(req.Items)
		st.TombsPushed += len(req.Tombs)
		st.Dropped += len(req.Drop)
	}
	return st
}

// readRepairTimeout bounds one read-repair pass: the pull from the replica
// that served the fallback read plus the chain re-sync that follows.
const readRepairTimeout = 30 * time.Second

// readRepairCooldown is the minimum spacing between read-repair passes at
// one owner. Each pass adopts up to a frame's worth of keys, so a large
// divergence heals over several nudges at this cadence — while a
// divergence no pass can close (partitioned replica, stranded state) costs
// at most one digest exchange per cooldown, not one per fallback read.
const readRepairCooldown = time.Second

// readRepair is the owner-side read-repair pass, launched by the
// read_repair handler after a fallback read exposed state this node lacks:
// digest-pull the arc's divergence back from the replica that served the
// read, then — if anything was adopted — run the normal owner→chain sync
// so the trailing chain converges on the healed arc. The pass is bounded
// (one timeout, one pass per nudge burst) and its work lands in the node's
// anti-entropy stats, so repairs triggered by reads are as observable as
// scheduled ones.
func (n *Node) readRepair(replica transport.PeerRef) {
	defer func() {
		n.mu.Lock()
		n.repairing = false
		n.mu.Unlock()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), readRepairTimeout)
	defer cancel()
	n.mu.Lock()
	arc, haveArc := n.arcLocked()
	targets := n.replicaTargetsLocked()
	n.mu.Unlock()
	if !haveArc {
		return
	}
	st := n.pullFromReplica(ctx, replica, arc)
	if st.KeysPushed+st.TombsPushed > 0 && len(targets) > 0 {
		st.add(n.syncChain(ctx, targets, arc))
	}
	n.mu.Lock()
	n.stats.add(st)
	n.mu.Unlock()
}

// pullFromReplica is the reverse sync round of read-repair: fetch the
// replica's digest of this node's arc, pull states and values for the
// mismatched buckets in one RPC, and adopt only what this node lacks
// entirely — a key with neither a live copy nor a tombstone locally.
// Everything else keeps the owner's version: on a hash mismatch the owner
// is authoritative exactly as in forward sync, so read-repair fills holes
// but never rolls back a fresher write or resurrects an owner's delete.
// Adopted keys count as KeysPushed/TombsPushed — they are the keys the
// round moved.
func (n *Node) pullFromReplica(ctx context.Context, replica transport.PeerRef, arc keyspace.Range) SyncStats {
	var st SyncStats
	st.Rounds++

	n.mu.Lock()
	mine := n.store.DigestLeaves()
	n.mu.Unlock()

	resp, err := n.tr.CallCtx(ctx, replica.Addr, &transport.Request{
		Op: transport.OpDigest, Range: arc, Depth: antientropy.DefaultDepth, From: n.self,
	})
	st.Messages++
	if err != nil || !resp.OK {
		return st
	}
	diff := antientropy.DiffLeaves(mine, resp.Digest)
	st.LeavesDiffed = len(diff)
	if len(diff) == 0 {
		return st
	}

	pull, err := n.tr.CallCtx(ctx, replica.Addr, &transport.Request{
		Op: transport.OpSyncPull, Range: arc, Depth: antientropy.DefaultDepth,
		Buckets: diff, Values: true, From: n.self,
	})
	st.Messages++
	if err != nil || !pull.OK {
		return st
	}

	shipped := make(map[keyspace.Key]bool, len(pull.Items))
	n.mu.Lock()
	for _, it := range pull.Items {
		shipped[it.Key] = true
		if !arc.Contains(it.Key) {
			continue // never let foreign keys into the maintained arc digest
		}
		if _, live := n.store.Get(it.Key); live {
			continue
		}
		if _, dead := n.store.Tombstone(it.Key); dead {
			continue
		}
		n.store.Put(it.Key, it.Value)
		st.KeysPushed++
	}
	for _, tb := range pull.Tombs {
		if !arc.Contains(tb.Key) {
			continue
		}
		if _, live := n.store.Get(tb.Key); live {
			continue
		}
		if _, dead := n.store.Tombstone(tb.Key); dead {
			continue
		}
		n.store.SetTombstone(tb.Key, tb.At)
		st.TombsPushed++
	}
	// The responder bounds the values it ships to one frame's worth;
	// adoptable keys whose values did not fit are fetched one get RPC
	// each, capped per pass — every adopted key shrinks the next digest
	// diff, so even an arc-sized divergence converges over successive
	// nudges instead of building one response past the frame cap.
	var want []keyspace.Key
	for _, s := range pull.States {
		if s.Deleted || shipped[s.Key] || !arc.Contains(s.Key) {
			continue
		}
		if _, live := n.store.Get(s.Key); live {
			continue
		}
		if _, dead := n.store.Tombstone(s.Key); dead {
			continue
		}
		if len(want) >= maxReplicateItems {
			break
		}
		want = append(want, s.Key)
	}
	n.mu.Unlock()
	for _, k := range want {
		if ctx.Err() != nil {
			break
		}
		got, err := n.tr.CallCtx(ctx, replica.Addr, &transport.Request{Op: transport.OpGet, Key: k, From: n.self})
		st.Messages++
		if err != nil || !got.OK || !got.Found {
			continue
		}
		n.mu.Lock()
		_, live := n.store.Get(k)
		_, dead := n.store.Tombstone(k)
		if !live && !dead {
			n.store.Put(k, got.Value)
			st.KeysPushed++
		}
		n.mu.Unlock()
	}
	return st
}

// chunkReplicate splits one repair plan into replicate requests bounded by
// maxReplicateItems / maxReplicateBytes each, so no frame can approach the
// transport's 16 MiB cap no matter how large the divergence. Tombstones and
// drops are small and ride in the first frame.
func chunkReplicate(items []storage.Item, tombs []storage.Tombstone, drop []keyspace.Key) []*transport.Request {
	var reqs []*transport.Request
	for len(items) > 0 {
		count, bytes := 0, 0
		for count < len(items) && count < maxReplicateItems {
			sz := len(items[count].Value) + 16
			if count > 0 && bytes+sz > maxReplicateBytes {
				break
			}
			bytes += sz
			count++
		}
		reqs = append(reqs, &transport.Request{Op: transport.OpReplicate, Items: items[:count]})
		items = items[count:]
	}
	if len(reqs) == 0 {
		reqs = append(reqs, &transport.Request{Op: transport.OpReplicate})
	}
	reqs[0].Tombs = tombs
	reqs[0].Drop = drop
	return reqs
}

// gcReplicasEvery is the steady-state cadence of the replica-collection
// walk: a predecessor change triggers it immediately (that is when state
// strands), and this fallback catches deeper chain shifts — a membership
// change two or more hops back — that the local pred pointer cannot see.
const gcReplicasEvery = 16

// maybeGCReplicas runs gcReplicas when the predecessor changed since the
// last walk, or on the periodic fallback. Stranded replica state can only
// appear on membership changes, so the steady state pays no RPCs.
func (n *Node) maybeGCReplicas(ctx context.Context) {
	if n.cfg.Replicas <= 1 {
		return
	}
	n.mu.Lock()
	due := n.pred.Addr != n.lastGCPred || n.gcTick <= 0
	if due {
		n.lastGCPred = n.pred.Addr
		n.gcTick = gcReplicasEvery
	} else {
		n.gcTick--
	}
	n.mu.Unlock()
	if due {
		n.gcReplicas(ctx)
	}
}

// gcReplicas drops replica state whose keys fall outside the arcs of the
// node's first r-1 predecessors — copies stranded when this node left an
// owner's chain. The union of those arcs is (pred_r, pred_1], so the walk
// must reach the r-th predecessor: pred_1 is known locally and the
// remaining r-1 hops are get_pred RPCs; everything outside (pred_r, self]
// is extracted. A failed or wrapped walk skips the collection — never
// guess about what to forget. It returns how many keys were reclaimed.
func (n *Node) gcReplicas(ctx context.Context) int {
	r := n.cfg.Replicas
	if r <= 1 {
		return 0
	}
	start := n.Pred()
	if start.Addr == "" || start.Addr == n.self.Addr {
		return 0
	}
	for i := 0; i < r-1; i++ {
		resp, err := n.tr.CallCtx(ctx, start.Addr, &transport.Request{Op: transport.OpGetPred})
		if err != nil || !resp.OK || resp.Peer.Addr == "" {
			return 0
		}
		if resp.Peer.Addr == n.self.Addr {
			return 0 // ring smaller than the chain: everything is in-region
		}
		start = resp.Peer
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if start.Key == n.self.Key {
		return 0
	}
	outside := keyspace.Range{Start: n.self.Key + 1, End: start.Key + 1}
	return len(n.replStore.ExtractRange(outside)) + len(n.replStore.ExtractTombstones(outside))
}

// gcTombstones collects tombstones older than the configured TTL from both
// stores.
func (n *Node) gcTombstones() int {
	cutoff := time.Now().Add(-n.cfg.TombstoneTTL).UnixNano()
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.GCTombstones(cutoff) + n.replStore.GCTombstones(cutoff)
}
