package p2p

import (
	"context"
	"testing"
	"time"

	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/transport"
)

// TestMaintenanceHealsRing lets the background loop (rather than manual
// Stabilize calls) repair pointers after a crash.
func TestMaintenanceHealsRing(t *testing.T) {
	fabric := transport.NewFabric()
	var nodes []*Node
	for i := 0; i < 8; i++ {
		n := mustNode(t, fabric.Endpoint(), Config{
			Key: keyspace.FromFloat(float64(i) / 8), MaxIn: 8, MaxOut: 8, Seed: int64(i),
		})
		if i > 0 {
			if err := n.Join(context.Background(), nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	var maints []*Maintenance
	for _, n := range nodes {
		maints = append(maints, n.StartMaintenance(5*time.Millisecond, 0))
	}
	defer func() {
		for _, m := range maints {
			m.Stop()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	// Crash a node; the loops must route around it without manual help.
	_ = nodes[3].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err := nodes[0].Lookup(context.Background(), keyspace.FromFloat(0.99))
		if err == nil {
			// Also confirm the corpse is out of the pointer chain.
			healed := true
			for i, n := range nodes {
				if i == 3 {
					continue
				}
				if n.Succ().Addr == nodes[3].Self().Addr || n.Pred().Addr == nodes[3].Self().Addr {
					healed = false
				}
			}
			if healed {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance loop did not heal the ring in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaintenanceRunsAntiEntropy lets the background anti-entropy ticker
// (rather than a manual AntiEntropy call) repair a diverged replica.
func TestMaintenanceRunsAntiEntropy(t *testing.T) {
	fabric := transport.NewFabric()
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := mustNode(t, fabric.Endpoint(), Config{
			Key: keyspace.FromFloat(float64(i)/4 + 0.1), Replicas: 2,
			AntiEntropy: 10 * time.Millisecond, Seed: int64(i),
		})
		if i > 0 {
			if err := n.Join(context.Background(), nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			n.Stabilize(context.Background())
		}
	}
	owner := nodes[1] // key 0.35
	k := owner.Self().Key - 5
	if _, err := nodes[0].Put(context.Background(), k, []byte("copy")); err != nil {
		t.Fatal(err)
	}
	replica := nodeByAddr(t, nodes, owner.SuccList()[0].Addr)
	if _, ok := replica.ReplicaValue(k); !ok {
		t.Fatal("write push did not reach the replica")
	}
	replica.DropReplica(k)

	var maints []*Maintenance
	for _, n := range nodes {
		maints = append(maints, n.StartMaintenance(5*time.Millisecond, 0))
	}
	defer func() {
		for _, m := range maints {
			m.Stop()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := replica.ReplicaValue(k); ok && string(v) == "copy" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background anti-entropy did not repair the replica in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMaintenanceStopIdempotent(t *testing.T) {
	fabric := transport.NewFabric()
	n := mustNode(t, fabric.Endpoint(), Config{Key: 1})
	m := n.StartMaintenance(time.Millisecond, 1)
	time.Sleep(5 * time.Millisecond)
	m.Stop()
	m.Stop() // second stop must not panic or deadlock
	_ = n.Close()
}
